// gteactl — build, inspect, verify, and incrementally update persisted
// reachability indexes.
//
//   gteactl build   (--graph=<file> | --gen=<spec>) [--index=<spec>]
//                   --out=<path>
//   gteactl inspect <index-file>
//   gteactl verify  <index-file> (--graph=<file> | --gen=<spec>)
//                   [--probes=<n>] [--seed=<s>]
//   gteactl apply   <index-file> --updates=<file>
//                   (--graph=<file> | --gen=<spec>) --out=<path>
//                   [--graph-out=<path>] [--compact]
//
// Graph sources:
//   --graph=<file>  a "gtpq-graph v1" text file (graph/graph_io.h)
//   --gen=<spec>    a deterministic generator, so `verify` can
//                   reproduce the exact graph an index was built from:
//                     xmark:<scale>                  workload XMark tree
//                     dag:<nodes>[,<seed>[,<deg>]]   random DAG
//                     digraph:<nodes>[,<seed>[,<deg>]] cycles allowed
//                     tree:<nodes>[,<seed>]          tree + cross edges
//
// `build` writes a versioned, checksummed ".gtpqidx" file for any
// MakeReachabilityIndex spec (decorators included). `inspect` dumps the
// validated header without parsing the payload. `verify` reloads the
// index, enforces the graph fingerprint, and spot-checks whole
// reachability rows against a BFS ground truth. `apply` replays a
// "gtpq-updates v1" file (dynamic/update_io.h) against a saved index:
// the index is wrapped in (or continues) a delta overlay, each batch
// becomes a snapshot — auto-compacting past the overlay threshold or
// forced with --compact — and the result is written as a new index
// stamped with the updated graph's fingerprint (plus, optionally, the
// updated graph itself via --graph-out).
#include <cstdio>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "dynamic/delta_overlay.h"
#include "dynamic/update_io.h"
#include "graph/algorithms.h"
#include "graph/data_graph.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "reachability/factory.h"
#include "storage/index_io.h"
#include "workload/xmark.h"

namespace gtpq {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gteactl build   (--graph=<file> | --gen=<spec>) [--index=<spec>] "
      "--out=<path>\n"
      "  gteactl inspect <index-file>\n"
      "  gteactl verify  <index-file> (--graph=<file> | --gen=<spec>) "
      "[--probes=<n>] [--seed=<s>]\n"
      "  gteactl apply   <index-file> --updates=<file> (--graph=<file> | "
      "--gen=<spec>)\n"
      "                  --out=<path> [--graph-out=<path>] [--compact]\n"
      "\n"
      "generator specs: xmark:<scale> | dag:<nodes>[,<seed>[,<deg>]] |\n"
      "                 digraph:<nodes>[,<seed>[,<deg>]] | "
      "tree:<nodes>[,<seed>]\n"
      "index specs:     any MakeReachabilityIndex spec (contour, "
      "three_hop,\n"
      "                 interval, sspi, chain_cover, transitive_closure,\n"
      "                 cached:<spec>, sharded:<spec>, delta:<spec>)\n");
  return 2;
}

std::optional<std::string> FlagValue(int argc, char** argv,
                                     const char* prefix) {
  const size_t len = std::strlen(prefix);
  std::optional<std::string> value;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) value = argv[i] + len;
  }
  return value;
}

/// Parses "name:a[,b[,c]]" numeric generator params with defaults.
struct GenParams {
  double a = 0;
  uint64_t b = 0;
  double c = 0;
  int count = 0;  // how many fields were present
};

std::optional<GenParams> ParseGenParams(std::string_view rest) {
  GenParams p;
  const std::vector<std::string> parts = Split(rest, ',');
  if (parts.empty() || parts.size() > 3) return std::nullopt;
  char* end = nullptr;
  p.a = std::strtod(parts[0].c_str(), &end);
  if (end == parts[0].c_str() || *end != '\0') return std::nullopt;
  p.count = 1;
  if (parts.size() > 1) {
    p.b = std::strtoull(parts[1].c_str(), &end, 10);
    if (end == parts[1].c_str() || *end != '\0') return std::nullopt;
    p.count = 2;
  }
  if (parts.size() > 2) {
    p.c = std::strtod(parts[2].c_str(), &end);
    if (end == parts[2].c_str() || *end != '\0') return std::nullopt;
    p.count = 3;
  }
  return p;
}

Result<DataGraph> GenerateGraph(const std::string& spec) {
  const size_t colon = spec.find(':');
  if (colon == std::string::npos) {
    return Status::InvalidArgument("generator spec needs params: " + spec);
  }
  const std::string kind = spec.substr(0, colon);
  auto params = ParseGenParams(std::string_view(spec).substr(colon + 1));
  if (!params.has_value()) {
    return Status::InvalidArgument("malformed generator params: " + spec);
  }
  if (kind == "xmark") {
    workload::XmarkOptions o;
    o.scale = params->a;
    if (o.scale <= 0) {
      return Status::InvalidArgument("xmark scale must be positive: " +
                                     spec);
    }
    return workload::GenerateXmark(o);
  }
  const auto nodes = static_cast<size_t>(params->a);
  if (nodes < 1) {
    return Status::InvalidArgument("generator node count must be >= 1: " +
                                   spec);
  }
  if (kind == "dag") {
    RandomDagOptions o;
    o.num_nodes = nodes;
    if (params->count > 1) o.seed = params->b;
    if (params->count > 2) o.avg_degree = params->c;
    return RandomDag(o);
  }
  if (kind == "digraph") {
    RandomDigraphOptions o;
    o.num_nodes = nodes;
    if (params->count > 1) o.seed = params->b;
    if (params->count > 2) o.avg_degree = params->c;
    return RandomDigraph(o);
  }
  if (kind == "tree") {
    RandomTreeOptions o;
    o.num_nodes = nodes;
    if (params->count > 1) o.seed = params->b;
    return RandomTreeWithCrossEdges(o);
  }
  return Status::InvalidArgument("unknown generator kind '" + kind +
                                 "' in spec: " + spec);
}

Result<DataGraph> ResolveGraph(int argc, char** argv) {
  const auto graph_flag = FlagValue(argc, argv, "--graph=");
  const auto gen_flag = FlagValue(argc, argv, "--gen=");
  if (graph_flag.has_value() == gen_flag.has_value()) {
    return Status::InvalidArgument(
        "exactly one of --graph= and --gen= is required");
  }
  if (graph_flag.has_value()) return LoadDataGraphFromFile(*graph_flag);
  return GenerateGraph(*gen_flag);
}

void PrintInfo(const storage::IndexFileInfo& info) {
  std::printf("format version : v%u\n", info.format_version);
  std::printf("backend spec   : %s\n", info.spec.c_str());
  std::printf("fingerprint    : %016llx\n",
              static_cast<unsigned long long>(info.graph_fingerprint));
  std::printf("graph          : %s nodes, %s edges\n",
              FormatWithCommas(static_cast<long long>(info.num_nodes))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(info.num_edges))
                  .c_str());
  std::printf("payload        : %s bytes\n",
              FormatWithCommas(static_cast<long long>(info.payload_bytes))
                  .c_str());
  std::printf("file           : %s bytes (%s header+prologue)\n",
              FormatWithCommas(static_cast<long long>(info.file_bytes))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(
                                   info.file_bytes - info.payload_bytes))
                  .c_str());
}

int RunBuild(int argc, char** argv) {
  const auto out = FlagValue(argc, argv, "--out=");
  if (!out.has_value() || out->empty()) {
    std::fprintf(stderr, "build: --out=<path> is required\n");
    return Usage();
  }
  const std::string index_spec =
      FlagValue(argc, argv, "--index=").value_or("contour");
  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();
  std::printf("graph: %zu nodes, %zu edges\n", g.NumNodes(), g.NumEdges());

  Timer build_timer;
  auto oracle =
      MakeReachabilityIndex(std::string_view(index_spec), g.graph());
  if (oracle == nullptr) {
    std::fprintf(stderr, "build: invalid reachability spec '%s'\n",
                 index_spec.c_str());
    return 1;
  }
  const double build_ms = build_timer.ElapsedMillis();

  Timer save_timer;
  const Status saved =
      storage::SaveReachabilityIndex(*oracle, g.graph(), *out);
  if (!saved.ok()) {
    std::fprintf(stderr, "build: %s\n", saved.ToString().c_str());
    return 1;
  }
  const double save_ms = save_timer.ElapsedMillis();

  auto info = storage::InspectReachabilityIndex(*out);
  if (!info.ok()) {
    std::fprintf(stderr, "build: wrote an unreadable file?! %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  PrintInfo(info.ValueOrDie());
  std::printf("build          : %.1f ms\n", build_ms);
  std::printf("save           : %.1f ms\n", save_ms);
  std::printf("wrote %s\n", out->c_str());
  return 0;
}

int RunInspect(int argc, char** argv) {
  if (argc < 3) return Usage();
  auto info = storage::InspectReachabilityIndex(argv[2]);
  if (!info.ok()) {
    std::fprintf(stderr, "inspect: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  PrintInfo(info.ValueOrDie());
  return 0;
}

int RunVerify(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[2];
  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();

  Timer load_timer;
  auto loaded = storage::LoadReachabilityIndex(path, g.graph());
  if (!loaded.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const double load_ms = load_timer.ElapsedMillis();
  const auto& oracle = *loaded.ValueOrDie();

  size_t probes = 64;
  if (auto flag = FlagValue(argc, argv, "--probes=")) {
    probes = static_cast<size_t>(std::strtoull(flag->c_str(), nullptr, 10));
  }
  uint64_t seed = 1;
  if (auto flag = FlagValue(argc, argv, "--seed=")) {
    seed = std::strtoull(flag->c_str(), nullptr, 10);
  }
  const size_t n = g.NumNodes();
  probes = std::min(probes, n);

  // Each probe checks one whole source row against BFS ground truth —
  // self-reachability semantics included (a BFS hit on the source means
  // it sits on a cycle).
  Rng rng(seed);
  size_t checked = 0, mismatches = 0;
  for (size_t i = 0; i < probes; ++i) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(n));
    std::vector<char> truth(n, 0);
    bool self = false;
    for (NodeId v : ReachableFrom(g.graph(), src)) {
      if (v == src) self = true;
      truth[v] = 1;
    }
    truth[src] = self ? 1 : 0;
    for (NodeId to = 0; to < n; ++to) {
      ++checked;
      if (oracle.Reaches(src, to) != (truth[to] != 0)) {
        ++mismatches;
        if (mismatches <= 5) {
          std::fprintf(stderr,
                       "verify: MISMATCH Reaches(%u, %u): index says %d, "
                       "BFS says %d\n",
                       src, to, oracle.Reaches(src, to) ? 1 : 0,
                       truth[to] != 0 ? 1 : 0);
        }
      }
    }
  }

  std::printf("loaded '%s' (%s) in %.1f ms\n", path.c_str(),
              std::string(oracle.name()).c_str(), load_ms);
  std::printf("%zu probe rows, %s pair checks, %zu mismatches\n", probes,
              FormatWithCommas(static_cast<long long>(checked)).c_str(),
              mismatches);
  if (mismatches > 0) {
    std::fprintf(stderr, "verify: FAILED\n");
    return 1;
  }
  std::printf("verify: OK\n");
  return 0;
}

int RunApply(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[2];
  const auto updates_path = FlagValue(argc, argv, "--updates=");
  const auto out = FlagValue(argc, argv, "--out=");
  if (!updates_path.has_value() || !out.has_value() || out->empty()) {
    std::fprintf(stderr,
                 "apply: --updates=<file> and --out=<path> are required\n");
    return Usage();
  }
  bool force_compact = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compact") == 0) force_compact = true;
  }

  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "apply: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();

  auto loaded = storage::LoadReachabilityIndex(path, g.graph());
  if (!loaded.ok()) {
    std::fprintf(stderr, "apply: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  // Continue an existing overlay chain, or start one over the loaded
  // immutable index (its base graph is then `g`, alive for the rest of
  // this run).
  std::shared_ptr<const ReachabilityOracle> oracle(loaded.TakeValue());
  std::shared_ptr<const DeltaOverlayOracle> overlay =
      std::dynamic_pointer_cast<const DeltaOverlayOracle>(oracle);
  if (overlay == nullptr) {
    overlay =
        std::make_shared<const DeltaOverlayOracle>(oracle, &g.graph());
  }
  std::printf("loaded '%s' (%s): %zu pending ops\n", path.c_str(),
              std::string(overlay->name()).c_str(), overlay->PendingOps());

  auto batches = LoadUpdateBatchesFromFile(*updates_path);
  if (!batches.ok()) {
    std::fprintf(stderr, "apply: %s\n",
                 batches.status().ToString().c_str());
    return 1;
  }

  // The combined current view, accumulated across every batch — the
  // fingerprint the new index file is stamped with.
  GraphDelta view(g.NumNodes());
  const uint64_t compactions_before = overlay->compactions();
  Timer apply_timer;
  size_t ops = 0;
  for (size_t i = 0; i < batches->size(); ++i) {
    const UpdateBatch& batch = (*batches)[i];
    // The overlay validates first — it also remembers vertices retired
    // before this run (and across compactions), which the fresh view
    // cannot. In-place apply is fine: any failure exits immediately.
    auto next = overlay->WithUpdates(batch);
    if (!next.ok()) {
      std::fprintf(stderr, "apply: batch %zu: %s\n", i,
                   next.status().ToString().c_str());
      return 1;
    }
    const Status folded = view.ApplyInPlace(g.graph(), batch);
    if (!folded.ok()) {
      std::fprintf(stderr, "apply: batch %zu: %s\n", i,
                   folded.ToString().c_str());
      return 1;
    }
    overlay = next.TakeValue();
    ops += batch.NumOps();
  }
  if (force_compact) {
    auto compacted = overlay->Compact();
    if (!compacted.ok()) {
      std::fprintf(stderr, "apply: %s\n",
                   compacted.status().ToString().c_str());
      return 1;
    }
    overlay = compacted.TakeValue();
  }
  const double apply_ms = apply_timer.ElapsedMillis();

  const DataGraph updated = view.MaterializeDataGraph(g);
  const Status saved =
      storage::SaveReachabilityIndex(*overlay, updated.graph(), *out);
  if (!saved.ok()) {
    std::fprintf(stderr, "apply: %s\n", saved.ToString().c_str());
    return 1;
  }
  if (auto graph_out = FlagValue(argc, argv, "--graph-out=")) {
    const Status graph_saved = SaveDataGraphToFile(updated, *graph_out);
    if (!graph_saved.ok()) {
      std::fprintf(stderr, "apply: %s\n", graph_saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote updated graph to %s\n", graph_out->c_str());
  }

  std::printf("applied %zu batches (%zu ops) in %.1f ms, %llu "
              "compaction(s)\n",
              batches->size(), ops, apply_ms,
              static_cast<unsigned long long>(overlay->compactions() -
                                              compactions_before));
  std::printf("graph          : %zu -> %zu nodes, %zu -> %zu edges\n",
              g.NumNodes(), updated.NumNodes(), g.NumEdges(),
              updated.NumEdges());
  std::printf("pending ops    : %zu\n", overlay->PendingOps());
  auto info = storage::InspectReachabilityIndex(*out);
  if (!info.ok()) {
    std::fprintf(stderr, "apply: wrote an unreadable file?! %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  PrintInfo(info.ValueOrDie());
  std::printf("wrote %s\n", out->c_str());
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view command = argv[1];
  if (command == "build") return RunBuild(argc, argv);
  if (command == "inspect") return RunInspect(argc, argv);
  if (command == "verify") return RunVerify(argc, argv);
  if (command == "apply") return RunApply(argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
  return Usage();
}

}  // namespace
}  // namespace gtpq

int main(int argc, char** argv) { return gtpq::Run(argc, argv); }
