// gteactl — build, inspect, verify, and incrementally update persisted
// reachability indexes.
//
//   gteactl build   (--graph=<file> | --gen=<spec>) [--index=<spec>]
//                   --out=<path>
//   gteactl inspect <index-file>
//   gteactl verify  <index-file> (--graph=<file> | --gen=<spec>)
//                   [--probes=<n>] [--seed=<s>]
//   gteactl apply   <index-file> --updates=<file>
//                   (--graph=<file> | --gen=<spec>) --out=<path>
//                   [--graph-out=<path>] [--compact]
//   gteactl serve   (--graph=<file> | --gen=<spec>) [--index=<spec> |
//                   --engine=<spec>] [--port=<p>] [--bind=<addr>]
//                   [--threads=<n>] [--coalesce=<n>] [--window-us=<x>]
//   gteactl query   --connect=<host:port> (--file=<query-file> |
//                   --text=<query>) [--limit=<n>] [--parallelism=<n>]
//   gteactl apply   --connect=<host:port> --updates=<file>
//   gteactl stats   --connect=<host:port>
//   gteactl metrics --connect=<host:port>
//   gteactl trace   --connect=<host:port> [--id=<hex>] [--out=<file>]
//   gteactl slowlog --connect=<host:port>
//   gteactl top     --connect=<host:port> [--interval=<sec>]
//                   [--count=<n>]
//   gteactl partition (--graph=<file> | --gen=<spec>) --out=<dir>
//                   [--shards=<n>] [--inner=<spec>]
//                   [--endpoints=<ep1,ep2,...>] [--no-degree-aware]
//   gteactl route   --map=<file.gtpqmap> (--graph=<file> | --gen=<spec>)
//                   [--endpoints=<ep1,ep2,...>] [--port=<p>]
//                   [--bind=<addr>] [--threads=<n>] [--coalesce=<n>]
//                   [--window-us=<x>]
//
// Graph sources:
//   --graph=<file>  a "gtpq-graph v1" text file (graph/graph_io.h)
//   --gen=<spec>    a deterministic generator, so `verify` can
//                   reproduce the exact graph an index was built from:
//                     xmark:<scale>                  workload XMark tree
//                     dag:<nodes>[,<seed>[,<deg>]]   random DAG
//                     digraph:<nodes>[,<seed>[,<deg>]] cycles allowed
//                     tree:<nodes>[,<seed>]          tree + cross edges
//
// `build` writes a versioned, checksummed ".gtpqidx" file for any
// MakeReachabilityIndex spec (decorators included). `inspect` dumps the
// validated header without parsing the payload. `verify` reloads the
// index, enforces the graph fingerprint, and spot-checks whole
// reachability rows against a BFS ground truth. `apply` replays a
// "gtpq-updates v1" file (dynamic/update_io.h) against a saved index:
// the index is wrapped in (or continues) a delta overlay, each batch
// becomes a snapshot — auto-compacting past the overlay threshold or
// forced with --compact — and the result is written as a new index
// stamped with the updated graph's fingerprint (plus, optionally, the
// updated graph itself via --graph-out).
//
// `serve` exposes the engine over gtpq-wire v1 (net/server.h): an
// epoll front-end coalescing pipelined queries into snapshot-pinned
// batches, with APPLY_UPDATES folding into the live epoch chain. The
// `--connect=` subcommands (`query`, `apply`, `stats`, `metrics`,
// `trace`, `slowlog`, `top`) are thin net/client.h wrappers, so a
// built index can be served from one shell and queried/updated/
// observed from another: `metrics` scrapes Prometheus text exposition,
// `trace` dumps the server's span ring as Chrome trace-event JSON
// (load it at chrome://tracing), and `slowlog` prints the worst-query
// ring with per-stage timings. Against a `route` front-end, `metrics`
// and `trace` return CLUSTER-wide views: the router pulls every
// shard's binary snapshot/span ring and merges them (per-shard
// shard="N" labels plus exact cluster aggregates; one stitched
// multi-process Chrome trace). `query --trace` stamps the request
// with a fresh trace id so `trace --id=<hex>` can pull exactly that
// request's spans, and `top` turns successive federated snapshots
// into a live per-shard QPS/latency/health dashboard.
// A global `--quiet` drops log output below error level.
//
// `partition` splits a graph into contiguous vertex shards
// (degree-aware cuts by default), writing per-shard graphs + indexes
// and a ".gtpqmap" (cluster/partition_map.h). Each shard is then a
// plain `gteactl serve --graph=shardK.graph --index=file:shardK
// .gtpqidx`; `route` runs the scatter-gather front-end
// (cluster/shard_router.h) over those servers, speaking the same
// gtpq-wire protocol so existing clients and benches work unchanged.
#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cluster/partition.h"
#include "cluster/partition_map.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "dynamic/delta_overlay.h"
#include "dynamic/update_io.h"
#include "graph/algorithms.h"
#include "graph/data_graph.h"
#include "graph/generators.h"
#include "graph/graph_io.h"
#include "net/client.h"
#include "net/server.h"
#include "obs/federation.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "reachability/factory.h"
#include "storage/index_io.h"
#include "workload/graph_gen_spec.h"
#include "workload/xmark.h"

namespace gtpq {
namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  gteactl build   (--graph=<file> | --gen=<spec>) [--index=<spec>] "
      "--out=<path>\n"
      "  gteactl inspect <index-file> [--mmap]\n"
      "  gteactl verify  <index-file> (--graph=<file> | --gen=<spec>) "
      "[--probes=<n>] [--seed=<s>]\n"
      "  gteactl apply   <index-file> --updates=<file> (--graph=<file> | "
      "--gen=<spec>)\n"
      "                  --out=<path> [--graph-out=<path>] [--compact]\n"
      "  gteactl serve   (--graph=<file> | --gen=<spec>) [--index=<spec> | "
      "--engine=<spec>]\n"
      "                  [--mmap] [--port=<p>] [--bind=<addr>] "
      "[--threads=<n>]\n"
      "                  [--coalesce=<n>] [--window-us=<x>]\n"
      "  gteactl query   --connect=<host:port> (--file=<query-file> | "
      "--text=<query>)\n"
      "                  [--limit=<n>] [--parallelism=<n>] [--trace]\n"
      "  gteactl apply   --connect=<host:port> --updates=<file>\n"
      "  gteactl stats   --connect=<host:port>\n"
      "  gteactl metrics --connect=<host:port>\n"
      "  gteactl trace   --connect=<host:port> [--id=<hex-trace-id>] "
      "[--out=<file>]\n"
      "  gteactl slowlog --connect=<host:port>\n"
      "  gteactl top     --connect=<host:port> [--interval=<sec>] "
      "[--count=<n>]\n"
      "  gteactl partition (--graph=<file> | --gen=<spec>) --out=<dir>\n"
      "                  [--shards=<n>] [--inner=<spec>]\n"
      "                  [--endpoints=<ep1,ep2,...>] [--no-degree-aware]\n"
      "  gteactl route   --map=<file.gtpqmap> (--graph=<file> | "
      "--gen=<spec>)\n"
      "                  [--endpoints=<ep1,ep2,...>] [--port=<p>] "
      "[--bind=<addr>]\n"
      "                  [--threads=<n>] [--coalesce=<n>] "
      "[--window-us=<x>]\n"
      "\n"
      "generator specs: xmark:<scale> | dag:<nodes>[,<seed>[,<deg>]] |\n"
      "                 digraph:<nodes>[,<seed>[,<deg>]] | "
      "tree:<nodes>[,<seed>]\n"
      "index specs:     any MakeReachabilityIndex spec (contour, "
      "three_hop,\n"
      "                 interval, sspi, chain_cover, transitive_closure,\n"
      "                 cached:<spec>, sharded:<spec>, delta:<spec>,\n"
      "                 file:<path>, mmap:<path>; serve --mmap rewrites\n"
      "                 a file: index to the zero-copy mmap: loader)\n"
      "global flags:    --quiet (suppress log output below error level)\n");
  return 2;
}

std::optional<std::string> FlagValue(int argc, char** argv,
                                     const char* prefix) {
  const size_t len = std::strlen(prefix);
  std::optional<std::string> value;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) value = argv[i] + len;
  }
  return value;
}

bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

/// Rewrites the trailing "file:<path>" loader of an oracle spec (bare or
/// under decorators) to the zero-copy "mmap:<path>" loader. Returns
/// false when the spec has no file: loader to rewrite.
bool RewriteFileSpecToMmap(std::string* spec) {
  if (spec->rfind("mmap:", 0) == 0 ||
      spec->find(":mmap:") != std::string::npos) {
    return true;  // already zero-copy
  }
  size_t pos = 0;
  if (spec->rfind("file:", 0) != 0) {
    const size_t mid = spec->find(":file:");
    if (mid == std::string::npos) return false;
    pos = mid + 1;
  }
  spec->replace(pos, 5, "mmap:");
  return true;
}

Result<DataGraph> ResolveGraph(int argc, char** argv) {
  const auto graph_flag = FlagValue(argc, argv, "--graph=");
  const auto gen_flag = FlagValue(argc, argv, "--gen=");
  if (graph_flag.has_value() == gen_flag.has_value()) {
    return Status::InvalidArgument(
        "exactly one of --graph= and --gen= is required");
  }
  if (graph_flag.has_value()) return LoadDataGraphFromFile(*graph_flag);
  return workload::GenerateGraphFromSpec(*gen_flag);
}

void PrintInfo(const storage::IndexFileInfo& info) {
  std::printf("format version : v%u\n", info.format_version);
  std::printf("backend spec   : %s\n", info.spec.c_str());
  std::printf("fingerprint    : %016llx\n",
              static_cast<unsigned long long>(info.graph_fingerprint));
  std::printf("graph          : %s nodes, %s edges\n",
              FormatWithCommas(static_cast<long long>(info.num_nodes))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(info.num_edges))
                  .c_str());
  std::printf("payload        : %s bytes\n",
              FormatWithCommas(static_cast<long long>(info.payload_bytes))
                  .c_str());
  std::printf("file           : %s bytes (%s header+prologue)\n",
              FormatWithCommas(static_cast<long long>(info.file_bytes))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(
                                   info.file_bytes - info.payload_bytes))
                  .c_str());
}

int RunBuild(int argc, char** argv) {
  const auto out = FlagValue(argc, argv, "--out=");
  if (!out.has_value() || out->empty()) {
    std::fprintf(stderr, "build: --out=<path> is required\n");
    return Usage();
  }
  const std::string index_spec =
      FlagValue(argc, argv, "--index=").value_or("contour");
  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "build: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();
  std::printf("graph: %zu nodes, %zu edges\n", g.NumNodes(), g.NumEdges());

  Timer build_timer;
  auto oracle =
      MakeReachabilityIndex(std::string_view(index_spec), g.graph());
  if (oracle == nullptr) {
    std::fprintf(stderr, "build: invalid reachability spec '%s'\n",
                 index_spec.c_str());
    return 1;
  }
  const double build_ms = build_timer.ElapsedMillis();

  Timer save_timer;
  const Status saved =
      storage::SaveReachabilityIndex(*oracle, g.graph(), *out);
  if (!saved.ok()) {
    std::fprintf(stderr, "build: %s\n", saved.ToString().c_str());
    return 1;
  }
  const double save_ms = save_timer.ElapsedMillis();

  auto info = storage::InspectReachabilityIndex(*out);
  if (!info.ok()) {
    std::fprintf(stderr, "build: wrote an unreadable file?! %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  PrintInfo(info.ValueOrDie());
  std::printf("build          : %.1f ms\n", build_ms);
  std::printf("save           : %.1f ms\n", save_ms);
  std::printf("wrote %s\n", out->c_str());
  return 0;
}

bool HasPartitionMapMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  return in.gcount() == sizeof(magic) &&
         std::string_view(magic, sizeof(magic)) == cluster::kMapMagic;
}

int InspectPartitionMap(const std::string& path) {
  auto map = cluster::LoadPartitionMap(path);
  if (!map.ok()) {
    std::fprintf(stderr, "inspect: %s\n", map.status().ToString().c_str());
    return 1;
  }
  std::printf("partition map  : v%u, %zu shard(s), inner spec %s\n",
              cluster::kMapFormatVersion, map->num_shards(),
              map->inner_spec.c_str());
  std::printf("fingerprint    : %016llx\n",
              static_cast<unsigned long long>(map->graph_fingerprint));
  std::printf("graph          : %s nodes, %s edges\n",
              FormatWithCommas(static_cast<long long>(map->num_nodes))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(map->num_edges))
                  .c_str());
  std::printf("boundary       : %zu vertex(es), %zu cross edge(s)\n",
              map->boundary.size(), map->cross_edges.size());
  for (size_t s = 0; s < map->num_shards(); ++s) {
    std::printf("shard %-2zu       : [%llu, %llu) %s nodes, endpoint %s, "
                "index fingerprint %016llx\n",
                s, static_cast<unsigned long long>(map->ranges[s].begin),
                static_cast<unsigned long long>(map->ranges[s].end),
                FormatWithCommas(static_cast<long long>(
                                     map->ranges[s].end -
                                     map->ranges[s].begin))
                    .c_str(),
                map->endpoints[s].empty() ? "(unset)"
                                          : map->endpoints[s].c_str(),
                static_cast<unsigned long long>(
                    map->shard_fingerprints[s]));
  }
  return 0;
}

int RunInspect(int argc, char** argv) {
  if (argc < 3 || argv[2][0] == '-') return Usage();
  if (HasPartitionMapMagic(argv[2])) return InspectPartitionMap(argv[2]);
  auto info = storage::InspectReachabilityIndex(argv[2]);
  if (!info.ok()) {
    std::fprintf(stderr, "inspect: %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  PrintInfo(info.ValueOrDie());
  if (HasFlag(argc, argv, "--mmap")) {
    // Full zero-copy parse over a read-only mapping: proves the payload
    // is servable through mmap:, not just that the header checks out.
    Timer map_timer;
    auto view = storage::LoadReachabilityIndexView(argv[2]);
    if (!view.ok()) {
      std::fprintf(stderr, "inspect: %s\n",
                   view.status().ToString().c_str());
      return 1;
    }
    std::printf("mmap           : zero-copy parse OK (%s) in %.1f ms\n",
                std::string((*view)->name()).c_str(),
                map_timer.ElapsedMillis());
  }
  return 0;
}

int RunVerify(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[2];
  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();

  Timer load_timer;
  auto loaded = storage::LoadReachabilityIndex(path, g.graph());
  if (!loaded.ok()) {
    std::fprintf(stderr, "verify: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const double load_ms = load_timer.ElapsedMillis();
  const auto& oracle = *loaded.ValueOrDie();

  size_t probes = 64;
  if (auto flag = FlagValue(argc, argv, "--probes=")) {
    probes = static_cast<size_t>(std::strtoull(flag->c_str(), nullptr, 10));
  }
  uint64_t seed = 1;
  if (auto flag = FlagValue(argc, argv, "--seed=")) {
    seed = std::strtoull(flag->c_str(), nullptr, 10);
  }
  const size_t n = g.NumNodes();
  probes = std::min(probes, n);

  // Each probe checks one whole source row against BFS ground truth —
  // self-reachability semantics included (a BFS hit on the source means
  // it sits on a cycle).
  Rng rng(seed);
  size_t checked = 0, mismatches = 0;
  for (size_t i = 0; i < probes; ++i) {
    const NodeId src = static_cast<NodeId>(rng.NextBounded(n));
    std::vector<char> truth(n, 0);
    bool self = false;
    for (NodeId v : ReachableFrom(g.graph(), src)) {
      if (v == src) self = true;
      truth[v] = 1;
    }
    truth[src] = self ? 1 : 0;
    for (NodeId to = 0; to < n; ++to) {
      ++checked;
      if (oracle.Reaches(src, to) != (truth[to] != 0)) {
        ++mismatches;
        if (mismatches <= 5) {
          std::fprintf(stderr,
                       "verify: MISMATCH Reaches(%u, %u): index says %d, "
                       "BFS says %d\n",
                       src, to, oracle.Reaches(src, to) ? 1 : 0,
                       truth[to] != 0 ? 1 : 0);
        }
      }
    }
  }

  std::printf("loaded '%s' (%s) in %.1f ms\n", path.c_str(),
              std::string(oracle.name()).c_str(), load_ms);
  std::printf("%zu probe rows, %s pair checks, %zu mismatches\n", probes,
              FormatWithCommas(static_cast<long long>(checked)).c_str(),
              mismatches);
  if (mismatches > 0) {
    std::fprintf(stderr, "verify: FAILED\n");
    return 1;
  }
  std::printf("verify: OK\n");
  return 0;
}

int RunApply(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string path = argv[2];
  const auto updates_path = FlagValue(argc, argv, "--updates=");
  const auto out = FlagValue(argc, argv, "--out=");
  if (!updates_path.has_value() || !out.has_value() || out->empty()) {
    std::fprintf(stderr,
                 "apply: --updates=<file> and --out=<path> are required\n");
    return Usage();
  }
  bool force_compact = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compact") == 0) force_compact = true;
  }

  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "apply: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();

  auto loaded = storage::LoadReachabilityIndex(path, g.graph());
  if (!loaded.ok()) {
    std::fprintf(stderr, "apply: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  // Continue an existing overlay chain, or start one over the loaded
  // immutable index (its base graph is then `g`, alive for the rest of
  // this run).
  std::shared_ptr<const ReachabilityOracle> oracle(loaded.TakeValue());
  std::shared_ptr<const DeltaOverlayOracle> overlay =
      std::dynamic_pointer_cast<const DeltaOverlayOracle>(oracle);
  if (overlay == nullptr) {
    overlay =
        std::make_shared<const DeltaOverlayOracle>(oracle, &g.graph());
  }
  std::printf("loaded '%s' (%s): %zu pending ops\n", path.c_str(),
              std::string(overlay->name()).c_str(), overlay->PendingOps());

  auto batches = LoadUpdateBatchesFromFile(*updates_path);
  if (!batches.ok()) {
    std::fprintf(stderr, "apply: %s\n",
                 batches.status().ToString().c_str());
    return 1;
  }

  // The combined current view, accumulated across every batch — the
  // fingerprint the new index file is stamped with.
  GraphDelta view(g.NumNodes());
  const uint64_t compactions_before = overlay->compactions();
  Timer apply_timer;
  size_t ops = 0;
  for (size_t i = 0; i < batches->size(); ++i) {
    const UpdateBatch& batch = (*batches)[i];
    // The overlay validates first — it also remembers vertices retired
    // before this run (and across compactions), which the fresh view
    // cannot. In-place apply is fine: any failure exits immediately.
    auto next = overlay->WithUpdates(batch);
    if (!next.ok()) {
      std::fprintf(stderr, "apply: batch %zu: %s\n", i,
                   next.status().ToString().c_str());
      return 1;
    }
    const Status folded = view.ApplyInPlace(g.graph(), batch);
    if (!folded.ok()) {
      std::fprintf(stderr, "apply: batch %zu: %s\n", i,
                   folded.ToString().c_str());
      return 1;
    }
    overlay = next.TakeValue();
    ops += batch.NumOps();
  }
  if (force_compact) {
    auto compacted = overlay->Compact();
    if (!compacted.ok()) {
      std::fprintf(stderr, "apply: %s\n",
                   compacted.status().ToString().c_str());
      return 1;
    }
    overlay = compacted.TakeValue();
  }
  const double apply_ms = apply_timer.ElapsedMillis();

  const DataGraph updated = view.MaterializeDataGraph(g);
  // Write-temp + rename: a live server mapping (or re-reading) the old
  // file under `out` keeps its pinned inode; the new index appears
  // atomically — no reader ever sees a half-written file.
  const std::string tmp = *out + ".tmp";
  const Status saved =
      storage::SaveReachabilityIndex(*overlay, updated.graph(), tmp);
  if (!saved.ok()) {
    std::fprintf(stderr, "apply: %s\n", saved.ToString().c_str());
    return 1;
  }
  if (std::rename(tmp.c_str(), out->c_str()) != 0) {
    std::fprintf(stderr, "apply: cannot rename %s over %s: %s\n",
                 tmp.c_str(), out->c_str(), std::strerror(errno));
    std::remove(tmp.c_str());
    return 1;
  }
  if (auto graph_out = FlagValue(argc, argv, "--graph-out=")) {
    const Status graph_saved = SaveDataGraphToFile(updated, *graph_out);
    if (!graph_saved.ok()) {
      std::fprintf(stderr, "apply: %s\n", graph_saved.ToString().c_str());
      return 1;
    }
    std::printf("wrote updated graph to %s\n", graph_out->c_str());
  }

  std::printf("applied %zu batches (%zu ops) in %.1f ms, %llu "
              "compaction(s)\n",
              batches->size(), ops, apply_ms,
              static_cast<unsigned long long>(overlay->compactions() -
                                              compactions_before));
  std::printf("graph          : %zu -> %zu nodes, %zu -> %zu edges\n",
              g.NumNodes(), updated.NumNodes(), g.NumEdges(),
              updated.NumEdges());
  std::printf("pending ops    : %zu\n", overlay->PendingOps());
  auto info = storage::InspectReachabilityIndex(*out);
  if (!info.ok()) {
    std::fprintf(stderr, "apply: wrote an unreadable file?! %s\n",
                 info.status().ToString().c_str());
    return 1;
  }
  PrintInfo(info.ValueOrDie());
  std::printf("wrote %s\n", out->c_str());
  return 0;
}

// ------------------------------------------------ network subcommands

std::unique_ptr<net::NetClient> ConnectFlag(int argc, char** argv,
                                            const char* command) {
  const auto connect = FlagValue(argc, argv, "--connect=");
  std::string host;
  uint16_t port = 0;
  if (!connect.has_value()) {
    std::fprintf(stderr, "%s: --connect=<host:port> is required\n",
                 command);
    return nullptr;
  }
  if (!net::ParseHostPort(*connect, &host, &port)) {
    std::fprintf(stderr,
                 "%s: malformed --connect address '%s' (want "
                 "<host:port> with a numeric port in [1, 65535])\n",
                 command, connect->c_str());
    return nullptr;
  }
  auto client = std::make_unique<net::NetClient>();
  const Status st = client->Connect(host, port);
  if (!st.ok()) {
    std::fprintf(stderr, "%s: %s\n", command, st.ToString().c_str());
    return nullptr;
  }
  return client;
}

std::atomic<bool> g_serve_stop{false};
void HandleServeSignal(int) { g_serve_stop.store(true); }

/// Validated "--flag=<n>" parse into [min, max]; complains and reports
/// false on junk instead of truncating or feeding zero into a
/// GTPQ_CHECK downstream.
bool ParseBoundedFlag(const std::optional<std::string>& value,
                      const char* flag, unsigned long long min,
                      unsigned long long max, unsigned long long* out) {
  if (!value.has_value()) return true;
  char* end = nullptr;
  const unsigned long long parsed =
      std::strtoull(value->c_str(), &end, 10);
  if (value->empty() || end != value->c_str() + value->size() ||
      parsed < min || parsed > max) {
    std::fprintf(stderr,
                 "serve: %s wants an integer in [%llu, %llu], got '%s'\n",
                 flag, min, max, value->c_str());
    return false;
  }
  *out = parsed;
  return true;
}

/// Parses the serve/route-shared listener flags into `options`; false
/// (after a complaint) on junk.
bool ParseServeOptions(int argc, char** argv,
                       net::NetServerOptions* options) {
  unsigned long long port = options->port;
  unsigned long long threads = options->runtime.num_threads;
  unsigned long long coalesce = options->coalesce_max_queries;
  if (!ParseBoundedFlag(FlagValue(argc, argv, "--port="), "--port=", 0,
                        65535, &port) ||
      !ParseBoundedFlag(FlagValue(argc, argv, "--threads="), "--threads=",
                        1, 1024, &threads) ||
      !ParseBoundedFlag(FlagValue(argc, argv, "--coalesce="),
                        "--coalesce=", 1, 1u << 20, &coalesce)) {
    return false;
  }
  options->port = static_cast<uint16_t>(port);
  options->runtime.num_threads = static_cast<size_t>(threads);
  options->coalesce_max_queries = static_cast<size_t>(coalesce);
  if (auto bind = FlagValue(argc, argv, "--bind=")) {
    options->bind_address = *bind;
  }
  if (auto window = FlagValue(argc, argv, "--window-us=")) {
    char* end = nullptr;
    options->coalesce_window_us = std::strtod(window->c_str(), &end);
    if (window->empty() || end != window->c_str() + window->size() ||
        options->coalesce_window_us < 0) {
      std::fprintf(stderr, "serve: --window-us= wants a number >= 0, "
                           "got '%s'\n",
                   window->c_str());
      return false;
    }
  }
  return true;
}

/// Start + signal-wait + stop + stat line — the tail every wire
/// front-end (serve, route) shares.
int ServeLoop(const DataGraph& g, const net::NetServerOptions& options,
              const char* command) {
  net::NetServer server(g, options);
  const Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "%s: %s\n", command, started.ToString().c_str());
    return 1;
  }
  std::printf("gtpq-wire v1 serving on %s:%u — engine %s, %zu worker "
              "thread(s)\n",
              options.bind_address.c_str(), server.port(),
              server.runtime().engine_name().c_str(),
              server.runtime().num_threads());
  std::fflush(stdout);

  std::signal(SIGINT, HandleServeSignal);
  std::signal(SIGTERM, HandleServeSignal);
  while (!g_serve_stop.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();

  const ServingStats stats = server.runtime().serving_stats();
  const net::NetServer::Counters counters = server.counters();
  std::printf("shutting down at epoch %llu: served %llu queries in %llu "
              "dispatched batch(es), %llu update(s), %llu connection(s), "
              "%llu overload rejection(s), %llu protocol error(s)\n",
              static_cast<unsigned long long>(stats.epoch),
              static_cast<unsigned long long>(stats.queries),
              static_cast<unsigned long long>(counters.batches_dispatched),
              static_cast<unsigned long long>(stats.updates_applied),
              static_cast<unsigned long long>(
                  counters.connections_accepted),
              static_cast<unsigned long long>(counters.rejected_overload),
              static_cast<unsigned long long>(counters.protocol_errors));
  return 0;
}

int RunServe(int argc, char** argv) {
  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "serve: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();

  net::NetServerOptions options;
  // --engine= takes a full engine spec ("naive", "gtea:cached:contour");
  // --index= is the common shorthand for "gtea:<oracle spec>", which
  // also serves prebuilt files via --index=file:<path>. With --mmap the
  // file: loader is rewritten to mmap:, so the index body is served
  // from a read-only shared mapping instead of a heap copy.
  std::string oracle_spec;
  if (auto engine = FlagValue(argc, argv, "--engine=")) {
    options.runtime.engine_spec = *engine;
  } else {
    oracle_spec = FlagValue(argc, argv, "--index=").value_or("contour");
    if (HasFlag(argc, argv, "--mmap") &&
        !RewriteFileSpecToMmap(&oracle_spec)) {
      std::fprintf(stderr,
                   "serve: --mmap needs a file:<path> (or mmap:<path>) "
                   "index, got '%s'\n",
                   oracle_spec.c_str());
      return 1;
    }
    options.runtime.engine_spec = "gtea:" + oracle_spec;
  }
  if (!ParseServeOptions(argc, argv, &options)) return Usage();

  std::printf("graph: %zu nodes, %zu edges\n", g.NumNodes(), g.NumEdges());
  return ServeLoop(g, options, "serve");
}

int RunPartition(int argc, char** argv) {
  const auto out = FlagValue(argc, argv, "--out=");
  if (!out.has_value() || out->empty()) {
    std::fprintf(stderr, "partition: --out=<dir> is required\n");
    return Usage();
  }
  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "partition: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();

  cluster::BuildPartitionOptions options;
  unsigned long long shards = options.plan.num_shards;
  if (!ParseBoundedFlag(FlagValue(argc, argv, "--shards="), "--shards=", 1,
                        4096, &shards)) {
    return Usage();
  }
  options.plan.num_shards = static_cast<size_t>(shards);
  options.plan.degree_aware = !HasFlag(argc, argv, "--no-degree-aware");
  options.inner_spec =
      FlagValue(argc, argv, "--inner=").value_or("interval");
  if (auto endpoints = FlagValue(argc, argv, "--endpoints=")) {
    options.endpoints = Split(*endpoints, ',');
  }

  std::printf("graph: %zu nodes, %zu edges\n", g.NumNodes(), g.NumEdges());
  Timer timer;
  auto built = cluster::BuildPartition(g, options, *out);
  if (!built.ok()) {
    std::fprintf(stderr, "partition: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  const double ms = timer.ElapsedMillis();
  const cluster::PartitionMap& map = built->map;
  std::printf("%zu shard(s), %zu boundary vertex(es), %zu cross "
              "edge(s), %s cuts, in %.1f ms\n",
              map.num_shards(), map.boundary.size(),
              map.cross_edges.size(),
              options.plan.degree_aware ? "degree-aware" : "equal", ms);
  for (size_t s = 0; s < map.num_shards(); ++s) {
    std::printf("shard %-2zu: [%llu, %llu) -> %s + %s\n", s,
                static_cast<unsigned long long>(map.ranges[s].begin),
                static_cast<unsigned long long>(map.ranges[s].end),
                built->graph_paths[s].c_str(),
                built->index_paths[s].c_str());
  }
  std::printf("wrote %s\n", built->map_path.c_str());
  return 0;
}

int RunRoute(int argc, char** argv) {
  const auto map_path = FlagValue(argc, argv, "--map=");
  if (!map_path.has_value() || map_path->empty()) {
    std::fprintf(stderr, "route: --map=<file.gtpqmap> is required\n");
    return Usage();
  }
  auto graph = ResolveGraph(argc, argv);
  if (!graph.ok()) {
    std::fprintf(stderr, "route: %s\n", graph.status().ToString().c_str());
    return 1;
  }
  const DataGraph& g = graph.ValueOrDie();

  // The router is just a reachability oracle, so the whole serving
  // stack (coalescing, pipelining, updates) is the regular one over
  // "gtea:cluster:<map>[@endpoints]".
  std::string spec = "cluster:" + *map_path;
  if (auto endpoints = FlagValue(argc, argv, "--endpoints=")) {
    spec += "@" + *endpoints;
  }
  net::NetServerOptions options;
  options.runtime.engine_spec = "gtea:" + spec;
  if (!ParseServeOptions(argc, argv, &options)) return Usage();

  std::printf("graph: %zu nodes, %zu edges; routing via %s\n",
              g.NumNodes(), g.NumEdges(), map_path->c_str());
  return ServeLoop(g, options, "route");
}

int RunRemoteQuery(int argc, char** argv) {
  std::string text;
  if (auto inline_text = FlagValue(argc, argv, "--text=")) {
    text = *inline_text;
    // Shell-friendly inline form: semicolons separate lines.
    for (char& c : text) {
      if (c == ';') c = '\n';
    }
    text.push_back('\n');
  } else if (auto file = FlagValue(argc, argv, "--file=")) {
    std::ifstream in(*file);
    if (!in) {
      std::fprintf(stderr, "query: cannot read %s\n", file->c_str());
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  } else {
    std::fprintf(stderr,
                 "query: one of --file=<query-file> and --text=<query> "
                 "is required\n");
    return Usage();
  }

  auto client = ConnectFlag(argc, argv, "query");
  if (client == nullptr) return 1;
  uint64_t limit = 0;
  if (auto flag = FlagValue(argc, argv, "--limit=")) {
    limit = std::strtoull(flag->c_str(), nullptr, 10);
  }
  uint32_t parallelism = 0;
  if (auto flag = FlagValue(argc, argv, "--parallelism=")) {
    parallelism =
        static_cast<uint32_t>(std::strtoul(flag->c_str(), nullptr, 10));
  }
  // --trace stamps the request with a fresh trace id so the server-side
  // spans (dispatch, evaluate, stages, shard probes) can be picked out
  // of a later `gteactl trace` dump.
  uint64_t trace_id = 0;
  if (HasFlag(argc, argv, "--trace")) trace_id = obs::NewTraceId();

  Timer timer;
  auto result = client->Query(text, limit, parallelism, trace_id);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const double ms = timer.ElapsedMillis();
  std::printf("server: %s (%llu-node graph)\n",
              client->server_info().engine.c_str(),
              static_cast<unsigned long long>(
                  client->server_info().graph_nodes));
  if (trace_id != 0) {
    std::printf("trace id: %016llx\n",
                static_cast<unsigned long long>(trace_id));
  }
  std::printf("epoch %llu, %zu tuple(s) in %.2f ms\n",
              static_cast<unsigned long long>(result->epoch),
              result->result.tuples.size(), ms);
  std::printf("%s", result->result.ToString().c_str());
  return 0;
}

int RunRemoteApply(int argc, char** argv) {
  const auto updates_path = FlagValue(argc, argv, "--updates=");
  if (!updates_path.has_value()) {
    std::fprintf(stderr, "apply: --updates=<file> is required\n");
    return Usage();
  }
  std::ifstream in(*updates_path);
  if (!in) {
    std::fprintf(stderr, "apply: cannot read %s\n", updates_path->c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  auto client = ConnectFlag(argc, argv, "apply");
  if (client == nullptr) return 1;
  auto applied = client->ApplyUpdates(buf.str());
  if (!applied.ok()) {
    std::fprintf(stderr, "apply: %s\n",
                 applied.status().ToString().c_str());
    return 1;
  }
  std::printf("applied %llu batch(es); server now at epoch %llu\n",
              static_cast<unsigned long long>(applied->batches_applied),
              static_cast<unsigned long long>(applied->epoch));
  return 0;
}

int RunRemoteStats(int argc, char** argv) {
  auto client = ConnectFlag(argc, argv, "stats");
  if (client == nullptr) return 1;
  auto stats = client->Stats();
  if (!stats.ok()) {
    std::fprintf(stderr, "stats: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("engine         : %s\n", stats->engine.c_str());
  std::printf("epoch          : %llu\n",
              static_cast<unsigned long long>(stats->epoch));
  std::printf("threads        : %llu\n",
              static_cast<unsigned long long>(stats->threads));
  std::printf("queries        : %llu\n",
              static_cast<unsigned long long>(stats->queries));
  std::printf("batches        : %llu\n",
              static_cast<unsigned long long>(stats->batches));
  std::printf("updates        : %llu\n",
              static_cast<unsigned long long>(stats->updates_applied));
  std::printf("input nodes    : %llu\n",
              static_cast<unsigned long long>(stats->input_nodes));
  std::printf("index lookups  : %llu\n",
              static_cast<unsigned long long>(stats->index_lookups));
  std::printf("busy ms        : %.2f\n", stats->busy_ms);
  std::printf("stage ms       : match %.2f, prune_down %.2f, prime %.2f, "
              "prune_up %.2f, matching_graph %.2f, enumerate %.2f\n",
              stats->match_ms, stats->prune_down_ms, stats->prime_ms,
              stats->prune_up_ms, stats->matching_graph_ms,
              stats->enumerate_ms);
  return 0;
}

/// Shared body of the metrics/trace/slowlog subcommands: one OBSERVE
/// round trip, body printed verbatim (or written to --out= for trace
/// dumps destined for chrome://tracing). `trace --id=<hex>` narrows
/// the dump to one trace — against a router, that is the stitched
/// multi-process view of a single request.
int RunObserve(int argc, char** argv, const char* command,
               net::ObserveKind kind) {
  uint64_t filter = 0;
  if (auto id = FlagValue(argc, argv, "--id=")) {
    filter = std::strtoull(id->c_str(), nullptr, 16);
    if (filter == 0) {
      std::fprintf(stderr,
                   "%s: --id= wants the non-zero hex trace id that "
                   "`gteactl query --trace` printed\n",
                   command);
      return 1;
    }
  }
  auto client = ConnectFlag(argc, argv, command);
  if (client == nullptr) return 1;
  auto body = client->Observe(kind, filter);
  if (!body.ok()) {
    std::fprintf(stderr, "%s: %s\n", command,
                 body.status().ToString().c_str());
    return 1;
  }
  if (filter != 0) {
    char hex[24];
    std::snprintf(hex, sizeof(hex), "%016" PRIx64, filter);
    if (body->find(hex) == std::string::npos) {
      std::fprintf(stderr,
                   "%s: no spans matched trace %s — each process keeps "
                   "only the most recent %zu spans, so an older trace "
                   "may have been evicted from the ring\n",
                   command, hex, obs::TraceRecorder::kCapacity);
    }
  }
  if (auto out = FlagValue(argc, argv, "--out=")) {
    std::ofstream file(*out, std::ios::binary);
    file << *body;
    if (!file) {
      std::fprintf(stderr, "%s: cannot write %s\n", command, out->c_str());
      return 1;
    }
    std::printf("wrote %zu bytes to %s\n", body->size(), out->c_str());
    return 0;
  }
  std::fwrite(body->data(), 1, body->size(), stdout);
  if (!body->empty() && body->back() != '\n') std::printf("\n");
  return 0;
}

/// One dashboard row, extracted from the shard="..." series of a
/// federated snapshot.
struct TopRow {
  uint64_t queries = 0;
  uint64_t probes = 0;
  uint64_t rejected = 0;
  int64_t epoch = -1;
  int64_t healthy = -1;  // -1: no gtpq_shard_healthy gauge for this row
  bool has_latency = false;
  obs::Histogram::Snapshot latency;
};

/// The shard label value of `name` (empty labels / no shard= ->
/// nullopt). Shard labels are "0".."N" and "router", so no unescaping
/// is needed.
std::optional<std::string> ShardOf(const std::string& name,
                                   std::string* base) {
  std::string labels;
  obs::SplitSeriesName(name, base, &labels);
  size_t pos = labels.find("shard=\"");
  if (pos != std::string::npos && pos != 0 && labels[pos - 1] != ',') {
    pos = std::string::npos;
  }
  if (pos == std::string::npos) return std::nullopt;
  const size_t begin = pos + 7;
  const size_t end = labels.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return labels.substr(begin, end - begin);
}

std::map<std::string, TopRow> ExtractTopRows(
    const obs::MetricsSnapshot& snapshot) {
  std::map<std::string, TopRow> rows;
  std::string base;
  for (const auto& [name, value] : snapshot.counters) {
    const auto shard = ShardOf(name, &base);
    if (!shard.has_value()) continue;
    if (base == "gtpq_queries_total") rows[*shard].queries = value;
    if (base == "gtpq_shard_probes_total") rows[*shard].probes = value;
    if (base == "gtpq_admission_rejected_total") {
      rows[*shard].rejected = value;
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const auto shard = ShardOf(name, &base);
    if (!shard.has_value()) continue;
    if (base == "gtpq_epoch") rows[*shard].epoch = value;
    if (base == "gtpq_shard_healthy") rows[*shard].healthy = value;
  }
  for (const auto& [name, value] : snapshot.histograms) {
    const auto shard = ShardOf(name, &base);
    if (!shard.has_value()) continue;
    if (base == "gtpq_query_latency_us") {
      rows[*shard].has_latency = true;
      rows[*shard].latency = value;
    }
  }
  return rows;
}

/// `gteactl top`: terminal dashboard over successive federated
/// snapshots. Each tick scrapes the binary kMetricsSnapshot export
/// (against a router that is the whole cluster, per-shard labels
/// intact), diffs it against the previous tick, and renders per-shard
/// QPS, interval latency percentiles (exact histogram-bucket
/// subtraction, not rendered text), rejection rate, epoch, and the
/// prober's health verdict.
int RunTop(int argc, char** argv) {
  double interval_s = 2.0;
  if (auto flag = FlagValue(argc, argv, "--interval=")) {
    char* end = nullptr;
    interval_s = std::strtod(flag->c_str(), &end);
    if (end == flag->c_str() || *end != '\0' || !(interval_s >= 0.05)) {
      std::fprintf(stderr, "top: --interval= wants seconds >= 0.05\n");
      return 1;
    }
  }
  unsigned long long count = 0;  // 0: run until interrupted
  if (auto flag = FlagValue(argc, argv, "--count=")) {
    count = std::strtoull(flag->c_str(), nullptr, 10);
  }
  auto client = ConnectFlag(argc, argv, "top");
  if (client == nullptr) return 1;

  std::map<std::string, TopRow> prev;
  bool have_prev = false;
  for (unsigned long long tick = 0; count == 0 || tick < count; ++tick) {
    if (have_prev) {
      std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
    auto body = client->Observe(net::ObserveKind::kMetricsSnapshot);
    if (!body.ok()) {
      std::fprintf(stderr, "top: %s\n",
                   body.status().ToString().c_str());
      return 1;
    }
    obs::MetricsSnapshot snapshot;
    const Status decoded = obs::DecodeMetricsSnapshot(*body, &snapshot);
    if (!decoded.ok()) {
      std::fprintf(stderr, "top: %s\n", decoded.ToString().c_str());
      return 1;
    }
    const std::map<std::string, TopRow> rows = ExtractTopRows(snapshot);
    if (rows.empty()) {
      std::fprintf(stderr,
                   "top: the snapshot carries no shard=\"...\" series — "
                   "point --connect= at a `gteactl route` front-end\n");
      return 1;
    }

    if (have_prev) std::printf("\x1b[2J\x1b[H");  // clear + home
    std::printf("%-8s %9s %9s %9s %9s %7s %6s %7s\n", "shard", "qps",
                "probe/s", "p50us", "p99us", "rej/s", "epoch", "health");
    for (const auto& [shard, row] : rows) {
      double qps = 0, pps = 0, rejs = 0;
      double p50 = 0, p99 = 0;
      const auto it = prev.find(shard);
      if (have_prev && it != prev.end()) {
        const TopRow& old = it->second;
        qps = static_cast<double>(row.queries - old.queries) / interval_s;
        pps = static_cast<double>(row.probes - old.probes) / interval_s;
        rejs =
            static_cast<double>(row.rejected - old.rejected) / interval_s;
        if (row.has_latency && old.has_latency &&
            row.latency.counts.size() == old.latency.counts.size()) {
          // Interval percentiles: subtract the previous tick's buckets
          // (counters are monotonic, so the delta is a valid snapshot).
          obs::Histogram::Snapshot delta = row.latency;
          for (size_t i = 0; i < delta.counts.size(); ++i) {
            delta.counts[i] -= old.latency.counts[i];
          }
          delta.sum -= old.latency.sum;
          p50 = delta.Quantile(0.5);
          p99 = delta.Quantile(0.99);
        }
      } else if (row.has_latency) {
        p50 = row.latency.Quantile(0.5);
        p99 = row.latency.Quantile(0.99);
      }
      const char* health = row.healthy < 0 ? "-"
                           : row.healthy > 0 ? "up"
                                             : "DOWN";
      char epoch[24];
      if (row.epoch < 0) {
        std::snprintf(epoch, sizeof(epoch), "-");
      } else {
        std::snprintf(epoch, sizeof(epoch), "%" PRId64, row.epoch);
      }
      std::printf("%-8s %9.1f %9.1f %9.0f %9.0f %7.1f %6s %7s\n",
                  shard.c_str(), qps, pps, p50, p99, rejs, epoch, health);
    }
    std::printf("(tick %llu, interval %.2fs; first tick shows "
                "cumulative percentiles)\n",
                tick + 1, interval_s);
    std::fflush(stdout);
    prev = rows;
    have_prev = true;
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string_view command = argv[1];
  if (HasFlag(argc, argv, "--quiet")) SetLogLevel(LogLevel::kError);
  const bool remote = FlagValue(argc, argv, "--connect=").has_value();
  if (command == "build") return RunBuild(argc, argv);
  if (command == "inspect") return RunInspect(argc, argv);
  if (command == "verify") return RunVerify(argc, argv);
  if (command == "apply") {
    return remote ? RunRemoteApply(argc, argv) : RunApply(argc, argv);
  }
  if (command == "serve") return RunServe(argc, argv);
  if (command == "partition") return RunPartition(argc, argv);
  if (command == "route") return RunRoute(argc, argv);
  if (command == "query") return RunRemoteQuery(argc, argv);
  if (command == "stats") return RunRemoteStats(argc, argv);
  if (command == "metrics") {
    return RunObserve(argc, argv, "metrics", net::ObserveKind::kMetrics);
  }
  if (command == "trace") {
    return RunObserve(argc, argv, "trace", net::ObserveKind::kTrace);
  }
  if (command == "slowlog") {
    return RunObserve(argc, argv, "slowlog", net::ObserveKind::kSlowlog);
  }
  if (command == "top") return RunTop(argc, argv);
  std::fprintf(stderr, "unknown command '%s'\n", argv[1]);
  return Usage();
}

}  // namespace
}  // namespace gtpq

int main(int argc, char** argv) { return gtpq::Run(argc, argv); }
