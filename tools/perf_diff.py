#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts between two runs and flag regressions.

Usage: perf_diff.py <baseline-dir> <current-dir> [--threshold=0.20]
           [--fail-keys=fig10,throughput,restart] [--fail-threshold=0.35]
       perf_diff.py --self-test

Both directories hold the machine-readable reports the bench binaries
emit via --json= (bench/harness.h JsonReport: {"bench": ..., "rows":
[{...}]}). Rows are matched by their identity fields (every
string-valued field plus well-known config integers such as "threads"),
then metric fields are compared:

  * throughput metrics (field name containing "per_sec", "qps" or
    "throughput"): a drop past the threshold (default 20%) is flagged;
  * latency metrics (field name ending in "_ms" or "_time"): a rise
    past threshold + 5 points is flagged.

Findings are printed as GitHub "::warning::" annotations and the exit
code stays 0 — timing jitter on a noisy CI runner must not block a
merge — with one escalation: reports named in --fail-keys (matched
against BENCH_<key>.json) FAIL the diff when a row that exists in both
runs regresses past --fail-threshold (default 35%). Only stable,
matched rows can fail; rows with no baseline counterpart (a new sweep
axis, a changed parameter) are always warn-only, so adding or
reshaping a bench never breaks CI. Missing baselines (first run on a
branch) are reported and skipped. --strict keeps its old meaning: any
warning fails.

--self-test runs the comparison logic against built-in fixtures and
exits non-zero on any disagreement; CI runs it so a refactor of this
script cannot silently stop catching regressions.
"""

import glob
import json
import os
import sys

# Integer config fields that identify a row (as opposed to measured
# metrics): pool sizes, schedule shape, the BENCH_net client/
# pipelining sweep axes, the intra-query parallelism sweep, and the
# BENCH_cluster shard-count sweep.
KEY_INT_FIELDS = {
    "threads",
    "rounds",
    "ops_per_round",
    "iterations_cap",
    "clients",
    "pipeline",
    "requests",
    "parallelism",
    "mmap",
    "shards",
}
THROUGHPUT_MARKERS = ("per_sec", "qps", "throughput")
TIME_SUFFIXES = ("_ms", "_time")


def row_key(row):
    parts = []
    for key, value in sorted(row.items()):
        if isinstance(value, str) or key in KEY_INT_FIELDS:
            parts.append((key, value))
    return tuple(parts)


def index_rows(report):
    rows = {}
    for row in report.get("rows", []):
        key = row_key(row)
        # Preserve duplicates (repeated sweeps) by occurrence index.
        occurrence = 0
        while (key, occurrence) in rows:
            occurrence += 1
        rows[(key, occurrence)] = row
    return rows


def is_throughput(field):
    return any(marker in field for marker in THROUGHPUT_MARKERS)


def is_time(field):
    return field.endswith(TIME_SUFFIXES)


def regressions(name, baseline, current, threshold):
    """Yields (label, field, old, new, drop_fraction) for every matched
    row whose metric regressed past `threshold`. New rows (no baseline
    key) are printed and skipped — never a regression."""
    found = []
    base_rows = index_rows(baseline)
    for key, row in index_rows(current).items():
        label = ", ".join(f"{k}={v}" for k, v in key[0]) or name
        base = base_rows.get(key)
        if base is None:
            # A row key the baseline run never produced — a new sweep
            # axis or bench variant (e.g. a fresh "parallelism" or
            # "shards" column), not a regression. Note it and move on
            # so newly added benches never fail the diff.
            print(f"perf-diff: {name}: new row (no baseline): {label}")
            continue
        for field, value in row.items():
            old = base.get(field)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not isinstance(old, (int, float))
                or old <= 0
                or value <= 0
            ):
                continue
            if is_throughput(field) and value < old * (1.0 - threshold):
                found.append((label, field, old, value, 1 - value / old))
            elif is_time(field) and value > old * (1.0 + threshold + 0.05):
                found.append((label, field, old, value, value / old - 1))
    return found


def describe(name, regression):
    label, field, old, value, fraction = regression
    verb = "fell" if is_throughput(field) else "rose"
    return (
        f"{name}: {label}: {field} {verb} {100 * fraction:.0f}% "
        f"({old:.6g} -> {value:.6g})"
    )


def fail_key_of(name, fail_keys):
    stem = os.path.basename(name)
    if stem.startswith("BENCH_"):
        stem = stem[len("BENCH_"):]
    if stem.endswith(".json"):
        stem = stem[: -len(".json")]
    return stem if stem in fail_keys else None


def self_test():
    baseline = {
        "bench": "t",
        "rows": [
            {"threads": 2, "queries_per_sec": 100.0, "p99_ms": 10.0},
            {"threads": 4, "queries_per_sec": 200.0, "p99_ms": 8.0},
        ],
    }
    checks = []

    def check(what, condition):
        checks.append((what, condition))
        print(f"perf-diff self-test: {'ok' if condition else 'FAIL'}: {what}")

    # Identical runs: clean.
    checks_found = regressions("t", baseline, baseline, 0.20)
    check("identical runs produce no findings", checks_found == [])

    # A matched row past the threshold is found, on the right row.
    dropped = json.loads(json.dumps(baseline))
    dropped["rows"][1]["queries_per_sec"] = 100.0  # -50%
    found = regressions("t", baseline, dropped, 0.20)
    check("50% throughput drop on threads=4 is found",
          len(found) == 1 and "threads=4" in found[0][0])
    check("drop fraction is 0.5",
          len(found) == 1 and abs(found[0][4] - 0.5) < 1e-9)

    # Latency gets the +5pt grace: +22% passes at 0.20, +40% fails.
    slower = json.loads(json.dumps(baseline))
    slower["rows"][0]["p99_ms"] = 12.2
    check("latency +22% within grace produces no finding",
          regressions("t", baseline, slower, 0.20) == [])
    slower["rows"][0]["p99_ms"] = 14.0
    check("latency +40% is found",
          len(regressions("t", baseline, slower, 0.20)) == 1)

    # A drop below the fail threshold warns but does not fail.
    mild = json.loads(json.dumps(baseline))
    mild["rows"][1]["queries_per_sec"] = 140.0  # -30%
    check("30% drop found at 0.20 but not at 0.35",
          len(regressions("t", baseline, mild, 0.20)) == 1
          and regressions("t", baseline, mild, 0.35) == [])

    # A row with a changed key column matches nothing: warn-only path.
    rekeyed = json.loads(json.dumps(dropped))
    rekeyed["rows"][1]["threads"] = 8
    check("param-changed row is skipped, not a regression",
          regressions("t", baseline, rekeyed, 0.20) == [])

    # Fail-key routing: only the enrolled artifact names escalate.
    keys = {"fig10", "throughput", "restart"}
    check("BENCH_fig10.json routes to fail key",
          fail_key_of("BENCH_fig10.json", keys) == "fig10")
    check("BENCH_cluster.json stays warn-only",
          fail_key_of("BENCH_cluster.json", keys) is None)

    failed = [what for what, condition in checks if not condition]
    if failed:
        print(f"perf-diff self-test: {len(failed)} check(s) failed",
              file=sys.stderr)
        return 1
    print(f"perf-diff self-test: all {len(checks)} checks passed")
    return 0


def main(argv):
    if "--self-test" in argv[1:]:
        return self_test()
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_dir, current_dir = args
    threshold = 0.20
    fail_threshold = 0.35
    fail_keys = set()
    strict = False
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--fail-threshold="):
            fail_threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--fail-keys="):
            fail_keys = {
                k for k in arg.split("=", 1)[1].split(",") if k
            }
        elif arg == "--strict":
            strict = True

    current_files = sorted(glob.glob(os.path.join(current_dir, "BENCH_*.json")))
    if not current_files:
        print(f"perf-diff: no BENCH_*.json in {current_dir}", file=sys.stderr)
        return 2

    all_warnings = []
    all_failures = []
    compared = 0
    for current_path in current_files:
        name = os.path.basename(current_path)
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(baseline_path):
            print(f"perf-diff: no baseline for {name}, skipping")
            continue
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(current_path) as fh:
            current = json.load(fh)
        compared += 1
        found = regressions(name, baseline, current, threshold)
        all_warnings.extend(describe(name, r) for r in found)
        if fail_key_of(name, fail_keys) is not None:
            # Same matched rows, harder gate: these artifacts have
            # proven stable enough that a regression this deep is a
            # code change, not runner noise.
            hard = regressions(name, baseline, current, fail_threshold)
            all_failures.extend(describe(name, r) for r in hard)

    if compared == 0:
        print("perf-diff: no baselines found (first run?); nothing compared")
        return 0
    for warning in all_warnings:
        print(f"::warning title=bench regression::{warning}")
    for failure in all_failures:
        print(f"::error title=bench regression::{failure}")
    if all_failures:
        print(f"perf-diff: {len(all_failures)} hard regression(s) past "
              f"{100 * fail_threshold:.0f}% in enrolled reports")
        return 1
    if not all_warnings:
        print(f"perf-diff: {compared} report(s) compared, no regressions "
              f"past {100 * threshold:.0f}%")
        return 0
    print(f"perf-diff: {len(all_warnings)} possible regression(s) across "
          f"{compared} report(s) (warn-only)")
    return 1 if strict else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
