#!/usr/bin/env python3
"""Compare BENCH_*.json artifacts between two runs and flag regressions.

Usage: perf_diff.py <baseline-dir> <current-dir> [--threshold=0.20]

Both directories hold the machine-readable reports the bench binaries
emit via --json= (bench/harness.h JsonReport: {"bench": ..., "rows":
[{...}]}). Rows are matched by their identity fields (every
string-valued field plus well-known config integers such as "threads"),
then metric fields are compared:

  * throughput metrics (field name containing "per_sec", "qps" or
    "throughput"): a drop past the threshold (default 20%) is flagged;
  * latency metrics (field name ending in "_ms" or "_time"): a rise
    past threshold + 5 points is flagged.

Warn-only by design: findings are printed as GitHub "::warning::"
annotations and the exit code stays 0 (pass --strict to fail instead),
so a noisy CI runner can never block a merge on timing jitter. Missing
baselines (first run on a branch) are reported and skipped.
"""

import glob
import json
import os
import sys

# Integer config fields that identify a row (as opposed to measured
# metrics): pool sizes, schedule shape, the BENCH_net client/
# pipelining sweep axes, and the intra-query parallelism sweep.
KEY_INT_FIELDS = {
    "threads",
    "rounds",
    "ops_per_round",
    "iterations_cap",
    "clients",
    "pipeline",
    "requests",
    "parallelism",
    "mmap",
}
THROUGHPUT_MARKERS = ("per_sec", "qps", "throughput")
TIME_SUFFIXES = ("_ms", "_time")


def row_key(row):
    parts = []
    for key, value in sorted(row.items()):
        if isinstance(value, str) or key in KEY_INT_FIELDS:
            parts.append((key, value))
    return tuple(parts)


def index_rows(report):
    rows = {}
    for row in report.get("rows", []):
        key = row_key(row)
        # Preserve duplicates (repeated sweeps) by occurrence index.
        occurrence = 0
        while (key, occurrence) in rows:
            occurrence += 1
        rows[(key, occurrence)] = row
    return rows


def is_throughput(field):
    return any(marker in field for marker in THROUGHPUT_MARKERS)


def is_time(field):
    return field.endswith(TIME_SUFFIXES)


def compare_reports(name, baseline, current, threshold):
    warnings = []
    base_rows = index_rows(baseline)
    for key, row in index_rows(current).items():
        label = ", ".join(f"{k}={v}" for k, v in key[0]) or name
        base = base_rows.get(key)
        if base is None:
            # A row key the baseline run never produced — a new sweep
            # axis or bench variant (e.g. a fresh "parallelism" or
            # "mmap" column), not a regression. Note it and move on so
            # newly added benches never fail the diff.
            print(f"perf-diff: {name}: new row (no baseline): {label}")
            continue
        for field, value in row.items():
            old = base.get(field)
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not isinstance(old, (int, float))
                or old <= 0
                or value <= 0
            ):
                continue
            if is_throughput(field) and value < old * (1.0 - threshold):
                warnings.append(
                    f"{name}: {label}: {field} fell {100 * (1 - value / old):.0f}% "
                    f"({old:.6g} -> {value:.6g})"
                )
            elif is_time(field) and value > old * (1.0 + threshold + 0.05):
                warnings.append(
                    f"{name}: {label}: {field} rose {100 * (value / old - 1):.0f}% "
                    f"({old:.6g} -> {value:.6g})"
                )
    return warnings


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    if len(args) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    baseline_dir, current_dir = args
    threshold = 0.20
    strict = False
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg == "--strict":
            strict = True

    current_files = sorted(glob.glob(os.path.join(current_dir, "BENCH_*.json")))
    if not current_files:
        print(f"perf-diff: no BENCH_*.json in {current_dir}", file=sys.stderr)
        return 2

    all_warnings = []
    compared = 0
    for current_path in current_files:
        name = os.path.basename(current_path)
        baseline_path = os.path.join(baseline_dir, name)
        if not os.path.exists(baseline_path):
            print(f"perf-diff: no baseline for {name}, skipping")
            continue
        with open(baseline_path) as fh:
            baseline = json.load(fh)
        with open(current_path) as fh:
            current = json.load(fh)
        compared += 1
        all_warnings.extend(compare_reports(name, baseline, current, threshold))

    if compared == 0:
        print("perf-diff: no baselines found (first run?); nothing compared")
        return 0
    if not all_warnings:
        print(f"perf-diff: {compared} report(s) compared, no regressions "
              f"past {100 * threshold:.0f}%")
        return 0
    for warning in all_warnings:
        print(f"::warning title=bench regression::{warning}")
    print(f"perf-diff: {len(all_warnings)} possible regression(s) across "
          f"{compared} report(s) (warn-only)")
    return 1 if strict else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
