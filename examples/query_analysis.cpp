// Static query analysis (Section 3): satisfiability, containment,
// equivalence and minimization on the paper's Fig 4 queries.
#include <cstdio>

#include "core/analysis.h"
#include "query/query_parser.h"

using namespace gtpq;

namespace {

Gtpq Parse(std::shared_ptr<AttrNames> names, const std::string& text) {
  auto q = ParseQuery(text, names);
  GTPQ_CHECK(q.ok()) << q.status().ToString();
  return q.TakeValue();
}

}  // namespace

int main() {
  auto names = std::make_shared<AttrNames>();
  // Fig 4's Q1 (AD edge to u2) with fs(u1) = p_u2.
  Gtpq q1 = Parse(names, R"(
backbone u1 root
predicate u2 u1 ad
predicate u4 u2 ad
backbone u3 u1 ad *
predicate u5 u3 ad
predicate u8 u5 ad
predicate u6 u3 ad
predicate u7 u6 ad
attr u1 label=1
attr u2 label=2
attr u4 label=3
attr u3 label=6
attr u5 label=4
attr u8 label=5
attr u6 label=2
attr u7 label=3
fs u1 = u2
fs u2 = u4
fs u5 = u8
fs u6 = u7
fs u3 = (u5 & u6) | (!u5 & u6)
)");
  // The unsatisfiable variant: fs(u1) = !u2 (Example 4).
  Gtpq q1_neg = Parse(names, R"(
backbone u1 root
predicate u2 u1 ad
predicate u4 u2 ad
backbone u3 u1 ad *
predicate u6 u3 ad
predicate u7 u6 ad
attr u1 label=1
attr u2 label=2
attr u4 label=3
attr u3 label=6
attr u6 label=2
attr u7 label=3
fs u1 = !u2
fs u6 = u7
fs u3 = u6
)");

  std::printf("Q1 (positive) satisfiable: %s\n",
              IsSatisfiable(q1) ? "yes" : "no");
  std::printf("Q1 (negated, Example 4) satisfiable: %s  <- the "
              "subsumption u2 E u6 contradicts !u2\n",
              IsSatisfiable(q1_neg) ? "yes" : "no");

  QueryAnalysis a(q1);
  std::printf("\nAnalysis of Q1: %zu nodes, independently-constraint "
              "flags:\n", q1.NumNodes());
  for (QNodeId u = 0; u < q1.NumNodes(); ++u) {
    std::printf("  %-4s ic=%d\n", q1.node(u).name.c_str(),
                a.independently_constraint(u) ? 1 : 0);
  }
  std::printf("fcs(root) = %s\n",
              logic::ToString(a.fcs(q1.root()), [&q1](int v) {
                return q1.node(static_cast<QNodeId>(v)).name;
              }).c_str());

  Gtpq minimized = Minimize(q1);
  std::printf("\nMinimize(Q1): %zu -> %zu nodes (Example 6: the u2/u4 "
              "branch is subsumed by u6/u7)\n", q1.size(),
              minimized.size());
  std::printf("minimized:\n%s", minimized.ToString(*names).c_str());
  std::printf("\nEquivalent(minimized, Q1): %s\n",
              AreEquivalent(minimized, q1) ? "yes" : "no");
  return 0;
}
