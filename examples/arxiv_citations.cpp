// Citation-graph exploration on the arXiv-like dataset: random tree
// pattern queries over authors, papers and citation chains, evaluated
// with GTEA and cross-checked against TwigStackD.
#include <cstdio>

#include "baselines/twigstackd.h"
#include "core/gtea.h"
#include "query/query_generator.h"
#include "reachability/sspi.h"
#include "workload/arxiv.h"

using namespace gtpq;

int main() {
  workload::ArxivOptions o;
  DataGraph g = workload::GenerateArxiv(o);
  std::printf("arXiv graph: %zu nodes, %zu edges, %zu labels\n",
              g.NumNodes(), g.NumEdges(), g.NumDistinctLabels());

  GteaEngine engine(g);
  auto sspi = Sspi::Build(g.graph());

  int shown = 0;
  for (uint64_t seed = 1; seed <= 200 && shown < 5; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 7;
    qo.output_fraction = 1.0;
    qo.seed = seed;
    auto q = GenerateRandomQuery(g, qo);
    if (!q.has_value()) continue;
    auto result = engine.Evaluate(*q);
    if (result.tuples.empty() || result.tuples.size() > 200) continue;

    EngineStats stats;
    auto check = EvaluateTwigStackD(g, sspi, *q, &stats);
    std::printf("query %llu: %zu results in %.3f ms "
                "(TwigStackD agrees: %s, %.0fx index lookups)\n",
                static_cast<unsigned long long>(seed),
                result.tuples.size(), engine.stats().total_ms,
                check == result ? "yes" : "NO",
                engine.stats().index_lookups == 0
                    ? 0.0
                    : static_cast<double>(stats.index_lookups) /
                          static_cast<double>(
                              engine.stats().index_lookups));
    ++shown;
  }
  return 0;
}
