// Runs the paper's XMark workload end to end: generates the synthetic
// auction graph, evaluates Q1..Q3 with GTEA, and contrasts a
// disjunctive and a negated variant of the Fig 11 pattern.
#include <cstdio>

#include "core/gtea.h"
#include "workload/xmark.h"
#include "workload/xmark_queries.h"

using namespace gtpq;

int main() {
  workload::XmarkOptions o;
  o.scale = 0.01;
  DataGraph g = workload::GenerateXmark(o);
  std::printf("XMark graph: %zu nodes, %zu edges\n", g.NumNodes(),
              g.NumEdges());

  GteaEngine engine(g);
  auto report = [&engine](const char* tag, const Gtpq& q) {
    auto result = engine.Evaluate(q);
    std::printf("%s %zu results, %.2f ms\n", tag, result.tuples.size(),
                engine.stats().total_ms);
  };
  auto q1 = workload::BuildXmarkQ1(g, 3);
  auto q2 = workload::BuildXmarkQ2(g, 3, 4);
  auto q3 = workload::BuildXmarkQ3(g, 3, 4, 5);
  report("Q1 (auction/bidder->person):", q1.query);
  report("Q2 (+item branch):          ", q2.query);
  report("Q3 (+seller->person2):      ", q3.query);

  auto dis = workload::BuildExp2Query(g, 3, 4, "DIS1");
  auto neg = workload::BuildExp2Query(g, 3, 4, "NEG1");
  if (dis.ok() && neg.ok()) {
    report("DIS1 (bidder OR seller):    ", dis->query);
    report("NEG1 (person w/o education):", neg->query);
  }
  return 0;
}
