// Quickstart: build a small data graph, pose a GTPQ with AND/OR/NOT
// structural predicates, and evaluate it with GTEA.
//
//   ./examples/quickstart
#include <cstdio>

#include "core/gtea.h"
#include "query/gtpq.h"

using namespace gtpq;

int main() {
  // A tiny publication graph:
  //   paper nodes (label 1) reference author nodes (label 2) and cite
  //   other papers.
  DataGraph g(7);
  g.SetLabel(0, 1);  // paper A
  g.SetLabel(1, 1);  // paper B
  g.SetLabel(2, 1);  // paper C
  g.SetLabel(3, 2);  // author alice
  g.SetLabel(4, 2);  // author bob
  g.SetAttr(3, "name", AttrValue("alice"));
  g.SetAttr(4, "name", AttrValue("bob"));
  g.SetLabel(5, 3);  // venue X
  g.SetLabel(6, 3);  // venue Y
  g.AddEdge(0, 3);   // A -> alice
  g.AddEdge(0, 4);   // A -> bob
  g.AddEdge(1, 3);   // B -> alice
  g.AddEdge(2, 4);   // C -> bob
  g.AddEdge(0, 1);   // A cites B
  g.AddEdge(1, 5);   // B -> venue X
  g.AddEdge(0, 5);
  g.AddEdge(2, 6);
  g.Finalize();

  // Query: papers by alice that are NOT co-authored with bob —
  // a tree pattern with a negated structural predicate (the paper's Q3
  // flavour from Example 1).
  QueryBuilder b(g.attr_names_ptr());
  QNodeId paper = b.AddRoot("paper", b.Label(1));
  AttributePredicate alice = b.Label(2);
  alice.AddAtom(g.attr_names()->Intern("name"), CmpOp::kEq,
                AttrValue("alice"));
  AttributePredicate bob = b.Label(2);
  bob.AddAtom(g.attr_names()->Intern("name"), CmpOp::kEq,
              AttrValue("bob"));
  QNodeId pa = b.AddPredicate(paper, EdgeType::kChild, "alice", alice);
  QNodeId pb = b.AddPredicate(paper, EdgeType::kChild, "bob", bob);
  b.SetStructural(paper,
                  logic::Formula::And(
                      logic::Formula::Var(static_cast<int>(pa)),
                      logic::Formula::Not(
                          logic::Formula::Var(static_cast<int>(pb)))));
  b.MarkOutput(paper);
  Gtpq q = b.Build().TakeValue();

  std::printf("Query:\n%s\n", q.ToString(*g.attr_names()).c_str());

  GteaEngine engine(g);
  QueryResult result = engine.Evaluate(q);
  std::printf("Answer: %s\n", result.ToString().c_str());
  std::printf("(expected: paper v1 — authored by alice without bob)\n");
  std::printf("stats: %llu nodes read, %llu index lookups, "
              "%.3f ms total\n",
              static_cast<unsigned long long>(engine.stats().input_nodes),
              static_cast<unsigned long long>(
                  engine.stats().index_lookups),
              engine.stats().total_ms);

  // The evaluation pipeline is parameterized by its reachability
  // oracle: any registered backend drives the identical algorithm, and
  // #index exposes each oracle's probe cost for the same answer.
  std::printf("\nBackend sweep (same answer, per-oracle #index):\n");
  for (ReachabilityBackend backend : AllReachabilityBackends()) {
    GteaEngine e(g, backend);
    QueryResult r = e.Evaluate(q);
    std::printf("  %-26s tuples=%zu  #index=%llu\n",
                std::string(e.name()).c_str(), r.tuples.size(),
                static_cast<unsigned long long>(e.stats().index_lookups));
  }
  return 0;
}
