// The paper's Example 1, end to end: a DBLP-style graph where
// inproceedings records reference proceedings volumes through crossref
// edges, queried with Q1 (conjunctive), Q2 (disjunctive) and Q3
// (negation) — the three logical variants of one tree pattern.
#include <cstdio>

#include "common/rng.h"
#include "core/gtea.h"
#include "query/query_parser.h"

using namespace gtpq;

namespace {

// Labels: 1=inproceedings 2=proceedings 3=author 4=title 5=year 6=crossref
DataGraph BuildDblp() {
  DataGraph g;
  Rng rng(7);
  const char* authors[] = {"Alice", "Bob", "Carol", "Dan"};
  std::vector<NodeId> volumes;
  for (int v = 0; v < 8; ++v) {
    NodeId vol = g.AddNode(2);
    NodeId year = g.AddNode(5);
    g.SetAttr(year, "value", AttrValue(int64_t{1995 + v * 3}));
    NodeId title = g.AddNode(4);
    g.AddEdge(vol, year);
    g.AddEdge(vol, title);
    volumes.push_back(vol);
  }
  for (int p = 0; p < 40; ++p) {
    NodeId paper = g.AddNode(1);
    NodeId title = g.AddNode(4);
    g.AddEdge(paper, title);
    const size_t num_authors = 1 + rng.NextBounded(3);
    auto picks = rng.SampleDistinct(4, num_authors);
    for (size_t a : picks) {
      NodeId author = g.AddNode(3);
      g.SetAttr(author, "value", AttrValue(authors[a]));
      g.AddEdge(paper, author);
    }
    NodeId crossref = g.AddNode(6);
    g.AddEdge(paper, crossref);
    g.AddEdge(crossref, volumes[rng.NextBounded(volumes.size())]);
  }
  g.Finalize();
  return g;
}

Gtpq Parse(const DataGraph& g, const std::string& fs_line) {
  std::string text = R"(
backbone paper root *
predicate alice paper pc
predicate bob paper pc
backbone title paper pc *
backbone crossref paper pc
backbone proceedings crossref pc
backbone year proceedings pc *
attr paper label=1
attr alice label=3 value="Alice"
attr bob label=3 value="Bob"
attr title label=4
attr crossref label=6
attr proceedings label=2
attr year label=5 value>=2000 value<=2010
)";
  text += fs_line;
  auto q = ParseQuery(text, g.attr_names_ptr());
  GTPQ_CHECK(q.ok()) << q.status().ToString();
  return q.TakeValue();
}

}  // namespace

int main() {
  DataGraph g = BuildDblp();
  GteaEngine engine(g);

  struct Case {
    const char* name;
    const char* description;
    const char* fs;
  } cases[] = {
      {"Q1", "papers by Alice AND Bob, published 2000-2010",
       "fs paper = alice & bob\n"},
      {"Q2", "papers by Alice OR Bob, published 2000-2010",
       "fs paper = alice | bob\n"},
      {"Q3", "papers by Alice and NOT Bob, published 2000-2010",
       "fs paper = alice & !bob\n"},
  };
  for (const auto& c : cases) {
    Gtpq q = Parse(g, c.fs);
    auto result = engine.Evaluate(q);
    double ms = engine.stats().total_ms;
    std::printf("%s (%s): %zu results, %.3f ms\n", c.name,
                c.description, result.tuples.size(), ms);
  }
  std::printf("\nNote how one tree pattern serves all three queries — "
              "only the structural predicate changes (Example 1 / "
              "Fig 1 of the paper).\n");
  return 0;
}
