// Reproduces Exp-1 / Fig 12(a): GTEA processing time on the Fig 11
// query while the output-node set varies (Table 3's Q4..Q8), plus the
// Table 5 result counts.
#include "bench/harness.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

int main() {
  const double s = BenchScale();
  const int reps = BenchReps();
  workload::XmarkOptions o;
  o.scale = 4.0 * s;
  DataGraph g = workload::GenerateXmark(o);
  EngineBench engines(g);

  std::printf("Fig 12(a) / Tables 3+5: GTEA vs output-node sets "
              "(XMark scale 4, GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-6s %10s %12s %10s\n", "Query", "#outputs", "GTEA(ms)",
              "#results");
  for (int variant = 4; variant <= 8; ++variant) {
    auto wq = workload::BuildExp1Query(g, 3, 4, variant);
    if (!wq.ok()) {
      std::printf("Q%d: %s\n", variant, wq.status().ToString().c_str());
      continue;
    }
    QueryResult result;
    double ms = MinTimeMs(
        [&] { result = engines.RunGtea(wq->query); }, reps);
    std::printf("Q%-5d %10zu %12.2f %10zu\n", variant,
                wq->query.outputs().size(), ms, result.tuples.size());
  }
  std::printf("\nPaper shape: fewer output nodes -> smaller prime "
              "subtree -> generally less processing time.\n");
  return 0;
}
