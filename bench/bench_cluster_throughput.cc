// Sharded-cluster serving throughput: partitions the workload graph
// into S shards, hosts S in-process shard servers plus a gtpq-wire
// router in front of them, and drives the ROUTER with N pipelining
// client threads — so every reachability probe a query needs crosses
// the wire to the owning shard. Reports qps and p50/p99 per
// (shards, clients, pipeline) configuration and verifies every routed
// answer differentially against a single in-process QueryServer over
// the unpartitioned graph.
//
//   --shards=1,3               shard-count sweep (self-hosted mode)
//   --clients=1,2              client-thread sweep
//   --pipeline=4               pipelining-depth sweep
//   --queries=8                distinct random queries in the pool
//   --requests=16              requests per client per configuration
//   --limit=64                 per-query result cap sent on the wire
//   --threads=2                pool threads per hosted server
//   --inner=interval           per-shard index spec
//   --gen=digraph:300,7,3      deterministic workload graph spec
//   --connect=host:port        drive an external `gteactl route`
//                              instead (the graph is rebuilt locally
//                              from --gen=, which must match; rows are
//                              labeled with the first --shards= value)
//   --json=<path>              machine-readable rows (CI perf tracking)
//   --quiet                    suppress log output below error level
//
// Defaults are deliberately small: unlike bench_net_throughput, every
// reachability probe inside a routed query is a loopback RTT to a
// shard, so per-query latency is dominated by probe fan-out.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "cluster/partition.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/graph_io.h"
#include "net/client.h"
#include "net/server.h"
#include "query/query_generator.h"
#include "runtime/query_server.h"
#include "workload/graph_gen_spec.h"

using namespace gtpq;
using namespace gtpq::bench;

namespace {

struct ClientStats {
  std::vector<double> latencies_us;
  uint64_t mismatches = 0;
  uint64_t errors = 0;
};

/// One client connection driving `requests` pipelined queries against
/// the router. Mirrors bench_net_throughput's client loop.
ClientStats RunClient(const std::string& host, uint16_t port,
                      const std::vector<std::string>& texts,
                      const std::vector<QueryResult>& expected,
                      size_t requests, size_t pipeline, uint64_t limit) {
  ClientStats out;
  net::NetClient client;
  const Status connected = net::ConnectWithRetry(&client, host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "client: %s\n", connected.ToString().c_str());
    out.errors = requests;
    return out;
  }
  Timer clock;
  struct InFlight {
    size_t query_index;
    double sent_us;
  };
  std::unordered_map<uint64_t, InFlight> inflight;
  size_t sent = 0, done = 0;

  auto send_next = [&]() -> bool {
    const size_t index = sent % texts.size();
    auto id = client.SendQuery(texts[index], limit);
    if (!id.ok()) {
      std::fprintf(stderr, "client: %s\n", id.status().ToString().c_str());
      return false;
    }
    inflight.emplace(*id, InFlight{index, clock.ElapsedMicros()});
    ++sent;
    return true;
  };

  for (size_t i = 0; i < std::min(pipeline, requests); ++i) {
    if (!send_next()) {
      out.errors = requests;
      return out;
    }
  }
  while (done < requests) {
    auto frame = client.Receive();
    if (!frame.ok()) {
      std::fprintf(stderr, "client: %s\n",
                   frame.status().ToString().c_str());
      out.errors += requests - done;
      return out;
    }
    const double now_us = clock.ElapsedMicros();
    auto it = inflight.find(frame->request_id);
    if (it == inflight.end() ||
        frame->type != net::FrameType::kResult) {
      ++out.errors;
      if (it != inflight.end()) inflight.erase(it);
    } else {
      out.latencies_us.push_back(now_us - it->second.sent_us);
      net::WireResult result;
      if (!net::DecodeResult(frame->payload, &result).ok() ||
          result.result != expected[it->second.query_index]) {
        ++out.mismatches;
      }
      inflight.erase(it);
    }
    ++done;
    if (sent < requests && !send_next()) {
      out.errors += requests - done;
      return out;
    }
  }
  return out;
}

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

/// A fully self-hosted cluster: shard servers plus a router server
/// whose engine speaks `cluster:` to them. Holds the shard graphs
/// alive for the servers that reference them.
struct HostedCluster {
  std::vector<DataGraph> shard_graphs;
  std::vector<std::unique_ptr<net::NetServer>> shard_servers;
  std::unique_ptr<net::NetServer> router;
};

bool BringUp(const DataGraph& g, size_t shards, const std::string& inner,
             size_t threads, const std::string& dir, HostedCluster* out) {
  cluster::BuildPartitionOptions options;
  options.plan.num_shards = shards;
  options.inner_spec = inner;
  auto built = cluster::BuildPartition(g, options, dir);
  if (!built.ok()) {
    std::fprintf(stderr, "partition: %s\n",
                 built.status().ToString().c_str());
    return false;
  }
  const size_t actual = built->map.num_shards();
  out->shard_graphs.reserve(actual);
  std::string endpoints;
  for (size_t s = 0; s < actual; ++s) {
    auto local = LoadDataGraphFromFile(built->graph_paths[s]);
    if (!local.ok()) {
      std::fprintf(stderr, "shard %zu: %s\n", s,
                   local.status().ToString().c_str());
      return false;
    }
    out->shard_graphs.push_back(local.TakeValue());
    net::NetServerOptions so;
    so.runtime.num_threads = threads;
    so.runtime.engine_spec = "gtea:file:" + built->index_paths[s];
    out->shard_servers.push_back(std::make_unique<net::NetServer>(
        out->shard_graphs[s], so));
    const Status started = out->shard_servers[s]->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "shard %zu: %s\n", s,
                   started.ToString().c_str());
      return false;
    }
    if (!endpoints.empty()) endpoints += ',';
    endpoints += "127.0.0.1:" +
                 std::to_string(out->shard_servers[s]->port());
  }

  net::NetServerOptions ro;
  ro.runtime.num_threads = threads;
  ro.runtime.engine_spec =
      "gtea:cluster:" + built->map_path + "@" + endpoints;
  out->router = std::make_unique<net::NetServer>(g, ro);
  const Status started = out->router->Start();
  if (!started.ok()) {
    std::fprintf(stderr, "router: %s\n", started.ToString().c_str());
    return false;
  }
  // The factory falls back to the default oracle when the cluster spec
  // cannot connect; a bench silently measuring that fallback would
  // report single-node numbers as cluster numbers.
  net::NetClient probe;
  if (!net::ConnectWithRetry(&probe, "127.0.0.1", out->router->port())
           .ok()) {
    std::fprintf(stderr, "router: cannot connect for engine check\n");
    return false;
  }
  auto stats = probe.Stats();
  if (!stats.ok() ||
      stats->engine.find("cluster:") == std::string::npos) {
    std::fprintf(stderr, "router engine is '%s', not a cluster engine\n",
                 stats.ok() ? stats->engine.c_str() : "<unreachable>");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = JsonFlag(argc, argv);
  const auto shard_sweep = SizeListFlag(argc, argv, "--shards=", "1,3");
  const auto client_sweep = SizeListFlag(argc, argv, "--clients=", "1,2");
  const auto pipeline_sweep =
      SizeListFlag(argc, argv, "--pipeline=", "4");
  const size_t num_queries = SizeFlag(argc, argv, "--queries=", 8);
  const size_t requests = SizeFlag(argc, argv, "--requests=", 16);
  const uint64_t limit = SizeFlag(argc, argv, "--limit=", 64);
  const size_t threads = SizeFlag(argc, argv, "--threads=", 2);
  const auto inner =
      SplitFlag(argc, argv, "--inner=", "interval").front();
  std::string connect, gen_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) connect = argv[i] + 10;
    if (std::strncmp(argv[i], "--gen=", 6) == 0) gen_spec = argv[i] + 6;
    // Router wire-failure warnings (expected during teardown races)
    // otherwise interleave with the result table.
    if (std::strcmp(argv[i], "--quiet") == 0) {
      SetLogLevel(LogLevel::kError);
    }
  }
  if (gen_spec.empty()) {
    // Deterministic default sized by the global scale knob; the graph
    // stays modest because every routed reachability probe is an RTT.
    size_t nodes = static_cast<size_t>(15000 * BenchScale());
    if (nodes < 300) nodes = 300;
    gen_spec = "digraph:" + std::to_string(nodes) + ",7,3";
  }
  for (size_t value : shard_sweep) {
    if (value == 0) {
      std::fprintf(stderr, "--shards entries must be > 0\n");
      return 2;
    }
  }
  if (shard_sweep.empty() || client_sweep.empty() ||
      pipeline_sweep.empty() || num_queries == 0 || requests == 0) {
    std::fprintf(stderr,
                 "--shards/--clients/--pipeline/--queries/--requests "
                 "must be non-empty\n");
    return 2;
  }

  auto generated = workload::GenerateGraphFromSpec(gen_spec);
  if (!generated.ok()) {
    std::fprintf(stderr, "--gen=%s: %s\n", gen_spec.c_str(),
                 generated.status().ToString().c_str());
    return 2;
  }
  const DataGraph g = generated.TakeValue();

  std::vector<Gtpq> queries;
  for (uint64_t seed = 1;
       queries.size() < num_queries && seed < 40 * num_queries; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 5 + seed % 3;
    qo.pc_probability = 0.2;
    qo.output_fraction = 0.6;
    qo.seed = seed * 17 + 3;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "query generator starved\n");
    return 1;
  }
  std::vector<std::string> texts;
  for (const Gtpq& q : queries) {
    texts.push_back(q.ToString(g.attr_names()));
  }

  // The single in-process QueryServer over the UNPARTITIONED graph is
  // the differential baseline: a routed cluster of any shard count must
  // answer byte-identically.
  QueryServerOptions ref_options;
  ref_options.num_threads = threads;
  ref_options.engine_spec = "gtea";
  GteaOptions ref_eval;
  ref_eval.result_limit = static_cast<size_t>(limit);
  QueryServer reference(g, ref_options);
  const std::vector<QueryResult> expected =
      reference.EvaluateBatch(queries, nullptr, ref_eval);

  std::printf("Cluster serving throughput: %s (%zu nodes), %zu-query "
              "pool, %zu requests/client\n",
              gen_spec.c_str(), g.NumNodes(), queries.size(), requests);
  std::printf("%8s %8s %10s %10s %12s %10s %10s %10s\n", "shards",
              "clients", "pipeline", "requests", "qps", "p50 ms",
              "p99 ms", "wall ms");

  JsonReport report("cluster_throughput");
  report.AddMeta("nodes", static_cast<uint64_t>(g.NumNodes()));
  report.AddMeta("pool_queries", static_cast<uint64_t>(queries.size()));
  report.AddMeta("result_limit", limit);

  uint64_t total_requests = 0, total_bad = 0;
  const std::string tmp_root =
      (std::filesystem::temp_directory_path() /
       ("gtpq_bench_cluster_" + std::to_string(getpid())))
          .string();

  const std::vector<size_t> hosted_shards =
      connect.empty() ? shard_sweep
                      : std::vector<size_t>{shard_sweep.front()};
  for (size_t shards : hosted_shards) {
    HostedCluster hosted;
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    if (connect.empty()) {
      const std::string dir = tmp_root + "/s" + std::to_string(shards);
      std::error_code ec;
      std::filesystem::create_directories(dir, ec);
      if (ec || !BringUp(g, shards, inner, threads, dir, &hosted)) {
        std::filesystem::remove_all(tmp_root, ec);
        return 1;
      }
      port = hosted.router->port();
    } else if (!net::ParseHostPort(connect, &host, &port)) {
      std::fprintf(stderr, "malformed --connect= value '%s' (want "
                           "host:port)\n",
                   connect.c_str());
      return 2;
    }

    for (size_t clients : client_sweep) {
      for (size_t pipeline : pipeline_sweep) {
        if (clients == 0 || pipeline == 0) {
          std::fprintf(stderr, "--clients/--pipeline must be > 0\n");
          return 2;
        }
        std::vector<ClientStats> stats(clients);
        Timer wall;
        {
          std::vector<std::thread> workers;
          for (size_t c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
              stats[c] = RunClient(host, port, texts, expected, requests,
                                   pipeline, limit);
            });
          }
          for (std::thread& worker : workers) worker.join();
        }
        const double wall_ms = wall.ElapsedMillis();

        std::vector<double> latencies;
        uint64_t bad = 0;
        for (const ClientStats& s : stats) {
          latencies.insert(latencies.end(), s.latencies_us.begin(),
                           s.latencies_us.end());
          bad += s.mismatches + s.errors;
        }
        std::sort(latencies.begin(), latencies.end());
        const uint64_t answered = latencies.size();
        const double qps = wall_ms > 0 ? 1000.0 * answered / wall_ms : 0;
        const double p50 = Percentile(latencies, 0.50) / 1000.0;
        const double p99 = Percentile(latencies, 0.99) / 1000.0;
        std::printf("%8zu %8zu %10zu %10llu %12.0f %10.2f %10.2f "
                    "%10.1f%s\n",
                    shards, clients, pipeline,
                    static_cast<unsigned long long>(answered), qps, p50,
                    p99, wall_ms, bad > 0 ? "  [MISMATCHES]" : "");
        report.AddRow()
            .Add("shards", static_cast<uint64_t>(shards))
            .Add("clients", static_cast<uint64_t>(clients))
            .Add("pipeline", static_cast<uint64_t>(pipeline))
            .Add("requests", answered)
            .Add("queries_per_sec", qps)
            .Add("p50_ms", p50)
            .Add("p99_ms", p99)
            .Add("wall_ms", wall_ms)
            .Add("mismatches", bad);
        total_requests += answered;
        total_bad += bad;
      }
    }
  }
  if (connect.empty()) {
    std::error_code ec;
    std::filesystem::remove_all(tmp_root, ec);
  }

  if (total_bad > 0) {
    std::fprintf(stderr,
                 "%llu mismatching/failed responses out of %llu\n",
                 static_cast<unsigned long long>(total_bad),
                 static_cast<unsigned long long>(total_requests));
    return 1;
  }
  std::printf("differential check: %llu routed responses matched the "
              "single in-process QueryServer\n",
              static_cast<unsigned long long>(total_requests));
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
