// Live-update serving: an update stream interleaved with GTPQ query
// batches against one QueryServer. Each round applies one UpdateBatch
// (mixed edge/vertex insertions and deletions, delete share set by
// --del-ratio) through the epoch-snapshot path — incremental delta
// maintenance for gtea engines, no index rebuild — then pushes the
// query batch through the new snapshot. Reported per configuration:
// mean update install latency, query throughput under updates, and the
// final epoch/pending-op/compaction counters.
//
//   --threads=1,4              pool sizes to sweep (default)
//   --engine=gtea,gtea:cached:contour
//                              engine specs to sweep
//   --queries=64               queries per batch
//   --rounds=8                 update rounds per configuration
//   --ops=64                   operations per update batch
//   --del-ratio=0.3            share of delete ops in the stream
//   --limit=512                per-query result cap (0 = unlimited)
//   --json=<path>              also emit machine-readable rows (CI)
//   GTPQ_BENCH_SCALE           scales the graph (default 10k nodes at 0.02)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "dynamic/graph_delta.h"
#include "dynamic/stream_gen.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "runtime/query_server.h"

using namespace gtpq;
using namespace gtpq::bench;

int main(int argc, char** argv) {
  const double scale = BenchScale();
  const auto json_path = JsonFlag(argc, argv);
  const auto thread_flags = SplitFlag(argc, argv, "--threads=", "1,4");
  const auto engine_specs =
      SplitFlag(argc, argv, "--engine=", "gtea,gtea:cached:contour");
  const size_t num_queries = SizeFlag(argc, argv, "--queries=", 64);
  const size_t rounds = SizeFlag(argc, argv, "--rounds=", 8);
  const size_t ops = SizeFlag(argc, argv, "--ops=", 64);
  const size_t result_limit = SizeFlag(argc, argv, "--limit=", 512);
  const double del_ratio = DoubleFlag(argc, argv, "--del-ratio=", 0.3);
  if (thread_flags.empty() || engine_specs.empty() || num_queries == 0 ||
      rounds == 0) {
    std::fprintf(stderr, "--threads=/--engine= need values; --queries= "
                         "and --rounds= must be positive\n");
    return 2;
  }

  RandomDagOptions go;
  go.num_nodes = static_cast<size_t>(500000 * scale);
  if (go.num_nodes < 2000) go.num_nodes = 2000;
  go.avg_degree = 2.5;
  go.num_labels = 24;
  go.locality = 0.05;
  go.seed = 11;
  DataGraph g = RandomDag(go);

  std::vector<Gtpq> queries;
  for (uint64_t seed = 1;
       queries.size() < num_queries && seed < 40 * num_queries; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 4 + seed % 3;
    qo.pc_probability = 0.2;
    qo.output_fraction = 0.6;
    qo.seed = seed * 13 + 5;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }
  UpdateStreamOptions stream_options;
  stream_options.rounds = rounds;
  stream_options.ops_per_round = ops;
  stream_options.del_ratio = del_ratio;
  stream_options.seed = 23;
  const std::vector<UpdateBatch> stream =
      GenerateUpdateStream(g, stream_options);

  std::printf("Update-stream serving: %zu-node random DAG, %zu queries "
              "per batch, %zu rounds x %zu ops (del ratio %.2f, "
              "GTPQ_BENCH_SCALE=%g)\n",
              g.NumNodes(), queries.size(), rounds, ops, del_ratio,
              scale);
  std::printf("%-28s %8s %12s %12s %8s\n", "Engine", "threads",
              "update ms", "queries/s", "epoch");

  JsonReport report("update_stream");
  report.AddMeta("scale", scale);
  report.AddMeta("nodes", static_cast<uint64_t>(g.NumNodes()));
  report.AddMeta("queries", static_cast<uint64_t>(queries.size()));
  report.AddMeta("rounds", static_cast<uint64_t>(rounds));
  report.AddMeta("ops_per_round", static_cast<uint64_t>(ops));
  report.AddMeta("del_ratio", del_ratio);

  for (const std::string& spec : engine_specs) {
    for (const std::string& t : thread_flags) {
      char* end = nullptr;
      const size_t threads = std::strtoull(t.c_str(), &end, 10);
      if (end == t.c_str() || *end != '\0' || threads == 0) {
        std::fprintf(stderr, "invalid --threads entry '%s'\n", t.c_str());
        return 2;
      }
      QueryServerOptions options;
      options.num_threads = threads;
      options.engine_spec = spec;
      options.eval_options.result_limit = result_limit;
      QueryServer server(g, options);
      server.EvaluateBatch(queries);  // warmup on epoch 0

      double update_ms = 0, query_ms = 0;
      size_t served = 0;
      for (const UpdateBatch& batch : stream) {
        Timer ut;
        const Status applied = server.ApplyUpdates(batch);
        update_ms += ut.ElapsedMillis();
        if (!applied.ok()) {
          std::fprintf(stderr, "update rejected: %s\n",
                       applied.ToString().c_str());
          return 1;
        }
        Timer qt;
        server.EvaluateBatch(queries);
        query_ms += qt.ElapsedMillis();
        served += queries.size();
      }
      const double mean_update_ms = update_ms / rounds;
      const double qps =
          query_ms > 0 ? 1000.0 * static_cast<double>(served) / query_ms
                       : 0;
      std::printf("%-28s %8zu %12.2f %12.0f %8llu\n",
                  std::string(server.engine_name()).c_str(), threads,
                  mean_update_ms, qps,
                  static_cast<unsigned long long>(server.epoch()));
      report.AddRow()
          .Add("engine", std::string(server.engine_name()))
          .Add("threads", static_cast<uint64_t>(threads))
          .Add("mean_update_ms", mean_update_ms)
          .Add("queries_per_sec", qps)
          .Add("epoch", server.epoch());
    }
  }
  std::printf("\nUpdates install new epoch snapshots; queries in flight "
              "finish on the old epoch (readers never block writers).\n");
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
