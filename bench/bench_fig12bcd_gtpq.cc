// Reproduces Exp-2 / Fig 12(b,c,d): GTPQs with disjunction and negation
// (Table 4) evaluated by GTEA natively and by the decompose-and-merge
// strategy on top of TwigStack and TwigStackD, plus the Table 5 result
// counts and the number of conjunctive queries each decomposition needs.
#include "bench/harness.h"
#include "baselines/decompose.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

int main() {
  const double s = BenchScale();
  const int reps = BenchReps();
  workload::XmarkOptions o;
  o.scale = 1.0 * s;
  DataGraph g = workload::GenerateXmark(o);
  EngineBench engines(g);

  std::printf("Fig 12(b,c,d) / Tables 4+5: GTPQ processing "
              "(XMark, GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-10s %10s %12s %14s %14s %8s\n", "Query", "#results",
              "GTEA(ms)", "TwigStack(ms)", "TwigStackD(ms)", "#conj");
  for (const auto& name : workload::Exp2QueryNames()) {
    auto wq = workload::BuildExp2Query(g, 3, 4, name);
    if (!wq.ok()) {
      std::printf("%-10s %s\n", name.c_str(),
                  wq.status().ToString().c_str());
      continue;
    }
    QueryResult reference;
    double t_gtea = MinTimeMs(
        [&] { reference = engines.RunGtea(wq->query); }, reps);

    double t_ts = 0, t_tsd = 0;
    bool ok_ts = true, ok_tsd = true;
    t_ts = MinTimeMs(
        [&] {
          auto r = engines.RunDecomposed(wq->query, "twigstack");
          ok_ts = r.ok() && *r == reference;
        },
        reps);
    t_tsd = MinTimeMs(
        [&] {
          auto r = engines.RunDecomposed(wq->query, "twigstackd");
          ok_tsd = r.ok() && *r == reference;
        },
        reps);
    auto conj = CountDecomposedQueries(wq->query);
    std::printf("%-10s %10zu %12.2f %13.2f%s %13.2f%s %8zu\n",
                name.c_str(), reference.tuples.size(), t_gtea, t_ts,
                ok_ts ? " " : "!", t_tsd, ok_tsd ? " " : "!",
                conj.ok() ? *conj : 0);
  }
  std::printf("\n('!' marks an engine disagreeing with GTEA — expected "
              "never). Paper shape: GTEA several times to orders of "
              "magnitude faster than decompose-and-merge baselines.\n");
  return 0;
}
