// Reproduces Fig 8(a): query processing time for Q1 on XMark while the
// data size grows, across GTEA, TwigStackD, HGJoin+, TwigStack and
// Twig2Stack.
//
//   --parallelism=0,8   sweep GTEA's intra-query lane budget (the
//                       baselines are single-threaded and run once);
//                       the first value fills the engine table
//   --json=<path>       machine-readable rows for the CI perf-diff
#include "bench/harness.h"
#include "common/rng.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

int main(int argc, char** argv) {
  const double s = BenchScale();
  const int reps = BenchReps();
  const auto json_path = JsonFlag(argc, argv);
  const std::vector<size_t> lane_sweep =
      SizeListFlag(argc, argv, "--parallelism=", "0");
  JsonReport report("fig8a_xmark_datasize");
  report.AddMeta("scale", s);
  std::printf("Fig 8(a): Q1 query time (ms) vs data size "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "Scale", "GTEA",
              "TwigStackD", "HGJoin+", "TwigStack", "Twig2Stack");
  for (double f : {0.5, 1.0, 1.5, 2.0, 4.0}) {
    workload::XmarkOptions o;
    o.scale = f * s;
    DataGraph g = workload::GenerateXmark(o);
    EngineBench engines(g);
    Rng rng(11);
    double t_tsd = 0, t_hg = 0, t_ts = 0, t_t2s = 0;
    std::vector<double> t_gtea(lane_sweep.size(), 0.0);
    const int kQueries = 5;
    for (int i = 0; i < kQueries; ++i) {
      int pg = static_cast<int>(rng.NextBounded(10));
      auto wq = workload::BuildXmarkQ1(g, pg);
      auto cross = EngineBench::CrossIds(wq.query, wq.cross_node_names);
      for (size_t li = 0; li < lane_sweep.size(); ++li) {
        GteaOptions opts;
        opts.parallelism = lane_sweep[li];
        t_gtea[li] +=
            MinTimeMs([&] { engines.RunGtea(wq.query, opts); }, reps);
      }
      t_tsd += MinTimeMs([&] { engines.RunTwigStackD(wq.query); }, reps);
      t_hg += MinTimeMs([&] { engines.RunHgJoinPlus(wq.query); }, reps);
      t_ts += MinTimeMs([&] { engines.RunTwigStack(wq.query, cross); },
                        reps);
      t_t2s += MinTimeMs(
          [&] { engines.RunTwig2Stack(wq.query, cross); }, reps);
    }
    std::printf("%-10g %12.2f %12.2f %12.2f %12.2f %12.2f\n", f,
                t_gtea[0] / kQueries, t_tsd / kQueries, t_hg / kQueries,
                t_ts / kQueries, t_t2s / kQueries);
    // String-typed so the perf-diff keys rows on it (doubles are
    // treated as metrics, not identity).
    char scale_key[32];
    std::snprintf(scale_key, sizeof(scale_key), "%g", f);
    for (size_t li = 0; li < lane_sweep.size(); ++li) {
      report.AddRow()
          .Add("data_scale", std::string(scale_key))
          .Add("parallelism", static_cast<uint64_t>(lane_sweep[li]))
          .Add("gtea_ms", t_gtea[li] / kQueries);
    }
    report.AddRow()
        .Add("data_scale", std::string(scale_key))
        .Add("twigstackd_ms", t_tsd / kQueries)
        .Add("hgjoin_plus_ms", t_hg / kQueries)
        .Add("twigstack_ms", t_ts / kQueries)
        .Add("twig2stack_ms", t_t2s / kQueries);
  }
  std::printf("\nPaper shape: GTEA fastest at every scale; gap widens "
              "with size; HGJoin+ slowest.\n");
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
