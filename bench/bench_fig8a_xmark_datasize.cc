// Reproduces Fig 8(a): query processing time for Q1 on XMark while the
// data size grows, across GTEA, TwigStackD, HGJoin+, TwigStack and
// Twig2Stack.
#include "bench/harness.h"
#include "common/rng.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

int main() {
  const double s = BenchScale();
  const int reps = BenchReps();
  std::printf("Fig 8(a): Q1 query time (ms) vs data size "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-10s %12s %12s %12s %12s %12s\n", "Scale", "GTEA",
              "TwigStackD", "HGJoin+", "TwigStack", "Twig2Stack");
  for (double f : {0.5, 1.0, 1.5, 2.0, 4.0}) {
    workload::XmarkOptions o;
    o.scale = f * s;
    DataGraph g = workload::GenerateXmark(o);
    EngineBench engines(g);
    Rng rng(11);
    double t_gtea = 0, t_tsd = 0, t_hg = 0, t_ts = 0, t_t2s = 0;
    const int kQueries = 5;
    for (int i = 0; i < kQueries; ++i) {
      int pg = static_cast<int>(rng.NextBounded(10));
      auto wq = workload::BuildXmarkQ1(g, pg);
      auto cross = EngineBench::CrossIds(wq.query, wq.cross_node_names);
      t_gtea += MinTimeMs([&] { engines.RunGtea(wq.query); }, reps);
      t_tsd += MinTimeMs([&] { engines.RunTwigStackD(wq.query); }, reps);
      t_hg += MinTimeMs([&] { engines.RunHgJoinPlus(wq.query); }, reps);
      t_ts += MinTimeMs([&] { engines.RunTwigStack(wq.query, cross); },
                        reps);
      t_t2s += MinTimeMs(
          [&] { engines.RunTwig2Stack(wq.query, cross); }, reps);
    }
    std::printf("%-10g %12.2f %12.2f %12.2f %12.2f %12.2f\n", f,
                t_gtea / kQueries, t_tsd / kQueries, t_hg / kQueries,
                t_ts / kQueries, t_t2s / kQueries);
  }
  std::printf("\nPaper shape: GTEA fastest at every scale; gap widens "
              "with size; HGJoin+ slowest.\n");
  return 0;
}
