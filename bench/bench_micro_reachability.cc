// Micro-benchmarks (google-benchmark) for the reachability substrate:
// index construction and point-query cost of every registered backend
// (via the factory), plus contour merging.
//
// Besides google-benchmark's own flags, --json=<path> mirrors the
// other benches: every run is also collected into a JsonReport row
// ({name, label, iterations, real/cpu time}) so the CI bench-smoke job
// can upload and perf-diff a uniform BENCH_*.json artifact.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "reachability/contour.h"
#include "reachability/factory.h"
#include "reachability/three_hop.h"

namespace gtpq {
namespace {

DataGraph MakeDag(size_t n, double degree) {
  RandomDagOptions o;
  o.num_nodes = n;
  o.avg_degree = degree;
  o.num_labels = 16;
  o.seed = 9;
  return RandomDag(o);
}

void BM_ThreeHopBuild(benchmark::State& state) {
  DataGraph g = MakeDag(static_cast<size_t>(state.range(0)), 2.0);
  for (auto _ : state) {
    auto idx = ThreeHopIndex::Build(g.graph());
    benchmark::DoNotOptimize(idx.TotalLoutSize());
  }
}
BENCHMARK(BM_ThreeHopBuild)->Arg(1000)->Arg(10000)->Arg(50000);

void QueryLoop(benchmark::State& state, const DataGraph& g,
               const ReachabilityOracle& idx) {
  Rng rng(3);
  const size_t n = g.NumNodes();
  for (auto _ : state) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    benchmark::DoNotOptimize(idx.Reaches(a, b));
  }
}

// One build + one point-query benchmark per registered backend; the
// heavier backends (sspi probes, quadratic closure, wide chain table)
// run at the smaller sizes only.
void BM_BackendBuild(benchmark::State& state) {
  const auto backend = static_cast<ReachabilityBackend>(state.range(0));
  DataGraph g = MakeDag(static_cast<size_t>(state.range(1)), 2.0);
  for (auto _ : state) {
    auto idx = MakeReachabilityIndex(backend, g.graph());
    benchmark::DoNotOptimize(idx.get());
  }
  state.SetLabel(std::string(ReachabilityBackendName(backend)));
}

void BM_BackendQuery(benchmark::State& state) {
  const auto backend = static_cast<ReachabilityBackend>(state.range(0));
  DataGraph g = MakeDag(static_cast<size_t>(state.range(1)), 2.0);
  auto idx = MakeReachabilityIndex(backend, g.graph());
  QueryLoop(state, g, *idx);
  state.SetLabel(std::string(ReachabilityBackendName(backend)));
}

void RegisterBackendSweeps() {
  for (ReachabilityBackend backend : AllReachabilityBackends()) {
    const auto arg = static_cast<int64_t>(backend);
    const bool heavy = backend == ReachabilityBackend::kSspi ||
                       backend == ReachabilityBackend::kChainCover ||
                       backend == ReachabilityBackend::kTransitiveClosure;
    auto* build = benchmark::RegisterBenchmark("BM_BackendBuild",
                                               BM_BackendBuild);
    auto* query = benchmark::RegisterBenchmark("BM_BackendQuery",
                                               BM_BackendQuery);
    for (int64_t n : {int64_t{1000}, int64_t{10000}, int64_t{50000}}) {
      if (heavy && n > 10000) continue;
      build->Args({arg, n});
      query->Args({arg, n});
    }
  }
}

void BM_ContourMerge(benchmark::State& state) {
  DataGraph g = MakeDag(20000, 2.0);
  auto idx = ThreeHopIndex::Build(g.graph());
  Rng rng(5);
  std::vector<NodeId> members;
  for (int64_t i = 0; i < state.range(0); ++i) {
    members.push_back(static_cast<NodeId>(rng.NextBounded(g.NumNodes())));
  }
  for (auto _ : state) {
    Contour cp = MergePredLists(idx, members);
    benchmark::DoNotOptimize(cp.size());
  }
}
BENCHMARK(BM_ContourMerge)->Arg(16)->Arg(256)->Arg(4096);

// Console reporter that additionally collects every finished run into
// JsonReport rows, in the flat {"bench", "rows": [...]} shape shared by
// all bench binaries.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(bench::JsonReport* report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      report_->AddRow()
          .Add("name", run.benchmark_name())
          .Add("label", run.report_label)
          .Add("iterations", static_cast<uint64_t>(run.iterations))
          .Add("real_time", run.GetAdjustedRealTime())
          .Add("cpu_time", run.GetAdjustedCPUTime())
          .Add("time_unit",
               std::string(benchmark::GetTimeUnitString(run.time_unit)));
    }
  }

 private:
  bench::JsonReport* report_;
};

}  // namespace
}  // namespace gtpq

int main(int argc, char** argv) {
  // Pull our --json= flag out before google-benchmark sees (and
  // rejects) it.
  const auto json_path = gtpq::bench::JsonFlag(argc, argv);
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) != 0) args.push_back(argv[i]);
  }
  int filtered_argc = static_cast<int>(args.size());

  gtpq::RegisterBackendSweeps();
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  gtpq::bench::JsonReport report("micro_reachability");
  gtpq::CollectingReporter reporter(&report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
