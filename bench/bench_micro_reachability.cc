// Micro-benchmarks (google-benchmark) for the reachability substrate:
// index construction and point-query cost of 3-hop / interval tree
// cover / SSPI / materialized closure, plus contour merging.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "reachability/contour.h"
#include "reachability/interval_index.h"
#include "reachability/sspi.h"
#include "reachability/three_hop.h"
#include "reachability/transitive_closure.h"

namespace gtpq {
namespace {

DataGraph MakeDag(size_t n, double degree) {
  RandomDagOptions o;
  o.num_nodes = n;
  o.avg_degree = degree;
  o.num_labels = 16;
  o.seed = 9;
  return RandomDag(o);
}

void BM_ThreeHopBuild(benchmark::State& state) {
  DataGraph g = MakeDag(static_cast<size_t>(state.range(0)), 2.0);
  for (auto _ : state) {
    auto idx = ThreeHopIndex::Build(g.graph());
    benchmark::DoNotOptimize(idx.TotalLoutSize());
  }
}
BENCHMARK(BM_ThreeHopBuild)->Arg(1000)->Arg(10000)->Arg(50000);

template <typename Index>
void QueryLoop(benchmark::State& state, const DataGraph& g,
               const Index& idx) {
  Rng rng(3);
  const size_t n = g.NumNodes();
  for (auto _ : state) {
    NodeId a = static_cast<NodeId>(rng.NextBounded(n));
    NodeId b = static_cast<NodeId>(rng.NextBounded(n));
    benchmark::DoNotOptimize(idx.Reaches(a, b));
  }
}

void BM_ThreeHopQuery(benchmark::State& state) {
  DataGraph g = MakeDag(static_cast<size_t>(state.range(0)), 2.0);
  auto idx = ThreeHopIndex::Build(g.graph());
  QueryLoop(state, g, idx);
}
BENCHMARK(BM_ThreeHopQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_IntervalQuery(benchmark::State& state) {
  DataGraph g = MakeDag(static_cast<size_t>(state.range(0)), 2.0);
  auto idx = IntervalIndex::Build(g.graph());
  QueryLoop(state, g, idx);
}
BENCHMARK(BM_IntervalQuery)->Arg(1000)->Arg(10000)->Arg(50000);

void BM_SspiQuery(benchmark::State& state) {
  DataGraph g = MakeDag(static_cast<size_t>(state.range(0)), 2.0);
  auto idx = Sspi::Build(g.graph());
  QueryLoop(state, g, idx);
}
BENCHMARK(BM_SspiQuery)->Arg(1000)->Arg(10000);

void BM_ClosureQuery(benchmark::State& state) {
  DataGraph g = MakeDag(static_cast<size_t>(state.range(0)), 2.0);
  auto idx = TransitiveClosure::Build(g.graph());
  QueryLoop(state, g, idx);
}
BENCHMARK(BM_ClosureQuery)->Arg(1000)->Arg(10000);

void BM_ContourMerge(benchmark::State& state) {
  DataGraph g = MakeDag(20000, 2.0);
  auto idx = ThreeHopIndex::Build(g.graph());
  Rng rng(5);
  std::vector<NodeId> members;
  for (int64_t i = 0; i < state.range(0); ++i) {
    members.push_back(static_cast<NodeId>(rng.NextBounded(g.NumNodes())));
  }
  for (auto _ : state) {
    Contour cp = MergePredLists(idx, members);
    benchmark::DoNotOptimize(cp.size());
  }
}
BENCHMARK(BM_ContourMerge)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace
}  // namespace gtpq

BENCHMARK_MAIN();
