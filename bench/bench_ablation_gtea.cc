// Ablation benches for the Section 4 design choices:
//  * upward pruning on/off (second pruning round),
//  * contour-based vs pairwise maximal-matching-graph construction,
//  * skipping singleton candidate sets during upward pruning.
#include "bench/harness.h"
#include "query/query_generator.h"
#include "workload/arxiv.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

namespace {

void RunCase(const char* tag, GteaEngine& gtea, const Gtpq& q,
             int reps) {
  GteaOptions base;
  GteaOptions no_up = base;
  no_up.upward_pruning = false;
  GteaOptions pairwise = base;
  pairwise.contour_matching_graph = false;
  GteaOptions skip = base;
  skip.skip_singleton_upward = true;

  double t_base = MinTimeMs([&] { gtea.Evaluate(q, base); }, reps);
  double t_noup = MinTimeMs([&] { gtea.Evaluate(q, no_up); }, reps);
  double t_pair = MinTimeMs([&] { gtea.Evaluate(q, pairwise); }, reps);
  double t_skip = MinTimeMs([&] { gtea.Evaluate(q, skip); }, reps);
  std::printf("%-24s %10.2f %12.2f %14.2f %14.2f\n", tag, t_base,
              t_noup, t_pair, t_skip);
  // One more full-pipeline run to attribute the time to the stages.
  gtea.Evaluate(q, base);
  const EngineStats& st = gtea.stats();
  std::printf("  stages(ms): match %.2f | down %.2f | prime %.2f | "
              "up %.2f | mg %.2f | enum %.2f | total %.2f\n",
              st.match_ms, st.prune_down_ms, st.prime_ms,
              st.prune_up_ms, st.matching_graph_ms, st.enumerate_ms,
              st.total_ms);
}

}  // namespace

int main() {
  const double s = BenchScale();
  const int reps = BenchReps();
  std::printf("GTEA ablations (ms; GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-24s %10s %12s %14s %14s\n", "Workload", "full",
              "no-upward", "pairwise-mg", "skip-singleton");

  {
    workload::XmarkOptions o;
    o.scale = 1.0 * s;
    DataGraph g = workload::GenerateXmark(o);
    GteaEngine gtea(g);
    auto q3 = workload::BuildXmarkQ3(g, 3, 4, 5);
    RunCase("xmark-q3", gtea, q3.query, reps);
    auto dis = workload::BuildExp2Query(g, 3, 4, "DIS_NEG3");
    if (dis.ok()) RunCase("xmark-dis_neg3", gtea, dis->query, reps);
  }
  {
    workload::ArxivOptions ao;
    DataGraph g = workload::GenerateArxiv(ao);
    GteaEngine gtea(g);
    int done = 0;
    for (uint64_t seed = 1; seed <= 64 && done < 2; ++seed) {
      QueryGenOptions qo;
      qo.num_nodes = 9;
      qo.output_fraction = 1.0;
      qo.seed = seed;
      auto q = GenerateRandomQuery(g, qo);
      if (!q.has_value()) continue;
      GteaOptions probe;
      probe.result_limit = 2000;
      size_t n = gtea.Evaluate(*q, probe).tuples.size();
      if (n < 2 || n > 1200) continue;
      char tag[32];
      std::snprintf(tag, sizeof(tag), "arxiv-size9-#%d", done);
      RunCase(tag, gtea, *q, reps);
      ++done;
    }
  }
  std::printf("\nExpected shape: upward pruning and contour-based "
              "matching-graph construction pay off; the singleton skip "
              "is a small win.\n");
  return 0;
}
