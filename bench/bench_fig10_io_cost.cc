// Reproduces Fig 10: the I/O-cost proxies (#input nodes accessed,
// #intermediate result size, #index elements looked up) for Q3 on the
// XMark dataset with scale factor 1.5.
//
// GTEA runs once per selected reachability spec, so the #index
// column doubles as a per-backend lookup-cost comparison:
//   --index=contour,three_hop     (default: contour, the paper's setup)
//   --index=cached:contour        decorator specs work too
//   --index=all                   sweep every registered backend
//   --index=all-specs             sweep backends plus every decorator
//   --json=<path>                 also emit machine-readable rows (CI)
#include <cstring>
#include <string>

#include "bench/harness.h"
#include "common/string_util.h"
#include "reachability/factory.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

namespace {

void Row(const std::string& engine, const EngineStats& s,
         JsonReport* report) {
  std::printf("%-24s %16s %16s %16s\n", engine.c_str(),
              FormatWithCommas(static_cast<long long>(s.input_nodes))
                  .c_str(),
              FormatWithCommas(
                  static_cast<long long>(s.intermediate_size))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(s.index_lookups))
                  .c_str());
  report->AddRow()
      .Add("engine", engine)
      .Add("input_nodes", static_cast<uint64_t>(s.input_nodes))
      .Add("intermediate_size",
           static_cast<uint64_t>(s.intermediate_size))
      .Add("index_lookups", static_cast<uint64_t>(s.index_lookups))
      .Add("total_ms", s.total_ms);
}

std::vector<std::string> ParseIndexFlag(int argc, char** argv) {
  std::string spec = "contour";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--index=", 8) == 0) spec = argv[i] + 8;
  }
  if (spec == "all") {
    std::vector<std::string> out;
    for (auto k : AllReachabilityBackends()) {
      out.emplace_back(ReachabilityBackendName(k));
    }
    return out;
  }
  if (spec == "all-specs") return AllReachabilitySpecs();
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= spec.size()) {
    size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    std::string name = spec.substr(pos, comma - pos);
    if (!name.empty()) {
      if (IsValidReachabilitySpec(name)) {
        out.push_back(name);
      } else {
        std::fprintf(stderr,
                     "unknown reachability spec '%s' (known base backends:",
                     name.c_str());
        for (auto k : AllReachabilityBackends()) {
          std::fprintf(stderr, " %s",
                       std::string(ReachabilityBackendName(k)).c_str());
        }
        std::fprintf(stderr, "; decorators: cached:<spec> sharded:<spec>)\n");
        std::exit(2);
      }
    }
    pos = comma + 1;
  }
  if (out.empty()) {
    std::fprintf(stderr,
                 "--index= selected no backends; pass a comma-separated "
                 "list, 'all', or 'all-specs'\n");
    std::exit(2);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto backends = ParseIndexFlag(argc, argv);
  const auto json_path = JsonFlag(argc, argv);
  const double s = BenchScale();
  workload::XmarkOptions o;
  o.scale = 1.5 * s;
  DataGraph g = workload::GenerateXmark(o);
  EngineBench engines(g);
  auto wq = workload::BuildXmarkQ3(g, 3, 4, 5);
  auto cross = EngineBench::CrossIds(wq.query, wq.cross_node_names);

  std::printf("Fig 10: I/O cost for Q3 on XMark scale 1.5 "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-24s %16s %16s %16s\n", "Engine", "#input",
              "#intermediate", "#index");

  JsonReport report("fig10_io_cost");
  report.AddMeta("scale", s);
  report.AddMeta("nodes", static_cast<uint64_t>(g.NumNodes()));
  report.AddMeta("edges", static_cast<uint64_t>(g.NumEdges()));
  for (const std::string& backend : backends) {
    auto idx = MakeReachabilityIndex(std::string_view(backend), g.graph());
    if (idx == nullptr) {
      std::fprintf(stderr, "cannot build reachability spec '%s'\n",
                   backend.c_str());
      return 1;
    }
    GteaEngine gtea(
        g, std::shared_ptr<const ReachabilityOracle>(std::move(idx)));
    gtea.Evaluate(wq.query);
    Row(std::string(gtea.name()), gtea.stats(), &report);
  }
  engines.RunHgJoinPlus(wq.query);
  Row("HGJoin+", engines.stats(), &report);
  engines.RunTwigStackD(wq.query);
  Row("TwigStackD", engines.stats(), &report);
  engines.RunTwigStack(wq.query, cross);
  Row("TwigStack", engines.stats(), &report);
  engines.RunTwig2Stack(wq.query, cross);
  Row("Twig2Stack", engines.stats(), &report);

  std::printf("\nPaper shape: GTEA has by far the smallest intermediate "
              "results; TwigStackD reads the most input (two graph "
              "traversals); TwigStack/Twig2Stack materialize large path "
              "solutions. Across GTEA backends, #index isolates each "
              "oracle's per-probe cost.\n");
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
