// Reproduces Fig 10: the I/O-cost proxies (#input nodes accessed,
// #intermediate result size, #index elements looked up) for Q3 on the
// XMark dataset with scale factor 1.5.
#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

namespace {
void Row(const char* engine, const EngineStats& s) {
  std::printf("%-12s %16s %16s %16s\n", engine,
              FormatWithCommas(static_cast<long long>(s.input_nodes))
                  .c_str(),
              FormatWithCommas(
                  static_cast<long long>(s.intermediate_size))
                  .c_str(),
              FormatWithCommas(static_cast<long long>(s.index_lookups))
                  .c_str());
}
}  // namespace

int main() {
  const double s = BenchScale();
  workload::XmarkOptions o;
  o.scale = 1.5 * s;
  DataGraph g = workload::GenerateXmark(o);
  EngineBench engines(g);
  auto wq = workload::BuildXmarkQ3(g, 3, 4, 5);
  auto cross = EngineBench::CrossIds(wq.query, wq.cross_node_names);

  std::printf("Fig 10: I/O cost for Q3 on XMark scale 1.5 "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-12s %16s %16s %16s\n", "Engine", "#input",
              "#intermediate", "#index");

  engines.RunGtea(wq.query);
  Row("GTEA", engines.gtea().stats());
  engines.RunHgJoinPlus(wq.query);
  Row("HGJoin+", engines.stats());
  engines.RunTwigStackD(wq.query);
  Row("TwigStackD", engines.stats());
  engines.RunTwigStack(wq.query, cross);
  Row("TwigStack", engines.stats());
  engines.RunTwig2Stack(wq.query, cross);
  Row("Twig2Stack", engines.stats());

  std::printf("\nPaper shape: GTEA has by far the smallest intermediate "
              "results; TwigStackD reads the most input (two graph "
              "traversals); TwigStack/Twig2Stack materialize large path "
              "solutions.\n");
  return 0;
}
