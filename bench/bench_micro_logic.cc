// Micro-benchmarks (google-benchmark) for the propositional-logic
// substrate: DPLL satisfiability, tautology checking, and the
// distribution-based normal forms whose blow-up motivates GTPQs over
// AND/OR-twig representations (Section 2).
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "logic/cnf.h"
#include "logic/sat.h"

namespace gtpq {
namespace logic {
namespace {

FormulaRef RandomFormula(Rng* rng, int vars, int depth) {
  if (depth == 0 || rng->NextBool(0.3)) {
    FormulaRef v = Formula::Var(static_cast<int>(rng->NextBounded(vars)));
    return rng->NextBool(0.3) ? Formula::Not(v) : v;
  }
  FormulaRef a = RandomFormula(rng, vars, depth - 1);
  FormulaRef b = RandomFormula(rng, vars, depth - 1);
  return rng->NextBool() ? Formula::And(a, b) : Formula::Or(a, b);
}

void BM_DpllSat(benchmark::State& state) {
  Rng rng(41);
  std::vector<FormulaRef> formulas;
  for (int i = 0; i < 64; ++i) {
    formulas.push_back(
        RandomFormula(&rng, static_cast<int>(state.range(0)), 5));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsSatisfiable(formulas[i++ % 64]));
  }
}
BENCHMARK(BM_DpllSat)->Arg(8)->Arg(16)->Arg(24);

void BM_Tautology(benchmark::State& state) {
  Rng rng(43);
  std::vector<FormulaRef> formulas;
  for (int i = 0; i < 64; ++i) {
    FormulaRef f = RandomFormula(&rng, 10, 4);
    formulas.push_back(Formula::Implies(f, f));  // always valid
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(IsTautology(formulas[i++ % 64]));
  }
}
BENCHMARK(BM_Tautology);

void BM_DnfDistribution(benchmark::State& state) {
  // (a1|b1) & ... & (an|bn): 2^n cubes — the OR-block normalization
  // cost the paper charges to AND/OR-twigs.
  std::vector<FormulaRef> clauses;
  for (int64_t i = 0; i < state.range(0); ++i) {
    clauses.push_back(Formula::Or(Formula::Var(static_cast<int>(2 * i)),
                                  Formula::Var(static_cast<int>(2 * i + 1))));
  }
  FormulaRef f = Formula::And(std::move(clauses));
  for (auto _ : state) {
    auto dnf = ToDnfByDistribution(f);
    benchmark::DoNotOptimize(dnf.cubes.size());
  }
}
BENCHMARK(BM_DnfDistribution)->Arg(4)->Arg(8)->Arg(12);

void BM_Tseitin(benchmark::State& state) {
  Rng rng(47);
  FormulaRef f = RandomFormula(&rng, 24, 8);
  for (auto _ : state) {
    auto cnf = TseitinTransform(f, 64);
    benchmark::DoNotOptimize(cnf.NumClauses());
  }
}
BENCHMARK(BM_Tseitin);

}  // namespace
}  // namespace logic
}  // namespace gtpq

BENCHMARK_MAIN();
