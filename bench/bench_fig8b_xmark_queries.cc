// Reproduces Fig 8(b): per-query processing time on the smallest XMark
// dataset for Q1/Q2/Q3 across the five engines.
#include "bench/harness.h"
#include "common/rng.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

int main() {
  const double s = BenchScale();
  const int reps = BenchReps();
  workload::XmarkOptions o;
  o.scale = 0.5 * s;
  DataGraph g = workload::GenerateXmark(o);
  EngineBench engines(g);
  std::printf("Fig 8(b): query time (ms) on XMark scale 0.5 "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "Query", "GTEA",
              "TwigStackD", "HGJoin+", "TwigStack", "Twig2Stack");
  Rng rng(13);
  for (int variant = 1; variant <= 3; ++variant) {
    double t_gtea = 0, t_tsd = 0, t_hg = 0, t_ts = 0, t_t2s = 0;
    const int kQueries = 5;
    for (int i = 0; i < kQueries; ++i) {
      int pg = static_cast<int>(rng.NextBounded(10));
      int ig = static_cast<int>(rng.NextBounded(10));
      int pg2 = static_cast<int>(rng.NextBounded(10));
      workload::XmarkQuery wq =
          variant == 1   ? workload::BuildXmarkQ1(g, pg)
          : variant == 2 ? workload::BuildXmarkQ2(g, pg, ig)
                         : workload::BuildXmarkQ3(g, pg, ig, pg2);
      auto cross = EngineBench::CrossIds(wq.query, wq.cross_node_names);
      t_gtea += MinTimeMs([&] { engines.RunGtea(wq.query); }, reps);
      t_tsd += MinTimeMs([&] { engines.RunTwigStackD(wq.query); }, reps);
      t_hg += MinTimeMs([&] { engines.RunHgJoinPlus(wq.query); }, reps);
      t_ts += MinTimeMs([&] { engines.RunTwigStack(wq.query, cross); },
                        reps);
      t_t2s += MinTimeMs(
          [&] { engines.RunTwig2Stack(wq.query, cross); }, reps);
    }
    std::printf("Q%-7d %12.2f %12.2f %12.2f %12.2f %12.2f\n", variant,
                t_gtea / kQueries, t_tsd / kQueries, t_hg / kQueries,
                t_ts / kQueries, t_t2s / kQueries);
  }
  std::printf("\nPaper shape: GTEA nearly flat across Q1..Q3; HGJoin+ "
              "most sensitive to query size.\n");
  return 0;
}
