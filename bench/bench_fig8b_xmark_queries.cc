// Reproduces Fig 8(b): per-query processing time on the smallest XMark
// dataset for Q1/Q2/Q3 across the five engines.
//
//   --parallelism=0,8   sweep GTEA's intra-query lane budget (the
//                       baselines are single-threaded and run once);
//                       the first value fills the engine table, the
//                       full sweep gets its own speedup table
//   --json=<path>       machine-readable rows for the CI perf-diff
#include <algorithm>

#include "bench/harness.h"
#include "common/rng.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

int main(int argc, char** argv) {
  const double s = BenchScale();
  const int reps = BenchReps();
  const auto json_path = JsonFlag(argc, argv);
  const std::vector<size_t> lane_sweep =
      SizeListFlag(argc, argv, "--parallelism=", "0");
  workload::XmarkOptions o;
  o.scale = 0.5 * s;
  DataGraph g = workload::GenerateXmark(o);
  EngineBench engines(g);
  JsonReport report("fig8b_xmark_queries");
  report.AddMeta("scale", s);
  report.AddMeta("nodes", static_cast<uint64_t>(g.NumNodes()));
  report.AddMeta("edges", static_cast<uint64_t>(g.NumEdges()));
  std::printf("Fig 8(b): query time (ms) on XMark scale 0.5 "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-8s %12s %12s %12s %12s %12s\n", "Query", "GTEA",
              "TwigStackD", "HGJoin+", "TwigStack", "Twig2Stack");
  const int kQueries = 5;
  // gtea_by_lane[variant-1][lane index] = summed ms at that budget.
  std::vector<std::vector<double>> gtea_by_lane;
  Rng rng(13);
  for (int variant = 1; variant <= 3; ++variant) {
    double t_tsd = 0, t_hg = 0, t_ts = 0, t_t2s = 0;
    std::vector<double> t_gtea(lane_sweep.size(), 0.0);
    for (int i = 0; i < kQueries; ++i) {
      int pg = static_cast<int>(rng.NextBounded(10));
      int ig = static_cast<int>(rng.NextBounded(10));
      int pg2 = static_cast<int>(rng.NextBounded(10));
      workload::XmarkQuery wq =
          variant == 1   ? workload::BuildXmarkQ1(g, pg)
          : variant == 2 ? workload::BuildXmarkQ2(g, pg, ig)
                         : workload::BuildXmarkQ3(g, pg, ig, pg2);
      auto cross = EngineBench::CrossIds(wq.query, wq.cross_node_names);
      for (size_t li = 0; li < lane_sweep.size(); ++li) {
        GteaOptions opts;
        opts.parallelism = lane_sweep[li];
        t_gtea[li] +=
            MinTimeMs([&] { engines.RunGtea(wq.query, opts); }, reps);
      }
      t_tsd += MinTimeMs([&] { engines.RunTwigStackD(wq.query); }, reps);
      t_hg += MinTimeMs([&] { engines.RunHgJoinPlus(wq.query); }, reps);
      t_ts += MinTimeMs([&] { engines.RunTwigStack(wq.query, cross); },
                        reps);
      t_t2s += MinTimeMs(
          [&] { engines.RunTwig2Stack(wq.query, cross); }, reps);
    }
    std::printf("Q%-7d %12.2f %12.2f %12.2f %12.2f %12.2f\n", variant,
                t_gtea[0] / kQueries, t_tsd / kQueries, t_hg / kQueries,
                t_ts / kQueries, t_t2s / kQueries);
    const std::string qname = "Q" + std::to_string(variant);
    for (size_t li = 0; li < lane_sweep.size(); ++li) {
      report.AddRow()
          .Add("query", qname)
          .Add("parallelism", static_cast<uint64_t>(lane_sweep[li]))
          .Add("gtea_ms", t_gtea[li] / kQueries);
    }
    report.AddRow()
        .Add("query", qname)
        .Add("twigstackd_ms", t_tsd / kQueries)
        .Add("hgjoin_plus_ms", t_hg / kQueries)
        .Add("twigstack_ms", t_ts / kQueries)
        .Add("twig2stack_ms", t_t2s / kQueries);
    gtea_by_lane.push_back(std::move(t_gtea));
  }
  if (lane_sweep.size() > 1) {
    std::printf("\nGTEA intra-query parallelism sweep: ms (speedup vs "
                "--parallelism=%zu)\n%-8s", lane_sweep[0], "Query");
    for (size_t lanes : lane_sweep) {
      std::printf("  %8zu-lane", lanes);
    }
    std::printf("\n");
    for (size_t v = 0; v < gtea_by_lane.size(); ++v) {
      std::printf("Q%-7zu", v + 1);
      for (size_t li = 0; li < lane_sweep.size(); ++li) {
        const double ms = gtea_by_lane[v][li] / kQueries;
        const double speedup =
            gtea_by_lane[v][0] / std::max(gtea_by_lane[v][li], 1e-9);
        std::printf("  %7.2f %4.1fx", ms, speedup);
      }
      std::printf("\n");
    }
  }
  std::printf("\nPaper shape: GTEA nearly flat across Q1..Q3; HGJoin+ "
              "most sensitive to query size.\n");
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
