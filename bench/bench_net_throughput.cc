// Network serving throughput: N client threads, each pipelining D
// gtpq-wire QUERY frames over its own TCP connection, against either a
// self-hosted NetServer (default) or an external `gteactl serve`
// (--connect=). Reports qps and p50/p99 request latency per
// (clients, pipeline) configuration, verifies every wire answer
// differentially against an independent in-process QueryServer over
// the same workload, and cross-checks the server's STATS frame against
// the client-side request count.
//
//   --clients=1,2,4            client-thread sweep
//   --pipeline=8               pipelining depth per connection
//   --queries=32               distinct random queries in the pool
//   --requests=256             requests per client per configuration
//   --limit=64                 per-query result cap sent on the wire
//   --threads=4                server pool threads (self-hosted mode)
//   --engine=gtea              server engine spec (self-hosted mode)
//   --connect=host:port        drive an external server instead; the
//                              workload graph is rebuilt locally from
//                              --gen= (must match the server's graph)
//   --gen=dag:2000,7           workload graph generator (--connect mode;
//                              self-hosted mode scales with
//                              GTPQ_BENCH_SCALE like the other benches)
//   --json=<path>              machine-readable rows (CI perf tracking)
//   --quiet                    suppress log output below error level
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "bench/harness.h"
#include "common/logging.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "net/client.h"
#include "net/server.h"
#include "query/query_generator.h"
#include "runtime/query_server.h"
#include "workload/graph_gen_spec.h"

using namespace gtpq;
using namespace gtpq::bench;

namespace {

struct ClientStats {
  std::vector<double> latencies_us;
  uint64_t mismatches = 0;
  uint64_t errors = 0;
};

/// One client connection driving `requests` pipelined queries.
ClientStats RunClient(const std::string& host, uint16_t port,
                      const std::vector<std::string>& texts,
                      const std::vector<QueryResult>& expected,
                      size_t requests, size_t pipeline, uint64_t limit) {
  ClientStats out;
  net::NetClient client;
  // Retry ECONNREFUSED with bounded backoff: in CI the external server
  // may still be binding when the bench launches, and a fixed sleep in
  // the workflow is exactly the race this absorbs.
  const Status connected = net::ConnectWithRetry(&client, host, port);
  if (!connected.ok()) {
    std::fprintf(stderr, "client: %s\n", connected.ToString().c_str());
    out.errors = requests;
    return out;
  }
  Timer clock;
  struct InFlight {
    size_t query_index;
    double sent_us;
  };
  std::unordered_map<uint64_t, InFlight> inflight;
  size_t sent = 0, done = 0;

  auto send_next = [&]() -> bool {
    const size_t index = sent % texts.size();
    auto id = client.SendQuery(texts[index], limit);
    if (!id.ok()) {
      std::fprintf(stderr, "client: %s\n", id.status().ToString().c_str());
      return false;
    }
    inflight.emplace(*id, InFlight{index, clock.ElapsedMicros()});
    ++sent;
    return true;
  };

  for (size_t i = 0; i < std::min(pipeline, requests); ++i) {
    if (!send_next()) {
      out.errors = requests;
      return out;
    }
  }
  while (done < requests) {
    auto frame = client.Receive();
    if (!frame.ok()) {
      std::fprintf(stderr, "client: %s\n",
                   frame.status().ToString().c_str());
      out.errors += requests - done;
      return out;
    }
    const double now_us = clock.ElapsedMicros();
    auto it = inflight.find(frame->request_id);
    if (it == inflight.end() ||
        frame->type != net::FrameType::kResult) {
      ++out.errors;
      if (it != inflight.end()) inflight.erase(it);
    } else {
      out.latencies_us.push_back(now_us - it->second.sent_us);
      net::WireResult result;
      if (!net::DecodeResult(frame->payload, &result).ok() ||
          result.result != expected[it->second.query_index]) {
        ++out.mismatches;
      }
      inflight.erase(it);
    }
    ++done;
    // Replenish on EVERY consumed response — error frames included —
    // or the pipeline drains to zero outstanding requests and the
    // next Receive() blocks forever.
    if (sent < requests && !send_next()) {
      out.errors += requests - done;
      return out;
    }
  }
  return out;
}

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0;
  const size_t index = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[index];
}

}  // namespace

int main(int argc, char** argv) {
  const auto json_path = JsonFlag(argc, argv);
  const auto client_flags = SplitFlag(argc, argv, "--clients=", "1,2,4");
  const size_t pipeline = SizeFlag(argc, argv, "--pipeline=", 8);
  const size_t num_queries = SizeFlag(argc, argv, "--queries=", 32);
  const size_t requests = SizeFlag(argc, argv, "--requests=", 256);
  const uint64_t limit = SizeFlag(argc, argv, "--limit=", 64);
  const size_t threads = SizeFlag(argc, argv, "--threads=", 4);
  const auto engine =
      SplitFlag(argc, argv, "--engine=", "gtea").front();
  std::string connect, gen_spec;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--connect=", 10) == 0) connect = argv[i] + 10;
    if (std::strncmp(argv[i], "--gen=", 6) == 0) gen_spec = argv[i] + 6;
    if (std::strcmp(argv[i], "--quiet") == 0) {
      SetLogLevel(LogLevel::kError);
    }
  }
  if (pipeline == 0 || num_queries == 0 || requests == 0) {
    std::fprintf(stderr, "--pipeline/--queries/--requests must be > 0\n");
    return 2;
  }

  // Workload graph: in --connect mode this MUST regenerate the exact
  // graph the external server was started with — --gen= goes through
  // the same deterministic spec generator `gteactl serve --gen=` uses,
  // so the local differential reference answers over the served graph.
  DataGraph g = [&] {
    if (!gen_spec.empty()) {
      auto generated = workload::GenerateGraphFromSpec(gen_spec);
      if (!generated.ok()) {
        std::fprintf(stderr, "--gen=%s: %s\n", gen_spec.c_str(),
                     generated.status().ToString().c_str());
        std::exit(2);
      }
      return generated.TakeValue();
    }
    RandomDagOptions go;
    go.num_nodes = static_cast<size_t>(1000000 * BenchScale());
    if (go.num_nodes < 2000) go.num_nodes = 2000;
    go.avg_degree = 2.5;
    go.num_labels = 24;
    go.locality = 0.05;
    go.seed = 7;
    return RandomDag(go);
  }();

  std::vector<Gtpq> queries;
  for (uint64_t seed = 1;
       queries.size() < num_queries && seed < 40 * num_queries; ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 5 + seed % 3;
    qo.pc_probability = 0.2;
    qo.output_fraction = 0.6;
    qo.seed = seed * 17 + 3;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }
  if (queries.empty()) {
    std::fprintf(stderr, "query generator starved\n");
    return 1;
  }
  const DataGraph& graph = g;
  std::vector<std::string> texts;
  for (const Gtpq& q : queries) {
    texts.push_back(q.ToString(graph.attr_names()));
  }

  // Independent in-process reference over the same workload — the
  // differential baseline every wire answer is checked against.
  QueryServerOptions ref_options;
  ref_options.num_threads = threads;
  ref_options.engine_spec = engine;
  GteaOptions ref_eval;
  ref_eval.result_limit = static_cast<size_t>(limit);
  QueryServer reference(g, ref_options);
  const std::vector<QueryResult> expected =
      reference.EvaluateBatch(queries, nullptr, ref_eval);

  // Server: self-hosted unless --connect= points elsewhere.
  std::unique_ptr<net::NetServer> hosted;
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  if (connect.empty()) {
    net::NetServerOptions so;
    so.runtime.num_threads = threads;
    so.runtime.engine_spec = engine;
    hosted = std::make_unique<net::NetServer>(g, so);
    const Status started = hosted->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
      return 1;
    }
    port = hosted->port();
  } else if (!net::ParseHostPort(connect, &host, &port)) {
    std::fprintf(stderr, "malformed --connect= value '%s' (want "
                         "host:port)\n",
                 connect.c_str());
    return 2;
  }

  std::printf("Network serving throughput: %zu-node graph, %zu-query "
              "pool, pipeline %zu, %zu requests/client — %s:%u\n",
              g.NumNodes(), queries.size(), pipeline, requests,
              host.c_str(), port);
  std::printf("%8s %10s %12s %10s %10s %10s\n", "clients", "requests",
              "qps", "p50 ms", "p99 ms", "wall ms");

  JsonReport report("net_throughput");
  report.AddMeta("nodes", static_cast<uint64_t>(g.NumNodes()));
  report.AddMeta("pool_queries", static_cast<uint64_t>(queries.size()));
  report.AddMeta("pipeline", static_cast<uint64_t>(pipeline));
  report.AddMeta("result_limit", limit);

  uint64_t total_requests = 0, total_mismatches = 0, total_errors = 0;
  for (const std::string& flag : client_flags) {
    const size_t clients = std::strtoull(flag.c_str(), nullptr, 10);
    if (clients == 0) {
      std::fprintf(stderr, "invalid --clients entry '%s'\n", flag.c_str());
      return 2;
    }
    std::vector<ClientStats> stats(clients);
    Timer wall;
    {
      std::vector<std::thread> workers;
      for (size_t c = 0; c < clients; ++c) {
        workers.emplace_back([&, c] {
          stats[c] = RunClient(host, port, texts, expected, requests,
                               pipeline, limit);
        });
      }
      for (std::thread& worker : workers) worker.join();
    }
    const double wall_ms = wall.ElapsedMillis();

    std::vector<double> latencies;
    uint64_t mismatches = 0, errors = 0;
    for (const ClientStats& s : stats) {
      latencies.insert(latencies.end(), s.latencies_us.begin(),
                       s.latencies_us.end());
      mismatches += s.mismatches;
      errors += s.errors;
    }
    std::sort(latencies.begin(), latencies.end());
    const uint64_t answered = latencies.size();
    const double qps = wall_ms > 0 ? 1000.0 * answered / wall_ms : 0;
    const double p50 = Percentile(latencies, 0.50) / 1000.0;
    const double p99 = Percentile(latencies, 0.99) / 1000.0;
    std::printf("%8zu %10llu %12.0f %10.2f %10.2f %10.1f%s\n", clients,
                static_cast<unsigned long long>(answered), qps, p50, p99,
                wall_ms,
                mismatches + errors > 0 ? "  [MISMATCHES]" : "");
    report.AddRow()
        .Add("clients", static_cast<uint64_t>(clients))
        .Add("requests", answered)
        .Add("queries_per_sec", qps)
        .Add("p50_ms", p50)
        .Add("p99_ms", p99)
        .Add("wall_ms", wall_ms)
        .Add("mismatches", mismatches + errors);
    total_requests += answered;
    total_mismatches += mismatches;
    total_errors += errors;
  }

  // The STATS frame and this report must agree: the server-side query
  // counter is exactly the requests this process pushed (self-hosted
  // servers serve nobody else).
  net::NetClient stats_client;
  if (net::ConnectWithRetry(&stats_client, host, port).ok()) {
    auto stats = stats_client.Stats();
    if (stats.ok()) {
      std::printf("server stats: engine %s, epoch %llu, %llu queries in "
                  "%llu batches (busy %.1f ms)\n",
                  stats->engine.c_str(),
                  static_cast<unsigned long long>(stats->epoch),
                  static_cast<unsigned long long>(stats->queries),
                  static_cast<unsigned long long>(stats->batches),
                  stats->busy_ms);
      if (hosted != nullptr && stats->queries != total_requests) {
        std::fprintf(stderr,
                     "STATS mismatch: server saw %llu queries, clients "
                     "sent %llu\n",
                     static_cast<unsigned long long>(stats->queries),
                     static_cast<unsigned long long>(total_requests));
        return 1;
      }
    }
  }

  if (total_mismatches + total_errors > 0) {
    std::fprintf(stderr,
                 "%llu mismatching / %llu failed responses out of %llu\n",
                 static_cast<unsigned long long>(total_mismatches),
                 static_cast<unsigned long long>(total_errors),
                 static_cast<unsigned long long>(total_requests));
    return 1;
  }
  std::printf("differential check: %llu wire responses matched the "
              "in-process QueryServer\n",
              static_cast<unsigned long long>(total_requests));
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
