// Concurrent serving throughput: queries/sec for one GTPQ batch pushed
// through QueryServer at increasing pool sizes, against a shared
// immutable oracle. The random-DAG workload mirrors the paper's arXiv
// setup (random label-anchored queries); on a multi-core host the
// speedup column should climb toward the core count (>= 3x at 8
// threads is the acceptance bar), since workers share nothing mutable.
//
// Queries are served top-k (result_limit = 512): unbounded enumeration
// would measure result materialization, not serving; random GTPQs can
// have answers in the tens of millions of tuples.
//
//   --threads=1,2,4,8,16       pool sizes to sweep (default)
//   --engine=gtea,gtea:cached:contour
//                              engine specs to sweep per pool size
//   --queries=256              batch size
//   --limit=512                per-query result cap (0 = unlimited)
//   --json=<path>              also emit machine-readable rows (CI)
//   GTPQ_BENCH_SCALE           scales the graph (default 20k nodes at 0.02)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/timer.h"
#include "graph/generators.h"
#include "query/query_generator.h"
#include "runtime/query_server.h"

using namespace gtpq;
using namespace gtpq::bench;

int main(int argc, char** argv) {
  const double scale = BenchScale();
  const auto json_path = JsonFlag(argc, argv);
  const auto thread_flags = SplitFlag(argc, argv, "--threads=", "1,2,4,8,16");
  const auto engine_specs =
      SplitFlag(argc, argv, "--engine=", "gtea,gtea:cached:contour");
  const size_t num_queries = SizeFlag(argc, argv, "--queries=", 256);
  const size_t result_limit = SizeFlag(argc, argv, "--limit=", 512);
  if (thread_flags.empty() || engine_specs.empty() || num_queries == 0) {
    std::fprintf(stderr,
                 "--threads= and --engine= need comma-separated values; "
                 "--queries= must be positive\n");
    return 2;
  }

  RandomDagOptions go;
  go.num_nodes = static_cast<size_t>(1000000 * scale);
  if (go.num_nodes < 2000) go.num_nodes = 2000;
  go.avg_degree = 2.5;
  go.num_labels = 24;
  go.locality = 0.05;
  go.seed = 7;
  DataGraph g = RandomDag(go);

  std::vector<Gtpq> queries;
  for (uint64_t seed = 1; queries.size() < num_queries &&
                          seed < 40 * num_queries;
       ++seed) {
    QueryGenOptions qo;
    qo.num_nodes = 5 + seed % 3;
    qo.pc_probability = 0.2;
    qo.output_fraction = 0.6;
    qo.seed = seed * 17 + 3;
    auto q = GenerateRandomQueryWithRetry(g, qo);
    if (q.has_value()) queries.push_back(std::move(*q));
  }

  std::printf("Concurrent serving throughput: %zu-node random DAG, "
              "%zu queries per batch (GTPQ_BENCH_SCALE=%g)\n",
              g.NumNodes(), queries.size(), scale);
  std::printf("%-28s %8s %12s %12s %10s\n", "Engine", "threads",
              "batch ms", "queries/s", "speedup");

  const int reps = BenchReps();
  JsonReport report("concurrent_throughput");
  report.AddMeta("scale", scale);
  report.AddMeta("nodes", static_cast<uint64_t>(g.NumNodes()));
  report.AddMeta("queries", static_cast<uint64_t>(queries.size()));
  report.AddMeta("result_limit", static_cast<uint64_t>(result_limit));
  for (const std::string& spec : engine_specs) {
    double baseline_qps = 0;
    for (const std::string& t : thread_flags) {
      char* end = nullptr;
      const size_t threads = std::strtoull(t.c_str(), &end, 10);
      if (end == t.c_str() || *end != '\0' || threads == 0) {
        std::fprintf(stderr, "invalid --threads entry '%s'\n", t.c_str());
        return 2;
      }
      QueryServerOptions options;
      options.num_threads = threads;
      options.engine_spec = spec;
      options.eval_options.result_limit = result_limit;
      QueryServer server(g, options);
      server.EvaluateBatch(queries);  // warmup (and decorator cache fill)
      const double ms = MinTimeMs(
          [&] { server.EvaluateBatch(queries); }, reps);
      const double qps = ms > 0 ? 1000.0 * queries.size() / ms : 0;
      if (baseline_qps == 0) baseline_qps = qps;
      const double speedup = baseline_qps > 0 ? qps / baseline_qps : 0.0;
      std::printf("%-28s %8zu %12.1f %12.0f %9.2fx\n",
                  std::string(server.engine_name()).c_str(), threads, ms,
                  qps, speedup);
      report.AddRow()
          .Add("engine", std::string(server.engine_name()))
          .Add("threads", static_cast<uint64_t>(threads))
          .Add("batch_ms", ms)
          .Add("queries_per_sec", qps)
          .Add("speedup", speedup);
    }
  }
  std::printf("\nSpeedup is relative to the first pool size of each "
              "engine row; single-core hosts report ~1x throughout.\n");
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
