// Reproduces Table 1: statistics of the XMark datasets at scaling
// factors 0.5..4 (multiplied by GTPQ_BENCH_SCALE; the paper's absolute
// sizes correspond to GTPQ_BENCH_SCALE=1).
#include "bench/harness.h"
#include "common/string_util.h"
#include "workload/xmark.h"

int main() {
  const double s = gtpq::bench::BenchScale();
  std::printf("Table 1: Statistics of XMark datasets "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-16s %14s %14s %14s\n", "Scaling factor", "Nodes",
              "Edges", "Edges/Node");
  for (double f : {0.5, 1.0, 1.5, 2.0, 4.0}) {
    gtpq::workload::XmarkOptions o;
    o.scale = f * s;
    gtpq::DataGraph g = gtpq::workload::GenerateXmark(o);
    std::printf("%-16g %14s %14s %14.2f\n", f,
                gtpq::FormatWithCommas(
                    static_cast<long long>(g.NumNodes()))
                    .c_str(),
                gtpq::FormatWithCommas(
                    static_cast<long long>(g.NumEdges()))
                    .c_str(),
                static_cast<double>(g.NumEdges()) /
                    static_cast<double>(g.NumNodes()));
  }
  std::printf("\nPaper reference (scale 1): 1.29M nodes, 1.54M edges "
              "(ratio 1.19)\n");
  return 0;
}
