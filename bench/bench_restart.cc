// Cold-restart serving latency: how long after exec can a server
// answer its first probe? For each index spec the bench builds an
// oracle over an XMark graph, persists it, then times the two restart
// paths side by side:
//
//   mmap=0  LoadReachabilityIndex      parse + copy onto the heap
//   mmap=1  LoadReachabilityIndexView  map read-only, borrow in place
//
// load_ms is the min over reps of open-to-ready; probe_ms is a fixed
// random Reaches() sweep issued immediately after load, so the mmap
// rows pay their page faults inside the measurement instead of hiding
// them. index_mb sizes the artifact the restart has to swallow.
//
//   --spec=three_hop,sharded:interval  index specs to sweep
//   --probes=20000                     post-load probe sweep size
//   --json=<path>                      machine-readable rows (CI)
//   GTPQ_BENCH_SCALE                   graph scale (default 0.02)
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/rng.h"
#include "common/timer.h"
#include "reachability/factory.h"
#include "storage/index_io.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

namespace {

std::string TempIndexPath(size_t ordinal) {
  const char* dir = std::getenv("TMPDIR");
  if (dir == nullptr || dir[0] == '\0') dir = "/tmp";
  return std::string(dir) + "/gtpq_bench_restart_" +
         std::to_string(ordinal) +
         std::string(storage::kIndexFileExtension);
}

double ProbeSweepMs(const ReachabilityOracle& oracle, size_t num_nodes,
                    size_t probes) {
  Rng rng(97);
  size_t hits = 0;
  Timer timer;
  for (size_t i = 0; i < probes; ++i) {
    const NodeId a = static_cast<NodeId>(rng.NextBounded(num_nodes));
    const NodeId b = static_cast<NodeId>(rng.NextBounded(num_nodes));
    hits += oracle.Reaches(a, b) ? 1 : 0;
  }
  const double ms = timer.ElapsedMillis();
  // Keep the sweep observable so the probe loop cannot be elided.
  if (hits > probes) std::fprintf(stderr, "impossible hit count\n");
  return ms;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = BenchScale();
  const int reps = BenchReps();
  const auto json_path = JsonFlag(argc, argv);
  const auto specs =
      SplitFlag(argc, argv, "--spec=", "three_hop,sharded:interval");
  const size_t probes = SizeFlag(argc, argv, "--probes=", 20000);
  if (specs.empty() || probes == 0) {
    std::fprintf(stderr, "--spec= needs values; --probes= must be "
                         "positive\n");
    return 2;
  }

  workload::XmarkOptions go;
  go.scale = scale;
  const DataGraph g = workload::GenerateXmark(go);
  std::printf("Cold restart: index load + first %zu probes "
              "(GTPQ_BENCH_SCALE=%g, %zu nodes)\n",
              probes, scale, g.NumNodes());
  std::printf("%-24s %6s %10s %10s %10s\n", "Spec", "mmap", "index_mb",
              "load_ms", "probe_ms");

  JsonReport report("restart");
  report.AddMeta("scale", scale);
  report.AddMeta("probes", static_cast<uint64_t>(probes));

  for (size_t si = 0; si < specs.size(); ++si) {
    const std::string& spec = specs[si];
    auto built = MakeReachabilityIndex(std::string_view(spec), g.graph());
    if (built == nullptr) {
      std::fprintf(stderr, "cannot build index spec '%s'\n", spec.c_str());
      return 2;
    }
    const std::string path = TempIndexPath(si);
    const Status saved =
        storage::SaveReachabilityIndex(*built, g.graph(), path);
    if (!saved.ok()) {
      std::fprintf(stderr, "save failed: %s\n", saved.ToString().c_str());
      return 2;
    }
    auto info = storage::InspectReachabilityIndex(path);
    const double index_mb =
        info.ok() ? static_cast<double>(info->file_bytes) / (1 << 20) : 0;
    built.reset();

    for (const bool use_mmap : {false, true}) {
      double load_ms = 0, probe_ms = 0;
      for (int rep = 0; rep < reps; ++rep) {
        Timer timer;
        auto loaded =
            use_mmap ? storage::LoadReachabilityIndexView(path, g.graph())
                     : storage::LoadReachabilityIndex(path, g.graph());
        const double this_load = timer.ElapsedMillis();
        if (!loaded.ok()) {
          std::fprintf(stderr, "load failed: %s\n",
                       loaded.status().ToString().c_str());
          return 2;
        }
        const double this_probe =
            ProbeSweepMs(**loaded, g.NumNodes(), probes);
        if (rep == 0 || this_load < load_ms) load_ms = this_load;
        if (rep == 0 || this_probe < probe_ms) probe_ms = this_probe;
      }
      std::printf("%-24s %6d %10.2f %10.2f %10.2f\n", spec.c_str(),
                  use_mmap ? 1 : 0, index_mb, load_ms, probe_ms);
      report.AddRow()
          .Add("spec", spec)
          .Add("mmap", static_cast<uint64_t>(use_mmap ? 1 : 0))
          .Add("index_mb", index_mb)
          .Add("load_ms", load_ms)
          .Add("probe_ms", probe_ms);
    }
    std::remove(path.c_str());
  }

  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
