// Reproduces Table 2: the average result sizes of queries Q1..Q3 on the
// XMark datasets, averaged over 10 random person/item group choices.
#include "bench/harness.h"
#include "common/rng.h"
#include "workload/xmark.h"

using namespace gtpq;
using namespace gtpq::bench;

int main() {
  const double s = BenchScale();
  std::printf("Table 2: average result sizes on XMark "
              "(GTPQ_BENCH_SCALE=%g)\n", s);
  std::printf("%-8s", "Query");
  for (double f : {0.5, 1.0, 1.5, 2.0, 4.0}) std::printf(" %10gx", f);
  std::printf("\n");

  std::vector<std::vector<double>> sizes(3);
  for (double f : {0.5, 1.0, 1.5, 2.0, 4.0}) {
    workload::XmarkOptions o;
    o.scale = f * s;
    DataGraph g = workload::GenerateXmark(o);
    GteaEngine gtea(g);
    Rng rng(7);
    for (int variant = 0; variant < 3; ++variant) {
      double total = 0;
      for (int rep = 0; rep < 10; ++rep) {
        int pg = static_cast<int>(rng.NextBounded(10));
        int ig = static_cast<int>(rng.NextBounded(10));
        int pg2 = static_cast<int>(rng.NextBounded(10));
        workload::XmarkQuery wq =
            variant == 0   ? workload::BuildXmarkQ1(g, pg)
            : variant == 1 ? workload::BuildXmarkQ2(g, pg, ig)
                           : workload::BuildXmarkQ3(g, pg, ig, pg2);
        total += static_cast<double>(gtea.Evaluate(wq.query).tuples.size());
      }
      sizes[static_cast<size_t>(variant)].push_back(total / 10.0);
    }
  }
  for (int variant = 0; variant < 3; ++variant) {
    std::printf("Q%-7d", variant + 1);
    for (double v : sizes[static_cast<size_t>(variant)]) {
      std::printf(" %11.1f", v);
    }
    std::printf("\n");
  }
  std::printf("\nPaper shape: sizes grow ~linearly with scale and drop "
              "by ~10x per added join (Q1 >> Q2 >> Q3)\n");
  return 0;
}
