#ifndef GTPQ_BENCH_HARNESS_H_
#define GTPQ_BENCH_HARNESS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "baselines/decompose.h"
#include "baselines/hgjoin.h"
#include "baselines/tree_encoding.h"
#include "baselines/twig2stack.h"
#include "baselines/twig_on_graph.h"
#include "baselines/twigstack.h"
#include "baselines/twigstackd.h"
#include "common/timer.h"
#include "core/gtea.h"
#include "workload/xmark_queries.h"

namespace gtpq {
namespace bench {

/// Global scale knob: all XMark datasets are generated at
/// (paper scale) x GTPQ_BENCH_SCALE. The default keeps every bench
/// binary laptop-friendly; raise it (up to 1.0 = the paper's sizes) for
/// full-scale runs.
inline double BenchScale() {
  const char* env = std::getenv("GTPQ_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.02;
}

/// Repetitions per measurement (min is reported).
inline int BenchReps() {
  const char* env = std::getenv("GTPQ_BENCH_REPS");
  return env != nullptr ? std::atoi(env) : 3;
}

template <typename Fn>
double MinTimeMs(Fn&& fn, int reps) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double ms = t.ElapsedMillis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

/// All engines bundled over one data graph, built on demand.
class EngineBench {
 public:
  explicit EngineBench(const DataGraph& g) : g_(g), gtea_(g) {
    enc_ = BuildRegionEncoding(g);
    sspi_.emplace(Sspi::Build(g.graph()));
    interval_.emplace(IntervalIndex::Build(g.graph()));
  }

  const DataGraph& graph() const { return g_; }
  GteaEngine& gtea() { return gtea_; }

  QueryResult RunGtea(const Gtpq& q) { return gtea_.Evaluate(q); }

  QueryResult RunTwigStackD(const Gtpq& q) {
    stats_.Reset();
    return EvaluateTwigStackD(g_, *sspi_, q, &stats_);
  }

  QueryResult RunHgJoinPlus(const Gtpq& q) {
    stats_.Reset();
    HgJoinOptions o;
    return EvaluateHgJoin(g_, *interval_, q, o, &stats_, &report_);
  }

  QueryResult RunHgJoinStar(const Gtpq& q) {
    stats_.Reset();
    HgJoinOptions o;
    o.graph_intermediates = true;
    return EvaluateHgJoin(g_, *interval_, q, o, &stats_, nullptr);
  }

  QueryResult RunTwigStack(const Gtpq& q,
                           const std::vector<QNodeId>& cross) {
    stats_.Reset();
    return EvaluateTwigOnGraph(
        g_, q, cross,
        [this](const Gtpq& frag) {
          return EvaluateTwigStack(g_, enc_, frag, &stats_);
        },
        &stats_);
  }

  QueryResult RunTwig2Stack(const Gtpq& q,
                            const std::vector<QNodeId>& cross) {
    stats_.Reset();
    return EvaluateTwigOnGraph(
        g_, q, cross,
        [this](const Gtpq& frag) {
          return EvaluateTwig2Stack(g_, enc_, frag, &stats_);
        },
        &stats_);
  }

  /// GTPQ evaluation via decompose-and-merge over a conjunctive engine.
  Result<QueryResult> RunDecomposed(const Gtpq& q,
                                    const std::string& engine) {
    stats_.Reset();
    ConjunctiveEvaluator eval;
    if (engine == "twigstack") {
      eval = [this](const Gtpq& conj) {
        return RunTwigStackInner(conj);
      };
    } else {
      eval = [this](const Gtpq& conj) {
        EngineStats s;
        return EvaluateTwigStackD(g_, *sspi_, conj, &s);
      };
    }
    return EvaluateByDecomposition(q, eval, &stats_);
  }

  const EngineStats& stats() const { return stats_; }
  const HgJoinReport& hgjoin_report() const { return report_; }

  /// Resolves cross-node names (IDREF targets) to query node ids.
  static std::vector<QNodeId> CrossIds(
      const Gtpq& q, const std::vector<std::string>& names) {
    std::vector<QNodeId> out;
    for (QNodeId u = 0; u < q.NumNodes(); ++u) {
      for (const auto& name : names) {
        if (q.node(u).name == name) out.push_back(u);
      }
    }
    return out;
  }

 private:
  QueryResult RunTwigStackInner(const Gtpq& conj) {
    // Decomposed conjunctive fragments keep node names; split at the
    // IDREF targets that survived.
    auto cross = CrossIds(conj, {"person", "item", "person2"});
    EngineStats s;
    return EvaluateTwigOnGraph(
        g_, conj, cross,
        [this, &s](const Gtpq& frag) {
          return EvaluateTwigStack(g_, enc_, frag, &s);
        },
        &s);
  }

  const DataGraph& g_;
  GteaEngine gtea_;
  RegionEncoding enc_;
  std::optional<Sspi> sspi_;
  std::optional<IntervalIndex> interval_;
  EngineStats stats_;
  HgJoinReport report_;
};

}  // namespace bench
}  // namespace gtpq

#endif  // GTPQ_BENCH_HARNESS_H_
