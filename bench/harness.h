#ifndef GTPQ_BENCH_HARNESS_H_
#define GTPQ_BENCH_HARNESS_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "baselines/engines.h"
#include "common/timer.h"
#include "core/gtea.h"
#include "workload/xmark_queries.h"

namespace gtpq {
namespace bench {

/// Global scale knob: all XMark datasets are generated at
/// (paper scale) x GTPQ_BENCH_SCALE. The default keeps every bench
/// binary laptop-friendly; raise it (up to 1.0 = the paper's sizes) for
/// full-scale runs.
inline double BenchScale() {
  const char* env = std::getenv("GTPQ_BENCH_SCALE");
  return env != nullptr ? std::atof(env) : 0.02;
}

/// Repetitions per measurement (min is reported).
inline int BenchReps() {
  const char* env = std::getenv("GTPQ_BENCH_REPS");
  return env != nullptr ? std::atoi(env) : 3;
}

/// Value of a --json=<path> style flag, or nullopt when absent.
inline std::optional<std::string> JsonFlag(int argc, char** argv) {
  std::optional<std::string> path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) path = argv[i] + 7;
  }
  return path;
}

/// Comma-separated values of a "--prefix=a,b,c" flag (last occurrence
/// wins), or of `fallback` when absent.
inline std::vector<std::string> SplitFlag(int argc, char** argv,
                                          const char* prefix,
                                          const std::string& fallback) {
  std::string value = fallback;
  const size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) value = argv[i] + len;
  }
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= value.size()) {
    size_t comma = value.find(',', pos);
    if (comma == std::string::npos) comma = value.size();
    if (comma > pos) out.push_back(value.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

/// Integer value of a "--prefix=<n>" flag; exits 2 on malformed input.
inline size_t SizeFlag(int argc, char** argv, const char* prefix,
                       size_t fallback) {
  const size_t len = std::strlen(prefix);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      char* end = nullptr;
      const unsigned long long value =
          std::strtoull(argv[i] + len, &end, 10);
      if (end == argv[i] + len || *end != '\0') {
        std::fprintf(stderr, "invalid value for %s (want an integer)\n",
                     prefix);
        std::exit(2);
      }
      return static_cast<size_t>(value);
    }
  }
  return fallback;
}

/// Comma-separated integers of a "--prefix=a,b,c" flag (last occurrence
/// wins, `fallback` when absent); exits 2 on malformed input. Used for
/// sweep axes such as --parallelism=0,2,8.
inline std::vector<size_t> SizeListFlag(int argc, char** argv,
                                        const char* prefix,
                                        const std::string& fallback) {
  std::vector<size_t> out;
  for (const std::string& item : SplitFlag(argc, argv, prefix, fallback)) {
    char* end = nullptr;
    const unsigned long long value =
        std::strtoull(item.c_str(), &end, 10);
    if (end == item.c_str() || *end != '\0') {
      std::fprintf(stderr, "invalid value '%s' for %s (want integers)\n",
                   item.c_str(), prefix);
      std::exit(2);
    }
    out.push_back(static_cast<size_t>(value));
  }
  return out;
}

/// Floating-point value of a "--prefix=<x>" flag; exits 2 on
/// malformed input (a silent 0.0 would skew rows the CI perf-diff
/// adopts as its baseline).
inline double DoubleFlag(int argc, char** argv, const char* prefix,
                         double fallback) {
  const size_t len = std::strlen(prefix);
  double value = fallback;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, len) == 0) {
      char* end = nullptr;
      value = std::strtod(argv[i] + len, &end);
      if (end == argv[i] + len || *end != '\0') {
        std::fprintf(stderr, "invalid value for %s (want a number)\n",
                     prefix);
        std::exit(2);
      }
    }
  }
  return value;
}

/// Accumulates one bench run as {"bench": ..., <meta fields>,
/// "rows": [{...}, ...]} and writes it out as JSON — the
/// machine-readable artifact the CI bench-smoke job uploads
/// (BENCH_*.json) so perf can be tracked across commits.
class JsonReport {
 public:
  explicit JsonReport(const std::string& bench) {
    meta_.push_back(Field("bench", bench));
  }

  void AddMeta(const std::string& key, double value) {
    meta_.push_back(Field(key, value));
  }
  void AddMeta(const std::string& key, uint64_t value) {
    meta_.push_back(Field(key, value));
  }

  /// One flat result row; call Add() for each column.
  class Row {
   public:
    Row& Add(const std::string& key, const std::string& value) {
      fields_.push_back(Field(key, value));
      return *this;
    }
    Row& Add(const std::string& key, double value) {
      fields_.push_back(Field(key, value));
      return *this;
    }
    Row& Add(const std::string& key, uint64_t value) {
      fields_.push_back(Field(key, value));
      return *this;
    }

   private:
    friend class JsonReport;
    std::vector<std::string> fields_;
  };

  Row& AddRow() { return rows_.emplace_back(); }

  /// Writes the report; on failure complains to stderr and returns
  /// false so bench mains can exit nonzero.
  bool WriteTo(const std::string& path) const {
    std::FILE* out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write JSON report to %s\n",
                   path.c_str());
      return false;
    }
    std::fprintf(out, "{");
    for (size_t i = 0; i < meta_.size(); ++i) {
      std::fprintf(out, "%s%s", i > 0 ? ", " : "", meta_[i].c_str());
    }
    std::fprintf(out, ", \"rows\": [");
    for (size_t i = 0; i < rows_.size(); ++i) {
      std::fprintf(out, "%s{", i > 0 ? ", " : "");
      for (size_t j = 0; j < rows_[i].fields_.size(); ++j) {
        std::fprintf(out, "%s%s", j > 0 ? ", " : "",
                     rows_[i].fields_[j].c_str());
      }
      std::fprintf(out, "}");
    }
    std::fprintf(out, "]}\n");
    const bool ok = std::fclose(out) == 0;
    if (!ok) std::fprintf(stderr, "write failed: %s\n", path.c_str());
    return ok;
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    out.push_back('"');
    return out;
  }
  static std::string Field(const std::string& key,
                           const std::string& value) {
    return Quote(key) + ": " + Quote(value);
  }
  static std::string Field(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", value);
    return Quote(key) + ": " + buf;
  }
  static std::string Field(const std::string& key, uint64_t value) {
    return Quote(key) + ": " + std::to_string(value);
  }

  std::vector<std::string> meta_;
  std::vector<Row> rows_;
};

template <typename Fn>
double MinTimeMs(Fn&& fn, int reps) {
  double best = -1;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    double ms = t.ElapsedMillis();
    if (best < 0 || ms < best) best = ms;
  }
  return best;
}

/// All engines bundled over one data graph, behind the shared Evaluator
/// seam. Indexes (region encoding, SSPI, intervals) are built once and
/// shared across the engines that consume them; stats() reports the most
/// recently run engine.
class EngineBench {
 public:
  explicit EngineBench(const DataGraph& g) : g_(g) {
    auto enc =
        std::make_shared<const RegionEncoding>(BuildRegionEncoding(g));
    auto sspi = std::make_shared<const Sspi>(Sspi::Build(g.graph()));
    auto interval = std::make_shared<const IntervalIndex>(
        IntervalIndex::Build(g.graph()));
    // IDREF targets the XMark workload decomposes twig queries at.
    const std::vector<std::string> xmark_cross{"person", "item",
                                               "person2"};
    twigstack_ = std::make_shared<TwigStackEngine>(g, false, xmark_cross,
                                                   enc);
    twig2stack_ = std::make_shared<TwigStackEngine>(g, true, xmark_cross,
                                                    enc);
    twigstackd_ = std::make_shared<TwigStackDEngine>(g, sspi);
    hgjoin_plus_ = std::make_shared<HgJoinEngine>(g, false, interval);
    hgjoin_star_ = std::make_shared<HgJoinEngine>(g, true, interval);
  }

  const DataGraph& graph() const { return g_; }
  /// Built on first use — benches that only exercise baselines (or
  /// construct per-backend GTEA engines themselves) skip the default
  /// contour-index build entirely.
  GteaEngine& gtea() {
    if (!gtea_.has_value()) gtea_.emplace(g_);
    return *gtea_;
  }

  QueryResult RunGtea(const Gtpq& q) {
    GteaEngine& engine = gtea();
    last_stats_ = &engine.stats();
    return engine.Evaluate(q);
  }

  /// As RunGtea, with explicit options — how benches sweep
  /// GteaOptions::parallelism (answers are byte-identical, only the
  /// timing moves).
  QueryResult RunGtea(const Gtpq& q, const GteaOptions& options) {
    GteaEngine& engine = gtea();
    last_stats_ = &engine.stats();
    return engine.Evaluate(q, options);
  }

  QueryResult RunTwigStackD(const Gtpq& q) {
    last_stats_ = &twigstackd_->stats();
    return twigstackd_->Evaluate(q);
  }

  QueryResult RunHgJoinPlus(const Gtpq& q) {
    last_stats_ = &hgjoin_plus_->stats();
    return hgjoin_plus_->Evaluate(q);
  }

  QueryResult RunHgJoinStar(const Gtpq& q) {
    last_stats_ = &hgjoin_star_->stats();
    return hgjoin_star_->Evaluate(q);
  }

  QueryResult RunTwigStack(const Gtpq& q,
                           const std::vector<QNodeId>& cross) {
    last_stats_ = &twigstack_->stats();
    return twigstack_->EvaluateWithCross(q, cross);
  }

  QueryResult RunTwig2Stack(const Gtpq& q,
                            const std::vector<QNodeId>& cross) {
    last_stats_ = &twig2stack_->stats();
    return twig2stack_->EvaluateWithCross(q, cross);
  }

  /// GTPQ evaluation via decompose-and-merge over a conjunctive engine.
  Result<QueryResult> RunDecomposed(const Gtpq& q,
                                    const std::string& engine) {
    auto& decomposed =
        engine == "twigstack" ? decomp_twigstack_ : decomp_twigstackd_;
    if (decomposed == nullptr) {
      decomposed = std::make_shared<DecomposeEngine>(
          engine == "twigstack"
              ? std::static_pointer_cast<Evaluator>(twigstack_)
              : std::static_pointer_cast<Evaluator>(twigstackd_));
    }
    last_stats_ = &decomposed->stats();
    QueryResult r = decomposed->Evaluate(q);
    if (!decomposed->last_status().ok()) return decomposed->last_status();
    return r;
  }

  const EngineStats& stats() const { return *last_stats_; }
  const HgJoinReport& hgjoin_report() const {
    return hgjoin_plus_->report();
  }

  /// Resolves cross-node names (IDREF targets) to query node ids.
  static std::vector<QNodeId> CrossIds(
      const Gtpq& q, const std::vector<std::string>& names) {
    std::vector<QNodeId> out;
    for (QNodeId u = 0; u < q.NumNodes(); ++u) {
      for (const auto& name : names) {
        if (q.node(u).name == name) out.push_back(u);
      }
    }
    return out;
  }

 private:
  const DataGraph& g_;
  std::optional<GteaEngine> gtea_;
  std::shared_ptr<TwigStackEngine> twigstack_, twig2stack_;
  std::shared_ptr<TwigStackDEngine> twigstackd_;
  std::shared_ptr<HgJoinEngine> hgjoin_plus_, hgjoin_star_;
  std::shared_ptr<DecomposeEngine> decomp_twigstack_, decomp_twigstackd_;
  EngineStats no_run_yet_;
  const EngineStats* last_stats_ = &no_run_yet_;
};

}  // namespace bench
}  // namespace gtpq

#endif  // GTPQ_BENCH_HARNESS_H_
