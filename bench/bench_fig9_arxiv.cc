// Reproduces Fig 9 on the arXiv-like citation graph:
//  (a) result-size distribution of the generated query groups,
//  (b) query time, small-result group (2..50 results),
//  (c) query time, large-result group (200..1200 results),
//  (d) GTEA pruning time vs TwigStackD pre-filtering time.
//
//   --parallelism=0,8   sweep GTEA's intra-query lane budget in (b)/(c)
//                       (the baselines are single-threaded and run
//                       once); the first value fills the tables
//   --json=<path>       machine-readable rows for the CI perf-diff
#include <map>
#include <string>

#include "bench/harness.h"
#include "baselines/twigstackd.h"
#include "query/query_generator.h"
#include "workload/arxiv.h"

using namespace gtpq;
using namespace gtpq::bench;

namespace {

struct Group {
  size_t lo, hi;
  std::map<size_t, std::vector<Gtpq>> by_size;  // query size -> queries
};

}  // namespace

int main(int argc, char** argv) {
  const int reps = BenchReps();
  const auto json_path = JsonFlag(argc, argv);
  const std::vector<size_t> lane_sweep =
      SizeListFlag(argc, argv, "--parallelism=", "0");
  workload::ArxivOptions ao;
  DataGraph g = workload::GenerateArxiv(ao);
  std::printf("arXiv graph: %zu nodes, %zu edges, %zu labels\n",
              g.NumNodes(), g.NumEdges(), g.NumDistinctLabels());
  EngineBench engines(g);
  JsonReport report("fig9_arxiv");
  report.AddMeta("nodes", static_cast<uint64_t>(g.NumNodes()));
  report.AddMeta("edges", static_cast<uint64_t>(g.NumEdges()));

  Group small{2, 50, {}};
  Group large{200, 1200, {}};
  const std::vector<size_t> kSizes{5, 7, 9, 11, 13};
  const size_t kPerCell = 10;

  uint64_t seed = 1;
  for (size_t qsize : kSizes) {
    size_t attempts = 0;
    while ((small.by_size[qsize].size() < kPerCell ||
            large.by_size[qsize].size() < kPerCell) &&
           attempts++ < 1500) {
      QueryGenOptions qo;
      qo.num_nodes = qsize;
      qo.pc_probability = 0.0;
      qo.predicate_fraction = 0.0;
      qo.output_fraction = 1.0;
      qo.seed = seed++;
      auto q = GenerateRandomQuery(g, qo);
      if (!q.has_value()) continue;
      GteaOptions opts;
      opts.result_limit = 2000;
      size_t n = engines.gtea().Evaluate(*q, opts).tuples.size();
      if (n >= small.lo && n <= small.hi &&
          small.by_size[qsize].size() < kPerCell) {
        small.by_size[qsize].push_back(*q);
      } else if (n >= large.lo && n <= large.hi &&
                 large.by_size[qsize].size() < kPerCell) {
        large.by_size[qsize].push_back(*q);
      }
    }
  }

  std::printf("\nFig 9(a): queries per (size, group) and their result "
              "sizes\n%-6s %14s %14s\n", "Size", "small(2..50)",
              "large(200..1200)");
  for (size_t qsize : kSizes) {
    std::printf("%-6zu %14zu %14zu\n", qsize,
                small.by_size[qsize].size(), large.by_size[qsize].size());
  }

  for (const auto* group : {&small, &large}) {
    std::printf("\nFig 9(%s): avg query time (ms), %s-result group\n",
                group == &small ? "b" : "c",
                group == &small ? "small" : "large");
    std::printf("%-6s %12s %12s %12s %12s\n", "Size", "GTEA", "HGJoin*",
                "HGJoin+", "TwigStackD");
    const std::string group_name = group == &small ? "small" : "large";
    for (size_t qsize : kSizes) {
      const auto& queries = group->by_size.at(qsize);
      if (queries.empty()) continue;
      std::vector<double> t_gtea(lane_sweep.size(), 0.0);
      double t_star = 0, t_plus = 0, t_tsd = 0;
      for (const auto& q : queries) {
        for (size_t li = 0; li < lane_sweep.size(); ++li) {
          GteaOptions opts;
          opts.parallelism = lane_sweep[li];
          t_gtea[li] += MinTimeMs([&] { engines.RunGtea(q, opts); }, reps);
        }
        t_star += MinTimeMs([&] { engines.RunHgJoinStar(q); }, reps);
        t_plus += MinTimeMs([&] { engines.RunHgJoinPlus(q); }, reps);
        t_tsd += MinTimeMs([&] { engines.RunTwigStackD(q); }, reps);
      }
      const double n = static_cast<double>(queries.size());
      std::printf("%-6zu %12.3f %12.3f %12.3f %12.3f\n", qsize,
                  t_gtea[0] / n, t_star / n, t_plus / n, t_tsd / n);
      const std::string size_key = std::to_string(qsize);
      for (size_t li = 0; li < lane_sweep.size(); ++li) {
        report.AddRow()
            .Add("group", group_name)
            .Add("query_size", size_key)
            .Add("parallelism", static_cast<uint64_t>(lane_sweep[li]))
            .Add("gtea_ms", t_gtea[li] / n);
      }
      report.AddRow()
          .Add("group", group_name)
          .Add("query_size", size_key)
          .Add("hgjoin_star_ms", t_star / n)
          .Add("hgjoin_plus_ms", t_plus / n)
          .Add("twigstackd_ms", t_tsd / n);
    }
  }

  std::printf("\nFig 9(d): filtering time (ms): GTEA pruning vs "
              "TwigStackD pre-filter\n%-6s %16s %16s %16s %16s\n",
              "Size", "GTEA-Small", "GTEA-Large", "TwigStackD-Small",
              "TwigStackD-Large");
  for (size_t qsize : kSizes) {
    double vals[4] = {0, 0, 0, 0};
    int col = 0;
    for (const auto* group : {&small, &large}) {
      const auto& queries = group->by_size.at(qsize);
      double prune = 0, prefilter = 0;
      for (const auto& q : queries) {
        engines.RunGtea(q);
        prune += engines.gtea().stats().prune_down_ms +
                 engines.gtea().stats().prune_up_ms;
        prefilter += MinTimeMs(
            [&] {
              EngineStats s;
              TwigStackDPreFilter(g, q, &s);
            },
            reps);
      }
      const double n = std::max<size_t>(queries.size(), 1);
      vals[col] = prune / n;
      vals[col + 1] = prefilter / n;
      col += 2;
    }
    std::printf("%-6zu %16.3f %16.3f %16.3f %16.3f\n", qsize, vals[0],
                vals[2], vals[1], vals[3]);
    report.AddRow()
        .Add("query_size", std::to_string(qsize))
        .Add("gtea_prune_small_ms", vals[0])
        .Add("gtea_prune_large_ms", vals[2])
        .Add("twigstackd_prefilter_small_ms", vals[1])
        .Add("twigstackd_prefilter_large_ms", vals[3]);
  }
  std::printf("\nPaper shape: GTEA most robust across sizes/groups; "
              "TwigStackD degrades on this denser, deeper graph. Note: "
              "our pre-filter is an idealized bitmask DP, so unlike the "
              "paper's pool-based TwigStackD it stays flat here; GTEA's "
              "pruning cost grows with query size instead (see "
              "EXPERIMENTS.md).\n");
  if (json_path.has_value() && !report.WriteTo(*json_path)) return 1;
  return 0;
}
