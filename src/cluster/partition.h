#ifndef GTPQ_CLUSTER_PARTITION_H_
#define GTPQ_CLUSTER_PARTITION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "cluster/partition_map.h"
#include "common/status.h"
#include "graph/data_graph.h"

namespace gtpq {
namespace cluster {

struct PartitionPlanOptions {
  size_t num_shards = 3;
  /// When true, slide each equal cut within the balance window to the
  /// position crossed by the fewest edges; false keeps plain equal
  /// cuts s * n / num_shards.
  bool degree_aware = true;
  /// How far (as a fraction of n / num_shards) a degree-aware cut may
  /// drift from its equal-cut position.
  double balance_slack = 0.25;
};

/// Plans contiguous shard cuts over a finalized graph: num_shards + 1
/// monotone cut points, first 0, last n. Degree-aware planning
/// minimizes the number of edges crossing each cut — in a cluster,
/// boundary size is wire traffic per probe, not just overlay memory —
/// via an exact per-position span count (an edge (u, v) crosses cut p
/// iff min < p <= max) and an argmin slide within the slack window.
/// The cuts feed both ShardedOracleOptions::custom_starts and the
/// PartitionMap ranges so oracle and map always agree.
std::vector<size_t> PlanContiguousCuts(const Digraph& g,
                                       const PartitionPlanOptions& plan);

struct BuildPartitionOptions {
  PartitionPlanOptions plan;
  /// Factory spec each shard's .gtpqidx is built from.
  std::string inner_spec = "interval";
  /// Per-shard endpoints baked into the map ("host:port"); sized
  /// num_shards or empty (route time must then supply them).
  std::vector<std::string> endpoints;
};

/// Everything `gteactl partition` writes into its output directory.
struct PartitionArtifacts {
  PartitionMap map;
  std::string map_path;
  std::vector<std::string> graph_paths;  // shard<k>.graph per shard
  std::vector<std::string> index_paths;  // shard<k>.gtpqidx per shard
};

/// Partitions `g`: plans cuts, builds the boundary machinery (through
/// ShardedOracle, so in-process `sharded:` and the cluster agree on
/// semantics), then writes per-shard induced subgraphs ("gtpq-graph
/// v1"), per-shard indexes (.gtpqidx over the LOCAL subgraph, so a
/// plain `gteactl serve --graph=shardK.graph --index=file:shardK
/// .gtpqidx` serves it), and the .gtpqmap into `out_dir` (which must
/// exist).
Result<PartitionArtifacts> BuildPartition(
    const DataGraph& g, const BuildPartitionOptions& options,
    const std::string& out_dir);

}  // namespace cluster
}  // namespace gtpq

#endif  // GTPQ_CLUSTER_PARTITION_H_
