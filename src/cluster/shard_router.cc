#include "cluster/shard_router.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "dynamic/graph_delta.h"
#include "graph/digraph.h"
#include "obs/trace.h"

namespace gtpq {
namespace cluster {

ShardRouter::ShardRouter(PartitionMap map, ShardRouterOptions options)
    : map_(std::move(map)),
      endpoints_(options.endpoints.empty() ? map_.endpoints
                                           : std::move(options.endpoints)),
      limits_(options.limits),
      health_interval_ms_(options.health_interval_ms),
      health_failure_threshold_(options.health_failure_threshold),
      name_("cluster:" + map_.inner_spec) {
  boundary_id_.reserve(map_.boundary.size());
  for (uint32_t b = 0; b < map_.boundary.size(); ++b) {
    boundary_id_.emplace(map_.boundary[b], b);
  }
  shard_boundary_.resize(map_.num_shards());
  for (uint32_t b = 0; b < map_.boundary.size(); ++b) {
    shard_boundary_[map_.ShardOf(map_.boundary[b])].push_back(b);
  }
  cross_b_.reserve(map_.cross_edges.size());
  for (const auto& [x, y] : map_.cross_edges) {
    cross_b_.emplace_back(boundary_id_.at(x), boundary_id_.at(y));
  }
  contributions_ = map_.shard_overlay;
  closure_ = map_.overlay_closure;
  shard_epochs_.assign(map_.num_shards(), 0);

  obs::Registry& reg = obs::Registry::Global();
  shard_probes_.reserve(map_.num_shards());
  shard_probe_latency_us_.reserve(map_.num_shards());
  shard_healthy_.reserve(map_.num_shards());
  health_failures_.reserve(map_.num_shards());
  for (size_t s = 0; s < map_.num_shards(); ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    shard_probes_.push_back(
        reg.GetCounter("gtpq_shard_probes_total" + label));
    shard_probe_latency_us_.push_back(
        reg.GetHistogram("gtpq_shard_probe_latency_us" + label));
    shard_healthy_.push_back(reg.GetGauge("gtpq_shard_healthy" + label));
    health_failures_.push_back(
        reg.GetCounter("gtpq_shard_health_failures_total" + label));
    // Connect() refuses to hand out a router before every shard
    // answered HELLO, so shards start healthy; the prober demotes them.
    shard_healthy_.back()->Set(1);
  }
  healthy_.assign(map_.num_shards(), true);
  health_streak_.assign(map_.num_shards(), 0);
  reconnects_ = reg.GetCounter("gtpq_shard_reconnects_total");
  closure_hits_ = reg.GetCounter("gtpq_overlay_closure_hits_total");
}

ShardRouter::~ShardRouter() {
  {
    std::lock_guard<std::mutex> lock(prober_mutex_);
    prober_stop_ = true;
  }
  prober_cv_.notify_all();
  if (prober_.joinable()) prober_.join();
}

Result<std::unique_ptr<ShardRouter>> ShardRouter::Connect(
    PartitionMap map, ShardRouterOptions options) {
  GTPQ_RETURN_NOT_OK(map.Validate());
  if (!options.endpoints.empty() &&
      options.endpoints.size() != map.num_shards()) {
    return Status::InvalidArgument(
        "router got " + std::to_string(options.endpoints.size()) +
        " endpoints for " + std::to_string(map.num_shards()) + " shards");
  }
  auto router = std::unique_ptr<ShardRouter>(
      new ShardRouter(std::move(map), std::move(options)));
  for (size_t s = 0; s < router->num_shards(); ++s) {
    net::NetClient* client = router->Client(s);
    if (client == nullptr) {
      return Status::Internal(
          "cannot bring up shard " + std::to_string(s) + " at " +
          router->endpoints_[s] + " (see preceding warning)");
    }
    std::lock_guard<std::mutex> lock(router->epoch_mutex_);
    router->shard_epochs_[s] = client->server_info().epoch;
  }
  router->StartProber();
  return router;
}

net::NetClient* ShardRouter::Client(size_t shard) const {
  return Client(shard, /*attempts=*/50);
}

net::NetClient* ShardRouter::Client(size_t shard, int attempts) const {
  auto& slots = clients_.Local();
  if (slots.size() != num_shards()) slots.resize(num_shards());
  if (slots[shard] != nullptr && slots[shard]->connected()) {
    return slots[shard].get();
  }
  std::string host;
  uint16_t port = 0;
  if (!net::ParseHostPort(endpoints_[shard], &host, &port)) {
    GTPQ_LOG(Warning) << "shard " << shard << " endpoint is not host:port: "
                      << endpoints_[shard];
    return nullptr;
  }
  auto client = std::make_unique<net::NetClient>();
  const Status status = net::ConnectWithRetry(client.get(), host, port,
                                              limits_, attempts);
  if (!status.ok()) {
    GTPQ_LOG(Warning) << "shard " << shard << " at " << endpoints_[shard]
                      << " unreachable: " << status.ToString();
    return nullptr;
  }
  const uint64_t expect =
      map_.ranges[shard].end - map_.ranges[shard].begin;
  if (client->server_info().graph_nodes != expect) {
    GTPQ_LOG(Warning) << "shard " << shard << " at " << endpoints_[shard]
                      << " serves " << client->server_info().graph_nodes
                      << " nodes, map expects " << expect
                      << " — wrong shard behind this endpoint?";
    return nullptr;
  }
  slots[shard] = std::move(client);
  return slots[shard].get();
}

void ShardRouter::DropClient(size_t shard) const {
  auto& slots = clients_.Local();
  if (shard < slots.size() && slots[shard] != nullptr) {
    // Every drop forces the next probe on this thread to reconnect.
    reconnects_->Add();
    slots[shard].reset();
  }
}

std::shared_ptr<const TransitiveClosure> ShardRouter::closure() const {
  std::lock_guard<std::mutex> lock(closure_mutex_);
  return closure_;
}

std::vector<uint64_t> ShardRouter::shard_epochs() const {
  std::lock_guard<std::mutex> lock(epoch_mutex_);
  return shard_epochs_;
}

Result<bool> ShardRouter::ProbeCluster(NodeId from, NodeId to, size_t su,
                                       size_t sv) const {
  const bool same = su == sv;
  // A cross-shard path must leave through an exit of su and arrive
  // through an entry of sv; a shard with no boundary admits neither.
  if (!same &&
      (shard_boundary_[su].empty() || shard_boundary_[sv].empty())) {
    return false;
  }

  // The ambient trace was installed thread-locally by the query worker
  // (QueryServer::EvaluateOnWorker): probes fanned out on its behalf
  // carry the trace on the wire and record child spans here. Each wire
  // probe gets a PRE-ALLOCATED span id sent as the wire parent, so the
  // shard's server-side "serve probe" span nests under the router's
  // "probe shard=N" span in the stitched cross-process trace.
  const obs::TraceContext trace = obs::CurrentTrace();
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  const uint64_t fwd_span = trace.active() ? recorder.NewSpanId() : 0;
  const uint64_t rev_span = trace.active() ? recorder.NewSpanId() : 0;

  net::ProbeRequest fwd;
  fwd.reverse = false;
  fwd.pivot = LocalId(from, su);
  fwd.trace_id = trace.trace_id;
  fwd.parent_span = fwd_span;
  if (same) fwd.ids.push_back(LocalId(to, sv));
  for (uint32_t b : shard_boundary_[su]) {
    fwd.ids.push_back(LocalId(map_.boundary[b], su));
  }
  net::ProbeRequest rev;
  rev.reverse = true;
  rev.pivot = LocalId(to, sv);
  rev.trace_id = trace.trace_id;
  rev.parent_span = rev_span;
  for (uint32_t b : shard_boundary_[sv]) {
    rev.ids.push_back(LocalId(map_.boundary[b], sv));
  }

  net::NetClient* cu = Client(su);
  if (cu == nullptr) return Status::Internal("no connection to shard " +
                                                std::to_string(su));
  net::NetClient* cv = same ? cu : Client(sv);
  if (cv == nullptr) return Status::Internal("no connection to shard " +
                                                std::to_string(sv));

  // Scatter both probes before gathering either: in the cross-shard
  // case they overlap on two connections; in the same-shard case they
  // pipeline back to back on one.
  const double fwd_start_us = obs::NowMicros();
  auto fwd_id = cu->SendProbe(fwd);
  if (!fwd_id.ok()) {
    DropClient(su);
    return fwd_id.status();
  }
  Result<uint64_t> rev_id = 0;
  const bool want_rev = !rev.ids.empty();
  double rev_start_us = 0;
  if (want_rev) {
    rev_start_us = obs::NowMicros();
    rev_id = cv->SendProbe(rev);
    if (!rev_id.ok()) {
      DropClient(sv);
      DropClient(su);  // fwd response now orphaned; start clean
      return rev_id.status();
    }
  }

  auto decode = [](Result<std::string> payload, size_t want,
                   net::ProbeResult* out) -> Status {
    GTPQ_RETURN_NOT_OK(payload.status());
    GTPQ_RETURN_NOT_OK(net::DecodeProbeResult(*payload, out));
    if (out->count != want) {
      return Status::ParseError("probe result count mismatch");
    }
    return Status::OK();
  };
  auto finish_probe = [&trace, this](size_t shard, uint64_t span_id,
                                     double start_us) {
    const double dur_us = obs::NowMicros() - start_us;
    shard_probes_[shard]->Add();
    shard_probe_latency_us_[shard]->Record(static_cast<uint64_t>(dur_us));
    if (trace.active()) {
      obs::TraceRecorder::Global().Record(
          trace.trace_id, span_id, trace.parent_span,
          "probe shard=" + std::to_string(shard), start_us, dur_us);
    }
  };

  net::ProbeResult fr;
  Status status = decode(
      cu->WaitForResponse(*fwd_id, net::FrameType::kProbeResult),
      fwd.ids.size(), &fr);
  if (!status.ok()) {
    DropClient(su);
    if (want_rev) DropClient(sv);
    return status;
  }
  finish_probe(su, fwd_span, fwd_start_us);
  net::ProbeResult rr;
  if (want_rev) {
    status = decode(cv->WaitForResponse(*rev_id, net::FrameType::kProbeResult),
                    rev.ids.size(), &rr);
    if (!status.ok()) {
      DropClient(sv);
      return status;
    }
    finish_probe(sv, rev_span, rev_start_us);
  }

  IndexStats& st = stats();
  st.elements_looked_up += fwd.ids.size() + rev.ids.size();

  const size_t off = same ? 1 : 0;
  if (same && fr.Get(0)) return true;

  // Exits of `from`: boundaries it reaches intra-shard, plus itself
  // (zero-length exit) when it is one — Reaches(from, from) must not
  // require a cycle here, mirroring ShardedOracle.
  std::vector<uint32_t> exits;
  for (size_t i = 0; i < shard_boundary_[su].size(); ++i) {
    const uint32_t b = shard_boundary_[su][i];
    if (map_.boundary[b] == from || fr.Get(off + i)) exits.push_back(b);
  }
  if (exits.empty()) return false;
  std::vector<uint32_t> entries;
  for (size_t i = 0; i < shard_boundary_[sv].size(); ++i) {
    const uint32_t b = shard_boundary_[sv][i];
    if (map_.boundary[b] == to || rr.Get(i)) entries.push_back(b);
  }
  if (entries.empty()) return false;

  const std::shared_ptr<const TransitiveClosure> closure = this->closure();
  for (uint32_t b1 : exits) {
    for (uint32_t b2 : entries) {
      if (closure->Reaches(b1, b2)) {
        // Answered by the replicated overlay closure — no further wire
        // traffic needed.
        closure_hits_->Add();
        return true;
      }
    }
  }
  return false;
}

bool ShardRouter::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  const size_t su = map_.ShardOf(from);
  const size_t sv = map_.ShardOf(to);
  if (su >= num_shards() || sv >= num_shards()) return false;
  auto result = ProbeCluster(from, to, su, sv);
  if (!result.ok()) {
    // bool has no error channel; a failed probe is a (loudly logged)
    // miss, and the dropped connection reconnects on the next call.
    GTPQ_LOG(Warning) << "cluster probe " << from << " -> " << to
                      << " failed: " << result.status().ToString();
    return false;
  }
  return *result;
}

namespace {

Status RejectStructural(const std::string& what) {
  return Status::FailedPrecondition(
      "cluster router cannot apply " + what +
      " natively: it would change the partition structure (repartition "
      "with gteactl partition instead)");
}

}  // namespace

Status ShardRouter::ApplyNativeUpdate(const UpdateBatch& batch) const {
  std::lock_guard<std::mutex> update_lock(update_mutex_);

  if (!batch.add_nodes.empty()) {
    return RejectStructural("node additions");
  }
  constexpr size_t kNoOwner = static_cast<size_t>(-1);
  size_t owner = kNoOwner;
  auto claim = [&owner](size_t shard) -> Status {
    if (owner == kNoOwner) owner = shard;
    if (owner != shard) {
      return Status::FailedPrecondition(
          "cluster router applies one batch to one owning shard; split "
          "multi-shard batches upstream");
    }
    return Status::OK();
  };
  auto check_edge = [&](const EdgeRef& e) -> Status {
    const size_t sf = map_.ShardOf(e.from);
    const size_t st = map_.ShardOf(e.to);
    if (sf >= num_shards() || st >= num_shards()) {
      return Status::InvalidArgument(
          "update references vertex beyond the partitioned graph (" +
          std::to_string(e.from) + " -> " + std::to_string(e.to) + ")");
    }
    if (sf != st) return RejectStructural("cross-shard edges");
    return claim(sf);
  };
  for (const EdgeRef& e : batch.add_edges) GTPQ_RETURN_NOT_OK(check_edge(e));
  for (const EdgeRef& e : batch.remove_edges) {
    GTPQ_RETURN_NOT_OK(check_edge(e));
  }
  for (const NodeId v : batch.remove_nodes) {
    if (map_.ShardOf(v) >= num_shards()) {
      return Status::InvalidArgument("update removes unknown vertex " +
                                     std::to_string(v));
    }
    if (boundary_id_.count(v) != 0) {
      return RejectStructural("boundary-vertex removals");
    }
    GTPQ_RETURN_NOT_OK(claim(map_.ShardOf(v)));
  }

  std::vector<uint64_t> epochs(num_shards(), 0);
  const UpdateBatch barrier;  // empty batch: epoch bump, no mutation

  if (owner != kNoOwner) {
    UpdateBatch local;
    const auto local_edge = [&](const EdgeRef& e) {
      return EdgeRef{LocalId(e.from, owner), LocalId(e.to, owner)};
    };
    for (const EdgeRef& e : batch.add_edges) {
      local.add_edges.push_back(local_edge(e));
    }
    for (const EdgeRef& e : batch.remove_edges) {
      local.remove_edges.push_back(local_edge(e));
    }
    for (const NodeId v : batch.remove_nodes) {
      local.remove_nodes.push_back(LocalId(v, owner));
    }

    net::NetClient* client = Client(owner);
    if (client == nullptr) {
      return Status::Internal("owning shard " + std::to_string(owner) +
                                 " is unreachable; nothing applied");
    }
    auto applied = client->ApplyUpdates({&local, 1});
    if (!applied.ok()) {
      DropClient(owner);
      return applied.status();
    }
    epochs[owner] = applied->epoch;

    // The shard's intra-shard reachability changed; re-probe its
    // boundary-to-boundary contribution (pipelined, one probe per exit
    // boundary) and rebuild the replicated closure before any other
    // shard — or any later query — can observe the new epoch.
    const std::vector<uint32_t>& bs = shard_boundary_[owner];
    std::vector<NodeId> locals;
    locals.reserve(bs.size());
    for (uint32_t b : bs) {
      locals.push_back(LocalId(map_.boundary[b], owner));
    }
    std::vector<uint64_t> request_ids;
    request_ids.reserve(bs.size());
    for (const NodeId pivot : locals) {
      net::ProbeRequest request;
      request.reverse = false;
      request.pivot = pivot;
      request.ids = locals;
      auto id = client->SendProbe(request);
      if (!id.ok()) {
        DropClient(owner);
        return id.status();
      }
      request_ids.push_back(*id);
    }
    std::vector<std::pair<uint32_t, uint32_t>> contribution;
    for (size_t i = 0; i < bs.size(); ++i) {
      net::ProbeResult result;
      auto payload = client->WaitForResponse(request_ids[i],
                                             net::FrameType::kProbeResult);
      if (!payload.ok()) {
        DropClient(owner);
        return payload.status();
      }
      GTPQ_RETURN_NOT_OK(net::DecodeProbeResult(*payload, &result));
      if (result.count != bs.size()) {
        return Status::ParseError("contribution probe count mismatch");
      }
      for (size_t j = 0; j < bs.size(); ++j) {
        if (result.Get(j)) contribution.emplace_back(bs[i], bs[j]);
      }
    }
    contributions_[owner] = std::move(contribution);
    RebuildClosure();
  }

  // Epoch barrier: every shard that did not apply the batch commits one
  // empty batch, so all shard epochs advance together and a probe can
  // never observe some shards before and some after this update.
  for (size_t s = 0; s < num_shards(); ++s) {
    if (s == owner) continue;
    net::NetClient* client = Client(s);
    if (client == nullptr) {
      return Status::Internal("shard " + std::to_string(s) +
                                 " unreachable during epoch barrier");
    }
    auto applied = client->ApplyUpdates({&barrier, 1});
    if (!applied.ok()) {
      DropClient(s);
      return applied.status();
    }
    epochs[s] = applied->epoch;
  }

  {
    std::lock_guard<std::mutex> lock(epoch_mutex_);
    shard_epochs_ = epochs;
  }
  const auto [min_it, max_it] =
      std::minmax_element(epochs.begin(), epochs.end());
  if (*min_it != *max_it) {
    GTPQ_LOG(Warning) << "cluster epochs diverged after update (min "
                      << *min_it << ", max " << *max_it
                      << "); did something update a shard directly?";
  }
  return Status::OK();
}

Result<obs::MetricsSnapshot> ShardRouter::FederatedMetricsSnapshot()
    const {
  // Scatter one binary-snapshot request per reachable shard, then
  // gather. A dead shard is skipped — its absence shows up as a missing
  // shard="N" series and a zero gtpq_shard_healthy gauge, which is more
  // useful than an export that errors out whenever one member is down.
  struct Pending {
    size_t shard = 0;
    net::NetClient* client = nullptr;
    uint64_t request_id = 0;
  };
  std::vector<Pending> pending;
  pending.reserve(num_shards());
  for (size_t s = 0; s < num_shards(); ++s) {
    net::NetClient* client = Client(s, /*attempts=*/2);
    if (client == nullptr) continue;
    auto id = client->SendObserve(net::ObserveKind::kMetricsSnapshot);
    if (!id.ok()) {
      DropClient(s);
      continue;
    }
    pending.push_back({s, client, *id});
  }
  std::vector<obs::MemberSnapshot> members;
  members.reserve(pending.size());
  for (const Pending& p : pending) {
    auto payload =
        p.client->WaitForResponse(p.request_id,
                                  net::FrameType::kObserveResult);
    std::string body;
    if (!payload.ok() ||
        !net::DecodeObserveResult(*payload, &body).ok()) {
      DropClient(p.shard);
      continue;
    }
    obs::MetricsSnapshot snapshot;
    const Status decoded = obs::DecodeMetricsSnapshot(body, &snapshot);
    if (!decoded.ok()) {
      GTPQ_LOG(Warning) << "shard " << p.shard
                        << " metrics snapshot rejected: "
                        << decoded.ToString();
      continue;
    }
    members.push_back({std::to_string(p.shard), std::move(snapshot)});
  }
  return obs::BuildFederatedSnapshot(obs::Registry::Global().Snap(),
                                     members);
}

Result<std::vector<obs::ProcessSpans>> ShardRouter::CollectClusterSpans(
    uint64_t trace_id) const {
  std::vector<obs::ProcessSpans> groups;
  groups.reserve(num_shards() + 1);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  groups.push_back({"router", 1,
                    trace_id != 0 ? recorder.SpansForTrace(trace_id)
                                  : recorder.Spans()});
  for (size_t s = 0; s < num_shards(); ++s) {
    net::NetClient* client = Client(s, /*attempts=*/2);
    if (client == nullptr) continue;
    auto payload = client->Observe(net::ObserveKind::kSpans, trace_id);
    if (!payload.ok()) {
      DropClient(s);
      continue;
    }
    std::vector<obs::Span> spans;
    const Status decoded = obs::DecodeSpans(*payload, &spans);
    if (!decoded.ok()) {
      GTPQ_LOG(Warning) << "shard " << s << " span dump rejected: "
                        << decoded.ToString();
      continue;
    }
    groups.push_back({"shard " + std::to_string(s) + " (" +
                          endpoints_[s] + ")",
                      static_cast<uint32_t>(2 + s), std::move(spans)});
  }
  return groups;
}

std::vector<bool> ShardRouter::shard_health() const {
  std::lock_guard<std::mutex> lock(health_mutex_);
  return healthy_;
}

void ShardRouter::ProbeHealthOnce() const {
  for (size_t s = 0; s < num_shards(); ++s) {
    // One connect attempt only: a down shard must cost one refused
    // connect per sweep, not a reconnect backoff budget.
    bool ok = false;
    net::NetClient* client = Client(s, /*attempts=*/1);
    if (client != nullptr) {
      auto health = client->Health();
      if (health.ok() && health->serving != 0) {
        ok = true;
      } else {
        DropClient(s);
      }
    }
    std::lock_guard<std::mutex> lock(health_mutex_);
    if (ok) {
      health_streak_[s] = 0;
      healthy_[s] = true;
      shard_healthy_[s]->Set(1);
    } else {
      health_failures_[s]->Add();
      if (++health_streak_[s] >= health_failure_threshold_) {
        if (healthy_[s]) {
          GTPQ_LOG(Warning) << "shard " << s << " at " << endpoints_[s]
                            << " failed " << health_streak_[s]
                            << " consecutive health probes; marking "
                               "unhealthy";
        }
        healthy_[s] = false;
        shard_healthy_[s]->Set(0);
      }
    }
  }
}

void ShardRouter::StartProber() {
  if (health_interval_ms_ <= 0) return;
  prober_ = std::thread([this] { ProberLoop(); });
}

void ShardRouter::ProberLoop() {
  std::unique_lock<std::mutex> lock(prober_mutex_);
  while (!prober_stop_) {
    lock.unlock();
    ProbeHealthOnce();
    lock.lock();
    prober_cv_.wait_for(lock,
                        std::chrono::milliseconds(health_interval_ms_),
                        [this] { return prober_stop_; });
  }
}

void ShardRouter::RebuildClosure() const {
  Digraph overlay(map_.boundary.size());
  for (const auto& [b1, b2] : cross_b_) overlay.AddEdge(b1, b2);
  for (const auto& contribution : contributions_) {
    for (const auto& [b1, b2] : contribution) overlay.AddEdge(b1, b2);
  }
  overlay.Finalize();
  auto next = std::make_shared<const TransitiveClosure>(
      TransitiveClosure::Build(overlay));
  std::lock_guard<std::mutex> lock(closure_mutex_);
  closure_ = std::move(next);
}

}  // namespace cluster
}  // namespace gtpq
