#include "cluster/partition_map.h"

#include <algorithm>
#include <fstream>
#include <iterator>

#include "storage/index_io.h"
#include "storage/serializer.h"

namespace gtpq {
namespace cluster {

namespace {

using storage::Reader;
using storage::Writer;

constexpr size_t kVersionOffset = 8;
constexpr size_t kChecksummedOffset = 16;

std::vector<uint32_t> FlattenPairs(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  std::vector<uint32_t> flat;
  flat.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) {
    flat.push_back(a);
    flat.push_back(b);
  }
  return flat;
}

Status UnflattenPairs(std::vector<uint32_t> flat,
                      std::vector<std::pair<uint32_t, uint32_t>>* out) {
  if (flat.size() % 2 != 0) {
    return Status::ParseError("odd-length pair run in partition map");
  }
  out->clear();
  out->reserve(flat.size() / 2);
  for (size_t i = 0; i < flat.size(); i += 2) {
    out->emplace_back(flat[i], flat[i + 1]);
  }
  return Status::OK();
}

}  // namespace

size_t PartitionMap::ShardOf(NodeId v) const {
  // Ranges tile [0, n) in ascending order (Validate enforces it), so
  // binary search on begin finds the candidate range directly.
  const auto it = std::upper_bound(
      ranges.begin(), ranges.end(), static_cast<uint64_t>(v),
      [](uint64_t value, const ShardRange& r) { return value < r.begin; });
  if (it == ranges.begin()) return num_shards();
  const size_t s = static_cast<size_t>(it - ranges.begin()) - 1;
  return v < ranges[s].end ? s : num_shards();
}

Status PartitionMap::Validate() const {
  if (ranges.empty()) {
    return Status::ParseError("partition map has no shards");
  }
  if (endpoints.size() != ranges.size() ||
      shard_fingerprints.size() != ranges.size() ||
      shard_overlay.size() != ranges.size()) {
    return Status::ParseError(
        "partition map per-shard vectors disagree on the shard count");
  }
  if (ranges.front().begin != 0) {
    return Status::ParseError(
        "partition map leaves vertex 0 uncovered (first range starts at " +
        std::to_string(ranges.front().begin) + ")");
  }
  for (size_t s = 0; s < ranges.size(); ++s) {
    if (ranges[s].begin > ranges[s].end) {
      return Status::ParseError("partition map shard " + std::to_string(s) +
                                " has an inverted range");
    }
    if (s + 1 < ranges.size()) {
      if (ranges[s + 1].begin < ranges[s].end) {
        return Status::ParseError(
            "partition map shards " + std::to_string(s) + " and " +
            std::to_string(s + 1) + " have overlapping ranges");
      }
      if (ranges[s + 1].begin > ranges[s].end) {
        return Status::ParseError(
            "partition map leaves vertex " + std::to_string(ranges[s].end) +
            " uncovered (gap between shards " + std::to_string(s) + " and " +
            std::to_string(s + 1) + ")");
      }
    }
  }
  if (ranges.back().end != num_nodes) {
    return Status::ParseError(
        "partition map covers " + std::to_string(ranges.back().end) +
        " of " + std::to_string(num_nodes) + " vertices");
  }
  for (const NodeId v : boundary) {
    if (v >= num_nodes) {
      return Status::ParseError("partition map boundary vertex " +
                                std::to_string(v) + " is out of range");
    }
  }
  const uint32_t num_boundary = static_cast<uint32_t>(boundary.size());
  for (const auto& [x, y] : cross_edges) {
    if (x >= num_nodes || y >= num_nodes) {
      return Status::ParseError("partition map cross edge out of range");
    }
  }
  for (const auto& overlay : shard_overlay) {
    for (const auto& [b1, b2] : overlay) {
      if (b1 >= num_boundary || b2 >= num_boundary) {
        return Status::ParseError(
            "partition map overlay contribution indexes a boundary vertex "
            "that does not exist");
      }
    }
  }
  if (overlay_closure == nullptr) {
    return Status::ParseError("partition map is missing the overlay closure");
  }
  return Status::OK();
}

Status SavePartitionMap(const PartitionMap& map, const std::string& path) {
  if (map.overlay_closure == nullptr) {
    return Status::InvalidArgument(
        "partition map needs an overlay closure before saving (an empty "
        "boundary still has an empty closure)");
  }
  Writer body;
  body.set_pod_align(true);
  body.WriteU64(map.graph_fingerprint);
  body.WriteU64(map.num_nodes);
  body.WriteU64(map.num_edges);
  body.WriteString(map.inner_spec);
  body.WriteU64(map.ranges.size());
  for (const ShardRange& r : map.ranges) {
    body.WriteU64(r.begin);
    body.WriteU64(r.end);
  }
  for (const std::string& endpoint : map.endpoints) {
    body.WriteString(endpoint);
  }
  for (const uint64_t fp : map.shard_fingerprints) body.WriteU64(fp);
  body.WritePodVec(map.boundary);
  body.WritePodVec(FlattenPairs(map.cross_edges));
  for (const auto& overlay : map.shard_overlay) {
    body.WritePodVec(FlattenPairs(overlay));
  }
  map.overlay_closure->SaveBody(&body);

  const uint32_t crc =
      storage::Crc32(body.buffer().data(), body.buffer().size());
  Writer prologue;
  prologue.WriteBytes(kMapMagic.data(), kMapMagic.size());
  prologue.WriteU32(kMapFormatVersion);
  prologue.WriteU32(crc);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot create map file: " + path);
  out.write(prologue.buffer().data(),
            static_cast<std::streamsize>(prologue.buffer().size()));
  out.write(body.buffer().data(),
            static_cast<std::streamsize>(body.buffer().size()));
  out.close();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<PartitionMap> LoadPartitionMap(const std::string& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound("cannot open map file: " + path);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    if (in.bad()) return Status::Internal("read failed: " + path);
  }
  if (bytes.size() < kChecksummedOffset) {
    return Status::ParseError("map file too short (" +
                              std::to_string(bytes.size()) + " bytes): " +
                              path);
  }
  if (std::string_view(bytes.data(), kMapMagic.size()) != kMapMagic) {
    return Status::ParseError("bad magic: not a gtpq partition map: " +
                              path);
  }
  Reader prologue(std::string_view(bytes.data() + kVersionOffset,
                                   kChecksummedOffset - kVersionOffset));
  uint32_t version = 0, stored_crc = 0;
  GTPQ_RETURN_NOT_OK(prologue.ReadU32(&version));
  GTPQ_RETURN_NOT_OK(prologue.ReadU32(&stored_crc));
  if (version != kMapFormatVersion) {
    return Status::FailedPrecondition(
        "map format version mismatch: file has v" + std::to_string(version) +
        ", this build reads v" + std::to_string(kMapFormatVersion) + ": " +
        path);
  }
  const uint32_t actual_crc =
      storage::Crc32(bytes.data() + kChecksummedOffset,
                     bytes.size() - kChecksummedOffset);
  if (actual_crc != stored_crc) {
    return Status::ParseError(
        "map checksum mismatch (truncated or corrupted file): " + path);
  }

  Reader r(std::string_view(bytes).substr(kChecksummedOffset));
  r.set_pod_align(true);
  PartitionMap map;
  GTPQ_RETURN_NOT_OK(r.ReadU64(&map.graph_fingerprint));
  GTPQ_RETURN_NOT_OK(r.ReadU64(&map.num_nodes));
  GTPQ_RETURN_NOT_OK(r.ReadU64(&map.num_edges));
  GTPQ_RETURN_NOT_OK(r.ReadString(&map.inner_spec));
  uint64_t num_shards = 0;
  GTPQ_RETURN_NOT_OK(r.ReadU64(&num_shards));
  // Every shard costs at least its two range words.
  if (num_shards > r.remaining() / 16) {
    return Status::ParseError("map shard count is implausible");
  }
  map.ranges.resize(static_cast<size_t>(num_shards));
  for (ShardRange& range : map.ranges) {
    GTPQ_RETURN_NOT_OK(r.ReadU64(&range.begin));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&range.end));
  }
  map.endpoints.resize(map.ranges.size());
  for (std::string& endpoint : map.endpoints) {
    GTPQ_RETURN_NOT_OK(r.ReadString(&endpoint));
  }
  map.shard_fingerprints.resize(map.ranges.size());
  for (uint64_t& fp : map.shard_fingerprints) {
    GTPQ_RETURN_NOT_OK(r.ReadU64(&fp));
  }
  GTPQ_RETURN_NOT_OK(r.ReadPodVec(&map.boundary));
  std::vector<uint32_t> flat;
  GTPQ_RETURN_NOT_OK(r.ReadPodVec(&flat));
  GTPQ_RETURN_NOT_OK(UnflattenPairs(std::move(flat), &map.cross_edges));
  map.shard_overlay.resize(map.ranges.size());
  for (auto& overlay : map.shard_overlay) {
    flat.clear();
    GTPQ_RETURN_NOT_OK(r.ReadPodVec(&flat));
    GTPQ_RETURN_NOT_OK(UnflattenPairs(std::move(flat), &overlay));
  }
  auto closure = TransitiveClosure::LoadBody(&r);
  GTPQ_RETURN_NOT_OK(closure.status());
  map.overlay_closure =
      std::make_shared<const TransitiveClosure>(closure.TakeValue());
  GTPQ_RETURN_NOT_OK(r.ExpectEnd());
  GTPQ_RETURN_NOT_OK(map.Validate());
  return map;
}

Status VerifyShardIndex(const PartitionMap& map, size_t shard,
                        const std::string& index_path) {
  if (shard >= map.num_shards()) {
    return Status::InvalidArgument("shard " + std::to_string(shard) +
                                   " does not exist in the map");
  }
  auto info = storage::InspectReachabilityIndex(index_path);
  GTPQ_RETURN_NOT_OK(info.status());
  if (info->graph_fingerprint != map.shard_fingerprints[shard]) {
    return Status::FailedPrecondition(
        "shard " + std::to_string(shard) +
        " index was built for a different subgraph (index fingerprint " +
        std::to_string(info->graph_fingerprint) + ", map expects " +
        std::to_string(map.shard_fingerprints[shard]) + "): " + index_path);
  }
  return Status::OK();
}

}  // namespace cluster
}  // namespace gtpq
