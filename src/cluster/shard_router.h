#ifndef GTPQ_CLUSTER_SHARD_ROUTER_H_
#define GTPQ_CLUSTER_SHARD_ROUTER_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/partition_map.h"
#include "common/per_thread.h"
#include "common/status.h"
#include "net/client.h"
#include "obs/federation.h"
#include "obs/metrics.h"
#include "reachability/reachability_index.h"
#include "reachability/transitive_closure.h"

namespace gtpq {
namespace cluster {

struct ShardRouterOptions {
  /// Per-shard "host:port" endpoints; empty uses the ones baked into the
  /// map, otherwise must be sized num_shards.
  std::vector<std::string> endpoints;
  net::WireLimits limits;
  /// Health prober cadence (HEALTH round trip to every shard); <= 0
  /// disables the prober thread entirely.
  int health_interval_ms = 500;
  /// Consecutive failed probes before a shard's gtpq_shard_healthy
  /// gauge drops to 0. One flake (a lost race with a restart) should
  /// not flap the gauge the failover seam will eventually key off.
  int health_failure_threshold = 2;
};

/// Scatter-gather reachability over a cluster of `gteactl serve`
/// processes, one per contiguous vertex shard of a PartitionMap.
///
/// The router replicates only the map's boundary machinery (boundary
/// vertex ids, cross edges, per-shard overlay contributions, and the
/// overlay transitive closure); per-shard labelings live in the shard
/// processes and are consulted through pipelined gtpq-wire PROBE
/// frames. Reaches(u, v) mirrors ShardedOracle exactly:
///
///  * same shard — one forward probe answers "u reaches v intra-shard"
///    and "u reaches each shard boundary" in a single round trip
///    (ids = [v, boundaries...]), pipelined with the reverse entry
///    probe on the same connection;
///  * cross shard — a forward probe on u's shard (exits) and a reverse
///    probe on v's shard (entries) fly concurrently on two
///    connections, then exits x entries are folded through the local
///    closure with zero further wire traffic.
///
/// Wire failures cannot be reported through the bool probe interface,
/// so a failed probe logs a warning, drops the connection (the next
/// call reconnects), and answers false.
///
/// Updates: SupportsNativeUpdates() is true, so the serving layer's
/// SharedEngineFactory routes APPLY_UPDATES here instead of wrapping
/// the router in a delta overlay. ApplyNativeUpdate applies the batch
/// on the owning shard, re-probes that shard's boundary-to-boundary
/// contribution, rebuilds the replicated closure, and then commits an
/// epoch barrier: every other shard receives one empty batch so all
/// shard epochs advance in lockstep and no later probe can observe
/// mixed shard epochs. Batches that would change the partition
/// structure (node additions, cross-shard edges, boundary-vertex
/// removals, multi-shard batches) are rejected with FailedPrecondition
/// before any shard is touched.
///
/// Thread safety: probes may run concurrently from any thread
/// (connections are per-thread, the closure swap is a locked
/// shared_ptr exchange); ApplyNativeUpdate serializes against itself
/// and must not run concurrently with probes that require a stable
/// epoch — the serving layer's serial update dispatcher provides
/// exactly that barrier.
class ShardRouter : public ReachabilityOracle,
                    public obs::ClusterObservable {
 public:
  /// Validates endpoints, connects to every shard once (bounded
  /// ECONNREFUSED backoff, so a cluster can come up in any order), and
  /// checks each server's HELLO against the map: graph_nodes must equal
  /// the shard's range size. Fails without a usable router on any
  /// mismatch. On success the health prober thread starts (unless
  /// disabled via options).
  static Result<std::unique_ptr<ShardRouter>> Connect(
      PartitionMap map, ShardRouterOptions options = {});
  ~ShardRouter() override;

  std::string_view name() const override { return name_; }
  bool Reaches(NodeId from, NodeId to) const override;

  bool SupportsNativeUpdates() const override { return true; }
  Status ApplyNativeUpdate(const UpdateBatch& batch) const override;

  /// obs::ClusterObservable — the net tier discovers these by
  /// dynamic_cast on the serving oracle and fans OBSERVE out through
  /// them. Scrapes use bounded connect retries so a dead shard delays
  /// the export by at most one short backoff instead of the full probe
  /// reconnect budget.
  Result<obs::MetricsSnapshot> FederatedMetricsSnapshot() const override;
  Result<std::vector<obs::ProcessSpans>> CollectClusterSpans(
      uint64_t trace_id) const override;

  size_t num_shards() const { return map_.num_shards(); }
  const PartitionMap& map() const { return map_; }
  /// Last epoch each shard committed (HELLO at connect, then every
  /// routed update).
  std::vector<uint64_t> shard_epochs() const;
  /// Prober verdict per shard (true until health_failure_threshold
  /// consecutive HEALTH round trips fail). Mirrors the
  /// gtpq_shard_healthy{shard="N"} gauges.
  std::vector<bool> shard_health() const;
  /// Runs one synchronous health sweep over every shard — the prober
  /// thread's body, exposed so tests can step it deterministically.
  void ProbeHealthOnce() const;

 private:
  ShardRouter(PartitionMap map, ShardRouterOptions options);

  /// The calling thread's connection to `shard`, connecting (and
  /// HELLO-validating) on first use; nullptr after a warning when the
  /// shard is unreachable or serves the wrong graph. `attempts` bounds
  /// the ECONNREFUSED backoff of a fresh connect (probes use the
  /// default long budget to ride out restarts; the health prober and
  /// federation scrapes pass 1–2 so a dead shard cannot stall them).
  net::NetClient* Client(size_t shard) const;
  net::NetClient* Client(size_t shard, int attempts) const;
  /// Drops the calling thread's connection to `shard` after a wire
  /// error so the next probe reconnects.
  void DropClient(size_t shard) const;
  NodeId LocalId(NodeId v, size_t shard) const {
    return v - static_cast<NodeId>(map_.ranges[shard].begin);
  }
  Result<bool> ProbeCluster(NodeId from, NodeId to, size_t su,
                            size_t sv) const;
  std::shared_ptr<const TransitiveClosure> closure() const;
  /// Rebuilds the replicated overlay closure from cross edges + the
  /// (possibly just-updated) per-shard contributions.
  void RebuildClosure() const;
  void StartProber();
  void ProberLoop();

  PartitionMap map_;
  std::vector<std::string> endpoints_;
  net::WireLimits limits_;
  int health_interval_ms_;
  int health_failure_threshold_;
  std::string name_;

  // Immutable probe-side structure derived from the map.
  std::unordered_map<NodeId, uint32_t> boundary_id_;
  std::vector<std::vector<uint32_t>> shard_boundary_;  // boundary ids
  std::vector<std::pair<uint32_t, uint32_t>> cross_b_;  // boundary ids

  // Mutable replica state (updates only; probes read the closure via a
  // locked shared_ptr copy).
  mutable std::mutex update_mutex_;
  mutable std::vector<std::vector<std::pair<uint32_t, uint32_t>>>
      contributions_;
  mutable std::mutex closure_mutex_;
  mutable std::shared_ptr<const TransitiveClosure> closure_;
  mutable std::mutex epoch_mutex_;
  mutable std::vector<uint64_t> shard_epochs_;

  mutable PerThread<std::vector<std::unique_ptr<net::NetClient>>> clients_;

  // Health prober state: verdicts + consecutive-failure streaks under
  // one mutex (written by the prober thread, read by shard_health()),
  // and the thread's stop plumbing. The prober uses its own PerThread
  // client slots, so it never races probe traffic on a connection.
  mutable std::mutex health_mutex_;
  mutable std::vector<bool> healthy_;
  mutable std::vector<int> health_streak_;
  std::mutex prober_mutex_;
  std::condition_variable prober_cv_;
  bool prober_stop_ = false;
  std::thread prober_;

  // Observability handles (registry-owned, stable pointers; one
  // counter/histogram per shard, labeled shard="N").
  std::vector<obs::Counter*> shard_probes_;
  std::vector<obs::Histogram*> shard_probe_latency_us_;
  std::vector<obs::Gauge*> shard_healthy_;
  std::vector<obs::Counter*> health_failures_;
  obs::Counter* reconnects_ = nullptr;
  obs::Counter* closure_hits_ = nullptr;
};

}  // namespace cluster
}  // namespace gtpq

#endif  // GTPQ_CLUSTER_SHARD_ROUTER_H_
