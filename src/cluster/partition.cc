#include "cluster/partition.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "graph/graph_io.h"
#include "reachability/sharded_oracle.h"
#include "storage/index_io.h"

namespace gtpq {
namespace cluster {

std::vector<size_t> PlanContiguousCuts(const Digraph& g,
                                       const PartitionPlanOptions& plan) {
  GTPQ_CHECK(g.finalized());
  const size_t n = g.NumNodes();
  const size_t shards =
      std::max<size_t>(1, std::min(plan.num_shards, std::max<size_t>(n, 1)));
  std::vector<size_t> cuts(shards + 1);
  for (size_t s = 0; s <= shards; ++s) cuts[s] = s * n / shards;
  if (!plan.degree_aware || shards == 1 || n == 0) return cuts;

  // cost[p] = edges (u, v) with min(u, v) < p <= max(u, v) — exactly
  // the edges severed by a cut at p. Computed once for every position
  // with a difference array: +1 at min+1, -1 at max+1, prefix-summed.
  std::vector<int64_t> diff(n + 2, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.OutNeighbors(u)) {
      const size_t lo = std::min<size_t>(u, v);
      const size_t hi = std::max<size_t>(u, v);
      if (lo == hi) continue;  // self-loops cross nothing
      ++diff[lo + 1];
      --diff[hi + 1];
    }
  }
  std::vector<int64_t> cost(n + 1, 0);
  int64_t running = 0;
  for (size_t p = 0; p <= n; ++p) {
    running += diff[p];
    cost[p] = running;
  }

  // Slide each interior cut to the cheapest position inside its slack
  // window, left to right, keeping cuts strictly monotone so no shard
  // collapses below the previous cut.
  const size_t target = n / shards;
  const size_t slack = static_cast<size_t>(
      static_cast<double>(target) * std::max(0.0, plan.balance_slack));
  for (size_t s = 1; s < shards; ++s) {
    const size_t ideal = s * n / shards;
    const size_t lo = std::max(cuts[s - 1] + 1,
                               ideal > slack ? ideal - slack : size_t{1});
    const size_t hi = std::min(n - (shards - s), ideal + slack);
    if (lo > hi) continue;  // window squeezed shut; keep the equal cut
    size_t best = std::clamp(ideal, lo, hi);
    for (size_t p = lo; p <= hi; ++p) {
      if (cost[p] < cost[best]) best = p;
    }
    cuts[s] = best;
  }
  return cuts;
}

Result<PartitionArtifacts> BuildPartition(
    const DataGraph& g, const BuildPartitionOptions& options,
    const std::string& out_dir) {
  const size_t n = g.NumNodes();
  if (n == 0) {
    return Status::InvalidArgument("cannot partition an empty graph");
  }
  if (!options.endpoints.empty() &&
      options.endpoints.size() != options.plan.num_shards) {
    return Status::InvalidArgument(
        "endpoint count (" + std::to_string(options.endpoints.size()) +
        ") does not match the shard count (" +
        std::to_string(options.plan.num_shards) + ")");
  }

  const std::vector<size_t> cuts = PlanContiguousCuts(g.graph(), options.plan);
  const size_t shards = cuts.size() - 1;

  // One ShardedOracle build yields every piece the map replicates:
  // per-shard sub-indexes, boundary vertices, cross edges, overlay
  // contributions, and the closure — with semantics byte-identical to
  // the in-process `sharded:` decorator the tests differentiate against.
  ShardedOracleOptions oracle_options;
  oracle_options.num_shards = shards;
  oracle_options.inner_spec = options.inner_spec;
  oracle_options.custom_starts = cuts;
  ShardedOracle oracle(g.graph(), oracle_options);

  PartitionArtifacts out;
  out.map.graph_fingerprint = storage::GraphFingerprint(g.graph());
  out.map.num_nodes = n;
  out.map.num_edges = g.NumEdges();
  out.map.inner_spec = options.inner_spec;
  out.map.ranges.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    out.map.ranges.push_back(ShardRange{cuts[s], cuts[s + 1]});
  }
  out.map.endpoints = options.endpoints.empty()
                          ? std::vector<std::string>(shards)
                          : options.endpoints;
  out.map.boundary = oracle.boundary_vertices();
  out.map.cross_edges = oracle.cross_edges();
  out.map.shard_overlay = oracle.shard_overlay_contributions();
  // The closure is not copyable (POD-array rows), so rebuild it from
  // the exported machinery — the same digraph ShardedOracle closed.
  {
    std::unordered_map<NodeId, uint32_t> boundary_id;
    boundary_id.reserve(out.map.boundary.size());
    for (uint32_t b = 0; b < out.map.boundary.size(); ++b) {
      boundary_id.emplace(out.map.boundary[b], b);
    }
    Digraph overlay(out.map.boundary.size());
    for (const auto& [x, y] : out.map.cross_edges) {
      overlay.AddEdge(boundary_id.at(x), boundary_id.at(y));
    }
    for (const auto& contribution : out.map.shard_overlay) {
      for (const auto& [b1, b2] : contribution) overlay.AddEdge(b1, b2);
    }
    overlay.Finalize();
    out.map.overlay_closure = std::make_shared<const TransitiveClosure>(
        TransitiveClosure::Build(overlay));
  }

  for (size_t s = 0; s < shards; ++s) {
    const size_t begin = cuts[s], end = cuts[s + 1];
    // Induced local subgraph with local ids [0, end - begin). Node and
    // edge insertion order mirrors ShardedOracle::BuildShard exactly, so
    // the local fingerprint matches the sub-index the oracle built.
    DataGraph local(0);
    for (size_t v = begin; v < end; ++v) {
      local.AddNode(g.LabelOf(static_cast<NodeId>(v)));
    }
    for (size_t v = begin; v < end; ++v) {
      for (NodeId w : g.OutNeighbors(static_cast<NodeId>(v))) {
        if (w >= begin && w < end) {
          local.AddEdge(static_cast<NodeId>(v - begin),
                        static_cast<NodeId>(w - begin));
        }
      }
    }
    local.Finalize();
    out.map.shard_fingerprints.push_back(
        storage::GraphFingerprint(local.graph()));

    const std::string stem = out_dir + "/shard" + std::to_string(s);
    const std::string graph_path = stem + ".graph";
    const std::string index_path = stem + std::string(
        storage::kIndexFileExtension);
    GTPQ_RETURN_NOT_OK(SaveDataGraphToFile(local, graph_path));
    GTPQ_RETURN_NOT_OK(storage::SaveReachabilityIndex(
        oracle.shard_index(s), local.graph(), index_path));
    out.graph_paths.push_back(graph_path);
    out.index_paths.push_back(index_path);
  }

  out.map_path = out_dir + "/cluster" + std::string(kMapFileExtension);
  GTPQ_RETURN_NOT_OK(SavePartitionMap(out.map, out.map_path));
  GTPQ_RETURN_NOT_OK(out.map.Validate());
  for (size_t s = 0; s < shards; ++s) {
    GTPQ_RETURN_NOT_OK(VerifyShardIndex(out.map, s, out.index_paths[s]));
  }
  return out;
}

}  // namespace cluster
}  // namespace gtpq
