#ifndef GTPQ_CLUSTER_PARTITION_MAP_H_
#define GTPQ_CLUSTER_PARTITION_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "graph/digraph.h"
#include "reachability/transitive_closure.h"

namespace gtpq {
namespace cluster {

/// On-disk layout of a ".gtpqmap" cluster partition map (all scalars
/// little-endian, same prologue discipline as ".gtpqidx"):
///
///   [0..8)    magic "GTPQMAP\n"
///   [8..12)   u32 format version (kMapFormatVersion)
///   [12..16)  u32 CRC-32 over every byte from offset 16 to EOF
///   [16..)    body (storage Writer/Reader, pod_align layout):
///               u64     full-graph fingerprint (storage::GraphFingerprint)
///               u64     num nodes, u64 num edges of that graph
///               string  per-shard index spec ("interval", ...)
///               u64     shard count S
///               S x     u64 range begin, u64 range end  [begin, end)
///               S x     string shard endpoint ("host:port")
///               S x     u64 fingerprint of the shard's induced local
///                       subgraph (what its .gtpqidx is stamped with)
///               vec     boundary vertices (global NodeIds, ascending)
///               vec     cross-shard edges (interleaved u32 global pairs)
///               S x     vec per-shard overlay contribution (interleaved
///                       u32 boundary-index pairs)
///               ...     replicated boundary-overlay TransitiveClosure
///                       (TransitiveClosure::SaveBody)
///
/// The map is everything a router needs to answer cross-shard
/// reachability without touching a shard: range ownership for id
/// translation, the boundary overlay closure for exit->entry hops, and
/// the per-shard contributions + cross edges to REBUILD that closure
/// after a routed update changes one shard's boundary connectivity.
///
/// Load rejects, with a clean Status: wrong magic, version mismatch,
/// checksum mismatch, overlapping shard ranges, ranges that leave a
/// vertex uncovered, and per-shard layout miscounts. Save writes the
/// struct verbatim (no validation), so tests can author bad maps.
inline constexpr std::string_view kMapMagic = "GTPQMAP\n";
inline constexpr uint32_t kMapFormatVersion = 1;
inline constexpr std::string_view kMapFileExtension = ".gtpqmap";

/// One shard's contiguous global-vertex range [begin, end).
struct ShardRange {
  uint64_t begin = 0;
  uint64_t end = 0;
};

struct PartitionMap {
  uint64_t graph_fingerprint = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  /// Factory spec of every shard's index (the partitioner builds one
  /// sub-index per shard from this).
  std::string inner_spec = "interval";
  std::vector<ShardRange> ranges;
  /// Per-shard serving endpoint ("host:port"); may be overridden at
  /// route time.
  std::vector<std::string> endpoints;
  /// GraphFingerprint of each shard's induced local subgraph — what the
  /// shard's own .gtpqidx must be stamped with.
  std::vector<uint64_t> shard_fingerprints;

  // Boundary machinery (mirrors ShardedOracle; see its class comment).
  std::vector<NodeId> boundary;
  std::vector<std::pair<NodeId, NodeId>> cross_edges;
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> shard_overlay;
  /// Closure of (cross edges + all contributions) over boundary ids.
  std::shared_ptr<const TransitiveClosure> overlay_closure;

  size_t num_shards() const { return ranges.size(); }
  /// Owning shard of a global vertex; num_shards() when uncovered.
  size_t ShardOf(NodeId v) const;

  /// Structural consistency: >= 1 shard, ranges ascending and exactly
  /// tiling [0, num_nodes), per-shard vector sizes agreeing, boundary/
  /// overlay indices in range. Load runs this; builders may too.
  Status Validate() const;
};

Status SavePartitionMap(const PartitionMap& map, const std::string& path);
Result<PartitionMap> LoadPartitionMap(const std::string& path);

/// Rejects (FailedPrecondition) when the shard's persisted index at
/// `index_path` is stamped with a different subgraph fingerprint than
/// the map expects — the map and the index were built from different
/// partitionings or graphs and must not serve together.
Status VerifyShardIndex(const PartitionMap& map, size_t shard,
                        const std::string& index_path);

}  // namespace cluster
}  // namespace gtpq

#endif  // GTPQ_CLUSTER_PARTITION_MAP_H_
