#include "net/wire.h"

#include <bit>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "storage/serializer.h"

namespace gtpq {
namespace net {

namespace {

using storage::Reader;
using storage::Writer;

Status WrapReader(std::string_view payload, const char* what,
                  Status (*fn)(Reader*, void*), void* out) {
  Reader r(payload);
  Status st = fn(&r, out);
  if (!st.ok()) {
    return Status::ParseError(std::string("malformed ") + what +
                              " payload: " + st.message());
  }
  st = r.ExpectEnd();
  if (!st.ok()) {
    return Status::ParseError(std::string("malformed ") + what +
                              " payload: " + st.message());
  }
  return Status::OK();
}

void WriteDouble(Writer* w, double v) {
  w->WriteU64(std::bit_cast<uint64_t>(v));
}

Status ReadDouble(Reader* r, double* v) {
  uint64_t bits = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&bits));
  *v = std::bit_cast<double>(bits);
  return Status::OK();
}

/// QueryResult body: output node ids, tuple count, then all tuple
/// cells as one flat POD vector (num_tuples x |output_nodes| NodeIds).
void EncodeQueryResult(const QueryResult& result, Writer* w) {
  w->WritePodVec(result.output_nodes);
  w->WriteU64(result.tuples.size());
  std::vector<NodeId> flat;
  flat.reserve(result.tuples.size() * result.output_nodes.size());
  for (const ResultTuple& tuple : result.tuples) {
    flat.insert(flat.end(), tuple.begin(), tuple.end());
  }
  w->WritePodVec(flat);
}

Status DecodeQueryResult(Reader* r, QueryResult* out) {
  out->tuples.clear();
  GTPQ_RETURN_NOT_OK(r->ReadPodVec(&out->output_nodes));
  uint64_t num_tuples = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&num_tuples));
  std::vector<NodeId> flat;
  GTPQ_RETURN_NOT_OK(r->ReadPodVec(&flat));
  const size_t width = out->output_nodes.size();
  // The declared count must be derivable from the (already
  // bounds-checked) cell vector — division, not multiplication, so a
  // hostile count can neither overflow nor drive the resize below
  // beyond the bytes actually received. Width 0 (no output nodes)
  // normalizes to at most one empty tuple.
  const bool consistent =
      width == 0
          ? flat.empty() && num_tuples <= 1
          : flat.size() % width == 0 && num_tuples == flat.size() / width;
  if (!consistent) {
    return Status::ParseError("result tuple cells do not match the "
                              "declared tuple count");
  }
  out->tuples.resize(static_cast<size_t>(num_tuples));
  for (size_t i = 0; i < out->tuples.size(); ++i) {
    out->tuples[i].assign(flat.begin() + i * width,
                          flat.begin() + (i + 1) * width);
  }
  return Status::OK();
}

Status ExpectMagic(Reader* r) {
  uint32_t magic = 0, version = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU32(&magic));
  GTPQ_RETURN_NOT_OK(r->ReadU32(&version));
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad protocol magic (not gtpq-wire)");
  }
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported gtpq-wire version " +
                                   std::to_string(version));
  }
  return Status::OK();
}

}  // namespace

bool IsRequestType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kObserve);
}

bool IsKnownType(uint8_t type) {
  if (IsRequestType(type)) return true;
  if (type == static_cast<uint8_t>(FrameType::kError)) return true;
  return type >= static_cast<uint8_t>(FrameType::kHelloOk) &&
         type <= static_cast<uint8_t>(FrameType::kObserveResult);
}

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "HELLO";
    case FrameType::kQuery: return "QUERY";
    case FrameType::kBatch: return "BATCH";
    case FrameType::kApplyUpdates: return "APPLY_UPDATES";
    case FrameType::kStats: return "STATS";
    case FrameType::kProbe: return "PROBE";
    case FrameType::kObserve: return "OBSERVE";
    case FrameType::kError: return "ERROR";
    case FrameType::kHelloOk: return "HELLO_OK";
    case FrameType::kResult: return "RESULT";
    case FrameType::kBatchResult: return "BATCH_RESULT";
    case FrameType::kApplyOk: return "APPLY_OK";
    case FrameType::kStatsResult: return "STATS_RESULT";
    case FrameType::kProbeResult: return "PROBE_RESULT";
    case FrameType::kObserveResult: return "OBSERVE_RESULT";
  }
  return "UNKNOWN";
}

void EncodeFrame(FrameType type, uint64_t request_id,
                 std::string_view payload, std::string* out) {
  Writer body;
  body.WriteU8(static_cast<uint8_t>(type));
  body.WriteU64(request_id);
  body.WriteBytes(payload.data(), payload.size());
  const uint32_t crc =
      storage::Crc32(body.buffer().data(), body.buffer().size());

  Writer frame;
  frame.WriteU32(static_cast<uint32_t>(body.buffer().size() + 4));
  out->append(frame.buffer());
  out->append(body.buffer());
  Writer trailer;
  trailer.WriteU32(crc);
  out->append(trailer.buffer());
}

Result<std::optional<Frame>> FrameDecoder::Next() {
  // Reclaim consumed prefix bytes lazily, once they dominate the
  // buffer, so pipelined small frames do not trigger per-frame moves.
  if (consumed_ > 4096 && consumed_ > buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  const std::string_view pending =
      std::string_view(buf_).substr(consumed_);
  if (pending.size() < 4) return std::optional<Frame>();
  Reader len_reader(pending);
  uint32_t length = 0;
  GTPQ_CHECK(len_reader.ReadU32(&length).ok());
  if (length < kFrameOverhead) {
    return Status::ParseError("frame length " + std::to_string(length) +
                              " below the 13-byte minimum");
  }
  if (length > limits_.max_frame_bytes) {
    return Status::ParseError(
        "frame length " + std::to_string(length) + " exceeds the " +
        std::to_string(limits_.max_frame_bytes) + "-byte limit");
  }
  if (pending.size() < 4 + static_cast<size_t>(length)) {
    return std::optional<Frame>();
  }

  const std::string_view body = pending.substr(4, length - 4);
  Reader trailer(pending.substr(4 + body.size(), 4));
  uint32_t declared_crc = 0;
  GTPQ_CHECK(trailer.ReadU32(&declared_crc).ok());
  if (storage::Crc32(body.data(), body.size()) != declared_crc) {
    return Status::ParseError("frame checksum mismatch");
  }

  Frame frame;
  Reader r(body);
  uint8_t type = 0;
  GTPQ_CHECK(r.ReadU8(&type).ok());
  GTPQ_CHECK(r.ReadU64(&frame.request_id).ok());
  if (!IsKnownType(type)) {
    return Status::ParseError("unknown frame type " + std::to_string(type));
  }
  frame.type = static_cast<FrameType>(type);
  frame.payload.assign(body.substr(1 + 8));
  consumed_ += 4 + static_cast<size_t>(length);
  return std::optional<Frame>(std::move(frame));
}

// --- Payload codecs ----------------------------------------------------

std::string EncodeHello() {
  Writer w;
  w.WriteU32(kWireMagic);
  w.WriteU32(kWireVersion);
  return w.buffer();
}

Status DecodeHello(std::string_view payload) {
  return WrapReader(
      payload, "HELLO",
      [](Reader* r, void*) -> Status { return ExpectMagic(r); }, nullptr);
}

std::string EncodeHelloOk(const HelloOk& hello) {
  Writer w;
  w.WriteU32(kWireMagic);
  w.WriteU32(kWireVersion);
  w.WriteU64(hello.epoch);
  w.WriteU64(hello.graph_nodes);
  w.WriteString(hello.engine);
  return w.buffer();
}

Status DecodeHelloOk(std::string_view payload, HelloOk* out) {
  return WrapReader(
      payload, "HELLO_OK",
      [](Reader* r, void* opaque) -> Status {
        auto* hello = static_cast<HelloOk*>(opaque);
        GTPQ_RETURN_NOT_OK(ExpectMagic(r));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&hello->epoch));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&hello->graph_nodes));
        return r->ReadString(&hello->engine);
      },
      out);
}

std::string EncodeQueryRequest(const QueryRequest& request) {
  Writer w;
  w.WriteU64(request.result_limit);
  w.WriteString(request.text);
  // Optional trailing fields: a serial, untraced request stays
  // byte-identical to the original v1 layout. A traced request encodes
  // parallelism even when 0 so the trace pair keeps its position.
  if (request.parallelism != 0 || request.trace_id != 0) {
    w.WriteU32(request.parallelism);
  }
  if (request.trace_id != 0) {
    w.WriteU64(request.trace_id);
    w.WriteU64(request.parent_span);
  }
  return w.buffer();
}

Status DecodeQueryRequest(std::string_view payload, QueryRequest* out) {
  return WrapReader(
      payload, "QUERY",
      [](Reader* r, void* opaque) -> Status {
        auto* request = static_cast<QueryRequest*>(opaque);
        request->parallelism = 0;
        request->trace_id = 0;
        request->parent_span = 0;
        GTPQ_RETURN_NOT_OK(r->ReadU64(&request->result_limit));
        GTPQ_RETURN_NOT_OK(r->ReadString(&request->text));
        if (r->remaining() > 0) {
          GTPQ_RETURN_NOT_OK(r->ReadU32(&request->parallelism));
        }
        if (r->remaining() > 0) {
          GTPQ_RETURN_NOT_OK(r->ReadU64(&request->trace_id));
          GTPQ_RETURN_NOT_OK(r->ReadU64(&request->parent_span));
        }
        return Status::OK();
      },
      out);
}

std::string EncodeBatchRequest(const BatchRequest& request) {
  Writer w;
  w.WriteU64(request.result_limit);
  w.WriteU32(static_cast<uint32_t>(request.texts.size()));
  for (const std::string& text : request.texts) w.WriteString(text);
  if (request.parallelism != 0 || request.trace_id != 0) {
    w.WriteU32(request.parallelism);
  }
  if (request.trace_id != 0) {
    w.WriteU64(request.trace_id);
    w.WriteU64(request.parent_span);
  }
  return w.buffer();
}

Status DecodeBatchRequest(std::string_view payload,
                          const WireLimits& limits, BatchRequest* out) {
  Reader r(payload);
  out->texts.clear();
  out->parallelism = 0;
  out->trace_id = 0;
  out->parent_span = 0;
  Status st = [&]() -> Status {
    GTPQ_RETURN_NOT_OK(r.ReadU64(&out->result_limit));
    uint32_t count = 0;
    GTPQ_RETURN_NOT_OK(r.ReadU32(&count));
    if (count > limits.max_batch_queries) {
      return Status::InvalidArgument(
          "batch of " + std::to_string(count) + " queries exceeds the " +
          std::to_string(limits.max_batch_queries) + "-query limit");
    }
    out->texts.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      std::string text;
      GTPQ_RETURN_NOT_OK(r.ReadString(&text));
      out->texts.push_back(std::move(text));
    }
    if (r.remaining() > 0) {
      GTPQ_RETURN_NOT_OK(r.ReadU32(&out->parallelism));
    }
    if (r.remaining() > 0) {
      GTPQ_RETURN_NOT_OK(r.ReadU64(&out->trace_id));
      GTPQ_RETURN_NOT_OK(r.ReadU64(&out->parent_span));
    }
    return r.ExpectEnd();
  }();
  if (!st.ok() && st.code() == StatusCode::kParseError) {
    return Status::ParseError("malformed BATCH payload: " + st.message());
  }
  return st;
}

std::string EncodeResult(const WireResult& result) {
  Writer w;
  w.WriteU64(result.epoch);
  EncodeQueryResult(result.result, &w);
  return w.buffer();
}

Status DecodeResult(std::string_view payload, WireResult* out) {
  return WrapReader(
      payload, "RESULT",
      [](Reader* r, void* opaque) -> Status {
        auto* result = static_cast<WireResult*>(opaque);
        GTPQ_RETURN_NOT_OK(r->ReadU64(&result->epoch));
        return DecodeQueryResult(r, &result->result);
      },
      out);
}

std::string EncodeBatchResult(const WireBatchResult& result) {
  Writer w;
  w.WriteU64(result.epoch);
  w.WriteU32(static_cast<uint32_t>(result.results.size()));
  for (const QueryResult& r : result.results) EncodeQueryResult(r, &w);
  return w.buffer();
}

Status DecodeBatchResult(std::string_view payload, WireBatchResult* out) {
  return WrapReader(
      payload, "BATCH_RESULT",
      [](Reader* r, void* opaque) -> Status {
        auto* result = static_cast<WireBatchResult*>(opaque);
        result->results.clear();
        GTPQ_RETURN_NOT_OK(r->ReadU64(&result->epoch));
        uint32_t count = 0;
        GTPQ_RETURN_NOT_OK(r->ReadU32(&count));
        // Every result costs at least its three count fields.
        if (count > r->remaining() / 24 + 1) {
          return Status::ParseError("batch result count is implausible");
        }
        result->results.resize(count);
        for (QueryResult& one : result->results) {
          GTPQ_RETURN_NOT_OK(DecodeQueryResult(r, &one));
        }
        return Status::OK();
      },
      out);
}

std::string EncodeApplyOk(const ApplyOk& apply) {
  Writer w;
  w.WriteU64(apply.epoch);
  w.WriteU64(apply.batches_applied);
  return w.buffer();
}

Status DecodeApplyOk(std::string_view payload, ApplyOk* out) {
  return WrapReader(
      payload, "APPLY_OK",
      [](Reader* r, void* opaque) -> Status {
        auto* apply = static_cast<ApplyOk*>(opaque);
        GTPQ_RETURN_NOT_OK(r->ReadU64(&apply->epoch));
        return r->ReadU64(&apply->batches_applied);
      },
      out);
}

std::string EncodeServingStats(const ServingStats& stats) {
  Writer w;
  w.WriteString(stats.engine);
  w.WriteU64(stats.epoch);
  w.WriteU64(stats.threads);
  w.WriteU64(stats.queries);
  w.WriteU64(stats.batches);
  w.WriteU64(stats.updates_applied);
  w.WriteU64(stats.input_nodes);
  w.WriteU64(stats.index_lookups);
  w.WriteU64(stats.intermediate_size);
  w.WriteU64(stats.join_ops);
  WriteDouble(&w, stats.busy_ms);
  // Per-stage engine timings (PR-6 fields). Always encoded; old peers
  // simply never ask new servers, and new clients decode them as 0 when
  // talking to an old server that stops at busy_ms.
  WriteDouble(&w, stats.match_ms);
  WriteDouble(&w, stats.prune_down_ms);
  WriteDouble(&w, stats.prime_ms);
  WriteDouble(&w, stats.prune_up_ms);
  WriteDouble(&w, stats.matching_graph_ms);
  WriteDouble(&w, stats.enumerate_ms);
  return w.buffer();
}

Status DecodeServingStats(std::string_view payload, ServingStats* out) {
  return WrapReader(
      payload, "STATS_RESULT",
      [](Reader* r, void* opaque) -> Status {
        auto* stats = static_cast<ServingStats*>(opaque);
        GTPQ_RETURN_NOT_OK(r->ReadString(&stats->engine));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->epoch));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->threads));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->queries));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->batches));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->updates_applied));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->input_nodes));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->index_lookups));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->intermediate_size));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&stats->join_ops));
        GTPQ_RETURN_NOT_OK(ReadDouble(r, &stats->busy_ms));
        stats->match_ms = stats->prune_down_ms = stats->prime_ms = 0;
        stats->prune_up_ms = stats->matching_graph_ms = 0;
        stats->enumerate_ms = 0;
        if (r->remaining() > 0) {
          GTPQ_RETURN_NOT_OK(ReadDouble(r, &stats->match_ms));
          GTPQ_RETURN_NOT_OK(ReadDouble(r, &stats->prune_down_ms));
          GTPQ_RETURN_NOT_OK(ReadDouble(r, &stats->prime_ms));
          GTPQ_RETURN_NOT_OK(ReadDouble(r, &stats->prune_up_ms));
          GTPQ_RETURN_NOT_OK(ReadDouble(r, &stats->matching_graph_ms));
          GTPQ_RETURN_NOT_OK(ReadDouble(r, &stats->enumerate_ms));
        }
        return Status::OK();
      },
      out);
}

std::string EncodeProbeRequest(const ProbeRequest& request) {
  Writer w;
  w.WriteU8(request.reverse ? 1 : 0);
  w.WriteU64(request.pivot);
  w.WritePodVec(request.ids);
  if (request.trace_id != 0) {
    w.WriteU64(request.trace_id);
    w.WriteU64(request.parent_span);
  }
  return w.buffer();
}

Status DecodeProbeRequest(std::string_view payload, ProbeRequest* out) {
  return WrapReader(
      payload, "PROBE",
      [](Reader* r, void* opaque) -> Status {
        auto* request = static_cast<ProbeRequest*>(opaque);
        uint8_t direction = 0;
        GTPQ_RETURN_NOT_OK(r->ReadU8(&direction));
        if (direction > 1) {
          return Status::ParseError("probe direction must be 0 or 1");
        }
        request->reverse = direction == 1;
        uint64_t pivot = 0;
        GTPQ_RETURN_NOT_OK(r->ReadU64(&pivot));
        if (pivot > std::numeric_limits<NodeId>::max()) {
          return Status::ParseError("probe pivot exceeds the node id range");
        }
        request->pivot = static_cast<NodeId>(pivot);
        request->trace_id = 0;
        request->parent_span = 0;
        GTPQ_RETURN_NOT_OK(r->ReadPodVec(&request->ids));
        if (r->remaining() > 0) {
          GTPQ_RETURN_NOT_OK(r->ReadU64(&request->trace_id));
          GTPQ_RETURN_NOT_OK(r->ReadU64(&request->parent_span));
        }
        return Status::OK();
      },
      out);
}

std::string EncodeProbeResult(const ProbeResult& result) {
  GTPQ_CHECK(result.bits.size() == (result.count + 7) / 8)
      << "probe bitmask does not cover the declared target count";
  Writer w;
  w.WriteU64(result.epoch);
  w.WriteU32(result.count);
  w.WritePodVec(result.bits);
  return w.buffer();
}

Status DecodeProbeResult(std::string_view payload, ProbeResult* out) {
  return WrapReader(
      payload, "PROBE_RESULT",
      [](Reader* r, void* opaque) -> Status {
        auto* result = static_cast<ProbeResult*>(opaque);
        GTPQ_RETURN_NOT_OK(r->ReadU64(&result->epoch));
        GTPQ_RETURN_NOT_OK(r->ReadU32(&result->count));
        GTPQ_RETURN_NOT_OK(r->ReadPodVec(&result->bits));
        // The bitmask must cover exactly the declared targets — a
        // mismatch means corruption, not a shorter answer.
        if (result->bits.size() !=
            (static_cast<size_t>(result->count) + 7) / 8) {
          return Status::ParseError(
              "probe bitmask does not match the declared target count");
        }
        return Status::OK();
      },
      out);
}

std::string EncodeObserveRequest(ObserveKind kind, uint64_t trace_id) {
  Writer w;
  w.WriteU8(static_cast<uint8_t>(kind));
  // Optional trailing filter, encoded only when non-zero so filterless
  // requests stay byte-identical to PR 9 frames.
  if (trace_id != 0) w.WriteU64(trace_id);
  return w.buffer();
}

namespace {
struct ObserveRequestOut {
  ObserveKind* kind;
  uint64_t* trace_id;
};
}  // namespace

Status DecodeObserveRequest(std::string_view payload, ObserveKind* kind,
                            uint64_t* trace_id) {
  ObserveRequestOut out{kind, trace_id};
  return WrapReader(
      payload, "OBSERVE",
      [](Reader* r, void* opaque) -> Status {
        auto* request = static_cast<ObserveRequestOut*>(opaque);
        uint8_t raw = 0;
        GTPQ_RETURN_NOT_OK(r->ReadU8(&raw));
        if (raw > static_cast<uint8_t>(ObserveKind::kSpans)) {
          return Status::ParseError("unknown observe kind " +
                                    std::to_string(raw));
        }
        *request->kind = static_cast<ObserveKind>(raw);
        *request->trace_id = 0;
        if (r->remaining() > 0) {
          GTPQ_RETURN_NOT_OK(r->ReadU64(request->trace_id));
        }
        return Status::OK();
      },
      &out);
}

std::string EncodeObserveResult(std::string_view body) {
  Writer w;
  w.WriteString(std::string(body));
  return w.buffer();
}

Status DecodeObserveResult(std::string_view payload, std::string* out) {
  return WrapReader(
      payload, "OBSERVE_RESULT",
      [](Reader* r, void* opaque) -> Status {
        return r->ReadString(static_cast<std::string*>(opaque));
      },
      out);
}

// Health reports travel as the OBSERVE_RESULT body; the magic guards
// against decoding a text export as a report after a version-skewed
// exchange.
inline constexpr uint32_t kHealthMagic = 0x48505447;  // "GTPH"

std::string EncodeHealthReport(const HealthReport& report) {
  Writer w;
  w.WriteU32(kHealthMagic);
  w.WriteU64(report.epoch);
  WriteDouble(&w, report.uptime_seconds);
  w.WriteU64(report.queue_depth);
  w.WriteU8(report.serving);
  w.WriteString(report.engine);
  return w.buffer();
}

Status DecodeHealthReport(std::string_view payload, HealthReport* out) {
  return WrapReader(
      payload, "HEALTH",
      [](Reader* r, void* opaque) -> Status {
        auto* report = static_cast<HealthReport*>(opaque);
        uint32_t magic = 0;
        GTPQ_RETURN_NOT_OK(r->ReadU32(&magic));
        if (magic != kHealthMagic) {
          return Status::ParseError("bad health report magic");
        }
        GTPQ_RETURN_NOT_OK(r->ReadU64(&report->epoch));
        GTPQ_RETURN_NOT_OK(ReadDouble(r, &report->uptime_seconds));
        GTPQ_RETURN_NOT_OK(r->ReadU64(&report->queue_depth));
        GTPQ_RETURN_NOT_OK(r->ReadU8(&report->serving));
        return r->ReadString(&report->engine);
      },
      out);
}

std::string EncodeError(const Status& status) {
  GTPQ_CHECK(!status.ok()) << "ERROR frames carry failures only";
  Writer w;
  w.WriteU8(static_cast<uint8_t>(status.code()));
  w.WriteString(status.message());
  return w.buffer();
}

Status DecodeError(std::string_view payload) {
  Reader r(payload);
  uint8_t code = 0;
  Status st = r.ReadU8(&code);
  std::string message;
  if (st.ok()) st = r.ReadString(&message);
  if (st.ok()) st = r.ExpectEnd();
  if (!st.ok()) {
    return Status::ParseError("malformed ERROR payload: " + st.message());
  }
  if (code == 0 || code > static_cast<uint8_t>(StatusCode::kInternal)) {
    return Status::Internal("peer error with invalid status code " +
                            std::to_string(code) + ": " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

}  // namespace net
}  // namespace gtpq
