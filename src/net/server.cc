#include "net/server.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/timer.h"
#include "dynamic/update_io.h"
#include "obs/federation.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "obs/trace.h"
#include "query/query_parser.h"

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace gtpq {
namespace net {

#if defined(__linux__)

namespace {

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

/// One decoded request parked for the dispatcher.
struct PendingRequest {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  FrameType type = FrameType::kQuery;
  std::string payload;
};

/// Registry handles for the network hot paths, resolved once.
struct NetMetrics {
  obs::Counter* connections_total;
  obs::Counter* bytes_received_total;
  obs::Counter* bytes_sent_total;
  obs::Counter* admission_rejected_total;
  obs::Gauge* dispatch_queue_depth;
  obs::Gauge* uptime_seconds;
  obs::Histogram* coalesced_batch_size;

  static const NetMetrics& Get() {
    static const NetMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      return NetMetrics{
          reg.GetCounter("gtpq_connections_total"),
          reg.GetCounter("gtpq_net_bytes_received_total"),
          reg.GetCounter("gtpq_net_bytes_sent_total"),
          reg.GetCounter("gtpq_admission_rejected_total"),
          reg.GetGauge("gtpq_dispatch_queue_depth"),
          reg.GetGauge("gtpq_uptime_seconds"),
          reg.GetHistogram("gtpq_coalesced_batch_size")};
    }();
    return m;
  }
};

/// One encoded response frame headed back to a connection. Each
/// dispatched request produces exactly one response, so delivery also
/// releases one in-flight slot.
struct Response {
  uint64_t conn_id = 0;
  std::string bytes;
};

struct Connection {
  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  std::string out;
  size_t out_pos = 0;
  /// Requests handed to the dispatcher but not yet answered.
  size_t inflight = 0;
  bool hello_done = false;
  /// Fatal protocol error: flush what is queued, then close.
  bool close_after_flush = false;
  bool want_writable = false;

  explicit Connection(WireLimits limits) : decoder(limits) {}
};

}  // namespace

struct NetServer::Impl {
  const DataGraph* graph = nullptr;
  NetServerOptions options;
  std::unique_ptr<QueryServer> runtime;

  int listen_fd = -1;
  int epoll_fd = -1;
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  std::atomic<uint16_t> bound_port{0};
  std::atomic<bool> started{false};
  std::atomic<bool> stop_dispatch{false};
  std::atomic<bool> stop_io{false};

  std::thread io_thread;
  std::thread dispatch_thread;

  // IO-thread-only connection table (epoll events carry the id).
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> conns;
  uint64_t next_conn_id = 2;  // 0 = listen socket, 1 = wakeup pipe

  // Request queue: IO thread -> dispatcher.
  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<PendingRequest> queue;

  // Response queue: dispatcher -> IO thread (drained on wakeup).
  std::mutex response_mu;
  std::vector<Response> responses;

  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> queries_served{0};
  std::atomic<uint64_t> probes_served{0};
  std::atomic<uint64_t> batches_dispatched{0};
  std::atomic<uint64_t> rejected_overload{0};
  std::atomic<uint64_t> protocol_errors{0};

  ~Impl() { CloseFds(); }

  void CloseFds() {
    for (int* fd : {&listen_fd, &epoll_fd, &wake_read_fd, &wake_write_fd}) {
      if (*fd >= 0) {
        ::close(*fd);
        *fd = -1;
      }
    }
  }

  Status Start();
  void Stop();

  /// Effective slow-consumer bound: never below two max-size frames,
  /// so a single legitimate large response cannot trip it.
  size_t OutputBacklogLimit() const {
    return std::max(options.max_output_backlog_bytes,
                    2 * (options.limits.max_frame_bytes + 4));
  }

  // --- IO thread ------------------------------------------------------
  void IoLoop();
  void Wake() {
    const char byte = 1;
    // The pipe is only a doorbell; a full pipe (EAGAIN) already
    // guarantees a pending wakeup, so that failure is fine to drop —
    // but an EINTR'd write on an EMPTY pipe would lose the only
    // doorbell, so retry it.
    ssize_t n;
    do {
      n = ::write(wake_write_fd, &byte, 1);
    } while (n < 0 && errno == EINTR);
  }
  void AcceptAll();
  void ReadConnection(Connection& conn);
  void HandleFrame(Connection& conn, Frame frame);
  void SendOn(Connection& conn, FrameType type, uint64_t request_id,
              std::string_view payload);
  void SendError(Connection& conn, uint64_t request_id,
                 const Status& status) {
    SendOn(conn, FrameType::kError, request_id, EncodeError(status));
  }
  void FlushConnection(Connection& conn);
  void UpdateInterest(Connection& conn);
  void CloseConnection(uint64_t id);
  void DeliverResponses();

  // --- Dispatch thread ------------------------------------------------
  void DispatchLoop();
  void ProcessQueryGroup(std::vector<PendingRequest> group);
  void ProcessApply(const PendingRequest& request);
  void Respond(uint64_t conn_id, FrameType type, uint64_t request_id,
               std::string_view payload);
  void RespondError(const PendingRequest& request, const Status& status) {
    Respond(request.conn_id, FrameType::kError, request.request_id,
            EncodeError(status));
  }
};

Status NetServer::Impl::Start() {
  listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd < 0) return Errno("socket");
  const int one = 1;
  setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address: " +
                                   options.bind_address);
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return Errno("bind " + options.bind_address + ":" +
                 std::to_string(options.port));
  }
  if (::listen(listen_fd, 128) < 0) return Errno("listen");
  GTPQ_RETURN_NOT_OK(SetNonBlocking(listen_fd));

  socklen_t addr_len = sizeof(addr);
  if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr),
                  &addr_len) < 0) {
    return Errno("getsockname");
  }
  bound_port.store(ntohs(addr.sin_port));

  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_NONBLOCK | O_CLOEXEC) < 0) return Errno("pipe2");
  wake_read_fd = pipe_fds[0];
  wake_write_fd = pipe_fds[1];

  epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return Errno("epoll_create1");
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN;
  ev.data.u64 = 0;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) < 0) {
    return Errno("epoll_ctl(listen)");
  }
  ev.data.u64 = 1;
  if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_read_fd, &ev) < 0) {
    return Errno("epoll_ctl(wakeup)");
  }

  started.store(true);
  io_thread = std::thread([this] { IoLoop(); });
  dispatch_thread = std::thread([this] { DispatchLoop(); });
  return Status::OK();
}

void NetServer::Impl::Stop() {
  if (!started.exchange(false)) return;
  // Dispatcher first: it drains the request queue (every queued request
  // still gets its response), then the IO thread delivers, flushes
  // best-effort, and closes.
  stop_dispatch.store(true);
  queue_cv.notify_all();
  dispatch_thread.join();
  stop_io.store(true);
  Wake();
  io_thread.join();
  CloseFds();
}

// ---------------------------------------------------------------- IO

void NetServer::Impl::IoLoop() {
  constexpr int kMaxEvents = 64;
  epoll_event events[kMaxEvents];
  while (true) {
    const int n = epoll_wait(epoll_fd, events, kMaxEvents, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      GTPQ_LOG(Error) << "epoll_wait: " << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == 0) {
        AcceptAll();
        continue;
      }
      if (tag == 1) {
        char buf[256];
        ssize_t drained;
        do {
          drained = ::read(wake_read_fd, buf, sizeof(buf));
        } while (drained > 0 || (drained < 0 && errno == EINTR));
        DeliverResponses();
        continue;
      }
      auto it = conns.find(tag);
      if (it == conns.end()) continue;  // closed earlier this round
      Connection& conn = *it->second;
      if ((events[i].events & (EPOLLHUP | EPOLLERR)) != 0) {
        CloseConnection(tag);
        continue;
      }
      if ((events[i].events & EPOLLOUT) != 0) FlushConnection(conn);
      if (conns.count(tag) != 0 && (events[i].events & EPOLLIN) != 0) {
        ReadConnection(conn);
      }
    }
    if (stop_io.load()) {
      // Final round: hand out whatever the dispatcher produced and try
      // one best-effort flush per connection before closing. Plain
      // writes, not FlushConnection — that may erase from `conns`
      // mid-iteration.
      DeliverResponses();
      for (auto& [id, conn] : conns) {
        // The sockets are nonblocking: a signal or a momentarily full
        // send buffer must not drop the tail responses, so retry EINTR
        // and wait out EAGAIN with a bounded poll instead of bailing on
        // the first short write.
        int eagain_budget = 20;  // x 50ms: at most ~1s per connection
        while (conn->out_pos < conn->out.size()) {
          const ssize_t n =
              ::write(conn->fd, conn->out.data() + conn->out_pos,
                      conn->out.size() - conn->out_pos);
          if (n > 0) {
            conn->out_pos += static_cast<size_t>(n);
            continue;
          }
          if (n < 0 && errno == EINTR) continue;
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK) &&
              eagain_budget-- > 0) {
            pollfd pfd{conn->fd, POLLOUT, 0};
            ::poll(&pfd, 1, /*timeout_ms=*/50);
            continue;
          }
          break;  // peer vanished or refuses to drain; drop the rest
        }
        ::close(conn->fd);
      }
      conns.clear();
      break;
    }
  }
}

void NetServer::Impl::AcceptAll() {
  while (true) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      GTPQ_LOG(Warning) << "accept: " << std::strerror(errno);
      return;
    }
    if (conns.size() >= options.max_connections) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Connection>(options.limits);
    conn->fd = fd;
    conn->id = next_conn_id++;
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN;
    ev.data.u64 = conn->id;
    if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      GTPQ_LOG(Warning) << "epoll_ctl(conn): " << std::strerror(errno);
      ::close(fd);
      continue;
    }
    connections_accepted.fetch_add(1, std::memory_order_relaxed);
    NetMetrics::Get().connections_total->Add();
    conns.emplace(conn->id, std::move(conn));
  }
}

void NetServer::Impl::ReadConnection(Connection& conn) {
  // Sends below can close (and free) the connection on write errors, so
  // every re-entry into `conn` after one is guarded by an id lookup.
  const uint64_t id = conn.id;
  char buf[64 * 1024];
  while (true) {
    const ssize_t n = ::read(conn.fd, buf, sizeof(buf));
    if (n > 0) {
      NetMetrics::Get().bytes_received_total->Add(static_cast<uint64_t>(n));
      conn.decoder.Append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(id);  // EOF or hard error
    return;
  }
  while (conns.count(id) != 0 && !conn.close_after_flush) {
    auto frame = conn.decoder.Next();
    if (!frame.ok()) {
      // Framing is untrustworthy from here on: answer with a final
      // typed ERROR and schedule the close.
      protocol_errors.fetch_add(1, std::memory_order_relaxed);
      conn.close_after_flush = true;
      SendError(conn, 0, frame.status());
      break;
    }
    if (!frame->has_value()) break;
    HandleFrame(conn, std::move(**frame));
  }
  if (conns.count(id) != 0 && conn.close_after_flush &&
      conn.out_pos >= conn.out.size()) {
    CloseConnection(id);
  }
}

void NetServer::Impl::HandleFrame(Connection& conn, Frame frame) {
  frames_received.fetch_add(1, std::memory_order_relaxed);
  if (!IsRequestType(static_cast<uint8_t>(frame.type))) {
    protocol_errors.fetch_add(1, std::memory_order_relaxed);
    conn.close_after_flush = true;
    SendError(conn, frame.request_id,
              Status::InvalidArgument(
                  std::string("clients may not send ") +
                  FrameTypeName(frame.type) + " frames"));
    return;
  }

  switch (frame.type) {
    case FrameType::kHello: {
      const Status st = DecodeHello(frame.payload);
      if (!st.ok()) {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conn.close_after_flush = true;
        SendError(conn, frame.request_id, st);
        return;
      }
      conn.hello_done = true;
      HelloOk hello;
      hello.epoch = runtime->epoch();
      hello.graph_nodes = runtime->snapshot()->graph().NumNodes();
      hello.engine = runtime->engine_name();
      SendOn(conn, FrameType::kHelloOk, frame.request_id,
             EncodeHelloOk(hello));
      return;
    }
    case FrameType::kStats:
      if (!conn.hello_done) break;
      SendOn(conn, FrameType::kStatsResult, frame.request_id,
             EncodeServingStats(runtime->serving_stats()));
      return;
    case FrameType::kProbe: {
      // Answered inline on the IO thread, like STATS: a probe is a
      // handful of immutable-snapshot oracle lookups, and the cluster
      // router's scatter-gather latency would otherwise eat a full
      // dispatch + coalescing round trip per hop.
      if (!conn.hello_done) break;
      ProbeRequest request;
      const Status st = DecodeProbeRequest(frame.payload, &request);
      if (!st.ok()) {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conn.close_after_flush = true;
        SendError(conn, frame.request_id, st);
        return;
      }
      ProbeResult result;
      result.count = static_cast<uint32_t>(request.ids.size());
      const double probe_start_us = obs::NowMicros();
      const Status probed = runtime->ProbeReachability(
          request.reverse, request.pivot, request.ids, &result.epoch,
          &result.bits);
      if (!probed.ok()) {
        SendError(conn, frame.request_id, probed);
        return;
      }
      probes_served.fetch_add(1, std::memory_order_relaxed);
      // A traced probe leaves a server-side span parented under the
      // caller's wire span id — the shard's leg of the stitched
      // cross-process timeline.
      if (request.trace_id != 0) {
        obs::TraceRecorder::Global().Record(
            request.trace_id, request.parent_span, "serve probe",
            probe_start_us, obs::NowMicros() - probe_start_us);
      }
      SendOn(conn, FrameType::kProbeResult, frame.request_id,
             EncodeProbeResult(result));
      return;
    }
    case FrameType::kObserve: {
      // Also inline, like STATS: leaf exports touch no serving state
      // that needs the dispatcher, and kHealth deliberately measures
      // IO-thread responsiveness. On a router the rendered kinds fan
      // out to every member first (bounded connect retries keep a dead
      // shard from parking the event loop for long).
      if (!conn.hello_done) break;
      ObserveKind kind = ObserveKind::kMetrics;
      uint64_t filter = 0;
      const Status st = DecodeObserveRequest(frame.payload, &kind, &filter);
      if (!st.ok()) {
        protocol_errors.fetch_add(1, std::memory_order_relaxed);
        conn.close_after_flush = true;
        SendError(conn, frame.request_id, st);
        return;
      }
      // The oracle doubles as the federation seam when this process
      // fronts a cluster (ShardRouter implements ClusterObservable);
      // keep the snapshot pinned while the fan-out runs.
      std::shared_ptr<const EngineSnapshot> snap;
      const obs::ClusterObservable* fed = nullptr;
      if (kind == ObserveKind::kMetrics ||
          kind == ObserveKind::kMetricsSnapshot ||
          kind == ObserveKind::kTrace) {
        snap = runtime->snapshot();
        fed = dynamic_cast<const obs::ClusterObservable*>(snap->oracle());
      }
      if (kind != ObserveKind::kTrace && kind != ObserveKind::kSpans) {
        NetMetrics::Get().uptime_seconds->Set(
            static_cast<int64_t>(obs::NowMicros() / 1e6));
      }
      std::string body;
      switch (kind) {
        case ObserveKind::kMetrics:
        case ObserveKind::kMetricsSnapshot: {
          obs::MetricsSnapshot snapshot;
          if (fed != nullptr) {
            auto federated = fed->FederatedMetricsSnapshot();
            if (!federated.ok()) {
              SendError(conn, frame.request_id, federated.status());
              return;
            }
            snapshot = std::move(*federated);
          } else {
            snapshot = obs::Registry::Global().Snap();
          }
          body = kind == ObserveKind::kMetrics
                     ? obs::RenderPrometheusSnapshot(snapshot)
                     : obs::EncodeMetricsSnapshot(snapshot);
          break;
        }
        case ObserveKind::kTrace: {
          if (fed != nullptr) {
            auto groups = fed->CollectClusterSpans(filter);
            if (!groups.ok()) {
              SendError(conn, frame.request_id, groups.status());
              return;
            }
            body = obs::RenderChromeTrace(*groups);
          } else {
            obs::TraceRecorder& rec = obs::TraceRecorder::Global();
            body = obs::RenderChromeTrace(
                {{"gtpq", 1,
                  filter != 0 ? rec.SpansForTrace(filter) : rec.Spans()}});
          }
          break;
        }
        case ObserveKind::kSlowlog:
          body = obs::SlowQueryLog::Global().Render();
          break;
        case ObserveKind::kHealth: {
          HealthReport report;
          report.epoch = runtime->epoch();
          report.uptime_seconds = obs::NowMicros() / 1e6;
          {
            std::lock_guard<std::mutex> lock(queue_mu);
            report.queue_depth = queue.size();
          }
          report.serving = runtime->status().ok() ? 1 : 0;
          report.engine = runtime->engine_name();
          body = EncodeHealthReport(report);
          break;
        }
        case ObserveKind::kSpans: {
          obs::TraceRecorder& rec = obs::TraceRecorder::Global();
          body = obs::EncodeSpans(
              filter != 0 ? rec.SpansForTrace(filter) : rec.Spans());
          break;
        }
      }
      SendOn(conn, FrameType::kObserveResult, frame.request_id,
             EncodeObserveResult(body));
      return;
    }
    case FrameType::kQuery:
    case FrameType::kBatch:
    case FrameType::kApplyUpdates: {
      if (!conn.hello_done) break;
      if (conn.inflight >= options.max_inflight_per_conn) {
        rejected_overload.fetch_add(1, std::memory_order_relaxed);
        NetMetrics::Get().admission_rejected_total->Add();
        SendError(conn, frame.request_id,
                  Status::FailedPrecondition(
                      "too many in-flight requests on this connection "
                      "(max " +
                      std::to_string(options.max_inflight_per_conn) +
                      ")"));
        return;
      }
      {
        std::lock_guard<std::mutex> lock(queue_mu);
        if (queue.size() >= options.max_pending_requests ||
            stop_dispatch.load()) {
          rejected_overload.fetch_add(1, std::memory_order_relaxed);
          NetMetrics::Get().admission_rejected_total->Add();
          SendError(conn, frame.request_id,
                    Status::FailedPrecondition(
                        stop_dispatch.load()
                            ? "server is shutting down"
                            : "server request queue is full (max " +
                                  std::to_string(
                                      options.max_pending_requests) +
                                  ")"));
          return;
        }
        PendingRequest request;
        request.conn_id = conn.id;
        request.request_id = frame.request_id;
        request.type = frame.type;
        request.payload = std::move(frame.payload);
        queue.push_back(std::move(request));
        NetMetrics::Get().dispatch_queue_depth->Set(
            static_cast<int64_t>(queue.size()));
      }
      ++conn.inflight;
      queue_cv.notify_one();
      return;
    }
    default:
      break;
  }
  // Fell through: request before HELLO.
  SendError(conn, frame.request_id,
            Status::FailedPrecondition("HELLO required before " +
                                       std::string(FrameTypeName(
                                           frame.type))));
}

void NetServer::Impl::SendOn(Connection& conn, FrameType type,
                             uint64_t request_id,
                             std::string_view payload) {
  EncodeFrame(type, request_id, payload, &conn.out);
  FlushConnection(conn);
}

void NetServer::Impl::FlushConnection(Connection& conn) {
  while (conn.out_pos < conn.out.size()) {
    const ssize_t n = ::write(conn.fd, conn.out.data() + conn.out_pos,
                              conn.out.size() - conn.out_pos);
    if (n > 0) {
      NetMetrics::Get().bytes_sent_total->Add(static_cast<uint64_t>(n));
      conn.out_pos += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n == 0 || (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))) {
      // Slow consumer: the socket will not drain and the backlog is
      // past the bound — disconnect rather than buffer without limit
      // for a peer that sends but never reads. (A zero return from
      // write() on a stream socket means nothing was accepted, not that
      // the peer vanished — treat it like EAGAIN, not like an error.)
      if (conn.out.size() - conn.out_pos > OutputBacklogLimit()) {
        CloseConnection(conn.id);
        return;
      }
      UpdateInterest(conn);
      return;
    }
    CloseConnection(conn.id);  // peer vanished mid-write
    return;
  }
  conn.out.clear();
  conn.out_pos = 0;
  UpdateInterest(conn);
  if (conn.close_after_flush) CloseConnection(conn.id);
}

void NetServer::Impl::UpdateInterest(Connection& conn) {
  const bool want = conn.out_pos < conn.out.size();
  if (want == conn.want_writable) return;
  conn.want_writable = want;
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.u64 = conn.id;
  epoll_ctl(epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
}

void NetServer::Impl::CloseConnection(uint64_t id) {
  auto it = conns.find(id);
  if (it == conns.end()) return;
  epoll_ctl(epoll_fd, EPOLL_CTL_DEL, it->second->fd, nullptr);
  ::close(it->second->fd);
  conns.erase(it);
  // In-flight responses for this id are dropped at delivery (the id is
  // never reused).
}

void NetServer::Impl::DeliverResponses() {
  std::vector<Response> batch;
  {
    std::lock_guard<std::mutex> lock(response_mu);
    batch.swap(responses);
  }
  for (Response& response : batch) {
    auto it = conns.find(response.conn_id);
    if (it == conns.end()) continue;  // connection died while serving
    Connection& conn = *it->second;
    GTPQ_DCHECK(conn.inflight > 0);
    if (conn.inflight > 0) --conn.inflight;
    conn.out.append(response.bytes);
    FlushConnection(conn);
  }
}

// ----------------------------------------------------------- dispatch

void NetServer::Impl::DispatchLoop() {
  while (true) {
    std::unique_lock<std::mutex> lock(queue_mu);
    queue_cv.wait(lock, [this] {
      return !queue.empty() || stop_dispatch.load();
    });
    if (queue.empty()) {
      if (stop_dispatch.load()) return;
      continue;
    }
    PendingRequest first = std::move(queue.front());
    queue.pop_front();
    if (first.type == FrameType::kApplyUpdates) {
      lock.unlock();
      ProcessApply(first);
      continue;
    }

    // Coalesce: keep adopting query-type requests until the group is
    // full or the window (measured from the first adopted query)
    // expires. An APPLY_UPDATES at the queue head ends the group so
    // updates are not starved by a steady query stream.
    std::vector<PendingRequest> group;
    group.push_back(std::move(first));
    Timer window;
    while (group.size() < options.coalesce_max_queries &&
           !stop_dispatch.load()) {
      if (!queue.empty()) {
        if (queue.front().type == FrameType::kApplyUpdates) break;
        group.push_back(std::move(queue.front()));
        queue.pop_front();
        continue;
      }
      const double left_us =
          options.coalesce_window_us - window.ElapsedMicros();
      if (left_us <= 0) break;
      queue_cv.wait_for(
          lock, std::chrono::microseconds(static_cast<int64_t>(left_us)),
          [this] { return !queue.empty() || stop_dispatch.load(); });
      if (queue.empty()) break;  // timeout or spurious + stop
    }
    NetMetrics::Get().dispatch_queue_depth->Set(
        static_cast<int64_t>(queue.size()));
    lock.unlock();
    NetMetrics::Get().coalesced_batch_size->Record(group.size());
    ProcessQueryGroup(std::move(group));
  }
}

void NetServer::Impl::ProcessQueryGroup(std::vector<PendingRequest> group) {
  // Per adopted request: the decoded queries and where its answers live.
  struct Parsed {
    const PendingRequest* request;
    bool is_batch = false;
    uint64_t result_limit = 0;
    uint32_t parallelism = 0;  // requested intra-query lanes (0 = serial)
    std::vector<Gtpq> queries;
    std::vector<QueryResult> results;
    uint64_t epoch = 0;
    // Trace correlation carried on the wire; the dispatch span covers
    // this request from decode to response and parents the per-query
    // evaluate spans.
    uint64_t trace_id = 0;
    uint64_t dispatch_span = 0;
    uint64_t parent_span = 0;
    double dispatch_start_us = 0;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(group.size());

  // The whole group parses into ONE private clone of the graph's
  // attribute namespace: known names keep their interned ids (so
  // predicates line up with graph tuples), unknown names get fresh ids
  // no tuple carries, and the graph's shared namespace is never
  // mutated. One clone per group (not per request) is safe because the
  // dispatcher is serial — parsing of this group finishes before its
  // EvaluateBatch runs, and the next group gets a fresh clone.
  auto names = std::make_shared<AttrNames>(graph->attr_names());

  for (const PendingRequest& request : group) {
    Parsed p;
    p.request = &request;
    std::vector<std::string> texts;
    if (request.type == FrameType::kQuery) {
      QueryRequest decoded;
      const Status st = DecodeQueryRequest(request.payload, &decoded);
      if (!st.ok()) {
        RespondError(request, st);
        continue;
      }
      p.result_limit = decoded.result_limit;
      p.parallelism = decoded.parallelism;
      p.trace_id = decoded.trace_id;
      p.parent_span = decoded.parent_span;
      texts.push_back(std::move(decoded.text));
    } else {
      BatchRequest decoded;
      const Status st =
          DecodeBatchRequest(request.payload, options.limits, &decoded);
      if (!st.ok()) {
        RespondError(request, st);
        continue;
      }
      p.is_batch = true;
      p.result_limit = decoded.result_limit;
      p.parallelism = decoded.parallelism;
      p.trace_id = decoded.trace_id;
      p.parent_span = decoded.parent_span;
      texts = std::move(decoded.texts);
    }
    if (p.trace_id != 0) {
      p.dispatch_span = obs::TraceRecorder::Global().NewSpanId();
      p.dispatch_start_us = obs::NowMicros();
    }

    bool bad = false;
    for (size_t i = 0; i < texts.size(); ++i) {
      auto query = ParseQuery(texts[i], names);
      if (!query.ok()) {
        RespondError(*p.request,
                     Status::InvalidArgument(
                         "query " + std::to_string(i) + ": " +
                         query.status().message()));
        bad = true;
        break;
      }
      p.queries.push_back(query.TakeValue());
    }
    if (!bad) parsed.push_back(std::move(p));
  }

  // One EvaluateBatch per distinct (result limit, requested
  // parallelism) pair — requests in a coalesced group usually share
  // one — so per-request settings are honored while the whole group
  // still rides the pool. Each dispatch pins one snapshot; its
  // BatchInfo epoch stamps the responses.
  std::vector<Gtpq> queries;
  std::vector<obs::TraceContext> traces;  // aligned with `queries`
  std::vector<std::pair<size_t, size_t>> origin;  // (parsed idx, query idx)
  std::vector<size_t> members;                    // parsed idxs this round
  std::vector<char> done(parsed.size(), 0);
  for (size_t anchor = 0; anchor < parsed.size(); ++anchor) {
    if (done[anchor]) continue;
    const uint64_t limit = parsed[anchor].result_limit;
    const uint32_t requested_lanes = parsed[anchor].parallelism;
    queries.clear();
    traces.clear();
    origin.clear();
    members.clear();
    for (size_t i = anchor; i < parsed.size(); ++i) {
      if (done[i] || parsed[i].result_limit != limit ||
          parsed[i].parallelism != requested_lanes) {
        continue;
      }
      done[i] = 1;
      members.push_back(i);
      for (size_t q = 0; q < parsed[i].queries.size(); ++q) {
        queries.push_back(std::move(parsed[i].queries[q]));
        traces.push_back(
            obs::TraceContext{parsed[i].trace_id, parsed[i].dispatch_span});
        origin.emplace_back(i, q);
      }
      parsed[i].results.resize(parsed[i].queries.size());
    }
    GteaOptions eval = options.runtime.eval_options;
    if (limit != 0) eval.result_limit = static_cast<size_t>(limit);
    // Intra-query lanes only when this dispatch is a single query —
    // the case the pool cannot parallelize across queries. Coalesced
    // multi-query dispatches stay per-query serial: the pool already
    // fans them out, and nested fan-out would oversubscribe.
    if (queries.size() == 1 && requested_lanes != 0) {
      eval.parallelism = std::min<size_t>(requested_lanes,
                                          options.max_query_parallelism);
    }
    QueryServer::BatchInfo info;
    std::vector<QueryResult> results =
        runtime->EvaluateBatch(queries, &info, eval, traces);
    batches_dispatched.fetch_add(1, std::memory_order_relaxed);
    queries_served.fetch_add(queries.size(), std::memory_order_relaxed);
    // Every member gets the pinned epoch — including zero-query BATCH
    // requests, whose response is an epoch probe and nothing else.
    for (size_t i : members) parsed[i].epoch = info.epoch;
    for (size_t k = 0; k < results.size(); ++k) {
      auto [i, q] = origin[k];
      parsed[i].results[q] = std::move(results[k]);
    }
  }

  for (Parsed& p : parsed) {
    if (p.trace_id != 0) {
      obs::TraceRecorder::Global().Record(
          p.trace_id, p.dispatch_span, p.parent_span, "dispatch",
          p.dispatch_start_us, obs::NowMicros() - p.dispatch_start_us);
    }
    if (p.is_batch) {
      WireBatchResult result;
      result.epoch = p.epoch;
      result.results = std::move(p.results);
      Respond(p.request->conn_id, FrameType::kBatchResult,
              p.request->request_id, EncodeBatchResult(result));
    } else {
      WireResult result;
      result.epoch = p.epoch;
      result.result = std::move(p.results[0]);
      Respond(p.request->conn_id, FrameType::kResult,
              p.request->request_id, EncodeResult(result));
    }
  }
}

void NetServer::Impl::ProcessApply(const PendingRequest& request) {
  std::istringstream in(request.payload);
  auto batches = LoadUpdateBatches(&in);
  if (!batches.ok()) {
    RespondError(request, batches.status());
    return;
  }
  uint64_t applied = 0;
  for (const UpdateBatch& batch : *batches) {
    const Status st = runtime->ApplyUpdates(batch);
    if (!st.ok()) {
      RespondError(request,
                   Status(st.code(), "update batch " +
                                         std::to_string(applied) + ": " +
                                         st.message()));
      return;
    }
    ++applied;
  }
  ApplyOk ok;
  ok.epoch = runtime->epoch();
  ok.batches_applied = applied;
  Respond(request.conn_id, FrameType::kApplyOk, request.request_id,
          EncodeApplyOk(ok));
}

void NetServer::Impl::Respond(uint64_t conn_id, FrameType type,
                              uint64_t request_id,
                              std::string_view payload) {
  // Never emit a frame the peer's decoder is entitled to treat as a
  // fatal framing error: an over-limit response degrades to a typed
  // ERROR the client can recover from (lower the result limit, raise
  // WireLimits, or split the batch).
  if (payload.size() + kFrameOverhead > options.limits.max_frame_bytes &&
      type != FrameType::kError) {
    Respond(conn_id, FrameType::kError, request_id,
            EncodeError(Status::OutOfRange(
                "response of " + std::to_string(payload.size()) +
                " bytes exceeds the " +
                std::to_string(options.limits.max_frame_bytes) +
                "-byte frame limit; lower the result limit or split "
                "the batch")));
    return;
  }
  Response response;
  response.conn_id = conn_id;
  EncodeFrame(type, request_id, payload, &response.bytes);
  {
    std::lock_guard<std::mutex> lock(response_mu);
    responses.push_back(std::move(response));
  }
  Wake();
}

// ------------------------------------------------------------- facade

NetServer::NetServer(const DataGraph& g, NetServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->graph = &g;
  impl_->options = std::move(options);
  impl_->runtime =
      std::make_unique<QueryServer>(g, impl_->options.runtime);
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  GTPQ_CHECK(!impl_->started.load()) << "NetServer started twice";
  GTPQ_RETURN_NOT_OK(impl_->runtime->status());
  Status st = impl_->Start();
  if (!st.ok()) impl_->CloseFds();
  return st;
}

void NetServer::Stop() { impl_->Stop(); }

bool NetServer::running() const { return impl_->started.load(); }

uint16_t NetServer::port() const { return impl_->bound_port.load(); }

QueryServer& NetServer::runtime() { return *impl_->runtime; }
const QueryServer& NetServer::runtime() const { return *impl_->runtime; }

NetServer::Counters NetServer::counters() const {
  Counters out;
  out.connections_accepted =
      impl_->connections_accepted.load(std::memory_order_relaxed);
  out.frames_received =
      impl_->frames_received.load(std::memory_order_relaxed);
  out.queries_served =
      impl_->queries_served.load(std::memory_order_relaxed);
  out.probes_served =
      impl_->probes_served.load(std::memory_order_relaxed);
  out.batches_dispatched =
      impl_->batches_dispatched.load(std::memory_order_relaxed);
  out.rejected_overload =
      impl_->rejected_overload.load(std::memory_order_relaxed);
  out.protocol_errors =
      impl_->protocol_errors.load(std::memory_order_relaxed);
  return out;
}

#else  // !defined(__linux__)

/// Non-Linux stub: the front-end needs epoll. The rest of the repo
/// (wire codec included) stays fully portable.
struct NetServer::Impl {
  const DataGraph* graph = nullptr;
  NetServerOptions options;
  std::unique_ptr<QueryServer> runtime;
};

NetServer::NetServer(const DataGraph& g, NetServerOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->graph = &g;
  impl_->options = std::move(options);
  impl_->runtime =
      std::make_unique<QueryServer>(g, impl_->options.runtime);
}

NetServer::~NetServer() = default;

Status NetServer::Start() {
  return Status::Unimplemented(
      "NetServer requires epoll (Linux-only); this build has no network "
      "front-end");
}

void NetServer::Stop() {}
bool NetServer::running() const { return false; }
uint16_t NetServer::port() const { return 0; }
QueryServer& NetServer::runtime() { return *impl_->runtime; }
const QueryServer& NetServer::runtime() const { return *impl_->runtime; }
NetServer::Counters NetServer::counters() const { return Counters(); }

#endif  // defined(__linux__)

}  // namespace net
}  // namespace gtpq
