#ifndef GTPQ_NET_WIRE_H_
#define GTPQ_NET_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/eval_types.h"
#include "runtime/query_server.h"

namespace gtpq {
namespace net {

/// "gtpq-wire v1": the length-prefixed binary protocol the network
/// front-end (net/server.h) speaks. Every frame is
///
///   u32 length       bytes that follow (type + request id + payload
///                    + trailer), bounds-checked against
///                    WireLimits::max_frame_bytes before any allocation
///   u8  type         FrameType
///   u64 request_id   caller-chosen correlation id, echoed verbatim in
///                    the response; responses may arrive out of order
///   ...              payload (length - 13 bytes), per-type layout below
///   u32 crc32        storage::Crc32 over [type, request_id, payload]
///
/// all little-endian via the storage Writer/Reader primitives, so the
/// codec shares its byte order, bounds checking, and checksum flavour
/// with the .gtpqidx on-disk format.
///
/// Request payloads:
///   HELLO          u32 magic "GTPW", u32 version
///   QUERY          u64 result_limit, string query text
///                  (query/query_parser.h line format), then an
///                  OPTIONAL u32 parallelism budget (0 when absent) —
///                  emitted only when non-zero so v1 peers that stop at
///                  the query text still interoperate — then an OPTIONAL
///                  u64 trace id + u64 parent span id pair, emitted only
///                  when the request is traced (parallelism is encoded
///                  whenever the trace fields are, keeping the layout
///                  positional)
///   BATCH          u64 result_limit, u32 count, count query strings,
///                  then the same optional trailing u32 parallelism and
///                  optional u64 trace id + u64 parent span pair
///   APPLY_UPDATES  string "gtpq-updates v1" text (dynamic/update_io.h)
///   STATS          empty
///   PROBE          u8 direction (0 = does pivot reach ids[i], 1 = does
///                  ids[i] reach pivot), u64 pivot node id, then the
///                  target ids as a NodeId POD vector — the reachability
///                  scatter-gather primitive the cluster router fans out
///                  to shard servers (src/cluster/shard_router.h) — then
///                  the same optional u64 trace id + u64 parent span
///   OBSERVE        u8 kind (0 = Prometheus metrics, 1 = Chrome trace
///                  JSON, 2 = slow-query log, 3 = binary metrics
///                  snapshot, 4 = health report, 5 = binary span dump),
///                  then an optional trailing u64 trace-id filter
///                  (encoded only when non-zero; absent for old peers)
///
/// Response payloads (type = request type | 0x80, or ERROR):
///   HELLO_OK       u32 magic, u32 version, u64 epoch, u64 graph nodes,
///                  string engine name
///   RESULT         u64 epoch, QueryResult (EncodeQueryResult)
///   BATCH_RESULT   u64 epoch, u32 count, count QueryResults
///   APPLY_OK       u64 epoch, u64 batches applied
///   STATS_RESULT   ServingStats (EncodeServingStats)
///   PROBE_RESULT   u64 epoch, u32 count, packed answer bitmask as a
///                  u8 POD vector of exactly (count + 7) / 8 bytes
///   OBSERVE_RESULT string body (text exposition / JSON / log dump)
///   ERROR          u8 StatusCode, string message
inline constexpr uint32_t kWireMagic = 0x57505447;  // "GTPW" LE
inline constexpr uint32_t kWireVersion = 1;

/// Frame header bytes after the length prefix: type + request id +
/// crc trailer.
inline constexpr size_t kFrameOverhead = 1 + 8 + 4;

enum class FrameType : uint8_t {
  kHello = 0x01,
  kQuery = 0x02,
  kBatch = 0x03,
  kApplyUpdates = 0x04,
  kStats = 0x05,
  kProbe = 0x06,
  kObserve = 0x07,

  kError = 0x7f,
  kHelloOk = 0x81,
  kResult = 0x82,
  kBatchResult = 0x83,
  kApplyOk = 0x84,
  kStatsResult = 0x85,
  kProbeResult = 0x86,
  kObserveResult = 0x87,
};

/// True for the seven request (client -> server) frame types.
bool IsRequestType(uint8_t type);
/// True for any frame type defined by gtpq-wire v1.
bool IsKnownType(uint8_t type);
const char* FrameTypeName(FrameType type);

/// Decoder bounds. Oversized declared lengths are rejected before any
/// buffer grows, so a hostile or corrupt peer cannot balloon memory.
struct WireLimits {
  size_t max_frame_bytes = 16u << 20;
  /// Queries per BATCH frame (admission control, not format).
  uint32_t max_batch_queries = 4096;
};

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  uint64_t request_id = 0;
  std::string payload;
};

/// Appends one encoded frame to `*out` (length prefix, header, payload,
/// CRC trailer).
void EncodeFrame(FrameType type, uint64_t request_id,
                 std::string_view payload, std::string* out);

/// Incremental frame decoder over one connection's byte stream. Append
/// received bytes, then call Next() until it yields nullopt (need more
/// bytes). A decode error (oversized length, unknown type, CRC
/// mismatch) is FATAL for the stream: framing can no longer be
/// trusted, so the caller must close the connection.
class FrameDecoder {
 public:
  explicit FrameDecoder(WireLimits limits = {}) : limits_(limits) {}

  void Append(const char* data, size_t len) { buf_.append(data, len); }

  /// One complete frame, nullopt when more bytes are needed, or a
  /// ParseError that invalidates the stream.
  Result<std::optional<Frame>> Next();

  /// Bytes buffered but not yet consumed by Next().
  size_t buffered() const { return buf_.size() - consumed_; }

 private:
  WireLimits limits_;
  std::string buf_;
  size_t consumed_ = 0;
};

// --- Payload codecs ----------------------------------------------------

std::string EncodeHello();
/// Validates magic + version of a HELLO (or HELLO_OK prefix).
Status DecodeHello(std::string_view payload);

struct HelloOk {
  uint64_t epoch = 0;
  uint64_t graph_nodes = 0;
  std::string engine;
};
std::string EncodeHelloOk(const HelloOk& hello);
Status DecodeHelloOk(std::string_view payload, HelloOk* out);

struct QueryRequest {
  uint64_t result_limit = 0;
  std::string text;
  /// Requested intra-query lanes (GteaOptions::parallelism); 0 = serial.
  /// Optional on the wire: encoded only when non-zero, decoded as 0
  /// when the trailing field is absent.
  uint32_t parallelism = 0;
  /// Optional distributed-trace correlation (obs/trace.h): encoded as a
  /// trailing u64 pair only when trace_id is non-zero (parallelism is
  /// then encoded too, even when 0, so positional decoding holds);
  /// decoded as 0 when absent. Untraced requests stay byte-identical to
  /// the original v1 layout.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};
std::string EncodeQueryRequest(const QueryRequest& request);
Status DecodeQueryRequest(std::string_view payload, QueryRequest* out);

struct BatchRequest {
  uint64_t result_limit = 0;
  std::vector<std::string> texts;
  /// Same optional trailing fields as QueryRequest.
  uint32_t parallelism = 0;
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};
std::string EncodeBatchRequest(const BatchRequest& request);
Status DecodeBatchRequest(std::string_view payload, const WireLimits& limits,
                          BatchRequest* out);

struct WireResult {
  uint64_t epoch = 0;
  QueryResult result;
};
std::string EncodeResult(const WireResult& result);
Status DecodeResult(std::string_view payload, WireResult* out);

struct WireBatchResult {
  uint64_t epoch = 0;
  std::vector<QueryResult> results;
};
std::string EncodeBatchResult(const WireBatchResult& result);
Status DecodeBatchResult(std::string_view payload, WireBatchResult* out);

struct ApplyOk {
  uint64_t epoch = 0;
  uint64_t batches_applied = 0;
};
std::string EncodeApplyOk(const ApplyOk& apply);
Status DecodeApplyOk(std::string_view payload, ApplyOk* out);

std::string EncodeServingStats(const ServingStats& stats);
Status DecodeServingStats(std::string_view payload, ServingStats* out);

/// One scatter-gather reachability probe: `reverse == false` asks
/// "does pivot reach ids[i]?", `reverse == true` asks "does ids[i]
/// reach pivot?" for every target in order. Node ids are LOCAL to the
/// server's graph; the cluster router translates global ids before
/// fanning out.
struct ProbeRequest {
  bool reverse = false;
  NodeId pivot = 0;
  std::vector<NodeId> ids;
  /// Optional trailing trace correlation, as on QueryRequest: a u64
  /// pair appended only when trace_id is non-zero, decoded as 0 when
  /// absent.
  uint64_t trace_id = 0;
  uint64_t parent_span = 0;
};
std::string EncodeProbeRequest(const ProbeRequest& request);
Status DecodeProbeRequest(std::string_view payload, ProbeRequest* out);

/// Per-target answers as a packed bitmask (bit i of bits[i / 8] answers
/// ids[i]), stamped with the snapshot epoch that answered them.
struct ProbeResult {
  uint64_t epoch = 0;
  uint32_t count = 0;
  std::vector<uint8_t> bits;

  bool Get(size_t i) const { return (bits[i / 8] >> (i % 8)) & 1; }
};
std::string EncodeProbeResult(const ProbeResult& result);
Status DecodeProbeResult(std::string_view payload, ProbeResult* out);

/// What an OBSERVE frame asks the server to export. The rendered kinds
/// (kMetrics/kTrace) federate across the cluster when the serving
/// oracle is an obs::ClusterObservable (the router); the binary kinds
/// (kMetricsSnapshot/kSpans) are the member-side primitives that
/// federation pulls; kHealth is always answered inline on the IO
/// thread so it measures event-loop responsiveness itself.
enum class ObserveKind : uint8_t {
  kMetrics = 0,          // Prometheus text exposition
  kTrace = 1,            // Chrome trace-event JSON
  kSlowlog = 2,          // slow-query log dump
  kMetricsSnapshot = 3,  // binary registry snapshot (obs/federation.h)
  kHealth = 4,           // binary HealthReport
  kSpans = 5,            // binary span dump (obs/federation.h)
};
/// The optional trailing `trace_id` filters kTrace/kSpans exports to
/// one trace. Like every optional wire field it is encoded only when
/// non-zero, so frames without it stay byte-identical to PR 9 peers.
std::string EncodeObserveRequest(ObserveKind kind, uint64_t trace_id = 0);
Status DecodeObserveRequest(std::string_view payload, ObserveKind* kind,
                            uint64_t* trace_id);

/// OBSERVE_RESULT carries the rendered or binary export verbatim.
std::string EncodeObserveResult(std::string_view body);
Status DecodeObserveResult(std::string_view payload, std::string* out);

/// Lightweight liveness report (OBSERVE kind = kHealth). Answered
/// inline on the server's IO thread — a response proves the event loop
/// is turning, not just that the process exists. Consumed by the
/// router's health prober (the replica-failover seam).
struct HealthReport {
  uint64_t epoch = 0;
  double uptime_seconds = 0;
  /// Requests parked for the dispatch thread at answer time.
  uint64_t queue_depth = 0;
  /// 1 when the runtime's engine spec loaded and the pool is serving.
  uint8_t serving = 0;
  std::string engine;
};
std::string EncodeHealthReport(const HealthReport& report);
Status DecodeHealthReport(std::string_view payload, HealthReport* out);

/// ERROR payload round trip; encoding an OK status is a programming
/// error. DecodeError returns the CARRIED status on success (never OK)
/// and a ParseError when the payload itself is malformed.
std::string EncodeError(const Status& status);
Status DecodeError(std::string_view payload);

}  // namespace net
}  // namespace gtpq

#endif  // GTPQ_NET_WIRE_H_
