#ifndef GTPQ_NET_SERVER_H_
#define GTPQ_NET_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "graph/data_graph.h"
#include "net/wire.h"
#include "runtime/query_server.h"

namespace gtpq {
namespace net {

struct NetServerOptions {
  /// Address/port to listen on; port 0 binds an ephemeral port, which
  /// port() reports after Start().
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;

  /// The serving runtime under the front-end (pool size, engine spec,
  /// eval options, delta compaction tuning).
  QueryServerOptions runtime;

  /// Coalescing: queries decoded from ALL connections are grouped into
  /// one QueryServer::EvaluateBatch while more keep arriving, bounded
  /// by a query count and a wait window measured from the first pending
  /// query. Larger windows trade latency for batch efficiency (one
  /// pinned snapshot, full pool fan-out per dispatch).
  size_t coalesce_max_queries = 64;
  double coalesce_window_us = 200.0;

  /// Cap on the intra-query parallelism a client may request via the
  /// optional QUERY/BATCH wire field. The dispatcher's policy: a
  /// dispatch that ends up holding a SINGLE query gets the requested
  /// lane budget (clamped to this cap) — that is the case where the
  /// pool cannot fan out across queries and one big query dominates
  /// p99; a dispatch holding several coalesced queries keeps every
  /// query serial, since the pool already saturates the cores
  /// across-query. 0 disables client-requested parallelism entirely.
  size_t max_query_parallelism = std::thread::hardware_concurrency();

  /// Admission control. A request past either bound is answered with a
  /// typed ERROR frame (FailedPrecondition) instead of growing queues
  /// without limit; the connection stays usable.
  size_t max_inflight_per_conn = 64;
  size_t max_pending_requests = 1024;
  /// Connections past this cap are accepted and immediately closed.
  size_t max_connections = 256;
  /// Slow-consumer bound: a connection whose UNFLUSHED output exceeds
  /// this after a write attempt is closed (a peer that sends requests
  /// but never reads responses must not grow server memory without
  /// limit). Raised automatically to hold at least two max-size
  /// frames.
  size_t max_output_backlog_bytes = 8u << 20;

  /// Frame-size and batch-size bounds enforced by the decoder.
  WireLimits limits;
};

/// The network serving front-end: a non-blocking epoll event loop
/// accepting gtpq-wire v1 connections (net/wire.h), feeding a single
/// dispatcher that coalesces concurrently-arriving queries into
/// snapshot-consistent QueryServer batches, with live APPLY_UPDATES
/// folding into the epoch-snapshot path so in-flight responses never
/// mix graph versions.
///
/// Threading model:
///  * one IO thread owns every socket — accept, frame decode, response
///    writes, admission control — so connection state needs no locks;
///  * one dispatch thread pops decoded requests, parses query text
///    (each request gets a private AttrNames clone of the graph's
///    namespace, so parsing never mutates shared state), coalesces
///    query-type requests (time/size-bounded), and runs them through
///    the QueryServer pool where the real parallelism lives;
///  * responses flow back to the IO thread over a wakeup pipe and are
///    correlated by the request id echoed in every frame — responses
///    may be reordered relative to requests (STATS overtakes a slow
///    QUERY), which the protocol permits.
///
/// Malformed frames (bad length, unknown type, CRC mismatch) invalidate
/// the stream: the server sends a final ERROR frame and closes that
/// connection. Admission rejections are per-request typed ERRORs and
/// keep the connection alive.
///
/// Only compiled on Linux (epoll); elsewhere Start() returns
/// Unimplemented.
class NetServer {
 public:
  /// `g` must outlive the server (it backs the runtime's epoch-0
  /// snapshot). Aborts (GTPQ_CHECK) on unknown engine specs, like
  /// QueryServer.
  explicit NetServer(const DataGraph& g, NetServerOptions options = {});
  ~NetServer();  // Stop()s if still running.

  /// Binds, listens, and spawns the IO + dispatch threads.
  Status Start();
  /// Drains pending requests, flushes best-effort, closes every
  /// connection, joins both threads. Idempotent.
  void Stop();
  bool running() const;

  /// The bound port (resolves ephemeral binds); 0 before Start().
  uint16_t port() const;

  /// The serving runtime behind the front-end (shared with in-process
  /// callers; the differential tests compare wire answers against it).
  QueryServer& runtime();
  const QueryServer& runtime() const;

  /// Front-end counters (atomic snapshots; safe from any thread).
  struct Counters {
    uint64_t connections_accepted = 0;
    uint64_t frames_received = 0;
    uint64_t queries_served = 0;
    /// PROBE frames answered inline on the IO thread.
    uint64_t probes_served = 0;
    /// EvaluateBatch dispatches (each = one coalesced group share).
    uint64_t batches_dispatched = 0;
    /// Requests answered with an admission-control ERROR.
    uint64_t rejected_overload = 0;
    /// Connections dropped for malformed framing.
    uint64_t protocol_errors = 0;
  };
  Counters counters() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace net
}  // namespace gtpq

#endif  // GTPQ_NET_SERVER_H_
