#ifndef GTPQ_NET_CLIENT_H_
#define GTPQ_NET_CLIENT_H_

#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dynamic/graph_delta.h"
#include "net/wire.h"

namespace gtpq {
namespace net {

/// Blocking gtpq-wire v1 client over one TCP connection, shared by the
/// gteactl query/apply subcommands, bench_net_throughput, and the
/// socket-level tests.
///
/// Two usage styles:
///  * synchronous — Query/QueryBatch/ApplyUpdates/Stats send one
///    request and wait for its response (correlated by request id;
///    responses to other outstanding requests are parked, so the sync
///    calls compose with pipelining);
///  * pipelined — SendQuery/SendBatch enqueue without waiting and
///    return the request id; Receive() yields the next response frame
///    (parked first, then off the socket), which the caller correlates
///    via Frame::request_id.
///
/// One NetClient is thread-confined. Open several clients for
/// concurrent load (see bench_net_throughput).
class NetClient {
 public:
  NetClient() = default;
  ~NetClient();
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Connects to a numeric IPv4 host ("127.0.0.1") and performs the
  /// HELLO handshake; server_info() is valid afterwards.
  Status Connect(const std::string& host, uint16_t port,
                 WireLimits limits = {});
  void Close();
  bool connected() const { return fd_ >= 0; }
  /// HELLO_OK fields captured at Connect (engine, epoch, graph size).
  const HelloOk& server_info() const { return server_info_; }

  // --- Synchronous calls ----------------------------------------------

  /// `text` is the query/query_parser.h line format; result_limit 0
  /// defers to the server's configured cap. `parallelism` requests
  /// intra-query lanes (0 = serial); the server grants it — clamped by
  /// its max_query_parallelism — only when the query is dispatched
  /// alone, and answers are byte-identical either way. A non-zero
  /// `trace_id` (obs::NewTraceId) rides the wire and correlates the
  /// server-side spans; `parent_span` parents them under a caller span.
  Result<WireResult> Query(const std::string& text,
                           uint64_t result_limit = 0,
                           uint32_t parallelism = 0,
                           uint64_t trace_id = 0, uint64_t parent_span = 0);
  Result<WireBatchResult> QueryBatch(const std::vector<std::string>& texts,
                                     uint64_t result_limit = 0,
                                     uint32_t parallelism = 0,
                                     uint64_t trace_id = 0,
                                     uint64_t parent_span = 0);
  /// Applies "gtpq-updates v1" text (dynamic/update_io.h) atomically
  /// batch by batch on the server's live snapshot chain.
  Result<ApplyOk> ApplyUpdates(const std::string& updates_text);
  Result<ApplyOk> ApplyUpdates(std::span<const UpdateBatch> batches);
  Result<ServingStats> Stats();
  /// Reachability scatter-gather probe (see ProbeRequest); node ids are
  /// local to the server's graph.
  Result<ProbeResult> Probe(const ProbeRequest& request);
  /// One observability export (OBSERVE frame): Prometheus metrics,
  /// Chrome trace JSON, the slow-query log, or a binary
  /// snapshot/span/health export. The optional trace_id filters
  /// kTrace/kSpans to one trace (0 = whole ring).
  Result<std::string> Observe(ObserveKind kind, uint64_t trace_id = 0);
  /// Observe(kHealth), decoded. Answered inline on the server's IO
  /// thread, so a response bounds event-loop latency too.
  Result<HealthReport> Health();

  // --- Pipelined calls ------------------------------------------------

  /// Sends without waiting; returns the request id to correlate the
  /// eventual response.
  Result<uint64_t> SendQuery(const std::string& text,
                             uint64_t result_limit = 0,
                             uint32_t parallelism = 0,
                             uint64_t trace_id = 0,
                             uint64_t parent_span = 0);
  Result<uint64_t> SendBatch(const std::vector<std::string>& texts,
                             uint64_t result_limit = 0,
                             uint32_t parallelism = 0,
                             uint64_t trace_id = 0,
                             uint64_t parent_span = 0);
  Result<uint64_t> SendProbe(const ProbeRequest& request);
  /// Pipelined OBSERVE — the router fans one export request out to
  /// every shard, then collects by id.
  Result<uint64_t> SendObserve(ObserveKind kind, uint64_t trace_id = 0);
  /// Next response frame: parked responses first, then a blocking read.
  Result<Frame> Receive();
  /// Blocking wait for the response to one previously-sent request;
  /// responses to other outstanding requests are parked for Receive().
  /// An ERROR frame becomes its carried status, an unexpected response
  /// type a protocol error — same unwrapping as the synchronous calls,
  /// exposed so scatter-gather callers can pipeline several probes and
  /// then collect them by id.
  Result<std::string> WaitForResponse(uint64_t request_id,
                                      FrameType expect);

 private:
  Status SendFrame(FrameType type, uint64_t request_id,
                   std::string_view payload);
  /// Blocking read of the response carrying `request_id`; responses to
  /// other requests are parked for later Receive() calls.
  Result<Frame> WaitFor(uint64_t request_id);
  /// Send + WaitFor + unwrap: an ERROR frame becomes its carried
  /// status, a type other than `expect` a protocol error.
  Result<std::string> RoundTrip(FrameType type, std::string_view payload,
                                FrameType expect);
  Result<Frame> ReadFrame();

  int fd_ = -1;
  uint64_t next_request_id_ = 1;
  WireLimits limits_;
  FrameDecoder decoder_;
  std::deque<Frame> parked_;
  HelloOk server_info_;
};

/// Parses "host:port" (or a bare "port", host defaulting to
/// 127.0.0.1) — the shared syntax of every --connect= flag.
bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port);

/// Connect() with bounded backoff while the server is still binding:
/// ECONNREFUSED (and ETIMEDOUT) retries up to `attempts` times,
/// sleeping `backoff_ms` then doubling (capped at 500 ms) between
/// tries. Any other failure — bad host, handshake error — returns
/// immediately. Shared by the benches and the cluster router so
/// process-startup races need no external sleeps.
Status ConnectWithRetry(NetClient* client, const std::string& host,
                        uint16_t port, WireLimits limits = {},
                        int attempts = 50, int backoff_ms = 10);

}  // namespace net
}  // namespace gtpq

#endif  // GTPQ_NET_CLIENT_H_
