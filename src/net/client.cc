#include "net/client.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <sstream>
#include <utility>

#include "dynamic/update_io.h"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#define GTPQ_NET_CLIENT_POSIX 1
#endif

namespace gtpq {
namespace net {

bool ParseHostPort(const std::string& spec, std::string* host,
                   uint16_t* port) {
  const size_t colon = spec.rfind(':');
  const std::string host_part =
      colon == std::string::npos ? "127.0.0.1" : spec.substr(0, colon);
  const std::string port_part =
      colon == std::string::npos ? spec : spec.substr(colon + 1);
  char* end = nullptr;
  const unsigned long value = std::strtoul(port_part.c_str(), &end, 10);
  if (port_part.empty() || host_part.empty() ||
      end != port_part.c_str() + port_part.size() || value == 0 ||
      value > 65535) {
    return false;
  }
  *host = host_part;
  *port = static_cast<uint16_t>(value);
  return true;
}

#if defined(GTPQ_NET_CLIENT_POSIX)

namespace {
Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}
}  // namespace

NetClient::~NetClient() { Close(); }

void NetClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  parked_.clear();
}

Status NetClient::Connect(const std::string& host, uint16_t port,
                          WireLimits limits) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  limits_ = limits;
  decoder_ = FrameDecoder(limits);

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("need a numeric IPv4 host, got: " +
                                   host);
  }

  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Errno("socket");
  int rc = ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc < 0 && errno == EINTR) {
    // An interrupted connect keeps establishing in the background;
    // re-calling connect() yields EALREADY, not a retry. Wait for
    // writability and read the final outcome from SO_ERROR instead.
    pollfd pfd{fd_, POLLOUT, 0};
    int pr;
    do {
      pr = ::poll(&pfd, 1, /*timeout=*/-1);
    } while (pr < 0 && errno == EINTR);
    if (pr > 0) {
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) == 0 &&
          soerr == 0) {
        rc = 0;
      } else {
        errno = soerr != 0 ? soerr : errno;
      }
    }
  }
  if (rc < 0) {
    const Status st = Errno("connect " + host + ":" + std::to_string(port));
    Close();
    return st;
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  auto hello = RoundTrip(FrameType::kHello, EncodeHello(),
                         FrameType::kHelloOk);
  if (!hello.ok()) {
    Close();
    return hello.status();
  }
  const Status st = DecodeHelloOk(*hello, &server_info_);
  if (!st.ok()) Close();
  return st;
}

Status NetClient::SendFrame(FrameType type, uint64_t request_id,
                            std::string_view payload) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  if (payload.size() + kFrameOverhead > limits_.max_frame_bytes) {
    return Status::OutOfRange(
        "request payload of " + std::to_string(payload.size()) +
        " bytes exceeds the " + std::to_string(limits_.max_frame_bytes) +
        "-byte frame limit");
  }
  std::string bytes;
  EncodeFrame(type, request_id, payload, &bytes);
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<Frame> NetClient::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  while (true) {
    auto frame = decoder_.Next();
    if (!frame.ok()) return frame.status();
    if (frame->has_value()) return std::move(**frame);
    char buf[64 * 1024];
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      return Status::Internal("server closed the connection");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    decoder_.Append(buf, static_cast<size_t>(n));
  }
}

Result<Frame> NetClient::Receive() {
  if (!parked_.empty()) {
    Frame frame = std::move(parked_.front());
    parked_.pop_front();
    return frame;
  }
  return ReadFrame();
}

Result<Frame> NetClient::WaitFor(uint64_t request_id) {
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->request_id == request_id) {
      Frame frame = std::move(*it);
      parked_.erase(it);
      return frame;
    }
  }
  while (true) {
    auto frame = ReadFrame();
    if (!frame.ok()) return frame.status();
    if (frame->request_id == request_id) return frame;
    parked_.push_back(std::move(*frame));
  }
}

Result<std::string> NetClient::WaitForResponse(uint64_t request_id,
                                               FrameType expect) {
  auto frame = WaitFor(request_id);
  if (!frame.ok()) return frame.status();
  if (frame->type == FrameType::kError) {
    return DecodeError(frame->payload);
  }
  if (frame->type != expect) {
    return Status::Internal(std::string("expected ") +
                            FrameTypeName(expect) + " response, got " +
                            FrameTypeName(frame->type));
  }
  return std::move(frame->payload);
}

Result<std::string> NetClient::RoundTrip(FrameType type,
                                         std::string_view payload,
                                         FrameType expect) {
  const uint64_t id = next_request_id_++;
  GTPQ_RETURN_NOT_OK(SendFrame(type, id, payload));
  return WaitForResponse(id, expect);
}

Result<WireResult> NetClient::Query(const std::string& text,
                                    uint64_t result_limit,
                                    uint32_t parallelism,
                                    uint64_t trace_id,
                                    uint64_t parent_span) {
  QueryRequest request;
  request.result_limit = result_limit;
  request.text = text;
  request.parallelism = parallelism;
  request.trace_id = trace_id;
  request.parent_span = parent_span;
  auto payload = RoundTrip(FrameType::kQuery,
                           EncodeQueryRequest(request), FrameType::kResult);
  if (!payload.ok()) return payload.status();
  WireResult out;
  GTPQ_RETURN_NOT_OK(DecodeResult(*payload, &out));
  return out;
}

Result<WireBatchResult> NetClient::QueryBatch(
    const std::vector<std::string>& texts, uint64_t result_limit,
    uint32_t parallelism, uint64_t trace_id, uint64_t parent_span) {
  BatchRequest request;
  request.result_limit = result_limit;
  request.texts = texts;
  request.parallelism = parallelism;
  request.trace_id = trace_id;
  request.parent_span = parent_span;
  auto payload =
      RoundTrip(FrameType::kBatch, EncodeBatchRequest(request),
                FrameType::kBatchResult);
  if (!payload.ok()) return payload.status();
  WireBatchResult out;
  GTPQ_RETURN_NOT_OK(DecodeBatchResult(*payload, &out));
  return out;
}

Result<ApplyOk> NetClient::ApplyUpdates(const std::string& updates_text) {
  auto payload = RoundTrip(FrameType::kApplyUpdates, updates_text,
                           FrameType::kApplyOk);
  if (!payload.ok()) return payload.status();
  ApplyOk out;
  GTPQ_RETURN_NOT_OK(DecodeApplyOk(*payload, &out));
  return out;
}

Result<ApplyOk> NetClient::ApplyUpdates(std::span<const UpdateBatch> batches) {
  std::ostringstream text;
  GTPQ_RETURN_NOT_OK(SaveUpdateBatches(batches, &text));
  return ApplyUpdates(text.str());
}

Result<ServingStats> NetClient::Stats() {
  auto payload = RoundTrip(FrameType::kStats, std::string_view(),
                           FrameType::kStatsResult);
  if (!payload.ok()) return payload.status();
  ServingStats out;
  GTPQ_RETURN_NOT_OK(DecodeServingStats(*payload, &out));
  return out;
}

Result<ProbeResult> NetClient::Probe(const ProbeRequest& request) {
  auto payload = RoundTrip(FrameType::kProbe, EncodeProbeRequest(request),
                           FrameType::kProbeResult);
  if (!payload.ok()) return payload.status();
  ProbeResult out;
  GTPQ_RETURN_NOT_OK(DecodeProbeResult(*payload, &out));
  if (out.count != request.ids.size()) {
    return Status::Internal("probe answered " + std::to_string(out.count) +
                            " targets, asked " +
                            std::to_string(request.ids.size()));
  }
  return out;
}

Result<std::string> NetClient::Observe(ObserveKind kind,
                                       uint64_t trace_id) {
  auto payload = RoundTrip(FrameType::kObserve,
                           EncodeObserveRequest(kind, trace_id),
                           FrameType::kObserveResult);
  if (!payload.ok()) return payload.status();
  std::string out;
  GTPQ_RETURN_NOT_OK(DecodeObserveResult(*payload, &out));
  return out;
}

Result<HealthReport> NetClient::Health() {
  auto body = Observe(ObserveKind::kHealth);
  if (!body.ok()) return body.status();
  HealthReport report;
  GTPQ_RETURN_NOT_OK(DecodeHealthReport(*body, &report));
  return report;
}

Result<uint64_t> NetClient::SendQuery(const std::string& text,
                                      uint64_t result_limit,
                                      uint32_t parallelism,
                                      uint64_t trace_id,
                                      uint64_t parent_span) {
  QueryRequest request;
  request.result_limit = result_limit;
  request.text = text;
  request.parallelism = parallelism;
  request.trace_id = trace_id;
  request.parent_span = parent_span;
  const uint64_t id = next_request_id_++;
  GTPQ_RETURN_NOT_OK(
      SendFrame(FrameType::kQuery, id, EncodeQueryRequest(request)));
  return id;
}

Result<uint64_t> NetClient::SendBatch(const std::vector<std::string>& texts,
                                      uint64_t result_limit,
                                      uint32_t parallelism,
                                      uint64_t trace_id,
                                      uint64_t parent_span) {
  BatchRequest request;
  request.result_limit = result_limit;
  request.texts = texts;
  request.parallelism = parallelism;
  request.trace_id = trace_id;
  request.parent_span = parent_span;
  const uint64_t id = next_request_id_++;
  GTPQ_RETURN_NOT_OK(
      SendFrame(FrameType::kBatch, id, EncodeBatchRequest(request)));
  return id;
}

Result<uint64_t> NetClient::SendProbe(const ProbeRequest& request) {
  const uint64_t id = next_request_id_++;
  GTPQ_RETURN_NOT_OK(
      SendFrame(FrameType::kProbe, id, EncodeProbeRequest(request)));
  return id;
}

Result<uint64_t> NetClient::SendObserve(ObserveKind kind,
                                        uint64_t trace_id) {
  const uint64_t id = next_request_id_++;
  GTPQ_RETURN_NOT_OK(SendFrame(FrameType::kObserve, id,
                               EncodeObserveRequest(kind, trace_id)));
  return id;
}

Status ConnectWithRetry(NetClient* client, const std::string& host,
                        uint16_t port, WireLimits limits, int attempts,
                        int backoff_ms) {
  Status last = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      timespec ts;
      ts.tv_sec = backoff_ms / 1000;
      ts.tv_nsec = static_cast<long>(backoff_ms % 1000) * 1000000L;
      ::nanosleep(&ts, nullptr);
      if (backoff_ms < 500) backoff_ms = std::min(backoff_ms * 2, 500);
    }
    last = client->Connect(host, port, limits);
    if (last.ok()) return last;
    // Only a refused/timed-out connect means "the server is still
    // binding"; anything else (bad host, handshake failure) is final.
    const bool listening_race =
        last.message().find(std::strerror(ECONNREFUSED)) !=
            std::string::npos ||
        last.message().find(std::strerror(ETIMEDOUT)) != std::string::npos;
    if (!listening_race) return last;
  }
  return last;
}

#else  // !GTPQ_NET_CLIENT_POSIX

NetClient::~NetClient() = default;
void NetClient::Close() {}
Status NetClient::Connect(const std::string&, uint16_t, WireLimits) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Status NetClient::SendFrame(FrameType, uint64_t, std::string_view) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<Frame> NetClient::ReadFrame() {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<Frame> NetClient::Receive() { return ReadFrame(); }
Result<Frame> NetClient::WaitFor(uint64_t) { return ReadFrame(); }
Result<std::string> NetClient::WaitForResponse(uint64_t, FrameType) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<std::string> NetClient::RoundTrip(FrameType, std::string_view,
                                         FrameType) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<WireResult> NetClient::Query(const std::string&, uint64_t, uint32_t,
                                    uint64_t, uint64_t) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<WireBatchResult> NetClient::QueryBatch(
    const std::vector<std::string>&, uint64_t, uint32_t, uint64_t,
    uint64_t) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<ApplyOk> NetClient::ApplyUpdates(const std::string&) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<ApplyOk> NetClient::ApplyUpdates(std::span<const UpdateBatch>) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<ServingStats> NetClient::Stats() {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<std::string> NetClient::Observe(ObserveKind, uint64_t) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<HealthReport> NetClient::Health() {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<uint64_t> NetClient::SendQuery(const std::string&, uint64_t,
                                      uint32_t, uint64_t, uint64_t) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<uint64_t> NetClient::SendBatch(const std::vector<std::string>&,
                                      uint64_t, uint32_t, uint64_t,
                                      uint64_t) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<ProbeResult> NetClient::Probe(const ProbeRequest&) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<uint64_t> NetClient::SendProbe(const ProbeRequest&) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Result<uint64_t> NetClient::SendObserve(ObserveKind, uint64_t) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}
Status ConnectWithRetry(NetClient*, const std::string&, uint16_t,
                        WireLimits, int, int) {
  return Status::Unimplemented("NetClient requires POSIX sockets");
}

#endif  // GTPQ_NET_CLIENT_POSIX

}  // namespace net
}  // namespace gtpq
