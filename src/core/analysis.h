#ifndef GTPQ_CORE_ANALYSIS_H_
#define GTPQ_CORE_ANALYSIS_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "logic/sat.h"
#include "query/gtpq.h"

namespace gtpq {

/// Static analysis artifacts of Section 3: independently-constraint
/// flags, transitive predicates ftr, complete predicates fcs, the
/// similarity (⊳) and subsumption (⊴) relations. Computed eagerly at
/// construction; query sizes are small in practice (the paper's own
/// argument for the SAT-based procedures).
class QueryAnalysis {
 public:
  explicit QueryAnalysis(const Gtpq& q);

  const Gtpq& query() const { return q_; }

  /// Whether u's variable can independently affect its ancestors'
  /// structural predicates (Section 3.1).
  bool independently_constraint(QNodeId u) const { return ic_[u] != 0; }

  /// fext(u): extended structural predicate.
  const logic::FormulaRef& fext(QNodeId u) const { return fext_[u]; }
  /// ftr(u): transitive structural predicate.
  const logic::FormulaRef& ftr(QNodeId u) const { return ftr_[u]; }
  /// fcs(u): complete structural predicate.
  const logic::FormulaRef& fcs(QNodeId u) const { return fcs_[u]; }

  /// u1 ⊳ u2 — "u2 is similar to u1": any (suitably placed) match of u2
  /// also downward-matches u1. On success *correspondence receives the
  /// descendant pairing used (including u1 -> u2) when non-null.
  bool Similar(QNodeId u1, QNodeId u2,
               std::unordered_map<QNodeId, QNodeId>* correspondence =
                   nullptr) const;

  /// u1 ⊴ u2 — u1 is subsumed by u2 (similarity + the LCA placement
  /// conditions of Section 3.1).
  bool Subsumed(QNodeId u1, QNodeId u2) const;

 private:
  const Gtpq& q_;
  std::vector<char> ic_;
  std::vector<logic::FormulaRef> fext_, ftr_, fcs_;
};

/// Theorem 1 / 2: Q is satisfiable iff fa(root) and fcs(root) are both
/// satisfiable. Linear for union-conjunctive queries, NP-complete in
/// general (decided via the DPLL solver here).
bool IsSatisfiable(const Gtpq& q);

/// Theorem 3: Q1 ⊑ Q2 iff a homomorphism from Q2 to Q1 exists. The
/// search enumerates images for Q2's independently-constraint nodes
/// with backtracking and discharges condition (4) via SAT.
bool IsContainedIn(const Gtpq& q1, const Gtpq& q2);

/// Q1 ≡ Q2: containment in both directions.
bool AreEquivalent(const Gtpq& q1, const Gtpq& q2);

/// Algorithm 1 (minGTPQ): computes a minimum equivalent query. Runs the
/// four reduction stages to a fixpoint:
///   1. prune unsatisfiable-attribute subtrees  (vars -> 0)
///   2. prune non-independently-constraint subtrees (vars -> 0)
///   3. prune subtrees with unsatisfiable fcs  (vars -> 0)
///   4. prune subsumed subtrees under always-true / always-false
///      variables (vars -> 1 / 0), remapping output nodes onto
///      isomorphic counterparts when needed.
/// If the query is unsatisfiable, a canonical minimal unsatisfiable
/// query with the same output arity is returned.
Gtpq Minimize(const Gtpq& q);

}  // namespace gtpq

#endif  // GTPQ_CORE_ANALYSIS_H_
