#include "core/eval_types.h"

#include <algorithm>

namespace gtpq {

void QueryResult::Normalize() {
  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
}

std::string QueryResult::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < tuples.size(); ++i) {
    if (i > 0) out += ", ";
    out += "(";
    for (size_t j = 0; j < tuples[i].size(); ++j) {
      if (j > 0) out += ",";
      out += "v" + std::to_string(tuples[i][j]);
    }
    out += ")";
  }
  out += "]";
  return out;
}

}  // namespace gtpq
