#ifndef GTPQ_CORE_ENUMERATE_H_
#define GTPQ_CORE_ENUMERATE_H_

#include "core/eval_types.h"
#include "core/matching_graph.h"
#include "core/parallel_eval.h"
#include "query/gtpq.h"

namespace gtpq {

/// Derives the final answer from a reduced maximal matching graph
/// (Procedure 5, CollectResults, plus the shrinking of Section 4.3):
///
///  * ancestors of the lowest common ancestor of the output nodes are
///    discarded (pure filters at this point);
///  * singleton-candidate nodes are detached and their matches appended
///    to every tuple as constants;
///  * non-output leaves are discarded;
///  * what remains is a forest; each subtree is enumerated bottom-up
///    with per-(query node, candidate) memoization and the final answer
///    is the Cartesian product across subtrees.
///
/// Results are deduplicated (duplicates can arise when non-output nodes
/// remain in the shrunk subtree, as the paper notes).
///
/// The per-(query node, candidate) memo is filled bottom-up, one forest
/// level at a time; with ctx->lanes > 1 the entries of a level are
/// work-stealing units (subtree sizes are highly skewed). Every entry
/// is a pure function of (node, candidate, result_limit) written to its
/// own index-addressed slot, and the final cross-subtree merge is
/// single-threaded, so output order and result_limit truncation are
/// byte-identical to the serial run.
QueryResult EnumerateResults(const Gtpq& q, const MatchingGraph& mg,
                             const GteaOptions& options,
                             ParallelEvalContext* ctx, EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_CORE_ENUMERATE_H_
