#ifndef GTPQ_CORE_PRUNE_H_
#define GTPQ_CORE_PRUNE_H_

#include <vector>

#include "core/eval_types.h"
#include "core/parallel_eval.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"
#include "reachability/reachability_index.h"

namespace gtpq {

/// First pruning round (Procedure 6, PruneDownward): removes candidates
/// violating downward structural constraints. Bottom-up over the query;
/// per node, the pruned candidate sets of all AD children are
/// summarized once (a predecessor contour on contour-capable backends)
/// and every candidate is probed against all of them in one batched
/// oracle call, which lets chain-structured backends share index walks
/// across children.
///
/// Edge handling (Section 4.4, implemented strategy + correctness
/// refinement documented in DESIGN.md):
///  * AD children: oracle set-reachability (exact);
///  * PC children into predicate nodes: exact parent-set membership —
///    these never reach the matching graph, so approximation would
///    corrupt negation/disjunction semantics;
///  * PC children into backbone nodes: treated as AD here and repaired
///    on the maximal matching graph.
///
/// With ctx->lanes > 1 each node's candidate set is partitioned into
/// contiguous chunks probed by parallel lanes against the shared
/// summaries; per-lane keep-lists are concatenated in lane order, so
/// the surviving set (and its order) is byte-identical to serial.
void PruneDownward(const DataGraph& g, const ReachabilityOracle& idx,
                   const Gtpq& q, std::vector<std::vector<NodeId>>* mat,
                   ParallelEvalContext* ctx, EngineStats* stats);

/// Prime subtree (Section 4.2.3 + 4.4): the minimal subtree containing
/// the query root, every output node, and every backbone node with a PC
/// incoming edge (those were AD-approximated during downward pruning and
/// must be repaired on the matching graph). Returns one flag per query
/// node; flagged nodes are always backbone.
std::vector<char> ComputePrimeSubtree(const Gtpq& q);

/// Second pruning round (Procedure 7, PruneUpward): top-down over the
/// prime subtree, removes candidates not reachable from the (pruned)
/// candidates of their prime parent. The parent set is summarized once
/// (a successor contour on contour-capable backends) and the child
/// candidates are refined in one batched oracle call. PC edges use
/// exact child sets. Returns false when some prime node lost all
/// candidates (empty answer).
///
/// Parallel lanes (ctx->lanes > 1) partition the refined candidate set
/// (AD edges) or the parent set being expanded (PC edges). The
/// skip_singleton_upward decision is taken on the full candidate set
/// before partitioning — a size-1 lane chunk is never skipped.
bool PruneUpward(const DataGraph& g, const ReachabilityOracle& idx,
                 const Gtpq& q, const std::vector<char>& in_prime,
                 std::vector<std::vector<NodeId>>* mat,
                 const GteaOptions& options, ParallelEvalContext* ctx,
                 EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_CORE_PRUNE_H_
