#include "core/enumerate.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace gtpq {

namespace {

// Partial tuples span the full output width; kInvalidNode marks unset
// slots. Distinct subtrees fill disjoint slot sets, so merging is a
// slot-wise overlay.
using Partial = std::vector<NodeId>;

void SortDedup(std::vector<Partial>* tuples) {
  std::sort(tuples->begin(), tuples->end());
  tuples->erase(std::unique(tuples->begin(), tuples->end()),
                tuples->end());
}

class Enumerator {
 public:
  Enumerator(const Gtpq& q, const MatchingGraph& mg,
             const GteaOptions& options)
      : q_(q), mg_(mg), options_(options) {
    outputs_ = q.outputs();
    std::sort(outputs_.begin(), outputs_.end());
    slot_of_.assign(q.NumNodes(), SIZE_MAX);
    for (size_t i = 0; i < outputs_.size(); ++i) slot_of_[outputs_[i]] = i;
  }

  QueryResult Run() {
    QueryResult result;
    result.output_nodes = outputs_;
    ComputeForest();

    // Every included root contributes a tuple set; the answer is their
    // slot-wise Cartesian product, overlaid with singleton constants.
    std::vector<Partial> acc{Partial(outputs_.size(), kInvalidNode)};
    for (const auto& [u, v] : constants_) {
      if (slot_of_[u] != SIZE_MAX) {
        for (auto& t : acc) t[slot_of_[u]] = v;
      }
    }
    for (QNodeId r : roots_) {
      std::vector<Partial> sub;
      for (uint32_t i = 0; i < mg_.Candidates(r).size(); ++i) {
        const auto& tuples = Collect(r, i);
        sub.insert(sub.end(), tuples.begin(), tuples.end());
      }
      SortDedup(&sub);
      std::vector<Partial> next;
      next.reserve(acc.size() * sub.size());
      for (const auto& a : acc) {
        for (const auto& s : sub) {
          Partial merged = a;
          for (size_t k = 0; k < merged.size(); ++k) {
            if (s[k] != kInvalidNode) merged[k] = s[k];
          }
          next.push_back(std::move(merged));
          if (options_.result_limit != 0 &&
              next.size() >= options_.result_limit) {
            break;
          }
        }
        if (options_.result_limit != 0 &&
            next.size() >= options_.result_limit) {
          break;
        }
      }
      acc = std::move(next);
      if (acc.empty()) break;  // no matches from this subtree
    }
    result.tuples = std::move(acc);
    result.Normalize();
    return result;
  }

 private:
  // Decides which prime nodes take part in enumeration (the shrunk
  // prime subtree) and which become constants.
  void ComputeForest() {
    const size_t n = q_.NumNodes();
    included_.assign(n, 0);
    for (QNodeId u = 0; u < n; ++u) included_[u] = mg_.InTree(u);

    // LCA of all outputs: walk each output's ancestor path; the deepest
    // common node. Outputs are non-empty by query validation.
    QNodeId lca = outputs_[0];
    auto ancestors_of = [&](QNodeId u) {
      std::vector<QNodeId> path;
      for (QNodeId x = u; x != kInvalidQNode; x = q_.node(x).parent) {
        path.push_back(x);
      }
      std::reverse(path.begin(), path.end());  // root first
      return path;
    };
    std::vector<QNodeId> common = ancestors_of(outputs_[0]);
    for (size_t i = 1; i < outputs_.size(); ++i) {
      auto path = ancestors_of(outputs_[i]);
      size_t len = std::min(common.size(), path.size());
      size_t k = 0;
      while (k < len && common[k] == path[k]) ++k;
      common.resize(k);
    }
    GTPQ_CHECK(!common.empty());
    lca = common.back();
    // Drop proper ancestors of the LCA.
    for (QNodeId x = q_.node(lca).parent; x != kInvalidQNode;
         x = q_.node(x).parent) {
      included_[x] = 0;
    }

    // Iteratively detach singleton-candidate nodes (recording output
    // constants) and drop non-output leaves.
    bool changed = true;
    while (changed) {
      changed = false;
      for (QNodeId u = 0; u < n; ++u) {
        if (!included_[u]) continue;
        if (mg_.Candidates(u).size() == 1) {
          if (q_.IsOutput(u)) {
            constants_.emplace_back(u, mg_.Candidates(u)[0]);
          }
          included_[u] = 0;
          changed = true;
          continue;
        }
        if (!q_.IsOutput(u)) {
          bool has_included_child = false;
          for (QNodeId c : q_.node(u).children) {
            if (included_[c]) {
              has_included_child = true;
              break;
            }
          }
          if (!has_included_child) {
            included_[u] = 0;
            changed = true;
          }
        }
      }
    }
    roots_.clear();
    for (QNodeId u = 0; u < n; ++u) {
      if (!included_[u]) continue;
      QNodeId p = q_.node(u).parent;
      if (p == kInvalidQNode || !included_[p]) roots_.push_back(u);
    }
  }

  // Memoized CollectResults: tuples over the outputs of u's included
  // subtree for candidate #i of u.
  const std::vector<Partial>& Collect(QNodeId u, uint32_t cand_index) {
    auto key = (static_cast<uint64_t>(u) << 32) | cand_index;
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;

    std::vector<Partial> acc{Partial(outputs_.size(), kInvalidNode)};
    if (q_.IsOutput(u)) {
      acc[0][slot_of_[u]] = mg_.Candidates(u)[cand_index];
    }
    const auto& kids = mg_.PrimeChildren(u);
    for (uint32_t slot = 0; slot < kids.size(); ++slot) {
      if (!included_[kids[slot]]) continue;
      // Branch results: union over pointed-to child candidates.
      std::vector<Partial> branch;
      for (uint32_t wi : mg_.Branch(u, cand_index, slot)) {
        const auto& sub = Collect(kids[slot], wi);
        branch.insert(branch.end(), sub.begin(), sub.end());
      }
      SortDedup(&branch);
      std::vector<Partial> next;
      next.reserve(acc.size() * branch.size());
      for (const auto& a : acc) {
        for (const auto& b : branch) {
          Partial merged = a;
          for (size_t k = 0; k < merged.size(); ++k) {
            if (b[k] != kInvalidNode) merged[k] = b[k];
          }
          next.push_back(std::move(merged));
          if (options_.result_limit != 0 &&
              next.size() >= options_.result_limit) {
            break;
          }
        }
        if (options_.result_limit != 0 &&
            next.size() >= options_.result_limit) {
          break;
        }
      }
      acc = std::move(next);
      if (acc.empty()) break;
    }
    return memo_.emplace(key, std::move(acc)).first->second;
  }

  const Gtpq& q_;
  const MatchingGraph& mg_;
  const GteaOptions& options_;
  std::vector<QNodeId> outputs_;
  std::vector<size_t> slot_of_;
  std::vector<char> included_;
  std::vector<QNodeId> roots_;
  std::vector<std::pair<QNodeId, NodeId>> constants_;
  std::unordered_map<uint64_t, std::vector<Partial>> memo_;
};

}  // namespace

QueryResult EnumerateResults(const Gtpq& q, const MatchingGraph& mg,
                             const GteaOptions& options,
                             EngineStats* stats) {
  (void)stats;
  Enumerator e(q, mg, options);
  return e.Run();
}

}  // namespace gtpq
