#include "core/enumerate.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "runtime/parallel.h"

namespace gtpq {

namespace {

// Partial tuples span the full output width; kInvalidNode marks unset
// slots. Distinct subtrees fill disjoint slot sets, so merging is a
// slot-wise overlay.
using Partial = std::vector<NodeId>;

void SortDedup(std::vector<Partial>* tuples) {
  std::sort(tuples->begin(), tuples->end());
  tuples->erase(std::unique(tuples->begin(), tuples->end()),
                tuples->end());
}

class Enumerator {
 public:
  Enumerator(const Gtpq& q, const MatchingGraph& mg,
             const GteaOptions& options, ParallelEvalContext* ctx)
      : q_(q), mg_(mg), options_(options), ctx_(ctx) {
    outputs_ = q.outputs();
    std::sort(outputs_.begin(), outputs_.end());
    slot_of_.assign(q.NumNodes(), SIZE_MAX);
    for (size_t i = 0; i < outputs_.size(); ++i) slot_of_[outputs_[i]] = i;
  }

  QueryResult Run() {
    QueryResult result;
    result.output_nodes = outputs_;
    ComputeForest();
    FillMemo();

    // Every included root contributes a tuple set; the answer is their
    // slot-wise Cartesian product, overlaid with singleton constants.
    std::vector<Partial> acc{Partial(outputs_.size(), kInvalidNode)};
    for (const auto& [u, v] : constants_) {
      if (slot_of_[u] != SIZE_MAX) {
        for (auto& t : acc) t[slot_of_[u]] = v;
      }
    }
    for (QNodeId r : roots_) {
      std::vector<Partial> sub;
      for (uint32_t i = 0; i < mg_.Candidates(r).size(); ++i) {
        const auto& tuples = memo_[r][i];
        sub.insert(sub.end(), tuples.begin(), tuples.end());
      }
      SortDedup(&sub);
      std::vector<Partial> next;
      next.reserve(acc.size() * sub.size());
      for (const auto& a : acc) {
        for (const auto& s : sub) {
          Partial merged = a;
          for (size_t k = 0; k < merged.size(); ++k) {
            if (s[k] != kInvalidNode) merged[k] = s[k];
          }
          next.push_back(std::move(merged));
          if (options_.result_limit != 0 &&
              next.size() >= options_.result_limit) {
            break;
          }
        }
        if (options_.result_limit != 0 &&
            next.size() >= options_.result_limit) {
          break;
        }
      }
      acc = std::move(next);
      if (acc.empty()) break;  // no matches from this subtree
    }
    result.tuples = std::move(acc);
    result.Normalize();
    return result;
  }

 private:
  // Decides which prime nodes take part in enumeration (the shrunk
  // prime subtree) and which become constants.
  void ComputeForest() {
    const size_t n = q_.NumNodes();
    included_.assign(n, 0);
    for (QNodeId u = 0; u < n; ++u) included_[u] = mg_.InTree(u);

    // LCA of all outputs: walk each output's ancestor path; the deepest
    // common node. Outputs are non-empty by query validation.
    QNodeId lca = outputs_[0];
    auto ancestors_of = [&](QNodeId u) {
      std::vector<QNodeId> path;
      for (QNodeId x = u; x != kInvalidQNode; x = q_.node(x).parent) {
        path.push_back(x);
      }
      std::reverse(path.begin(), path.end());  // root first
      return path;
    };
    std::vector<QNodeId> common = ancestors_of(outputs_[0]);
    for (size_t i = 1; i < outputs_.size(); ++i) {
      auto path = ancestors_of(outputs_[i]);
      size_t len = std::min(common.size(), path.size());
      size_t k = 0;
      while (k < len && common[k] == path[k]) ++k;
      common.resize(k);
    }
    GTPQ_CHECK(!common.empty());
    lca = common.back();
    // Drop proper ancestors of the LCA.
    for (QNodeId x = q_.node(lca).parent; x != kInvalidQNode;
         x = q_.node(x).parent) {
      included_[x] = 0;
    }

    // Iteratively detach singleton-candidate nodes (recording output
    // constants) and drop non-output leaves.
    bool changed = true;
    while (changed) {
      changed = false;
      for (QNodeId u = 0; u < n; ++u) {
        if (!included_[u]) continue;
        if (mg_.Candidates(u).size() == 1) {
          if (q_.IsOutput(u)) {
            constants_.emplace_back(u, mg_.Candidates(u)[0]);
          }
          included_[u] = 0;
          changed = true;
          continue;
        }
        if (!q_.IsOutput(u)) {
          bool has_included_child = false;
          for (QNodeId c : q_.node(u).children) {
            if (included_[c]) {
              has_included_child = true;
              break;
            }
          }
          if (!has_included_child) {
            included_[u] = 0;
            changed = true;
          }
        }
      }
    }
    roots_.clear();
    for (QNodeId u = 0; u < n; ++u) {
      if (!included_[u]) continue;
      QNodeId p = q_.node(u).parent;
      if (p == kInvalidQNode || !included_[p]) roots_.push_back(u);
    }
  }

  // Fills the CollectResults memo bottom-up, one forest level at a
  // time. The reduced matching graph guarantees every candidate of
  // every included node is referenced by some live parent branch, so
  // eager evaluation computes exactly the entries the old lazy
  // recursion would have — each a pure function of (node, candidate).
  // Within a level, entries are work-stealing units (subtree sizes are
  // skewed); each writes only its own memo_[u][i] slot and reads
  // deeper-level slots published by the previous level's barrier.
  void FillMemo() {
    const size_t n = q_.NumNodes();
    memo_.assign(n, {});
    std::vector<size_t> depth(n, 0);
    std::vector<std::vector<QNodeId>> levels;
    for (QNodeId u : q_.TopDownOrder()) {
      if (!included_[u]) continue;
      const QNodeId p = q_.node(u).parent;
      depth[u] = (p != kInvalidQNode && included_[p]) ? depth[p] + 1 : 0;
      if (depth[u] >= levels.size()) levels.resize(depth[u] + 1);
      levels[depth[u]].push_back(u);
    }
    for (size_t d = levels.size(); d-- > 0;) {
      std::vector<std::pair<QNodeId, uint32_t>> entries;
      for (QNodeId u : levels[d]) {
        memo_[u].resize(mg_.Candidates(u).size());
        for (uint32_t i = 0; i < mg_.Candidates(u).size(); ++i) {
          entries.emplace_back(u, i);
        }
      }
      ParallelForWorkStealing(
          entries.size(), ctx_->lanes, [&](size_t e, size_t /*lane*/) {
            ComputeEntry(entries[e].first, entries[e].second);
          });
    }
  }

  // CollectResults for one memo entry: tuples over the outputs of u's
  // included subtree for candidate #i of u. Child entries are already
  // complete (deeper forest level).
  void ComputeEntry(QNodeId u, uint32_t cand_index) {
    std::vector<Partial> acc{Partial(outputs_.size(), kInvalidNode)};
    if (q_.IsOutput(u)) {
      acc[0][slot_of_[u]] = mg_.Candidates(u)[cand_index];
    }
    const auto& kids = mg_.PrimeChildren(u);
    for (uint32_t slot = 0; slot < kids.size(); ++slot) {
      if (!included_[kids[slot]]) continue;
      // Branch results: union over pointed-to child candidates.
      std::vector<Partial> branch;
      for (uint32_t wi : mg_.Branch(u, cand_index, slot)) {
        const auto& sub = memo_[kids[slot]][wi];
        branch.insert(branch.end(), sub.begin(), sub.end());
      }
      SortDedup(&branch);
      std::vector<Partial> next;
      next.reserve(acc.size() * branch.size());
      for (const auto& a : acc) {
        for (const auto& b : branch) {
          Partial merged = a;
          for (size_t k = 0; k < merged.size(); ++k) {
            if (b[k] != kInvalidNode) merged[k] = b[k];
          }
          next.push_back(std::move(merged));
          if (options_.result_limit != 0 &&
              next.size() >= options_.result_limit) {
            break;
          }
        }
        if (options_.result_limit != 0 &&
            next.size() >= options_.result_limit) {
          break;
        }
      }
      acc = std::move(next);
      if (acc.empty()) break;
    }
    memo_[u][cand_index] = std::move(acc);
  }

  const Gtpq& q_;
  const MatchingGraph& mg_;
  const GteaOptions& options_;
  ParallelEvalContext* ctx_;
  std::vector<QNodeId> outputs_;
  std::vector<size_t> slot_of_;
  std::vector<char> included_;
  std::vector<QNodeId> roots_;
  std::vector<std::pair<QNodeId, NodeId>> constants_;
  // memo_[u][i]: result tuples of candidate #i of included node u.
  std::vector<std::vector<std::vector<Partial>>> memo_;
};

}  // namespace

QueryResult EnumerateResults(const Gtpq& q, const MatchingGraph& mg,
                             const GteaOptions& options,
                             ParallelEvalContext* ctx, EngineStats* stats) {
  (void)stats;
  Enumerator e(q, mg, options, ctx);
  return e.Run();
}

}  // namespace gtpq
