#include "core/analysis.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"

namespace gtpq {

using logic::Formula;
using logic::FormulaRef;

QueryAnalysis::QueryAnalysis(const Gtpq& q) : q_(q) {
  const size_t n = q.NumNodes();
  fext_.resize(n);
  ftr_.resize(n);
  fcs_.resize(n);
  ic_.assign(n, 0);

  for (QNodeId u = 0; u < n; ++u) fext_[u] = q.ExtendedPredicate(u);

  // Independently-constraint flags, top-down: the root qualifies when
  // its (extended) structural predicate is satisfiable; a child u of w
  // qualifies when flipping p_u can change fext(w) in some satisfiable
  // context, i.e. (fext(w)[p_u/1] xor fext(w)[p_u/0]) & fext(u) is
  // satisfiable — and all ancestors qualify.
  for (QNodeId u : q.TopDownOrder()) {
    if (u == q.root()) {
      ic_[u] = logic::IsSatisfiable(fext_[u]) ? 1 : 0;
      continue;
    }
    const QNodeId w = q.node(u).parent;
    if (!ic_[w]) continue;
    const int var = static_cast<int>(u);
    FormulaRef flips = Formula::Xor(SubstituteConst(fext_[w], var, true),
                                    SubstituteConst(fext_[w], var, false));
    ic_[u] =
        logic::IsSatisfiable(Formula::And(flips, fext_[u])) ? 1 : 0;
  }

  // Transitive predicates, bottom-up (Section 3.1): expand each
  // independently-constraint child's variable into p_c & ftr(c).
  for (QNodeId u : q.BottomUpOrder()) {
    if (q.IsLeaf(u) || !ic_[u]) {
      ftr_[u] = fext_[u];
      continue;
    }
    std::unordered_map<int, FormulaRef> subst;
    for (QNodeId c : q.node(u).children) {
      if (ic_[c]) {
        subst.emplace(static_cast<int>(c),
                      Formula::And(Formula::Var(static_cast<int>(c)),
                                   ftr_[c]));
      }
    }
    ftr_[u] = Substitute(fext_[u], subst);
  }

  // Complete predicates: pin unsatisfiable-attribute descendants to 0,
  // then conjoin the subsumption clauses (p_b -> p_a & fext(a)) for
  // descendant pairs a ⊴ b living in distinct child subtrees of u.
  for (QNodeId u = 0; u < n; ++u) {
    FormulaRef f = ftr_[u];
    auto subtree = q.Subtree(u);
    for (QNodeId d : subtree) {
      if (d != u && !q.node(d).attr_pred.IsSatisfiable()) {
        f = SubstituteConst(f, static_cast<int>(d), false);
      }
    }
    // Branch id of each descendant: which child of u roots it.
    std::unordered_map<QNodeId, QNodeId> branch;
    for (QNodeId c : q.node(u).children) {
      for (QNodeId d : q.Subtree(c)) branch.emplace(d, c);
    }
    for (QNodeId a : subtree) {
      if (a == u) continue;
      for (QNodeId b : subtree) {
        if (b == u || a == b || branch[a] == branch[b]) continue;
        if (Subsumed(a, b)) {
          f = Formula::And(
              f, Formula::Or(
                     Formula::Not(Formula::Var(static_cast<int>(b))),
                     Formula::And(Formula::Var(static_cast<int>(a)),
                                  fext_[a])));
        }
      }
    }
    fcs_[u] = logic::Simplify(f);
  }
}

bool QueryAnalysis::Similar(
    QNodeId u1, QNodeId u2,
    std::unordered_map<QNodeId, QNodeId>* correspondence) const {
  if (u1 == u2) {
    if (correspondence) (*correspondence)[u1] = u2;
    return true;
  }
  // (1) u2 |- u1: u2's attribute predicate entails u1's.
  if (!q_.node(u1).attr_pred.EntailedBy(q_.node(u2).attr_pred)) {
    return false;
  }
  std::unordered_map<QNodeId, QNodeId> local;
  local[u1] = u2;
  // (2) every independently-constraint PC child of u1 matches a PC
  // child of u2; every such AD child matches some descendant of u2.
  for (QNodeId c1 : q_.node(u1).children) {
    if (!ic_[c1]) continue;
    std::vector<QNodeId> candidates;
    if (q_.node(c1).incoming == EdgeType::kChild) {
      for (QNodeId c2 : q_.node(u2).children) {
        if (q_.node(c2).incoming == EdgeType::kChild) {
          candidates.push_back(c2);
        }
      }
    } else {
      auto sub = q_.Subtree(u2);
      candidates.assign(sub.begin() + 1, sub.end());  // strict descendants
    }
    bool found = false;
    for (QNodeId c2 : candidates) {
      std::unordered_map<QNodeId, QNodeId> sub;
      if (Similar(c1, c2, &sub)) {
        local.insert(sub.begin(), sub.end());
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // (3) ftr(u2) -> ftr(u1)[u1 |-> u2] must be a tautology, renaming
  // variables along the descendant correspondence.
  std::unordered_map<int, int> renaming;
  for (const auto& [a, b] : local) {
    renaming[static_cast<int>(a)] = static_cast<int>(b);
  }
  if (!logic::IsTautology(Formula::Implies(
          ftr_[u2], RenameVars(ftr_[u1], renaming)))) {
    return false;
  }
  if (correspondence) {
    correspondence->insert(local.begin(), local.end());
  }
  return true;
}

bool QueryAnalysis::Subsumed(QNodeId u1, QNodeId u2) const {
  if (u1 == u2 || u1 == q_.root()) return false;
  // LCA via root paths.
  auto path_of = [this](QNodeId u) {
    std::vector<QNodeId> p;
    for (QNodeId x = u; x != kInvalidQNode; x = q_.node(x).parent) {
      p.push_back(x);
    }
    std::reverse(p.begin(), p.end());
    return p;
  };
  auto p1 = path_of(u1), p2 = path_of(u2);
  size_t k = 0;
  while (k < p1.size() && k < p2.size() && p1[k] == p2[k]) ++k;
  GTPQ_CHECK(k > 0);
  const QNodeId lca = p1[k - 1];
  if (q_.node(u1).parent != lca) return false;
  if (q_.node(u1).incoming == EdgeType::kChild) {
    if (!(q_.node(u2).parent == lca &&
          q_.node(u2).incoming == EdgeType::kChild)) {
      return false;
    }
  } else {
    if (u2 == lca || !q_.IsAncestor(lca, u2)) return false;
  }
  return Similar(u1, u2);
}

bool IsSatisfiable(const Gtpq& q) {
  if (!q.node(q.root()).attr_pred.IsSatisfiable()) return false;
  QueryAnalysis analysis(q);
  return logic::IsSatisfiable(analysis.fcs(q.root()));
}

namespace {

// Backtracking homomorphism search from `from` into `to` (Theorem 3).
class HomomorphismSearch {
 public:
  HomomorphismSearch(const Gtpq& from, const QueryAnalysis& from_analysis,
                     const Gtpq& to, const QueryAnalysis& to_analysis)
      : from_(from), fa_(from_analysis), to_(to), ta_(to_analysis) {
    for (QNodeId u : from_.TopDownOrder()) {
      if (fa_.independently_constraint(u)) order_.push_back(u);
    }
    lambda_.assign(from_.NumNodes(), kInvalidQNode);
  }

  bool Exists() {
    if (from_.outputs().size() != to_.outputs().size()) return false;
    return Recurse(0);
  }

 private:
  bool Recurse(size_t k) {
    if (k == order_.size()) return CheckFinal();
    const QNodeId u = order_[k];
    std::vector<QNodeId> candidates;
    if (u == from_.root()) {
      candidates.push_back(to_.root());
    } else {
      const QNodeId parent_img = lambda_[from_.node(u).parent];
      if (parent_img == kInvalidQNode) return false;
      if (from_.node(u).incoming == EdgeType::kChild) {
        for (QNodeId c : to_.node(parent_img).children) {
          if (to_.node(c).incoming == EdgeType::kChild) {
            candidates.push_back(c);
          }
        }
      } else {
        auto sub = to_.Subtree(parent_img);
        candidates.assign(sub.begin() + 1, sub.end());
      }
    }
    for (QNodeId img : candidates) {
      // Attribute entailment: lambda(u) |- u.
      if (!from_.node(u).attr_pred.EntailedBy(to_.node(img).attr_pred)) {
        continue;
      }
      // Output bijectivity: outputs map to distinct outputs.
      if (from_.IsOutput(u)) {
        if (!to_.IsOutput(img)) continue;
        bool taken = false;
        for (QNodeId o : from_.outputs()) {
          if (o != u && lambda_[o] == img) taken = true;
        }
        if (taken) continue;
      }
      lambda_[u] = img;
      if (Recurse(k + 1)) return true;
      lambda_[u] = kInvalidQNode;
    }
    return false;
  }

  bool CheckFinal() {
    // Coverage: every output of `to` is an image of an output of `from`.
    for (QNodeId o2 : to_.outputs()) {
      bool covered = false;
      for (QNodeId o1 : from_.outputs()) {
        if (lambda_[o1] == o2) covered = true;
      }
      if (!covered) return false;
    }
    // Condition (4): fcs(root of `to`) -> fcs(root of `from`) renamed
    // by lambda; unmapped variables become fresh.
    std::unordered_map<int, int> renaming;
    const int fresh_base =
        static_cast<int>(to_.NumNodes() + from_.NumNodes());
    for (QNodeId u = 0; u < from_.NumNodes(); ++u) {
      renaming[static_cast<int>(u)] =
          lambda_[u] != kInvalidQNode
              ? static_cast<int>(lambda_[u])
              : fresh_base + static_cast<int>(u);
    }
    return logic::IsTautology(Formula::Implies(
        ta_.fcs(to_.root()),
        RenameVars(fa_.fcs(from_.root()), renaming)));
  }

  const Gtpq& from_;
  const QueryAnalysis& fa_;
  const Gtpq& to_;
  const QueryAnalysis& ta_;
  std::vector<QNodeId> order_;
  std::vector<QNodeId> lambda_;
};

}  // namespace

bool IsContainedIn(const Gtpq& q1, const Gtpq& q2) {
  if (!IsSatisfiable(q1)) {
    return true;  // the empty query is contained in anything
  }
  if (!IsSatisfiable(q2)) return false;
  QueryAnalysis a1(q1), a2(q2);
  // Q1 ⊑ Q2 iff a homomorphism from Q2 to Q1 exists.
  HomomorphismSearch search(q2, a2, q1, a1);
  return search.Exists();
}

bool AreEquivalent(const Gtpq& q1, const Gtpq& q2) {
  return IsContainedIn(q1, q2) && IsContainedIn(q2, q1);
}

namespace {

// Mutable minimization scratch: node removal flags + rewritten fs.
struct MinState {
  std::vector<char> removed;
  std::vector<FormulaRef> fs;
  std::vector<char> output;
};

// Rebuilds a validated Gtpq from the scratch state.
Gtpq Rebuild(const Gtpq& q, const MinState& st) {
  QueryBuilder b(q.attr_names());
  std::vector<QNodeId> remap(q.NumNodes(), kInvalidQNode);
  for (QNodeId u : q.TopDownOrder()) {
    if (st.removed[u]) continue;
    const QueryNode& n = q.node(u);
    if (u == q.root()) {
      remap[u] = b.AddRoot(n.name, n.attr_pred);
    } else {
      QNodeId p = remap[n.parent];
      GTPQ_CHECK(p != kInvalidQNode) << "kept node under removed parent";
      remap[u] = n.role == NodeRole::kBackbone
                     ? b.AddBackbone(p, n.incoming, n.name, n.attr_pred)
                     : b.AddPredicate(p, n.incoming, n.name, n.attr_pred);
    }
  }
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    if (st.removed[u]) continue;
    std::unordered_map<int, int> ren;
    for (int v : logic::CollectVars(st.fs[u])) {
      GTPQ_CHECK(remap[static_cast<QNodeId>(v)] != kInvalidQNode);
      ren[v] = static_cast<int>(remap[static_cast<QNodeId>(v)]);
    }
    b.SetStructural(remap[u], RenameVars(st.fs[u], ren));
    if (st.output[u]) b.MarkOutput(remap[u]);
  }
  auto built = b.Build();
  GTPQ_CHECK(built.ok()) << built.status().ToString();
  return built.TakeValue();
}

// Removes the subtree rooted at u, substituting `value` for its
// variable in the parent's structural predicate.
void RemoveSubtree(const Gtpq& q, QNodeId u, bool value, MinState* st) {
  for (QNodeId d : q.Subtree(u)) st->removed[d] = 1;
  const QNodeId p = q.node(u).parent;
  if (p != kInvalidQNode) {
    st->fs[p] = logic::Simplify(
        SubstituteConst(st->fs[p], static_cast<int>(u), value));
  }
}

// Structural isomorphism of query subtrees (role, edge type, mutually
// entailing attribute predicates, matching structural predicates,
// recursively isomorphic children in some order).
bool IsomorphicSubtrees(const Gtpq& q, QNodeId a, QNodeId b,
                        std::unordered_map<QNodeId, QNodeId>* map_out) {
  const QueryNode& na = q.node(a);
  const QueryNode& nb = q.node(b);
  if (na.role != nb.role) return false;
  if (a != b && na.incoming != nb.incoming &&
      !(q.node(a).parent == kInvalidQNode ||
        q.node(b).parent == kInvalidQNode)) {
    return false;
  }
  if (!na.attr_pred.EntailedBy(nb.attr_pred) ||
      !nb.attr_pred.EntailedBy(na.attr_pred)) {
    return false;
  }
  if (na.children.size() != nb.children.size()) return false;
  // Greedy child matching with backtracking.
  std::vector<char> used(nb.children.size(), 0);
  std::unordered_map<QNodeId, QNodeId> local;
  local[a] = b;
  std::function<bool(size_t)> match = [&](size_t i) -> bool {
    if (i == na.children.size()) return true;
    for (size_t j = 0; j < nb.children.size(); ++j) {
      if (used[j]) continue;
      std::unordered_map<QNodeId, QNodeId> sub;
      if (IsomorphicSubtrees(q, na.children[i], nb.children[j], &sub)) {
        used[j] = 1;
        auto saved = local;
        local.insert(sub.begin(), sub.end());
        if (match(i + 1)) return true;
        local = saved;
        used[j] = 0;
      }
    }
    return false;
  };
  if (!match(0)) return false;
  // Structural predicates must agree under the child renaming.
  std::unordered_map<int, int> ren;
  for (const auto& [x, y] : local) {
    ren[static_cast<int>(x)] = static_cast<int>(y);
  }
  if (!logic::Equivalent(RenameVars(q.node(a).structural_pred, ren),
                         q.node(b).structural_pred)) {
    return false;
  }
  if (map_out) map_out->insert(local.begin(), local.end());
  return true;
}

// Polarity scan: does `var` occur only under an even number of
// negations in f?
bool OccursOnlyPositively(const FormulaRef& f, int var, bool negated) {
  switch (f->kind()) {
    case logic::Kind::kConst:
      return true;
    case logic::Kind::kVar:
      return f->var() != var || !negated;
    case logic::Kind::kNot:
      return OccursOnlyPositively(f->children()[0], var, !negated);
    case logic::Kind::kAnd:
    case logic::Kind::kOr:
      for (const auto& c : f->children()) {
        if (!OccursOnlyPositively(c, var, negated)) return false;
      }
      return true;
  }
  return true;
}

// A canonical minimal unsatisfiable query with the same output arity.
Gtpq CanonicalUnsat(const Gtpq& q) {
  QueryBuilder b(q.attr_names());
  AttributePredicate impossible;
  const AttrId attr = q.attr_names()->Intern("label");
  impossible.AddAtom(attr, CmpOp::kEq, AttrValue(int64_t{0}));
  impossible.AddAtom(attr, CmpOp::kEq, AttrValue(int64_t{1}));
  QNodeId root = b.AddRoot("unsat", impossible);
  b.MarkOutput(root);
  QNodeId prev = root;
  for (size_t i = 1; i < q.outputs().size(); ++i) {
    prev = b.AddBackbone(prev, EdgeType::kDescendant,
                         "unsat" + std::to_string(i), impossible);
    b.MarkOutput(prev);
  }
  return b.Build().TakeValue();
}

}  // namespace

Gtpq Minimize(const Gtpq& q0) {
  if (!IsSatisfiable(q0)) return CanonicalUnsat(q0);

  Gtpq cur = q0;
  bool changed = true;
  while (changed) {
    changed = false;
    MinState st;
    st.removed.assign(cur.NumNodes(), 0);
    st.fs.resize(cur.NumNodes());
    st.output.assign(cur.NumNodes(), 0);
    for (QNodeId u = 0; u < cur.NumNodes(); ++u) {
      st.fs[u] = cur.node(u).structural_pred;
      st.output[u] = cur.IsOutput(u) ? 1 : 0;
    }

    QueryAnalysis a(cur);
    // Stages 1-3: prune subtrees that are unsatisfiable or inert
    // (unsatisfiable attributes, non-independently-constraint nodes,
    // unsatisfiable complete predicates), variables pinned to 0.
    for (QNodeId u : cur.TopDownOrder()) {
      if (u == cur.root() || st.removed[u]) continue;
      if (cur.node(u).role != NodeRole::kPredicate) continue;
      const bool prune =
          !cur.node(u).attr_pred.IsSatisfiable() ||
          !a.independently_constraint(u) ||
          !logic::IsSatisfiable(a.fcs(u));
      if (prune) {
        RemoveSubtree(cur, u, false, &st);
        changed = true;
      }
    }

    // Stage 4: always-true variables absorb subsumed subtrees
    // (variables pinned to 1); always-false variables prune their own
    // subtree (pinned to 0).
    if (!changed) {
      const FormulaRef root_fcs = a.fcs(cur.root());
      for (QNodeId u = 0; u < cur.NumNodes() && !changed; ++u) {
        if (u == cur.root() || st.removed[u]) continue;
        const FormulaRef pu = Formula::Var(static_cast<int>(u));
        if (logic::Implies(root_fcs, pu)) {
          for (QNodeId other = 0; other < cur.NumNodes(); ++other) {
            if (other == u || st.removed[other]) continue;
            if (cur.IsAncestor(other, u) || cur.IsAncestor(u, other)) {
              continue;
            }
            if (!a.Subsumed(other, u)) continue;
            // Remap outputs inside the doomed subtree onto isomorphic
            // counterparts under u (on a scratch copy, so a failed
            // attempt leaves no trace).
            MinState attempt = st;
            bool all_remapped = true;
            for (QNodeId d : cur.Subtree(other)) {
              if (!attempt.output[d]) continue;
              bool remapped = false;
              for (QNodeId t : cur.Subtree(u)) {
                if (attempt.output[t]) continue;
                if (a.Similar(d, t) && IsomorphicSubtrees(cur, d, t,
                                                          nullptr)) {
                  attempt.output[d] = 0;
                  attempt.output[t] = 1;
                  remapped = true;
                  break;
                }
              }
              if (!remapped) all_remapped = false;
            }
            if (all_remapped) {
              RemoveSubtree(cur, other, true, &attempt);
              // Algorithm 1's correctness rests on Theorem 3; guard
              // each subsumption-based rewrite with the homomorphism
              // equivalence check before committing it.
              Gtpq candidate = Rebuild(cur, attempt);
              if (AreEquivalent(candidate, cur)) {
                st = std::move(attempt);
                changed = true;
                break;
              }
            }
          }
        } else if (cur.node(u).role == NodeRole::kPredicate &&
                   OccursOnlyPositively(
                       st.fs[cur.node(u).parent], static_cast<int>(u),
                       false) &&
                   logic::Implies(root_fcs, Formula::Not(pu))) {
          // Always-false variables may only be pinned to 0 when they
          // occur positively: under negation the variable's falsity is
          // a data constraint that the subtree must keep enforcing.
          MinState attempt = st;
          RemoveSubtree(cur, u, false, &attempt);
          Gtpq candidate = Rebuild(cur, attempt);
          if (AreEquivalent(candidate, cur)) {
            st = std::move(attempt);
            changed = true;
          }
        }
      }
    }

    if (changed) cur = Rebuild(cur, st);
  }
  return cur;
}

}  // namespace gtpq
