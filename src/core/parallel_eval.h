#ifndef GTPQ_CORE_PARALLEL_EVAL_H_
#define GTPQ_CORE_PARALLEL_EVAL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>

#include "reachability/reachability_index.h"

namespace gtpq {

/// Per-Evaluate parallel execution state, created once at the top of
/// GteaEngine::Evaluate and threaded through the pipeline stages.
///
/// `lanes` is the resolved budget (GteaOptions::parallelism clamped to
/// the hardware; 1 = serial). The atomic sinks collect the oracle
/// counter deltas caused by helper lanes: helper-pool threads own their
/// own PerThread IndexStats slots, which are never reset per query, so
/// each helper-lane task exports only the delta it produced (see
/// OracleLaneScope). Lane 0 always runs on the calling thread, whose
/// slot the engine resets and reads directly — its work must NOT be
/// exported or it would be counted twice. At the end of Evaluate the
/// sinks are folded back into the calling thread's slot (FlushInto), so
/// idx.stats() again describes the whole query no matter how many
/// threads executed it.
struct ParallelEvalContext {
  size_t lanes = 1;
  std::atomic<uint64_t> oracle_elements{0};
  std::atomic<uint64_t> oracle_queries{0};
  std::atomic<uint64_t> oracle_cache_hits{0};
  std::atomic<uint64_t> oracle_cache_misses{0};

  void FlushInto(IndexStats* stats) {
    stats->elements_looked_up += oracle_elements.exchange(0);
    stats->queries += oracle_queries.exchange(0);
    stats->cache_hits += oracle_cache_hits.exchange(0);
    stats->cache_misses += oracle_cache_misses.exchange(0);
  }
};

/// RAII capture of the oracle counters one helper-lane task produces:
/// snapshots the calling thread's slot on entry, exports the delta to
/// the context sinks on exit. A no-op for lane 0 (the Evaluate caller,
/// whose slot is read directly) and when ctx is null (serial call
/// sites).
class OracleLaneScope {
 public:
  OracleLaneScope(const ReachabilityOracle& idx, size_t lane,
                  ParallelEvalContext* ctx)
      : idx_(idx),
        ctx_(lane == 0 ? nullptr : ctx),
        before_(ctx_ ? idx.stats() : IndexStats{}) {}

  ~OracleLaneScope() {
    if (ctx_ == nullptr) return;
    const IndexStats& after = idx_.stats();
    ctx_->oracle_elements +=
        after.elements_looked_up - before_.elements_looked_up;
    ctx_->oracle_queries += after.queries - before_.queries;
    ctx_->oracle_cache_hits += after.cache_hits - before_.cache_hits;
    ctx_->oracle_cache_misses += after.cache_misses - before_.cache_misses;
  }

  OracleLaneScope(const OracleLaneScope&) = delete;
  OracleLaneScope& operator=(const OracleLaneScope&) = delete;

 private:
  const ReachabilityOracle& idx_;
  ParallelEvalContext* ctx_;
  IndexStats before_;
};

/// The contiguous [begin, end) chunk lane `lane` owns when n items are
/// split across `lanes` lanes. Concatenating per-lane outputs in lane
/// order therefore reproduces the serial iteration order exactly.
inline std::pair<size_t, size_t> LaneChunk(size_t n, size_t lane,
                                           size_t lanes) {
  return {lane * n / lanes, (lane + 1) * n / lanes};
}

}  // namespace gtpq

#endif  // GTPQ_CORE_PARALLEL_EVAL_H_
