#include "core/matching_graph.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "runtime/parallel.h"

namespace gtpq {

size_t MatchingGraph::TotalNodes() const {
  size_t n = 0;
  for (QNodeId u = 0; u < covered_.size(); ++u) {
    if (covered_[u]) n += cand_[u].size();
  }
  return n;
}

size_t MatchingGraph::TotalEdges() const {
  size_t n = 0;
  for (QNodeId u = 0; u < covered_.size(); ++u) {
    if (!covered_[u]) continue;
    for (const auto& per_cand : branches_[u]) {
      for (const auto& lst : per_cand) n += lst.size();
    }
  }
  return n;
}

MatchingGraph BuildMatchingGraph(const DataGraph& g,
                                 const ReachabilityOracle& idx,
                                 const Gtpq& q,
                                 const std::vector<char>& in_prime,
                                 const std::vector<std::vector<NodeId>>& mat,
                                 const GteaOptions& options,
                                 ParallelEvalContext* ctx,
                                 EngineStats* stats) {
  MatchingGraph mg;
  const size_t n = q.NumNodes();
  mg.covered_.assign(n, 0);
  mg.cand_.resize(n);
  mg.prime_children_.resize(n);
  mg.branches_.resize(n);
  mg.alive_.resize(n);

  for (QNodeId u = 0; u < n; ++u) {
    if (!in_prime[u]) continue;
    mg.covered_[u] = 1;
    mg.cand_[u] = mat[u];
    mg.alive_[u].assign(mat[u].size(), 1);
    for (QNodeId c : q.node(u).children) {
      if (in_prime[c]) mg.prime_children_[u].push_back(c);
    }
  }

  for (QNodeId u = 0; u < n; ++u) {
    if (!mg.covered_[u]) continue;
    const auto& parents = mg.cand_[u];
    const auto& kids = mg.prime_children_[u];
    mg.branches_[u].assign(parents.size(), {});
    if (kids.empty()) continue;
    for (auto& b : mg.branches_[u]) b.resize(kids.size());

    for (size_t slot = 0; slot < kids.size(); ++slot) {
      const QNodeId c = kids[slot];
      const auto& child_cand = mg.cand_[c];

      // Each (parent candidate × this edge) tile is one work unit;
      // tiles write disjoint branch lists, so lane assignment cannot
      // change the built graph.
      const size_t lanes = ctx->lanes;

      if (q.node(c).incoming == EdgeType::kChild) {
        // PC edge: adjacency intersection over a candidate index map
        // (built once, read-only across lanes).
        std::unordered_map<NodeId, uint32_t> index_of;
        index_of.reserve(child_cand.size());
        for (uint32_t i = 0; i < child_cand.size(); ++i) {
          index_of.emplace(child_cand[i], i);
        }
        std::vector<uint64_t> lane_nodes(std::max<size_t>(lanes, 1), 0);
        ParallelForWorkStealing(
            parents.size(), lanes, [&](size_t pi, size_t lane) {
              auto& branch = mg.branches_[u][pi][slot];
              for (NodeId w : g.OutNeighbors(parents[pi])) {
                ++lane_nodes[lane];
                auto it = index_of.find(w);
                if (it != index_of.end()) branch.push_back(it->second);
              }
            });
        for (uint64_t n_in : lane_nodes) stats->input_nodes += n_in;
        continue;
      }

      if (!options.contour_matching_graph) {
        // Straightforward pairwise reachability (Section 4.3 baseline).
        ParallelForWorkStealing(
            parents.size(), lanes, [&](size_t pi, size_t lane) {
              OracleLaneScope scope(idx, lane, ctx);
              auto& branch = mg.branches_[u][pi][slot];
              for (uint32_t wi = 0; wi < child_cand.size(); ++wi) {
                if (idx.Reaches(parents[pi], child_cand[wi])) {
                  branch.push_back(wi);
                }
              }
            });
        continue;
      }

      // Batched scan: prepare the child candidates once, then find each
      // parent candidate's successors among them in one oracle call
      // (per-candidate successor contours with the ascending-chain
      // early break on contour-capable backends). The prepared summary
      // is immutable and shared read-only by all lanes.
      auto prepared = idx.PrepareSuccessorTargets(child_cand);
      ParallelForWorkStealing(
          parents.size(), lanes, [&](size_t pi, size_t lane) {
            OracleLaneScope scope(idx, lane, ctx);
            idx.SuccessorsAmong(parents[pi], *prepared,
                                &mg.branches_[u][pi][slot]);
          });
    }
  }
  stats->intermediate_size = 2 * (mg.TotalNodes() + mg.TotalEdges());
  return mg;
}

bool ReduceMatchingGraph(const Gtpq& q, MatchingGraph* mg,
                         EngineStats* stats) {
  (void)stats;
  // Support counters. parent_support[u][i]: number of live parent-edge
  // endpoints pointing at candidate i of u. child_support[u][i][slot]:
  // live branch entries of candidate i of u for that child slot.
  const size_t n = q.NumNodes();
  std::vector<std::vector<uint32_t>> parent_support(n);
  std::vector<std::vector<std::vector<uint32_t>>> child_support(n);
  // Reverse adjacency: for candidate (c, wi), the list of (u, pi, slot)
  // parents, flattened as indices.
  struct ParentRef {
    QNodeId u;
    uint32_t pi;
    uint32_t slot;
  };
  std::vector<std::vector<std::vector<ParentRef>>> rev(n);

  QNodeId prime_root = kInvalidQNode;
  for (QNodeId u = 0; u < n; ++u) {
    if (!mg->InTree(u)) continue;
    if (prime_root == kInvalidQNode) prime_root = u;  // root has lowest id
    parent_support[u].assign(mg->cand_[u].size(), 0);
    child_support[u].resize(mg->cand_[u].size());
    rev[u].resize(mg->cand_[u].size());
  }
  for (QNodeId u = 0; u < n; ++u) {
    if (!mg->InTree(u)) continue;
    const auto& kids = mg->prime_children_[u];
    for (uint32_t pi = 0; pi < mg->cand_[u].size(); ++pi) {
      child_support[u][pi].resize(kids.size());
      for (uint32_t slot = 0; slot < kids.size(); ++slot) {
        const auto& lst = mg->branches_[u][pi][slot];
        child_support[u][pi][slot] = static_cast<uint32_t>(lst.size());
        for (uint32_t wi : lst) {
          ++parent_support[kids[slot]][wi];
          rev[kids[slot]][wi].push_back(ParentRef{u, pi, slot});
        }
      }
    }
  }

  // Initial kill set: missing child branch, or (non-root) no parent.
  std::vector<std::pair<QNodeId, uint32_t>> worklist;
  auto needs_kill = [&](QNodeId u, uint32_t i) {
    if (u != prime_root && parent_support[u][i] == 0) return true;
    for (uint32_t s = 0; s < child_support[u][i].size(); ++s) {
      if (child_support[u][i][s] == 0) return true;
    }
    return false;
  };
  for (QNodeId u = 0; u < n; ++u) {
    if (!mg->InTree(u)) continue;
    for (uint32_t i = 0; i < mg->cand_[u].size(); ++i) {
      if (needs_kill(u, i)) {
        mg->alive_[u][i] = 0;
        worklist.emplace_back(u, i);
      }
    }
  }
  while (!worklist.empty()) {
    auto [u, i] = worklist.back();
    worklist.pop_back();
    // Propagate to children: their parent support drops.
    const auto& kids = mg->prime_children_[u];
    for (uint32_t slot = 0; slot < kids.size(); ++slot) {
      for (uint32_t wi : mg->branches_[u][i][slot]) {
        QNodeId c = kids[slot];
        if (!mg->alive_[c][wi]) continue;
        if (--parent_support[c][wi] == 0 && c != prime_root) {
          mg->alive_[c][wi] = 0;
          worklist.emplace_back(c, wi);
        }
      }
    }
    // Propagate to parents: their child support drops.
    for (const auto& ref : rev[u][i]) {
      if (!mg->alive_[ref.u][ref.pi]) continue;
      if (--child_support[ref.u][ref.pi][ref.slot] == 0) {
        mg->alive_[ref.u][ref.pi] = 0;
        worklist.emplace_back(ref.u, ref.pi);
      }
    }
  }

  // Compact: drop dead candidates and remap branch indices.
  for (QNodeId u = 0; u < n; ++u) {
    if (!mg->InTree(u)) continue;
    const size_t m = mg->cand_[u].size();
    std::vector<uint32_t> remap(m, UINT32_MAX);
    uint32_t next = 0;
    for (uint32_t i = 0; i < m; ++i) {
      if (mg->alive_[u][i]) remap[i] = next++;
    }
    if (next == m) continue;  // nothing died
    std::vector<NodeId> new_cand;
    std::vector<std::vector<std::vector<uint32_t>>> new_branches;
    new_cand.reserve(next);
    new_branches.reserve(next);
    for (uint32_t i = 0; i < m; ++i) {
      if (!mg->alive_[u][i]) continue;
      new_cand.push_back(mg->cand_[u][i]);
      new_branches.push_back(std::move(mg->branches_[u][i]));
    }
    mg->cand_[u] = std::move(new_cand);
    mg->branches_[u] = std::move(new_branches);
    mg->alive_[u].assign(mg->cand_[u].size(), 1);
    // Fix parent branch lists pointing into u.
    QNodeId parent = q.node(u).parent;
    if (parent != kInvalidQNode && mg->InTree(parent)) {
      const auto& kids = mg->prime_children_[parent];
      uint32_t slot = UINT32_MAX;
      for (uint32_t s = 0; s < kids.size(); ++s) {
        if (kids[s] == u) slot = s;
      }
      GTPQ_CHECK(slot != UINT32_MAX);
      for (auto& per_cand : mg->branches_[parent]) {
        auto& lst = per_cand[slot];
        std::vector<uint32_t> fixed;
        fixed.reserve(lst.size());
        for (uint32_t wi : lst) {
          if (remap[wi] != UINT32_MAX) fixed.push_back(remap[wi]);
        }
        lst = std::move(fixed);
      }
    }
  }

  for (QNodeId u = 0; u < n; ++u) {
    if (mg->InTree(u) && mg->cand_[u].empty()) return false;
  }
  return true;
}

}  // namespace gtpq
