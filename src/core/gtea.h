#ifndef GTPQ_CORE_GTEA_H_
#define GTPQ_CORE_GTEA_H_

#include <memory>

#include "core/eval_types.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"
#include "reachability/three_hop.h"

namespace gtpq {

/// GTEA — the GTPQ evaluation algorithm of Section 4. Pipeline:
///
///   1. candidate matching  (mat(u) = { v : v ~ u })
///   2. PruneDownward       (downward structural constraints, Proc. 6)
///   3. prime subtree       (outputs + PC repairs, Section 4.2.3/4.4)
///   4. PruneUpward         (upward structural constraints, Proc. 7)
///   5. maximal matching graph + fixpoint reduction (Section 4.3)
///   6. shrinking + CollectResults enumeration (Proc. 5)
///
/// The engine owns (or shares) a 3-hop index over the data graph and
/// can evaluate any number of queries against it.
class GteaEngine {
 public:
  /// Builds a fresh 3-hop index for `g`. The graph must outlive the
  /// engine.
  explicit GteaEngine(const DataGraph& g);
  /// Shares a prebuilt index (e.g. across engines in a benchmark).
  GteaEngine(const DataGraph& g, std::shared_ptr<const ThreeHopIndex> idx);

  /// Evaluates the query; returns the normalized answer Q(G).
  QueryResult Evaluate(const Gtpq& q, const GteaOptions& options = {});

  /// Stats of the most recent Evaluate call.
  const EngineStats& stats() const { return stats_; }
  const ThreeHopIndex& index() const { return *idx_; }
  const DataGraph& graph() const { return g_; }

 private:
  const DataGraph& g_;
  std::shared_ptr<const ThreeHopIndex> idx_;
  EngineStats stats_;
};

}  // namespace gtpq

#endif  // GTPQ_CORE_GTEA_H_
