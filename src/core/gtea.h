#ifndef GTPQ_CORE_GTEA_H_
#define GTPQ_CORE_GTEA_H_

#include <memory>
#include <string>

#include "core/eval_types.h"
#include "core/evaluator.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"
#include "reachability/factory.h"

namespace gtpq {

/// GTEA — the GTPQ evaluation algorithm of Section 4. Pipeline:
///
///   1. candidate matching  (mat(u) = { v : v ~ u })
///   2. PruneDownward       (downward structural constraints, Proc. 6)
///   3. prime subtree       (outputs + PC repairs, Section 4.2.3/4.4)
///   4. PruneUpward         (upward structural constraints, Proc. 7)
///   5. maximal matching graph + fixpoint reduction (Section 4.3)
///   6. shrinking + CollectResults enumeration (Proc. 5)
///
/// Every stage runs against the abstract ReachabilityOracle, so any
/// registered backend can drive the engine; the default is the
/// contour-accelerated 3-hop index the paper evaluates. The engine
/// owns (or shares) its oracle and can evaluate any number of queries
/// against it.
class GteaEngine : public Evaluator {
 public:
  /// Builds a fresh index of the requested backend for `g`. The graph
  /// must outlive the engine.
  explicit GteaEngine(const DataGraph& g,
                      ReachabilityBackend backend = ReachabilityBackend::kContour);
  /// Shares a prebuilt oracle (e.g. across engines in a benchmark).
  GteaEngine(const DataGraph& g,
             std::shared_ptr<const ReachabilityOracle> idx);

  std::string_view name() const override { return name_; }

  /// Evaluates the query; returns the normalized answer Q(G).
  QueryResult Evaluate(const Gtpq& q,
                       const GteaOptions& options = {}) override;

  /// Stats of the most recent Evaluate call.
  const EngineStats& stats() const override { return stats_; }
  const ReachabilityOracle& index() const { return *idx_; }
  const DataGraph& graph() const { return g_; }

 private:
  const DataGraph& g_;
  std::shared_ptr<const ReachabilityOracle> idx_;
  std::string name_;
  EngineStats stats_;
};

}  // namespace gtpq

#endif  // GTPQ_CORE_GTEA_H_
