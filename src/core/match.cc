#include "core/match.h"

namespace gtpq {

std::vector<std::vector<NodeId>> ComputeCandidates(const DataGraph& g,
                                                   const Gtpq& q,
                                                   EngineStats* stats) {
  std::vector<std::vector<NodeId>> mat(q.NumNodes());
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    const AttributePredicate& pred = q.node(u).attr_pred;
    auto label = pred.RequiredLabel(g.label_attr());
    if (label.has_value()) {
      auto hits = g.NodesWithLabel(*label);
      stats->input_nodes += hits.size();
      if (pred.atoms().size() == 1) {
        mat[u].assign(hits.begin(), hits.end());
      } else {
        for (NodeId v : hits) {
          if (pred.Matches(g, v)) mat[u].push_back(v);
        }
      }
    } else {
      stats->input_nodes += g.NumNodes();
      for (NodeId v = 0; v < g.NumNodes(); ++v) {
        if (pred.Matches(g, v)) mat[u].push_back(v);
      }
    }
  }
  return mat;
}

}  // namespace gtpq
