#ifndef GTPQ_CORE_EVAL_TYPES_H_
#define GTPQ_CORE_EVAL_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/digraph.h"
#include "query/gtpq.h"

namespace gtpq {

/// One answer tuple: images of the query's output nodes, aligned with
/// QueryResult::output_nodes.
using ResultTuple = std::vector<NodeId>;

/// The answer Q(G): a deduplicated, lexicographically sorted set of
/// output tuples. All engines (GTEA, brute force, baselines) normalize
/// to this form, which is what the equivalence tests compare.
struct QueryResult {
  /// Output query nodes in ascending id order.
  std::vector<QNodeId> output_nodes;
  std::vector<ResultTuple> tuples;

  /// Sorts + dedupes tuples in place.
  void Normalize();
  bool operator==(const QueryResult& other) const {
    return output_nodes == other.output_nodes && tuples == other.tuples;
  }
  std::string ToString() const;
};

/// Evaluation-cost counters mirroring the paper's I/O metrics (Fig 10)
/// plus stage timings.
struct EngineStats {
  /// #input: data nodes accessed (candidate scans + pruning passes).
  uint64_t input_nodes = 0;
  /// #index: reachability index elements looked up.
  uint64_t index_lookups = 0;
  /// #intermediate_results: for GTEA, twice the nodes+edges of the
  /// maximal matching graph; for tuple-based engines, total tuple cells.
  uint64_t intermediate_size = 0;
  /// Join/merge operations performed (tuple-based baselines).
  uint64_t join_ops = 0;

  double match_ms = 0;
  double prune_down_ms = 0;
  double prime_ms = 0;
  double prune_up_ms = 0;
  double matching_graph_ms = 0;
  double enumerate_ms = 0;
  double total_ms = 0;

  void Reset() { *this = EngineStats(); }
};

/// Tuning / ablation switches for GTEA (Section 4 design choices).
struct GteaOptions {
  /// Second pruning round (upward structural constraints). Off = the
  /// ablation the paper motivates in Section 4.2.3.
  bool upward_pruning = true;
  /// Use per-node successor contours when building the maximal matching
  /// graph (the "more sophisticated approach" of Section 4.3); false =
  /// the straightforward pairwise reachability checks.
  bool contour_matching_graph = true;
  /// Skip query nodes whose candidate set is a singleton during upward
  /// pruning, as the paper's Procedure 7 does: a lone survivor either
  /// reaches the matching graph, where the fixpoint reduction re-checks
  /// it, or the query node is outside the prime subtree and the
  /// refinement was moot. The decision is taken on the node's FULL
  /// candidate set before it is partitioned across parallel lanes — a
  /// size-1 lane partition of a larger set is always refined. Off by
  /// default because the refinement pass is cheap on singletons anyway.
  bool skip_singleton_upward = false;
  /// Cap on enumerated result tuples (0 = unlimited).
  size_t result_limit = 0;
  /// Intra-query parallelism budget: 0 = fully serial (no helper-pool
  /// traffic at all), N > 1 = fan pruning probes, matching-graph tiles,
  /// and enumeration subtrees across up to N lanes on the shared helper
  /// pool (more lanes than cores is allowed and just time-slices; see
  /// runtime/parallel.h). Results are byte-identical at every setting — partition
  /// outputs are concatenated in lane order and enumeration memo slots
  /// are index-addressed, so order and result_limit semantics match the
  /// serial run exactly. 1 behaves like 0.
  size_t parallelism = 0;
};

}  // namespace gtpq

#endif  // GTPQ_CORE_EVAL_TYPES_H_
