#include "core/gtea.h"

#include "common/timer.h"
#include "core/enumerate.h"
#include "core/match.h"
#include "core/matching_graph.h"
#include "core/prune.h"

namespace gtpq {

namespace {
std::string EngineName(const ReachabilityOracle& idx) {
  return "gtea[" + std::string(idx.name()) + "]";
}
}  // namespace

GteaEngine::GteaEngine(const DataGraph& g, ReachabilityBackend backend)
    : g_(g), idx_(MakeReachabilityIndex(backend, g.graph())) {
  name_ = EngineName(*idx_);
}

GteaEngine::GteaEngine(const DataGraph& g,
                       std::shared_ptr<const ReachabilityOracle> idx)
    : g_(g), idx_(std::move(idx)), name_(EngineName(*idx_)) {}

QueryResult GteaEngine::Evaluate(const Gtpq& q, const GteaOptions& options) {
  stats_.Reset();
  idx_->stats().Reset();
  Timer total;

  QueryResult empty;
  empty.output_nodes = q.outputs();
  std::sort(empty.output_nodes.begin(), empty.output_nodes.end());

  auto mat = ComputeCandidates(g_, q, &stats_);

  Timer t;
  PruneDownward(g_, *idx_, q, &mat, &stats_);
  stats_.prune_down_ms = t.ElapsedMillis();
  if (mat[q.root()].empty()) {
    stats_.index_lookups = idx_->stats().elements_looked_up;
    stats_.total_ms = total.ElapsedMillis();
    return empty;
  }

  auto in_prime = ComputePrimeSubtree(q);

  t.Restart();
  bool nonempty = true;
  if (options.upward_pruning) {
    nonempty = PruneUpward(g_, *idx_, q, in_prime, &mat, options, &stats_);
  }
  stats_.prune_up_ms = t.ElapsedMillis();
  if (!nonempty) {
    stats_.index_lookups = idx_->stats().elements_looked_up;
    stats_.total_ms = total.ElapsedMillis();
    return empty;
  }

  t.Restart();
  MatchingGraph mg =
      BuildMatchingGraph(g_, *idx_, q, in_prime, mat, options, &stats_);
  nonempty = ReduceMatchingGraph(q, &mg, &stats_);
  stats_.matching_graph_ms = t.ElapsedMillis();
  if (!nonempty) {
    stats_.index_lookups = idx_->stats().elements_looked_up;
    stats_.total_ms = total.ElapsedMillis();
    return empty;
  }

  t.Restart();
  QueryResult result = EnumerateResults(q, mg, options, &stats_);
  stats_.enumerate_ms = t.ElapsedMillis();

  stats_.index_lookups = idx_->stats().elements_looked_up;
  stats_.total_ms = total.ElapsedMillis();
  return result;
}

}  // namespace gtpq
