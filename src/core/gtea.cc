#include "core/gtea.h"

#include "common/timer.h"
#include "core/enumerate.h"
#include "core/match.h"
#include "core/matching_graph.h"
#include "core/parallel_eval.h"
#include "core/prune.h"
#include "runtime/parallel.h"

namespace gtpq {

namespace {
std::string EngineName(const ReachabilityOracle& idx) {
  return "gtea[" + std::string(idx.name()) + "]";
}
}  // namespace

GteaEngine::GteaEngine(const DataGraph& g, ReachabilityBackend backend)
    : g_(g), idx_(MakeReachabilityIndex(backend, g.graph())) {
  name_ = EngineName(*idx_);
}

GteaEngine::GteaEngine(const DataGraph& g,
                       std::shared_ptr<const ReachabilityOracle> idx)
    : g_(g), idx_(std::move(idx)), name_(EngineName(*idx_)) {}

QueryResult GteaEngine::Evaluate(const Gtpq& q, const GteaOptions& options) {
  stats_.Reset();
  idx_->stats().Reset();
  Timer total;

  // Lane budget for this query; 1 means fully serial (no helper-pool
  // traffic). Helper lanes export their oracle counter deltas into the
  // context sinks, folded back into this thread's slot by Finish so
  // idx_->stats() describes the whole query again.
  ParallelEvalContext ctx;
  ctx.lanes = std::max<size_t>(1, EffectiveParallelism(options.parallelism));
  auto finish = [&] {
    ctx.FlushInto(&idx_->stats());
    stats_.index_lookups = idx_->stats().elements_looked_up;
    stats_.total_ms = total.ElapsedMillis();
  };

  QueryResult empty;
  empty.output_nodes = q.outputs();
  std::sort(empty.output_nodes.begin(), empty.output_nodes.end());

  Timer t;
  auto mat = ComputeCandidates(g_, q, &stats_);
  stats_.match_ms = t.ElapsedMillis();

  t.Restart();
  PruneDownward(g_, *idx_, q, &mat, &ctx, &stats_);
  stats_.prune_down_ms = t.ElapsedMillis();
  if (mat[q.root()].empty()) {
    finish();
    return empty;
  }

  t.Restart();
  auto in_prime = ComputePrimeSubtree(q);
  stats_.prime_ms = t.ElapsedMillis();

  t.Restart();
  bool nonempty = true;
  if (options.upward_pruning) {
    nonempty =
        PruneUpward(g_, *idx_, q, in_prime, &mat, options, &ctx, &stats_);
  }
  stats_.prune_up_ms = t.ElapsedMillis();
  if (!nonempty) {
    finish();
    return empty;
  }

  t.Restart();
  MatchingGraph mg =
      BuildMatchingGraph(g_, *idx_, q, in_prime, mat, options, &ctx, &stats_);
  nonempty = ReduceMatchingGraph(q, &mg, &stats_);
  stats_.matching_graph_ms = t.ElapsedMillis();
  if (!nonempty) {
    finish();
    return empty;
  }

  t.Restart();
  QueryResult result = EnumerateResults(q, mg, options, &ctx, &stats_);
  stats_.enumerate_ms = t.ElapsedMillis();

  finish();
  return result;
}

}  // namespace gtpq
