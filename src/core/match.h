#ifndef GTPQ_CORE_MATCH_H_
#define GTPQ_CORE_MATCH_H_

#include <vector>

#include "core/eval_types.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"

namespace gtpq {

/// Candidate matching nodes: mat(u) = { v : v ~ u } for every query
/// node, sorted ascending. Label-equality predicates are served from the
/// graph's inverted label index; other predicates fall back to a scan.
/// `stats` accumulates #input.
std::vector<std::vector<NodeId>> ComputeCandidates(const DataGraph& g,
                                                   const Gtpq& q,
                                                   EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_CORE_MATCH_H_
