#ifndef GTPQ_CORE_EVALUATOR_H_
#define GTPQ_CORE_EVALUATOR_H_

#include <string_view>

#include "core/eval_types.h"
#include "query/gtpq.h"

namespace gtpq {

/// The common engine seam: every GTPQ evaluation strategy — GTEA and
/// the tuple-based baselines (brute force, TwigStack, Twig2Stack,
/// TwigStackD, HGJoin, decompose-and-merge) — implements this
/// interface, so benchmarks, differential tests, and future scaling
/// layers (sharded indexes, cached oracles, parallel evaluation) treat
/// engines uniformly.
///
/// Contract:
///  * Evaluate() returns the normalized answer Q(G) and fully resets
///    stats() (and any owned index's IndexStats) at its top, so
///    back-to-back queries on a shared engine never accumulate stale
///    counters;
///  * stats() describes the most recent Evaluate() call, with
///    index_lookups plumbed from the engine's reachability oracle;
///  * engines that cannot evaluate a query (unsupported fragment)
///    return an empty result and say so via their own side channel
///    (e.g. DecomposeEngine::last_status());
///  * threading: one Evaluator instance is thread-confined (Evaluate
///    and stats() must be called from one thread at a time), but any
///    number of instances may share the immutable index artifacts —
///    oracle counters and scratch are per-thread, so concurrent
///    Evaluate calls on SIBLING engines are data-race-free. The
///    serving runtime (runtime/query_server.h) pins one engine per
///    pool worker on exactly this contract.
class Evaluator {
 public:
  virtual ~Evaluator() = default;

  /// Short engine name for reports ("gtea", "twigstackd", ...).
  virtual std::string_view name() const = 0;

  /// Evaluates the query; returns the normalized answer Q(G).
  virtual QueryResult Evaluate(const Gtpq& q,
                               const GteaOptions& options = {}) = 0;

  /// Stats of the most recent Evaluate call.
  virtual const EngineStats& stats() const = 0;
};

}  // namespace gtpq

#endif  // GTPQ_CORE_EVALUATOR_H_
