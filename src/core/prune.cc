#include "core/prune.h"

#include <algorithm>
#include <memory>
#include <span>

#include "common/logging.h"
#include "runtime/parallel.h"

namespace gtpq {

namespace {

// Lanes actually worth spinning up for a candidate set of size n: never
// more than one item per lane, never more than the query budget.
size_t LanesFor(const ParallelEvalContext* ctx, size_t n) {
  return std::min(ctx->lanes, n);
}

// True when the PC child must be evaluated exactly during pruning:
// predicate-role PC children never reach the matching graph, so the
// AD-approximation cannot be repaired for them.
bool NeedsExactPc(const Gtpq& q, QNodeId child) {
  return q.node(child).incoming == EdgeType::kChild &&
         q.node(child).role == NodeRole::kPredicate;
}

// Union of in-neighbors of all candidates, sorted (the P_{u'} sets of
// Section 4.4).
std::vector<NodeId> CollectParents(const DataGraph& g,
                                   const std::vector<NodeId>& candidates,
                                   EngineStats* stats) {
  std::vector<NodeId> parents;
  for (NodeId w : candidates) {
    auto in = g.InNeighbors(w);
    stats->input_nodes += in.size();
    parents.insert(parents.end(), in.begin(), in.end());
  }
  std::sort(parents.begin(), parents.end());
  parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
  return parents;
}

}  // namespace

void PruneDownward(const DataGraph& g, const ReachabilityOracle& idx,
                   const Gtpq& q, std::vector<std::vector<NodeId>>* mat,
                   ParallelEvalContext* ctx, EngineStats* stats) {
  using SetSummary = ReachabilityOracle::SetSummary;

  for (QNodeId u : q.BottomUpOrder()) {
    auto& candidates = (*mat)[u];
    if (q.IsLeaf(u)) continue;

    const auto& children = q.node(u).children;
    std::vector<QNodeId> ad_children, pc_exact_children;
    for (QNodeId c : children) {
      (NeedsExactPc(q, c) ? pc_exact_children : ad_children).push_back(c);
    }
    std::vector<std::vector<NodeId>> parent_sets(pc_exact_children.size());
    for (size_t i = 0; i < pc_exact_children.size(); ++i) {
      parent_sets[i] = CollectParents(g, (*mat)[pc_exact_children[i]], stats);
    }

    // Summarize each AD child's (already pruned) candidate set once;
    // the summaries are immutable after construction and shared
    // read-only by every probing lane.
    std::vector<std::unique_ptr<SetSummary>> summaries;
    std::vector<const SetSummary*> summary_ptrs;
    summaries.reserve(ad_children.size());
    for (QNodeId c : ad_children) {
      summaries.push_back(idx.SummarizeTargets((*mat)[c]));
      summary_ptrs.push_back(summaries.back().get());
    }

    const logic::FormulaRef fext = q.ExtendedPredicate(u);
    // One batched probe per candidate chunk, then the per-candidate
    // formula evaluation into the chunk's keep-list.
    auto process_chunk = [&](size_t begin, size_t end,
                             std::vector<NodeId>* kept,
                             uint64_t* input_nodes) {
      std::span<const NodeId> chunk(candidates.data() + begin, end - begin);
      std::vector<std::vector<char>> reach;
      idx.ReachesSetsBatch(chunk, summary_ptrs, &reach);
      std::vector<char> val(q.NumNodes(), 0);
      kept->reserve(chunk.size());
      for (size_t i = 0; i < chunk.size(); ++i) {
        const NodeId v = chunk[i];
        ++*input_nodes;
        for (size_t k = 0; k < ad_children.size(); ++k) {
          val[ad_children[k]] = reach[k][i];
        }
        for (size_t k = 0; k < pc_exact_children.size(); ++k) {
          val[pc_exact_children[k]] =
              std::binary_search(parent_sets[k].begin(),
                                 parent_sets[k].end(), v)
                  ? 1
                  : 0;
        }
        const bool ok = logic::Evaluate(
            fext, [&](int var) { return val[static_cast<QNodeId>(var)]; });
        if (ok) kept->push_back(v);
      }
    };

    const size_t lanes = LanesFor(ctx, candidates.size());
    if (lanes <= 1) {
      std::vector<NodeId> kept;
      uint64_t input_nodes = 0;
      process_chunk(0, candidates.size(), &kept, &input_nodes);
      stats->input_nodes += input_nodes;
      candidates = std::move(kept);
      continue;
    }

    std::vector<std::vector<NodeId>> lane_kept(lanes);
    std::vector<uint64_t> lane_nodes(lanes, 0);
    ParallelRun(lanes, [&](size_t lane) {
      OracleLaneScope scope(idx, lane, ctx);
      auto [begin, end] = LaneChunk(candidates.size(), lane, lanes);
      process_chunk(begin, end, &lane_kept[lane], &lane_nodes[lane]);
    });
    std::vector<NodeId> kept;
    kept.reserve(candidates.size());
    for (size_t lane = 0; lane < lanes; ++lane) {
      kept.insert(kept.end(), lane_kept[lane].begin(), lane_kept[lane].end());
      stats->input_nodes += lane_nodes[lane];
    }
    candidates = std::move(kept);
  }
}

std::vector<char> ComputePrimeSubtree(const Gtpq& q) {
  std::vector<char> in_prime(q.NumNodes(), 0);
  auto mark_to_root = [&q, &in_prime](QNodeId u) {
    while (u != kInvalidQNode && !in_prime[u]) {
      in_prime[u] = 1;
      u = q.node(u).parent;
    }
  };
  mark_to_root(q.root());
  for (QNodeId o : q.outputs()) mark_to_root(o);
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    if (q.node(u).role == NodeRole::kBackbone &&
        q.node(u).incoming == EdgeType::kChild && u != q.root()) {
      mark_to_root(u);
    }
  }
  return in_prime;
}

bool PruneUpward(const DataGraph& g, const ReachabilityOracle& idx,
                 const Gtpq& q, const std::vector<char>& in_prime,
                 std::vector<std::vector<NodeId>>* mat,
                 const GteaOptions& options, ParallelEvalContext* ctx,
                 EngineStats* stats) {
  using SetSummary = ReachabilityOracle::SetSummary;
  std::vector<std::unique_ptr<SetSummary>> succ(q.NumNodes());
  succ[q.root()] = idx.SummarizeSources((*mat)[q.root()]);

  for (QNodeId u : q.TopDownOrder()) {
    if (!in_prime[u]) continue;
    if (u != q.root() && succ[u] == nullptr) continue;  // parent skipped

    for (QNodeId c : q.node(u).children) {
      if (!in_prime[c]) continue;
      auto& cand = (*mat)[c];
      // Decided on the FULL candidate set, before any lane
      // partitioning: a chunk that happens to hold one candidate must
      // still be refined when the global set is larger.
      const bool singleton_skip =
          options.skip_singleton_upward && cand.size() <= 1;

      if (!singleton_skip) {
        if (q.node(c).incoming == EdgeType::kChild) {
          // Exact PC refinement: candidates must be children of some
          // candidate of u (Section 4.4 first strategy). Lanes expand
          // disjoint chunks of the parent set; the union is sorted
          // afterwards, so chunk boundaries cannot change the result.
          const auto& parents = (*mat)[u];
          const size_t lanes = LanesFor(ctx, parents.size());
          std::vector<std::vector<NodeId>> lane_union(
              std::max<size_t>(lanes, 1));
          std::vector<uint64_t> lane_nodes(std::max<size_t>(lanes, 1), 0);
          auto expand_chunk = [&](size_t begin, size_t end,
                                  std::vector<NodeId>* out,
                                  uint64_t* input_nodes) {
            for (size_t i = begin; i < end; ++i) {
              auto out_nbrs = g.OutNeighbors(parents[i]);
              *input_nodes += out_nbrs.size();
              out->insert(out->end(), out_nbrs.begin(), out_nbrs.end());
            }
          };
          if (lanes <= 1) {
            expand_chunk(0, parents.size(), &lane_union[0], &lane_nodes[0]);
          } else {
            ParallelRun(lanes, [&](size_t lane) {
              auto [begin, end] = LaneChunk(parents.size(), lane, lanes);
              expand_chunk(begin, end, &lane_union[lane], &lane_nodes[lane]);
            });
          }
          std::vector<NodeId> child_union;
          for (size_t lane = 0; lane < lane_union.size(); ++lane) {
            child_union.insert(child_union.end(), lane_union[lane].begin(),
                               lane_union[lane].end());
            stats->input_nodes += lane_nodes[lane];
          }
          std::sort(child_union.begin(), child_union.end());
          std::vector<NodeId> kept;
          std::set_intersection(cand.begin(), cand.end(),
                                child_union.begin(), child_union.end(),
                                std::back_inserter(kept));
          kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
          cand = std::move(kept);
        } else {
          // AD refinement: batched probes of candidate chunks against
          // the parent's summarized (pruned) candidate set, which is
          // shared read-only across lanes.
          auto refine_chunk = [&](size_t begin, size_t end,
                                  std::vector<NodeId>* kept,
                                  uint64_t* input_nodes) {
            std::span<const NodeId> chunk(cand.data() + begin, end - begin);
            std::vector<char> reached;
            idx.SetReachesBatch(*succ[u], chunk, &reached);
            *input_nodes += chunk.size();
            kept->reserve(chunk.size());
            for (size_t i = 0; i < chunk.size(); ++i) {
              if (reached[i]) kept->push_back(chunk[i]);
            }
          };
          const size_t lanes = LanesFor(ctx, cand.size());
          if (lanes <= 1) {
            std::vector<NodeId> kept;
            uint64_t input_nodes = 0;
            refine_chunk(0, cand.size(), &kept, &input_nodes);
            stats->input_nodes += input_nodes;
            cand = std::move(kept);
          } else {
            std::vector<std::vector<NodeId>> lane_kept(lanes);
            std::vector<uint64_t> lane_nodes(lanes, 0);
            ParallelRun(lanes, [&](size_t lane) {
              OracleLaneScope scope(idx, lane, ctx);
              auto [begin, end] = LaneChunk(cand.size(), lane, lanes);
              refine_chunk(begin, end, &lane_kept[lane], &lane_nodes[lane]);
            });
            std::vector<NodeId> kept;
            kept.reserve(cand.size());
            for (size_t lane = 0; lane < lanes; ++lane) {
              kept.insert(kept.end(), lane_kept[lane].begin(),
                          lane_kept[lane].end());
              stats->input_nodes += lane_nodes[lane];
            }
            cand = std::move(kept);
          }
        }
        if (cand.empty()) return false;
      }
      // The child needs a source summary iff it has prime children.
      for (QNodeId gc : q.node(c).children) {
        if (in_prime[gc]) {
          succ[c] = idx.SummarizeSources(cand);
          break;
        }
      }
    }
  }
  return true;
}

}  // namespace gtpq
