#include "core/prune.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"

namespace gtpq {

namespace {

// True when the PC child must be evaluated exactly during pruning:
// predicate-role PC children never reach the matching graph, so the
// AD-approximation cannot be repaired for them.
bool NeedsExactPc(const Gtpq& q, QNodeId child) {
  return q.node(child).incoming == EdgeType::kChild &&
         q.node(child).role == NodeRole::kPredicate;
}

// Union of in-neighbors of all candidates, sorted (the P_{u'} sets of
// Section 4.4).
std::vector<NodeId> CollectParents(const DataGraph& g,
                                   const std::vector<NodeId>& candidates,
                                   EngineStats* stats) {
  std::vector<NodeId> parents;
  for (NodeId w : candidates) {
    auto in = g.InNeighbors(w);
    stats->input_nodes += in.size();
    parents.insert(parents.end(), in.begin(), in.end());
  }
  std::sort(parents.begin(), parents.end());
  parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
  return parents;
}

}  // namespace

void PruneDownward(const DataGraph& g, const ThreeHopIndex& idx,
                   const Gtpq& q, std::vector<std::vector<NodeId>>* mat,
                   EngineStats* stats) {
  std::vector<Contour> contour(q.NumNodes());
  std::vector<char> val(q.NumNodes(), 0);

  for (QNodeId u : q.BottomUpOrder()) {
    auto& candidates = (*mat)[u];
    if (q.IsLeaf(u)) {
      contour[u] = MergePredLists(idx, candidates);
      continue;
    }

    const auto& children = q.node(u).children;
    std::vector<QNodeId> ad_children, pc_exact_children;
    for (QNodeId c : children) {
      (NeedsExactPc(q, c) ? pc_exact_children : ad_children).push_back(c);
    }
    std::vector<std::vector<NodeId>> parent_sets(pc_exact_children.size());
    for (size_t i = 0; i < pc_exact_children.size(); ++i) {
      parent_sets[i] = CollectParents(g, (*mat)[pc_exact_children[i]], stats);
    }

    // Group candidates by chain, descending sid within each chain so
    // that positive AD valuations are inherited down-chain.
    std::unordered_map<uint32_t, std::vector<NodeId>> chains;
    for (NodeId v : candidates) {
      chains[idx.PosOf(v).cid].push_back(v);
    }
    const logic::FormulaRef fext = q.ExtendedPredicate(u);

    std::vector<NodeId> kept;
    kept.reserve(candidates.size());
    for (auto& [cid, nodes] : chains) {
      std::sort(nodes.begin(), nodes.end(), [&idx](NodeId a, NodeId b) {
        const uint32_t sa = idx.PosOf(a).sid, sb = idx.PosOf(b).sid;
        return sa != sb ? sa > sb : a < b;
      });
      for (QNodeId c : children) val[c] = 0;
      uint32_t visited = UINT32_MAX;  // lowest walked start sid

      for (NodeId v : nodes) {
        ++stats->input_nodes;
        const auto cond = idx.CondOf(v);
        const ChainPos p = idx.PosOfCond(cond);
        const bool cyclic = idx.CondCyclic(cond);

        bool any_pending = false;
        for (QNodeId c : ad_children) {
          if (!val[c]) {
            // Self probe: v's own position against the child's contour.
            if (ProbePredecessorContour(contour[c], p, cyclic, v)) {
              val[c] = 1;
            } else {
              any_pending = true;
            }
          }
        }
        if (any_pending && p.sid < visited) {
          // Walk the not-yet-visited Lout segment [p.sid, visited).
          auto cur = idx.Lout(cond).empty() ? idx.NextWithLout(cond) : cond;
          while (cur != ThreeHopIndex::kNoCond &&
                 idx.PosOfCond(cur).sid < visited) {
            for (const ChainPos& e : idx.Lout(cur)) {
              ++idx.stats().elements_looked_up;
              for (QNodeId c : ad_children) {
                if (!val[c] &&
                    ProbePredecessorContour(contour[c], e, true, v)) {
                  val[c] = 1;
                }
              }
            }
            cur = idx.NextWithLout(cur);
          }
          visited = p.sid;
        }
        for (size_t i = 0; i < pc_exact_children.size(); ++i) {
          val[pc_exact_children[i]] =
              std::binary_search(parent_sets[i].begin(),
                                 parent_sets[i].end(), v)
                  ? 1
                  : 0;
        }
        const bool ok = logic::Evaluate(
            fext, [&](int var) { return val[static_cast<QNodeId>(var)]; });
        if (ok) kept.push_back(v);
      }
    }
    std::sort(kept.begin(), kept.end());
    candidates = std::move(kept);
    contour[u] = MergePredLists(idx, candidates);
  }
}

std::vector<char> ComputePrimeSubtree(const Gtpq& q) {
  std::vector<char> in_prime(q.NumNodes(), 0);
  auto mark_to_root = [&q, &in_prime](QNodeId u) {
    while (u != kInvalidQNode && !in_prime[u]) {
      in_prime[u] = 1;
      u = q.node(u).parent;
    }
  };
  mark_to_root(q.root());
  for (QNodeId o : q.outputs()) mark_to_root(o);
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    if (q.node(u).role == NodeRole::kBackbone &&
        q.node(u).incoming == EdgeType::kChild && u != q.root()) {
      mark_to_root(u);
    }
  }
  return in_prime;
}

bool PruneUpward(const DataGraph& g, const ThreeHopIndex& idx,
                 const Gtpq& q, const std::vector<char>& in_prime,
                 std::vector<std::vector<NodeId>>* mat,
                 const GteaOptions& options, EngineStats* stats) {
  std::vector<Contour> succ(q.NumNodes());
  std::vector<char> have_contour(q.NumNodes(), 0);
  succ[q.root()] = MergeSuccLists(idx, (*mat)[q.root()]);
  have_contour[q.root()] = 1;

  for (QNodeId u : q.TopDownOrder()) {
    if (!in_prime[u]) continue;
    if (u != q.root() && !have_contour[u]) continue;  // parent was skipped

    for (QNodeId c : q.node(u).children) {
      if (!in_prime[c]) continue;
      auto& cand = (*mat)[c];
      const bool singleton_skip =
          options.skip_singleton_upward && cand.size() <= 1;

      if (!singleton_skip) {
        if (q.node(c).incoming == EdgeType::kChild) {
          // Exact PC refinement: candidates must be children of some
          // candidate of u (Section 4.4 first strategy).
          std::vector<NodeId> child_union;
          for (NodeId v : (*mat)[u]) {
            auto out = g.OutNeighbors(v);
            stats->input_nodes += out.size();
            child_union.insert(child_union.end(), out.begin(), out.end());
          }
          std::sort(child_union.begin(), child_union.end());
          std::vector<NodeId> kept;
          std::set_intersection(cand.begin(), cand.end(),
                                child_union.begin(), child_union.end(),
                                std::back_inserter(kept));
          kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
          cand = std::move(kept);
        } else {
          // AD refinement via the parent's successor contour: per chain
          // in ascending sid order; after the first reachable candidate
          // all larger ones are reachable too (early break), and Lin
          // segments are walked at most once per chain.
          std::unordered_map<uint32_t, std::vector<NodeId>> chains;
          for (NodeId v : cand) chains[idx.PosOf(v).cid].push_back(v);
          std::vector<NodeId> kept;
          kept.reserve(cand.size());
          for (auto& [cid, nodes] : chains) {
            std::sort(nodes.begin(), nodes.end(),
                      [&idx](NodeId a, NodeId b) {
                        const uint32_t sa = idx.PosOf(a).sid;
                        const uint32_t sb = idx.PosOf(b).sid;
                        return sa != sb ? sa < sb : a < b;
                      });
            bool reached = false;
            uint32_t visited_floor = 0;
            bool have_floor = false;
            for (size_t i = 0; i < nodes.size(); ++i) {
              NodeId v = nodes[i];
              ++stats->input_nodes;
              if (!reached) {
                const auto cond = idx.CondOf(v);
                const ChainPos p = idx.PosOfCond(cond);
                if (ProbeSuccessorContour(succ[u], p,
                                          idx.CondCyclic(cond), v)) {
                  reached = true;
                } else if (!have_floor || p.sid > visited_floor) {
                  // Walk the new Lin segment (p.sid down to floor).
                  auto cur =
                      idx.Lin(cond).empty() ? idx.PrevWithLin(cond) : cond;
                  while (cur != ThreeHopIndex::kNoCond) {
                    const ChainPos pc = idx.PosOfCond(cur);
                    if (have_floor && pc.sid <= visited_floor) break;
                    for (const ChainPos& e : idx.Lin(cur)) {
                      ++idx.stats().elements_looked_up;
                      if (ProbeSuccessorContour(succ[u], e, true, v)) {
                        reached = true;
                        break;
                      }
                    }
                    if (reached) break;
                    cur = idx.PrevWithLin(cur);
                  }
                  visited_floor = p.sid;
                  have_floor = true;
                }
              }
              if (reached) kept.push_back(v);
            }
          }
          std::sort(kept.begin(), kept.end());
          cand = std::move(kept);
        }
        if (cand.empty()) return false;
      }
      // The child needs a successor contour iff it has prime children.
      for (QNodeId gc : q.node(c).children) {
        if (in_prime[gc]) {
          succ[c] = MergeSuccLists(idx, cand);
          have_contour[c] = 1;
          break;
        }
      }
    }
  }
  return true;
}

}  // namespace gtpq
