#include "core/prune.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"

namespace gtpq {

namespace {

// True when the PC child must be evaluated exactly during pruning:
// predicate-role PC children never reach the matching graph, so the
// AD-approximation cannot be repaired for them.
bool NeedsExactPc(const Gtpq& q, QNodeId child) {
  return q.node(child).incoming == EdgeType::kChild &&
         q.node(child).role == NodeRole::kPredicate;
}

// Union of in-neighbors of all candidates, sorted (the P_{u'} sets of
// Section 4.4).
std::vector<NodeId> CollectParents(const DataGraph& g,
                                   const std::vector<NodeId>& candidates,
                                   EngineStats* stats) {
  std::vector<NodeId> parents;
  for (NodeId w : candidates) {
    auto in = g.InNeighbors(w);
    stats->input_nodes += in.size();
    parents.insert(parents.end(), in.begin(), in.end());
  }
  std::sort(parents.begin(), parents.end());
  parents.erase(std::unique(parents.begin(), parents.end()), parents.end());
  return parents;
}

}  // namespace

void PruneDownward(const DataGraph& g, const ReachabilityOracle& idx,
                   const Gtpq& q, std::vector<std::vector<NodeId>>* mat,
                   EngineStats* stats) {
  using SetSummary = ReachabilityOracle::SetSummary;
  std::vector<char> val(q.NumNodes(), 0);

  for (QNodeId u : q.BottomUpOrder()) {
    auto& candidates = (*mat)[u];
    if (q.IsLeaf(u)) continue;

    const auto& children = q.node(u).children;
    std::vector<QNodeId> ad_children, pc_exact_children;
    for (QNodeId c : children) {
      (NeedsExactPc(q, c) ? pc_exact_children : ad_children).push_back(c);
    }
    std::vector<std::vector<NodeId>> parent_sets(pc_exact_children.size());
    for (size_t i = 0; i < pc_exact_children.size(); ++i) {
      parent_sets[i] = CollectParents(g, (*mat)[pc_exact_children[i]], stats);
    }

    // Summarize each AD child's (already pruned) candidate set once,
    // then decide reachability for all candidates and all children in
    // one batched call.
    std::vector<std::unique_ptr<SetSummary>> summaries;
    std::vector<const SetSummary*> summary_ptrs;
    summaries.reserve(ad_children.size());
    for (QNodeId c : ad_children) {
      summaries.push_back(idx.SummarizeTargets((*mat)[c]));
      summary_ptrs.push_back(summaries.back().get());
    }
    std::vector<std::vector<char>> reach;
    idx.ReachesSetsBatch(candidates, summary_ptrs, &reach);

    const logic::FormulaRef fext = q.ExtendedPredicate(u);
    std::vector<NodeId> kept;
    kept.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      const NodeId v = candidates[i];
      ++stats->input_nodes;
      for (size_t k = 0; k < ad_children.size(); ++k) {
        val[ad_children[k]] = reach[k][i];
      }
      for (size_t k = 0; k < pc_exact_children.size(); ++k) {
        val[pc_exact_children[k]] =
            std::binary_search(parent_sets[k].begin(),
                               parent_sets[k].end(), v)
                ? 1
                : 0;
      }
      const bool ok = logic::Evaluate(
          fext, [&](int var) { return val[static_cast<QNodeId>(var)]; });
      if (ok) kept.push_back(v);
    }
    candidates = std::move(kept);
  }
}

std::vector<char> ComputePrimeSubtree(const Gtpq& q) {
  std::vector<char> in_prime(q.NumNodes(), 0);
  auto mark_to_root = [&q, &in_prime](QNodeId u) {
    while (u != kInvalidQNode && !in_prime[u]) {
      in_prime[u] = 1;
      u = q.node(u).parent;
    }
  };
  mark_to_root(q.root());
  for (QNodeId o : q.outputs()) mark_to_root(o);
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    if (q.node(u).role == NodeRole::kBackbone &&
        q.node(u).incoming == EdgeType::kChild && u != q.root()) {
      mark_to_root(u);
    }
  }
  return in_prime;
}

bool PruneUpward(const DataGraph& g, const ReachabilityOracle& idx,
                 const Gtpq& q, const std::vector<char>& in_prime,
                 std::vector<std::vector<NodeId>>* mat,
                 const GteaOptions& options, EngineStats* stats) {
  using SetSummary = ReachabilityOracle::SetSummary;
  std::vector<std::unique_ptr<SetSummary>> succ(q.NumNodes());
  succ[q.root()] = idx.SummarizeSources((*mat)[q.root()]);

  for (QNodeId u : q.TopDownOrder()) {
    if (!in_prime[u]) continue;
    if (u != q.root() && succ[u] == nullptr) continue;  // parent skipped

    for (QNodeId c : q.node(u).children) {
      if (!in_prime[c]) continue;
      auto& cand = (*mat)[c];
      const bool singleton_skip =
          options.skip_singleton_upward && cand.size() <= 1;

      if (!singleton_skip) {
        if (q.node(c).incoming == EdgeType::kChild) {
          // Exact PC refinement: candidates must be children of some
          // candidate of u (Section 4.4 first strategy).
          std::vector<NodeId> child_union;
          for (NodeId v : (*mat)[u]) {
            auto out = g.OutNeighbors(v);
            stats->input_nodes += out.size();
            child_union.insert(child_union.end(), out.begin(), out.end());
          }
          std::sort(child_union.begin(), child_union.end());
          std::vector<NodeId> kept;
          std::set_intersection(cand.begin(), cand.end(),
                                child_union.begin(), child_union.end(),
                                std::back_inserter(kept));
          kept.erase(std::unique(kept.begin(), kept.end()), kept.end());
          cand = std::move(kept);
        } else {
          // AD refinement: one batched probe of all candidates against
          // the parent's summarized (pruned) candidate set.
          std::vector<char> reached;
          idx.SetReachesBatch(*succ[u], cand, &reached);
          stats->input_nodes += cand.size();
          std::vector<NodeId> kept;
          kept.reserve(cand.size());
          for (size_t i = 0; i < cand.size(); ++i) {
            if (reached[i]) kept.push_back(cand[i]);
          }
          cand = std::move(kept);
        }
        if (cand.empty()) return false;
      }
      // The child needs a source summary iff it has prime children.
      for (QNodeId gc : q.node(c).children) {
        if (in_prime[gc]) {
          succ[c] = idx.SummarizeSources(cand);
          break;
        }
      }
    }
  }
  return true;
}

}  // namespace gtpq
