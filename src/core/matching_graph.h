#ifndef GTPQ_CORE_MATCHING_GRAPH_H_
#define GTPQ_CORE_MATCHING_GRAPH_H_

#include <vector>

#include "core/eval_types.h"
#include "core/parallel_eval.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"
#include "reachability/reachability_index.h"

namespace gtpq {

/// The maximal matching graph Qg(G) of Section 4.3: per prime-subtree
/// query node the surviving candidates, and per candidate one branch
/// list per prime child — the graph representation of intermediate
/// results. A data node appears at most once per query node; an AD/PC
/// relationship is represented by exactly one edge.
class MatchingGraph {
 public:
  /// Candidates of query node u (ascending order, post-pruning).
  const std::vector<NodeId>& Candidates(QNodeId u) const {
    return cand_[u];
  }
  /// True when u belongs to the prime subtree this graph covers.
  bool Covers(QNodeId u) const { return !cand_[u].empty() || covered_[u]; }
  bool InTree(QNodeId u) const { return covered_[u] != 0; }

  /// Branch list: indices into Candidates(child) matched by candidate
  /// #i of u. `child_slot` indexes u's prime children in query order.
  const std::vector<uint32_t>& Branch(QNodeId u, size_t cand_index,
                                      size_t child_slot) const {
    return branches_[u][cand_index][child_slot];
  }
  /// Prime children of u, in query order.
  const std::vector<QNodeId>& PrimeChildren(QNodeId u) const {
    return prime_children_[u];
  }
  /// True when candidate #i of u survived reduction.
  bool Alive(QNodeId u, size_t cand_index) const {
    return alive_[u][cand_index] != 0;
  }

  size_t TotalNodes() const;
  size_t TotalEdges() const;

 private:
  friend MatchingGraph BuildMatchingGraph(
      const DataGraph& g, const ReachabilityOracle& idx, const Gtpq& q,
      const std::vector<char>& in_prime,
      const std::vector<std::vector<NodeId>>& mat,
      const GteaOptions& options, ParallelEvalContext* ctx,
      EngineStats* stats);
  friend bool ReduceMatchingGraph(const Gtpq& q, MatchingGraph* mg,
                                  EngineStats* stats);

  std::vector<char> covered_;
  std::vector<std::vector<NodeId>> cand_;
  std::vector<std::vector<QNodeId>> prime_children_;
  // branches_[u][cand_index][child_slot] -> candidate indices in child.
  std::vector<std::vector<std::vector<std::vector<uint32_t>>>> branches_;
  std::vector<std::vector<char>> alive_;
};

/// Computes edge matches for every prime query edge (Section 4.3). With
/// options.contour_matching_graph the child candidates are prepared
/// once and each parent candidate's successors are found in one oracle
/// scan (the per-candidate successor-contour pass on contour-capable
/// backends, with the ascending-chain early break); otherwise
/// straightforward pairwise reachability probes. PC edges use
/// adjacency.
///
/// With ctx->lanes > 1 each (query edge × parent candidate) tile is a
/// work-stealing unit: the prepared child-target summary is built once
/// and shared read-only, and every tile writes only its own branch list
/// (branches_[u][pi][slot]), so the built graph is identical to serial
/// no matter which lane claimed which tile.
MatchingGraph BuildMatchingGraph(const DataGraph& g,
                                 const ReachabilityOracle& idx,
                                 const Gtpq& q,
                                 const std::vector<char>& in_prime,
                                 const std::vector<std::vector<NodeId>>& mat,
                                 const GteaOptions& options,
                                 ParallelEvalContext* ctx,
                                 EngineStats* stats);

/// Fixpoint reduction: kills candidates lacking a parent edge (non-root
/// prime nodes) or missing a branch for some prime child — repairing the
/// PC-as-AD approximation and guaranteeing every surviving candidate
/// participates in a full match. Returns false iff some prime node lost
/// all candidates (empty answer).
bool ReduceMatchingGraph(const Gtpq& q, MatchingGraph* mg,
                         EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_CORE_MATCHING_GRAPH_H_
