#include "obs/metrics.h"

#include <bit>
#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <optional>

#include "common/logging.h"

namespace gtpq {
namespace obs {

size_t Counter::StripeIndex() {
  // Threads are assigned stripes round-robin on first use; a stable
  // per-thread stripe keeps the hot fetch_add on a line no other
  // long-lived writer shares (modulo kStripes-way collisions).
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - 4;
  return kSubBuckets * static_cast<size_t>(msb - 3) +
         static_cast<size_t>((value >> shift) & 15);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 16) return index;
  const size_t major = index / kSubBuckets;  // 1..60
  const int shift = static_cast<int>(major) - 1;
  const uint64_t lower = (16 + static_cast<uint64_t>(index % kSubBuckets))
                         << shift;
  return lower + ((uint64_t{1} << shift) - 1);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  out.counts.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

uint64_t Histogram::Snapshot::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  if (counts.size() < other.counts.size()) {
    counts.resize(other.counts.size(), 0);
  }
  for (size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  sum += other.sum;
}

double Histogram::Snapshot::Quantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-quantile sample (nearest-rank on [0, total-1]).
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) {
      return static_cast<double>(Histogram::BucketUpperBound(i));
    }
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(counts.size() - 1));
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  GTPQ_DCHECK(IsValidSeriesName(name)) << "bad series name: " << name;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  GTPQ_DCHECK(IsValidSeriesName(name)) << "bad series name: " << name;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  GTPQ_DCHECK(IsValidSeriesName(name)) << "bad series name: " << name;
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot Registry::Snap() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.counters.emplace_back(name, counter->Value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    out.gauges.emplace_back(name, gauge->Value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.histograms.emplace_back(name, histogram->Snap());
  }
  return out;
}

void SplitSeriesName(const std::string& name, std::string* base,
                     std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels) {
  std::string out(base);
  out.push_back('{');
  bool first = true;
  for (const auto& [key, value] : labels) {
    if (!first) out.push_back(',');
    first = false;
    out.append(key);
    out += "=\"";
    out += EscapeLabelValue(value);
    out.push_back('"');
  }
  out.push_back('}');
  return out;
}

namespace {

bool IsValidBaseName(std::string_view base) {
  if (base.empty()) return false;
  for (size_t i = 0; i < base.size(); ++i) {
    const char c = base[i];
    const bool alpha = std::isalpha(static_cast<unsigned char>(c)) ||
                       c == '_' || c == ':';
    if (i == 0 ? !alpha
               : !(alpha || std::isdigit(static_cast<unsigned char>(c)))) {
      return false;
    }
  }
  return true;
}

/// Parses an inner label block (`k="v",k2="v2"`) into key/value pairs,
/// honoring backslash escapes inside values (the inverse of
/// EscapeLabelValue, with unknown escapes passing the escaped char
/// through). Returns false when the text is not a well-formed pair
/// list.
bool ParseLabelPairs(
    std::string_view labels,
    std::vector<std::pair<std::string, std::string>>* out) {
  size_t i = 0;
  while (i < labels.size()) {
    const size_t eq = labels.find('=', i);
    if (eq == std::string_view::npos || eq == i) return false;
    const std::string_view key = labels.substr(i, eq - i);
    if (!IsValidBaseName(key) || key.find(':') != std::string_view::npos) {
      return false;
    }
    if (eq + 1 >= labels.size() || labels[eq + 1] != '"') return false;
    std::string value;
    size_t j = eq + 2;
    bool closed = false;
    while (j < labels.size()) {
      const char c = labels[j];
      if (c == '\\' && j + 1 < labels.size()) {
        const char escaped = labels[j + 1];
        value.push_back(escaped == 'n' ? '\n' : escaped);
        j += 2;
      } else if (c == '"') {
        closed = true;
        ++j;
        break;
      } else {
        value.push_back(c);
        ++j;
      }
    }
    if (!closed) return false;
    out->emplace_back(std::string(key), std::move(value));
    if (j == labels.size()) return true;
    if (labels[j] != ',' || j + 1 == labels.size()) return false;
    i = j + 1;
  }
  return true;
}

/// Re-renders a label block with every value escaped, or nullopt when
/// the block cannot be parsed.
std::optional<std::string> NormalizeLabels(const std::string& labels) {
  if (labels.empty()) return std::string();
  std::vector<std::pair<std::string, std::string>> pairs;
  if (!ParseLabelPairs(labels, &pairs)) return std::nullopt;
  std::string out;
  for (const auto& [key, value] : pairs) {
    if (!out.empty()) out.push_back(',');
    out += key + "=\"" + EscapeLabelValue(value) + "\"";
  }
  return out;
}

std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return base;
  std::string out = base + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

/// Samples grouped under one "# TYPE" line; the map key (family base
/// name) keeps related labeled series adjacent and the output stable.
struct Family {
  std::string type;
  std::vector<std::string> lines;
};

void Append(std::string* out, const std::map<std::string, Family>& fams) {
  for (const auto& [base, fam] : fams) {
    out->append("# TYPE " + base + " " + fam.type + "\n");
    for (const std::string& line : fam.lines) {
      out->append(line);
      out->push_back('\n');
    }
  }
}

/// Splits a series name and normalizes its label block for exposition.
/// Returns false (debug-checked) when the name is malformed — the
/// renderer skips such a series rather than emit invalid text.
bool SplitForRender(const std::string& name, std::string* base,
                    std::string* labels) {
  SplitSeriesName(name, base, labels);
  std::optional<std::string> normalized = NormalizeLabels(*labels);
  const bool ok = IsValidBaseName(*base) && normalized.has_value();
  GTPQ_DCHECK(ok) << "malformed series name: " << name;
  if (!ok) return false;
  *labels = *std::move(normalized);
  return true;
}

}  // namespace

bool IsValidSeriesName(const std::string& name) {
  std::string base, labels;
  SplitSeriesName(name, &base, &labels);
  if (!IsValidBaseName(base)) return false;
  if (labels.empty()) {
    // Either no label block at all, or a literal "{}"/dangling brace —
    // only the former is valid.
    return name == base;
  }
  std::vector<std::pair<std::string, std::string>> pairs;
  return ParseLabelPairs(labels, &pairs);
}

std::string RenderPrometheusSnapshot(const MetricsSnapshot& snapshot) {
  std::map<std::string, Family> fams;
  char buf[192];

  for (const auto& [name, value] : snapshot.counters) {
    std::string base, labels;
    if (!SplitForRender(name, &base, &labels)) continue;
    Family& fam = fams[base];
    fam.type = "counter";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64,
                  WithLabels(base, labels).c_str(), value);
    fam.lines.push_back(buf);
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string base, labels;
    if (!SplitForRender(name, &base, &labels)) continue;
    Family& fam = fams[base];
    fam.type = "gauge";
    std::snprintf(buf, sizeof(buf), "%s %" PRId64,
                  WithLabels(base, labels).c_str(), value);
    fam.lines.push_back(buf);
  }
  for (const auto& [name, snap] : snapshot.histograms) {
    std::string base, labels;
    if (!SplitForRender(name, &base, &labels)) continue;
    Family& fam = fams[base];
    fam.type = "histogram";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;  // cumulative edges stay exact
      cumulative += snap.counts[i];
      std::snprintf(
          buf, sizeof(buf), "%s %" PRIu64,
          WithLabels(base + "_bucket", labels,
                     "le=\"" + std::to_string(
                                   Histogram::BucketUpperBound(i)) +
                         "\"")
              .c_str(),
          cumulative);
      fam.lines.push_back(buf);
    }
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64,
                  WithLabels(base + "_bucket", labels, "le=\"+Inf\"")
                      .c_str(),
                  cumulative);
    fam.lines.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64,
                  WithLabels(base + "_sum", labels).c_str(), snap.sum);
    fam.lines.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64,
                  WithLabels(base + "_count", labels).c_str(), cumulative);
    fam.lines.push_back(buf);

    // Scrape-time quantiles as sibling gauge families (a histogram
    // family may not mix sample suffixes, so _p50 is its own family).
    const struct {
      const char* suffix;
      double q;
    } quantiles[] = {{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}};
    for (const auto& [suffix, q] : quantiles) {
      Family& qf = fams[base + suffix];
      qf.type = "gauge";
      std::snprintf(buf, sizeof(buf), "%s %.0f",
                    WithLabels(base + suffix, labels).c_str(),
                    snap.Quantile(q));
      qf.lines.push_back(buf);
    }
  }

  std::string out;
  Append(&out, fams);
  return out;
}

std::string Registry::RenderPrometheus() const {
  return RenderPrometheusSnapshot(Snap());
}

}  // namespace obs
}  // namespace gtpq
