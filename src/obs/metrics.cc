#include "obs/metrics.h"

#include <bit>
#include <cinttypes>
#include <cstdio>

namespace gtpq {
namespace obs {

size_t Counter::StripeIndex() {
  // Threads are assigned stripes round-robin on first use; a stable
  // per-thread stripe keeps the hot fetch_add on a line no other
  // long-lived writer shares (modulo kStripes-way collisions).
  static std::atomic<size_t> next{0};
  thread_local const size_t index =
      next.fetch_add(1, std::memory_order_relaxed) % kStripes;
  return index;
}

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  const int msb = 63 - std::countl_zero(value);
  const int shift = msb - 4;
  return kSubBuckets * static_cast<size_t>(msb - 3) +
         static_cast<size_t>((value >> shift) & 15);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 16) return index;
  const size_t major = index / kSubBuckets;  // 1..60
  const int shift = static_cast<int>(major) - 1;
  const uint64_t lower = (16 + static_cast<uint64_t>(index % kSubBuckets))
                         << shift;
  return lower + ((uint64_t{1} << shift) - 1);
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot out;
  out.counts.resize(kNumBuckets);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    out.counts[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  out.sum = sum_.load(std::memory_order_relaxed);
  return out;
}

uint64_t Histogram::Snapshot::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  return total;
}

void Histogram::Snapshot::Merge(const Snapshot& other) {
  if (counts.size() < other.counts.size()) {
    counts.resize(other.counts.size(), 0);
  }
  for (size_t i = 0; i < other.counts.size(); ++i) {
    counts[i] += other.counts[i];
  }
  sum += other.sum;
}

double Histogram::Snapshot::Quantile(double q) const {
  const uint64_t total = TotalCount();
  if (total == 0) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Rank of the q-quantile sample (nearest-rank on [0, total-1]).
  const uint64_t rank =
      static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) {
      return static_cast<double>(Histogram::BucketUpperBound(i));
    }
  }
  return static_cast<double>(
      Histogram::BucketUpperBound(counts.size() - 1));
}

Registry& Registry::Global() {
  static Registry* instance = new Registry();
  return *instance;
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

/// Splits "base{a=\"b\"}" into base and the inner label list ("" when
/// the series has no label block).
void SplitSeries(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string WithLabels(const std::string& base, const std::string& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return base;
  std::string out = base + "{" + labels;
  if (!labels.empty() && !extra.empty()) out += ",";
  out += extra + "}";
  return out;
}

/// Samples grouped under one "# TYPE" line; the map key (family base
/// name) keeps related labeled series adjacent and the output stable.
struct Family {
  std::string type;
  std::vector<std::string> lines;
};

void Append(std::string* out, const std::map<std::string, Family>& fams) {
  for (const auto& [base, fam] : fams) {
    out->append("# TYPE " + base + " " + fam.type + "\n");
    for (const std::string& line : fam.lines) {
      out->append(line);
      out->push_back('\n');
    }
  }
}

}  // namespace

std::string Registry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Family> fams;
  char buf[160];

  for (const auto& [name, counter] : counters_) {
    std::string base, labels;
    SplitSeries(name, &base, &labels);
    Family& fam = fams[base];
    fam.type = "counter";
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64, name.c_str(),
                  counter->Value());
    fam.lines.push_back(buf);
  }
  for (const auto& [name, gauge] : gauges_) {
    std::string base, labels;
    SplitSeries(name, &base, &labels);
    Family& fam = fams[base];
    fam.type = "gauge";
    std::snprintf(buf, sizeof(buf), "%s %" PRId64, name.c_str(),
                  gauge->Value());
    fam.lines.push_back(buf);
  }
  for (const auto& [name, histogram] : histograms_) {
    std::string base, labels;
    SplitSeries(name, &base, &labels);
    const Histogram::Snapshot snap = histogram->Snap();
    Family& fam = fams[base];
    fam.type = "histogram";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;  // cumulative edges stay exact
      cumulative += snap.counts[i];
      std::snprintf(
          buf, sizeof(buf), "%s %" PRIu64,
          WithLabels(base + "_bucket", labels,
                     "le=\"" + std::to_string(
                                   Histogram::BucketUpperBound(i)) +
                         "\"")
              .c_str(),
          cumulative);
      fam.lines.push_back(buf);
    }
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64,
                  WithLabels(base + "_bucket", labels, "le=\"+Inf\"")
                      .c_str(),
                  cumulative);
    fam.lines.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64,
                  WithLabels(base + "_sum", labels).c_str(), snap.sum);
    fam.lines.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%s %" PRIu64,
                  WithLabels(base + "_count", labels).c_str(), cumulative);
    fam.lines.push_back(buf);

    // Scrape-time quantiles as sibling gauge families (a histogram
    // family may not mix sample suffixes, so _p50 is its own family).
    const struct {
      const char* suffix;
      double q;
    } quantiles[] = {{"_p50", 0.50}, {"_p90", 0.90}, {"_p99", 0.99}};
    for (const auto& [suffix, q] : quantiles) {
      Family& qf = fams[base + suffix];
      qf.type = "gauge";
      std::snprintf(buf, sizeof(buf), "%s %.0f",
                    WithLabels(base + suffix, labels).c_str(),
                    snap.Quantile(q));
      qf.lines.push_back(buf);
    }
  }

  std::string out;
  Append(&out, fams);
  return out;
}

}  // namespace obs
}  // namespace gtpq
