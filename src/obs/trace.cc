#include "obs/trace.h"

#include <chrono>
#include <cinttypes>
#include <cstdio>

namespace gtpq {
namespace obs {

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

// Touch the epoch at static-init time so NowMicros is measured from
// (roughly) process start even when the first span is recorded late.
[[maybe_unused]] const auto kEpochInit = ProcessEpoch();

thread_local TraceContext g_current_trace;

uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

}  // namespace

double NowMicros() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - ProcessEpoch())
      .count();
}

uint64_t NewTraceId() {
  static std::atomic<uint64_t> counter{1};
  const uint64_t mix =
      static_cast<uint64_t>(
          std::chrono::steady_clock::now().time_since_epoch().count()) ^
      (counter.fetch_add(1, std::memory_order_relaxed) << 48);
  // SplitMix64 finalizer: spreads the clock bits so concurrent minters
  // do not collide on low-resolution clocks; never returns 0.
  uint64_t z = mix + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

TraceContext CurrentTrace() { return g_current_trace; }

ScopedTraceContext::ScopedTraceContext(TraceContext context)
    : saved_(g_current_trace) {
  g_current_trace = context;
}

ScopedTraceContext::~ScopedTraceContext() { g_current_trace = saved_; }

TraceRecorder::TraceRecorder() : next_span_id_(NewTraceId() | 1) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* instance = new TraceRecorder();
  return *instance;
}

void TraceRecorder::Record(uint64_t trace_id, uint64_t span_id,
                           uint64_t parent_span, std::string_view name,
                           double start_us, double dur_us) {
  if (trace_id == 0) return;
  Span span;
  span.trace_id = trace_id;
  span.span_id = span_id;
  span.parent_span = parent_span;
  span.name.assign(name);
  span.start_us = start_us;
  span.dur_us = dur_us;
  span.tid = ThreadOrdinal();
  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < kCapacity) {
    ring_.push_back(std::move(span));
  } else {
    ring_[next_] = std::move(span);
    next_ = (next_ + 1) % kCapacity;
  }
}

uint64_t TraceRecorder::Record(uint64_t trace_id, uint64_t parent_span,
                               std::string_view name, double start_us,
                               double dur_us) {
  if (trace_id == 0) return 0;
  const uint64_t span_id = NewSpanId();
  Record(trace_id, span_id, parent_span, name, start_us, dur_us);
  return span_id;
}

std::vector<Span> TraceRecorder::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Span> out;
  out.reserve(ring_.size());
  // Oldest first: [next_, end) then [0, next_) once the ring wrapped.
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<Span> TraceRecorder::SpansForTrace(uint64_t trace_id) const {
  std::vector<Span> out;
  for (Span& span : Spans()) {
    if (span.trace_id == trace_id) out.push_back(std::move(span));
  }
  return out;
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  ring_.clear();
  next_ = 0;
}

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string RenderChromeTrace(const std::vector<ProcessSpans>& processes) {
  std::string out = "{\"traceEvents\":[";
  char buf[352];
  bool first = true;
  for (const ProcessSpans& proc : processes) {
    std::snprintf(buf, sizeof(buf),
                  "%s{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                  "\"args\":{\"name\":\"%s\"}}",
                  first ? "" : ",", proc.pid,
                  JsonEscape(proc.process_name).c_str());
    first = false;
    out += buf;
    for (const Span& span : proc.spans) {
      // Span names are internal constants ("dispatch", "probe shard=2"),
      // never user input, so plain %s is JSON-safe here.
      std::snprintf(
          buf, sizeof(buf),
          ",{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
          "\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"trace_id\":\"%016" PRIx64
          "\",\"span_id\":\"%" PRIx64 "\",\"parent_span\":\"%" PRIx64
          "\"}}",
          span.name.c_str(), proc.pid, span.tid, span.start_us,
          span.dur_us, span.trace_id, span.span_id, span.parent_span);
      out += buf;
    }
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::RenderChromeTrace() const {
  return gtpq::obs::RenderChromeTrace({{"gtpq", 1, Spans()}});
}

}  // namespace obs
}  // namespace gtpq
