#ifndef GTPQ_OBS_METRICS_H_
#define GTPQ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace gtpq {
namespace obs {

/// Process-wide metrics primitives for the serving stack. Writers are
/// hot paths (per query, per probe, per frame), so every Record/Add is
/// a handful of relaxed atomic ops with no locks; readers (the OBSERVE
/// wire frame, tests) aggregate a consistent-enough snapshot without
/// ever stopping writers. All three primitives are registered by
/// static series name in the Registry and rendered together as
/// Prometheus text exposition.

/// Monotonic counter, striped across cache lines so concurrent writers
/// from different threads do not bounce one hot line. Value() sums the
/// stripes (relaxed; the total is exact once writers quiesce, and
/// monotonically fresh while they run).
class Counter {
 public:
  void Add(uint64_t n = 1) {
    stripes_[StripeIndex()].v.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const {
    uint64_t total = 0;
    for (const Stripe& s : stripes_) {
      total += s.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  static constexpr size_t kStripes = 8;
  static size_t StripeIndex();
  struct alignas(64) Stripe {
    std::atomic<uint64_t> v{0};
  };
  std::array<Stripe, kStripes> stripes_;
};

/// Last-writer-wins instantaneous value (epoch, queue depth).
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Log-linear latency histogram over non-negative integer samples
/// (microseconds by convention). Buckets: values below 16 map to one
/// bucket each; above that, every power-of-two range splits into 16
/// linear sub-buckets, so any quantile read off a bucket edge is within
/// a 1/16 relative error of the true sample — mergeable across threads
/// and processes by plain bucket-count addition, which is what makes
/// per-thread recording + scrape-time aggregation exact.
class Histogram {
 public:
  static constexpr size_t kSubBuckets = 16;
  /// 16 unit buckets + 16 sub-buckets per major power of two (2^4..2^63).
  static constexpr size_t kNumBuckets = 16 + 60 * kSubBuckets;

  void Record(uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  /// A point-in-time copy, mergeable and queryable without touching the
  /// live histogram again.
  struct Snapshot {
    std::vector<uint64_t> counts;  // kNumBuckets entries
    uint64_t sum = 0;

    uint64_t TotalCount() const;
    /// Adds `other`'s buckets into this snapshot.
    void Merge(const Snapshot& other);
    /// Upper edge of the bucket holding the q-quantile sample
    /// (q in [0, 1]); 0 when empty. Relative error <= 1/16 by the
    /// bucket-width bound above.
    double Quantile(double q) const;
  };
  Snapshot Snap() const;

  /// Bucket mapping, exposed for the exposition renderer and the merge
  /// property test.
  static size_t BucketIndex(uint64_t value);
  /// Largest value that lands in bucket `index` (the Prometheus `le`
  /// edge).
  static uint64_t BucketUpperBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> sum_{0};
};

/// A point-in-time copy of an entire registry: every series by name,
/// with full histogram buckets rather than rendered text. This is the
/// unit of cross-process federation — a shard exports its snapshot over
/// the wire, the router merges counters by addition and histograms via
/// Histogram::Snapshot::Merge, and the merged result renders exactly as
/// if one process had recorded every sample.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};

/// Escapes a label VALUE per the Prometheus text format: backslash,
/// double quote, and newline become \\, \", and \n.
std::string EscapeLabelValue(std::string_view value);

/// Builds a series name `base{k1="v1",k2="v2"}` with every value
/// escaped. The canonical way to register a labeled series.
std::string LabeledName(
    std::string_view base,
    std::initializer_list<std::pair<std::string_view, std::string_view>>
        labels);

/// Splits "base{inner}" into base and the inner label text (empty when
/// the series carries no label block).
void SplitSeriesName(const std::string& name, std::string* base,
                     std::string* labels);

/// True when `name` is a well-formed series name: a Prometheus metric
/// identifier, optionally followed by one brace-balanced label block of
/// parseable k="v" pairs. Registration DCHECKs this.
bool IsValidSeriesName(const std::string& name);

/// Renders a snapshot as Prometheus text exposition (version 0.0.4):
/// one TYPE line per family, counters/gauges as single samples,
/// histograms as cumulative _bucket{le=}/_sum/_count series (empty
/// buckets elided) plus _p50/_p90/_p99 gauge families computed from the
/// same snapshot. Label values are escaped on the way out, so a raw
/// quote or newline in a registered name cannot corrupt the exposition.
std::string RenderPrometheusSnapshot(const MetricsSnapshot& snapshot);

/// Name-keyed registry of every metric in the process. Series names
/// follow Prometheus conventions and may embed a label block:
/// "gtpq_queries_total", "gtpq_shard_probe_latency_us{shard=\"2\"}".
/// Get* registers on first use and returns a stable pointer (metrics
/// are never unregistered), so hot paths cache the pointer in a
/// function-local static and pay the map lookup once.
class Registry {
 public:
  static Registry& Global();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Every registered series, copied under the registry lock.
  MetricsSnapshot Snap() const;

  /// RenderPrometheusSnapshot(Snap()).
  std::string RenderPrometheus() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace gtpq

#endif  // GTPQ_OBS_METRICS_H_
