#ifndef GTPQ_OBS_TRACE_H_
#define GTPQ_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace gtpq {
namespace obs {

/// Request tracing across the serving stack. A trace id is minted by
/// the first hop (gteactl query --trace, or a test), carried as
/// optional trailing wire fields on QUERY/BATCH/PROBE frames, and
/// installed thread-locally while a request is being served — so code
/// deep in the engine (the cluster router's probes, most importantly)
/// can attach child spans without any parameter plumbing. Completed
/// spans land in a fixed-size recorder ring and export as Chrome
/// trace-event JSON (chrome://tracing, Perfetto).

/// Microseconds since process start on the steady clock — the shared
/// timebase every span's ts/dur is expressed in.
double NowMicros();

/// Non-zero, process-unique-enough trace id (clock + counter mix).
uint64_t NewTraceId();

/// The ambient trace of the work this thread is doing right now.
/// trace_id == 0 means "not traced" and makes every span call a no-op.
struct TraceContext {
  uint64_t trace_id = 0;
  /// Span id the next child span should parent under.
  uint64_t parent_span = 0;

  bool active() const { return trace_id != 0; }
};

TraceContext CurrentTrace();

/// Installs `context` for the current thread and restores the previous
/// context on destruction; worker-pool tasks wrap each unit of work so
/// contexts never leak across queued tasks.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One completed span.
struct Span {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span = 0;
  std::string name;
  double start_us = 0;  // NowMicros() timebase
  double dur_us = 0;
  uint32_t tid = 0;  // small per-thread ordinal, for trace-row grouping
};

/// One process's contribution to a stitched multi-process trace.
struct ProcessSpans {
  /// Perfetto process label, e.g. "router" or "shard 0 (127.0.0.1:7501)".
  std::string process_name;
  uint32_t pid = 1;
  std::vector<Span> spans;
};

/// Renders span groups from several processes as ONE Chrome trace-event
/// JSON document: a process_name "M" metadata event per group, then the
/// group's spans as "X" complete events under that pid. Parent links
/// (span ids in args) hold across processes because span ids are
/// randomly seeded per process and the parent id crosses the wire with
/// the request. Timestamps stay in each process's own NowMicros
/// timebase — steady clocks are not aligned across machines — so the
/// stitched view reads as per-process tracks of one trace.
std::string RenderChromeTrace(const std::vector<ProcessSpans>& processes);

/// Process-wide ring of the most recent completed spans. Writers take
/// one short mutex-protected append (tracing is opt-in per request, so
/// the lock is cold on untraced traffic); readers copy the ring.
class TraceRecorder {
 public:
  /// Span ids start at a random 64-bit seed so rings pulled from
  /// several processes can be stitched into one trace without id
  /// collisions (every process used to count from 1).
  TraceRecorder();

  static TraceRecorder& Global();

  /// Allocates a span id to hand to children before the span itself
  /// completes (the evaluate span must parent probe spans recorded
  /// mid-flight).
  uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Records a completed span under a pre-allocated id. No-op when
  /// trace_id is 0.
  void Record(uint64_t trace_id, uint64_t span_id, uint64_t parent_span,
              std::string_view name, double start_us, double dur_us);
  /// Same, allocating the span id; returns it (0 when untraced).
  uint64_t Record(uint64_t trace_id, uint64_t parent_span,
                  std::string_view name, double start_us, double dur_us);

  /// Most recent spans, oldest first.
  std::vector<Span> Spans() const;
  /// Spans of one trace, oldest first.
  std::vector<Span> SpansForTrace(uint64_t trace_id) const;
  /// Spans recorded since process start (ring overwrites do not reset
  /// this).
  uint64_t total_recorded() const {
    return total_.load(std::memory_order_relaxed);
  }
  void Clear();

  /// Chrome trace-event JSON ("X" complete events; ts/dur in
  /// microseconds, trace/span/parent ids in args).
  std::string RenderChromeTrace() const;

  static constexpr size_t kCapacity = 4096;

 private:
  mutable std::mutex mu_;
  std::vector<Span> ring_;
  size_t next_ = 0;  // ring cursor once full
  std::atomic<uint64_t> total_{0};
  std::atomic<uint64_t> next_span_id_;
};

}  // namespace obs
}  // namespace gtpq

#endif  // GTPQ_OBS_TRACE_H_
