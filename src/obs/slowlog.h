#ifndef GTPQ_OBS_SLOWLOG_H_
#define GTPQ_OBS_SLOWLOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/eval_types.h"

namespace gtpq {
namespace obs {

/// One admitted slow query: everything needed to diagnose it after the
/// fact without re-running it.
struct SlowQueryEntry {
  std::string query;  // line format, best-effort attr names
  uint64_t trace_id = 0;
  uint64_t epoch = 0;
  double wall_ms = 0;
  EngineStats stats;
};

/// Bounded log of the N worst queries by wall time the process has
/// served. Admission is a lock-free threshold check (the current
/// minimum once full), so the fast path for ordinary queries is one
/// relaxed load — building the entry (query text included) happens
/// only for queries that would actually displace one.
class SlowQueryLog {
 public:
  static SlowQueryLog& Global();

  static constexpr size_t kCapacity = 32;

  /// Cheap pre-check: would a query this slow enter the log right now?
  /// May race with concurrent inserts; Record re-checks under the lock.
  bool WouldAdmit(double wall_ms) const {
    return wall_ms > admit_floor_.load(std::memory_order_relaxed);
  }

  void Record(SlowQueryEntry entry);

  /// Current entries, worst first.
  std::vector<SlowQueryEntry> Entries() const;
  void Clear();

  /// Human-readable dump (the OBSERVE slowlog surface): one block per
  /// entry with the per-stage EngineStats breakdown, plus — when the
  /// query was traced — its shard-probe timeline pulled from the trace
  /// recorder by trace id.
  std::string Render() const;

 private:
  mutable std::mutex mu_;
  std::vector<SlowQueryEntry> entries_;  // unordered while filling
  /// Fastest wall time still in a full log; -1 admits everything while
  /// the log has room.
  std::atomic<double> admit_floor_{-1.0};
};

}  // namespace obs
}  // namespace gtpq

#endif  // GTPQ_OBS_SLOWLOG_H_
