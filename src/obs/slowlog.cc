#include "obs/slowlog.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "obs/trace.h"

namespace gtpq {
namespace obs {

SlowQueryLog& SlowQueryLog::Global() {
  static SlowQueryLog* instance = new SlowQueryLog();
  return *instance;
}

void SlowQueryLog::Record(SlowQueryEntry entry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.size() < kCapacity) {
    entries_.push_back(std::move(entry));
    if (entries_.size() == kCapacity) {
      const auto min_it = std::min_element(
          entries_.begin(), entries_.end(),
          [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
            return a.wall_ms < b.wall_ms;
          });
      admit_floor_.store(min_it->wall_ms, std::memory_order_relaxed);
    }
    return;
  }
  auto min_it = std::min_element(
      entries_.begin(), entries_.end(),
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        return a.wall_ms < b.wall_ms;
      });
  if (entry.wall_ms <= min_it->wall_ms) return;  // admission raced
  *min_it = std::move(entry);
  min_it = std::min_element(
      entries_.begin(), entries_.end(),
      [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
        return a.wall_ms < b.wall_ms;
      });
  admit_floor_.store(min_it->wall_ms, std::memory_order_relaxed);
}

std::vector<SlowQueryEntry> SlowQueryLog::Entries() const {
  std::vector<SlowQueryEntry> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = entries_;
  }
  std::sort(out.begin(), out.end(),
            [](const SlowQueryEntry& a, const SlowQueryEntry& b) {
              return a.wall_ms > b.wall_ms;
            });
  return out;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  admit_floor_.store(-1.0, std::memory_order_relaxed);
}

std::string SlowQueryLog::Render() const {
  const std::vector<SlowQueryEntry> entries = Entries();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "slow query log: %zu entr%s (worst first)\n",
                entries.size(), entries.size() == 1 ? "y" : "ies");
  out += buf;
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& e = entries[i];
    std::snprintf(buf, sizeof(buf),
                  "#%zu  wall_ms=%.3f  epoch=%" PRIu64 "  trace=%016" PRIx64
                  "\n",
                  i + 1, e.wall_ms, e.epoch, e.trace_id);
    out += buf;
    out += "  query: " + e.query + "\n";
    std::snprintf(buf, sizeof(buf),
                  "  input_nodes=%" PRIu64 " index_lookups=%" PRIu64
                  " intermediate=%" PRIu64 " join_ops=%" PRIu64 "\n",
                  e.stats.input_nodes, e.stats.index_lookups,
                  e.stats.intermediate_size, e.stats.join_ops);
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "  match=%.3fms prune_down=%.3fms prime=%.3fms "
                  "prune_up=%.3fms matching_graph=%.3fms enumerate=%.3fms "
                  "total=%.3fms\n",
                  e.stats.match_ms, e.stats.prune_down_ms, e.stats.prime_ms,
                  e.stats.prune_up_ms, e.stats.matching_graph_ms,
                  e.stats.enumerate_ms, e.stats.total_ms);
    out += buf;
    if (e.trace_id != 0) {
      const std::vector<Span> spans =
          TraceRecorder::Global().SpansForTrace(e.trace_id);
      for (const Span& span : spans) {
        std::snprintf(buf, sizeof(buf),
                      "  span %-24s start=%.1fus dur=%.1fus id=%" PRIx64
                      " parent=%" PRIx64 "\n",
                      span.name.c_str(), span.start_us, span.dur_us,
                      span.span_id, span.parent_span);
        out += buf;
      }
    }
  }
  return out;
}

}  // namespace obs
}  // namespace gtpq
