#ifndef GTPQ_OBS_FEDERATION_H_
#define GTPQ_OBS_FEDERATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace gtpq {
namespace obs {

/// Cross-process observability federation: binary codecs that carry a
/// whole registry (full histogram buckets, not rendered text) or a span
/// ring over the OBSERVE wire frame, plus the merge that folds N shard
/// snapshots into one cluster view. Histogram merging is exact by the
/// bucket-addition property of Histogram::Snapshot::Merge, so the
/// cluster-level _count/_bucket series equal what one process recording
/// every sample would have exported.

/// Binary metrics-snapshot codec: "GTPM" magic, u32 version, the three
/// series sections, and a trailing CRC-32 over everything before it.
/// Decode rejects truncation at any byte and any bit flip.
std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot);
Status DecodeMetricsSnapshot(std::string_view bytes, MetricsSnapshot* out);

/// Binary span-dump codec ("GTPS" magic, same CRC framing) — the
/// member-side export the router pulls to stitch one multi-process
/// Chrome trace.
std::string EncodeSpans(const std::vector<Span>& spans);
Status DecodeSpans(std::string_view bytes, std::vector<Span>* out);

/// One member's registry as scraped for a federated view.
struct MemberSnapshot {
  /// Value of the injected shard="..." label, e.g. "0".
  std::string shard_label;
  MetricsSnapshot snapshot;
};

/// Returns `name` with shard="label" injected as the FIRST label of its
/// block. Series already carrying a shard= label (the router's own
/// per-shard probe/health series) pass through unchanged — a duplicate
/// label key would be invalid exposition.
std::string WithShardLabel(const std::string& name,
                           std::string_view label);

/// Merges member registries into one federated snapshot:
///  * every `self` series (the caller's own registry) reappears with
///    shard="router" injected, so the front-end's counters never
///    collide with the cluster aggregates;
///  * every member series reappears with shard="<label>" injected;
///  * member counters and histograms additionally fold into UNLABELED
///    cluster aggregate series (sum / Snapshot::Merge across members
///    only), so per-shard `_count`s sum exactly to the cluster total.
///    Gauges are instantaneous per-process values (epoch, queue depth)
///    and stay per-shard only.
MetricsSnapshot BuildFederatedSnapshot(
    const MetricsSnapshot& self,
    const std::vector<MemberSnapshot>& members);

/// Interface the net tier uses to serve cluster-wide OBSERVE exports
/// when the process's oracle fronts other processes (the cluster
/// ShardRouter). Lives in obs/ so src/net/ never includes src/cluster/;
/// the server discovers it by dynamic_cast on the engine oracle, the
/// same seam SupportsNativeUpdates uses for update routing.
class ClusterObservable {
 public:
  virtual ~ClusterObservable() = default;

  /// Scrapes every member's binary snapshot and merges it with the
  /// local registry via BuildFederatedSnapshot. Unreachable members are
  /// skipped (the health gauges say why), never block the scrape.
  virtual Result<MetricsSnapshot> FederatedMetricsSnapshot() const = 0;

  /// Pulls span rings from every member (filtered to `trace_id` when
  /// non-zero) and groups them per process, self first, for the
  /// multi-process RenderChromeTrace.
  virtual Result<std::vector<ProcessSpans>> CollectClusterSpans(
      uint64_t trace_id) const = 0;
};

}  // namespace obs
}  // namespace gtpq

#endif  // GTPQ_OBS_FEDERATION_H_
