#include "obs/federation.h"

#include <bit>
#include <map>

#include "storage/serializer.h"

namespace gtpq {
namespace obs {

namespace {

constexpr uint32_t kSnapshotMagic = 0x4d505447;  // "GTPM"
constexpr uint32_t kSpansMagic = 0x53505447;     // "GTPS"
constexpr uint32_t kCodecVersion = 1;

/// Appends a CRC-32 over everything written so far.
void SealCrc(storage::Writer* w) {
  const uint32_t crc =
      storage::Crc32(w->buffer().data(), w->buffer().size());
  w->WriteU32(crc);
}

/// Validates the trailing CRC and returns the body (everything before
/// it). Any truncation loses or corrupts the CRC, so every prefix of a
/// valid encoding is rejected here.
Status CheckCrcAndStrip(std::string_view bytes, const char* what,
                        std::string_view* body) {
  if (bytes.size() < 12) {  // magic + version + CRC at minimum
    return Status::ParseError(std::string(what) + " payload truncated");
  }
  uint32_t stored = 0;
  for (int i = 3; i >= 0; --i) {
    stored = (stored << 8) |
             static_cast<uint8_t>(bytes[bytes.size() - 4 + i]);
  }
  const uint32_t actual = storage::Crc32(bytes.data(), bytes.size() - 4);
  if (stored != actual) {
    return Status::ParseError(std::string(what) + " checksum mismatch");
  }
  *body = bytes.substr(0, bytes.size() - 4);
  return Status::OK();
}

Status CheckHeader(storage::Reader* r, uint32_t magic, const char* what) {
  uint32_t got_magic = 0, version = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU32(&got_magic));
  if (got_magic != magic) {
    return Status::ParseError(std::string(what) + " bad magic");
  }
  GTPQ_RETURN_NOT_OK(r->ReadU32(&version));
  if (version != kCodecVersion) {
    return Status::ParseError(std::string(what) + " unsupported version " +
                              std::to_string(version));
  }
  return Status::OK();
}

}  // namespace

std::string EncodeMetricsSnapshot(const MetricsSnapshot& snapshot) {
  storage::Writer w;
  w.WriteU32(kSnapshotMagic);
  w.WriteU32(kCodecVersion);
  w.WriteU64(snapshot.counters.size());
  for (const auto& [name, value] : snapshot.counters) {
    w.WriteString(name);
    w.WriteU64(value);
  }
  w.WriteU64(snapshot.gauges.size());
  for (const auto& [name, value] : snapshot.gauges) {
    w.WriteString(name);
    w.WriteU64(static_cast<uint64_t>(value));
  }
  w.WriteU64(snapshot.histograms.size());
  for (const auto& [name, snap] : snapshot.histograms) {
    w.WriteString(name);
    w.WriteU64(snap.sum);
    // Sparse buckets: almost all of the 976 buckets are empty.
    uint64_t nonzero = 0;
    for (const uint64_t c : snap.counts) nonzero += (c != 0);
    w.WriteU64(nonzero);
    for (size_t i = 0; i < snap.counts.size(); ++i) {
      if (snap.counts[i] == 0) continue;
      w.WriteU32(static_cast<uint32_t>(i));
      w.WriteU64(snap.counts[i]);
    }
  }
  SealCrc(&w);
  return w.buffer();
}

Status DecodeMetricsSnapshot(std::string_view bytes,
                             MetricsSnapshot* out) {
  std::string_view body;
  GTPQ_RETURN_NOT_OK(CheckCrcAndStrip(bytes, "metrics snapshot", &body));
  storage::Reader r(body);
  GTPQ_RETURN_NOT_OK(CheckHeader(&r, kSnapshotMagic, "metrics snapshot"));
  *out = MetricsSnapshot();

  uint64_t count = 0;
  GTPQ_RETURN_NOT_OK(r.ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t value = 0;
    GTPQ_RETURN_NOT_OK(r.ReadString(&name));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&value));
    out->counters.emplace_back(std::move(name), value);
  }
  GTPQ_RETURN_NOT_OK(r.ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    uint64_t raw = 0;
    GTPQ_RETURN_NOT_OK(r.ReadString(&name));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&raw));
    out->gauges.emplace_back(std::move(name),
                             static_cast<int64_t>(raw));
  }
  GTPQ_RETURN_NOT_OK(r.ReadU64(&count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string name;
    Histogram::Snapshot snap;
    uint64_t nonzero = 0;
    GTPQ_RETURN_NOT_OK(r.ReadString(&name));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&snap.sum));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&nonzero));
    snap.counts.assign(Histogram::kNumBuckets, 0);
    for (uint64_t b = 0; b < nonzero; ++b) {
      uint32_t index = 0;
      uint64_t bucket = 0;
      GTPQ_RETURN_NOT_OK(r.ReadU32(&index));
      GTPQ_RETURN_NOT_OK(r.ReadU64(&bucket));
      if (index >= Histogram::kNumBuckets) {
        return Status::ParseError("metrics snapshot bucket index " +
                                  std::to_string(index) + " out of range");
      }
      snap.counts[index] = bucket;
    }
    out->histograms.emplace_back(std::move(name), std::move(snap));
  }
  return r.ExpectEnd();
}

std::string EncodeSpans(const std::vector<Span>& spans) {
  storage::Writer w;
  w.WriteU32(kSpansMagic);
  w.WriteU32(kCodecVersion);
  w.WriteU64(spans.size());
  for (const Span& span : spans) {
    w.WriteU64(span.trace_id);
    w.WriteU64(span.span_id);
    w.WriteU64(span.parent_span);
    w.WriteString(span.name);
    w.WriteU64(std::bit_cast<uint64_t>(span.start_us));
    w.WriteU64(std::bit_cast<uint64_t>(span.dur_us));
    w.WriteU32(span.tid);
  }
  SealCrc(&w);
  return w.buffer();
}

Status DecodeSpans(std::string_view bytes, std::vector<Span>* out) {
  std::string_view body;
  GTPQ_RETURN_NOT_OK(CheckCrcAndStrip(bytes, "span dump", &body));
  storage::Reader r(body);
  GTPQ_RETURN_NOT_OK(CheckHeader(&r, kSpansMagic, "span dump"));
  uint64_t count = 0;
  GTPQ_RETURN_NOT_OK(r.ReadU64(&count));
  out->clear();
  for (uint64_t i = 0; i < count; ++i) {
    Span span;
    uint64_t start_bits = 0, dur_bits = 0;
    GTPQ_RETURN_NOT_OK(r.ReadU64(&span.trace_id));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&span.span_id));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&span.parent_span));
    GTPQ_RETURN_NOT_OK(r.ReadString(&span.name));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&start_bits));
    GTPQ_RETURN_NOT_OK(r.ReadU64(&dur_bits));
    GTPQ_RETURN_NOT_OK(r.ReadU32(&span.tid));
    span.start_us = std::bit_cast<double>(start_bits);
    span.dur_us = std::bit_cast<double>(dur_bits);
    out->push_back(std::move(span));
  }
  return r.ExpectEnd();
}

namespace {

bool HasShardLabel(const std::string& name) {
  std::string base, labels;
  SplitSeriesName(name, &base, &labels);
  return labels.rfind("shard=", 0) == 0 ||
         labels.find(",shard=") != std::string::npos;
}

}  // namespace

std::string WithShardLabel(const std::string& name,
                           std::string_view label) {
  if (HasShardLabel(name)) return name;
  std::string base, labels;
  SplitSeriesName(name, &base, &labels);
  std::string inject = "shard=\"";
  inject += EscapeLabelValue(label);
  inject.push_back('"');
  if (labels.empty()) return base + "{" + inject + "}";
  return base + "{" + inject + "," + labels + "}";
}

MetricsSnapshot BuildFederatedSnapshot(
    const MetricsSnapshot& self,
    const std::vector<MemberSnapshot>& members) {
  MetricsSnapshot out;
  for (const auto& [name, value] : self.counters) {
    out.counters.emplace_back(WithShardLabel(name, "router"), value);
  }
  for (const auto& [name, value] : self.gauges) {
    out.gauges.emplace_back(WithShardLabel(name, "router"), value);
  }
  for (const auto& [name, snap] : self.histograms) {
    out.histograms.emplace_back(WithShardLabel(name, "router"), snap);
  }

  // Aggregates fold MEMBER series only: the unlabeled cluster series is
  // exactly the sum over the shard-labeled ones, which is the invariant
  // scrapers (and CI) check. Series already shard-labeled at a member
  // are left out of the fold — injecting would duplicate the label and
  // summing would double-count a router scraped as a member.
  std::map<std::string, uint64_t> agg_counters;
  std::map<std::string, Histogram::Snapshot> agg_histograms;
  for (const MemberSnapshot& member : members) {
    for (const auto& [name, value] : member.snapshot.counters) {
      out.counters.emplace_back(WithShardLabel(name, member.shard_label),
                                value);
      if (!HasShardLabel(name)) agg_counters[name] += value;
    }
    for (const auto& [name, value] : member.snapshot.gauges) {
      out.gauges.emplace_back(WithShardLabel(name, member.shard_label),
                              value);
    }
    for (const auto& [name, snap] : member.snapshot.histograms) {
      out.histograms.emplace_back(WithShardLabel(name, member.shard_label),
                                  snap);
      if (!HasShardLabel(name)) agg_histograms[name].Merge(snap);
    }
  }
  for (const auto& [name, value] : agg_counters) {
    out.counters.emplace_back(name, value);
  }
  for (auto& [name, snap] : agg_histograms) {
    out.histograms.emplace_back(name, std::move(snap));
  }
  return out;
}

}  // namespace obs
}  // namespace gtpq
