#ifndef GTPQ_DYNAMIC_STREAM_GEN_H_
#define GTPQ_DYNAMIC_STREAM_GEN_H_

#include <cstdint>
#include <vector>

#include "dynamic/graph_delta.h"
#include "graph/data_graph.h"

namespace gtpq {

/// Shape of a synthetic update stream.
struct UpdateStreamOptions {
  size_t rounds = 8;
  size_t ops_per_round = 64;
  /// Share of each round's ops that delete (edges/vertices) rather
  /// than insert.
  double del_ratio = 0.3;
  /// Share of ops in each half that touch vertices rather than edges.
  double node_op_share = 0.15;
  uint64_t seed = 1;
};

/// Deterministic valid update stream over `base`, shared by the
/// update-stream bench and tests: every candidate op is validated (in
/// the grouped order UpdateBatch applies — node adds, edge adds, edge
/// removals, vertex removals) against a mirror GraphDelta, so every
/// produced batch replays cleanly against a snapshot chain or the
/// serving runtime following the same stream.
std::vector<UpdateBatch> GenerateUpdateStream(
    const DataGraph& base, const UpdateStreamOptions& options);

}  // namespace gtpq

#endif  // GTPQ_DYNAMIC_STREAM_GEN_H_
