#include "dynamic/update_io.h"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <ostream>

#include "common/string_util.h"

namespace gtpq {

namespace {

Status Malformed(size_t line_no, const std::string& line) {
  return Status::ParseError("malformed update line " +
                            std::to_string(line_no) + ": " + line);
}

bool ParseU32(const std::string& text, NodeId* out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' ||
      v > std::numeric_limits<NodeId>::max()) {
    return false;
  }
  *out = static_cast<NodeId>(v);
  return true;
}

bool ParseI64(const std::string& text, int64_t* out) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

Status SaveUpdateBatches(std::span<const UpdateBatch> batches,
                         std::ostream* out) {
  (*out) << "gtpq-updates v1\n";
  for (const UpdateBatch& batch : batches) {
    (*out) << "batch\n";
    for (int64_t label : batch.add_nodes) {
      (*out) << "addnode " << label << "\n";
    }
    for (const EdgeRef& e : batch.add_edges) {
      (*out) << "addedge " << e.from << " " << e.to << "\n";
    }
    for (const EdgeRef& e : batch.remove_edges) {
      (*out) << "rmedge " << e.from << " " << e.to << "\n";
    }
    for (NodeId v : batch.remove_nodes) {
      (*out) << "rmnode " << v << "\n";
    }
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status SaveUpdateBatchesToFile(std::span<const UpdateBatch> batches,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return SaveUpdateBatches(batches, &out);
}

Result<std::vector<UpdateBatch>> LoadUpdateBatches(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) ||
      StripWhitespace(line) != "gtpq-updates v1") {
    return Status::ParseError("missing 'gtpq-updates v1' header");
  }
  std::vector<UpdateBatch> batches;
  bool open_batch = false;
  size_t line_no = 1;
  auto current = [&]() -> UpdateBatch& {
    if (!open_batch) {
      batches.emplace_back();
      open_batch = true;
    }
    return batches.back();
  };
  while (std::getline(*in, line)) {
    ++line_no;
    const std::string stripped(StripWhitespace(line));
    if (stripped.empty() || stripped[0] == '#') continue;
    const std::vector<std::string> parts = Split(stripped, ' ');
    if (parts[0] == "batch") {
      if (parts.size() != 1) return Malformed(line_no, line);
      batches.emplace_back();
      open_batch = true;
      continue;
    }
    if (parts[0] == "addnode") {
      int64_t label = 0;
      if (parts.size() != 2 || !ParseI64(parts[1], &label)) {
        return Malformed(line_no, line);
      }
      current().add_nodes.push_back(label);
      continue;
    }
    if (parts[0] == "addedge" || parts[0] == "rmedge") {
      EdgeRef e;
      if (parts.size() != 3 || !ParseU32(parts[1], &e.from) ||
          !ParseU32(parts[2], &e.to)) {
        return Malformed(line_no, line);
      }
      auto& list = parts[0] == "addedge" ? current().add_edges
                                         : current().remove_edges;
      list.push_back(e);
      continue;
    }
    if (parts[0] == "rmnode") {
      NodeId v = 0;
      if (parts.size() != 2 || !ParseU32(parts[1], &v)) {
        return Malformed(line_no, line);
      }
      current().remove_nodes.push_back(v);
      continue;
    }
    return Malformed(line_no, line);
  }
  return batches;
}

Result<std::vector<UpdateBatch>> LoadUpdateBatchesFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open update file: " + path);
  return LoadUpdateBatches(&in);
}

}  // namespace gtpq
