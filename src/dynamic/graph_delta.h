#ifndef GTPQ_DYNAMIC_GRAPH_DELTA_H_
#define GTPQ_DYNAMIC_GRAPH_DELTA_H_

#include <cstdint>
#include <limits>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "graph/data_graph.h"
#include "graph/digraph.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// A directed edge reference inside one update. Unlike std::pair this
/// is trivially copyable, so edge lists serialize through the POD-vector
/// codecs directly.
struct EdgeRef {
  NodeId from = 0;
  NodeId to = 0;

  bool operator==(const EdgeRef&) const = default;
};

/// Label stamped on removed vertices in materialized snapshots. The
/// vertex id itself is never reused (ids stay dense and stable across
/// snapshots); removal detaches every incident edge and retires the
/// label so ordinary label predicates stop matching the tombstone.
inline constexpr int64_t kRemovedNodeLabel =
    std::numeric_limits<int64_t>::min();

/// One atomic group of graph mutations, expressed against the *current*
/// view (base graph + previously applied deltas). Operations apply in
/// field order: node additions first (new ids are appended after the
/// current node count, in vector order), then edge additions (which may
/// reference the just-added nodes), then edge removals, then vertex
/// removals (which drop every incident edge that survived so far).
struct UpdateBatch {
  /// Labels of appended vertices.
  std::vector<int64_t> add_nodes;
  std::vector<EdgeRef> add_edges;
  std::vector<EdgeRef> remove_edges;
  std::vector<NodeId> remove_nodes;

  size_t NumOps() const {
    return add_nodes.size() + add_edges.size() + remove_edges.size() +
           remove_nodes.size();
  }
  bool empty() const { return NumOps() == 0; }
};

/// Accumulated, validated difference between an immutable base Digraph
/// and the current graph view — the mutable half of the GenomicsDB-style
/// "frozen base artifact + delta fragments" model the dynamic subsystem
/// is built on. A delta never renumbers: base ids keep their meaning,
/// added vertices extend the id space, removed vertices leave tombstone
/// holes.
///
/// Apply() validates each batch against the combined view and rejects
/// (without mutating) duplicate edges, removals of absent edges,
/// references to removed or out-of-range vertices, and double removals,
/// so a delta can only ever describe a reachable state of the graph.
class GraphDelta {
 public:
  GraphDelta() = default;
  /// An empty delta over a base graph with `base_nodes` vertices.
  explicit GraphDelta(size_t base_nodes) : base_nodes_(base_nodes) {}

  /// Validates `batch` against base+this and folds it in. On error the
  /// delta is left untouched and the status names the offending op.
  /// `base` must be the finalized graph this delta was created over.
  Status Apply(const Digraph& base, const UpdateBatch& batch);

  /// Apply without the atomicity scratch copy: on error, mutations from
  /// ops preceding the offending one are kept (the version is not
  /// bumped). For SINGLE-op batches rejection happens before any
  /// mutation, which is what op-by-op generators
  /// (dynamic/stream_gen.h) rely on to validate candidates in O(op)
  /// instead of O(accumulated delta) per candidate. Prefer Apply()
  /// everywhere else.
  Status ApplyInPlace(const Digraph& base, const UpdateBatch& batch);

  // --- View accessors ---------------------------------------------------

  size_t base_nodes() const { return base_nodes_; }
  /// Current vertex count (base + added); removed ids stay counted.
  size_t NumNodes() const { return base_nodes_ + added_labels_.size(); }
  size_t NumAddedNodes() const { return added_labels_.size(); }
  size_t NumAddedEdges() const { return num_added_edges_; }
  size_t NumRemovedEdges() const { return removed_edge_set_.size(); }
  size_t NumRemovedNodes() const { return removed_node_set_.size(); }
  /// Total accumulated operations — the auto-compaction signal.
  size_t NumOps() const {
    return NumAddedNodes() + NumAddedEdges() + NumRemovedEdges() +
           NumRemovedNodes();
  }
  bool empty() const { return NumOps() == 0; }
  /// Batches folded in so far.
  uint64_t version() const { return version_; }

  bool NodeRemoved(NodeId v) const {
    return removed_node_set_.count(v) != 0;
  }
  /// Removed vertex ids, sorted ascending.
  std::vector<NodeId> RemovedNodes() const;
  bool EdgeRemoved(NodeId from, NodeId to) const {
    return removed_edge_set_.count(EdgeKey(from, to)) != 0;
  }
  /// Added out-neighbors of v, sorted ascending; empty when none.
  std::span<const NodeId> AddedOut(NodeId v) const;
  /// Label of added vertex base_nodes()+i.
  int64_t AddedLabel(size_t i) const { return added_labels_[i]; }

  /// Enumerates removed edges (unordered) until fn returns true;
  /// reports whether a callback did.
  template <typename Fn>
  bool AnyRemovedEdge(Fn&& fn) const {
    for (uint64_t key : removed_edge_set_) {
      if (fn(static_cast<NodeId>(key >> 32),
             static_cast<NodeId>(key & 0xffffffffu))) {
        return true;
      }
    }
    return false;
  }
  /// Enumerates added edges (unordered) until fn returns true.
  template <typename Fn>
  bool AnyAddedEdge(Fn&& fn) const {
    for (const auto& [v, targets] : added_out_) {
      for (NodeId w : targets) {
        if (fn(v, w)) return true;
      }
    }
    return false;
  }

  /// True iff edge (from, to) exists in the combined base+delta view.
  bool HasEdgeInView(const Digraph& base, NodeId from, NodeId to) const;

  // --- Materialization --------------------------------------------------

  /// The combined view as a standalone finalized Digraph (compaction
  /// and golden rebuilds).
  Digraph MaterializeDigraph(const Digraph& base) const;

  /// The combined view as a standalone finalized DataGraph: labels and
  /// attribute tuples are copied (sharing `base`'s attribute namespace,
  /// so queries interned against the base keep their ids), added
  /// vertices carry their batch labels, removed vertices keep their id
  /// but lose every edge and get kRemovedNodeLabel. Spanning-tree
  /// annotation survives exactly where the tree edge does.
  DataGraph MaterializeDataGraph(const DataGraph& base) const;

  // --- Persistence (storage/index_io.h delta sections) ------------------

  void Save(storage::Writer* w) const;
  static Result<GraphDelta> Load(storage::Reader* r);

 private:
  static uint64_t EdgeKey(NodeId from, NodeId to) {
    return (static_cast<uint64_t>(from) << 32) | to;
  }

  void InsertAddedEdge(NodeId from, NodeId to);
  void EraseAddedEdge(NodeId from, NodeId to);

  size_t base_nodes_ = 0;
  std::vector<int64_t> added_labels_;
  // Added-edge adjacency, forward and reverse, each list sorted. The
  // reverse map exists so vertex removal can drop in-edges without a
  // full forward scan.
  std::unordered_map<NodeId, std::vector<NodeId>> added_out_, added_in_;
  std::unordered_set<uint64_t> removed_edge_set_;
  std::unordered_set<NodeId> removed_node_set_;
  size_t num_added_edges_ = 0;
  uint64_t version_ = 0;
};

}  // namespace gtpq

#endif  // GTPQ_DYNAMIC_GRAPH_DELTA_H_
