#ifndef GTPQ_DYNAMIC_DELTA_OVERLAY_H_
#define GTPQ_DYNAMIC_DELTA_OVERLAY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/per_thread.h"
#include "common/status.h"
#include "dynamic/graph_delta.h"
#include "reachability/reachability_index.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// Tuning knobs for DeltaOverlayOracle.
struct DeltaOverlayOptions {
  /// WithUpdates() auto-compacts (rebuilds the inner index over the
  /// materialized graph and resets the delta) once accumulated ops
  /// exceed max(min_compact_ops, compact_fraction * base edges). Set
  /// min_compact_ops to SIZE_MAX to disable auto-compaction.
  size_t min_compact_ops = 1024;
  double compact_fraction = 0.10;
};

/// Incremental-maintenance decorator (spec "delta:<inner>"): an
/// immutable inner index built over a frozen base graph, plus a
/// GraphDelta of pending mutations. Point reachability is answered over
/// the combined view with a bounded incremental search that leans on
/// the base index wherever it is still sound:
///
///  * empty delta — delegate to the inner index outright;
///  * insert-only delta — a positive inner answer is still a proof
///    (base paths survive), and the search probes the inner index at
///    every visited vertex, so it terminates as soon as it climbs back
///    onto indexed territory;
///  * delete-only delta — a negative inner answer is still a proof
///    (current reachability is a subset of base), and the search prunes
///    every vertex the base index says cannot reach the target;
///  * mixed delta — plain BFS over the combined view, bounded by the
///    graph; the auto-compaction threshold keeps this regime short.
///
/// Set-reachability uses the pairwise ReachabilityOracle defaults, so
/// the decorator conforms to the whole oracle API and GTEA engines can
/// sit on it unchanged.
///
/// Instances are IMMUTABLE once built — updates produce new snapshots:
/// WithUpdates() returns a fresh oracle sharing the same inner index
/// (and base graph) with the delta extended, and Compact() folds the
/// delta into a rebuilt inner index. The serving runtime swaps the
/// shared_ptr, so readers on the old snapshot never block writers.
class DeltaOverlayOracle : public ReachabilityOracle {
 public:
  /// Wraps a factory-built inner oracle over `base`, starting from an
  /// empty delta. UNLIKE every other backend (which is self-contained
  /// once built), the overlay ALIASES `base` — the incremental search
  /// walks its adjacency at probe time — so `base` must strictly
  /// outlive the oracle. Snapshots created by Compact() (and loaded
  /// from disk) own their materialized base instead.
  DeltaOverlayOracle(std::shared_ptr<const ReachabilityOracle> inner,
                     const Digraph* base,
                     DeltaOverlayOptions options = {});

  std::string_view name() const override { return name_; }
  bool Reaches(NodeId from, NodeId to) const override;

  /// Delta-aware set reachability: summaries wrap the inner index's
  /// NATIVE set summaries over the base-id members, so a set probe
  /// costs one batched inner probe wherever a regime proof applies —
  /// empty delta (delegate outright), insert-only (a positive inner
  /// answer is a proof), delete-only (a negative inner answer is a
  /// proof) — and only the residual cases fall back to pairwise
  /// Reaches() with its memoized prefilters. Native probes bump
  /// IndexStats::queries ONCE per set probe (the pairwise defaults
  /// bump it per member), which is what the unit tests assert.
  std::unique_ptr<SetSummary> SummarizeTargets(
      std::span<const NodeId> members) const override;
  std::unique_ptr<SetSummary> SummarizeSources(
      std::span<const NodeId> members) const override;
  bool ReachesSet(NodeId from, const SetSummary& targets) const override;
  bool SetReaches(const SetSummary& sources, NodeId to) const override;
  /// Successor scans delegate to the inner index verbatim when the
  /// delta is empty (post-compaction snapshots); otherwise pairwise.
  std::unique_ptr<SetSummary> PrepareSuccessorTargets(
      std::span<const NodeId> targets) const override;
  void SuccessorsAmong(NodeId from, const SetSummary& targets,
                       std::vector<uint32_t>* out) const override;

  const ReachabilityOracle& inner() const { return *inner_; }
  const Digraph& base_graph() const { return *base_; }
  const GraphDelta& delta() const { return delta_; }
  const DeltaOverlayOptions& options() const { return options_; }
  /// Current vertex-id space (base + added vertices).
  size_t NumNodes() const { return delta_.NumNodes(); }
  /// Pending (un-compacted) mutation count.
  size_t PendingOps() const { return delta_.NumOps(); }
  /// Vertex ids removed anywhere along this snapshot chain, INCLUDING
  /// removals already folded away by compaction (a compacted tombstone
  /// is just an isolated vertex in the rebuilt base). WithUpdates
  /// rejects batches touching them, so "removed ids stay dead" holds
  /// across compaction and across save/load. Sorted ascending.
  const std::vector<NodeId>& retired_nodes() const { return retired_; }
  /// Update batches absorbed since the last compaction base.
  uint64_t version() const { return delta_.version(); }
  /// Compactions performed along this snapshot chain.
  uint64_t compactions() const { return compactions_; }
  bool ShouldCompact() const;

  /// A new snapshot with `batch` folded into the delta (inner index and
  /// base graph shared). Auto-compacts past the options() threshold.
  /// Rejects invalid batches without producing a snapshot.
  Result<std::shared_ptr<const DeltaOverlayOracle>> WithUpdates(
      const UpdateBatch& batch) const;

  /// A new snapshot whose inner index is rebuilt (through the factory
  /// spec of the inner oracle) over the materialized combined graph,
  /// with an empty delta.
  Result<std::shared_ptr<const DeltaOverlayOracle>> Compact() const;

  /// The combined view as a standalone finalized graph.
  Digraph MaterializeGraph() const {
    return delta_.MaterializeDigraph(*base_);
  }

  /// Persistence hooks (storage/index_io.h): the body is the immutable
  /// base graph, the pending delta section, and the nested inner-index
  /// body, so a load reconstructs the snapshot without the original
  /// graph object.
  void SaveBody(storage::Writer* w) const;
  static Result<std::unique_ptr<DeltaOverlayOracle>> LoadBody(
      std::string_view inner_spec, storage::Reader* r);

 private:
  DeltaOverlayOracle() = default;

  /// Inner point probe with decorator accounting: the inner index's
  /// element lookups roll up into this oracle's stats slot.
  bool InnerReaches(NodeId from, NodeId to) const;
  bool SearchReaches(NodeId from, NodeId to) const;
  /// Prefilter facts (memoized per thread; snapshots are immutable, so
  /// entries never invalidate): can a removed edge sever base paths
  /// out of `from`? does any added edge lead (via base) into `to`?
  bool SourceTainted(NodeId from) const;
  bool UsableAddInto(NodeId to) const;

  std::shared_ptr<const ReachabilityOracle> inner_;
  std::string name_;  // "delta:" + inner spec
  std::shared_ptr<const Digraph> owned_base_;  // null when aliased
  const Digraph* base_ = nullptr;
  GraphDelta delta_;
  DeltaOverlayOptions options_;
  uint64_t compactions_ = 0;
  std::vector<NodeId> retired_;  // sorted; survives compaction

  // Thread-confined probe scratch. PerThread slots are reclaimed only
  // at thread exit, so per-snapshot slots would strand O(n) bytes per
  // worker for every update epoch; instead the whole WithUpdates/
  // Compact chain shares ONE PerThread identity (safe: slots stay
  // thread-confined, and per-snapshot state is guarded below).
  struct SearchScratch {
    std::vector<uint32_t> mark;  // epoch-tagged visit marks
    uint32_t epoch = 0;
    std::vector<NodeId> stack;
  };
  std::shared_ptr<PerThread<SearchScratch>> scratch_;
  // Memoized prefilter verdicts (0 unknown / 1 yes / 2 no), keyed by
  // base vertex. GTEA's pairwise set probes hit the same sources and
  // targets thousands of times per query; the memo collapses each
  // repeat to one byte load. Verdicts depend on this snapshot's delta,
  // so the slot is tagged with the owning snapshot and reset when a
  // thread first probes a different snapshot of the chain.
  struct PrefilterCache {
    uint64_t snapshot_tag = 0;
    std::vector<uint8_t> tainted;
    std::vector<uint8_t> usable;
  };
  std::shared_ptr<PerThread<PrefilterCache>> prefilter_;
  uint64_t snapshot_tag_ = 0;  // process-unique per snapshot

  PrefilterCache& LocalPrefilterCache() const;
};

}  // namespace gtpq

#endif  // GTPQ_DYNAMIC_DELTA_OVERLAY_H_
