#include "dynamic/delta_overlay.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "common/logging.h"
#include "reachability/factory.h"
#include "storage/index_io.h"

namespace gtpq {

namespace {
uint64_t NextSnapshotTag() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

DeltaOverlayOracle::DeltaOverlayOracle(
    std::shared_ptr<const ReachabilityOracle> inner, const Digraph* base,
    DeltaOverlayOptions options)
    : inner_(std::move(inner)),
      name_("delta:" + std::string(inner_->name())),
      base_(base),
      delta_(base->NumNodes()),
      options_(options),
      scratch_(std::make_shared<PerThread<SearchScratch>>()),
      prefilter_(std::make_shared<PerThread<PrefilterCache>>()),
      snapshot_tag_(NextSnapshotTag()) {
  GTPQ_CHECK(base_->finalized());
}

DeltaOverlayOracle::PrefilterCache&
DeltaOverlayOracle::LocalPrefilterCache() const {
  PrefilterCache& cache = prefilter_->Local();
  if (cache.snapshot_tag != snapshot_tag_) {
    cache.snapshot_tag = snapshot_tag_;
    cache.tainted.assign(delta_.base_nodes(), 0);
    cache.usable.assign(delta_.base_nodes(), 0);
  }
  return cache;
}

bool DeltaOverlayOracle::InnerReaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  const uint64_t before = inner_->stats().elements_looked_up;
  const bool reaches = inner_->Reaches(from, to);
  st.elements_looked_up += inner_->stats().elements_looked_up - before;
  return reaches;
}

bool DeltaOverlayOracle::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  const size_t n = delta_.NumNodes();
  if (from >= n || to >= n) return false;
  if (delta_.empty()) return InnerReaches(from, to);

  const NodeId nb = static_cast<NodeId>(delta_.base_nodes());
  const bool base_pair = from < nb && to < nb;
  const bool has_added = delta_.NumAddedEdges() > 0;
  const bool has_removed = delta_.NumRemovedEdges() > 0;
  if (base_pair) {
    // O(|delta|) prefilters that settle most probes without touching
    // the graph, keeping the search a fallback even for mixed deltas.
    if (InnerReaches(from, to)) {
      // No removed edges: every base path survives. (Removed
      // *vertices* without removed edges were isolated and cannot
      // invalidate a base path.)
      if (!has_removed) return true;
      if (!SourceTainted(from)) return true;
    } else {
      if (!has_added) return false;
      if (!UsableAddInto(to)) return false;
    }
  } else if (!has_added) {
    // Vertices outside the base id space only ever touch added edges.
    return false;
  }
  return SearchReaches(from, to);
}

bool DeltaOverlayOracle::SourceTainted(NodeId from) const {
  std::vector<uint8_t>& memo = LocalPrefilterCache().tainted;
  if (memo[from] != 0) return memo[from] == 1;
  // A base path out of `from` can only be severed by a removed edge
  // whose tail `from` base-reaches; if no removed tail is in `from`'s
  // base cone, every positive base answer from `from` keeps a witness
  // path intact.
  const bool tainted =
      delta_.AnyRemovedEdge([&](NodeId tail, NodeId head) {
        (void)head;
        return from == tail || InnerReaches(from, tail);
      });
  memo[from] = tainted ? 1 : 2;
  return tainted;
}

bool DeltaOverlayOracle::UsableAddInto(NodeId to) const {
  std::vector<uint8_t>& memo = LocalPrefilterCache().usable;
  if (memo[to] != 0) return memo[to] == 1;
  // Without a base path, a current path must cross an added edge, and
  // past its LAST added edge (x, y) it runs on base-minus-removed
  // edges only — so y must be `to` or base-reach `to`. If no added
  // edge qualifies, negative base answers into `to` are final.
  const NodeId nb = static_cast<NodeId>(delta_.base_nodes());
  const bool usable =
      delta_.AnyAddedEdge([&](NodeId tail, NodeId head) {
        (void)tail;
        return head == to || (head < nb && InnerReaches(head, to));
      });
  memo[to] = usable ? 1 : 2;
  return usable;
}

bool DeltaOverlayOracle::SearchReaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  SearchScratch& scratch = scratch_->Local();
  const size_t n = delta_.NumNodes();
  const NodeId nb = static_cast<NodeId>(delta_.base_nodes());
  if (scratch.mark.size() < n) scratch.mark.resize(n, 0);
  if (++scratch.epoch == 0) {
    std::fill(scratch.mark.begin(), scratch.mark.end(), 0);
    scratch.epoch = 1;
  }
  const uint32_t epoch = scratch.epoch;
  const bool adds_only = delta_.NumRemovedEdges() == 0;
  const bool removes_only = delta_.NumAddedEdges() == 0;
  const bool to_in_base = to < nb;

  std::vector<NodeId>& stack = scratch.stack;
  stack.clear();

  // Marks and pushes w; reports whether w is the target. In the
  // delete-only regime the base index over-approximates current
  // reachability, so anything it rules out is pruned with its whole
  // subtree.
  auto visit = [&](NodeId w) -> bool {
    if (w == to) return true;
    if (scratch.mark[w] == epoch) return false;
    scratch.mark[w] = epoch;
    if (removes_only && to_in_base && w < nb && !InnerReaches(w, to)) {
      return false;
    }
    stack.push_back(w);
    return false;
  };

  auto expand = [&](NodeId x) -> bool {
    if (x < nb) {
      for (NodeId w : base_->OutNeighbors(x)) {
        ++st.elements_looked_up;
        if (delta_.EdgeRemoved(x, w)) continue;
        if (visit(w)) return true;
      }
    }
    for (NodeId w : delta_.AddedOut(x)) {
      ++st.elements_looked_up;
      if (visit(w)) return true;
    }
    return false;
  };

  // The start vertex is expanded but never marked, so a cycle back to
  // it satisfies the non-empty-path self-reachability semantics.
  if (expand(from)) return true;
  while (!stack.empty()) {
    const NodeId x = stack.back();
    stack.pop_back();
    // Insert-only regime: base paths survive, so climbing onto indexed
    // territory that reaches the target finishes the search.
    if (adds_only && to_in_base && x < nb && InnerReaches(x, to)) {
      return true;
    }
    if (expand(x)) return true;
  }
  return false;
}

// --- Delta-aware set reachability --------------------------------------

namespace {

/// Wrapper summary: the raw member list for pairwise fallbacks plus the
/// inner index's native summary over the members that live in the base
/// id space (added vertices cannot appear in any base-index structure).
class DeltaSetSummary : public ReachabilityOracle::SetSummary {
 public:
  std::vector<NodeId> members;
  std::unique_ptr<ReachabilityOracle::SetSummary> inner;  // may be null
};

const DeltaSetSummary& AsDelta(const ReachabilityOracle::SetSummary& s) {
  return static_cast<const DeltaSetSummary&>(s);
}

/// Runs an inner-index operation with decorator accounting: the inner
/// elements visited roll up into the overlay's stats slot (the
/// set-probe sibling of DeltaOverlayOracle::InnerReaches).
template <typename Fn>
auto WithInnerStats(const DeltaOverlayOracle& oracle, Fn&& fn) {
  const uint64_t before = oracle.inner().stats().elements_looked_up;
  auto result = fn();
  oracle.stats().elements_looked_up +=
      oracle.inner().stats().elements_looked_up - before;
  return result;
}

/// Shared summary construction for both probe directions.
std::unique_ptr<DeltaSetSummary> MakeDeltaSummary(
    const DeltaOverlayOracle& oracle, std::span<const NodeId> members,
    bool targets) {
  auto summary = std::make_unique<DeltaSetSummary>();
  summary->members.assign(members.begin(), members.end());
  const NodeId nb = static_cast<NodeId>(oracle.delta().base_nodes());
  std::vector<NodeId> base_members;
  for (NodeId m : members) {
    if (m < nb) base_members.push_back(m);
  }
  if (!base_members.empty()) {
    summary->inner = WithInnerStats(oracle, [&] {
      return targets ? oracle.inner().SummarizeTargets(base_members)
                     : oracle.inner().SummarizeSources(base_members);
    });
  }
  return summary;
}

/// Shared probe core. `downward` distinguishes ReachesSet (v reaches a
/// member?) from SetReaches (a member reaches v?). Regime proofs mirror
/// Reaches(): adds keep base paths alive, so a positive inner answer
/// stands; without added edges nothing new is reachable, so a negative
/// inner answer stands (vertices outside the base id space only ever
/// touch added edges).
bool DeltaSetProbe(const DeltaOverlayOracle& oracle, NodeId v,
                   const DeltaSetSummary& summary, bool downward) {
  ++oracle.stats().queries;
  const GraphDelta& delta = oracle.delta();
  if (v >= delta.NumNodes() || summary.members.empty()) return false;

  const NodeId nb = static_cast<NodeId>(delta.base_nodes());
  bool inner_hit = false;
  if (v < nb && summary.inner != nullptr) {
    inner_hit = WithInnerStats(oracle, [&] {
      return downward ? oracle.inner().ReachesSet(v, *summary.inner)
                      : oracle.inner().SetReaches(*summary.inner, v);
    });
  }
  if (delta.empty()) return inner_hit;
  if (delta.NumRemovedEdges() == 0 && inner_hit) return true;
  if (delta.NumAddedEdges() == 0 && !inner_hit) return false;
  for (NodeId m : summary.members) {
    if (downward ? oracle.Reaches(v, m) : oracle.Reaches(m, v)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::unique_ptr<ReachabilityOracle::SetSummary>
DeltaOverlayOracle::SummarizeTargets(std::span<const NodeId> members) const {
  return MakeDeltaSummary(*this, members, /*targets=*/true);
}

std::unique_ptr<ReachabilityOracle::SetSummary>
DeltaOverlayOracle::SummarizeSources(std::span<const NodeId> members) const {
  return MakeDeltaSummary(*this, members, /*targets=*/false);
}

bool DeltaOverlayOracle::ReachesSet(NodeId from,
                                    const SetSummary& targets) const {
  return DeltaSetProbe(*this, from, AsDelta(targets), /*downward=*/true);
}

bool DeltaOverlayOracle::SetReaches(const SetSummary& sources,
                                    NodeId to) const {
  return DeltaSetProbe(*this, to, AsDelta(sources), /*downward=*/false);
}

std::unique_ptr<ReachabilityOracle::SetSummary>
DeltaOverlayOracle::PrepareSuccessorTargets(
    std::span<const NodeId> targets) const {
  auto summary = std::make_unique<DeltaSetSummary>();
  summary->members.assign(targets.begin(), targets.end());
  // Indices returned by SuccessorsAmong are positions in the prepared
  // list, so the inner preparation must cover the EXACT same list —
  // only sound when the delta cannot shift any answer.
  if (delta_.empty()) {
    summary->inner = WithInnerStats(
        *this, [&] { return inner_->PrepareSuccessorTargets(targets); });
  }
  return summary;
}

void DeltaOverlayOracle::SuccessorsAmong(NodeId from,
                                         const SetSummary& targets,
                                         std::vector<uint32_t>* out) const {
  const DeltaSetSummary& summary = AsDelta(targets);
  if (summary.inner != nullptr) {
    WithInnerStats(*this, [&] {
      inner_->SuccessorsAmong(from, *summary.inner, out);
      return 0;
    });
    return;
  }
  for (uint32_t i = 0; i < summary.members.size(); ++i) {
    if (Reaches(from, summary.members[i])) out->push_back(i);
  }
}

bool DeltaOverlayOracle::ShouldCompact() const {
  const size_t threshold = std::max(
      options_.min_compact_ops,
      static_cast<size_t>(options_.compact_fraction *
                          static_cast<double>(base_->NumEdges())));
  return delta_.NumOps() >= threshold;
}

Result<std::shared_ptr<const DeltaOverlayOracle>>
DeltaOverlayOracle::WithUpdates(const UpdateBatch& batch) const {
  // Compaction folds a removal into the rebuilt base as a plain
  // isolated vertex, so the delta alone cannot keep removed ids dead;
  // the retired list can (it survives compaction and persistence).
  const auto retired = [this](NodeId v) {
    return std::binary_search(retired_.begin(), retired_.end(), v);
  };
  for (const EdgeRef& e : batch.add_edges) {
    if (retired(e.from) || retired(e.to)) {
      return Status::FailedPrecondition(
          "add_edge touches a removed vertex: (" +
          std::to_string(e.from) + ", " + std::to_string(e.to) + ")");
    }
  }
  for (const EdgeRef& e : batch.remove_edges) {
    if (retired(e.from) || retired(e.to)) {
      return Status::FailedPrecondition(
          "remove_edge touches a removed vertex: (" +
          std::to_string(e.from) + ", " + std::to_string(e.to) + ")");
    }
  }
  for (NodeId v : batch.remove_nodes) {
    if (retired(v)) {
      return Status::FailedPrecondition("vertex already removed: " +
                                        std::to_string(v));
    }
  }

  auto next = std::shared_ptr<DeltaOverlayOracle>(new DeltaOverlayOracle());
  next->inner_ = inner_;
  next->name_ = name_;
  next->owned_base_ = owned_base_;
  next->base_ = base_;
  next->delta_ = delta_;
  next->options_ = options_;
  next->compactions_ = compactions_;
  next->retired_ = retired_;
  next->scratch_ = scratch_;
  next->prefilter_ = prefilter_;
  next->snapshot_tag_ = NextSnapshotTag();
  // In-place is safe: `next` is discarded on rejection, so Apply()'s
  // atomicity scratch copy would only double the per-update delta copy.
  GTPQ_RETURN_NOT_OK(next->delta_.ApplyInPlace(*base_, batch));
  if (next->ShouldCompact()) return next->Compact();
  return std::shared_ptr<const DeltaOverlayOracle>(std::move(next));
}

Result<std::shared_ptr<const DeltaOverlayOracle>>
DeltaOverlayOracle::Compact() const {
  auto new_base = std::make_shared<const Digraph>(MaterializeGraph());
  const std::string inner_spec(inner_->name());
  auto rebuilt =
      MakeReachabilityIndex(std::string_view(inner_spec), *new_base);
  if (rebuilt == nullptr) {
    return Status::Internal("cannot rebuild inner index for spec '" +
                            inner_spec + "'");
  }
  auto next = std::shared_ptr<DeltaOverlayOracle>(new DeltaOverlayOracle());
  next->inner_ =
      std::shared_ptr<const ReachabilityOracle>(std::move(rebuilt));
  next->name_ = name_;
  next->owned_base_ = new_base;
  next->base_ = new_base.get();
  next->delta_ = GraphDelta(new_base->NumNodes());
  next->options_ = options_;
  next->compactions_ = compactions_ + 1;
  // Carry the tombstones the compaction just folded away.
  next->retired_ = retired_;
  for (NodeId v : delta_.RemovedNodes()) {
    next->retired_.insert(std::lower_bound(next->retired_.begin(),
                                           next->retired_.end(), v),
                          v);
  }
  next->scratch_ = scratch_;
  next->prefilter_ = prefilter_;
  next->snapshot_tag_ = NextSnapshotTag();
  return std::shared_ptr<const DeltaOverlayOracle>(std::move(next));
}

void DeltaOverlayOracle::SaveBody(storage::Writer* w) const {
  storage::SaveDigraph(*base_, w);
  delta_.Save(w);
  w->WritePodVec(retired_);
  // The inner oracle came through the factory, so this dispatch cannot
  // hit an unknown spec.
  GTPQ_CHECK(storage::SaveOracleBody(*inner_, w).ok());
}

Result<std::unique_ptr<DeltaOverlayOracle>> DeltaOverlayOracle::LoadBody(
    std::string_view inner_spec, storage::Reader* r) {
  auto oracle =
      std::unique_ptr<DeltaOverlayOracle>(new DeltaOverlayOracle());
  oracle->scratch_ = std::make_shared<PerThread<SearchScratch>>();
  oracle->prefilter_ = std::make_shared<PerThread<PrefilterCache>>();
  oracle->snapshot_tag_ = NextSnapshotTag();
  Digraph base;
  GTPQ_RETURN_NOT_OK(storage::LoadDigraph(r, &base));
  auto owned = std::make_shared<const Digraph>(std::move(base));
  oracle->owned_base_ = owned;
  oracle->base_ = owned.get();
  auto delta = GraphDelta::Load(r);
  GTPQ_RETURN_NOT_OK(delta.status());
  oracle->delta_ = delta.TakeValue();
  if (oracle->delta_.base_nodes() != owned->NumNodes()) {
    return Status::ParseError(
        "delta section base node count does not match the stored graph");
  }
  GTPQ_RETURN_NOT_OK(r->ReadPodVec(&oracle->retired_));
  if (!std::is_sorted(oracle->retired_.begin(), oracle->retired_.end()) ||
      (!oracle->retired_.empty() &&
       oracle->retired_.back() >= oracle->delta_.NumNodes())) {
    return Status::ParseError("delta section retired list is invalid");
  }
  auto inner = storage::LoadOracleBody(inner_spec, r);
  GTPQ_RETURN_NOT_OK(inner.status());
  oracle->inner_ =
      std::shared_ptr<const ReachabilityOracle>(inner.TakeValue());
  if (oracle->inner_->name() != inner_spec) {
    return Status::ParseError("delta section inner spec '" +
                              std::string(oracle->inner_->name()) +
                              "' does not match header spec '" +
                              std::string(inner_spec) + "'");
  }
  oracle->name_ = "delta:" + std::string(inner_spec);
  return oracle;
}

}  // namespace gtpq
