#ifndef GTPQ_DYNAMIC_UPDATE_IO_H_
#define GTPQ_DYNAMIC_UPDATE_IO_H_

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "dynamic/graph_delta.h"

namespace gtpq {

/// Serializes update batches to the plain-text "gtpq-updates v1"
/// format consumed by `gteactl apply` and replayable against any
/// snapshot chain:
///
///   gtpq-updates v1
///   batch
///   addnode <label>
///   addedge <from> <to>
///   rmedge <from> <to>
///   rmnode <id>
///   batch
///   ...
///
/// Each `batch` line opens a new atomic UpdateBatch; ops before the
/// first `batch` line belong to an implicit first batch. Blank lines
/// and '#' comments are ignored.
Status SaveUpdateBatches(std::span<const UpdateBatch> batches,
                         std::ostream* out);
Status SaveUpdateBatchesToFile(std::span<const UpdateBatch> batches,
                               const std::string& path);

/// Parses the format above. Malformed lines are rejected with the line
/// number; semantic validation (absent edges, removed vertices) happens
/// later, when the batches are applied to a delta.
Result<std::vector<UpdateBatch>> LoadUpdateBatches(std::istream* in);
Result<std::vector<UpdateBatch>> LoadUpdateBatchesFromFile(
    const std::string& path);

}  // namespace gtpq

#endif  // GTPQ_DYNAMIC_UPDATE_IO_H_
