#include "dynamic/graph_delta.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.h"
#include "storage/serializer.h"

namespace gtpq {

namespace {

// Built by appends: `"(" + std::to_string(...)` trips GCC 12's
// -Wrestrict false positive (PR105651) under -O2, and CI promotes
// warnings to errors.
std::string EdgeName(NodeId from, NodeId to) {
  std::string out = "(";
  out += std::to_string(from);
  out += ", ";
  out += std::to_string(to);
  out += ")";
  return out;
}

}  // namespace

std::vector<NodeId> GraphDelta::RemovedNodes() const {
  std::vector<NodeId> out(removed_node_set_.begin(),
                          removed_node_set_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::span<const NodeId> GraphDelta::AddedOut(NodeId v) const {
  auto it = added_out_.find(v);
  if (it == added_out_.end()) return {};
  return it->second;
}

bool GraphDelta::HasEdgeInView(const Digraph& base, NodeId from,
                               NodeId to) const {
  if (from < base_nodes_ && to < base_nodes_ && base.HasEdge(from, to) &&
      !EdgeRemoved(from, to)) {
    return true;
  }
  const std::span<const NodeId> added = AddedOut(from);
  return std::binary_search(added.begin(), added.end(), to);
}

void GraphDelta::InsertAddedEdge(NodeId from, NodeId to) {
  auto& out = added_out_[from];
  out.insert(std::lower_bound(out.begin(), out.end(), to), to);
  auto& in = added_in_[to];
  in.insert(std::lower_bound(in.begin(), in.end(), from), from);
  ++num_added_edges_;
}

void GraphDelta::EraseAddedEdge(NodeId from, NodeId to) {
  auto out_it = added_out_.find(from);
  GTPQ_DCHECK(out_it != added_out_.end());
  auto& out = out_it->second;
  out.erase(std::lower_bound(out.begin(), out.end(), to));
  if (out.empty()) added_out_.erase(out_it);
  auto in_it = added_in_.find(to);
  auto& in = in_it->second;
  in.erase(std::lower_bound(in.begin(), in.end(), from));
  if (in.empty()) added_in_.erase(in_it);
  --num_added_edges_;
}

Status GraphDelta::Apply(const Digraph& base, const UpdateBatch& batch) {
  // Validate-and-fold into a scratch copy so a mid-batch rejection
  // leaves this delta exactly as it was (batches are atomic).
  GraphDelta scratch = *this;
  GTPQ_RETURN_NOT_OK(scratch.ApplyInPlace(base, batch));
  *this = std::move(scratch);
  return Status::OK();
}

Status GraphDelta::ApplyInPlace(const Digraph& base,
                                const UpdateBatch& batch) {
  GTPQ_CHECK(base.finalized());
  if (base.NumNodes() != base_nodes_) {
    return Status::InvalidArgument(
        "update batch applied against the wrong base graph: delta was "
        "created over " +
        std::to_string(base_nodes_) + " nodes, graph has " +
        std::to_string(base.NumNodes()));
  }

  for (int64_t label : batch.add_nodes) added_labels_.push_back(label);
  const size_t n = NumNodes();

  for (const EdgeRef& e : batch.add_edges) {
    if (e.from >= n || e.to >= n) {
      return Status::OutOfRange("add_edge endpoint out of range: " +
                                EdgeName(e.from, e.to));
    }
    if (NodeRemoved(e.from) || NodeRemoved(e.to)) {
      return Status::FailedPrecondition(
          "add_edge touches a removed vertex: " + EdgeName(e.from, e.to));
    }
    if (HasEdgeInView(base, e.from, e.to)) {
      return Status::AlreadyExists("edge already present: " +
                                   EdgeName(e.from, e.to));
    }
    if (e.from < base_nodes_ && e.to < base_nodes_ &&
        base.HasEdge(e.from, e.to)) {
      // Re-adding a removed base edge resurrects it instead of growing
      // the added-edge overlay.
      removed_edge_set_.erase(EdgeKey(e.from, e.to));
    } else {
      InsertAddedEdge(e.from, e.to);
    }
  }

  for (const EdgeRef& e : batch.remove_edges) {
    if (e.from >= n || e.to >= n) {
      return Status::OutOfRange("remove_edge endpoint out of range: " +
                                EdgeName(e.from, e.to));
    }
    if (!HasEdgeInView(base, e.from, e.to)) {
      return Status::NotFound("remove_edge of absent edge: " +
                              EdgeName(e.from, e.to));
    }
    const std::span<const NodeId> added = AddedOut(e.from);
    if (std::binary_search(added.begin(), added.end(), e.to)) {
      EraseAddedEdge(e.from, e.to);
    } else {
      removed_edge_set_.insert(EdgeKey(e.from, e.to));
    }
  }

  for (NodeId v : batch.remove_nodes) {
    if (v >= n) {
      return Status::OutOfRange("remove_node id out of range: " +
                                std::to_string(v));
    }
    if (NodeRemoved(v)) {
      return Status::FailedPrecondition("vertex already removed: " +
                                        std::to_string(v));
    }
    if (v < base_nodes_) {
      for (NodeId w : base.OutNeighbors(v)) {
        removed_edge_set_.insert(EdgeKey(v, w));
      }
      for (NodeId w : base.InNeighbors(v)) {
        removed_edge_set_.insert(EdgeKey(w, v));
      }
    }
    // Detach surviving overlay edges (copy the lists: erasing mutates).
    const std::span<const NodeId> out_span = AddedOut(v);
    const std::vector<NodeId> outs(out_span.begin(), out_span.end());
    for (NodeId w : outs) EraseAddedEdge(v, w);
    if (auto it = added_in_.find(v); it != added_in_.end()) {
      const std::vector<NodeId> ins = it->second;
      for (NodeId u : ins) EraseAddedEdge(u, v);
    }
    removed_node_set_.insert(v);
  }

  ++version_;
  return Status::OK();
}

Digraph GraphDelta::MaterializeDigraph(const Digraph& base) const {
  GTPQ_CHECK(base.finalized());
  GTPQ_CHECK(base.NumNodes() == base_nodes_);
  Digraph out(NumNodes());
  for (NodeId v = 0; v < base_nodes_; ++v) {
    for (NodeId w : base.OutNeighbors(v)) {
      if (!EdgeRemoved(v, w)) out.AddEdge(v, w);
    }
  }
  for (const auto& [v, targets] : added_out_) {
    for (NodeId w : targets) out.AddEdge(v, w);
  }
  out.Finalize();
  return out;
}

DataGraph GraphDelta::MaterializeDataGraph(const DataGraph& base) const {
  GTPQ_CHECK(base.graph().NumNodes() == base_nodes_);
  DataGraph out(NumNodes(), base.attr_names_ptr());
  for (NodeId v = 0; v < base_nodes_; ++v) {
    if (NodeRemoved(v)) {
      out.SetLabel(v, kRemovedNodeLabel);
      continue;
    }
    out.SetLabel(v, base.LabelOf(v));
    for (const AttrBinding& binding : base.Attrs(v).bindings()) {
      out.SetAttr(v, binding.attr, binding.value);
    }
  }
  for (size_t i = 0; i < added_labels_.size(); ++i) {
    const NodeId v = static_cast<NodeId>(base_nodes_ + i);
    out.SetLabel(v, NodeRemoved(v) ? kRemovedNodeLabel : added_labels_[i]);
  }
  for (NodeId v = 0; v < base_nodes_; ++v) {
    for (NodeId w : base.graph().OutNeighbors(v)) {
      if (!EdgeRemoved(v, w)) out.AddEdge(v, w);
    }
  }
  for (const auto& [v, targets] : added_out_) {
    for (NodeId w : targets) out.AddEdge(v, w);
  }
  if (base.HasSpanningTree()) {
    for (NodeId v = 0; v < base_nodes_; ++v) {
      const NodeId parent = base.TreeParentOf(v);
      if (parent != kInvalidNode && !EdgeRemoved(parent, v)) {
        out.SetTreeParent(v, parent);
      }
    }
  }
  out.Finalize();
  return out;
}

void GraphDelta::Save(storage::Writer* w) const {
  // Deterministic flat encoding: adjacency and id sets are sorted so
  // identical deltas always serialize to identical bytes.
  std::vector<EdgeRef> added_edges;
  added_edges.reserve(num_added_edges_);
  for (const auto& [v, targets] : added_out_) {
    for (NodeId t : targets) added_edges.push_back({v, t});
  }
  std::sort(added_edges.begin(), added_edges.end(),
            [](const EdgeRef& a, const EdgeRef& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  std::vector<uint64_t> removed_edges(removed_edge_set_.begin(),
                                      removed_edge_set_.end());
  std::sort(removed_edges.begin(), removed_edges.end());
  std::vector<NodeId> removed_nodes(removed_node_set_.begin(),
                                    removed_node_set_.end());
  std::sort(removed_nodes.begin(), removed_nodes.end());
  storage::WriteFields(w, base_nodes_, version_, added_labels_,
                       added_edges, removed_edges, removed_nodes);
}

Result<GraphDelta> GraphDelta::Load(storage::Reader* r) {
  GraphDelta delta;
  std::vector<EdgeRef> added_edges;
  std::vector<uint64_t> removed_edges;
  std::vector<NodeId> removed_nodes;
  GTPQ_RETURN_NOT_OK(storage::ReadFields(
      r, &delta.base_nodes_, &delta.version_, &delta.added_labels_,
      &added_edges, &removed_edges, &removed_nodes));
  const size_t n = delta.NumNodes();
  for (const EdgeRef& e : added_edges) {
    if (e.from >= n || e.to >= n) {
      return Status::ParseError("delta added edge out of range");
    }
    delta.InsertAddedEdge(e.from, e.to);
  }
  for (uint64_t key : removed_edges) {
    const NodeId from = static_cast<NodeId>(key >> 32);
    const NodeId to = static_cast<NodeId>(key & 0xffffffffu);
    if (from >= delta.base_nodes_ || to >= delta.base_nodes_) {
      return Status::ParseError("delta removed edge out of range");
    }
    delta.removed_edge_set_.insert(key);
  }
  for (NodeId v : removed_nodes) {
    if (v >= n) return Status::ParseError("delta removed node out of range");
    delta.removed_node_set_.insert(v);
  }
  return delta;
}

}  // namespace gtpq
