#include "dynamic/stream_gen.h"

#include <utility>

#include "common/rng.h"

namespace gtpq {

std::vector<UpdateBatch> GenerateUpdateStream(
    const DataGraph& base, const UpdateStreamOptions& options) {
  std::vector<UpdateBatch> stream;
  GraphDelta mirror(base.NumNodes());
  Rng rng(options.seed);
  const int64_t num_labels =
      static_cast<int64_t>(base.NumDistinctLabels()) + 1;
  // Single-op batches reject before mutating, so the in-place apply is
  // safe here and avoids copying the accumulated mirror per candidate.
  auto try_op = [&](const UpdateBatch& op) {
    return mirror.ApplyInPlace(base.graph(), op).ok();
  };
  for (size_t r = 0; r < options.rounds; ++r) {
    UpdateBatch batch;
    const size_t adds =
        static_cast<size_t>(static_cast<double>(options.ops_per_round) *
                            (1.0 - options.del_ratio));
    for (size_t i = 0; i < adds; ++i) {
      if (rng.NextDouble() < options.node_op_share) {
        const int64_t label =
            static_cast<int64_t>(rng.NextBounded(num_labels));
        UpdateBatch op;
        op.add_nodes.push_back(label);
        if (try_op(op)) batch.add_nodes.push_back(label);
        continue;
      }
      const size_t n = mirror.NumNodes();
      const EdgeRef e{static_cast<NodeId>(rng.NextBounded(n)),
                      static_cast<NodeId>(rng.NextBounded(n))};
      UpdateBatch op;
      op.add_edges.push_back(e);
      if (try_op(op)) batch.add_edges.push_back(e);
    }
    for (size_t i = adds; i < options.ops_per_round; ++i) {
      const size_t n = mirror.NumNodes();
      if (rng.NextDouble() < options.node_op_share) {
        const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
        UpdateBatch op;
        op.remove_nodes.push_back(v);
        if (try_op(op)) batch.remove_nodes.push_back(v);
        continue;
      }
      // Sample an existing edge by picking a source with out-edges in
      // the current view.
      for (int attempt = 0; attempt < 8; ++attempt) {
        const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
        std::vector<NodeId> targets;
        if (v < base.NumNodes()) {
          for (NodeId w : base.graph().OutNeighbors(v)) {
            if (!mirror.EdgeRemoved(v, w)) targets.push_back(w);
          }
        }
        for (NodeId w : mirror.AddedOut(v)) targets.push_back(w);
        if (targets.empty()) continue;
        const EdgeRef e{v, targets[rng.NextBounded(targets.size())]};
        UpdateBatch op;
        op.remove_edges.push_back(e);
        if (try_op(op)) batch.remove_edges.push_back(e);
        break;
      }
    }
    stream.push_back(std::move(batch));
  }
  return stream;
}

}  // namespace gtpq
