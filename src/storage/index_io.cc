#include "storage/index_io.h"

#include <fstream>
#include <utility>

#include "dynamic/delta_overlay.h"
#include "reachability/cached_oracle.h"
#include "reachability/chain_cover_index.h"
#include "reachability/contour.h"
#include "reachability/factory.h"
#include "reachability/interval_index.h"
#include "reachability/sharded_oracle.h"
#include "reachability/sspi.h"
#include "reachability/three_hop.h"
#include "reachability/transitive_closure.h"
#include "storage/mmap_file.h"

namespace gtpq {
namespace storage {

namespace {

constexpr std::string_view kCachedPrefix = "cached:";
constexpr std::string_view kShardedPrefix = "sharded:";
constexpr std::string_view kDeltaPrefix = "delta:";

// Offsets within the fixed file prologue (see index_io.h): magic,
// then u32 version at 8, u32 CRC at 12, checksummed bytes from 16.
constexpr size_t kVersionOffset = 8;
constexpr size_t kChecksummedOffset = 16;

Status ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open index file: " + path);
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  if (in.bad()) return Status::Internal("read failed: " + path);
  return Status::OK();
}

/// Validates the fixed prologue and the checksum, leaving `r` positioned
/// at the spec string. Fills every IndexFileInfo field except payload
/// parsing side effects.
Status OpenHeader(std::string_view bytes, const std::string& path,
                  IndexFileInfo* info, Reader* r) {
  if (bytes.size() < kChecksummedOffset) {
    return Status::ParseError("index file too short (" +
                              std::to_string(bytes.size()) + " bytes): " +
                              path);
  }
  if (std::string_view(bytes.data(), kIndexMagic.size()) != kIndexMagic) {
    return Status::ParseError("bad magic: not a gtpq index file: " + path);
  }
  Reader prologue(std::string_view(bytes.data() + kVersionOffset,
                                   kChecksummedOffset - kVersionOffset));
  uint32_t version = 0, stored_crc = 0;
  GTPQ_RETURN_NOT_OK(prologue.ReadU32(&version));
  GTPQ_RETURN_NOT_OK(prologue.ReadU32(&stored_crc));
  if (version != kIndexFormatVersion) {
    return Status::FailedPrecondition(
        "index format version mismatch: file has v" +
        std::to_string(version) + ", this build reads v" +
        std::to_string(kIndexFormatVersion) + ": " + path);
  }
  const uint32_t actual_crc = Crc32(bytes.data() + kChecksummedOffset,
                                    bytes.size() - kChecksummedOffset);
  if (actual_crc != stored_crc) {
    return Status::ParseError(
        "index checksum mismatch (truncated or corrupted file): " + path);
  }

  *r = Reader(bytes.substr(kChecksummedOffset));
  r->set_pod_align(true);
  info->format_version = version;
  info->file_bytes = bytes.size();
  GTPQ_RETURN_NOT_OK(r->ReadString(&info->spec));
  GTPQ_RETURN_NOT_OK(r->ReadU64(&info->graph_fingerprint));
  GTPQ_RETURN_NOT_OK(r->ReadU64(&info->num_nodes));
  GTPQ_RETURN_NOT_OK(r->ReadU64(&info->num_edges));
  GTPQ_RETURN_NOT_OK(r->ReadU64(&info->payload_bytes));
  // The header is zero-padded to the next 8-byte boundary so the payload
  // starts 8-aligned (offset 16 is itself 8-aligned, so file offsets and
  // reader offsets agree mod 8).
  GTPQ_RETURN_NOT_OK(r->AlignTo8());
  if (info->payload_bytes != r->remaining()) {
    return Status::ParseError(
        "index payload size mismatch: header says " +
        std::to_string(info->payload_bytes) + " bytes, file carries " +
        std::to_string(r->remaining()) + ": " + path);
  }
  return Status::OK();
}

Result<std::unique_ptr<ReachabilityOracle>> LoadImpl(
    const std::string& path, const Digraph* expected_graph) {
  std::string bytes;
  GTPQ_RETURN_NOT_OK(ReadFile(path, &bytes));
  IndexFileInfo info;
  Reader r{std::string_view()};
  GTPQ_RETURN_NOT_OK(OpenHeader(bytes, path, &info, &r));
  if (expected_graph != nullptr) {
    const uint64_t expected = GraphFingerprint(*expected_graph);
    if (expected != info.graph_fingerprint) {
      return Status::FailedPrecondition(
          "index was built for a different graph (file fingerprint " +
          std::to_string(info.graph_fingerprint) + ", serving graph " +
          std::to_string(expected) + "): " + path);
    }
  }
  auto oracle = LoadOracleBody(info.spec, &r);
  GTPQ_RETURN_NOT_OK(oracle.status());
  GTPQ_RETURN_NOT_OK(r.ExpectEnd());
  return oracle;
}

Result<std::unique_ptr<ReachabilityOracle>> LoadViewImpl(
    const std::string& path, const Digraph* expected_graph) {
  auto mapping_r = MmapFile::Map(path);
  GTPQ_RETURN_NOT_OK(mapping_r.status());
  std::shared_ptr<MmapFile> mapping = mapping_r.TakeValue();
  IndexFileInfo info;
  Reader r{std::string_view()};
  GTPQ_RETURN_NOT_OK(OpenHeader(mapping->bytes(), path, &info, &r));
  if (expected_graph != nullptr) {
    const uint64_t expected = GraphFingerprint(*expected_graph);
    if (expected != info.graph_fingerprint) {
      return Status::FailedPrecondition(
          "index was built for a different graph (file fingerprint " +
          std::to_string(info.graph_fingerprint) + ", serving graph " +
          std::to_string(expected) + "): " + path);
    }
  }
  // From here on POD arrays borrow the mapped pages instead of copying.
  r.set_zero_copy(true);
  auto oracle = LoadOracleBody(info.spec, &r);
  GTPQ_RETURN_NOT_OK(oracle.status());
  GTPQ_RETURN_NOT_OK(r.ExpectEnd());
  // The root oracle owns every nested sub-index, so pinning the mapping
  // here keeps all borrowed views valid for the oracle's whole life.
  (*oracle)->RetainBuffer(std::move(mapping));
  return oracle;
}

}  // namespace

uint64_t GraphFingerprint(const Digraph& g) {
  GTPQ_CHECK(g.finalized());
  // FNV-1a over the CSR walk; order-sensitive, so any structural edit
  // (node added, edge moved) changes the digest.
  uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001b3ull;
    }
  };
  mix(g.NumNodes());
  mix(g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    mix(g.OutDegree(v));
    for (NodeId w : g.OutNeighbors(v)) mix(w);
  }
  return h;
}

Status SaveReachabilityIndex(const ReachabilityOracle& oracle,
                             const Digraph& g, const std::string& path) {
  Writer body;
  body.set_pod_align(true);
  GTPQ_RETURN_NOT_OK(SaveOracleBody(oracle, &body));

  Writer header;
  header.set_pod_align(true);
  header.WriteString(oracle.name());
  header.WriteU64(GraphFingerprint(g));
  header.WriteU64(g.NumNodes());
  header.WriteU64(g.NumEdges());
  header.WriteU64(body.buffer().size());
  // Pad so the payload begins on an 8-byte file offset; the body writer
  // placed its own pod pads assuming an 8-aligned start.
  header.AlignTo8();

  // Chain the CRC across header and body so neither needs to be
  // concatenated into a third buffer — the payload (quadratic for
  // transitive_closure) is the dominant allocation, keep it single.
  const uint32_t crc =
      Crc32(body.buffer().data(), body.buffer().size(),
            Crc32(header.buffer().data(), header.buffer().size()));

  Writer prologue;
  prologue.WriteBytes(kIndexMagic.data(), kIndexMagic.size());
  prologue.WriteU32(kIndexFormatVersion);
  prologue.WriteU32(crc);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::NotFound("cannot create index file: " + path);
  for (const Writer* part : {&prologue, &header, &body}) {
    out.write(part->buffer().data(),
              static_cast<std::streamsize>(part->buffer().size()));
  }
  out.close();
  if (!out) return Status::Internal("write failed: " + path);
  return Status::OK();
}

Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndex(
    const std::string& path) {
  return LoadImpl(path, nullptr);
}

Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndex(
    const std::string& path, const Digraph& expected_graph) {
  return LoadImpl(path, &expected_graph);
}

Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndexView(
    const std::string& path) {
  return LoadViewImpl(path, nullptr);
}

Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndexView(
    const std::string& path, const Digraph& expected_graph) {
  return LoadViewImpl(path, &expected_graph);
}

Result<IndexFileInfo> InspectReachabilityIndex(const std::string& path) {
  std::string bytes;
  GTPQ_RETURN_NOT_OK(ReadFile(path, &bytes));
  IndexFileInfo info;
  Reader r{std::string_view()};
  GTPQ_RETURN_NOT_OK(OpenHeader(bytes, path, &info, &r));
  return info;
}

Status SaveOracleBody(const ReachabilityOracle& oracle, Writer* w) {
  const std::string_view spec = oracle.name();
  if (spec.rfind(kCachedPrefix, 0) == 0) {
    const auto* cached = dynamic_cast<const CachedOracle*>(&oracle);
    if (cached == nullptr) {
      return Status::InvalidArgument(
          "oracle named '" + std::string(spec) + "' is not a CachedOracle");
    }
    // Cache contents are transient; only the inner index persists.
    return SaveOracleBody(cached->inner(), w);
  }
  if (spec.rfind(kShardedPrefix, 0) == 0) {
    const auto* sharded = dynamic_cast<const ShardedOracle*>(&oracle);
    if (sharded == nullptr) {
      return Status::InvalidArgument(
          "oracle named '" + std::string(spec) + "' is not a ShardedOracle");
    }
    sharded->SaveBody(w);
    return Status::OK();
  }
  if (spec.rfind(kDeltaPrefix, 0) == 0) {
    const auto* delta = dynamic_cast<const DeltaOverlayOracle*>(&oracle);
    if (delta == nullptr) {
      return Status::InvalidArgument("oracle named '" + std::string(spec) +
                                     "' is not a DeltaOverlayOracle");
    }
    delta->SaveBody(w);
    return Status::OK();
  }

  auto save_as = [&](const auto* typed) {
    if (typed == nullptr) {
      return Status::InvalidArgument("oracle named '" + std::string(spec) +
                                     "' has an unexpected concrete type");
    }
    typed->SaveBody(w);
    return Status::OK();
  };
  // `contour` shares the three-hop body: ContourIndex carries no state
  // beyond its ThreeHopIndex base.
  if (spec == "contour" || spec == "three_hop") {
    return save_as(dynamic_cast<const ThreeHopIndex*>(&oracle));
  }
  if (spec == "interval") {
    return save_as(dynamic_cast<const IntervalIndex*>(&oracle));
  }
  if (spec == "sspi") return save_as(dynamic_cast<const Sspi*>(&oracle));
  if (spec == "chain_cover") {
    return save_as(dynamic_cast<const ChainCoverIndex*>(&oracle));
  }
  if (spec == "transitive_closure") {
    return save_as(dynamic_cast<const TransitiveClosure*>(&oracle));
  }
  return Status::Unimplemented("no serializer for reachability spec '" +
                               std::string(spec) + "'");
}

Result<std::unique_ptr<ReachabilityOracle>> LoadOracleBody(
    std::string_view spec, Reader* r) {
  if (spec.rfind(kCachedPrefix, 0) == 0) {
    auto inner = LoadOracleBody(spec.substr(kCachedPrefix.size()), r);
    GTPQ_RETURN_NOT_OK(inner.status());
    return std::unique_ptr<ReachabilityOracle>(std::make_unique<CachedOracle>(
        std::shared_ptr<const ReachabilityOracle>(inner.TakeValue())));
  }
  if (spec.rfind(kDeltaPrefix, 0) == 0) {
    auto delta =
        DeltaOverlayOracle::LoadBody(spec.substr(kDeltaPrefix.size()), r);
    GTPQ_RETURN_NOT_OK(delta.status());
    return std::unique_ptr<ReachabilityOracle>(delta.TakeValue());
  }
  if (spec.rfind(kShardedPrefix, 0) == 0) {
    auto sharded = ShardedOracle::LoadBody(r);
    GTPQ_RETURN_NOT_OK(sharded.status());
    if ((*sharded)->name() != spec) {
      return Status::ParseError("sharded section inner spec '" +
                                std::string((*sharded)->name()) +
                                "' does not match header spec '" +
                                std::string(spec) + "'");
    }
    return std::unique_ptr<ReachabilityOracle>(sharded.TakeValue());
  }
  if (spec == "contour") {
    auto base = ThreeHopIndex::LoadBody(r);
    GTPQ_RETURN_NOT_OK(base.status());
    return std::unique_ptr<ReachabilityOracle>(
        std::make_unique<ContourIndex>(base.TakeValue()));
  }
  if (spec == "three_hop") {
    auto idx = ThreeHopIndex::LoadBody(r);
    GTPQ_RETURN_NOT_OK(idx.status());
    return std::unique_ptr<ReachabilityOracle>(
        std::make_unique<ThreeHopIndex>(idx.TakeValue()));
  }
  if (spec == "interval") {
    auto idx = IntervalIndex::LoadBody(r);
    GTPQ_RETURN_NOT_OK(idx.status());
    return std::unique_ptr<ReachabilityOracle>(
        std::make_unique<IntervalIndex>(idx.TakeValue()));
  }
  if (spec == "sspi") {
    auto idx = Sspi::LoadBody(r);
    GTPQ_RETURN_NOT_OK(idx.status());
    return std::unique_ptr<ReachabilityOracle>(
        std::make_unique<Sspi>(idx.TakeValue()));
  }
  if (spec == "chain_cover") {
    auto idx = ChainCoverIndex::LoadBody(r);
    GTPQ_RETURN_NOT_OK(idx.status());
    return std::unique_ptr<ReachabilityOracle>(
        std::make_unique<ChainCoverIndex>(idx.TakeValue()));
  }
  if (spec == "transitive_closure") {
    auto idx = TransitiveClosure::LoadBody(r);
    GTPQ_RETURN_NOT_OK(idx.status());
    return std::unique_ptr<ReachabilityOracle>(
        std::make_unique<TransitiveClosure>(idx.TakeValue()));
  }
  return Status::Unimplemented("no loader for reachability spec '" +
                               std::string(spec) + "'");
}

void SaveSccView(const SccView& scc, Writer* w) {
  w->WritePodArray(scc.component_of);
  w->WriteU64(scc.num_components);
  w->WritePodArray(scc.component_size);
  w->WritePodArray(scc.cyclic);
}

Status LoadSccView(Reader* r, SccView* out) {
  GTPQ_RETURN_NOT_OK(r->ReadPodArray(&out->component_of));
  uint64_t num_components = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&num_components));
  out->num_components = static_cast<size_t>(num_components);
  GTPQ_RETURN_NOT_OK(r->ReadPodArray(&out->component_size));
  GTPQ_RETURN_NOT_OK(r->ReadPodArray(&out->cyclic));
  if (out->component_size.size() != out->num_components ||
      out->cyclic.size() != out->num_components) {
    return Status::ParseError("inconsistent SCC section sizes");
  }
  // component_of values index the per-component arrays everywhere the
  // backends probe, so bound them here once for all loaders.
  for (NodeId c : out->component_of) {
    if (c >= out->num_components) {
      return Status::ParseError("SCC component id out of range");
    }
  }
  return Status::OK();
}

void SaveDigraph(const Digraph& g, Writer* w) {
  GTPQ_CHECK(g.finalized());
  w->WriteU64(g.NumNodes());
  w->WriteU64(g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId t : g.OutNeighbors(v)) {
      w->WriteU32(v);
      w->WriteU32(t);
    }
  }
}

Status LoadDigraph(Reader* r, Digraph* out) {
  uint64_t num_nodes = 0, num_edges = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&num_nodes));
  GTPQ_RETURN_NOT_OK(r->ReadU64(&num_edges));
  if (num_nodes > 0xFFFFFFFFull) {
    // NodeId is 32-bit; also bounds the Digraph allocation below before
    // a corrupt count can be trusted.
    return Status::ParseError("digraph section node count out of range");
  }
  if (num_edges > r->remaining() / 8) {
    return Status::ParseError("digraph section edge count overruns payload");
  }
  Digraph g(static_cast<size_t>(num_nodes));
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t from = 0, to = 0;
    GTPQ_RETURN_NOT_OK(r->ReadU32(&from));
    GTPQ_RETURN_NOT_OK(r->ReadU32(&to));
    if (from >= num_nodes || to >= num_nodes) {
      return Status::ParseError("digraph section edge out of range");
    }
    g.AddEdge(from, to);
  }
  g.Finalize();
  if (g.NumEdges() != num_edges) {
    // The CSR walk a save iterates is already sorted and duplicate-free,
    // so any shrink here means the section was not produced by SaveDigraph.
    return Status::ParseError("digraph section contains duplicate edges");
  }
  *out = std::move(g);
  return Status::OK();
}

void SaveChainCoverView(const ChainCoverView& cover, Writer* w) {
  w->WritePodArray(cover.cid_of);
  w->WritePodArray(cover.sid_of);
  w->WriteNestedPodArray(cover.chains);
}

Status LoadChainCoverView(Reader* r, ChainCoverView* out) {
  GTPQ_RETURN_NOT_OK(r->ReadPodArray(&out->cid_of));
  GTPQ_RETURN_NOT_OK(r->ReadPodArray(&out->sid_of));
  GTPQ_RETURN_NOT_OK(r->ReadNestedPodArray(&out->chains));
  if (out->cid_of.size() != out->sid_of.size()) {
    return Status::ParseError("inconsistent chain cover section sizes");
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace gtpq
