#include "storage/serializer.h"

#include <array>

namespace gtpq {
namespace storage {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace storage
}  // namespace gtpq
