#ifndef GTPQ_STORAGE_SERIALIZER_H_
#define GTPQ_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"

namespace gtpq {
namespace storage {

/// CRC-32 (IEEE 802.3 polynomial, the zlib flavour) over `len` bytes.
/// Chain blocks by threading the previous return value through `seed`.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Append-only little-endian byte sink for index payloads. Scalars are
/// written with explicit byte order; vectors of trivially copyable
/// element types are written raw (count + bytes), which ties the format
/// to little-endian hosts — the only kind the toolchain targets.
class Writer {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) WriteU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void WriteU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) WriteU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  /// u32 length prefix + raw bytes.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void WriteBytes(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  /// u64 count + raw element bytes.
  template <typename T>
  void WritePodVec(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(v.size());
    if (!v.empty()) WriteBytes(v.data(), v.size() * sizeof(T));
  }

  /// u64 outer count + one WritePodVec per inner vector.
  template <typename T>
  void WriteNestedVec(const std::vector<std::vector<T>>& v) {
    WriteU64(v.size());
    for (const auto& inner : v) WritePodVec(inner);
  }

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
};

/// Bounds-checked reader over a byte span. Every accessor returns a
/// Status so truncated or short payloads surface as clean errors, never
/// out-of-bounds reads.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }
  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }
  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }
  Status ReadString(std::string* out) {
    uint32_t len = 0;
    GTPQ_RETURN_NOT_OK(ReadU32(&len));
    if (remaining() < len) return Truncated("string body");
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  template <typename T>
  Status ReadPodVec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    GTPQ_RETURN_NOT_OK(ReadU64(&count));
    if (count > remaining() / sizeof(T)) return Truncated("vector body");
    out->resize(static_cast<size_t>(count));
    if (count > 0) {
      std::memcpy(out->data(), data_.data() + pos_,
                  static_cast<size_t>(count) * sizeof(T));
      pos_ += static_cast<size_t>(count) * sizeof(T);
    }
    return Status::OK();
  }

  template <typename T>
  Status ReadNestedVec(std::vector<std::vector<T>>* out) {
    uint64_t count = 0;
    GTPQ_RETURN_NOT_OK(ReadU64(&count));
    // Each inner vector costs at least its 8-byte count prefix.
    if (count > remaining() / 8) return Truncated("nested vector");
    out->resize(static_cast<size_t>(count));
    for (auto& inner : *out) GTPQ_RETURN_NOT_OK(ReadPodVec(&inner));
    return Status::OK();
  }

  /// Fails when payload bytes remain unconsumed (corrupt or newer body).
  Status ExpectEnd() const {
    if (remaining() != 0) {
      return Status::ParseError("index payload has " +
                                std::to_string(remaining()) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::ParseError(std::string("index payload truncated reading ") +
                              what);
  }

  std::string_view data_;
  size_t pos_ = 0;
};

// --- Field-list codecs -------------------------------------------------
//
// Every backend body is a flat sequence of the same three field shapes:
// u64 scalars, POD vectors, and nested POD vectors. WriteFields /
// ReadFields serialize such a sequence in declaration order, so a
// backend's SaveBody/LoadBody reduce to one mirrored field list instead
// of hand-repeated WritePodVec/ReadPodVec boilerplate. Overload
// resolution picks the nested-vector codec over the POD one (it is more
// specialized), and the u64 overload absorbs size_t counters.

inline void WriteField(Writer* w, uint64_t v) { w->WriteU64(v); }
template <typename T>
void WriteField(Writer* w, const std::vector<T>& v) {
  w->WritePodVec(v);
}
template <typename T>
void WriteField(Writer* w, const std::vector<std::vector<T>>& v) {
  w->WriteNestedVec(v);
}

/// Writes each field in order.
template <typename... Fields>
void WriteFields(Writer* w, const Fields&... fields) {
  (WriteField(w, fields), ...);
}

inline Status ReadField(Reader* r, uint64_t* v) { return r->ReadU64(v); }
/// size_t counters read through a u64 on platforms where size_t is a
/// distinct type (e.g. unsigned long vs unsigned long long on LP64
/// macOS); SFINAE keeps this overload out where they coincide.
template <typename T,
          typename = std::enable_if_t<std::is_same_v<T, size_t> &&
                                      !std::is_same_v<size_t, uint64_t>>>
Status ReadField(Reader* r, T* v) {
  uint64_t raw = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&raw));
  *v = static_cast<size_t>(raw);
  return Status::OK();
}
template <typename T>
Status ReadField(Reader* r, std::vector<T>* v) {
  return r->ReadPodVec(v);
}
template <typename T>
Status ReadField(Reader* r, std::vector<std::vector<T>>* v) {
  return r->ReadNestedVec(v);
}

/// Reads each field in order, stopping at (and returning) the first
/// failure.
template <typename... Fields>
Status ReadFields(Reader* r, Fields*... fields) {
  Status st;
  // Left-to-right &&-fold mirrors WriteFields' order and short-circuits
  // on the first parse error.
  static_cast<void>(((st = ReadField(r, fields)).ok() && ...));
  return st;
}

}  // namespace storage
}  // namespace gtpq

#endif  // GTPQ_STORAGE_SERIALIZER_H_
