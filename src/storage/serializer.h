#ifndef GTPQ_STORAGE_SERIALIZER_H_
#define GTPQ_STORAGE_SERIALIZER_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "common/status.h"
#include "reachability/index_view.h"

namespace gtpq {
namespace storage {

/// CRC-32 (IEEE 802.3 polynomial, the zlib flavour) over `len` bytes.
/// Chain blocks by threading the previous return value through `seed`.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Append-only little-endian byte sink for index payloads. Scalars are
/// written with explicit byte order; vectors of trivially copyable
/// element types are written raw (count + bytes), which ties the format
/// to little-endian hosts — the only kind the toolchain targets.
///
/// Two layout modes share this class:
///  * default — the dense layout gtpq-wire v1 frames use (no padding);
///  * pod_align — the `.gtpqidx` v2 body layout: every POD vector's
///    element bytes start on an 8-byte boundary (zero pad after the
///    count prefix), so a reader mapping the file can hand out aligned
///    `const T*` views into it instead of memcpying. Alignment is
///    relative to the buffer start; the index framing keeps every
///    buffer at an 8-aligned file offset (see storage/index_io.h).
class Writer {
 public:
  void WriteU8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void WriteU32(uint32_t v) {
    for (int i = 0; i < 4; ++i) WriteU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void WriteU64(uint64_t v) {
    for (int i = 0; i < 8; ++i) WriteU8(static_cast<uint8_t>(v >> (8 * i)));
  }
  /// u32 length prefix + raw bytes.
  void WriteString(std::string_view s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }
  void WriteBytes(const void* data, size_t len) {
    buf_.append(static_cast<const char*>(data), len);
  }

  /// Switches to the aligned `.gtpqidx` v2 body layout (see class doc).
  void set_pod_align(bool on) { pod_align_ = on; }
  bool pod_align() const { return pod_align_; }

  /// Zero-pads the buffer to the next 8-byte boundary.
  void AlignTo8() { buf_.append((8 - buf_.size() % 8) % 8, '\0'); }

  /// u64 count [+ alignment pad in pod_align mode] + raw element bytes.
  template <typename T>
  void WritePodSpan(const T* data, size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU64(count);
    if (pod_align_) AlignTo8();
    if (count > 0) WriteBytes(data, count * sizeof(T));
  }

  template <typename T>
  void WritePodVec(const std::vector<T>& v) {
    WritePodSpan(v.data(), v.size());
  }

  template <typename T>
  void WritePodArray(const PodArray<T>& v) {
    WritePodSpan(v.data(), v.size());
  }

  /// u64 outer count + one WritePodVec per inner vector.
  template <typename T>
  void WriteNestedVec(const std::vector<std::vector<T>>& v) {
    WriteU64(v.size());
    for (const auto& inner : v) WritePodVec(inner);
  }

  template <typename T>
  void WriteNestedPodArray(const NestedPodArray<T>& v) {
    WriteU64(v.size());
    for (const auto& inner : v) WritePodArray(inner);
  }

  const std::string& buffer() const { return buf_; }

 private:
  std::string buf_;
  bool pod_align_ = false;
};

/// Bounds-checked reader over a byte span. Every accessor returns a
/// Status so truncated or short payloads surface as clean errors, never
/// out-of-bounds reads. Every length prefix is validated against the
/// remaining span BEFORE any allocation is sized from it, so a corrupt
/// count can never trigger a multi-GB resize or an out-of-bounds map.
///
/// Mirrors the Writer's two layout modes (`set_pod_align`), and adds an
/// orthogonal `set_zero_copy` mode for mmap-backed loads: in zero-copy
/// mode ReadPodArray hands out borrowed views straight into `data`
/// (which must then outlive every view) instead of copying; misaligned
/// element spans fall back to owned copies, so zero-copy is always a
/// safe superset.
class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }

  void set_pod_align(bool on) { pod_align_ = on; }
  void set_zero_copy(bool on) { zero_copy_ = on; }

  /// Skips the zero pad up to the next 8-byte boundary.
  Status AlignTo8() {
    const size_t pad = (8 - pos_ % 8) % 8;
    if (remaining() < pad) return Truncated("alignment padding");
    pos_ += pad;
    return Status::OK();
  }

  Status ReadU8(uint8_t* out) {
    if (remaining() < 1) return Truncated("u8");
    *out = static_cast<uint8_t>(data_[pos_++]);
    return Status::OK();
  }
  Status ReadU32(uint32_t* out) {
    if (remaining() < 4) return Truncated("u32");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    *out = v;
    return Status::OK();
  }
  Status ReadU64(uint64_t* out) {
    if (remaining() < 8) return Truncated("u64");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    *out = v;
    return Status::OK();
  }
  Status ReadString(std::string* out) {
    uint32_t len = 0;
    GTPQ_RETURN_NOT_OK(ReadU32(&len));
    if (remaining() < len) return Truncated("string body");
    out->assign(data_.data() + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  template <typename T>
  Status ReadPodVec(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint64_t count = 0;
    GTPQ_RETURN_NOT_OK(ReadPodCount<T>(&count));
    out->resize(static_cast<size_t>(count));
    if (count > 0) {
      std::memcpy(out->data(), data_.data() + pos_,
                  static_cast<size_t>(count) * sizeof(T));
      pos_ += static_cast<size_t>(count) * sizeof(T);
    }
    return Status::OK();
  }

  /// PodArray counterpart of ReadPodVec: borrows in zero-copy mode,
  /// copies otherwise.
  template <typename T>
  Status ReadPodArray(PodArray<T>* out) {
    uint64_t count = 0;
    GTPQ_RETURN_NOT_OK(ReadPodCount<T>(&count));
    const char* base = data_.data() + pos_;
    if (zero_copy_ &&
        reinterpret_cast<uintptr_t>(base) % alignof(T) == 0) {
      *out = PodArray<T>::Borrowed(reinterpret_cast<const T*>(base),
                                   static_cast<size_t>(count));
      pos_ += static_cast<size_t>(count) * sizeof(T);
      return Status::OK();
    }
    std::vector<T> owned(static_cast<size_t>(count));
    if (count > 0) {
      std::memcpy(owned.data(), base,
                  static_cast<size_t>(count) * sizeof(T));
      pos_ += static_cast<size_t>(count) * sizeof(T);
    }
    *out = PodArray<T>(std::move(owned));
    return Status::OK();
  }

  template <typename T>
  Status ReadNestedVec(std::vector<std::vector<T>>* out) {
    uint64_t count = 0;
    GTPQ_RETURN_NOT_OK(ReadU64(&count));
    // Each inner vector costs at least its 8-byte count prefix.
    if (count > remaining() / 8) return Truncated("nested vector");
    out->resize(static_cast<size_t>(count));
    for (auto& inner : *out) GTPQ_RETURN_NOT_OK(ReadPodVec(&inner));
    return Status::OK();
  }

  template <typename T>
  Status ReadNestedPodArray(NestedPodArray<T>* out) {
    uint64_t count = 0;
    GTPQ_RETURN_NOT_OK(ReadU64(&count));
    if (count > remaining() / 8) return Truncated("nested vector");
    std::vector<PodArray<T>> rows(static_cast<size_t>(count));
    for (auto& row : rows) GTPQ_RETURN_NOT_OK(ReadPodArray(&row));
    *out = NestedPodArray<T>(std::move(rows));
    return Status::OK();
  }

  /// Fails when payload bytes remain unconsumed (corrupt or newer body).
  Status ExpectEnd() const {
    if (remaining() != 0) {
      return Status::ParseError("index payload has " +
                                std::to_string(remaining()) +
                                " trailing bytes");
    }
    return Status::OK();
  }

 private:
  static Status Truncated(const char* what) {
    return Status::ParseError(std::string("index payload truncated reading ") +
                              what);
  }

  /// Shared POD-vector prologue: count prefix, optional alignment pad,
  /// and the element-bytes-fit-the-remaining-span bound.
  template <typename T>
  Status ReadPodCount(uint64_t* count) {
    static_assert(std::is_trivially_copyable_v<T>);
    GTPQ_RETURN_NOT_OK(ReadU64(count));
    if (pod_align_) GTPQ_RETURN_NOT_OK(AlignTo8());
    if (*count > remaining() / sizeof(T)) return Truncated("vector body");
    return Status::OK();
  }

  std::string_view data_;
  size_t pos_ = 0;
  bool pod_align_ = false;
  bool zero_copy_ = false;
};

// --- Field-list codecs -------------------------------------------------
//
// Every backend body is a flat sequence of the same three field shapes:
// u64 scalars, POD vectors, and nested POD vectors. WriteFields /
// ReadFields serialize such a sequence in declaration order, so a
// backend's SaveBody/LoadBody reduce to one mirrored field list instead
// of hand-repeated WritePodVec/ReadPodVec boilerplate. Overload
// resolution picks the nested-vector codec over the POD one (it is more
// specialized), and the u64 overload absorbs size_t counters.

inline void WriteField(Writer* w, uint64_t v) { w->WriteU64(v); }
template <typename T>
void WriteField(Writer* w, const std::vector<T>& v) {
  w->WritePodVec(v);
}
template <typename T>
void WriteField(Writer* w, const std::vector<std::vector<T>>& v) {
  w->WriteNestedVec(v);
}
template <typename T>
void WriteField(Writer* w, const PodArray<T>& v) {
  w->WritePodArray(v);
}
template <typename T>
void WriteField(Writer* w, const NestedPodArray<T>& v) {
  w->WriteNestedPodArray(v);
}

/// Writes each field in order.
template <typename... Fields>
void WriteFields(Writer* w, const Fields&... fields) {
  (WriteField(w, fields), ...);
}

inline Status ReadField(Reader* r, uint64_t* v) { return r->ReadU64(v); }
/// size_t counters read through a u64 on platforms where size_t is a
/// distinct type (e.g. unsigned long vs unsigned long long on LP64
/// macOS); SFINAE keeps this overload out where they coincide.
template <typename T,
          typename = std::enable_if_t<std::is_same_v<T, size_t> &&
                                      !std::is_same_v<size_t, uint64_t>>>
Status ReadField(Reader* r, T* v) {
  uint64_t raw = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&raw));
  *v = static_cast<size_t>(raw);
  return Status::OK();
}
template <typename T>
Status ReadField(Reader* r, std::vector<T>* v) {
  return r->ReadPodVec(v);
}
template <typename T>
Status ReadField(Reader* r, std::vector<std::vector<T>>* v) {
  return r->ReadNestedVec(v);
}
template <typename T>
Status ReadField(Reader* r, PodArray<T>* v) {
  return r->ReadPodArray(v);
}
template <typename T>
Status ReadField(Reader* r, NestedPodArray<T>* v) {
  return r->ReadNestedPodArray(v);
}

/// Reads each field in order, stopping at (and returning) the first
/// failure.
template <typename... Fields>
Status ReadFields(Reader* r, Fields*... fields) {
  Status st;
  // Left-to-right &&-fold mirrors WriteFields' order and short-circuits
  // on the first parse error.
  static_cast<void>(((st = ReadField(r, fields)).ok() && ...));
  return st;
}

}  // namespace storage
}  // namespace gtpq

#endif  // GTPQ_STORAGE_SERIALIZER_H_
