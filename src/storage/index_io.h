#ifndef GTPQ_STORAGE_INDEX_IO_H_
#define GTPQ_STORAGE_INDEX_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "graph/algorithms.h"
#include "graph/digraph.h"
#include "reachability/chain_cover.h"
#include "reachability/index_view.h"
#include "reachability/reachability_index.h"
#include "storage/serializer.h"

namespace gtpq {
namespace storage {

/// On-disk layout of a ".gtpqidx" reachability index file (all scalars
/// little-endian):
///
///   [0..8)    magic "GTPQIDX\n"
///   [8..12)   u32 format version (kIndexFormatVersion)
///   [12..16)  u32 CRC-32 over every byte from offset 16 to EOF
///   [16..)    header continued, covered by the checksum:
///               string  backend spec ("contour", "sharded:interval", ...)
///               u64     graph fingerprint (GraphFingerprint of the
///                       graph the index was built from)
///               u64     num nodes, u64 num edges of that graph
///               u64     payload size in bytes
///               zero pad to the next 8-byte file offset
///             payload: backend-specific body (each backend's SaveBody;
///             decorators nest their inner oracle's section)
///
/// Format v2 is the pod_align layout (storage/serializer.h): the header
/// is padded so the payload starts 8-aligned, and every POD vector in
/// the payload pads after its count prefix so its element bytes sit on
/// an 8-byte file offset. Since offset 16 is itself 8-aligned, file
/// alignment equals mapped-memory alignment — which is what lets
/// LoadReachabilityIndexView hand out element views pointing straight
/// into read-only mmap'd pages instead of heap copies.
///
/// Readers reject, with a clean Status and no crash: wrong magic,
/// version mismatch, checksum mismatch (covers truncation and bit
/// corruption), trailing bytes, and — when the caller supplies the
/// graph being served — a fingerprint mismatch.
inline constexpr std::string_view kIndexMagic = "GTPQIDX\n";
inline constexpr uint32_t kIndexFormatVersion = 2;
inline constexpr std::string_view kIndexFileExtension = ".gtpqidx";

/// Order-sensitive 64-bit digest of a finalized graph's structure
/// (node count + CSR adjacency). Two graphs with the same fingerprint
/// are, for persistence purposes, the same graph.
uint64_t GraphFingerprint(const Digraph& g);

/// Parsed header of an index file, for `gteactl inspect` and tooling.
struct IndexFileInfo {
  uint32_t format_version = 0;
  std::string spec;
  uint64_t graph_fingerprint = 0;
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t payload_bytes = 0;
  uint64_t file_bytes = 0;
};

/// Serializes a factory-built oracle (any base backend or decorator
/// chain; the oracle's name() must be its factory spec) to `path`,
/// stamping the fingerprint of `g`, the graph it was built from.
Status SaveReachabilityIndex(const ReachabilityOracle& oracle,
                             const Digraph& g, const std::string& path);

/// Loads an index file back into a ready-to-probe oracle. The returned
/// oracle's name() is the spec it was saved under. No fingerprint check
/// — the caller vouches for the graph.
Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndex(
    const std::string& path);

/// Same, but additionally rejects the file (FailedPrecondition) when
/// its fingerprint does not match `expected_graph` — the safe entry
/// point the factory's "file:<path>" spec uses.
Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndex(
    const std::string& path, const Digraph& expected_graph);

/// Zero-copy load: validates the header/CRC/fingerprint over a
/// read-only shared mapping of `path` and constructs backends whose
/// flat-array views BORROW the mapped payload instead of copying it —
/// probe paths then read page-faulted mapped memory shared with every
/// other process mapping the same file. The mapping's lifetime is
/// pinned on the returned root oracle (RetainBuffer), which owns all
/// nested sub-indexes, so the views stay valid for the oracle's whole
/// life. Served through the factory as "mmap:<path>".
Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndexView(
    const std::string& path);
Result<std::unique_ptr<ReachabilityOracle>> LoadReachabilityIndexView(
    const std::string& path, const Digraph& expected_graph);

/// Reads and validates (magic, version, checksum) the header only.
Result<IndexFileInfo> InspectReachabilityIndex(const std::string& path);

// --- Body-level hooks (used by decorators for nested sections) --------

/// Appends the backend-specific body of `oracle` to `w`, dispatching on
/// its spec. Cached decorators persist only their inner oracle (cache
/// contents are transient); sharded decorators write per-shard sections.
Status SaveOracleBody(const ReachabilityOracle& oracle, Writer* w);

/// Parses the body written by SaveOracleBody for `spec`.
Result<std::unique_ptr<ReachabilityOracle>> LoadOracleBody(
    std::string_view spec, Reader* r);

// --- Codecs for substructures shared across backends ------------------
//
// Backends hold these substructures through the IndexView seam
// (reachability/index_view.h), so the codecs speak the view types:
// saves read owned-or-borrowed arrays transparently, loads produce
// borrowed views under a zero-copy reader and owned copies otherwise.

void SaveSccView(const SccView& scc, Writer* w);
Status LoadSccView(Reader* r, SccView* out);
void SaveChainCoverView(const ChainCoverView& cover, Writer* w);
Status LoadChainCoverView(Reader* r, ChainCoverView* out);
/// Structure-only digraph codec (node count + edge list). Used by the
/// delta-overlay section, whose immutable base graph travels inside the
/// index file so a loaded snapshot can keep searching the overlay.
void SaveDigraph(const Digraph& g, Writer* w);
Status LoadDigraph(Reader* r, Digraph* out);

}  // namespace storage
}  // namespace gtpq

#endif  // GTPQ_STORAGE_INDEX_IO_H_
