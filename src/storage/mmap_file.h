#ifndef GTPQ_STORAGE_MMAP_FILE_H_
#define GTPQ_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"

namespace gtpq {
namespace storage {

/// RAII read-only shared mapping of a whole file (`MAP_SHARED |
/// PROT_READ`). Because the mapping is shared and never written, N
/// processes mapping the same index file reference one set of physical
/// pages, page-faulted on demand — the substrate of zero-copy index
/// serving. The mapping stays valid for the lifetime of this object
/// even if the path is later renamed over (loads pin the inode, which
/// is what makes `gteactl apply`'s write-temp + rename re-save safe
/// under live readers).
class MmapFile {
 public:
  /// Maps `path` read-only. NotFound when the file cannot be opened,
  /// Internal on mmap failure, Unimplemented off POSIX.
  static Result<std::shared_ptr<MmapFile>> Map(const std::string& path);

  ~MmapFile();
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  std::string_view bytes() const {
    return std::string_view(static_cast<const char*>(addr_), size_);
  }
  const std::string& path() const { return path_; }

 private:
  MmapFile(std::string path, void* addr, size_t size)
      : path_(std::move(path)), addr_(addr), size_(size) {}

  std::string path_;
  void* addr_ = nullptr;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace gtpq

#endif  // GTPQ_STORAGE_MMAP_FILE_H_
