#include "storage/mmap_file.h"

#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define GTPQ_MMAP_POSIX 1
#endif

namespace gtpq {
namespace storage {

#if defined(GTPQ_MMAP_POSIX)

Result<std::shared_ptr<MmapFile>> MmapFile::Map(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    return Status::NotFound("cannot open index file: " + path + ": " +
                            std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) < 0) {
    const Status err =
        Status::Internal("fstat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return err;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::ParseError("index file is empty: " + path);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping pins the inode; the descriptor is no longer needed.
  ::close(fd);
  if (addr == MAP_FAILED) {
    return Status::Internal("mmap " + path + ": " + std::strerror(errno));
  }
  return std::shared_ptr<MmapFile>(new MmapFile(path, addr, size));
}

MmapFile::~MmapFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
}

#else  // !GTPQ_MMAP_POSIX

Result<std::shared_ptr<MmapFile>> MmapFile::Map(const std::string& path) {
  (void)path;
  return Status::Unimplemented("MmapFile requires POSIX mmap");
}

MmapFile::~MmapFile() = default;

#endif  // GTPQ_MMAP_POSIX

}  // namespace storage
}  // namespace gtpq
