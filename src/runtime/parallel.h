#ifndef GTPQ_RUNTIME_PARALLEL_H_
#define GTPQ_RUNTIME_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace gtpq {

/// Intra-query parallel execution primitives. Where runtime/ThreadPool
/// scales ACROSS queries (one engine per worker), these fan one query's
/// stage work out ACROSS cores: GTEA's pruning, matching-graph, and
/// enumeration stages call ParallelRun/ParallelForWorkStealing with the
/// lane budget from GteaOptions::parallelism.
///
/// All lanes of one call share a process-wide helper pool, lazily
/// created at the first multi-lane request and sized to the hardware.
/// The calling thread always executes lane 0 itself, so progress is
/// guaranteed even when the pool is saturated by concurrent queries —
/// helper tasks are pure compute and never block on other tasks, so
/// callers waiting at a stage barrier can never deadlock the pool.
/// Lane bodies must not call back into ParallelRun (no nesting).

/// Clamps a requested parallelism budget to a sane lane count: 0
/// (serial) and 1 pass through unchanged, larger requests are capped
/// at max(hardware threads, 64). Deliberately NOT capped at the core
/// count — more lanes than cores just time-slice on the helper pool,
/// and letting a 2-core CI runner (or a 1-core container) execute an
/// 8-lane request is what keeps the parallel partitioning paths
/// exercised everywhere; the cap only bounds per-lane bookkeeping
/// against absurd requests. Never touches the helper pool.
size_t EffectiveParallelism(size_t requested);

/// Worker threads in the shared helper pool (creates it on first call).
size_t HelperPoolThreads();

/// Runs body(lane) once for every lane in [0, lanes) and returns when
/// all lanes finished (a stage barrier). Lane 0 runs inline on the
/// calling thread; lanes 1.. run on the helper pool. lanes <= 1 is the
/// serial fast path: body(0) inline, no pool, no synchronization.
///
/// The barrier gives the usual release/acquire guarantee: everything
/// lane bodies wrote happens-before the return, so callers may read
/// lane outputs without further synchronization.
void ParallelRun(size_t lanes, const std::function<void(size_t)>& body);

/// Work-stealing parallel for: executes body(index, lane) exactly once
/// for every index in [0, n), partitioned into contiguous per-lane
/// ranges that idle lanes steal from (largest remainder first, upper
/// half per steal). Use when per-index cost is skewed — enumeration
/// subtrees, matching-graph candidate scans — and a static partition
/// would leave lanes idle. Which lane runs an index is nondeterministic;
/// callers keep results deterministic by writing index-addressed slots.
/// lanes <= 1 (or n <= 1) degrades to a serial loop on the caller.
void ParallelForWorkStealing(
    size_t n, size_t lanes,
    const std::function<void(size_t, size_t)>& body);

}  // namespace gtpq

#endif  // GTPQ_RUNTIME_PARALLEL_H_
