#include "runtime/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "runtime/thread_pool.h"

namespace gtpq {

namespace {

size_t HardwareLanes() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/// The shared intra-query helper pool. Leaked on purpose: worker
/// threads may still be parked in epoll/condvar waits at process exit,
/// and tearing the pool down from a static destructor would race
/// lane submissions from other translation units' destructors.
ThreadPool& HelperPool() {
  static ThreadPool* pool = new ThreadPool(HardwareLanes());
  return *pool;
}

}  // namespace

size_t EffectiveParallelism(size_t requested) {
  if (requested <= 1) return requested;
  return std::min(requested, std::max<size_t>(HardwareLanes(), 64));
}

size_t HelperPoolThreads() { return HelperPool().num_threads(); }

void ParallelRun(size_t lanes, const std::function<void(size_t)>& body) {
  if (lanes <= 1) {
    body(0);
    return;
  }
  // Stage barrier: the caller runs lane 0, then waits for the helper
  // lanes. The cv handshake doubles as the release/acquire edge that
  // publishes lane writes to the caller.
  std::mutex mu;
  std::condition_variable cv;
  size_t remaining = lanes - 1;
  ThreadPool& pool = HelperPool();
  for (size_t lane = 1; lane < lanes; ++lane) {
    pool.Submit([&, lane] {
      body(lane);
      std::lock_guard<std::mutex> lock(mu);
      if (--remaining == 0) cv.notify_one();
    });
  }
  body(0);
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&remaining] { return remaining == 0; });
}

void ParallelForWorkStealing(
    size_t n, size_t lanes,
    const std::function<void(size_t, size_t)>& body) {
  lanes = std::min(lanes, n);
  if (lanes <= 1) {
    for (size_t i = 0; i < n; ++i) body(i, 0);
    return;
  }
  GTPQ_CHECK(n < UINT32_MAX);

  // Per-lane range deque packed as one word: (next << 32) | end. Owners
  // claim from the front, thieves split off the upper half — both via
  // CAS on the packed word, so every index is claimed exactly once.
  const auto pack = [](uint32_t next, uint32_t end) {
    return (static_cast<uint64_t>(next) << 32) | end;
  };
  std::vector<std::atomic<uint64_t>> slots(lanes);
  for (size_t lane = 0; lane < lanes; ++lane) {
    const uint32_t begin = static_cast<uint32_t>(lane * n / lanes);
    const uint32_t end = static_cast<uint32_t>((lane + 1) * n / lanes);
    slots[lane].store(pack(begin, end), std::memory_order_relaxed);
  }

  ParallelRun(lanes, [&](size_t lane) {
    auto drain = [&](size_t slot) {
      for (;;) {
        uint64_t cur = slots[slot].load(std::memory_order_relaxed);
        const uint32_t next = static_cast<uint32_t>(cur >> 32);
        const uint32_t end = static_cast<uint32_t>(cur);
        if (next >= end) return;
        if (slots[slot].compare_exchange_weak(cur, pack(next + 1, end),
                                              std::memory_order_acq_rel)) {
          body(next, lane);
        }
      }
    };
    drain(lane);
    for (;;) {
      // Steal from the lane with the most work left.
      size_t victim = lanes;
      uint64_t snapshot = 0;
      uint32_t best = 0;
      for (size_t t = 0; t < lanes; ++t) {
        if (t == lane) continue;
        const uint64_t cur = slots[t].load(std::memory_order_relaxed);
        const uint32_t next = static_cast<uint32_t>(cur >> 32);
        const uint32_t end = static_cast<uint32_t>(cur);
        const uint32_t rem = next < end ? end - next : 0;
        if (rem > best) {
          best = rem;
          victim = t;
          snapshot = cur;
        }
      }
      if (victim == lanes) return;  // everything claimed
      const uint32_t next = static_cast<uint32_t>(snapshot >> 32);
      const uint32_t end = static_cast<uint32_t>(snapshot);
      // Victim keeps the lower part (at least one index), the thief
      // takes [mid, end).
      const uint32_t mid = next + (end - next + 1) / 2;
      if (mid >= end) {
        // One index left: contend on the victim's slot directly.
        if (slots[victim].compare_exchange_weak(
                snapshot, pack(next + 1, end),
                std::memory_order_acq_rel)) {
          body(next, lane);
        }
        continue;
      }
      if (slots[victim].compare_exchange_weak(snapshot, pack(next, mid),
                                              std::memory_order_acq_rel)) {
        slots[lane].store(pack(mid, end), std::memory_order_release);
        drain(lane);
      }
    }
  });
}

}  // namespace gtpq
