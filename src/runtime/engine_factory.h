#ifndef GTPQ_RUNTIME_ENGINE_FACTORY_H_
#define GTPQ_RUNTIME_ENGINE_FACTORY_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/evaluator.h"
#include "graph/data_graph.h"

namespace gtpq {

/// Per-worker engine stamping for the serving runtime. MakeEngine()
/// builds an index per call, which is exactly wrong for a thread pool:
/// N workers would pay N index builds for one immutable artifact. This
/// factory parses an engine spec once, builds the spec's shared
/// immutable pieces once (reachability oracle, transitive closure,
/// SSPI, interval index, region encoding — all read-only after
/// construction, with thread-confined counters), and then stamps out
/// cheap per-worker Evaluators that share them.
///
/// Accepts every MakeEngine spec, including "gtea:<oracle-spec>" with
/// cached:/sharded: decorator chains. Create() is safe to call from
/// any thread; each returned Evaluator must stay thread-confined (the
/// Evaluator contract says nothing about concurrent Evaluate calls on
/// ONE instance — sharing happens at the oracle layer).
class SharedEngineFactory {
 public:
  /// Parses the spec and prebuilds its shared artifacts. Returns
  /// nullptr for unknown specs.
  static std::unique_ptr<SharedEngineFactory> Make(
      std::string_view spec, const DataGraph& g,
      std::vector<std::string> cross_names = {});

  /// Stamps a fresh Evaluator sharing the prebuilt artifacts.
  std::unique_ptr<Evaluator> Create() const { return create_(); }

  std::string_view spec() const { return spec_; }

 private:
  SharedEngineFactory(std::string spec,
                      std::function<std::unique_ptr<Evaluator>()> create)
      : spec_(std::move(spec)), create_(std::move(create)) {}

  std::string spec_;
  std::function<std::unique_ptr<Evaluator>()> create_;
};

}  // namespace gtpq

#endif  // GTPQ_RUNTIME_ENGINE_FACTORY_H_
