#ifndef GTPQ_RUNTIME_ENGINE_FACTORY_H_
#define GTPQ_RUNTIME_ENGINE_FACTORY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "core/evaluator.h"
#include "dynamic/delta_overlay.h"
#include "dynamic/graph_delta.h"
#include "graph/data_graph.h"

namespace gtpq {

/// One immutable serving epoch: a graph view plus an engine stamp bound
/// to it. Snapshots are produced by SharedEngineFactory — epoch 0 wraps
/// the caller's base graph, every ApplyUpdates() installs a successor —
/// and are handed out as shared_ptr<const>, so a batch that pinned a
/// snapshot keeps its whole world (graph, oracle, engines) alive and
/// consistent while newer epochs are already serving.
class EngineSnapshot {
 public:
  uint64_t epoch() const { return epoch_; }
  const DataGraph& graph() const { return *graph_; }
  /// Stamps a fresh Evaluator over this snapshot's shared artifacts.
  /// The engine must not outlive the snapshot (hold the shared_ptr).
  std::unique_ptr<Evaluator> CreateEngine() const { return create_(); }
  /// Name the stamped engines report (e.g. "gtea[delta:contour]" once
  /// updates wrapped the oracle).
  std::string_view engine_name() const { return engine_name_; }
  /// The snapshot's shared reachability oracle — set for gtea specs,
  /// null otherwise (tuple baselines build no oracle). The network
  /// tier answers PROBE frames from this without stamping an engine.
  const ReachabilityOracle* oracle() const { return oracle_.get(); }

 private:
  friend class SharedEngineFactory;

  uint64_t epoch_ = 0;
  const DataGraph* graph_ = nullptr;
  std::shared_ptr<const DataGraph> owned_graph_;  // null at epoch 0
  std::function<std::unique_ptr<Evaluator>()> create_;
  std::string engine_name_;
  // Set on the incremental gtea path: the snapshot's (possibly
  // delta-wrapped) oracle, threaded into the next ApplyUpdates.
  std::shared_ptr<const ReachabilityOracle> oracle_;
};

/// Per-worker engine stamping for the serving runtime. MakeEngine()
/// builds an index per call, which is exactly wrong for a thread pool:
/// N workers would pay N index builds for one immutable artifact. This
/// factory parses an engine spec once, builds the spec's shared
/// immutable pieces once (reachability oracle, transitive closure,
/// SSPI, interval index, region encoding — all read-only after
/// construction, with thread-confined counters), and then stamps out
/// cheap per-worker Evaluators that share them.
///
/// Accepts every MakeEngine spec, including "gtea:<oracle-spec>" with
/// cached:/sharded:/delta: decorator chains. Create() is safe to call
/// from any thread; each returned Evaluator must stay thread-confined
/// (the Evaluator contract says nothing about concurrent Evaluate calls
/// on ONE instance — sharing happens at the oracle layer).
///
/// The factory is also the write side of dynamic serving: ApplyUpdates
/// folds an UpdateBatch into a NEW EngineSnapshot and installs it
/// atomically, while readers holding the previous snapshot() continue
/// unblocked (epoch-based snapshot isolation; readers never block
/// writers, writers never block readers). For "gtea" specs the oracle
/// is maintained incrementally — the first update wraps it in a
/// DeltaOverlayOracle, later ones extend the delta (auto-compacting per
/// `delta_options`) — so an update costs a linear graph
/// materialization instead of an index rebuild. Other engine specs fall
/// back to a full artifact rebuild over the updated graph, preserving
/// the same snapshot semantics.
class SharedEngineFactory {
 public:
  /// Parses the spec and prebuilds its shared artifacts. Returns
  /// nullptr for unknown specs. `g` must outlive the factory; it backs
  /// the epoch-0 snapshot.
  static std::unique_ptr<SharedEngineFactory> Make(
      std::string_view spec, const DataGraph& g,
      std::vector<std::string> cross_names = {},
      DeltaOverlayOptions delta_options = {});

  /// The current snapshot. Callers that stamp engines for a whole batch
  /// should pin one snapshot and use it throughout.
  std::shared_ptr<const EngineSnapshot> snapshot() const;
  uint64_t epoch() const { return snapshot()->epoch(); }

  /// Stamps a fresh Evaluator bound to the current snapshot.
  std::unique_ptr<Evaluator> Create() const {
    return snapshot()->CreateEngine();
  }

  /// Validates `batch` against the current snapshot's graph view and
  /// installs the successor snapshot. Thread-safe: concurrent writers
  /// serialize, concurrent readers keep serving the old epoch. On error
  /// nothing changes.
  Status ApplyUpdates(const UpdateBatch& batch);

  std::string_view spec() const { return spec_; }

 private:
  SharedEngineFactory(std::string spec,
                      std::vector<std::string> cross_names,
                      DeltaOverlayOptions delta_options)
      : spec_(std::move(spec)),
        cross_names_(std::move(cross_names)),
        delta_options_(delta_options) {}

  /// Builds the epoch-0 creator (and, for gtea specs, the shared
  /// oracle) over `g`. Returns false for unknown specs.
  bool BuildInitialSnapshot(const DataGraph& g);

  void Install(std::shared_ptr<const EngineSnapshot> next);

  std::string spec_;
  std::vector<std::string> cross_names_;
  DeltaOverlayOptions delta_options_;

  mutable std::mutex mu_;        // guards current_
  std::shared_ptr<const EngineSnapshot> current_;
  std::mutex update_mu_;         // serializes ApplyUpdates
  // Vertices removed by ANY earlier batch. Materialized graphs keep a
  // tombstoned id as a plain isolated vertex, and the gtea overlay
  // forgets removals at compaction, so this set is what makes "removed
  // ids stay dead" durable across batches and uniform across engine
  // specs. Guarded by update_mu_.
  std::unordered_set<NodeId> tombstones_;
};

}  // namespace gtpq

#endif  // GTPQ_RUNTIME_ENGINE_FACTORY_H_
