#include "runtime/engine_factory.h"

#include <utility>

#include "baselines/engines.h"
#include "baselines/tree_encoding.h"
#include "core/gtea.h"
#include "reachability/factory.h"

namespace gtpq {

std::unique_ptr<SharedEngineFactory> SharedEngineFactory::Make(
    std::string_view spec, const DataGraph& g,
    std::vector<std::string> cross_names) {
  using Creator = std::function<std::unique_ptr<Evaluator>()>;

  auto wrap = [&spec](Creator create) {
    return std::unique_ptr<SharedEngineFactory>(
        new SharedEngineFactory(std::string(spec), std::move(create)));
  };

  if (spec == "gtea" || spec.rfind("gtea:", 0) == 0) {
    const std::string_view oracle_spec =
        spec == "gtea" ? std::string_view("contour") : spec.substr(5);
    auto idx = MakeReachabilityIndex(oracle_spec, g.graph());
    if (idx == nullptr) return nullptr;
    std::shared_ptr<const ReachabilityOracle> shared(std::move(idx));
    return wrap([&g, shared] {
      return std::make_unique<GteaEngine>(g, shared);
    });
  }
  if (spec == "naive") {
    auto tc = std::make_shared<const TransitiveClosure>(
        TransitiveClosure::Build(g.graph()));
    return wrap([&g, tc] {
      return std::make_unique<BruteForceEngine>(g, tc);
    });
  }
  if (spec == "twigstack" || spec == "twig2stack") {
    const bool twig2 = spec == "twig2stack";
    auto enc =
        std::make_shared<const RegionEncoding>(BuildRegionEncoding(g));
    return wrap([&g, twig2, enc, names = std::move(cross_names)] {
      return std::make_unique<TwigStackEngine>(g, twig2, names, enc);
    });
  }
  if (spec == "twigstackd") {
    auto sspi = std::make_shared<const Sspi>(Sspi::Build(g.graph()));
    return wrap([&g, sspi] {
      return std::make_unique<TwigStackDEngine>(g, sspi);
    });
  }
  if (spec == "hgjoin+" || spec == "hgjoin*") {
    const bool graph_intermediates = spec == "hgjoin*";
    auto idx = std::make_shared<const IntervalIndex>(
        IntervalIndex::Build(g.graph()));
    return wrap([&g, graph_intermediates, idx] {
      return std::make_unique<HgJoinEngine>(g, graph_intermediates, idx);
    });
  }
  if (spec.rfind("decompose:", 0) == 0) {
    auto inner =
        Make(spec.substr(10), g, std::move(cross_names));
    if (inner == nullptr) return nullptr;
    // shared_ptr keeps the inner factory alive inside the creator.
    std::shared_ptr<SharedEngineFactory> inner_shared(std::move(inner));
    return wrap([inner_shared] {
      return std::make_unique<DecomposeEngine>(
          std::shared_ptr<Evaluator>(inner_shared->Create()));
    });
  }
  return nullptr;
}

}  // namespace gtpq
