#include "runtime/engine_factory.h"

#include <utility>

#include "baselines/engines.h"
#include "baselines/tree_encoding.h"
#include "core/gtea.h"
#include "reachability/factory.h"

namespace gtpq {

std::unique_ptr<SharedEngineFactory> SharedEngineFactory::Make(
    std::string_view spec, const DataGraph& g,
    std::vector<std::string> cross_names,
    DeltaOverlayOptions delta_options) {
  auto factory = std::unique_ptr<SharedEngineFactory>(
      new SharedEngineFactory(std::string(spec), std::move(cross_names),
                              delta_options));
  if (!factory->BuildInitialSnapshot(g)) return nullptr;
  return factory;
}

bool SharedEngineFactory::BuildInitialSnapshot(const DataGraph& g) {
  auto snap = std::make_shared<EngineSnapshot>();
  snap->epoch_ = 0;
  snap->graph_ = &g;
  const std::string_view spec = spec_;

  if (spec == "gtea" || spec.rfind("gtea:", 0) == 0) {
    const std::string_view oracle_spec =
        spec == "gtea" ? std::string_view("contour") : spec.substr(5);
    std::shared_ptr<const ReachabilityOracle> shared;
    if (oracle_spec.rfind("delta:", 0) == 0 &&
        IsValidReachabilitySpec(oracle_spec)) {
      // Build the explicit top-level overlay here instead of through
      // the factory so it carries the caller's delta_options_ (the
      // factory can only use defaults). Overlays nested deeper in the
      // spec keep factory defaults.
      auto inner = MakeReachabilityIndex(oracle_spec.substr(6), g.graph());
      if (inner == nullptr) return false;
      shared = std::make_shared<const DeltaOverlayOracle>(
          std::shared_ptr<const ReachabilityOracle>(std::move(inner)),
          &g.graph(), delta_options_);
    } else {
      auto idx = MakeReachabilityIndex(oracle_spec, g.graph());
      if (idx == nullptr) return false;
      shared = std::shared_ptr<const ReachabilityOracle>(std::move(idx));
    }
    snap->oracle_ = shared;
    snap->create_ = [&g, shared] {
      return std::make_unique<GteaEngine>(g, shared);
    };
  } else if (spec == "naive") {
    auto tc = std::make_shared<const TransitiveClosure>(
        TransitiveClosure::Build(g.graph()));
    snap->create_ = [&g, tc] {
      return std::make_unique<BruteForceEngine>(g, tc);
    };
  } else if (spec == "twigstack" || spec == "twig2stack") {
    const bool twig2 = spec == "twig2stack";
    auto enc =
        std::make_shared<const RegionEncoding>(BuildRegionEncoding(g));
    snap->create_ = [&g, twig2, enc, names = cross_names_] {
      return std::make_unique<TwigStackEngine>(g, twig2, names, enc);
    };
  } else if (spec == "twigstackd") {
    auto sspi = std::make_shared<const Sspi>(Sspi::Build(g.graph()));
    snap->create_ = [&g, sspi] {
      return std::make_unique<TwigStackDEngine>(g, sspi);
    };
  } else if (spec == "hgjoin+" || spec == "hgjoin*") {
    const bool graph_intermediates = spec == "hgjoin*";
    auto idx = std::make_shared<const IntervalIndex>(
        IntervalIndex::Build(g.graph()));
    snap->create_ = [&g, graph_intermediates, idx] {
      return std::make_unique<HgJoinEngine>(g, graph_intermediates, idx);
    };
  } else if (spec.rfind("decompose:", 0) == 0) {
    auto inner = Make(spec.substr(10), g, cross_names_, delta_options_);
    if (inner == nullptr) return false;
    // shared_ptr keeps the inner factory alive inside the creator.
    std::shared_ptr<SharedEngineFactory> inner_shared(std::move(inner));
    snap->create_ = [inner_shared] {
      return std::make_unique<DecomposeEngine>(
          std::shared_ptr<Evaluator>(inner_shared->Create()));
    };
  } else {
    return false;
  }

  snap->engine_name_ = std::string(snap->create_()->name());
  Install(std::move(snap));
  return true;
}

std::shared_ptr<const EngineSnapshot> SharedEngineFactory::snapshot()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

void SharedEngineFactory::Install(
    std::shared_ptr<const EngineSnapshot> next) {
  std::lock_guard<std::mutex> lock(mu_);
  current_ = std::move(next);
}

Status SharedEngineFactory::ApplyUpdates(const UpdateBatch& batch) {
  std::lock_guard<std::mutex> writer(update_mu_);
  const std::shared_ptr<const EngineSnapshot> cur = snapshot();

  // Removed ids stay dead forever. The per-batch delta below only
  // remembers this batch's removals (a tombstone is just an isolated
  // vertex in the materialized graph), so enforce the durable rule
  // here, uniformly for every engine spec.
  if (!tombstones_.empty()) {
    for (const EdgeRef& e : batch.add_edges) {
      if (tombstones_.count(e.from) != 0 || tombstones_.count(e.to) != 0) {
        return Status::FailedPrecondition(
            "add_edge touches a removed vertex: (" +
            std::to_string(e.from) + ", " + std::to_string(e.to) + ")");
      }
    }
    for (const EdgeRef& e : batch.remove_edges) {
      if (tombstones_.count(e.from) != 0 || tombstones_.count(e.to) != 0) {
        return Status::FailedPrecondition(
            "remove_edge touches a removed vertex: (" +
            std::to_string(e.from) + ", " + std::to_string(e.to) + ")");
      }
    }
    for (NodeId v : batch.remove_nodes) {
      if (tombstones_.count(v) != 0) {
        return Status::FailedPrecondition("vertex already removed: " +
                                          std::to_string(v));
      }
    }
  }

  // Successor graph view: a one-batch delta materialized over the
  // current snapshot's DataGraph (shared attribute namespace, stable
  // ids). This is linear work — the index stays incremental below.
  GraphDelta step(cur->graph().NumNodes());
  GTPQ_RETURN_NOT_OK(step.Apply(cur->graph().graph(), batch));
  auto next_graph = std::make_shared<const DataGraph>(
      step.MaterializeDataGraph(cur->graph()));

  auto next = std::make_shared<EngineSnapshot>();
  next->epoch_ = cur->epoch_ + 1;
  next->owned_graph_ = next_graph;
  next->graph_ = next_graph.get();

  if (spec_ == "gtea" || spec_.rfind("gtea:", 0) == 0) {
    if (cur->oracle_ != nullptr && cur->oracle_->SupportsNativeUpdates()) {
      // Native path (cluster routers): the oracle folds the batch into
      // its own state — remote shard processes, in the router's case —
      // and the SAME instance keeps serving, re-based onto the new
      // materialized graph. No delta wrap, no rebuild.
      GTPQ_RETURN_NOT_OK(cur->oracle_->ApplyNativeUpdate(batch));
      next->oracle_ = cur->oracle_;
      next->create_ = [graph = next_graph, oracle = cur->oracle_] {
        return std::make_unique<GteaEngine>(*graph, oracle);
      };
      next->engine_name_ = cur->engine_name_;
      tombstones_.insert(batch.remove_nodes.begin(),
                         batch.remove_nodes.end());
      Install(std::move(next));
      return Status::OK();
    }
    // Incremental oracle maintenance: the first update wraps the
    // immutable epoch-0 oracle in a delta overlay (its base digraph is
    // the caller's graph, which outlives the factory); later updates
    // extend the delta or auto-compact per delta_options_.
    std::shared_ptr<const DeltaOverlayOracle> overlay =
        std::dynamic_pointer_cast<const DeltaOverlayOracle>(cur->oracle_);
    if (overlay == nullptr) {
      overlay = std::make_shared<const DeltaOverlayOracle>(
          cur->oracle_, &cur->graph().graph(), delta_options_);
    }
    auto updated = overlay->WithUpdates(batch);
    GTPQ_RETURN_NOT_OK(updated.status());
    std::shared_ptr<const ReachabilityOracle> oracle = updated.TakeValue();
    next->oracle_ = oracle;
    next->create_ = [graph = next_graph, oracle] {
      return std::make_unique<GteaEngine>(*graph, oracle);
    };
    // The oracle (and hence the reported name) changed: stamp one
    // engine to pick it up ("gtea[delta:contour]").
    next->engine_name_ = std::string(next->create_()->name());
  } else {
    // Non-gtea engines rebuild their shared artifacts over the updated
    // graph — same snapshot semantics, no incremental path.
    auto rebuilt = Make(spec_, *next_graph, cross_names_, delta_options_);
    if (rebuilt == nullptr) {
      return Status::Internal("engine spec '" + spec_ +
                              "' cannot be rebuilt over the updated graph");
    }
    const std::shared_ptr<const EngineSnapshot> stamped =
        rebuilt->snapshot();
    next->oracle_ = stamped->oracle_;
    next->create_ = stamped->create_;
    next->engine_name_ = stamped->engine_name_;
  }

  tombstones_.insert(batch.remove_nodes.begin(),
                     batch.remove_nodes.end());
  Install(std::move(next));
  return Status::OK();
}

}  // namespace gtpq
