#ifndef GTPQ_RUNTIME_QUERY_SERVER_H_
#define GTPQ_RUNTIME_QUERY_SERVER_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "dynamic/graph_delta.h"
#include "graph/data_graph.h"
#include "obs/trace.h"
#include "query/gtpq.h"
#include "runtime/engine_factory.h"
#include "runtime/thread_pool.h"

namespace gtpq {

/// One coherent picture of a QueryServer's serving state: identity
/// (engine, pool size), the epoch new queries would see, and the
/// cumulative work counters — everything the STATS wire frame and the
/// bench reporters need, gathered in ONE call so the numbers cannot
/// drift apart across piecemeal accessors.
struct ServingStats {
  std::string engine;
  uint64_t epoch = 0;
  uint64_t threads = 0;
  /// Queries answered (EvaluateBatch members + Submit singles).
  uint64_t queries = 0;
  /// EvaluateBatch calls completed.
  uint64_t batches = 0;
  /// ApplyUpdates calls that installed a new snapshot.
  uint64_t updates_applied = 0;
  uint64_t input_nodes = 0;
  uint64_t index_lookups = 0;
  uint64_t intermediate_size = 0;
  uint64_t join_ops = 0;
  /// Sum of per-query evaluation times (not wall clock).
  double busy_ms = 0;
  /// Per-stage engine time sums (EngineStats accumulated across every
  /// query served). Optional trailing fields on the wire; 0 when
  /// reported by an older server.
  double match_ms = 0;
  double prune_down_ms = 0;
  double prime_ms = 0;
  double prune_up_ms = 0;
  double matching_graph_ms = 0;
  double enumerate_ms = 0;
};

struct QueryServerOptions {
  /// Worker threads; each carries one Evaluator.
  size_t num_threads = 4;
  /// Engine spec (everything SharedEngineFactory accepts), e.g.
  /// "gtea", "gtea:cached:contour", "naive", "twigstackd".
  std::string engine_spec = "gtea";
  /// Decomposition-point names seeded into twig engines.
  std::vector<std::string> cross_names = {};
  /// Evaluation options applied to every query.
  GteaOptions eval_options = {};
  /// Auto-compaction tuning for the incremental update path
  /// (gtea specs; see SharedEngineFactory::ApplyUpdates).
  DeltaOverlayOptions delta_options = {};
};

/// Concurrent batch query serving: a fixed ThreadPool whose workers
/// each own one Evaluator, all sharing the spec's immutable index
/// artifacts (built once by SharedEngineFactory). Correctness rests on
/// the two invariants the PR-1/2 refactors established: oracles are
/// read-only after construction with thread-confined counters and
/// scratch, and every Evaluator keeps per-instance stats — so N
/// workers never share mutable state, only the index.
///
/// EvaluateBatch blocks until the whole batch is answered and returns
/// results aligned with the input order; Submit enqueues one query and
/// returns a future. Both are safe to call from any thread, including
/// concurrently.
///
/// Live updates: ApplyUpdates() folds an UpdateBatch into a new
/// EngineSnapshot (epoch-based; see SharedEngineFactory) and is safe to
/// call concurrently with queries. Every batch pins the snapshot that
/// was current when it entered, so all of its queries see one
/// consistent graph version — in-flight batches finish on the old
/// epoch while new batches pick up the new one; readers never block
/// the writer and vice versa. Workers re-stamp their engine lazily the
/// first time they serve a query from a newer snapshot.
class QueryServer {
 public:
  /// `g` must outlive the server (it backs the epoch-0 snapshot and
  /// remains the base graph of the incremental oracle overlay). An
  /// unknown engine spec — or one whose artifacts cannot be
  /// materialized, e.g. a file:/mmap: index that is missing, corrupt,
  /// or fingerprinted for a different graph — leaves the server in a
  /// failed state reported by status(); every other method requires
  /// status().ok(). NetServer::Start surfaces the status, so serving
  /// binaries get a one-line error instead of an abort.
  QueryServer(const DataGraph& g, QueryServerOptions options = {});
  ~QueryServer();

  /// OK when the engine spec materialized and the pool is serving.
  const Status& status() const { return status_; }

  size_t num_threads() const { return workers_.size(); }
  std::string_view engine_spec() const { return options_.engine_spec; }
  /// Name reported by engines stamped from the CURRENT snapshot —
  /// "gtea[contour]" at epoch 0, "gtea[delta:contour]" once updates
  /// wrapped the oracle.
  std::string engine_name() const {
    return std::string(factory_->snapshot()->engine_name());
  }

  /// Batch-completion report: which epoch the batch pinned and how long
  /// it took wall-clock. The pinned epoch is otherwise unobservable by
  /// the caller (epoch() may already have advanced under a concurrent
  /// ApplyUpdates), and the network tier stamps every response with it
  /// so clients can correlate answers with graph versions.
  struct BatchInfo {
    uint64_t epoch = 0;
    double wall_ms = 0;
  };

  /// Evaluates the whole batch across the pool; (*results)[i] answers
  /// queries[i]. Queries must stay alive until the call returns. The
  /// batch is snapshot-consistent: every query sees the epoch current
  /// at entry; `info` (optional) reports that pinned epoch on return.
  std::vector<QueryResult> EvaluateBatch(std::span<const Gtpq> queries,
                                         BatchInfo* info = nullptr);

  /// Same, with per-batch evaluation options overriding the server
  /// defaults (the network tier honors per-request result limits this
  /// way without re-configuring the server).
  std::vector<QueryResult> EvaluateBatch(std::span<const Gtpq> queries,
                                         BatchInfo* info,
                                         const GteaOptions& options);

  /// Same, with a per-query trace context (empty span = untraced, else
  /// one entry per query). traces[i].parent_span becomes the parent of
  /// query i's evaluate span, and the context is installed thread-
  /// locally around evaluation so downstream code — the cluster
  /// router's shard probes in particular — records child spans with no
  /// parameter plumbing.
  std::vector<QueryResult> EvaluateBatch(
      std::span<const Gtpq> queries, BatchInfo* info,
      const GteaOptions& options,
      std::span<const obs::TraceContext> traces);

  /// Enqueues one query; the future resolves when a worker answers it.
  /// The query sees the epoch current at submit time.
  std::future<QueryResult> Submit(Gtpq query);

  /// Installs a new serving snapshot with `batch` applied; queries
  /// submitted afterwards see the new graph version. Returns the
  /// validation error (and changes nothing) for malformed batches.
  Status ApplyUpdates(const UpdateBatch& batch);

  /// Point-reachability scatter-gather primitive (the PROBE wire
  /// frame): answers "does pivot reach ids[i]?" (or the reverse when
  /// `reverse`) for every target against ONE pinned snapshot, packing
  /// the answers into a bitmask (bit i of (*bits)[i / 8]) and reporting
  /// the pinned epoch. Answered inline on the calling thread straight
  /// from the snapshot's immutable oracle — no pool dispatch.
  /// FailedPrecondition when the engine spec has no oracle (tuple
  /// baselines); InvalidArgument when pivot or a target id is outside
  /// the snapshot graph.
  Status ProbeReachability(bool reverse, NodeId pivot,
                           std::span<const NodeId> ids, uint64_t* epoch,
                           std::vector<uint8_t>* bits) const;

  /// Epoch of the snapshot new queries would see (0 before any update).
  uint64_t epoch() const { return factory_->epoch(); }
  /// The snapshot new queries would see; pin it to inspect graph().
  std::shared_ptr<const EngineSnapshot> snapshot() const {
    return factory_->snapshot();
  }

  /// Cumulative serving counters, aggregated across workers.
  struct Snapshot {
    uint64_t queries = 0;
    uint64_t input_nodes = 0;
    uint64_t index_lookups = 0;
    uint64_t intermediate_size = 0;
    uint64_t join_ops = 0;
    /// Sum of per-query evaluation times (not wall clock).
    double busy_ms = 0;
    /// Per-stage engine time sums (see ServingStats).
    double match_ms = 0;
    double prune_down_ms = 0;
    double prime_ms = 0;
    double prune_up_ms = 0;
    double matching_graph_ms = 0;
    double enumerate_ms = 0;
  };
  Snapshot stats() const;

  /// One coherent aggregate of identity + counters (see ServingStats).
  /// Safe to call concurrently with queries and updates.
  ServingStats serving_stats() const;

 private:
  // Per-worker slot: engine (bound to `snap`, re-stamped on epoch
  // change) plus its share of the serving counters, guarded by a
  // (virtually uncontended) per-worker mutex and padded onto its own
  // cache line. `snap`/`engine` are only touched by the owning pool
  // thread after construction.
  struct alignas(64) Worker {
    std::shared_ptr<const EngineSnapshot> snap;
    std::unique_ptr<Evaluator> engine;
    mutable std::mutex mu;
    Snapshot served;
  };

  QueryResult EvaluateOnWorker(
      const Gtpq& query,
      const std::shared_ptr<const EngineSnapshot>& snap,
      const GteaOptions& options, const obs::TraceContext& trace);

  const DataGraph& g_;
  QueryServerOptions options_;
  Status status_;
  std::unique_ptr<SharedEngineFactory> factory_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ThreadPool> pool_;
  std::atomic<uint64_t> batches_{0};
  std::atomic<uint64_t> updates_applied_{0};
};

}  // namespace gtpq

#endif  // GTPQ_RUNTIME_QUERY_SERVER_H_
