#ifndef GTPQ_RUNTIME_QUERY_SERVER_H_
#define GTPQ_RUNTIME_QUERY_SERVER_H_

#include <future>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"
#include "runtime/engine_factory.h"
#include "runtime/thread_pool.h"

namespace gtpq {

struct QueryServerOptions {
  /// Worker threads; each carries one Evaluator.
  size_t num_threads = 4;
  /// Engine spec (everything SharedEngineFactory accepts), e.g.
  /// "gtea", "gtea:cached:contour", "naive", "twigstackd".
  std::string engine_spec = "gtea";
  /// Decomposition-point names seeded into twig engines.
  std::vector<std::string> cross_names = {};
  /// Evaluation options applied to every query.
  GteaOptions eval_options = {};
};

/// Concurrent batch query serving: a fixed ThreadPool whose workers
/// each own one Evaluator, all sharing the spec's immutable index
/// artifacts (built once by SharedEngineFactory). Correctness rests on
/// the two invariants this PR's refactor established: oracles are
/// read-only after construction with thread-confined counters and
/// scratch, and every Evaluator keeps per-instance stats — so N
/// workers never share mutable state, only the index.
///
/// EvaluateBatch blocks until the whole batch is answered and returns
/// results aligned with the input order; Submit enqueues one query and
/// returns a future. Both are safe to call from any thread, including
/// concurrently.
class QueryServer {
 public:
  /// `g` must outlive the server. Aborts (GTPQ_CHECK) on unknown
  /// engine specs; validate with SharedEngineFactory::Make first when
  /// the spec is untrusted.
  QueryServer(const DataGraph& g, QueryServerOptions options = {});
  ~QueryServer();

  size_t num_threads() const { return workers_.size(); }
  std::string_view engine_spec() const { return options_.engine_spec; }
  /// Name reported by the per-worker engines ("gtea[cached:contour]").
  std::string_view engine_name() const;

  /// Evaluates the whole batch across the pool; (*results)[i] answers
  /// queries[i]. Queries must stay alive until the call returns.
  std::vector<QueryResult> EvaluateBatch(std::span<const Gtpq> queries);

  /// Enqueues one query; the future resolves when a worker answers it.
  std::future<QueryResult> Submit(Gtpq query);

  /// Cumulative serving counters, aggregated across workers.
  struct Snapshot {
    uint64_t queries = 0;
    uint64_t input_nodes = 0;
    uint64_t index_lookups = 0;
    uint64_t intermediate_size = 0;
    uint64_t join_ops = 0;
    /// Sum of per-query evaluation times (not wall clock).
    double busy_ms = 0;
  };
  Snapshot stats() const;

 private:
  // Per-worker slot: engine plus its share of the serving counters,
  // guarded by a (virtually uncontended) per-worker mutex and padded
  // onto its own cache line.
  struct alignas(64) Worker {
    std::unique_ptr<Evaluator> engine;
    mutable std::mutex mu;
    Snapshot served;
  };

  QueryResult EvaluateOnWorker(const Gtpq& query);

  const DataGraph& g_;
  QueryServerOptions options_;
  std::unique_ptr<SharedEngineFactory> factory_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace gtpq

#endif  // GTPQ_RUNTIME_QUERY_SERVER_H_
