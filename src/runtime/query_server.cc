#include "runtime/query_server.h"

#include <condition_variable>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "obs/metrics.h"
#include "obs/slowlog.h"
#include "storage/index_io.h"

namespace gtpq {

namespace {

/// Registry handles for the per-query hot path, resolved once.
struct QueryMetrics {
  obs::Counter* queries_total;
  obs::Counter* updates_applied_total;
  obs::Counter* update_rows_total;
  obs::Histogram* query_latency_us;
  obs::Histogram* batch_latency_us;
  obs::Histogram* snapshot_pin_us;
  obs::Gauge* epoch;
  obs::Gauge* uptime_seconds;

  static const QueryMetrics& Get() {
    static const QueryMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      // gtpq_build_info is the standard info-series idiom: value
      // constant 1, the payload lives in the labels (wire protocol
      // revision, .gtpqidx format revision). Registered here so every
      // serving process exports it without touching the hot path again.
      const std::string format =
          "gtpqidx v" + std::to_string(storage::kIndexFormatVersion);
      reg.GetGauge(obs::LabeledName("gtpq_build_info",
                                    {{"version", "gtpq-wire v1"},
                                     {"format", format}}))
          ->Set(1);
      return QueryMetrics{reg.GetCounter("gtpq_queries_total"),
                          reg.GetCounter("gtpq_updates_applied_total"),
                          reg.GetCounter("gtpq_update_rows_total"),
                          reg.GetHistogram("gtpq_query_latency_us"),
                          reg.GetHistogram("gtpq_batch_latency_us"),
                          reg.GetHistogram("gtpq_snapshot_pin_us"),
                          reg.GetGauge("gtpq_epoch"),
                          reg.GetGauge("gtpq_uptime_seconds")};
    }();
    return m;
  }
};

}  // namespace

QueryServer::QueryServer(const DataGraph& g, QueryServerOptions options)
    : g_(g), options_(std::move(options)) {
  GTPQ_CHECK(options_.num_threads > 0);
  factory_ = SharedEngineFactory::Make(options_.engine_spec, g_,
                                       options_.cross_names,
                                       options_.delta_options);
  if (factory_ == nullptr) {
    // An unloadable index (missing file, wrong fingerprint, corrupt
    // bytes) or an unknown spec must not abort a serving binary; the
    // caller checks status() (NetServer::Start forwards it).
    status_ = Status::InvalidArgument(
        "engine spec '" + options_.engine_spec +
        "' did not materialize (unknown spec, or its index failed to "
        "load — see the warning above)");
    return;
  }
  const std::shared_ptr<const EngineSnapshot> initial =
      factory_->snapshot();
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->snap = initial;
    worker->engine = initial->CreateEngine();
    workers_.push_back(std::move(worker));
  }
  // The pool starts after the workers so a task can never observe a
  // half-initialized slot.
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
  const QueryMetrics& metrics = QueryMetrics::Get();
  metrics.epoch->Set(static_cast<int64_t>(factory_->epoch()));
  // Seeded here, refreshed on every metrics scrape (net/server.cc) so
  // the exported value is current without a dedicated ticker thread.
  metrics.uptime_seconds->Set(
      static_cast<int64_t>(obs::NowMicros() / 1e6));
}

QueryServer::~QueryServer() {
  // Drain in-flight work before the workers' engines are destroyed.
  pool_.reset();
}

QueryResult QueryServer::EvaluateOnWorker(
    const Gtpq& query,
    const std::shared_ptr<const EngineSnapshot>& snap,
    const GteaOptions& options, const obs::TraceContext& trace) {
  const int index = ThreadPool::CurrentWorkerIndex();
  GTPQ_CHECK(index >= 0 &&
             static_cast<size_t>(index) < workers_.size());
  Worker& worker = *workers_[index];
  if (worker.snap != snap) {
    // The batch pinned a newer (or, with interleaved batches, older)
    // epoch than this worker last served: re-stamp a cheap engine over
    // the pinned snapshot's shared artifacts.
    worker.engine = snap->CreateEngine();
    worker.snap = snap;
  }
  obs::TraceRecorder& recorder = obs::TraceRecorder::Global();
  // The evaluate span id is allocated up front so probe spans recorded
  // mid-evaluation (the cluster router's shard fan-out) parent under it.
  const uint64_t eval_span = trace.active() ? recorder.NewSpanId() : 0;
  const double start_us = obs::NowMicros();
  Timer timer;
  QueryResult result;
  {
    obs::ScopedTraceContext scope(
        obs::TraceContext{trace.trace_id, eval_span});
    result = worker.engine->Evaluate(query, options);
  }
  const double elapsed_ms = timer.ElapsedMillis();
  const EngineStats& stats = worker.engine->stats();
  if (trace.active()) {
    recorder.Record(trace.trace_id, eval_span, trace.parent_span,
                    "evaluate", start_us, elapsed_ms * 1000.0);
    // Stage children rendered as a sequential timeline (the engine runs
    // its stages back to back); zero-duration stages — tuple baselines
    // fill only a few fields — are skipped.
    const struct {
      const char* name;
      double ms;
    } stages[] = {{"match", stats.match_ms},
                  {"prune_down", stats.prune_down_ms},
                  {"prime", stats.prime_ms},
                  {"prune_up", stats.prune_up_ms},
                  {"matching_graph", stats.matching_graph_ms},
                  {"enumerate", stats.enumerate_ms}};
    double cursor_us = start_us;
    for (const auto& stage : stages) {
      if (stage.ms <= 0) continue;
      recorder.Record(trace.trace_id, eval_span, stage.name, cursor_us,
                      stage.ms * 1000.0);
      cursor_us += stage.ms * 1000.0;
    }
  }
  const QueryMetrics& metrics = QueryMetrics::Get();
  metrics.queries_total->Add();
  metrics.query_latency_us->Record(
      static_cast<uint64_t>(elapsed_ms * 1000.0));
  obs::SlowQueryLog& slowlog = obs::SlowQueryLog::Global();
  if (slowlog.WouldAdmit(elapsed_ms)) {
    obs::SlowQueryEntry entry;
    entry.query = query.ToString(*query.attr_names());
    // The diagnostic rendering is multi-line; flatten for the log.
    for (char& c : entry.query) {
      if (c == '\n') c = ';';
    }
    entry.trace_id = trace.trace_id;
    entry.epoch = snap->epoch();
    entry.wall_ms = elapsed_ms;
    entry.stats = stats;
    slowlog.Record(std::move(entry));
  }
  {
    std::lock_guard<std::mutex> lock(worker.mu);
    ++worker.served.queries;
    worker.served.input_nodes += stats.input_nodes;
    worker.served.index_lookups += stats.index_lookups;
    worker.served.intermediate_size += stats.intermediate_size;
    worker.served.join_ops += stats.join_ops;
    worker.served.busy_ms += elapsed_ms;
    worker.served.match_ms += stats.match_ms;
    worker.served.prune_down_ms += stats.prune_down_ms;
    worker.served.prime_ms += stats.prime_ms;
    worker.served.prune_up_ms += stats.prune_up_ms;
    worker.served.matching_graph_ms += stats.matching_graph_ms;
    worker.served.enumerate_ms += stats.enumerate_ms;
  }
  return result;
}

std::vector<QueryResult> QueryServer::EvaluateBatch(
    std::span<const Gtpq> queries, BatchInfo* info) {
  return EvaluateBatch(queries, info, options_.eval_options, {});
}

std::vector<QueryResult> QueryServer::EvaluateBatch(
    std::span<const Gtpq> queries, BatchInfo* info,
    const GteaOptions& options) {
  return EvaluateBatch(queries, info, options, {});
}

std::vector<QueryResult> QueryServer::EvaluateBatch(
    std::span<const Gtpq> queries, BatchInfo* info,
    const GteaOptions& options,
    std::span<const obs::TraceContext> traces) {
  GTPQ_CHECK(traces.empty() || traces.size() == queries.size())
      << "trace contexts must be absent or one per query";
  Timer wall;
  std::vector<QueryResult> results(queries.size());

  // Pin one snapshot for the whole batch: queries interleaved with
  // ApplyUpdates still all see this single epoch.
  const std::shared_ptr<const EngineSnapshot> snap = factory_->snapshot();
  if (info != nullptr) {
    info->epoch = snap->epoch();
    info->wall_ms = 0;
  }
  if (queries.empty()) return results;

  // Per-batch completion latch; batches from concurrent callers simply
  // interleave in the pool's queue.
  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  BatchState state;
  state.remaining = queries.size();

  for (size_t i = 0; i < queries.size(); ++i) {
    const obs::TraceContext trace =
        traces.empty() ? obs::TraceContext{} : traces[i];
    pool_->Submit([this, &queries, &results, &state, &snap, &options,
                   trace, i] {
      results[i] = EvaluateOnWorker(queries[i], snap, options, trace);
      // Notify while holding the lock: the waiter owns `state` and
      // destroys it as soon as it observes remaining == 0, so the cv
      // must not be touched after the mutex is released.
      std::lock_guard<std::mutex> lock(state.mu);
      --state.remaining;
      state.cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.remaining == 0; });
  batches_.fetch_add(1, std::memory_order_relaxed);
  const double wall_ms = wall.ElapsedMillis();
  const QueryMetrics& metrics = QueryMetrics::Get();
  metrics.batch_latency_us->Record(static_cast<uint64_t>(wall_ms * 1000.0));
  // The batch held its snapshot pin for its whole wall time.
  metrics.snapshot_pin_us->Record(static_cast<uint64_t>(wall_ms * 1000.0));
  if (info != nullptr) info->wall_ms = wall_ms;
  return results;
}

std::future<QueryResult> QueryServer::Submit(Gtpq query) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  auto shared_query = std::make_shared<Gtpq>(std::move(query));
  std::shared_ptr<const EngineSnapshot> snap = factory_->snapshot();
  pool_->Submit([this, promise, shared_query, snap = std::move(snap)] {
    promise->set_value(EvaluateOnWorker(*shared_query, snap,
                                        options_.eval_options,
                                        obs::TraceContext{}));
  });
  return future;
}

Status QueryServer::ProbeReachability(bool reverse, NodeId pivot,
                                      std::span<const NodeId> ids,
                                      uint64_t* epoch,
                                      std::vector<uint8_t>* bits) const {
  const std::shared_ptr<const EngineSnapshot> snap = factory_->snapshot();
  const ReachabilityOracle* oracle = snap->oracle();
  if (oracle == nullptr) {
    return Status::FailedPrecondition(
        "engine spec '" + options_.engine_spec +
        "' has no reachability oracle to probe");
  }
  const size_t n = snap->graph().NumNodes();
  if (pivot >= n) {
    return Status::InvalidArgument("probe pivot " + std::to_string(pivot) +
                                   " is outside the " + std::to_string(n) +
                                   "-node graph");
  }
  bits->assign((ids.size() + 7) / 8, 0);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= n) {
      return Status::InvalidArgument(
          "probe target " + std::to_string(ids[i]) + " is outside the " +
          std::to_string(n) + "-node graph");
    }
    const bool hit = reverse ? oracle->Reaches(ids[i], pivot)
                             : oracle->Reaches(pivot, ids[i]);
    if (hit) (*bits)[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  if (epoch != nullptr) *epoch = snap->epoch();
  return Status::OK();
}

Status QueryServer::ApplyUpdates(const UpdateBatch& batch) {
  const Status st = factory_->ApplyUpdates(batch);
  if (st.ok()) {
    updates_applied_.fetch_add(1, std::memory_order_relaxed);
    const QueryMetrics& metrics = QueryMetrics::Get();
    metrics.epoch->Set(static_cast<int64_t>(factory_->epoch()));
    metrics.updates_applied_total->Add();
    metrics.update_rows_total->Add(batch.NumOps());
  }
  return st;
}

QueryServer::Snapshot QueryServer::stats() const {
  Snapshot total;
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    total.queries += worker->served.queries;
    total.input_nodes += worker->served.input_nodes;
    total.index_lookups += worker->served.index_lookups;
    total.intermediate_size += worker->served.intermediate_size;
    total.join_ops += worker->served.join_ops;
    total.busy_ms += worker->served.busy_ms;
    total.match_ms += worker->served.match_ms;
    total.prune_down_ms += worker->served.prune_down_ms;
    total.prime_ms += worker->served.prime_ms;
    total.prune_up_ms += worker->served.prune_up_ms;
    total.matching_graph_ms += worker->served.matching_graph_ms;
    total.enumerate_ms += worker->served.enumerate_ms;
  }
  return total;
}

ServingStats QueryServer::serving_stats() const {
  ServingStats out;
  out.engine = engine_name();
  out.epoch = epoch();
  out.threads = num_threads();
  out.batches = batches_.load(std::memory_order_relaxed);
  out.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  const Snapshot counters = stats();
  out.queries = counters.queries;
  out.input_nodes = counters.input_nodes;
  out.index_lookups = counters.index_lookups;
  out.intermediate_size = counters.intermediate_size;
  out.join_ops = counters.join_ops;
  out.busy_ms = counters.busy_ms;
  out.match_ms = counters.match_ms;
  out.prune_down_ms = counters.prune_down_ms;
  out.prime_ms = counters.prime_ms;
  out.prune_up_ms = counters.prune_up_ms;
  out.matching_graph_ms = counters.matching_graph_ms;
  out.enumerate_ms = counters.enumerate_ms;
  return out;
}

}  // namespace gtpq
