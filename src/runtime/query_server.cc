#include "runtime/query_server.h"

#include <condition_variable>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"

namespace gtpq {

QueryServer::QueryServer(const DataGraph& g, QueryServerOptions options)
    : g_(g), options_(std::move(options)) {
  GTPQ_CHECK(options_.num_threads > 0);
  factory_ = SharedEngineFactory::Make(options_.engine_spec, g_,
                                       options_.cross_names,
                                       options_.delta_options);
  if (factory_ == nullptr) {
    // An unloadable index (missing file, wrong fingerprint, corrupt
    // bytes) or an unknown spec must not abort a serving binary; the
    // caller checks status() (NetServer::Start forwards it).
    status_ = Status::InvalidArgument(
        "engine spec '" + options_.engine_spec +
        "' did not materialize (unknown spec, or its index failed to "
        "load — see the warning above)");
    return;
  }
  const std::shared_ptr<const EngineSnapshot> initial =
      factory_->snapshot();
  workers_.reserve(options_.num_threads);
  for (size_t i = 0; i < options_.num_threads; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->snap = initial;
    worker->engine = initial->CreateEngine();
    workers_.push_back(std::move(worker));
  }
  // The pool starts after the workers so a task can never observe a
  // half-initialized slot.
  pool_ = std::make_unique<ThreadPool>(options_.num_threads);
}

QueryServer::~QueryServer() {
  // Drain in-flight work before the workers' engines are destroyed.
  pool_.reset();
}

QueryResult QueryServer::EvaluateOnWorker(
    const Gtpq& query,
    const std::shared_ptr<const EngineSnapshot>& snap,
    const GteaOptions& options) {
  const int index = ThreadPool::CurrentWorkerIndex();
  GTPQ_CHECK(index >= 0 &&
             static_cast<size_t>(index) < workers_.size());
  Worker& worker = *workers_[index];
  if (worker.snap != snap) {
    // The batch pinned a newer (or, with interleaved batches, older)
    // epoch than this worker last served: re-stamp a cheap engine over
    // the pinned snapshot's shared artifacts.
    worker.engine = snap->CreateEngine();
    worker.snap = snap;
  }
  Timer timer;
  QueryResult result = worker.engine->Evaluate(query, options);
  const double elapsed_ms = timer.ElapsedMillis();
  const EngineStats& stats = worker.engine->stats();
  {
    std::lock_guard<std::mutex> lock(worker.mu);
    ++worker.served.queries;
    worker.served.input_nodes += stats.input_nodes;
    worker.served.index_lookups += stats.index_lookups;
    worker.served.intermediate_size += stats.intermediate_size;
    worker.served.join_ops += stats.join_ops;
    worker.served.busy_ms += elapsed_ms;
  }
  return result;
}

std::vector<QueryResult> QueryServer::EvaluateBatch(
    std::span<const Gtpq> queries, BatchInfo* info) {
  return EvaluateBatch(queries, info, options_.eval_options);
}

std::vector<QueryResult> QueryServer::EvaluateBatch(
    std::span<const Gtpq> queries, BatchInfo* info,
    const GteaOptions& options) {
  Timer wall;
  std::vector<QueryResult> results(queries.size());

  // Pin one snapshot for the whole batch: queries interleaved with
  // ApplyUpdates still all see this single epoch.
  const std::shared_ptr<const EngineSnapshot> snap = factory_->snapshot();
  if (info != nullptr) {
    info->epoch = snap->epoch();
    info->wall_ms = 0;
  }
  if (queries.empty()) return results;

  // Per-batch completion latch; batches from concurrent callers simply
  // interleave in the pool's queue.
  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  BatchState state;
  state.remaining = queries.size();

  for (size_t i = 0; i < queries.size(); ++i) {
    pool_->Submit([this, &queries, &results, &state, &snap, &options, i] {
      results[i] = EvaluateOnWorker(queries[i], snap, options);
      // Notify while holding the lock: the waiter owns `state` and
      // destroys it as soon as it observes remaining == 0, so the cv
      // must not be touched after the mutex is released.
      std::lock_guard<std::mutex> lock(state.mu);
      --state.remaining;
      state.cv.notify_one();
    });
  }
  std::unique_lock<std::mutex> lock(state.mu);
  state.cv.wait(lock, [&state] { return state.remaining == 0; });
  batches_.fetch_add(1, std::memory_order_relaxed);
  if (info != nullptr) info->wall_ms = wall.ElapsedMillis();
  return results;
}

std::future<QueryResult> QueryServer::Submit(Gtpq query) {
  auto promise = std::make_shared<std::promise<QueryResult>>();
  std::future<QueryResult> future = promise->get_future();
  auto shared_query = std::make_shared<Gtpq>(std::move(query));
  std::shared_ptr<const EngineSnapshot> snap = factory_->snapshot();
  pool_->Submit([this, promise, shared_query, snap = std::move(snap)] {
    promise->set_value(
        EvaluateOnWorker(*shared_query, snap, options_.eval_options));
  });
  return future;
}

Status QueryServer::ProbeReachability(bool reverse, NodeId pivot,
                                      std::span<const NodeId> ids,
                                      uint64_t* epoch,
                                      std::vector<uint8_t>* bits) const {
  const std::shared_ptr<const EngineSnapshot> snap = factory_->snapshot();
  const ReachabilityOracle* oracle = snap->oracle();
  if (oracle == nullptr) {
    return Status::FailedPrecondition(
        "engine spec '" + options_.engine_spec +
        "' has no reachability oracle to probe");
  }
  const size_t n = snap->graph().NumNodes();
  if (pivot >= n) {
    return Status::InvalidArgument("probe pivot " + std::to_string(pivot) +
                                   " is outside the " + std::to_string(n) +
                                   "-node graph");
  }
  bits->assign((ids.size() + 7) / 8, 0);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (ids[i] >= n) {
      return Status::InvalidArgument(
          "probe target " + std::to_string(ids[i]) + " is outside the " +
          std::to_string(n) + "-node graph");
    }
    const bool hit = reverse ? oracle->Reaches(ids[i], pivot)
                             : oracle->Reaches(pivot, ids[i]);
    if (hit) (*bits)[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
  }
  if (epoch != nullptr) *epoch = snap->epoch();
  return Status::OK();
}

Status QueryServer::ApplyUpdates(const UpdateBatch& batch) {
  const Status st = factory_->ApplyUpdates(batch);
  if (st.ok()) updates_applied_.fetch_add(1, std::memory_order_relaxed);
  return st;
}

QueryServer::Snapshot QueryServer::stats() const {
  Snapshot total;
  for (const auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mu);
    total.queries += worker->served.queries;
    total.input_nodes += worker->served.input_nodes;
    total.index_lookups += worker->served.index_lookups;
    total.intermediate_size += worker->served.intermediate_size;
    total.join_ops += worker->served.join_ops;
    total.busy_ms += worker->served.busy_ms;
  }
  return total;
}

ServingStats QueryServer::serving_stats() const {
  ServingStats out;
  out.engine = engine_name();
  out.epoch = epoch();
  out.threads = num_threads();
  out.batches = batches_.load(std::memory_order_relaxed);
  out.updates_applied = updates_applied_.load(std::memory_order_relaxed);
  const Snapshot counters = stats();
  out.queries = counters.queries;
  out.input_nodes = counters.input_nodes;
  out.index_lookups = counters.index_lookups;
  out.intermediate_size = counters.intermediate_size;
  out.join_ops = counters.join_ops;
  out.busy_ms = counters.busy_ms;
  return out;
}

}  // namespace gtpq
