#ifndef GTPQ_RUNTIME_THREAD_POOL_H_
#define GTPQ_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gtpq {

/// A fixed pool of worker threads draining a FIFO task queue. Built for
/// the query-serving runtime: workers are created once, carry a stable
/// index (so QueryServer can pin one Evaluator per worker), and drain
/// every task submitted before destruction begins.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  /// Drains the queue, then joins every worker.
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; runs on some pool worker. Safe from any thread,
  /// including pool workers themselves.
  void Submit(std::function<void()> task);

  size_t num_threads() const { return workers_.size(); }

  /// The stable index of the calling pool worker in [0, num_threads),
  /// or -1 when called off-pool. A task always observes the index of
  /// the worker running it; indexes are meaningful relative to the pool
  /// the task was submitted to.
  static int CurrentWorkerIndex();

 private:
  void WorkerLoop(int index);

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace gtpq

#endif  // GTPQ_RUNTIME_THREAD_POOL_H_
