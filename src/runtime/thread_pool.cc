#include "runtime/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace gtpq {

namespace {
thread_local int tls_worker_index = -1;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  GTPQ_CHECK(num_threads > 0);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back(
        [this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

int ThreadPool::CurrentWorkerIndex() { return tls_worker_index; }

void ThreadPool::WorkerLoop(int index) {
  tls_worker_index = index;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      // Drain-before-exit: tasks enqueued prior to shutdown still run.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace gtpq
