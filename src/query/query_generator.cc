#include "query/query_generator.h"

#include <algorithm>

namespace gtpq {

using logic::Formula;
using logic::FormulaRef;

namespace {

// Random walk of 1..max_steps hops downward from v; returns the end
// node, or kInvalidNode when v is a sink.
NodeId WalkDown(const DataGraph& g, NodeId v, uint32_t max_steps,
                Rng* rng) {
  NodeId cur = v;
  uint32_t steps = 1 + static_cast<uint32_t>(rng->NextBounded(max_steps));
  NodeId last_valid = kInvalidNode;
  for (uint32_t i = 0; i < steps; ++i) {
    auto nbrs = g.OutNeighbors(cur);
    if (nbrs.empty()) break;
    cur = nbrs[rng->NextBounded(nbrs.size())];
    last_valid = cur;
  }
  return last_valid;
}

// Builds a random structural predicate over `vars`, controlled by the
// disjunction/negation knobs. Vars not pulled into the formula remain
// unconstrained (their subtree is still part of the query but optional
// in no way — fs simply does not mention them is NOT allowed by the
// model, so every predicate child var must appear; we fold the leftover
// vars in conjunctively).
FormulaRef RandomStructural(const std::vector<int>& vars,
                            const QueryGenOptions& opts, Rng* rng) {
  std::vector<FormulaRef> literals;
  literals.reserve(vars.size());
  for (int v : vars) {
    FormulaRef lit = Formula::Var(v);
    if (rng->NextBool(opts.negation_probability)) {
      lit = Formula::Not(lit);
    }
    literals.push_back(lit);
  }
  if (literals.size() >= 2 && rng->NextBool(opts.disjunction_probability)) {
    // Split literals into 2 disjunctive groups of conjunctions:
    // (l1 & .. ) | (lk & ..).
    size_t cut = 1 + rng->NextBounded(literals.size() - 1);
    std::vector<FormulaRef> left(literals.begin(),
                                 literals.begin() + static_cast<long>(cut));
    std::vector<FormulaRef> right(literals.begin() + static_cast<long>(cut),
                                  literals.end());
    return Formula::Or(Formula::And(std::move(left)),
                       Formula::And(std::move(right)));
  }
  return Formula::And(std::move(literals));
}

}  // namespace

std::optional<Gtpq> GenerateRandomQuery(const DataGraph& g,
                                        const QueryGenOptions& options) {
  if (g.NumNodes() == 0 || options.num_nodes == 0) return std::nullopt;
  Rng rng(options.seed);

  // Sample a root with decent fan-out so the pattern can grow.
  NodeId root_image = kInvalidNode;
  for (int attempt = 0; attempt < 16; ++attempt) {
    NodeId cand = static_cast<NodeId>(rng.NextBounded(g.NumNodes()));
    if (!g.OutNeighbors(cand).empty() || options.num_nodes == 1) {
      root_image = cand;
      break;
    }
  }
  if (root_image == kInvalidNode) return std::nullopt;

  // Queries share the graph's attribute namespace so label ids line up.
  QueryBuilder builder(g.attr_names_ptr());

  QNodeId root =
      builder.AddRoot("u0", AttributePredicate::LabelEquals(
                                g.label_attr(), g.LabelOf(root_image)));
  builder.MarkOutput(root);

  std::vector<QNodeId> nodes{root};
  std::vector<NodeId> images{root_image};
  std::vector<char> is_predicate{0};

  for (size_t i = 1; i < options.num_nodes; ++i) {
    // Pick an anchor with at least one realizable extension.
    bool added = false;
    for (int attempt = 0; attempt < 16 && !added; ++attempt) {
      size_t pick = rng.NextBounded(nodes.size());
      NodeId anchor_image = images[pick];
      const bool pc = rng.NextBool(options.pc_probability);
      NodeId target;
      if (pc) {
        auto nbrs = g.OutNeighbors(anchor_image);
        if (nbrs.empty()) continue;
        target = nbrs[rng.NextBounded(nbrs.size())];
      } else {
        target = WalkDown(g, anchor_image, options.max_walk, &rng);
        if (target == kInvalidNode) continue;
      }
      const bool predicate_role =
          is_predicate[pick] || rng.NextBool(options.predicate_fraction);
      const EdgeType edge = pc ? EdgeType::kChild : EdgeType::kDescendant;
      AttributePredicate pred = AttributePredicate::LabelEquals(
          g.label_attr(), g.LabelOf(target));
      std::string name = "u" + std::to_string(i);
      QNodeId id =
          predicate_role
              ? builder.AddPredicate(nodes[pick], edge, name, pred)
              : builder.AddBackbone(nodes[pick], edge, name, pred);
      if (!predicate_role && rng.NextBool(options.output_fraction)) {
        builder.MarkOutput(id);
      }
      nodes.push_back(id);
      images.push_back(target);
      is_predicate.push_back(predicate_role ? 1 : 0);
      added = true;
    }
    if (!added) return std::nullopt;
  }

  // Assemble structural predicates bottom-up from predicate children.
  auto query = builder.Build();
  if (!query.ok()) return std::nullopt;
  for (QNodeId u = 0; u < query->NumNodes(); ++u) {
    auto pred_children = query->PredicateChildren(u);
    if (pred_children.empty()) continue;
    std::vector<int> vars(pred_children.begin(), pred_children.end());
    builder.SetStructural(u, RandomStructural(vars, options, &rng));
  }
  auto final_query = builder.Build();
  if (!final_query.ok()) return std::nullopt;
  return *final_query;
}

std::optional<Gtpq> GenerateRandomQueryWithRetry(
    const DataGraph& g, const QueryGenOptions& options, int max_attempts) {
  QueryGenOptions opts = options;
  for (int i = 0; i < max_attempts; ++i) {
    auto q = GenerateRandomQuery(g, opts);
    if (q.has_value()) return q;
    opts.seed = opts.seed * 6364136223846793005ULL + 1442695040888963407ULL;
  }
  return std::nullopt;
}

}  // namespace gtpq
