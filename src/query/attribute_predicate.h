#ifndef GTPQ_QUERY_ATTRIBUTE_PREDICATE_H_
#define GTPQ_QUERY_ATTRIBUTE_PREDICATE_H_

#include <optional>
#include <string>
#include <vector>

#include "graph/data_graph.h"

namespace gtpq {

/// Comparison operators of attribute formulas "A op a" (Section 2).
enum class CmpOp { kLt, kLe, kEq, kNe, kGt, kGe };

const char* CmpOpToString(CmpOp op);

/// One atomic formula A op a.
struct AttrAtom {
  AttrId attr;
  CmpOp op;
  AttrValue value;
};

/// fa(u): a conjunction of atomic attribute formulas. A node v matches
/// (v ~ u) when for every atom "A op a" the tuple f(v) contains A = a'
/// with a' op a — in particular the attribute must be present.
class AttributePredicate {
 public:
  /// The empty conjunction (matches every node).
  AttributePredicate() = default;

  /// Convenience: the single atom `label = value`.
  static AttributePredicate LabelEquals(AttrId label_attr, int64_t value);

  void AddAtom(AttrId attr, CmpOp op, AttrValue value);
  const std::vector<AttrAtom>& atoms() const { return atoms_; }
  bool IsTriviallyTrue() const { return atoms_.empty(); }

  /// v ~ u against the graph's attribute tuples.
  bool Matches(const DataGraph& g, NodeId v) const;

  /// Whether some attribute tuple can satisfy the conjunction, treating
  /// value domains as dense (doubles/strings). Linear in atom count.
  bool IsSatisfiable() const;

  /// The paper's syntactic entailment used by node similarity
  /// (condition (1) of Section 3.1): returns true when `stronger`
  /// matches a subset of the nodes this predicate matches, i.e.
  /// "stronger |- this": for every atom "A op a1" here, `stronger` has
  /// "A op a2" with a2 <= a1 (op in {<=,<}), a2 >= a1 (op in {>=,>}),
  /// or a1 == a2 (op in {=,!=}).
  bool EntailedBy(const AttributePredicate& stronger) const;

  /// If the predicate pins the integer label attribute (contains
  /// "label = c"), returns c — the candidate-scan fast path.
  std::optional<int64_t> RequiredLabel(AttrId label_attr) const;

  std::string ToString(const AttrNames& names) const;

 private:
  std::vector<AttrAtom> atoms_;
};

/// Applies op to the comparison a' op a.
bool CompareValues(const AttrValue& lhs, CmpOp op, const AttrValue& rhs);

}  // namespace gtpq

#endif  // GTPQ_QUERY_ATTRIBUTE_PREDICATE_H_
