#ifndef GTPQ_QUERY_QUERY_GENERATOR_H_
#define GTPQ_QUERY_QUERY_GENERATOR_H_

#include <optional>

#include "common/rng.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"

namespace gtpq {

/// Knobs for the random query generator. The generator mirrors the
/// paper's arXiv setup (Section 5.2): "Each query node is associated
/// with a label randomly chosen from the data graph"; queries are grown
/// by sampling descendants of concrete data nodes so that most queries
/// are satisfiable ("meaningful queries").
struct QueryGenOptions {
  /// Total query nodes |Vq| (5..13 in the paper's arXiv sweeps).
  size_t num_nodes = 7;
  /// Probability that a non-root edge is PC (else AD).
  double pc_probability = 0.0;
  /// Probability that a non-root node is a predicate node. The role is
  /// forced to predicate when the parent already is one.
  double predicate_fraction = 0.0;
  /// Probability that a backbone node is an output (the root always
  /// is; the paper's conjunctive experiments mark every node).
  double output_fraction = 1.0;
  /// Probability that an internal node's structural predicate uses a
  /// disjunction over (some of) its predicate children.
  double disjunction_probability = 0.0;
  /// Probability that a predicate variable is negated.
  double negation_probability = 0.0;
  /// Maximum random-walk depth used to realize an AD edge.
  uint32_t max_walk = 3;
  uint64_t seed = 1;
};

/// Generates one random query against `g`. Returns nullopt when the
/// sampled region of the graph cannot host a pattern of the requested
/// size (caller retries with the next seed).
std::optional<Gtpq> GenerateRandomQuery(const DataGraph& g,
                                        const QueryGenOptions& options);

/// Convenience: retries GenerateRandomQuery with derived seeds until a
/// query is produced (at most `max_attempts`).
std::optional<Gtpq> GenerateRandomQueryWithRetry(
    const DataGraph& g, const QueryGenOptions& options,
    int max_attempts = 32);

}  // namespace gtpq

#endif  // GTPQ_QUERY_QUERY_GENERATOR_H_
