#ifndef GTPQ_QUERY_QUERY_PARSER_H_
#define GTPQ_QUERY_QUERY_PARSER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "query/gtpq.h"

namespace gtpq {

/// Parses the line-oriented query format produced by Gtpq::ToString:
///
///   # comment
///   backbone <name> root [*]
///   backbone <name> <parent> pc|ad [*]
///   predicate <name> <parent> pc|ad
///   attr <name> <attr><op><value> [...]      op in < <= = != > >=
///   fs <name> = <formula over child names>
///   output <name>
///
/// String values are double-quoted; numbers are bare. `*` marks output
/// nodes inline. Nodes must appear parent-first.
Result<Gtpq> ParseQuery(const std::string& text,
                        std::shared_ptr<AttrNames> names);

/// Round-trip helper: parse with a fresh attribute namespace.
Result<Gtpq> ParseQuery(const std::string& text);

}  // namespace gtpq

#endif  // GTPQ_QUERY_QUERY_PARSER_H_
