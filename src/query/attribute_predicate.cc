#include "query/attribute_predicate.h"

#include <algorithm>

namespace gtpq {

const char* CmpOpToString(CmpOp op) {
  switch (op) {
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool CompareValues(const AttrValue& lhs, CmpOp op, const AttrValue& rhs) {
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CmpOp::kLt:
      return c < 0;
    case CmpOp::kLe:
      return c <= 0;
    case CmpOp::kEq:
      return c == 0;
    case CmpOp::kNe:
      return c != 0;
    case CmpOp::kGt:
      return c > 0;
    case CmpOp::kGe:
      return c >= 0;
  }
  return false;
}

AttributePredicate AttributePredicate::LabelEquals(AttrId label_attr,
                                                   int64_t value) {
  AttributePredicate p;
  p.AddAtom(label_attr, CmpOp::kEq, AttrValue(value));
  return p;
}

void AttributePredicate::AddAtom(AttrId attr, CmpOp op, AttrValue value) {
  atoms_.push_back(AttrAtom{attr, op, std::move(value)});
}

bool AttributePredicate::Matches(const DataGraph& g, NodeId v) const {
  for (const auto& atom : atoms_) {
    const AttrValue* actual = g.GetAttr(v, atom.attr);
    if (actual == nullptr || !CompareValues(*actual, atom.op, atom.value)) {
      return false;
    }
  }
  return true;
}

bool AttributePredicate::IsSatisfiable() const {
  // Per attribute: strongest bounds + pinned equality + disequalities,
  // over a dense value domain.
  struct Bounds {
    const AttrValue* lower = nullptr;
    bool lower_strict = false;
    const AttrValue* upper = nullptr;
    bool upper_strict = false;
    const AttrValue* eq = nullptr;
    std::vector<const AttrValue*> ne;
  };
  std::vector<std::pair<AttrId, Bounds>> per_attr;
  auto bounds_of = [&per_attr](AttrId a) -> Bounds& {
    for (auto& [id, b] : per_attr) {
      if (id == a) return b;
    }
    per_attr.emplace_back(a, Bounds{});
    return per_attr.back().second;
  };
  for (const auto& atom : atoms_) {
    Bounds& b = bounds_of(atom.attr);
    switch (atom.op) {
      case CmpOp::kLt:
      case CmpOp::kLe: {
        const bool strict = atom.op == CmpOp::kLt;
        if (b.upper == nullptr || atom.value < *b.upper ||
            (atom.value == *b.upper && strict)) {
          b.upper = &atom.value;
          b.upper_strict = strict;
        }
        break;
      }
      case CmpOp::kGt:
      case CmpOp::kGe: {
        const bool strict = atom.op == CmpOp::kGt;
        if (b.lower == nullptr || atom.value > *b.lower ||
            (atom.value == *b.lower && strict)) {
          b.lower = &atom.value;
          b.lower_strict = strict;
        }
        break;
      }
      case CmpOp::kEq:
        if (b.eq != nullptr && !(*b.eq == atom.value)) return false;
        b.eq = &atom.value;
        break;
      case CmpOp::kNe:
        b.ne.push_back(&atom.value);
        break;
    }
  }
  for (const auto& [attr, b] : per_attr) {
    if (b.eq != nullptr) {
      if (b.lower != nullptr &&
          (*b.eq < *b.lower || (*b.eq == *b.lower && b.lower_strict))) {
        return false;
      }
      if (b.upper != nullptr &&
          (*b.eq > *b.upper || (*b.eq == *b.upper && b.upper_strict))) {
        return false;
      }
      for (const AttrValue* v : b.ne) {
        if (*v == *b.eq) return false;
      }
    } else if (b.lower != nullptr && b.upper != nullptr) {
      if (*b.lower > *b.upper) return false;
      if (*b.lower == *b.upper && (b.lower_strict || b.upper_strict)) {
        return false;
      }
      // A dense domain always leaves room around finitely many
      // disequalities unless the interval is the single point excluded.
      if (*b.lower == *b.upper) {
        for (const AttrValue* v : b.ne) {
          if (*v == *b.lower) return false;
        }
      }
    }
  }
  return true;
}

bool AttributePredicate::EntailedBy(
    const AttributePredicate& stronger) const {
  for (const auto& atom : atoms_) {
    bool found = false;
    for (const auto& other : stronger.atoms_) {
      if (other.attr != atom.attr || other.op != atom.op) continue;
      switch (atom.op) {
        case CmpOp::kLt:
        case CmpOp::kLe:
          found = other.value <= atom.value;
          break;
        case CmpOp::kGt:
        case CmpOp::kGe:
          found = other.value >= atom.value;
          break;
        case CmpOp::kEq:
        case CmpOp::kNe:
          found = other.value == atom.value;
          break;
      }
      if (found) break;
    }
    if (!found) return false;
  }
  return true;
}

std::optional<int64_t> AttributePredicate::RequiredLabel(
    AttrId label_attr) const {
  for (const auto& atom : atoms_) {
    if (atom.attr == label_attr && atom.op == CmpOp::kEq &&
        atom.value.is_int()) {
      return atom.value.as_int();
    }
  }
  return std::nullopt;
}

std::string AttributePredicate::ToString(const AttrNames& names) const {
  // Atoms are space-separated (an implicit conjunction), matching the
  // `attr` line syntax ParseQuery accepts.
  if (atoms_.empty()) return "true";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " ";
    out += names.NameOf(atoms_[i].attr);
    out += CmpOpToString(atoms_[i].op);
    if (atoms_[i].value.is_string()) {
      out += "\"" + atoms_[i].value.as_string() + "\"";
    } else {
      out += atoms_[i].value.ToString();
    }
  }
  return out;
}

}  // namespace gtpq
