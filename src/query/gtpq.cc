#include "query/gtpq.h"

#include <algorithm>

#include "common/logging.h"

namespace gtpq {

using logic::Formula;
using logic::FormulaRef;
using logic::Kind;

std::vector<QNodeId> Gtpq::PredicateChildren(QNodeId u) const {
  std::vector<QNodeId> out;
  for (QNodeId c : nodes_[u].children) {
    if (nodes_[c].role == NodeRole::kPredicate) out.push_back(c);
  }
  return out;
}

std::vector<QNodeId> Gtpq::BackboneChildren(QNodeId u) const {
  std::vector<QNodeId> out;
  for (QNodeId c : nodes_[u].children) {
    if (nodes_[c].role == NodeRole::kBackbone) out.push_back(c);
  }
  return out;
}

FormulaRef Gtpq::ExtendedPredicate(QNodeId u) const {
  std::vector<FormulaRef> parts;
  for (QNodeId c : nodes_[u].children) {
    if (nodes_[c].role == NodeRole::kBackbone) {
      parts.push_back(Formula::Var(static_cast<int>(c)));
    }
  }
  parts.push_back(nodes_[u].structural_pred);
  return Formula::And(std::move(parts));
}

namespace {
bool FormulaIsConjunctive(const FormulaRef& f) {
  switch (f->kind()) {
    case Kind::kConst:
    case Kind::kVar:
      return true;
    case Kind::kNot:
    case Kind::kOr:
      return false;
    case Kind::kAnd:
      for (const auto& c : f->children()) {
        if (!FormulaIsConjunctive(c)) return false;
      }
      return true;
  }
  return false;
}

bool FormulaIsNegationFree(const FormulaRef& f) {
  switch (f->kind()) {
    case Kind::kConst:
    case Kind::kVar:
      return true;
    case Kind::kNot:
      return false;
    case Kind::kAnd:
    case Kind::kOr:
      for (const auto& c : f->children()) {
        if (!FormulaIsNegationFree(c)) return false;
      }
      return true;
  }
  return false;
}
}  // namespace

bool Gtpq::IsConjunctive() const {
  for (const auto& n : nodes_) {
    if (!FormulaIsConjunctive(n.structural_pred)) return false;
  }
  return true;
}

bool Gtpq::IsUnionConjunctive() const {
  for (const auto& n : nodes_) {
    if (!FormulaIsNegationFree(n.structural_pred)) return false;
  }
  return true;
}

std::vector<QNodeId> Gtpq::TopDownOrder() const {
  // Nodes are created parent-first, so ids are already topological.
  std::vector<QNodeId> order(nodes_.size());
  for (QNodeId u = 0; u < nodes_.size(); ++u) order[u] = u;
  return order;
}

std::vector<QNodeId> Gtpq::BottomUpOrder() const {
  std::vector<QNodeId> order(nodes_.size());
  for (QNodeId u = 0; u < nodes_.size(); ++u) {
    order[u] = static_cast<QNodeId>(nodes_.size() - 1 - u);
  }
  return order;
}

bool Gtpq::IsAncestor(QNodeId anc, QNodeId desc) const {
  QNodeId cur = nodes_[desc].parent;
  while (cur != kInvalidQNode) {
    if (cur == anc) return true;
    cur = nodes_[cur].parent;
  }
  return false;
}

std::vector<QNodeId> Gtpq::Subtree(QNodeId u) const {
  std::vector<QNodeId> out{u};
  for (size_t i = 0; i < out.size(); ++i) {
    for (QNodeId c : nodes_[out[i]].children) out.push_back(c);
  }
  return out;
}

uint32_t Gtpq::DepthOf(QNodeId u) const {
  uint32_t d = 0;
  QNodeId cur = nodes_[u].parent;
  while (cur != kInvalidQNode) {
    ++d;
    cur = nodes_[cur].parent;
  }
  return d;
}

Status Gtpq::Validate() const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("query has no nodes");
  }
  if (nodes_[0].parent != kInvalidQNode) {
    return Status::InvalidArgument("node 0 must be the root");
  }
  if (nodes_[0].role != NodeRole::kBackbone) {
    return Status::InvalidArgument("the root must be a backbone node");
  }
  for (QNodeId u = 0; u < nodes_.size(); ++u) {
    const QueryNode& n = nodes_[u];
    if (u != 0) {
      if (n.parent == kInvalidQNode || n.parent >= u) {
        return Status::InvalidArgument(
            "nodes must be created parent-first (node " +
            std::to_string(u) + ")");
      }
      const QueryNode& p = nodes_[n.parent];
      // Eq restriction: backbone nodes hang off backbone nodes only.
      if (n.role == NodeRole::kBackbone &&
          p.role != NodeRole::kBackbone) {
        return Status::InvalidArgument(
            "backbone node " + n.name + " under predicate parent");
      }
      if (std::find(p.children.begin(), p.children.end(), u) ==
          p.children.end()) {
        return Status::Internal("child list out of sync at " + n.name);
      }
    }
    if (n.structural_pred == nullptr) {
      return Status::Internal("missing structural predicate at " + n.name);
    }
    // fs variables must be predicate children of u.
    for (int var : logic::CollectVars(n.structural_pred)) {
      QNodeId c = static_cast<QNodeId>(var);
      if (c >= nodes_.size() || nodes_[c].parent != u ||
          nodes_[c].role != NodeRole::kPredicate) {
        return Status::InvalidArgument(
            "fs(" + n.name + ") references p" + std::to_string(var) +
            " which is not a predicate child");
      }
    }
  }
  for (QNodeId o : outputs_) {
    if (nodes_[o].role != NodeRole::kBackbone) {
      return Status::InvalidArgument("output node " + nodes_[o].name +
                                     " is not a backbone node");
    }
  }
  if (outputs_.empty()) {
    return Status::InvalidArgument("query must have at least one output");
  }
  return Status::OK();
}

std::string Gtpq::ToString(const AttrNames& names) const {
  std::string out;
  for (QNodeId u = 0; u < nodes_.size(); ++u) {
    const QueryNode& n = nodes_[u];
    out += n.role == NodeRole::kBackbone ? "backbone " : "predicate ";
    out += n.name;
    out += n.parent == kInvalidQNode
               ? " root"
               : " " + nodes_[n.parent].name +
                     (n.incoming == EdgeType::kChild ? " pc" : " ad");
    if (IsOutput(u)) out += " *";
    out += "\n";
    if (!n.attr_pred.IsTriviallyTrue()) {
      out += "attr " + n.name + " " + n.attr_pred.ToString(names) + "\n";
    }
    if (!n.structural_pred->is_true()) {
      out += "fs " + n.name + " = " +
             logic::ToString(n.structural_pred,
                             [this](int v) {
                               return nodes_[static_cast<QNodeId>(v)].name;
                             }) +
             "\n";
    }
  }
  return out;
}

QueryBuilder::QueryBuilder(std::shared_ptr<AttrNames> names) {
  GTPQ_CHECK(names != nullptr);
  query_.attr_names_ = std::move(names);
}

QueryBuilder::QueryBuilder()
    : QueryBuilder(std::make_shared<AttrNames>()) {}

QNodeId QueryBuilder::AddNode(QNodeId parent, EdgeType edge, NodeRole role,
                              std::string name, AttributePredicate pred) {
  QNodeId id = static_cast<QNodeId>(query_.nodes_.size());
  QueryNode n;
  n.role = role;
  n.attr_pred = std::move(pred);
  n.structural_pred = Formula::True();
  n.parent = parent;
  n.incoming = edge;
  n.name = name.empty() ? "u" + std::to_string(id) : std::move(name);
  query_.nodes_.push_back(std::move(n));
  query_.is_output_.push_back(0);
  if (parent != kInvalidQNode) {
    GTPQ_CHECK(parent < id) << "parent must exist before child";
    query_.nodes_[parent].children.push_back(id);
  }
  return id;
}

QNodeId QueryBuilder::AddRoot(std::string name, AttributePredicate pred) {
  GTPQ_CHECK(query_.nodes_.empty()) << "root must be the first node";
  return AddNode(kInvalidQNode, EdgeType::kDescendant,
                 NodeRole::kBackbone, std::move(name), std::move(pred));
}

QNodeId QueryBuilder::AddBackbone(QNodeId parent, EdgeType edge,
                                  std::string name,
                                  AttributePredicate pred) {
  return AddNode(parent, edge, NodeRole::kBackbone, std::move(name),
                 std::move(pred));
}

QNodeId QueryBuilder::AddPredicate(QNodeId parent, EdgeType edge,
                                   std::string name,
                                   AttributePredicate pred) {
  return AddNode(parent, edge, NodeRole::kPredicate, std::move(name),
                 std::move(pred));
}

void QueryBuilder::SetStructural(QNodeId u, FormulaRef fs) {
  GTPQ_CHECK(u < query_.nodes_.size());
  query_.nodes_[u].structural_pred = std::move(fs);
}

void QueryBuilder::SetAttrPredicate(QNodeId u, AttributePredicate pred) {
  GTPQ_CHECK(u < query_.nodes_.size());
  query_.nodes_[u].attr_pred = std::move(pred);
}

void QueryBuilder::MarkOutput(QNodeId u) {
  GTPQ_CHECK(u < query_.nodes_.size());
  if (!query_.is_output_[u]) {
    query_.is_output_[u] = 1;
    query_.outputs_.push_back(u);
  }
}

AttributePredicate QueryBuilder::Label(int64_t value) const {
  return AttributePredicate::LabelEquals(
      query_.attr_names_->label_attr(), value);
}

Result<Gtpq> QueryBuilder::Build() const {
  Gtpq copy = query_;
  Status st = copy.Validate();
  if (!st.ok()) return st;
  return copy;
}

}  // namespace gtpq
