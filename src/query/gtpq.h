#ifndef GTPQ_QUERY_GTPQ_H_
#define GTPQ_QUERY_GTPQ_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "logic/formula.h"
#include "query/attribute_predicate.h"

namespace gtpq {

/// Query-node identifier, dense in [0, NumNodes). The propositional
/// variable p_u associated with node u (Section 2) is the integer u
/// itself, so structural predicates are logic::Formulas over node ids.
using QNodeId = uint32_t;
constexpr QNodeId kInvalidQNode = static_cast<QNodeId>(-1);

/// PC (parent-child) vs AD (ancestor-descendant) query edges.
enum class EdgeType { kChild, kDescendant };

/// Backbone vs predicate nodes (Section 2): backbone variables may not
/// appear under negation/disjunction and each backbone node has an image
/// in every match; predicate nodes only constrain.
enum class NodeRole { kBackbone, kPredicate };

/// One node of a generalized tree pattern query.
struct QueryNode {
  NodeRole role = NodeRole::kBackbone;
  /// fa(u): attribute predicate.
  AttributePredicate attr_pred;
  /// fs(u): structural predicate over the ids of u's *predicate*
  /// children; Formula::True() when there are none.
  logic::FormulaRef structural_pred;
  QNodeId parent = kInvalidQNode;
  /// Type of the incoming edge (parent, u); meaningless for the root.
  EdgeType incoming = EdgeType::kDescendant;
  std::vector<QNodeId> children;
  /// Diagnostic name (parser/printer); defaults to "u<i>".
  std::string name;
};

/// A generalized tree pattern query
/// Q = (Vb, Vp, Vo, Eq, fa, fe, fs) per Section 2. Construct through
/// QueryBuilder; instances are immutable afterwards.
class Gtpq {
 public:
  QNodeId root() const { return 0; }
  size_t NumNodes() const { return nodes_.size(); }
  /// |Q| = |Vq|.
  size_t size() const { return nodes_.size(); }
  const QueryNode& node(QNodeId u) const { return nodes_[u]; }

  const std::vector<QNodeId>& outputs() const { return outputs_; }
  bool IsOutput(QNodeId u) const { return is_output_[u]; }

  bool IsBackbone(QNodeId u) const {
    return nodes_[u].role == NodeRole::kBackbone;
  }
  bool IsLeaf(QNodeId u) const { return nodes_[u].children.empty(); }

  std::vector<QNodeId> PredicateChildren(QNodeId u) const;
  std::vector<QNodeId> BackboneChildren(QNodeId u) const;

  /// fext(u) = p_c1 & ... & p_ck & fs(u) over backbone children c_i.
  logic::FormulaRef ExtendedPredicate(QNodeId u) const;

  /// Only conjunction connectives in every fs (traditional TPQ).
  bool IsConjunctive() const;
  /// Negation-free structural predicates.
  bool IsUnionConjunctive() const;

  /// Nodes in a parent-before-child order (root first).
  std::vector<QNodeId> TopDownOrder() const;
  /// Children-before-parent order.
  std::vector<QNodeId> BottomUpOrder() const;

  /// True iff `anc` is a proper ancestor of `desc` in the query tree.
  bool IsAncestor(QNodeId anc, QNodeId desc) const;

  /// All nodes of the subtree rooted at u (including u), top-down.
  std::vector<QNodeId> Subtree(QNodeId u) const;

  /// Depth of u (root = 0).
  uint32_t DepthOf(QNodeId u) const;

  /// Structural invariants of Section 2: single root, tree shape,
  /// backbone parents for backbone nodes, outputs are backbone, fs
  /// variables are predicate children. QueryBuilder::Build runs this.
  Status Validate() const;

  /// Multi-line diagnostic rendering.
  std::string ToString(const AttrNames& names) const;

  /// Attribute namer shared with the target data graph(s).
  const std::shared_ptr<AttrNames>& attr_names() const {
    return attr_names_;
  }

 private:
  friend class QueryBuilder;
  Gtpq() = default;

  std::vector<QueryNode> nodes_;
  std::vector<QNodeId> outputs_;
  std::vector<char> is_output_;
  std::shared_ptr<AttrNames> attr_names_;
};

/// Incremental construction of GTPQs. Typical use:
///
///   QueryBuilder b(names);
///   QNodeId root = b.AddRoot("paper", pred);
///   QNodeId a = b.AddPredicate(root, EdgeType::kChild, "author", authorP);
///   b.SetStructural(root, Formula::Not(Formula::Var(a)));
///   b.MarkOutput(root);
///   Gtpq q = b.Build().TakeValue();
class QueryBuilder {
 public:
  explicit QueryBuilder(std::shared_ptr<AttrNames> names);
  /// Builder with a fresh attribute namespace.
  QueryBuilder();

  QNodeId AddRoot(std::string name, AttributePredicate pred);
  QNodeId AddBackbone(QNodeId parent, EdgeType edge, std::string name,
                      AttributePredicate pred);
  QNodeId AddPredicate(QNodeId parent, EdgeType edge, std::string name,
                       AttributePredicate pred);

  /// Sets fs(u); variables must be ids of u's predicate children.
  void SetStructural(QNodeId u, logic::FormulaRef fs);
  /// Replaces fa(u).
  void SetAttrPredicate(QNodeId u, AttributePredicate pred);
  void MarkOutput(QNodeId u);

  /// Shorthand: label-equality predicate in the builder's namespace.
  AttributePredicate Label(int64_t value) const;

  /// Validates and freezes. The builder may keep being used afterwards
  /// (Build copies).
  Result<Gtpq> Build() const;

 private:
  QNodeId AddNode(QNodeId parent, EdgeType edge, NodeRole role,
                  std::string name, AttributePredicate pred);

  Gtpq query_;
};

}  // namespace gtpq

#endif  // GTPQ_QUERY_GTPQ_H_
