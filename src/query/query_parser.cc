#include "query/query_parser.h"

#include <cctype>
#include <cstring>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace gtpq {

namespace {

// Splits a line into whitespace-separated tokens, keeping quoted
// strings (and the tokens they are glued to, like year>="2000") intact.
std::vector<std::string> Tokenize(std::string_view line) {
  std::vector<std::string> tokens;
  std::string cur;
  bool in_quotes = false;
  for (char c : line) {
    if (c == '"') {
      in_quotes = !in_quotes;
      cur.push_back(c);
    } else if (!in_quotes && std::isspace(static_cast<unsigned char>(c))) {
      if (!cur.empty()) {
        tokens.push_back(cur);
        cur.clear();
      }
    } else {
      cur.push_back(c);
    }
  }
  if (!cur.empty()) tokens.push_back(cur);
  return tokens;
}

Result<AttrAtom> ParseAtom(const std::string& token, AttrNames* names) {
  static const struct {
    const char* text;
    CmpOp op;
  } kOps[] = {
      {"<=", CmpOp::kLe}, {">=", CmpOp::kGe}, {"!=", CmpOp::kNe},
      {"<", CmpOp::kLt},  {">", CmpOp::kGt},  {"=", CmpOp::kEq},
  };
  for (const auto& candidate : kOps) {
    size_t pos = token.find(candidate.text);
    if (pos == std::string::npos || pos == 0) continue;
    std::string attr = token.substr(0, pos);
    std::string value = token.substr(pos + std::strlen(candidate.text));
    if (value.empty()) {
      return Status::ParseError("missing value in atom '" + token + "'");
    }
    AttrAtom atom;
    atom.attr = names->Intern(attr);
    atom.op = candidate.op;
    if (value.front() == '"') {
      if (value.size() < 2 || value.back() != '"') {
        return Status::ParseError("unterminated string in '" + token + "'");
      }
      atom.value = AttrValue(value.substr(1, value.size() - 2));
    } else if (value.find('.') != std::string::npos) {
      atom.value = AttrValue(std::stod(value));
    } else {
      try {
        atom.value = AttrValue(static_cast<int64_t>(std::stoll(value)));
      } catch (...) {
        return Status::ParseError("bad numeric value in '" + token + "'");
      }
    }
    return atom;
  }
  return Status::ParseError("no comparison operator in atom '" + token +
                            "'");
}

}  // namespace

Result<Gtpq> ParseQuery(const std::string& text,
                        std::shared_ptr<AttrNames> names) {
  QueryBuilder builder(names);
  std::map<std::string, QNodeId> by_name;
  // Deferred items resolved after all nodes exist.
  std::vector<std::pair<QNodeId, std::string>> pending_fs;
  std::vector<std::pair<QNodeId, std::vector<std::string>>> pending_attrs;

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    auto tokens = Tokenize(StripWhitespace(line));
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& head = tokens[0];
    auto fail = [&](const std::string& msg) {
      return Status::ParseError("line " + std::to_string(line_no) + ": " +
                                msg);
    };

    if (head == "backbone" || head == "predicate") {
      if (tokens.size() < 3) return fail("expected '<kind> <name> <parent>'");
      const std::string& name = tokens[1];
      if (by_name.count(name)) return fail("duplicate node " + name);
      bool output = !tokens.empty() && tokens.back() == "*";
      QNodeId id;
      // A registered node name takes precedence over the `root` keyword,
      // so a node may itself be called "root".
      if (!by_name.count(tokens[2]) && tokens[2] == "root") {
        if (head != "backbone") return fail("root must be backbone");
        if (!by_name.empty()) return fail("duplicate root declaration");
        id = builder.AddRoot(name, AttributePredicate());
      } else {
        auto it = by_name.find(tokens[2]);
        if (it == by_name.end()) return fail("unknown parent " + tokens[2]);
        if (tokens.size() < 4) return fail("missing edge type pc|ad");
        EdgeType edge;
        if (tokens[3] == "pc") {
          edge = EdgeType::kChild;
        } else if (tokens[3] == "ad") {
          edge = EdgeType::kDescendant;
        } else {
          return fail("edge type must be pc or ad, got " + tokens[3]);
        }
        id = head == "backbone"
                 ? builder.AddBackbone(it->second, edge, name,
                                       AttributePredicate())
                 : builder.AddPredicate(it->second, edge, name,
                                        AttributePredicate());
      }
      by_name.emplace(name, id);
      if (output) builder.MarkOutput(id);
    } else if (head == "attr") {
      if (tokens.size() < 3) return fail("expected 'attr <name> <atoms>'");
      auto it = by_name.find(tokens[1]);
      if (it == by_name.end()) return fail("unknown node " + tokens[1]);
      pending_attrs.emplace_back(
          it->second,
          std::vector<std::string>(tokens.begin() + 2, tokens.end()));
    } else if (head == "fs") {
      if (tokens.size() < 4 || tokens[2] != "=") {
        return fail("expected 'fs <name> = <formula>'");
      }
      auto it = by_name.find(tokens[1]);
      if (it == by_name.end()) return fail("unknown node " + tokens[1]);
      std::string formula;
      for (size_t i = 3; i < tokens.size(); ++i) {
        if (i > 3) formula += " ";
        formula += tokens[i];
      }
      pending_fs.emplace_back(it->second, formula);
    } else if (head == "output") {
      if (tokens.size() != 2) return fail("expected 'output <name>'");
      auto it = by_name.find(tokens[1]);
      if (it == by_name.end()) return fail("unknown node " + tokens[1]);
      builder.MarkOutput(it->second);
    } else {
      return fail("unknown directive '" + head + "'");
    }
  }

  for (const auto& [id, atoms] : pending_attrs) {
    AttributePredicate pred;
    for (const auto& token : atoms) {
      auto atom = ParseAtom(token, names.get());
      if (!atom.ok()) return atom.status();
      pred.AddAtom(atom->attr, atom->op, atom->value);
    }
    builder.SetAttrPredicate(id, std::move(pred));
  }

  std::string error;
  for (const auto& [id, formula_text] : pending_fs) {
    auto formula = logic::ParseFormula(
        formula_text, [&by_name, &error](const std::string& name) -> int {
          auto it = by_name.find(name);
          if (it == by_name.end()) {
            error = "unknown node '" + name + "' in fs";
            return 0;
          }
          return static_cast<int>(it->second);
        });
    if (!formula.ok()) return formula.status();
    if (!error.empty()) return Status::ParseError(error);
    builder.SetStructural(id, *formula);
  }
  return builder.Build();
}

Result<Gtpq> ParseQuery(const std::string& text) {
  return ParseQuery(text, std::make_shared<AttrNames>());
}

}  // namespace gtpq
