#include "graph/digraph.h"

#include <algorithm>

namespace gtpq {

NodeId Digraph::AddNode() {
  finalized_ = false;
  return static_cast<NodeId>(num_nodes_++);
}

void Digraph::AddNodes(size_t count) {
  finalized_ = false;
  num_nodes_ += count;
}

void Digraph::AddEdge(NodeId from, NodeId to) {
  GTPQ_DCHECK(from < num_nodes_ && to < num_nodes_);
  finalized_ = false;
  pending_edges_.emplace_back(from, to);
}

void Digraph::Finalize() {
  if (finalized_) return;
  std::sort(pending_edges_.begin(), pending_edges_.end());
  pending_edges_.erase(
      std::unique(pending_edges_.begin(), pending_edges_.end()),
      pending_edges_.end());

  out_offsets_.assign(num_nodes_ + 1, 0);
  in_offsets_.assign(num_nodes_ + 1, 0);
  out_targets_.clear();
  in_targets_.clear();
  out_targets_.reserve(pending_edges_.size());
  in_targets_.resize(pending_edges_.size());

  for (const auto& [from, to] : pending_edges_) {
    ++out_offsets_[from + 1];
    ++in_offsets_[to + 1];
  }
  for (size_t i = 1; i <= num_nodes_; ++i) {
    out_offsets_[i] += out_offsets_[i - 1];
    in_offsets_[i] += in_offsets_[i - 1];
  }
  for (const auto& [from, to] : pending_edges_) {
    out_targets_.push_back(to);  // pending_edges_ already sorted by (from,to)
  }
  std::vector<size_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (const auto& [from, to] : pending_edges_) {
    in_targets_[cursor[to]++] = from;
  }
  // In-neighbor lists are filled in (from, to) order, hence sorted by
  // `from` within each bucket already.
  finalized_ = true;
}

bool Digraph::HasEdge(NodeId from, NodeId to) const {
  auto nbrs = OutNeighbors(from);
  return std::binary_search(nbrs.begin(), nbrs.end(), to);
}

Digraph Digraph::Reversed() const {
  Digraph rev(num_nodes_);
  for (const auto& [from, to] : pending_edges_) {
    rev.AddEdge(to, from);
  }
  rev.Finalize();
  return rev;
}

}  // namespace gtpq
