#ifndef GTPQ_GRAPH_GENERATORS_H_
#define GTPQ_GRAPH_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "graph/data_graph.h"

namespace gtpq {

/// Parameters for the random-DAG generator used by property tests and
/// micro-benchmarks.
struct RandomDagOptions {
  size_t num_nodes = 100;
  /// Expected out-degree; edges go from lower to higher node index, so
  /// the result is always a DAG.
  double avg_degree = 2.0;
  /// Number of distinct labels assigned uniformly.
  int64_t num_labels = 5;
  /// Bias edges toward nearby nodes (locality window as a fraction of n;
  /// 1.0 = uniform over all later nodes).
  double locality = 1.0;
  uint64_t seed = 42;
};

/// Uniform random DAG with labeled nodes; finalized.
DataGraph RandomDag(const RandomDagOptions& options);

/// Parameters for a random general digraph (cycles allowed).
struct RandomDigraphOptions {
  size_t num_nodes = 100;
  double avg_degree = 2.0;
  int64_t num_labels = 5;
  uint64_t seed = 42;
};

/// Uniform random digraph (may contain cycles and self-loops);
/// finalized. Exercises the SCC-condensation path of the indexes.
DataGraph RandomDigraph(const RandomDigraphOptions& options);

/// Parameters for a random tree plus forward cross edges — the
/// "XML with ID/IDREFs" shape the paper targets.
struct RandomTreeOptions {
  size_t num_nodes = 100;
  /// Maximum tree depth; parents are sampled among recent nodes to keep
  /// the tree shallow like XMark (avg depth ~5).
  uint32_t max_depth = 6;
  /// Number of extra non-tree edges as a fraction of nodes.
  double cross_edge_fraction = 0.2;
  int64_t num_labels = 5;
  uint64_t seed = 42;
};

/// Random tree with forward cross edges (a DAG); spanning-tree
/// annotation is populated; finalized.
DataGraph RandomTreeWithCrossEdges(const RandomTreeOptions& options);

}  // namespace gtpq

#endif  // GTPQ_GRAPH_GENERATORS_H_
