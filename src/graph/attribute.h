#ifndef GTPQ_GRAPH_ATTRIBUTE_H_
#define GTPQ_GRAPH_ATTRIBUTE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/logging.h"

namespace gtpq {

/// Interned attribute-name identifier (e.g. "tag", "value", "label").
using AttrId = int32_t;

/// An attribute value: integer, floating point, or string. The data
/// model of Section 2 attaches a tuple (A1=a1, ..., An=an) to each node.
class AttrValue {
 public:
  AttrValue() : repr_(int64_t{0}) {}
  AttrValue(int64_t v) : repr_(v) {}          // NOLINT implicit
  AttrValue(int v) : repr_(int64_t{v}) {}     // NOLINT implicit
  AttrValue(double v) : repr_(v) {}           // NOLINT implicit
  AttrValue(std::string v) : repr_(std::move(v)) {}  // NOLINT implicit
  AttrValue(const char* v) : repr_(std::string(v)) {}  // NOLINT implicit

  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_string() const {
    return std::holds_alternative<std::string>(repr_);
  }

  int64_t as_int() const { return std::get<int64_t>(repr_); }
  double as_double() const { return std::get<double>(repr_); }
  const std::string& as_string() const {
    return std::get<std::string>(repr_);
  }

  /// Three-way comparison across the numeric tower; strings compare
  /// lexicographically and never equal numbers (they compare by type
  /// rank: numbers < strings).
  int Compare(const AttrValue& other) const;

  bool operator==(const AttrValue& o) const { return Compare(o) == 0; }
  bool operator!=(const AttrValue& o) const { return Compare(o) != 0; }
  bool operator<(const AttrValue& o) const { return Compare(o) < 0; }
  bool operator<=(const AttrValue& o) const { return Compare(o) <= 0; }
  bool operator>(const AttrValue& o) const { return Compare(o) > 0; }
  bool operator>=(const AttrValue& o) const { return Compare(o) >= 0; }

  std::string ToString() const;

 private:
  std::variant<int64_t, double, std::string> repr_;
};

/// One attribute binding A = a.
struct AttrBinding {
  AttrId attr;
  AttrValue value;
};

/// The tuple f(v) attached to a data node: a small list of bindings.
class AttrTuple {
 public:
  AttrTuple() = default;

  void Set(AttrId attr, AttrValue value);
  /// Returns nullptr if the attribute is absent.
  const AttrValue* Get(AttrId attr) const;
  const std::vector<AttrBinding>& bindings() const { return bindings_; }
  bool empty() const { return bindings_.empty(); }

 private:
  std::vector<AttrBinding> bindings_;
};

/// Bidirectional attribute-name interner shared by a data graph and the
/// queries posed against it.
class AttrNames {
 public:
  AttrNames();

  /// Returns the id of `name`, interning it on first use.
  AttrId Intern(const std::string& name);
  /// Returns -1 if unknown.
  AttrId Lookup(const std::string& name) const;
  const std::string& NameOf(AttrId id) const;
  size_t size() const { return names_.size(); }

  /// The pre-interned id of the conventional "label" attribute used by
  /// the benchmark workloads.
  AttrId label_attr() const { return label_attr_; }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, AttrId> ids_;
  AttrId label_attr_;
};

}  // namespace gtpq

#endif  // GTPQ_GRAPH_ATTRIBUTE_H_
