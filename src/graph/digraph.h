#ifndef GTPQ_GRAPH_DIGRAPH_H_
#define GTPQ_GRAPH_DIGRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace gtpq {

/// Node identifier within one graph; dense in [0, NumNodes).
using NodeId = uint32_t;
constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// Directed graph in mutable adjacency form with an optional frozen CSR
/// view. Build with AddNode/AddEdge, then call Finalize() once; the
/// query-time accessors (OutNeighbors etc.) require a finalized graph.
class Digraph {
 public:
  Digraph() = default;
  explicit Digraph(size_t num_nodes) { AddNodes(num_nodes); }

  /// Adds a node and returns its id.
  NodeId AddNode();
  /// Adds `count` nodes.
  void AddNodes(size_t count);
  /// Adds edge (from, to). Parallel edges are merged at Finalize().
  void AddEdge(NodeId from, NodeId to);

  size_t NumNodes() const { return num_nodes_; }
  /// Distinct edges; only valid after Finalize().
  size_t NumEdges() const {
    GTPQ_DCHECK(finalized_);
    return out_targets_.size();
  }

  /// Sorts adjacency, removes duplicate edges and builds the reverse
  /// (in-neighbor) CSR. Idempotent until the next mutation.
  void Finalize();
  bool finalized() const { return finalized_; }

  /// Outgoing neighbors of v, sorted ascending. Requires Finalize().
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    GTPQ_DCHECK(finalized_);
    return {out_targets_.data() + out_offsets_[v],
            out_offsets_[v + 1] - out_offsets_[v]};
  }

  /// Incoming neighbors of v, sorted ascending. Requires Finalize().
  std::span<const NodeId> InNeighbors(NodeId v) const {
    GTPQ_DCHECK(finalized_);
    return {in_targets_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }

  size_t OutDegree(NodeId v) const { return OutNeighbors(v).size(); }
  size_t InDegree(NodeId v) const { return InNeighbors(v).size(); }

  /// Edge membership test via binary search. Requires Finalize().
  bool HasEdge(NodeId from, NodeId to) const;

  /// The reversed graph (finalized).
  Digraph Reversed() const;

 private:
  size_t num_nodes_ = 0;
  bool finalized_ = false;
  // Mutable edge list used during construction.
  std::vector<std::pair<NodeId, NodeId>> pending_edges_;
  // CSR views (valid when finalized_).
  std::vector<size_t> out_offsets_, in_offsets_;
  std::vector<NodeId> out_targets_, in_targets_;
};

}  // namespace gtpq

#endif  // GTPQ_GRAPH_DIGRAPH_H_
