#include "graph/attribute.h"

#include <algorithm>
#include <cstdio>

namespace gtpq {

int AttrValue::Compare(const AttrValue& other) const {
  // Type rank: numbers (0) < strings (1).
  const int rank_a = is_string() ? 1 : 0;
  const int rank_b = other.is_string() ? 1 : 0;
  if (rank_a != rank_b) return rank_a - rank_b;
  if (rank_a == 1) {
    return as_string().compare(other.as_string());
  }
  const double a = is_int() ? static_cast<double>(as_int()) : as_double();
  const double b =
      other.is_int() ? static_cast<double>(other.as_int()) : other.as_double();
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

std::string AttrValue::ToString() const {
  if (is_int()) return std::to_string(as_int());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%g", as_double());
    return buf;
  }
  return as_string();
}

void AttrTuple::Set(AttrId attr, AttrValue value) {
  for (auto& b : bindings_) {
    if (b.attr == attr) {
      b.value = std::move(value);
      return;
    }
  }
  bindings_.push_back(AttrBinding{attr, std::move(value)});
}

const AttrValue* AttrTuple::Get(AttrId attr) const {
  for (const auto& b : bindings_) {
    if (b.attr == attr) return &b.value;
  }
  return nullptr;
}

AttrNames::AttrNames() { label_attr_ = Intern("label"); }

AttrId AttrNames::Intern(const std::string& name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  AttrId id = static_cast<AttrId>(names_.size());
  names_.push_back(name);
  ids_.emplace(name, id);
  return id;
}

AttrId AttrNames::Lookup(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

const std::string& AttrNames::NameOf(AttrId id) const {
  GTPQ_CHECK(id >= 0 && static_cast<size_t>(id) < names_.size());
  return names_[static_cast<size_t>(id)];
}

}  // namespace gtpq
