#include "graph/generators.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace gtpq {

DataGraph RandomDag(const RandomDagOptions& options) {
  const size_t n = options.num_nodes;
  DataGraph g(n);
  Rng rng(options.seed);
  for (NodeId v = 0; v < n; ++v) {
    g.SetLabel(v, static_cast<int64_t>(rng.NextBounded(
                      static_cast<uint64_t>(options.num_labels))));
  }
  const size_t num_edges =
      static_cast<size_t>(options.avg_degree * static_cast<double>(n));
  for (size_t e = 0; e < num_edges; ++e) {
    if (n < 2) break;
    NodeId from = static_cast<NodeId>(rng.NextBounded(n - 1));
    size_t window = std::max<size_t>(
        1, static_cast<size_t>(options.locality *
                               static_cast<double>(n - from - 1)));
    NodeId to = from + 1 + static_cast<NodeId>(rng.NextBounded(window));
    if (to >= n) to = static_cast<NodeId>(n - 1);
    g.AddEdge(from, to);
  }
  g.Finalize();
  return g;
}

DataGraph RandomDigraph(const RandomDigraphOptions& options) {
  const size_t n = options.num_nodes;
  DataGraph g(n);
  Rng rng(options.seed);
  for (NodeId v = 0; v < n; ++v) {
    g.SetLabel(v, static_cast<int64_t>(rng.NextBounded(
                      static_cast<uint64_t>(options.num_labels))));
  }
  const size_t num_edges =
      static_cast<size_t>(options.avg_degree * static_cast<double>(n));
  for (size_t e = 0; e < num_edges; ++e) {
    NodeId from = static_cast<NodeId>(rng.NextBounded(n));
    NodeId to = static_cast<NodeId>(rng.NextBounded(n));
    g.AddEdge(from, to);
  }
  g.Finalize();
  return g;
}

DataGraph RandomTreeWithCrossEdges(const RandomTreeOptions& options) {
  const size_t n = options.num_nodes;
  GTPQ_CHECK(n >= 1);
  DataGraph g(n);
  Rng rng(options.seed);
  std::vector<uint32_t> depth(n, 0);
  g.SetTreeParent(0, kInvalidNode);
  for (NodeId v = 1; v < n; ++v) {
    // Sample parents until one under the depth cap is found (bounded
    // retries; falls back to the root).
    NodeId parent = 0;
    for (int attempt = 0; attempt < 8; ++attempt) {
      NodeId cand = static_cast<NodeId>(rng.NextBounded(v));
      if (depth[cand] + 1 <= options.max_depth) {
        parent = cand;
        break;
      }
    }
    depth[v] = depth[parent] + 1;
    g.AddEdge(parent, v);
    g.SetTreeParent(v, parent);
  }
  for (NodeId v = 0; v < n; ++v) {
    g.SetLabel(v, static_cast<int64_t>(rng.NextBounded(
                      static_cast<uint64_t>(options.num_labels))));
  }
  const size_t num_cross = static_cast<size_t>(
      options.cross_edge_fraction * static_cast<double>(n));
  for (size_t e = 0; e < num_cross && n >= 2; ++e) {
    NodeId from = static_cast<NodeId>(rng.NextBounded(n - 1));
    NodeId to =
        from + 1 + static_cast<NodeId>(rng.NextBounded(n - 1 - from));
    g.AddEdge(from, to);
  }
  g.Finalize();
  return g;
}

}  // namespace gtpq
