#ifndef GTPQ_GRAPH_ALGORITHMS_H_
#define GTPQ_GRAPH_ALGORITHMS_H_

#include <vector>

#include "graph/digraph.h"

namespace gtpq {

/// Topological order of a finalized DAG (Kahn's algorithm). Returns an
/// empty vector when the graph contains a cycle.
std::vector<NodeId> TopologicalSort(const Digraph& g);

/// True iff the finalized graph is acyclic.
bool IsDag(const Digraph& g);

/// Strongly connected components (iterative Tarjan). Components are
/// numbered in reverse topological order of the condensation: if an edge
/// leads from component a to component b (a != b), then a > b.
struct SccResult {
  std::vector<NodeId> component_of;  // node -> component id
  size_t num_components = 0;
  /// component id -> number of member nodes.
  std::vector<uint32_t> component_size;
  /// component id -> whether it is cyclic (size > 1 or a self-loop).
  std::vector<char> cyclic;
};
SccResult ComputeScc(const Digraph& g);

/// Condensation DAG: one node per SCC, edges between distinct SCCs
/// deduplicated. Node ids equal SCC ids from `scc`.
Digraph BuildCondensation(const Digraph& g, const SccResult& scc);

/// Nodes reachable from `source` by a path of length >= 1 (the paper's
/// ancestor-descendant relation), via BFS. Used as a small-scale oracle.
std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId source);

/// Depth of each node from the set of roots (nodes with in-degree 0),
/// i.e. longest path lengths when `longest` is true, else BFS depth.
std::vector<uint32_t> DepthsFromRoots(const Digraph& g, bool longest);

}  // namespace gtpq

#endif  // GTPQ_GRAPH_ALGORITHMS_H_
