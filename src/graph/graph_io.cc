#include "graph/graph_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "common/string_util.h"

namespace gtpq {

namespace {
std::string EncodeValue(const AttrValue& v) {
  if (v.is_string()) return "\"" + v.as_string() + "\"";
  return v.ToString();
}

AttrValue DecodeValue(const std::string& text) {
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    return AttrValue(text.substr(1, text.size() - 2));
  }
  if (text.find('.') != std::string::npos ||
      text.find('e') != std::string::npos) {
    return AttrValue(std::stod(text));
  }
  return AttrValue(static_cast<int64_t>(std::stoll(text)));
}
}  // namespace

Status SaveDataGraph(const DataGraph& g, std::ostream* out) {
  (*out) << "gtpq-graph v1\n";
  (*out) << "nodes " << g.NumNodes() << "\n";
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto& tuple = g.Attrs(v);
    if (g.LabelOf(v) == 0 && tuple.empty()) continue;
    (*out) << "node " << v << " " << g.LabelOf(v);
    for (const auto& b : tuple.bindings()) {
      (*out) << " " << g.attr_names().NameOf(b.attr) << "="
             << EncodeValue(b.value);
    }
    (*out) << "\n";
  }
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      (*out) << "edge " << v << " " << w;
      if (g.IsTreeEdge(v, w)) (*out) << " tree";
      (*out) << "\n";
    }
  }
  if (!out->good()) return Status::Internal("stream write failed");
  return Status::OK();
}

Status SaveDataGraphToFile(const DataGraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open " + path + " for writing");
  return SaveDataGraph(g, &out);
}

Result<DataGraph> LoadDataGraph(std::istream* in) {
  std::string line;
  if (!std::getline(*in, line) ||
      StripWhitespace(line) != "gtpq-graph v1") {
    return Status::ParseError("missing 'gtpq-graph v1' header");
  }
  if (!std::getline(*in, line)) {
    return Status::ParseError("missing 'nodes' line");
  }
  auto head = Split(line, ' ');
  if (head.size() != 2 || head[0] != "nodes") {
    return Status::ParseError("malformed 'nodes' line: " + line);
  }
  size_t n = std::stoull(head[1]);
  DataGraph g(n);

  size_t line_no = 2;
  while (std::getline(*in, line)) {
    ++line_no;
    auto stripped = StripWhitespace(line);
    if (stripped.empty() || stripped[0] == '#') continue;
    auto parts = Split(stripped, ' ');
    if (parts[0] == "node") {
      if (parts.size() < 3) {
        return Status::ParseError("malformed node line " +
                                  std::to_string(line_no));
      }
      NodeId id = static_cast<NodeId>(std::stoul(parts[1]));
      if (id >= n) {
        return Status::ParseError("node id out of range at line " +
                                  std::to_string(line_no));
      }
      g.SetLabel(id, std::stoll(parts[2]));
      for (size_t i = 3; i < parts.size(); ++i) {
        auto eq = parts[i].find('=');
        if (eq == std::string::npos) {
          return Status::ParseError("malformed attribute at line " +
                                    std::to_string(line_no));
        }
        g.SetAttr(id, parts[i].substr(0, eq),
                  DecodeValue(parts[i].substr(eq + 1)));
      }
    } else if (parts[0] == "edge") {
      if (parts.size() < 3) {
        return Status::ParseError("malformed edge line " +
                                  std::to_string(line_no));
      }
      NodeId from = static_cast<NodeId>(std::stoul(parts[1]));
      NodeId to = static_cast<NodeId>(std::stoul(parts[2]));
      if (from >= n || to >= n) {
        return Status::ParseError("edge endpoint out of range at line " +
                                  std::to_string(line_no));
      }
      g.AddEdge(from, to);
      if (parts.size() >= 4 && parts[3] == "tree") {
        g.SetTreeParent(to, from);
      }
    } else {
      return Status::ParseError("unknown directive '" + parts[0] +
                                "' at line " + std::to_string(line_no));
    }
  }
  g.Finalize();
  return g;
}

Result<DataGraph> LoadDataGraphFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return LoadDataGraph(&in);
}

}  // namespace gtpq
