#include "graph/algorithms.h"

#include <algorithm>
#include <queue>

#include "common/logging.h"

namespace gtpq {

std::vector<NodeId> TopologicalSort(const Digraph& g) {
  const size_t n = g.NumNodes();
  std::vector<uint32_t> indegree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    indegree[v] = static_cast<uint32_t>(g.InDegree(v));
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<NodeId> frontier;
  for (NodeId v = 0; v < n; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    NodeId v = frontier.back();
    frontier.pop_back();
    order.push_back(v);
    for (NodeId w : g.OutNeighbors(v)) {
      if (--indegree[w] == 0) frontier.push_back(w);
    }
  }
  if (order.size() != n) return {};  // cycle
  return order;
}

bool IsDag(const Digraph& g) {
  return g.NumNodes() == 0 || !TopologicalSort(g).empty();
}

SccResult ComputeScc(const Digraph& g) {
  const size_t n = g.NumNodes();
  SccResult result;
  result.component_of.assign(n, kInvalidNode);

  // Iterative Tarjan with an explicit stack of (node, child cursor).
  std::vector<uint32_t> index(n, UINT32_MAX), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<NodeId> stack;
  std::vector<std::pair<NodeId, size_t>> call_stack;
  uint32_t next_index = 0;

  for (NodeId root = 0; root < n; ++root) {
    if (index[root] != UINT32_MAX) continue;
    call_stack.emplace_back(root, 0);
    while (!call_stack.empty()) {
      auto& [v, cursor] = call_stack.back();
      if (cursor == 0) {
        index[v] = lowlink[v] = next_index++;
        stack.push_back(v);
        on_stack[v] = 1;
      }
      auto nbrs = g.OutNeighbors(v);
      bool descended = false;
      while (cursor < nbrs.size()) {
        NodeId w = nbrs[cursor++];
        if (index[w] == UINT32_MAX) {
          call_stack.emplace_back(w, 0);
          descended = true;
          break;
        }
        if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      }
      if (descended) continue;
      if (lowlink[v] == index[v]) {
        uint32_t comp = static_cast<uint32_t>(result.num_components++);
        uint32_t size = 0;
        for (;;) {
          NodeId w = stack.back();
          stack.pop_back();
          on_stack[w] = 0;
          result.component_of[w] = comp;
          ++size;
          if (w == v) break;
        }
        result.component_size.push_back(size);
      }
      NodeId finished = v;
      call_stack.pop_back();
      if (!call_stack.empty()) {
        NodeId parent = call_stack.back().first;
        lowlink[parent] = std::min(lowlink[parent], lowlink[finished]);
      }
    }
  }

  // Tarjan emits SCCs in reverse topological order already.
  result.cyclic.assign(result.num_components, 0);
  for (size_t c = 0; c < result.num_components; ++c) {
    if (result.component_size[c] > 1) result.cyclic[c] = 1;
  }
  for (NodeId v = 0; v < n; ++v) {
    auto nbrs = g.OutNeighbors(v);
    if (std::binary_search(nbrs.begin(), nbrs.end(), v)) {
      result.cyclic[result.component_of[v]] = 1;  // self-loop
    }
  }
  return result;
}

Digraph BuildCondensation(const Digraph& g, const SccResult& scc) {
  Digraph cond(scc.num_components);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    NodeId cv = scc.component_of[v];
    for (NodeId w : g.OutNeighbors(v)) {
      NodeId cw = scc.component_of[w];
      if (cv != cw) cond.AddEdge(cv, cw);
    }
  }
  cond.Finalize();
  return cond;
}

std::vector<NodeId> ReachableFrom(const Digraph& g, NodeId source) {
  std::vector<char> visited(g.NumNodes(), 0);
  std::vector<NodeId> queue;
  std::vector<NodeId> out;
  for (NodeId w : g.OutNeighbors(source)) {
    if (!visited[w]) {
      visited[w] = 1;
      queue.push_back(w);
    }
  }
  size_t head = 0;
  while (head < queue.size()) {
    NodeId v = queue[head++];
    out.push_back(v);
    for (NodeId w : g.OutNeighbors(v)) {
      if (!visited[w]) {
        visited[w] = 1;
        queue.push_back(w);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<uint32_t> DepthsFromRoots(const Digraph& g, bool longest) {
  const size_t n = g.NumNodes();
  std::vector<uint32_t> depth(n, 0);
  auto order = TopologicalSort(g);
  GTPQ_CHECK(!order.empty() || n == 0) << "DepthsFromRoots requires a DAG";
  for (NodeId v : order) {
    for (NodeId w : g.OutNeighbors(v)) {
      uint32_t cand = depth[v] + 1;
      if (longest ? cand > depth[w] : depth[w] == 0) {
        depth[w] = cand;
      }
    }
  }
  return depth;
}

}  // namespace gtpq
