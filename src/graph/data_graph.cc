#include "graph/data_graph.h"

#include <algorithm>

namespace gtpq {

DataGraph::DataGraph() : attr_names_(std::make_shared<AttrNames>()) {}

DataGraph::DataGraph(size_t num_nodes) : DataGraph() {
  graph_.AddNodes(num_nodes);
  labels_.assign(num_nodes, 0);
  tuples_.resize(num_nodes);
}

DataGraph::DataGraph(size_t num_nodes,
                     std::shared_ptr<AttrNames> attr_names)
    : attr_names_(std::move(attr_names)) {
  GTPQ_CHECK(attr_names_ != nullptr);
  graph_.AddNodes(num_nodes);
  labels_.assign(num_nodes, 0);
  tuples_.resize(num_nodes);
}

NodeId DataGraph::AddNode() { return AddNode(0); }

NodeId DataGraph::AddNode(int64_t label) {
  NodeId id = graph_.AddNode();
  labels_.push_back(label);
  tuples_.emplace_back();
  if (!tree_parent_.empty()) tree_parent_.push_back(kInvalidNode);
  return id;
}

void DataGraph::AddEdge(NodeId from, NodeId to) { graph_.AddEdge(from, to); }

void DataGraph::SetLabel(NodeId v, int64_t label) {
  GTPQ_DCHECK(v < labels_.size());
  labels_[v] = label;
}

void DataGraph::SetAttr(NodeId v, const std::string& attr, AttrValue value) {
  SetAttr(v, attr_names_->Intern(attr), std::move(value));
}

void DataGraph::SetAttr(NodeId v, AttrId attr, AttrValue value) {
  GTPQ_DCHECK(v < tuples_.size());
  if (attr == attr_names_->label_attr()) {
    GTPQ_CHECK(value.is_int()) << "label attribute must be an integer";
    SetLabel(v, value.as_int());
    return;
  }
  tuples_[v].Set(attr, std::move(value));
}

const AttrValue* DataGraph::GetAttr(NodeId v, AttrId attr) const {
  if (attr == attr_names_->label_attr()) {
    // Materialize through a thread-local scratch value; callers only
    // compare/copy, never retain across calls.
    static thread_local AttrValue scratch;
    scratch = AttrValue(labels_[v]);
    return &scratch;
  }
  return tuples_[v].Get(attr);
}

void DataGraph::Finalize() {
  graph_.Finalize();
  label_index_.clear();
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) {
    label_index_[labels_[v]].push_back(v);
  }
  for (auto& [label, nodes] : label_index_) {
    std::sort(nodes.begin(), nodes.end());
  }
}

std::span<const NodeId> DataGraph::NodesWithLabel(int64_t label) const {
  auto it = label_index_.find(label);
  if (it == label_index_.end()) return {};
  return {it->second.data(), it->second.size()};
}

std::vector<int64_t> DataGraph::DistinctLabels() const {
  std::vector<int64_t> out;
  out.reserve(label_index_.size());
  for (const auto& [label, nodes] : label_index_) out.push_back(label);
  return out;
}

void DataGraph::SetTreeParent(NodeId v, NodeId parent) {
  if (tree_parent_.empty()) {
    tree_parent_.assign(graph_.NumNodes(), kInvalidNode);
  }
  GTPQ_DCHECK(v < tree_parent_.size());
  tree_parent_[v] = parent;
}

}  // namespace gtpq
