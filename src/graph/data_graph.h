#ifndef GTPQ_GRAPH_DATA_GRAPH_H_
#define GTPQ_GRAPH_DATA_GRAPH_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/attribute.h"
#include "graph/digraph.h"

namespace gtpq {

/// A data graph G = (V, E, f) per Section 2: a directed graph whose
/// nodes carry attribute tuples. The conventional integer attribute
/// "label" gets a dedicated dense side array plus an inverted index,
/// since every benchmark predicate selects on it.
class DataGraph {
 public:
  DataGraph();
  explicit DataGraph(size_t num_nodes);
  /// Shares an existing attribute namespace instead of creating a fresh
  /// one. Snapshot materialization (dynamic/graph_delta.h) uses this so
  /// attribute ids stay stable across snapshots and queries interned
  /// against the base graph keep working unchanged.
  DataGraph(size_t num_nodes, std::shared_ptr<AttrNames> attr_names);

  /// Adds a node with label 0 and returns its id.
  NodeId AddNode();
  /// Adds a node with the given label.
  NodeId AddNode(int64_t label);

  void AddEdge(NodeId from, NodeId to);

  /// Sets the dense integer label of v (also visible as attribute
  /// "label" through Attrs()).
  void SetLabel(NodeId v, int64_t label);
  int64_t LabelOf(NodeId v) const { return labels_[v]; }

  /// Sets an arbitrary attribute A = a on node v.
  void SetAttr(NodeId v, const std::string& attr, AttrValue value);
  void SetAttr(NodeId v, AttrId attr, AttrValue value);

  /// The attribute tuple of v. Label is reported through LabelOf()/
  /// GetAttr(label_attr) rather than materialized in the tuple.
  const AttrTuple& Attrs(NodeId v) const { return tuples_[v]; }

  /// Looks up attribute `attr` on v; label queries hit the dense array.
  /// Returns nullptr when absent. The returned pointer is invalidated by
  /// subsequent mutation.
  const AttrValue* GetAttr(NodeId v, AttrId attr) const;

  /// Must be called once after construction and before queries.
  void Finalize();

  const Digraph& graph() const { return graph_; }
  size_t NumNodes() const { return graph_.NumNodes(); }
  size_t NumEdges() const { return graph_.NumEdges(); }
  std::span<const NodeId> OutNeighbors(NodeId v) const {
    return graph_.OutNeighbors(v);
  }
  std::span<const NodeId> InNeighbors(NodeId v) const {
    return graph_.InNeighbors(v);
  }
  bool HasEdge(NodeId from, NodeId to) const {
    return graph_.HasEdge(from, to);
  }

  AttrNames* attr_names() { return attr_names_.get(); }
  const AttrNames& attr_names() const { return *attr_names_; }
  /// Shared attribute namespace, for queries posed against this graph.
  const std::shared_ptr<AttrNames>& attr_names_ptr() const {
    return attr_names_;
  }
  AttrId label_attr() const { return attr_names_->label_attr(); }

  /// Nodes with the given label, sorted ascending. Built lazily at
  /// Finalize(). Missing labels yield an empty span.
  std::span<const NodeId> NodesWithLabel(int64_t label) const;

  /// Number of distinct labels present.
  size_t NumDistinctLabels() const { return label_index_.size(); }
  /// All distinct labels (unsorted).
  std::vector<int64_t> DistinctLabels() const;

  /// Optional spanning-tree annotation for tree+cross-edge graphs
  /// (XMark-style). kInvalidNode marks roots / unset entries. Baselines
  /// that require tree-structured input (TwigStack, Twig2Stack) and SSPI
  /// consume this. Generators populate it; for plain graphs it is empty.
  void SetTreeParent(NodeId v, NodeId parent);
  bool HasSpanningTree() const { return !tree_parent_.empty(); }
  NodeId TreeParentOf(NodeId v) const {
    return tree_parent_.empty() ? kInvalidNode : tree_parent_[v];
  }
  /// True iff edge (from,to) is a spanning-tree edge.
  bool IsTreeEdge(NodeId from, NodeId to) const {
    return !tree_parent_.empty() && tree_parent_[to] == from;
  }

 private:
  Digraph graph_;
  std::vector<int64_t> labels_;
  std::vector<AttrTuple> tuples_;
  std::vector<NodeId> tree_parent_;
  std::shared_ptr<AttrNames> attr_names_;
  std::unordered_map<int64_t, std::vector<NodeId>> label_index_;
};

}  // namespace gtpq

#endif  // GTPQ_GRAPH_DATA_GRAPH_H_
