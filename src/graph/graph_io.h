#ifndef GTPQ_GRAPH_GRAPH_IO_H_
#define GTPQ_GRAPH_GRAPH_IO_H_

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/data_graph.h"

namespace gtpq {

/// Serializes a data graph to the plain-text "gtpq-graph v1" format:
///
///   gtpq-graph v1
///   nodes <count>
///   node <id> <label> [<attr>=<value> ...]
///   edge <from> <to> [tree]
///
/// `node` lines are only emitted for nodes with a nonzero label or extra
/// attributes. String attribute values are quoted with '"' and must not
/// contain newlines.
Status SaveDataGraph(const DataGraph& g, std::ostream* out);
Status SaveDataGraphToFile(const DataGraph& g, const std::string& path);

/// Parses the format above. The returned graph is finalized.
Result<DataGraph> LoadDataGraph(std::istream* in);
Result<DataGraph> LoadDataGraphFromFile(const std::string& path);

}  // namespace gtpq

#endif  // GTPQ_GRAPH_GRAPH_IO_H_
