#ifndef GTPQ_COMMON_STRING_UTIL_H_
#define GTPQ_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace gtpq {

/// Splits `s` on `sep`, omitting empty pieces when `skip_empty` is true.
std::vector<std::string> Split(std::string_view s, char sep,
                               bool skip_empty = true);

/// Joins pieces with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// True if `s` begins with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Renders n with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatWithCommas(long long n);

}  // namespace gtpq

#endif  // GTPQ_COMMON_STRING_UTIL_H_
