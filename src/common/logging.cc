#include "common/logging.h"

#include <cstdio>
#include <cstdlib>

namespace gtpq {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_level) {
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line,
                                 const char* condition) {
  stream_ << "[FATAL " << file << ":" << line << "] Check failed: "
          << condition << " ";
}

FatalLogMessage::~FatalLogMessage() {
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  std::abort();
}

}  // namespace internal

}  // namespace gtpq
