#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace gtpq {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

namespace internal {
void DieOnBadResult(const Status& status) {
  std::fprintf(stderr, "Result accessed with error status: %s\n",
               status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace gtpq
