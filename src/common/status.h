#ifndef GTPQ_COMMON_STATUS_H_
#define GTPQ_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace gtpq {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kParseError,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a status code (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Lightweight status object used across the public API instead of
/// exceptions. An OK status carries no message and no allocation.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result: checked access via ValueOrDie()/operator*.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}  // NOLINT implicit
  Result(Status status) : repr_(std::move(status)) {}  // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(repr_); }
  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// Precondition: ok(). Aborts otherwise.
  T& ValueOrDie();
  const T& ValueOrDie() const;

  T& operator*() { return ValueOrDie(); }
  const T& operator*() const { return ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

  /// Moves the value out. Precondition: ok().
  T TakeValue() { return std::move(ValueOrDie()); }

 private:
  std::variant<T, Status> repr_;
};

namespace internal {
[[noreturn]] void DieOnBadResult(const Status& status);
}  // namespace internal

template <typename T>
T& Result<T>::ValueOrDie() {
  if (!ok()) internal::DieOnBadResult(status());
  return std::get<T>(repr_);
}

template <typename T>
const T& Result<T>::ValueOrDie() const {
  if (!ok()) internal::DieOnBadResult(status());
  return std::get<T>(repr_);
}

/// Propagates a non-OK status from an expression producing a Status.
#define GTPQ_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::gtpq::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace gtpq

#endif  // GTPQ_COMMON_STATUS_H_
