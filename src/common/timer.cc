#include "common/timer.h"

// Timer is header-only; this TU anchors the library target.
