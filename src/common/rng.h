#ifndef GTPQ_COMMON_RNG_H_
#define GTPQ_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace gtpq {

/// Deterministic 64-bit PRNG (splitmix64 seeded xorshift128+). All data
/// and query generators take an explicit seed so that every experiment in
/// EXPERIMENTS.md is reproducible bit-for-bit.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability p.
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBounded(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Samples k distinct indices from [0, n). Returns fewer if k > n.
  std::vector<size_t> SampleDistinct(size_t n, size_t k);

 private:
  uint64_t s_[2];
};

}  // namespace gtpq

#endif  // GTPQ_COMMON_RNG_H_
