#ifndef GTPQ_COMMON_LOGGING_H_
#define GTPQ_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace gtpq {

/// Severity levels for the minimal logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted to stderr. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Stream-style log sink; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostream& stream() { return stream_; }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Emits the message then aborts; used by GTPQ_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();
  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

}  // namespace internal

#define GTPQ_LOG(level)                                                   \
  ::gtpq::internal::LogMessage(::gtpq::LogLevel::k##level, __FILE__,      \
                               __LINE__)                                  \
      .stream()

/// Always-on invariant check; logs expression + message and aborts on
/// failure. Used for programming errors, not for user input validation.
#define GTPQ_CHECK(condition)                                             \
  if (!(condition))                                                       \
  ::gtpq::internal::FatalLogMessage(__FILE__, __LINE__, #condition).stream()

#define GTPQ_CHECK_OK(expr)                                  \
  do {                                                       \
    ::gtpq::Status _st = (expr);                             \
    GTPQ_CHECK(_st.ok()) << _st.ToString();                  \
  } while (0)

#ifndef NDEBUG
#define GTPQ_DCHECK(condition) GTPQ_CHECK(condition)
#else
#define GTPQ_DCHECK(condition) \
  if (false) ::gtpq::internal::FatalLogMessage(__FILE__, __LINE__, "").stream()
#endif

}  // namespace gtpq

#endif  // GTPQ_COMMON_LOGGING_H_
