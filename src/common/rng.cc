#include "common/rng.h"

#include <algorithm>
#include <unordered_set>

namespace gtpq {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  s_[0] = SplitMix64(&sm);
  s_[1] = SplitMix64(&sm);
  if (s_[0] == 0 && s_[1] == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  uint64_t x = s_[0];
  const uint64_t y = s_[1];
  s_[0] = y;
  x ^= x << 23;
  s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
  return s_[1] + y;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

std::vector<size_t> Rng::SampleDistinct(size_t n, size_t k) {
  k = std::min(k, n);
  std::vector<size_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i) idx[i] = i;
    Shuffle(&idx);
    out.assign(idx.begin(), idx.begin() + static_cast<long>(k));
  } else {
    std::unordered_set<size_t> seen;
    while (out.size() < k) {
      size_t c = static_cast<size_t>(NextBounded(n));
      if (seen.insert(c).second) out.push_back(c);
    }
  }
  return out;
}

}  // namespace gtpq
