#ifndef GTPQ_COMMON_PER_THREAD_H_
#define GTPQ_COMMON_PER_THREAD_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

namespace gtpq {

/// A per-(instance, thread) value slot: each PerThread<T> member gives
/// every thread that touches it a private, lazily default-constructed T.
/// This is how shared immutable objects (reachability oracles served to
/// a whole thread pool) expose mutable per-query scratch — counters,
/// visit marks — without any cross-thread sharing: a thread only ever
/// sees the slot it created, so access is data-race-free by
/// construction and needs no locks on the hot path.
///
/// Identity is a process-unique id, never the object address, so a slot
/// can never alias a dead instance's leftovers. Copying or moving a
/// PerThread produces a fresh identity with empty slots: slot contents
/// are transient scratch tied to one instance's lifetime, not state
/// worth transferring.
///
/// Slots for instances a thread no longer uses are reclaimed only at
/// thread exit — destroying the PerThread does NOT free slots other
/// threads (or even this thread) created for it. Keep T small and
/// avoid churning many short-lived instances through one long-lived
/// serving thread: each dead instance strands one T per thread that
/// probed it. The intended payloads (stat counters, per-graph
/// visit-mark vectors) make this a few bytes to O(n) per dead index,
/// which the serving runtime's build-once/share pattern keeps rare.
template <typename T>
class PerThread {
 public:
  PerThread() : id_(NextId()) {}
  PerThread(const PerThread&) : id_(NextId()) {}
  PerThread(PerThread&&) noexcept : id_(NextId()) {}
  PerThread& operator=(const PerThread&) { return *this; }
  PerThread& operator=(PerThread&&) noexcept { return *this; }

  /// The calling thread's slot for this instance. The reference stays
  /// valid for the thread's lifetime (node-based map storage).
  T& Local() const {
    struct Cache {
      uint64_t id = 0;
      T* value = nullptr;
    };
    thread_local Cache cache;
    if (cache.id != id_ || cache.value == nullptr) {
      thread_local std::unordered_map<uint64_t, T> slots;
      cache.value = &slots[id_];
      cache.id = id_;
    }
    return *cache.value;
  }

 private:
  static uint64_t NextId() {
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t id_;
};

}  // namespace gtpq

#endif  // GTPQ_COMMON_PER_THREAD_H_
