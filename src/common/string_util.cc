#include "common/string_util.h"

#include <cctype>

namespace gtpq {

std::vector<std::string> Split(std::string_view s, char sep,
                               bool skip_empty) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) pos = s.size();
    std::string_view piece = s.substr(start, pos - start);
    if (!piece.empty() || !skip_empty) out.emplace_back(piece);
    start = pos + 1;
    if (pos == s.size()) break;
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string FormatWithCommas(long long n) {
  std::string digits = std::to_string(n < 0 ? -n : n);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (n < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

}  // namespace gtpq
