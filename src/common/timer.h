#ifndef GTPQ_COMMON_TIMER_H_
#define GTPQ_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace gtpq {

/// Monotonic wall-clock stopwatch used by the benchmark harness.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart, in milliseconds.
  double ElapsedMillis() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  /// Elapsed time since construction/Restart, in microseconds.
  double ElapsedMicros() const {
    return std::chrono::duration<double, std::micro>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gtpq

#endif  // GTPQ_COMMON_TIMER_H_
