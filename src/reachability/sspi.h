#ifndef GTPQ_REACHABILITY_SSPI_H_
#define GTPQ_REACHABILITY_SSPI_H_

#include <vector>

#include "common/per_thread.h"
#include "common/status.h"
#include "graph/algorithms.h"
#include "reachability/index_view.h"
#include "reachability/reachability_index.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// SSPI — the Surrogate & Surplus Predecessor Index of TwigStackD (Chen,
/// Gupta, Kurul, VLDB'05). A spanning forest of the (condensed) DAG is
/// labeled with pre/post intervals; every node keeps the list of its
/// non-tree ("surplus") predecessors. A reachability probe ascends tree
/// paths and expands through surplus predecessors with memoization.
///
/// The index is tiny (one interval + the surplus lists), which is why
/// TwigStackD shines on tree-like data; probes degenerate on dense deep
/// graphs — the behaviour the paper's arXiv experiment (Fig 9) exposes.
class Sspi : public ReachabilityOracle {
 public:
  static Sspi Build(const Digraph& g);

  std::string_view name() const override { return "sspi"; }

  bool Reaches(NodeId from, NodeId to) const override;

  /// Total surplus predecessor entries (index size metric).
  size_t TotalSurplus() const { return total_surplus_; }

  /// Persistence hooks (storage/index_io.h); the probe-expansion
  /// scratch is transient and not part of the on-disk body.
  void SaveBody(storage::Writer* w) const;
  static Result<Sspi> LoadBody(storage::Reader* r);

 private:
  Sspi() = default;

  bool TreeAncestor(NodeId anc, NodeId desc) const {
    return pre_[anc] < pre_[desc] && post_[desc] <= post_[anc];
  }

  SccView scc_;
  PodArray<uint32_t> pre_, post_;
  PodArray<NodeId> tree_parent_;
  NestedPodArray<NodeId> surplus_;  // per condensation node
  size_t total_surplus_ = 0;
  // Probe-expansion memoization. Thread-confined so one shared index
  // can serve concurrent probes from a whole query-serving pool.
  struct VisitScratch {
    std::vector<uint32_t> mark;
    uint32_t epoch = 0;
  };
  PerThread<VisitScratch> scratch_;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_SSPI_H_
