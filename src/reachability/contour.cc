#include "reachability/contour.h"

#include <algorithm>
#include <memory>

namespace gtpq {

void Contour::UpdateMax(uint32_t cid, const ContourEntry& e) {
  auto [it, inserted] = entries_.emplace(cid, e);
  if (inserted) return;
  ContourEntry& cur = it->second;
  if (e.sid > cur.sid) {
    cur = e;
  } else if (e.sid == cur.sid) {
    // Same position contributed twice: genuine wins; two distinct self
    // members imply a multi-node SCC, which is cyclic, hence genuine.
    if (e.genuine || cur.genuine ||
        (cur.self_member != kInvalidNode &&
         e.self_member != kInvalidNode &&
         cur.self_member != e.self_member)) {
      cur.genuine = true;
    }
  }
}

void Contour::UpdateMin(uint32_t cid, const ContourEntry& e) {
  auto [it, inserted] = entries_.emplace(cid, e);
  if (inserted) return;
  ContourEntry& cur = it->second;
  if (e.sid < cur.sid) {
    cur = e;
  } else if (e.sid == cur.sid) {
    if (e.genuine || cur.genuine ||
        (cur.self_member != kInvalidNode &&
         e.self_member != kInvalidNode &&
         cur.self_member != e.self_member)) {
      cur.genuine = true;
    }
  }
}

Contour MergePredLists(const ThreeHopIndex& idx,
                       std::span<const NodeId> members) {
  Contour cp;
  IndexStats& st = idx.stats();
  // Walks proceed downward from each member, so a walk starting at sid s
  // covers every Lin list at sids <= s. visited[cid] records the highest
  // start walked so far — Procedure 2's `visited` bookkeeping, letting
  // overlapping members share the work.
  std::unordered_map<uint32_t, uint32_t> visited;
  for (NodeId v : members) {
    const auto cond = idx.CondOf(v);
    const ChainPos p = idx.PosOfCond(cond);
    // The member itself belongs to its complete predecessor list.
    cp.UpdateMax(p.cid, ContourEntry{p.sid, idx.CondCyclic(cond), v});

    auto it = visited.find(p.cid);
    const bool chain_seen = it != visited.end();
    if (chain_seen && p.sid <= it->second) continue;  // segment covered

    auto cur = idx.Lin(cond).empty() ? idx.PrevWithLin(cond) : cond;
    while (cur != ThreeHopIndex::kNoCond) {
      const ChainPos pc = idx.PosOfCond(cur);
      if (chain_seen && pc.sid <= it->second) break;  // already walked
      for (const ChainPos& e : idx.Lin(cur)) {
        ++st.elements_looked_up;
        cp.UpdateMax(e.cid, ContourEntry{e.sid, true, kInvalidNode});
      }
      cur = idx.PrevWithLin(cur);
    }
    if (chain_seen) {
      it->second = p.sid;
    } else {
      visited.emplace(p.cid, p.sid);
    }
  }
  return cp;
}

Contour MergeSuccLists(const ThreeHopIndex& idx,
                       std::span<const NodeId> members) {
  Contour cs;
  IndexStats& st = idx.stats();
  // Dual bookkeeping: walks proceed upward, so a walk starting at sid s
  // covers sids >= s; visited[cid] records the lowest start so far.
  std::unordered_map<uint32_t, uint32_t> visited;
  for (NodeId v : members) {
    const auto cond = idx.CondOf(v);
    const ChainPos p = idx.PosOfCond(cond);
    cs.UpdateMin(p.cid, ContourEntry{p.sid, idx.CondCyclic(cond), v});

    auto it = visited.find(p.cid);
    const bool chain_seen = it != visited.end();
    if (chain_seen && p.sid >= it->second) continue;

    auto cur = idx.Lout(cond).empty() ? idx.NextWithLout(cond) : cond;
    while (cur != ThreeHopIndex::kNoCond) {
      const ChainPos pc = idx.PosOfCond(cur);
      if (chain_seen && pc.sid >= it->second) break;
      for (const ChainPos& e : idx.Lout(cur)) {
        ++st.elements_looked_up;
        cs.UpdateMin(e.cid, ContourEntry{e.sid, true, kInvalidNode});
      }
      cur = idx.NextWithLout(cur);
    }
    if (chain_seen) {
      it->second = p.sid;
    } else {
      visited.emplace(p.cid, p.sid);
    }
  }
  return cs;
}

namespace {

// Shared pair test: does probe entry x (possibly a zero-length self
// entry of data node v) match contour entry e so that a non-empty path
// v -> member exists? `probe_le_entry` is true when the probe must be
// <=c the contour entry (successor probe vs predecessor contour) and
// false for the mirrored case.
bool PairMatches(const ChainPos& x, bool x_genuine, NodeId v,
                 const ContourEntry& e, bool probe_le_entry) {
  if (probe_le_entry ? x.sid < e.sid : x.sid > e.sid) return true;
  if (x.sid != e.sid) return false;
  // Same position: at least one side must cover a real edge, or the
  // contour entry must stem from a different data node than v (two
  // distinct nodes at one position live in a cyclic SCC anyway).
  if (x_genuine || e.genuine) return true;
  return e.self_member != kInvalidNode && e.self_member != v;
}

}  // namespace

bool ProbePredecessorContour(const Contour& cp, const ChainPos& x,
                             bool x_genuine, NodeId v) {
  const ContourEntry* e = cp.Find(x.cid);
  return e != nullptr && PairMatches(x, x_genuine, v, *e, /*probe_le=*/true);
}

bool ProbeSuccessorContour(const Contour& cs, const ChainPos& y,
                           bool y_genuine, NodeId v) {
  const ContourEntry* e = cs.Find(y.cid);
  return e != nullptr &&
         PairMatches(y, y_genuine, v, *e, /*probe_le=*/false);
}

bool NodeReachesContour(const ThreeHopIndex& idx, NodeId v,
                        const Contour& cp) {
  if (cp.empty()) return false;
  const auto cond = idx.CondOf(v);
  const ChainPos p = idx.PosOfCond(cond);
  // Self probe: v sits at p with a zero-length path (genuine iff cyclic).
  if (ProbePredecessorContour(cp, p, idx.CondCyclic(cond), v)) return true;
  // Walked entries are >= 1 edge away from v.
  return idx.ForEachSuccessorEntry(cond, [&](const ChainPos& x) {
    return ProbePredecessorContour(cp, x, /*x_genuine=*/true, v);
  });
}

bool ContourReachesNode(const ThreeHopIndex& idx, const Contour& cs,
                        NodeId v) {
  if (cs.empty()) return false;
  const auto cond = idx.CondOf(v);
  const ChainPos p = idx.PosOfCond(cond);
  if (ProbeSuccessorContour(cs, p, idx.CondCyclic(cond), v)) return true;
  return idx.ForEachPredecessorEntry(cond, [&](const ChainPos& y) {
    return ProbeSuccessorContour(cs, y, /*y_genuine=*/true, v);
  });
}

// ------------------------------------------------------------------------
// ContourIndex: set-reachability overrides.

namespace {

// A merged contour (predecessor or successor, per the factory used).
class ContourSummary : public ReachabilityOracle::SetSummary {
 public:
  explicit ContourSummary(Contour c) : contour(std::move(c)) {}
  Contour contour;
};

const Contour& AsContour(const ReachabilityOracle::SetSummary& s) {
  return static_cast<const ContourSummary&>(s).contour;
}

// Successor-scan targets: the sorted list plus its per-chain grouping
// (member indices in ascending sid order), computed once and reused for
// every source scan.
class ChainGroupedTargets : public ReachabilityOracle::SetSummary {
 public:
  ChainGroupedTargets(const ThreeHopIndex& idx,
                      std::span<const NodeId> targets)
      : targets_(targets.begin(), targets.end()) {
    std::unordered_map<uint32_t, std::vector<uint32_t>> by_chain;
    for (uint32_t wi = 0; wi < targets_.size(); ++wi) {
      by_chain[idx.PosOf(targets_[wi]).cid].push_back(wi);
    }
    chains_.reserve(by_chain.size());
    for (auto& [cid, members] : by_chain) {
      std::sort(members.begin(), members.end(),
                [&](uint32_t a, uint32_t b) {
                  const uint32_t sa = idx.PosOf(targets_[a]).sid;
                  const uint32_t sb = idx.PosOf(targets_[b]).sid;
                  return sa != sb ? sa < sb : targets_[a] < targets_[b];
                });
      chains_.emplace_back(cid, std::move(members));
    }
  }

  const std::vector<NodeId>& targets() const { return targets_; }
  const std::vector<std::pair<uint32_t, std::vector<uint32_t>>>& chains()
      const {
    return chains_;
  }

 private:
  std::vector<NodeId> targets_;
  std::vector<std::pair<uint32_t, std::vector<uint32_t>>> chains_;
};

}  // namespace

std::unique_ptr<ReachabilityOracle::SetSummary>
ContourIndex::SummarizeTargets(std::span<const NodeId> members) const {
  return std::make_unique<ContourSummary>(MergePredLists(*this, members));
}

std::unique_ptr<ReachabilityOracle::SetSummary>
ContourIndex::SummarizeSources(std::span<const NodeId> members) const {
  return std::make_unique<ContourSummary>(MergeSuccLists(*this, members));
}

bool ContourIndex::ReachesSet(NodeId from, const SetSummary& targets) const {
  ++stats().queries;
  return NodeReachesContour(*this, from, AsContour(targets));
}

bool ContourIndex::SetReaches(const SetSummary& sources, NodeId to) const {
  ++stats().queries;
  return ContourReachesNode(*this, AsContour(sources), to);
}

void ContourIndex::ReachesSetsBatch(
    std::span<const NodeId> sources,
    std::span<const SetSummary* const> target_sets,
    std::vector<std::vector<char>>* out) const {
  IndexStats& st = stats();
  const size_t num_sets = target_sets.size();
  out->assign(num_sets, std::vector<char>(sources.size(), 0));
  std::vector<const Contour*> contours(num_sets);
  for (size_t k = 0; k < num_sets; ++k) {
    contours[k] = &AsContour(*target_sets[k]);
  }

  // Procedure 6 inner loop: sources grouped per chain, descending sid,
  // so positive valuations are inherited down-chain; each Lout segment
  // is walked at most once per chain, shared across all target sets.
  std::unordered_map<uint32_t, std::vector<uint32_t>> chains;
  for (uint32_t i = 0; i < sources.size(); ++i) {
    chains[PosOf(sources[i]).cid].push_back(i);
  }
  std::vector<char> val(num_sets, 0);
  for (auto& [cid, idxs] : chains) {
    std::sort(idxs.begin(), idxs.end(), [&](uint32_t a, uint32_t b) {
      const uint32_t sa = PosOf(sources[a]).sid;
      const uint32_t sb = PosOf(sources[b]).sid;
      return sa != sb ? sa > sb : sources[a] < sources[b];
    });
    std::fill(val.begin(), val.end(), 0);
    uint32_t visited = UINT32_MAX;  // lowest walked start sid

    for (uint32_t i : idxs) {
      const NodeId v = sources[i];
      const auto cond = CondOf(v);
      const ChainPos p = PosOfCond(cond);
      const bool cyclic = CondCyclic(cond);

      bool any_pending = false;
      for (size_t k = 0; k < num_sets; ++k) {
        if (!val[k]) {
          // Self probe: v's own position against the target contour.
          if (ProbePredecessorContour(*contours[k], p, cyclic, v)) {
            val[k] = 1;
          } else {
            any_pending = true;
          }
        }
      }
      if (any_pending && p.sid < visited) {
        // Walk the not-yet-visited Lout segment [p.sid, visited).
        auto cur = Lout(cond).empty() ? NextWithLout(cond) : cond;
        while (cur != kNoCond && PosOfCond(cur).sid < visited) {
          for (const ChainPos& e : Lout(cur)) {
            ++st.elements_looked_up;
            for (size_t k = 0; k < num_sets; ++k) {
              if (!val[k] &&
                  ProbePredecessorContour(*contours[k], e, true, v)) {
                val[k] = 1;
              }
            }
          }
          cur = NextWithLout(cur);
        }
        visited = p.sid;
      }
      for (size_t k = 0; k < num_sets; ++k) (*out)[k][i] = val[k];
    }
  }
}

void ContourIndex::SetReachesBatch(const SetSummary& sources,
                                   std::span<const NodeId> targets,
                                   std::vector<char>* out) const {
  IndexStats& st = stats();
  const Contour& cs = AsContour(sources);
  out->assign(targets.size(), 0);

  // Procedure 7 inner loop: targets grouped per chain, ascending sid,
  // with the early break — once one chain node is reachable from the
  // source set, all larger ones are — and each Lin segment walked at
  // most once per chain.
  std::unordered_map<uint32_t, std::vector<uint32_t>> chains;
  for (uint32_t i = 0; i < targets.size(); ++i) {
    chains[PosOf(targets[i]).cid].push_back(i);
  }
  for (auto& [cid, idxs] : chains) {
    std::sort(idxs.begin(), idxs.end(), [&](uint32_t a, uint32_t b) {
      const uint32_t sa = PosOf(targets[a]).sid;
      const uint32_t sb = PosOf(targets[b]).sid;
      return sa != sb ? sa < sb : targets[a] < targets[b];
    });
    bool reached = false;
    uint32_t visited_floor = 0;
    bool have_floor = false;
    for (uint32_t i : idxs) {
      const NodeId v = targets[i];
      if (!reached) {
        const auto cond = CondOf(v);
        const ChainPos p = PosOfCond(cond);
        if (ProbeSuccessorContour(cs, p, CondCyclic(cond), v)) {
          reached = true;
        } else if (!have_floor || p.sid > visited_floor) {
          // Walk the new Lin segment (p.sid down to the floor).
          auto cur = Lin(cond).empty() ? PrevWithLin(cond) : cond;
          while (cur != kNoCond) {
            const ChainPos pc = PosOfCond(cur);
            if (have_floor && pc.sid <= visited_floor) break;
            for (const ChainPos& e : Lin(cur)) {
              ++st.elements_looked_up;
              if (ProbeSuccessorContour(cs, e, true, v)) {
                reached = true;
                break;
              }
            }
            if (reached) break;
            cur = PrevWithLin(cur);
          }
          visited_floor = p.sid;
          have_floor = true;
        }
      }
      if (reached) (*out)[i] = 1;
    }
  }
}

std::unique_ptr<ReachabilityOracle::SetSummary>
ContourIndex::PrepareSuccessorTargets(std::span<const NodeId> targets) const {
  return std::make_unique<ChainGroupedTargets>(*this, targets);
}

void ContourIndex::SuccessorsAmong(NodeId from, const SetSummary& targets,
                                   std::vector<uint32_t>* out) const {
  const auto& grouped = static_cast<const ChainGroupedTargets&>(targets);
  const auto& nodes = grouped.targets();

  // Section 4.3 matching-graph scan: one singleton successor contour
  // per source, probed per chain until the first hit (same early break
  // as the upward batch).
  const NodeId vv[1] = {from};
  Contour cs = MergeSuccLists(*this, std::span<const NodeId>(vv, 1));
  const size_t appended_from = out->size();
  for (const auto& [cid, members] : grouped.chains()) {
    bool reached = false;
    for (uint32_t wi : members) {
      if (!reached) {
        const NodeId w = nodes[wi];
        const auto cond = CondOf(w);
        const ChainPos p = PosOfCond(cond);
        if (ProbeSuccessorContour(cs, p, CondCyclic(cond), w)) {
          reached = true;
        } else {
          reached = ForEachPredecessorEntry(cond, [&](const ChainPos& y) {
            return ProbeSuccessorContour(cs, y, true, w);
          });
        }
      }
      if (reached) out->push_back(wi);
    }
  }
  // Chains are visited in hash order; restore the ascending-index
  // contract on the appended suffix only.
  std::sort(out->begin() + appended_from, out->end());
}

}  // namespace gtpq
