#include "reachability/contour.h"

namespace gtpq {

void Contour::UpdateMax(uint32_t cid, const ContourEntry& e) {
  auto [it, inserted] = entries_.emplace(cid, e);
  if (inserted) return;
  ContourEntry& cur = it->second;
  if (e.sid > cur.sid) {
    cur = e;
  } else if (e.sid == cur.sid) {
    // Same position contributed twice: genuine wins; two distinct self
    // members imply a multi-node SCC, which is cyclic, hence genuine.
    if (e.genuine || cur.genuine ||
        (cur.self_member != kInvalidNode &&
         e.self_member != kInvalidNode &&
         cur.self_member != e.self_member)) {
      cur.genuine = true;
    }
  }
}

void Contour::UpdateMin(uint32_t cid, const ContourEntry& e) {
  auto [it, inserted] = entries_.emplace(cid, e);
  if (inserted) return;
  ContourEntry& cur = it->second;
  if (e.sid < cur.sid) {
    cur = e;
  } else if (e.sid == cur.sid) {
    if (e.genuine || cur.genuine ||
        (cur.self_member != kInvalidNode &&
         e.self_member != kInvalidNode &&
         cur.self_member != e.self_member)) {
      cur.genuine = true;
    }
  }
}

Contour MergePredLists(const ThreeHopIndex& idx,
                       std::span<const NodeId> members) {
  Contour cp;
  // Walks proceed downward from each member, so a walk starting at sid s
  // covers every Lin list at sids <= s. visited[cid] records the highest
  // start walked so far — Procedure 2's `visited` bookkeeping, letting
  // overlapping members share the work.
  std::unordered_map<uint32_t, uint32_t> visited;
  for (NodeId v : members) {
    const auto cond = idx.CondOf(v);
    const ChainPos p = idx.PosOfCond(cond);
    // The member itself belongs to its complete predecessor list.
    cp.UpdateMax(p.cid, ContourEntry{p.sid, idx.CondCyclic(cond), v});

    auto it = visited.find(p.cid);
    const bool chain_seen = it != visited.end();
    if (chain_seen && p.sid <= it->second) continue;  // segment covered

    auto cur = idx.Lin(cond).empty() ? idx.PrevWithLin(cond) : cond;
    while (cur != ThreeHopIndex::kNoCond) {
      const ChainPos pc = idx.PosOfCond(cur);
      if (chain_seen && pc.sid <= it->second) break;  // already walked
      for (const ChainPos& e : idx.Lin(cur)) {
        ++idx.stats().elements_looked_up;
        cp.UpdateMax(e.cid, ContourEntry{e.sid, true, kInvalidNode});
      }
      cur = idx.PrevWithLin(cur);
    }
    if (chain_seen) {
      it->second = p.sid;
    } else {
      visited.emplace(p.cid, p.sid);
    }
  }
  return cp;
}

Contour MergeSuccLists(const ThreeHopIndex& idx,
                       std::span<const NodeId> members) {
  Contour cs;
  // Dual bookkeeping: walks proceed upward, so a walk starting at sid s
  // covers sids >= s; visited[cid] records the lowest start so far.
  std::unordered_map<uint32_t, uint32_t> visited;
  for (NodeId v : members) {
    const auto cond = idx.CondOf(v);
    const ChainPos p = idx.PosOfCond(cond);
    cs.UpdateMin(p.cid, ContourEntry{p.sid, idx.CondCyclic(cond), v});

    auto it = visited.find(p.cid);
    const bool chain_seen = it != visited.end();
    if (chain_seen && p.sid >= it->second) continue;

    auto cur = idx.Lout(cond).empty() ? idx.NextWithLout(cond) : cond;
    while (cur != ThreeHopIndex::kNoCond) {
      const ChainPos pc = idx.PosOfCond(cur);
      if (chain_seen && pc.sid >= it->second) break;
      for (const ChainPos& e : idx.Lout(cur)) {
        ++idx.stats().elements_looked_up;
        cs.UpdateMin(e.cid, ContourEntry{e.sid, true, kInvalidNode});
      }
      cur = idx.NextWithLout(cur);
    }
    if (chain_seen) {
      it->second = p.sid;
    } else {
      visited.emplace(p.cid, p.sid);
    }
  }
  return cs;
}

namespace {

// Shared pair test: does probe entry x (possibly a zero-length self
// entry of data node v) match contour entry e so that a non-empty path
// v -> member exists? `probe_le_entry` is true when the probe must be
// <=c the contour entry (successor probe vs predecessor contour) and
// false for the mirrored case.
bool PairMatches(const ChainPos& x, bool x_genuine, NodeId v,
                 const ContourEntry& e, bool probe_le_entry) {
  if (probe_le_entry ? x.sid < e.sid : x.sid > e.sid) return true;
  if (x.sid != e.sid) return false;
  // Same position: at least one side must cover a real edge, or the
  // contour entry must stem from a different data node than v (two
  // distinct nodes at one position live in a cyclic SCC anyway).
  if (x_genuine || e.genuine) return true;
  return e.self_member != kInvalidNode && e.self_member != v;
}

}  // namespace

bool ProbePredecessorContour(const Contour& cp, const ChainPos& x,
                             bool x_genuine, NodeId v) {
  const ContourEntry* e = cp.Find(x.cid);
  return e != nullptr && PairMatches(x, x_genuine, v, *e, /*probe_le=*/true);
}

bool ProbeSuccessorContour(const Contour& cs, const ChainPos& y,
                           bool y_genuine, NodeId v) {
  const ContourEntry* e = cs.Find(y.cid);
  return e != nullptr &&
         PairMatches(y, y_genuine, v, *e, /*probe_le=*/false);
}

bool NodeReachesContour(const ThreeHopIndex& idx, NodeId v,
                        const Contour& cp) {
  if (cp.empty()) return false;
  const auto cond = idx.CondOf(v);
  const ChainPos p = idx.PosOfCond(cond);
  // Self probe: v sits at p with a zero-length path (genuine iff cyclic).
  if (ProbePredecessorContour(cp, p, idx.CondCyclic(cond), v)) return true;
  // Walked entries are >= 1 edge away from v.
  return idx.ForEachSuccessorEntry(cond, [&](const ChainPos& x) {
    return ProbePredecessorContour(cp, x, /*x_genuine=*/true, v);
  });
}

bool ContourReachesNode(const ThreeHopIndex& idx, const Contour& cs,
                        NodeId v) {
  if (cs.empty()) return false;
  const auto cond = idx.CondOf(v);
  const ChainPos p = idx.PosOfCond(cond);
  if (ProbeSuccessorContour(cs, p, idx.CondCyclic(cond), v)) return true;
  return idx.ForEachPredecessorEntry(cond, [&](const ChainPos& y) {
    return ProbeSuccessorContour(cs, y, /*y_genuine=*/true, v);
  });
}

}  // namespace gtpq
