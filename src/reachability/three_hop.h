#ifndef GTPQ_REACHABILITY_THREE_HOP_H_
#define GTPQ_REACHABILITY_THREE_HOP_H_

#include <vector>

#include "common/status.h"
#include "graph/algorithms.h"
#include "reachability/chain_cover.h"
#include "reachability/index_view.h"
#include "reachability/reachability_index.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// A (chain id, sequence number) position in the chain cover. Two
/// positions on the same chain compare by sid; distinct positions on the
/// same chain are connected by a non-empty path from the smaller to the
/// larger one.
struct ChainPos {
  uint32_t cid = 0;
  uint32_t sid = 0;
};

/// 3-hop reachability index (Jin et al., SIGMOD'09), as consumed by the
/// paper (Section 4.2.1):
///
///  * the DAG (of SCCs, for general graphs) is decomposed into chains;
///  * every node keeps a successor list Lout of "entry" positions — the
///    smallest node of another chain it reaches — storing only entries
///    that improve on what larger same-chain nodes already record;
///  * symmetrically a predecessor list Lin of "exit" positions;
///  * forward/backward tracing pointers skip same-chain nodes with empty
///    lists when assembling complete successor/predecessor lists.
///
/// All public operations are expressed both on data nodes and on
/// condensation ids (`CondId`); for DAGs the two coincide.
class ThreeHopIndex : public ReachabilityOracle {
 public:
  using CondId = uint32_t;
  static constexpr CondId kNoCond = static_cast<CondId>(-1);

  /// Builds the index from a finalized graph; cycles are handled by
  /// condensing SCCs first.
  static ThreeHopIndex Build(const Digraph& g);

  std::string_view name() const override { return "three_hop"; }

  /// Non-empty-path reachability between data nodes.
  bool Reaches(NodeId from, NodeId to) const override;

  // --- Structure accessors used by the contour/pruning machinery ---

  CondId CondOf(NodeId v) const { return scc_.component_of[v]; }
  ChainPos PosOfCond(CondId c) const { return pos_[c]; }
  ChainPos PosOf(NodeId v) const { return pos_[CondOf(v)]; }
  /// True iff the SCC behind `c` contains a cycle, i.e. its members
  /// reach themselves.
  bool CondCyclic(CondId c) const { return scc_.cyclic[c] != 0; }
  bool NodeOnCycle(NodeId v) const { return CondCyclic(CondOf(v)); }

  size_t NumChains() const { return cover_.NumChains(); }
  size_t NumCondNodes() const { return pos_.size(); }
  size_t ChainLength(uint32_t cid) const { return cover_.chains[cid].size(); }
  /// Condensation node at a chain position.
  CondId AtPos(uint32_t cid, uint32_t sid) const {
    return cover_.chains[cid][sid];
  }

  /// Entry positions (successor list) of condensation node c; entries
  /// lie on chains other than c's own.
  const PodArray<ChainPos>& Lout(CondId c) const { return lout_[c]; }
  /// Exit positions (predecessor list) of c.
  const PodArray<ChainPos>& Lin(CondId c) const { return lin_[c]; }

  /// Smallest strictly-larger same-chain node with non-empty Lout
  /// (forward tracing pointer); kNoCond at the chain top.
  CondId NextWithLout(CondId c) const { return next_with_lout_[c]; }
  /// Largest strictly-smaller same-chain node with non-empty Lin
  /// (backward tracing pointer); kNoCond at the chain bottom.
  CondId PrevWithLin(CondId c) const { return prev_with_lin_[c]; }

  /// Total sizes of all successor/predecessor lists (|Lout|, |Lin|).
  size_t TotalLoutSize() const { return total_lout_; }
  size_t TotalLinSize() const { return total_lin_; }

  /// Enumerates the complete successor list X_c: walks c and larger
  /// same-chain nodes via tracing pointers, invoking fn(entry) for every
  /// recorded entry (the self position is NOT included). Stops early if
  /// fn returns true; returns whether a callback returned true.
  template <typename Fn>
  bool ForEachSuccessorEntry(CondId c, Fn&& fn) const {
    IndexStats& st = stats();
    CondId cur = lout_[c].empty() ? next_with_lout_[c] : c;
    while (cur != kNoCond) {
      for (const ChainPos& e : lout_[cur]) {
        ++st.elements_looked_up;
        if (fn(e)) return true;
      }
      cur = next_with_lout_[cur];
    }
    return false;
  }

  /// Enumerates the complete predecessor list Y_c (self excluded),
  /// walking smaller same-chain nodes via backward tracing pointers.
  template <typename Fn>
  bool ForEachPredecessorEntry(CondId c, Fn&& fn) const {
    IndexStats& st = stats();
    CondId cur = lin_[c].empty() ? prev_with_lin_[c] : c;
    while (cur != kNoCond) {
      for (const ChainPos& e : lin_[cur]) {
        ++st.elements_looked_up;
        if (fn(e)) return true;
      }
      cur = prev_with_lin_[cur];
    }
    return false;
  }

  const ChainCoverView& cover() const { return cover_; }
  const SccView& scc() const { return scc_; }

  /// Persistence hooks (storage/index_io.h): SaveBody appends the
  /// labeling to a payload writer; LoadBody parses it back without
  /// rebuilding. The contour backend shares this body — ContourIndex
  /// carries no state of its own.
  void SaveBody(storage::Writer* w) const;
  static Result<ThreeHopIndex> LoadBody(storage::Reader* r);

 private:
  ThreeHopIndex() = default;

  // Flat state lives behind the IndexView seam: each array either owns
  // its elements (Build / heap loads) or borrows them from a pinned
  // read-only file mapping (LoadBody under a zero-copy reader).
  SccView scc_;
  ChainCoverView cover_;      // over the condensation DAG
  PodArray<ChainPos> pos_;    // condensation node -> position
  NestedPodArray<ChainPos> lout_, lin_;
  PodArray<CondId> next_with_lout_, prev_with_lin_;
  size_t total_lout_ = 0, total_lin_ = 0;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_THREE_HOP_H_
