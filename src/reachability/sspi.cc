#include "reachability/sspi.h"

#include "common/logging.h"

namespace gtpq {

Sspi Sspi::Build(const Digraph& g) {
  Sspi idx;
  idx.scc_ = ComputeScc(g);
  Digraph cond = BuildCondensation(g, idx.scc_);
  const size_t m = cond.NumNodes();

  auto order = TopologicalSort(cond);
  GTPQ_CHECK(order.size() == m);
  idx.tree_parent_.assign(m, kInvalidNode);
  for (NodeId v : order) {
    for (NodeId w : cond.OutNeighbors(v)) {
      if (idx.tree_parent_[w] == kInvalidNode) idx.tree_parent_[w] = v;
    }
  }
  std::vector<std::vector<NodeId>> children(m);
  for (NodeId v = 0; v < m; ++v) {
    if (idx.tree_parent_[v] != kInvalidNode) {
      children[idx.tree_parent_[v]].push_back(v);
    }
  }
  // Pre/post numbering of the spanning forest.
  idx.pre_.assign(m, 0);
  idx.post_.assign(m, 0);
  uint32_t pre_counter = 0, post_counter = 0;
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root = 0; root < m; ++root) {
    if (idx.tree_parent_[root] != kInvalidNode) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      if (cursor == 0) idx.pre_[v] = pre_counter++;
      if (cursor < children[v].size()) {
        stack.emplace_back(children[v][cursor++], 0);
        continue;
      }
      idx.post_[v] = post_counter++;
      stack.pop_back();
    }
  }
  // Surplus predecessors: non-tree in-edges.
  idx.surplus_.resize(m);
  for (NodeId v = 0; v < m; ++v) {
    for (NodeId w : cond.OutNeighbors(v)) {
      if (idx.tree_parent_[w] != v) {
        idx.surplus_[w].push_back(v);
        ++idx.total_surplus_;
      }
    }
  }
  idx.visit_mark_.assign(m, 0);
  return idx;
}

bool Sspi::Reaches(NodeId from, NodeId to) const {
  ++stats_.queries;
  NodeId cu = scc_.component_of[from];
  NodeId cv = scc_.component_of[to];
  if (cu == cv) return scc_.cyclic[cu];

  // Expand targets backwards: ascend the spanning-tree path of every
  // frontier node, testing tree ancestry against cu and enqueueing
  // surplus predecessors. visit_mark_ memoizes across the probe.
  ++visit_epoch_;
  std::vector<NodeId> frontier{cv};
  visit_mark_[cv] = visit_epoch_;
  while (!frontier.empty()) {
    NodeId x = frontier.back();
    frontier.pop_back();
    if (TreeAncestor(cu, x)) return true;
    // Walk from x up to the root, collecting surplus predecessors of
    // every tree ancestor (a surplus edge into an ancestor also reaches
    // x through the tree). Stop early at already-visited tree nodes.
    NodeId y = x;
    while (y != kInvalidNode) {
      ++stats_.elements_looked_up;
      for (NodeId p : surplus_[y]) {
        ++stats_.elements_looked_up;
        if (p == cu) return true;
        if (visit_mark_[p] != visit_epoch_) {
          visit_mark_[p] = visit_epoch_;
          frontier.push_back(p);
        }
      }
      NodeId parent = tree_parent_[y];
      if (parent == kInvalidNode) break;
      if (visit_mark_[parent] == visit_epoch_) break;
      visit_mark_[parent] = visit_epoch_;
      y = parent;
    }
  }
  return false;
}

}  // namespace gtpq
