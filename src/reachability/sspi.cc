#include "reachability/sspi.h"

#include <limits>

#include "common/logging.h"
#include "storage/index_io.h"

namespace gtpq {

Sspi Sspi::Build(const Digraph& g) {
  SccResult scc = ComputeScc(g);
  Digraph cond = BuildCondensation(g, scc);
  const size_t m = cond.NumNodes();

  auto order = TopologicalSort(cond);
  GTPQ_CHECK(order.size() == m);
  std::vector<NodeId> tree_parent(m, kInvalidNode);
  for (NodeId v : order) {
    for (NodeId w : cond.OutNeighbors(v)) {
      if (tree_parent[w] == kInvalidNode) tree_parent[w] = v;
    }
  }
  std::vector<std::vector<NodeId>> children(m);
  for (NodeId v = 0; v < m; ++v) {
    if (tree_parent[v] != kInvalidNode) {
      children[tree_parent[v]].push_back(v);
    }
  }
  // Pre/post numbering of the spanning forest.
  std::vector<uint32_t> pre(m, 0), post(m, 0);
  uint32_t pre_counter = 0, post_counter = 0;
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root = 0; root < m; ++root) {
    if (tree_parent[root] != kInvalidNode) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      if (cursor == 0) pre[v] = pre_counter++;
      if (cursor < children[v].size()) {
        stack.emplace_back(children[v][cursor++], 0);
        continue;
      }
      post[v] = post_counter++;
      stack.pop_back();
    }
  }
  // Surplus predecessors: non-tree in-edges.
  Sspi idx;
  std::vector<std::vector<NodeId>> surplus(m);
  for (NodeId v = 0; v < m; ++v) {
    for (NodeId w : cond.OutNeighbors(v)) {
      if (tree_parent[w] != v) {
        surplus[w].push_back(v);
        ++idx.total_surplus_;
      }
    }
  }
  idx.scc_ = SccView(std::move(scc));
  idx.pre_ = std::move(pre);
  idx.post_ = std::move(post);
  idx.tree_parent_ = std::move(tree_parent);
  idx.surplus_ = NestedPodArray<NodeId>(std::move(surplus));
  return idx;
}

bool Sspi::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  NodeId cu = scc_.component_of[from];
  NodeId cv = scc_.component_of[to];
  if (cu == cv) return scc_.cyclic[cu];

  // Expand targets backwards: ascend the spanning-tree path of every
  // frontier node, testing tree ancestry against cu and enqueueing
  // surplus predecessors. The visit marks memoize across the probe;
  // they live in a per-thread scratch so concurrent probes through a
  // shared index never touch each other's state.
  VisitScratch& scratch = scratch_.Local();
  if (scratch.mark.size() < scc_.cyclic.size() ||
      scratch.epoch == std::numeric_limits<uint32_t>::max()) {
    scratch.mark.assign(scc_.cyclic.size(), 0);
    scratch.epoch = 0;
  }
  std::vector<uint32_t>& visit_mark = scratch.mark;
  const uint32_t visit_epoch = ++scratch.epoch;
  std::vector<NodeId> frontier{cv};
  visit_mark[cv] = visit_epoch;
  while (!frontier.empty()) {
    NodeId x = frontier.back();
    frontier.pop_back();
    if (TreeAncestor(cu, x)) return true;
    // Walk from x up to the root, collecting surplus predecessors of
    // every tree ancestor (a surplus edge into an ancestor also reaches
    // x through the tree). Stop early at already-visited tree nodes.
    NodeId y = x;
    while (y != kInvalidNode) {
      ++st.elements_looked_up;
      for (NodeId p : surplus_[y]) {
        ++st.elements_looked_up;
        if (p == cu) return true;
        if (visit_mark[p] != visit_epoch) {
          visit_mark[p] = visit_epoch;
          frontier.push_back(p);
        }
      }
      NodeId parent = tree_parent_[y];
      if (parent == kInvalidNode) break;
      if (visit_mark[parent] == visit_epoch) break;
      visit_mark[parent] = visit_epoch;
      y = parent;
    }
  }
  return false;
}

void Sspi::SaveBody(storage::Writer* w) const {
  storage::SaveSccView(scc_, w);
  storage::WriteFields(w, pre_, post_, tree_parent_, surplus_,
                       total_surplus_);
}

Result<Sspi> Sspi::LoadBody(storage::Reader* r) {
  Sspi idx;
  GTPQ_RETURN_NOT_OK(storage::LoadSccView(r, &idx.scc_));
  GTPQ_RETURN_NOT_OK(storage::ReadFields(r, &idx.pre_, &idx.post_,
                                         &idx.tree_parent_, &idx.surplus_,
                                         &idx.total_surplus_));
  const size_t m = idx.pre_.size();
  if (idx.post_.size() != m || idx.tree_parent_.size() != m ||
      idx.surplus_.size() != m) {
    return Status::ParseError("inconsistent sspi section sizes");
  }
  return idx;
}

}  // namespace gtpq
