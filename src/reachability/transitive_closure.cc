#include "reachability/transitive_closure.h"

#include "common/logging.h"
#include "storage/index_io.h"

namespace gtpq {

TransitiveClosure TransitiveClosure::Build(const Digraph& g) {
  TransitiveClosure tc;
  SccResult scc = ComputeScc(g);
  Digraph cond = BuildCondensation(g, scc);
  const size_t m = cond.NumNodes();
  tc.words_per_row_ = (m + 63) / 64;
  std::vector<std::vector<uint64_t>> rows(
      m, std::vector<uint64_t>(tc.words_per_row_, 0));

  auto order = TopologicalSort(cond);
  GTPQ_CHECK(order.size() == m) << "condensation must be acyclic";
  // Reverse topological: successors first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId v = *it;
    auto& row = rows[v];
    for (NodeId w : cond.OutNeighbors(v)) {
      row[w >> 6] |= uint64_t{1} << (w & 63);
      const auto& wrow = rows[w];
      for (size_t i = 0; i < tc.words_per_row_; ++i) row[i] |= wrow[i];
    }
  }
  tc.scc_ = SccView(std::move(scc));
  tc.rows_ = NestedPodArray<uint64_t>(std::move(rows));
  return tc;
}

bool TransitiveClosure::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  NodeId cu = scc_.component_of[from];
  NodeId cv = scc_.component_of[to];
  if (cu == cv) return scc_.cyclic[cu];
  ++st.elements_looked_up;  // one bitset-row probe
  return CondReaches(cu, cv);
}

void TransitiveClosure::SaveBody(storage::Writer* w) const {
  storage::SaveSccView(scc_, w);
  storage::WriteFields(w, words_per_row_, rows_);
}

Result<TransitiveClosure> TransitiveClosure::LoadBody(storage::Reader* r) {
  TransitiveClosure tc;
  GTPQ_RETURN_NOT_OK(storage::LoadSccView(r, &tc.scc_));
  GTPQ_RETURN_NOT_OK(storage::ReadFields(r, &tc.words_per_row_, &tc.rows_));
  // One row per condensation node, wide enough for every column bit —
  // Reaches() indexes rows_[cu][cv >> 6] without further checks.
  if (tc.rows_.size() != tc.scc_.num_components ||
      tc.words_per_row_ != (tc.scc_.num_components + 63) / 64) {
    return Status::ParseError("inconsistent transitive_closure shape");
  }
  for (const auto& row : tc.rows_) {
    if (row.size() != tc.words_per_row_) {
      return Status::ParseError("inconsistent transitive_closure row size");
    }
  }
  return tc;
}

}  // namespace gtpq
