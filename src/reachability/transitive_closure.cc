#include "reachability/transitive_closure.h"

#include "common/logging.h"

namespace gtpq {

TransitiveClosure TransitiveClosure::Build(const Digraph& g) {
  TransitiveClosure tc;
  tc.scc_ = ComputeScc(g);
  Digraph cond = BuildCondensation(g, tc.scc_);
  const size_t m = cond.NumNodes();
  tc.words_per_row_ = (m + 63) / 64;
  tc.rows_.assign(m, std::vector<uint64_t>(tc.words_per_row_, 0));

  auto order = TopologicalSort(cond);
  GTPQ_CHECK(order.size() == m) << "condensation must be acyclic";
  // Reverse topological: successors first.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId v = *it;
    auto& row = tc.rows_[v];
    for (NodeId w : cond.OutNeighbors(v)) {
      row[w >> 6] |= uint64_t{1} << (w & 63);
      const auto& wrow = tc.rows_[w];
      for (size_t i = 0; i < tc.words_per_row_; ++i) row[i] |= wrow[i];
    }
  }
  return tc;
}

bool TransitiveClosure::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  NodeId cu = scc_.component_of[from];
  NodeId cv = scc_.component_of[to];
  if (cu == cv) return scc_.cyclic[cu];
  ++st.elements_looked_up;  // one bitset-row probe
  return CondReaches(cu, cv);
}

}  // namespace gtpq
