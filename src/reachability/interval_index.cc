#include "reachability/interval_index.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/index_io.h"

namespace gtpq {

namespace {

// Merges overlapping/adjacent intervals in place; input sorted by low.
void Compress(std::vector<IntervalIndex::Interval>* ivals) {
  auto& v = *ivals;
  if (v.empty()) return;
  std::sort(v.begin(), v.end(), [](const auto& a, const auto& b) {
    return a.low != b.low ? a.low < b.low : a.post > b.post;
  });
  size_t out = 0;
  for (size_t i = 1; i < v.size(); ++i) {
    if (v[i].low <= v[out].post + 1) {
      v[out].post = std::max(v[out].post, v[i].post);
    } else {
      v[++out] = v[i];
    }
  }
  v.resize(out + 1);
}

}  // namespace

IntervalIndex IntervalIndex::Build(const Digraph& g) {
  SccResult scc = ComputeScc(g);
  Digraph cond = BuildCondensation(g, scc);
  const size_t m = cond.NumNodes();
  std::vector<uint32_t> post(m, 0);
  std::vector<std::vector<Interval>> intervals(m);

  // Spanning forest: first in-neighbor in a topological pass claims each
  // node; roots are nodes without a claimed tree parent.
  auto order = TopologicalSort(cond);
  GTPQ_CHECK(order.size() == m);
  std::vector<NodeId> tree_parent(m, kInvalidNode);
  for (NodeId v : order) {
    for (NodeId w : cond.OutNeighbors(v)) {
      if (tree_parent[w] == kInvalidNode) tree_parent[w] = v;
    }
  }
  std::vector<std::vector<NodeId>> tree_children(m);
  for (NodeId v = 0; v < m; ++v) {
    if (tree_parent[v] != kInvalidNode) {
      tree_children[tree_parent[v]].push_back(v);
    }
  }

  // Iterative post-order over the forest; low = smallest post in the
  // subtree, giving the tree interval [low, post].
  std::vector<uint32_t> low(m, 0);
  uint32_t counter = 0;
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root = 0; root < m; ++root) {
    if (tree_parent[root] != kInvalidNode) continue;
    stack.emplace_back(root, 0);
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      if (cursor == 0) low[v] = counter;
      if (cursor < tree_children[v].size()) {
        NodeId child = tree_children[v][cursor++];
        stack.emplace_back(child, 0);
        continue;
      }
      post[v] = counter++;
      stack.pop_back();
    }
  }

  // Inherit interval lists from all successors in reverse topological
  // order, then compress.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    NodeId v = *it;
    auto& ivals = intervals[v];
    ivals.push_back(Interval{low[v], post[v]});
    for (NodeId w : cond.OutNeighbors(v)) {
      const auto& wi = intervals[w];
      ivals.insert(ivals.end(), wi.begin(), wi.end());
    }
    Compress(&ivals);
  }
  IntervalIndex idx;
  idx.scc_ = SccView(std::move(scc));
  idx.post_ = std::move(post);
  idx.intervals_ = NestedPodArray<Interval>(std::move(intervals));
  for (const auto& iv : idx.intervals_) idx.total_intervals_ += iv.size();
  return idx;
}

bool IntervalIndex::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  NodeId cu = scc_.component_of[from];
  NodeId cv = scc_.component_of[to];
  if (cu == cv) return scc_.cyclic[cu];
  const uint32_t target = post_[cv];
  const auto& ivals = intervals_[cu];
  // Binary search on the sorted, disjoint interval list.
  size_t lo = 0, hi = ivals.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    ++st.elements_looked_up;
    if (ivals[mid].post < target) {
      lo = mid + 1;
    } else if (ivals[mid].low > target) {
      hi = mid;
    } else {
      return true;
    }
  }
  return false;
}

void IntervalIndex::SaveBody(storage::Writer* w) const {
  storage::SaveSccView(scc_, w);
  storage::WriteFields(w, post_, intervals_, total_intervals_);
}

Result<IntervalIndex> IntervalIndex::LoadBody(storage::Reader* r) {
  IntervalIndex idx;
  GTPQ_RETURN_NOT_OK(storage::LoadSccView(r, &idx.scc_));
  GTPQ_RETURN_NOT_OK(storage::ReadFields(r, &idx.post_, &idx.intervals_,
                                         &idx.total_intervals_));
  if (idx.post_.size() != idx.intervals_.size()) {
    return Status::ParseError("inconsistent interval section sizes");
  }
  return idx;
}

}  // namespace gtpq
