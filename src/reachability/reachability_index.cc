#include "reachability/reachability_index.h"

namespace gtpq {

namespace {

// Default summary: the member list itself, probed pairwise.
class VectorSummary : public ReachabilityOracle::SetSummary {
 public:
  explicit VectorSummary(std::span<const NodeId> members)
      : members_(members.begin(), members.end()) {}

  const std::vector<NodeId>& members() const { return members_; }

 private:
  std::vector<NodeId> members_;
};

const VectorSummary& AsVector(const ReachabilityOracle::SetSummary& s) {
  return static_cast<const VectorSummary&>(s);
}

}  // namespace

std::unique_ptr<ReachabilityOracle::SetSummary>
ReachabilityOracle::SummarizeTargets(std::span<const NodeId> members) const {
  return std::make_unique<VectorSummary>(members);
}

std::unique_ptr<ReachabilityOracle::SetSummary>
ReachabilityOracle::SummarizeSources(std::span<const NodeId> members) const {
  return std::make_unique<VectorSummary>(members);
}

bool ReachabilityOracle::ReachesSet(NodeId from,
                                    const SetSummary& targets) const {
  for (NodeId m : AsVector(targets).members()) {
    if (Reaches(from, m)) return true;
  }
  return false;
}

bool ReachabilityOracle::SetReaches(const SetSummary& sources,
                                    NodeId to) const {
  for (NodeId m : AsVector(sources).members()) {
    if (Reaches(m, to)) return true;
  }
  return false;
}

void ReachabilityOracle::ReachesSetsBatch(
    std::span<const NodeId> sources,
    std::span<const SetSummary* const> target_sets,
    std::vector<std::vector<char>>* out) const {
  out->assign(target_sets.size(),
              std::vector<char>(sources.size(), 0));
  for (size_t k = 0; k < target_sets.size(); ++k) {
    auto& mask = (*out)[k];
    for (size_t i = 0; i < sources.size(); ++i) {
      mask[i] = ReachesSet(sources[i], *target_sets[k]) ? 1 : 0;
    }
  }
}

void ReachabilityOracle::SetReachesBatch(const SetSummary& sources,
                                         std::span<const NodeId> targets,
                                         std::vector<char>* out) const {
  out->assign(targets.size(), 0);
  for (size_t i = 0; i < targets.size(); ++i) {
    (*out)[i] = SetReaches(sources, targets[i]) ? 1 : 0;
  }
}

std::unique_ptr<ReachabilityOracle::SetSummary>
ReachabilityOracle::PrepareSuccessorTargets(
    std::span<const NodeId> targets) const {
  return std::make_unique<VectorSummary>(targets);
}

void ReachabilityOracle::SuccessorsAmong(NodeId from,
                                         const SetSummary& targets,
                                         std::vector<uint32_t>* out) const {
  const auto& members = AsVector(targets).members();
  for (uint32_t i = 0; i < members.size(); ++i) {
    if (Reaches(from, members[i])) out->push_back(i);
  }
}

}  // namespace gtpq
