#ifndef GTPQ_REACHABILITY_SHARDED_ORACLE_H_
#define GTPQ_REACHABILITY_SHARDED_ORACLE_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/per_thread.h"
#include "common/status.h"
#include "reachability/reachability_index.h"
#include "reachability/transitive_closure.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// Tuning knobs for ShardedOracle.
struct ShardedOracleOptions {
  /// Vertex partitions (clamped to the node count).
  size_t num_shards = 4;
  /// Factory spec of the per-shard sub-index (any MakeReachabilityIndex
  /// spec, decorators included).
  std::string inner_spec = "interval";
  /// Explicit contiguous cut points (num_shards + 1 values: first 0,
  /// last the node count, strictly derived ranges must be monotone).
  /// Empty = equal cuts s * n / num_shards. The cluster partitioner
  /// passes degree-aware cuts here (cluster/partition.h) so the oracle
  /// and the partition map agree on shard assignment.
  std::vector<size_t> custom_starts;
};

/// Partitioned reachability: vertices are split into contiguous-range
/// shards, each carrying an independent sub-index over its induced
/// subgraph; paths that cross shards are answered through a boundary
/// overlay. The point is build economics on large graphs — when data
/// changes land in one partition, only that shard's sub-index (plus the
/// small overlay closure) is rebuilt (RebuildShard), instead of
/// relabeling the whole graph.
///
/// Structure:
///  * boundary vertices: endpoints of shard-crossing edges;
///  * overlay graph over boundary vertices: the crossing edges, plus an
///    edge b -> b' whenever b' is intra-shard reachable from b (so a
///    cross-shard path contracts to an overlay path);
///  * the overlay's transitive closure (it is small: boundaries only).
///
/// Reaches(u, v) holds iff v is intra-shard reachable from u, or some
/// boundary exit of u (u itself when u is a boundary) reaches some
/// boundary entry of v through the overlay. Cycles threading several
/// shards condense into overlay cycles, so the Section-2 semantics
/// (Reaches(v, v) only on a cycle) carry over exactly; the conformance
/// suite checks this decorator against the materialized closure like
/// any base backend.
///
/// Set-reachability uses the pairwise defaults of ReachabilityOracle.
class ShardedOracle : public ReachabilityOracle {
 public:
  ShardedOracle(const Digraph& g, ShardedOracleOptions options = {});

  std::string_view name() const override { return name_; }
  bool Reaches(NodeId from, NodeId to) const override;

  size_t NumShards() const { return num_shards_; }
  size_t ShardOf(NodeId v) const;
  size_t ShardSize(size_t shard) const {
    return shard_start_[shard + 1] - shard_start_[shard];
  }
  size_t NumBoundaryVertices() const { return boundary_.size(); }
  const ReachabilityOracle& shard_index(size_t shard) const {
    return *sub_[shard];
  }

  // Boundary-machinery export (read-only) — the cluster partitioner
  // serializes these into the .gtpqmap so a router can answer
  // cross-shard probes from a replicated overlay without rebuilding it.
  const std::vector<size_t>& shard_starts() const { return shard_start_; }
  const std::vector<NodeId>& boundary_vertices() const { return boundary_; }
  const std::vector<std::pair<NodeId, NodeId>>& cross_edges() const {
    return cross_edges_;
  }
  const std::vector<std::vector<std::pair<uint32_t, uint32_t>>>&
  shard_overlay_contributions() const {
    return shard_overlay_;
  }
  const TransitiveClosure& overlay_closure() const {
    return *overlay_closure_;
  }

  /// Rebuilds one shard's sub-index and the overlay rows it
  /// contributes, leaving every other shard's labeling untouched. `g`
  /// must have the same node count and shard-crossing edges as the
  /// graph the oracle was built from (intra-shard edits only).
  ///
  /// NOT thread-safe with concurrent probes: rebuilding swaps the
  /// shard's sub-index and the overlay closure in place. Quiesce every
  /// reader first (e.g. drain the QueryServer batch, or rebuild into a
  /// fresh oracle and swap the shared_ptr at the serving layer).
  void RebuildShard(const Digraph& g, size_t shard);

  /// Persistence hooks (storage/index_io.h): the body carries the shard
  /// layout, one nested sub-index section per shard, the boundary
  /// machinery, and the overlay closure, so a load reconstructs the
  /// oracle without touching the graph.
  void SaveBody(storage::Writer* w) const;
  static Result<std::unique_ptr<ShardedOracle>> LoadBody(
      storage::Reader* r);

 private:
  ShardedOracle() = default;

  void BuildShard(const Digraph& g, size_t shard);
  void BuildOverlay();
  NodeId LocalId(NodeId v, size_t shard) const {
    return v - static_cast<NodeId>(shard_start_[shard]);
  }

  size_t num_shards_ = 1;
  std::string inner_spec_;
  std::string name_;
  std::vector<size_t> shard_start_;  // size num_shards_+1, last = n
  std::vector<std::unique_ptr<ReachabilityOracle>> sub_;
  // Boundary machinery. boundary_id_[v] indexes boundary_ or kNotBoundary.
  static constexpr uint32_t kNotBoundary = static_cast<uint32_t>(-1);
  std::vector<NodeId> boundary_;
  std::vector<uint32_t> boundary_id_;
  std::vector<std::vector<uint32_t>> shard_boundaries_;  // per shard
  std::vector<std::pair<NodeId, NodeId>> cross_edges_;
  // Per-shard overlay contributions (intra-shard boundary-to-boundary
  // reachability), kept separately so RebuildShard replaces one slice.
  std::vector<std::vector<std::pair<uint32_t, uint32_t>>> shard_overlay_;
  std::unique_ptr<TransitiveClosure> overlay_closure_;
  // Probe scratch (boundary exit/entry lists), thread-confined so
  // cross-shard probes allocate nothing on the hot path.
  struct ProbeScratch {
    std::vector<uint32_t> exits;
    std::vector<uint32_t> entries;
  };
  PerThread<ProbeScratch> scratch_;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_SHARDED_ORACLE_H_
