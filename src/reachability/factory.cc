#include "reachability/factory.h"

#include "cluster/partition_map.h"
#include "cluster/shard_router.h"
#include "common/logging.h"
#include "dynamic/delta_overlay.h"
#include "reachability/cached_oracle.h"
#include "reachability/chain_cover_index.h"
#include "reachability/contour.h"
#include "reachability/interval_index.h"
#include "reachability/sharded_oracle.h"
#include "reachability/sspi.h"
#include "reachability/three_hop.h"
#include "reachability/transitive_closure.h"
#include "storage/index_io.h"

namespace gtpq {

namespace {
constexpr std::string_view kCachedPrefix = "cached:";
constexpr std::string_view kShardedPrefix = "sharded:";
constexpr std::string_view kDeltaPrefix = "delta:";
constexpr std::string_view kFilePrefix = "file:";
constexpr std::string_view kMmapPrefix = "mmap:";
constexpr std::string_view kClusterPrefix = "cluster:";

// Splits "cluster:<map-path>[@<ep1,ep2,...>]" after the prefix. The
// separator is the LAST '@' so map paths may contain one; endpoints
// ("host:port") cannot.
void SplitClusterSpec(std::string_view rest, std::string* map_path,
                      std::vector<std::string>* endpoints) {
  const size_t at = rest.rfind('@');
  if (at == std::string_view::npos) {
    *map_path = std::string(rest);
    return;
  }
  *map_path = std::string(rest.substr(0, at));
  std::string_view list = rest.substr(at + 1);
  while (!list.empty()) {
    const size_t comma = list.find(',');
    endpoints->emplace_back(list.substr(0, comma));
    if (comma == std::string_view::npos) break;
    list = list.substr(comma + 1);
  }
}
}  // namespace

std::vector<ReachabilityBackend> AllReachabilityBackends() {
  return {ReachabilityBackend::kContour,    ReachabilityBackend::kThreeHop,
          ReachabilityBackend::kInterval,   ReachabilityBackend::kSspi,
          ReachabilityBackend::kChainCover,
          ReachabilityBackend::kTransitiveClosure};
}

std::string_view ReachabilityBackendName(ReachabilityBackend kind) {
  switch (kind) {
    case ReachabilityBackend::kContour:
      return "contour";
    case ReachabilityBackend::kThreeHop:
      return "three_hop";
    case ReachabilityBackend::kInterval:
      return "interval";
    case ReachabilityBackend::kSspi:
      return "sspi";
    case ReachabilityBackend::kChainCover:
      return "chain_cover";
    case ReachabilityBackend::kTransitiveClosure:
      return "transitive_closure";
  }
  return "unknown";
}

std::optional<ReachabilityBackend> ParseReachabilityBackend(
    std::string_view name) {
  for (ReachabilityBackend kind : AllReachabilityBackends()) {
    if (name == ReachabilityBackendName(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<ReachabilityOracle> MakeReachabilityIndex(
    ReachabilityBackend kind, const Digraph& g) {
  switch (kind) {
    case ReachabilityBackend::kContour:
      return std::make_unique<ContourIndex>(ContourIndex::Build(g));
    case ReachabilityBackend::kThreeHop:
      return std::make_unique<ThreeHopIndex>(ThreeHopIndex::Build(g));
    case ReachabilityBackend::kInterval:
      return std::make_unique<IntervalIndex>(IntervalIndex::Build(g));
    case ReachabilityBackend::kSspi:
      return std::make_unique<Sspi>(Sspi::Build(g));
    case ReachabilityBackend::kChainCover:
      return std::make_unique<ChainCoverIndex>(ChainCoverIndex::Build(g));
    case ReachabilityBackend::kTransitiveClosure:
      return std::make_unique<TransitiveClosure>(
          TransitiveClosure::Build(g));
  }
  return nullptr;
}

std::unique_ptr<ReachabilityOracle> MakeReachabilityIndex(
    std::string_view spec, const Digraph& g) {
  if (spec.rfind(kFilePrefix, 0) == 0) {
    const std::string path(spec.substr(kFilePrefix.size()));
    auto loaded = storage::LoadReachabilityIndex(path, g);
    if (!loaded.ok()) {
      GTPQ_LOG(Warning) << "cannot serve reachability index from '" << path
                        << "': " << loaded.status().ToString();
      return nullptr;
    }
    return loaded.TakeValue();
  }
  if (spec.rfind(kMmapPrefix, 0) == 0) {
    const std::string path(spec.substr(kMmapPrefix.size()));
    auto loaded = storage::LoadReachabilityIndexView(path, g);
    if (!loaded.ok()) {
      GTPQ_LOG(Warning) << "cannot mmap reachability index from '" << path
                        << "': " << loaded.status().ToString();
      return nullptr;
    }
    return loaded.TakeValue();
  }
  if (spec.rfind(kClusterPrefix, 0) == 0) {
    std::string map_path;
    cluster::ShardRouterOptions options;
    SplitClusterSpec(spec.substr(kClusterPrefix.size()), &map_path,
                     &options.endpoints);
    auto map = cluster::LoadPartitionMap(map_path);
    if (!map.ok()) {
      GTPQ_LOG(Warning) << "cannot load partition map '" << map_path
                        << "': " << map.status().ToString();
      return nullptr;
    }
    if (map->graph_fingerprint != storage::GraphFingerprint(g) ||
        map->num_nodes != g.NumNodes()) {
      GTPQ_LOG(Warning) << "partition map '" << map_path
                        << "' was built for a different graph";
      return nullptr;
    }
    auto router = cluster::ShardRouter::Connect(map.TakeValue(),
                                                std::move(options));
    if (!router.ok()) {
      GTPQ_LOG(Warning) << "cannot route cluster '" << map_path
                        << "': " << router.status().ToString();
      return nullptr;
    }
    return router.TakeValue();
  }
  if (spec.rfind(kCachedPrefix, 0) == 0) {
    auto inner = MakeReachabilityIndex(spec.substr(kCachedPrefix.size()), g);
    if (inner == nullptr) return nullptr;
    return std::make_unique<CachedOracle>(
        std::shared_ptr<const ReachabilityOracle>(std::move(inner)));
  }
  if (spec.rfind(kDeltaPrefix, 0) == 0) {
    std::string_view inner_spec = spec.substr(kDeltaPrefix.size());
    // Reject file: anywhere beneath delta: up front — compaction has to
    // rebuild the inner index through its spec, which a persisted file
    // cannot do for a mutated graph.
    if (!IsValidReachabilitySpec(spec)) return nullptr;
    auto inner = MakeReachabilityIndex(inner_spec, g);
    if (inner == nullptr) return nullptr;
    return std::make_unique<DeltaOverlayOracle>(
        std::shared_ptr<const ReachabilityOracle>(std::move(inner)), &g);
  }
  if (spec.rfind(kShardedPrefix, 0) == 0) {
    std::string_view inner_spec = spec.substr(kShardedPrefix.size());
    // Validate the full spec, not just the inner one: it knows that a
    // file: anywhere under sharded: can never serve (a persisted index
    // is fingerprinted against the whole graph, not a shard subgraph),
    // where the stripped inner spec would look loadable.
    if (!IsValidReachabilitySpec(spec)) return nullptr;
    ShardedOracleOptions options;
    options.inner_spec = std::string(inner_spec);
    return std::make_unique<ShardedOracle>(g, std::move(options));
  }
  auto kind = ParseReachabilityBackend(spec);
  if (!kind.has_value()) return nullptr;
  return MakeReachabilityIndex(*kind, g);
}

bool IsValidReachabilitySpec(std::string_view spec) {
  bool file_forbidden = false;
  bool under_sharded = false;
  while (spec.rfind(kCachedPrefix, 0) == 0 ||
         spec.rfind(kShardedPrefix, 0) == 0 ||
         spec.rfind(kDeltaPrefix, 0) == 0) {
    // delta: cannot serve beneath sharded:: each shard's sub-index is
    // built over a transient induced-subgraph Digraph, which the
    // overlay would have to alias past its lifetime. (Shard-local
    // deltas need the sharded decorator itself to route updates.)
    if (under_sharded && spec.rfind(kDeltaPrefix, 0) == 0) return false;
    // file: cannot serve beneath sharded: (a persisted index is
    // fingerprinted against the whole graph, not a shard subgraph) nor
    // beneath delta: (compaction rebuilds the inner index through its
    // spec, which a file cannot replay on a mutated graph).
    file_forbidden = file_forbidden ||
                     spec.rfind(kShardedPrefix, 0) == 0 ||
                     spec.rfind(kDeltaPrefix, 0) == 0;
    under_sharded = under_sharded || spec.rfind(kShardedPrefix, 0) == 0;
    spec = spec.substr(spec.find(':') + 1);
  }
  if (spec.rfind(kFilePrefix, 0) == 0) {
    if (file_forbidden) return false;
    return storage::InspectReachabilityIndex(
               std::string(spec.substr(kFilePrefix.size())))
        .ok();
  }
  // mmap: is file: with a zero-copy loader; same composition rules.
  if (spec.rfind(kMmapPrefix, 0) == 0) {
    if (file_forbidden) return false;
    return storage::InspectReachabilityIndex(
               std::string(spec.substr(kMmapPrefix.size())))
        .ok();
  }
  // cluster: shares file:'s composition rules (a map is fingerprinted
  // against the whole graph, not a shard subgraph, and cannot replay a
  // delta's mutations). Validity here means the map parses — whether
  // the shard servers are up is only knowable at build time.
  if (spec.rfind(kClusterPrefix, 0) == 0) {
    if (file_forbidden) return false;
    std::string map_path;
    std::vector<std::string> endpoints;
    SplitClusterSpec(spec.substr(kClusterPrefix.size()), &map_path,
                     &endpoints);
    return cluster::LoadPartitionMap(map_path).ok();
  }
  return ParseReachabilityBackend(spec).has_value();
}

std::vector<std::string> AllReachabilitySpecs() {
  std::vector<std::string> specs;
  for (ReachabilityBackend kind : AllReachabilityBackends()) {
    specs.emplace_back(ReachabilityBackendName(kind));
  }
  for (std::string_view prefix :
       {kCachedPrefix, kShardedPrefix, kDeltaPrefix}) {
    for (ReachabilityBackend kind : AllReachabilityBackends()) {
      specs.push_back(std::string(prefix) +
                      std::string(ReachabilityBackendName(kind)));
    }
  }
  // Nested-composition witnesses: a cache over a partitioned oracle, a
  // partitioned oracle whose shards cache, and the delta overlay
  // composed both ways (an overlay over a decorated inner index, and a
  // cache over an overlay snapshot).
  specs.push_back("cached:sharded:interval");
  specs.push_back("sharded:cached:contour");
  specs.push_back("delta:cached:contour");
  specs.push_back("cached:delta:interval");
  return specs;
}

}  // namespace gtpq
