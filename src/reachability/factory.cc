#include "reachability/factory.h"

#include "reachability/chain_cover_index.h"
#include "reachability/contour.h"
#include "reachability/interval_index.h"
#include "reachability/sspi.h"
#include "reachability/three_hop.h"
#include "reachability/transitive_closure.h"

namespace gtpq {

std::vector<ReachabilityBackend> AllReachabilityBackends() {
  return {ReachabilityBackend::kContour,    ReachabilityBackend::kThreeHop,
          ReachabilityBackend::kInterval,   ReachabilityBackend::kSspi,
          ReachabilityBackend::kChainCover,
          ReachabilityBackend::kTransitiveClosure};
}

std::string_view ReachabilityBackendName(ReachabilityBackend kind) {
  switch (kind) {
    case ReachabilityBackend::kContour:
      return "contour";
    case ReachabilityBackend::kThreeHop:
      return "three_hop";
    case ReachabilityBackend::kInterval:
      return "interval";
    case ReachabilityBackend::kSspi:
      return "sspi";
    case ReachabilityBackend::kChainCover:
      return "chain_cover";
    case ReachabilityBackend::kTransitiveClosure:
      return "transitive_closure";
  }
  return "unknown";
}

std::optional<ReachabilityBackend> ParseReachabilityBackend(
    std::string_view name) {
  for (ReachabilityBackend kind : AllReachabilityBackends()) {
    if (name == ReachabilityBackendName(kind)) return kind;
  }
  return std::nullopt;
}

std::unique_ptr<ReachabilityOracle> MakeReachabilityIndex(
    ReachabilityBackend kind, const Digraph& g) {
  switch (kind) {
    case ReachabilityBackend::kContour:
      return std::make_unique<ContourIndex>(ContourIndex::Build(g));
    case ReachabilityBackend::kThreeHop:
      return std::make_unique<ThreeHopIndex>(ThreeHopIndex::Build(g));
    case ReachabilityBackend::kInterval:
      return std::make_unique<IntervalIndex>(IntervalIndex::Build(g));
    case ReachabilityBackend::kSspi:
      return std::make_unique<Sspi>(Sspi::Build(g));
    case ReachabilityBackend::kChainCover:
      return std::make_unique<ChainCoverIndex>(ChainCoverIndex::Build(g));
    case ReachabilityBackend::kTransitiveClosure:
      return std::make_unique<TransitiveClosure>(
          TransitiveClosure::Build(g));
  }
  return nullptr;
}

}  // namespace gtpq
