#ifndef GTPQ_REACHABILITY_INTERVAL_INDEX_H_
#define GTPQ_REACHABILITY_INTERVAL_INDEX_H_

#include <vector>

#include "common/status.h"
#include "graph/algorithms.h"
#include "reachability/index_view.h"
#include "reachability/reachability_index.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// Tree-cover interval labeling (Agrawal, Borgida, Jagadish, SIGMOD'89)
/// — the OPT-tree-cover reachability index HGJoin builds on. A spanning
/// forest of the (condensed) DAG is labeled with post-order intervals;
/// every node additionally inherits the compressed interval lists of its
/// non-tree successors, so `from` reaches `to` iff some interval of
/// `from` contains `to`'s post-order number.
class IntervalIndex : public ReachabilityOracle {
 public:
  struct Interval {
    uint32_t low;
    uint32_t post;  // inclusive
  };

  static IntervalIndex Build(const Digraph& g);

  std::string_view name() const override { return "interval"; }

  bool Reaches(NodeId from, NodeId to) const override;

  /// Post-order number of a node (used by HGJoin's sort-merge joins as
  /// its Alist/Dlist ordering key).
  uint32_t PostOf(NodeId v) const { return post_[scc_.component_of[v]]; }

  /// Interval list of a node (own tree interval last).
  const PodArray<Interval>& IntervalsOf(NodeId v) const {
    return intervals_[scc_.component_of[v]];
  }

  size_t TotalIntervals() const { return total_intervals_; }

  /// Persistence hooks (storage/index_io.h).
  void SaveBody(storage::Writer* w) const;
  static Result<IntervalIndex> LoadBody(storage::Reader* r);

 private:
  IntervalIndex() = default;

  SccView scc_;
  PodArray<uint32_t> post_;            // per condensation node
  NestedPodArray<Interval> intervals_;  // per condensation node
  size_t total_intervals_ = 0;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_INTERVAL_INDEX_H_
