#ifndef GTPQ_REACHABILITY_CONTOUR_H_
#define GTPQ_REACHABILITY_CONTOUR_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "reachability/three_hop.h"

namespace gtpq {

/// One per-chain contour entry. `genuine` records that the position is
/// connected to the member set by a path of length >= 1 (an Lin/Lout
/// derived entry, or a self entry inside a cyclic SCC); for non-genuine
/// (pure self) entries `self_member` identifies the single contributing
/// data node, which disambiguates the zero-length corner case of the
/// paper's non-empty-path AD semantics.
struct ContourEntry {
  uint32_t sid = 0;
  bool genuine = false;
  NodeId self_member = kInvalidNode;
};

/// A predecessor or successor contour: chain id -> extreme entry
/// (maximum sid for predecessor contours, minimum for successor ones).
/// This is the merged, duplicate-free complete list of Section 4.2.1.
class Contour {
 public:
  using Map = std::unordered_map<uint32_t, ContourEntry>;

  const Map& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }
  size_t size() const { return entries_.size(); }

  /// Finds the entry for a chain; nullptr when absent.
  const ContourEntry* Find(uint32_t cid) const {
    auto it = entries_.find(cid);
    return it == entries_.end() ? nullptr : &it->second;
  }

  /// Keeps the larger-sid entry (predecessor contours).
  void UpdateMax(uint32_t cid, const ContourEntry& e);
  /// Keeps the smaller-sid entry (successor contours).
  void UpdateMin(uint32_t cid, const ContourEntry& e);

 private:
  Map entries_;
};

/// Procedure 2 (MergePredLists): merges the complete predecessor lists
/// of `members` into a predecessor contour. Each chain segment of Lin
/// lists is walked at most once thanks to the `visited` bookkeeping.
Contour MergePredLists(const ThreeHopIndex& idx,
                       std::span<const NodeId> members);

/// Dual of Procedure 2: merges complete successor lists into a
/// successor contour.
Contour MergeSuccLists(const ThreeHopIndex& idx,
                       std::span<const NodeId> members);

/// Proposition 7, first half: does data node v reach (non-empty path)
/// at least one member of the set summarized by predecessor contour cp?
bool NodeReachesContour(const ThreeHopIndex& idx, NodeId v,
                        const Contour& cp);

/// Proposition 7, second half: does some member of the set summarized
/// by successor contour cs reach data node v?
bool ContourReachesNode(const ThreeHopIndex& idx, const Contour& cs,
                        NodeId v);

/// Single-probe building blocks, exposed so the pruning procedures can
/// share one chain walk across several contours (Procedure 6/7).
///
/// Tests probe position x — an entry of v's complete successor list, or
/// v's own position with x_genuine = v-on-cycle — against a predecessor
/// contour: true iff a pair (x, y) with x <=c y certifies a non-empty
/// path from v into the member set.
bool ProbePredecessorContour(const Contour& cp, const ChainPos& x,
                             bool x_genuine, NodeId v);

/// Dual: probe y from v's complete predecessor list against a successor
/// contour (pair (x, y) with x <=c y, x in the contour).
bool ProbeSuccessorContour(const Contour& cs, const ChainPos& y,
                           bool y_genuine, NodeId v);

/// The contour-accelerated 3-hop backend — the paper's full GTEA
/// configuration. Point queries are inherited from ThreeHopIndex; the
/// set-reachability API is overridden with the merged-contour
/// procedures of Section 4.2.1:
///
///  * target/source sets are summarized into predecessor/successor
///    contours (Procedure 2);
///  * batched downward probes group sources per chain (descending sid)
///    and share one Lout-segment walk across all target sets, with
///    positive valuations inherited down-chain (Procedure 6);
///  * batched upward probes scan targets per chain in ascending sid
///    with the early break — after the first reachable node all larger
///    ones are — and walk each Lin segment at most once (Procedure 7);
///  * successor scans probe a per-source singleton contour against
///    chain-grouped targets (the Section 4.3 matching-graph scan).
///
/// The plain `three_hop` backend answers the same operations through
/// the pairwise defaults; comparing the two isolates the contour
/// machinery's #index savings.
class ContourIndex : public ThreeHopIndex {
 public:
  static ContourIndex Build(const Digraph& g) {
    return ContourIndex(ThreeHopIndex::Build(g));
  }
  explicit ContourIndex(ThreeHopIndex base)
      : ThreeHopIndex(std::move(base)) {}

  std::string_view name() const override { return "contour"; }

  std::unique_ptr<SetSummary> SummarizeTargets(
      std::span<const NodeId> members) const override;
  std::unique_ptr<SetSummary> SummarizeSources(
      std::span<const NodeId> members) const override;
  bool ReachesSet(NodeId from, const SetSummary& targets) const override;
  bool SetReaches(const SetSummary& sources, NodeId to) const override;
  void ReachesSetsBatch(std::span<const NodeId> sources,
                        std::span<const SetSummary* const> target_sets,
                        std::vector<std::vector<char>>* out) const override;
  void SetReachesBatch(const SetSummary& sources,
                       std::span<const NodeId> targets,
                       std::vector<char>* out) const override;
  std::unique_ptr<SetSummary> PrepareSuccessorTargets(
      std::span<const NodeId> targets) const override;
  void SuccessorsAmong(NodeId from, const SetSummary& targets,
                       std::vector<uint32_t>* out) const override;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_CONTOUR_H_
