#ifndef GTPQ_REACHABILITY_CHAIN_COVER_H_
#define GTPQ_REACHABILITY_CHAIN_COVER_H_

#include <vector>

#include "graph/digraph.h"

namespace gtpq {

/// A chain decomposition of a DAG: disjoint paths of G covering all
/// nodes. Every node carries a chain id `cid` and a sequence number
/// `sid` increasing along the chain, so that u reaches v whenever
/// u.cid == v.cid and u.sid < v.sid (Section 4.2.1). This is the cover
/// underlying the 3-hop index.
struct ChainCover {
  std::vector<uint32_t> cid_of;
  std::vector<uint32_t> sid_of;
  /// chains[c] lists the member nodes in ascending sid order.
  std::vector<std::vector<NodeId>> chains;

  size_t NumChains() const { return chains.size(); }
};

/// Greedy path decomposition: walk maximal paths in topological order.
/// Not minimum-cardinality (that needs min-flow on the closure), but
/// linear-time and within a small factor on the sparse graphs the
/// benchmarks use. Precondition: `dag` is acyclic and finalized.
ChainCover BuildGreedyChainCover(const Digraph& dag);

/// Validates the three chain-cover invariants (partition, consecutive
/// edges present, sid contiguous). Used by tests and GTPQ_DCHECK builds.
bool ValidateChainCover(const Digraph& dag, const ChainCover& cover);

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_CHAIN_COVER_H_
