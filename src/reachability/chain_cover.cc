#include "reachability/chain_cover.h"

#include "common/logging.h"
#include "graph/algorithms.h"

namespace gtpq {

ChainCover BuildGreedyChainCover(const Digraph& dag) {
  const size_t n = dag.NumNodes();
  ChainCover cover;
  cover.cid_of.assign(n, UINT32_MAX);
  cover.sid_of.assign(n, 0);

  auto order = TopologicalSort(dag);
  GTPQ_CHECK(order.size() == n) << "chain cover requires a DAG";

  // Remaining unassigned in-degree guides the greedy extension: prefer
  // successors that no other chain is likely to claim first.
  std::vector<uint32_t> unassigned_indegree(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    unassigned_indegree[v] = static_cast<uint32_t>(dag.InDegree(v));
  }

  for (NodeId start : order) {
    if (cover.cid_of[start] != UINT32_MAX) continue;
    uint32_t cid = static_cast<uint32_t>(cover.chains.size());
    cover.chains.emplace_back();
    NodeId v = start;
    uint32_t sid = 0;
    for (;;) {
      cover.cid_of[v] = cid;
      cover.sid_of[v] = sid++;
      cover.chains[cid].push_back(v);
      // Pick the unassigned successor with the fewest competing
      // unassigned predecessors.
      NodeId best = kInvalidNode;
      uint32_t best_deg = UINT32_MAX;
      for (NodeId w : dag.OutNeighbors(v)) {
        --unassigned_indegree[w];
        if (cover.cid_of[w] == UINT32_MAX &&
            unassigned_indegree[w] < best_deg) {
          best = w;
          best_deg = unassigned_indegree[w];
        }
      }
      if (best == kInvalidNode) break;
      v = best;
    }
  }
  return cover;
}

bool ValidateChainCover(const Digraph& dag, const ChainCover& cover) {
  const size_t n = dag.NumNodes();
  if (cover.cid_of.size() != n || cover.sid_of.size() != n) return false;
  size_t covered = 0;
  for (uint32_t cid = 0; cid < cover.chains.size(); ++cid) {
    const auto& chain = cover.chains[cid];
    covered += chain.size();
    for (size_t i = 0; i < chain.size(); ++i) {
      NodeId v = chain[i];
      if (cover.cid_of[v] != cid || cover.sid_of[v] != i) return false;
      if (i + 1 < chain.size() && !dag.HasEdge(v, chain[i + 1])) {
        return false;  // consecutive chain nodes must share an edge
      }
    }
  }
  return covered == n;
}

}  // namespace gtpq
