#ifndef GTPQ_REACHABILITY_INDEX_VIEW_H_
#define GTPQ_REACHABILITY_INDEX_VIEW_H_

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

#include "graph/algorithms.h"
#include "reachability/chain_cover.h"

namespace gtpq {

/// The IndexView seam: every reachability backend stores its built
/// state (flat POD arrays, offsets, bitset rows) through the view types
/// below instead of owning std::vectors directly. A view either OWNS a
/// heap vector (indexes built in-process or heap-deserialized from a
/// `file:` load) or BORROWS a span of immutable bytes it does not own
/// (zero-copy `mmap:` loads, where the span points straight into
/// read-only page-faulted mapped memory). Probe paths are identical in
/// both modes — operator[], size(), range-for — so one backend
/// implementation serves both.
///
/// Lifetime contract for borrowed views: the borrowed bytes must outlive
/// the view. The mmap loader (storage/index_io.h,
/// LoadReachabilityIndexView) guarantees this by pinning the mapping on
/// the root oracle (ReachabilityOracle::RetainBuffer), which owns every
/// nested backend the views live in.
template <typename T>
class PodArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "PodArray elements must be raw-byte serializable");

 public:
  PodArray() = default;
  /// Owning view over a built vector (implicit: `view_ = std::move(v)`
  /// keeps Build() code shaped like plain vector assignment).
  PodArray(std::vector<T> owned)  // NOLINT implicit
      : owned_(std::move(owned)), data_(owned_.data()),
        size_(owned_.size()) {}
  /// Borrowing view over immutable external memory (mmap loads).
  static PodArray Borrowed(const T* data, size_t size) {
    PodArray v;
    v.data_ = data;
    v.size_ = size;
    return v;
  }

  // Moves transfer the heap buffer (vector moves are pointer-stable),
  // so `data_` stays valid in both modes; copies are deleted because a
  // member-wise copy would alias the source's heap buffer.
  PodArray(PodArray&& other) noexcept
      : owned_(std::move(other.owned_)), data_(other.data_),
        size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  PodArray& operator=(PodArray&& other) noexcept {
    if (this != &other) {
      owned_ = std::move(other.owned_);
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  PodArray(const PodArray&) = delete;
  PodArray& operator=(const PodArray&) = delete;

  const T& operator[](size_t i) const { return data_[i]; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  const T& back() const { return data_[size_ - 1]; }
  /// True when the elements live in memory the view does not own.
  bool borrowed() const { return size_ != 0 && owned_.empty(); }

 private:
  std::vector<T> owned_;
  const T* data_ = nullptr;
  size_t size_ = 0;
};

/// Ragged counterpart: a fixed outer table of PodArray rows. Owned rows
/// hold their own buffers; borrowed rows all point into one mapped
/// payload, so only the O(#rows) row table itself is heap-allocated on
/// an mmap load — the element data stays on disk until faulted.
template <typename T>
class NestedPodArray {
 public:
  NestedPodArray() = default;
  NestedPodArray(std::vector<std::vector<T>> owned) {  // NOLINT implicit
    rows_.reserve(owned.size());
    for (auto& inner : owned) rows_.emplace_back(std::move(inner));
  }
  explicit NestedPodArray(std::vector<PodArray<T>> rows)
      : rows_(std::move(rows)) {}

  NestedPodArray(NestedPodArray&&) noexcept = default;
  NestedPodArray& operator=(NestedPodArray&&) noexcept = default;
  NestedPodArray(const NestedPodArray&) = delete;
  NestedPodArray& operator=(const NestedPodArray&) = delete;

  const PodArray<T>& operator[](size_t i) const { return rows_[i]; }
  size_t size() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  auto begin() const { return rows_.begin(); }
  auto end() const { return rows_.end(); }

 private:
  std::vector<PodArray<T>> rows_;
};

/// View-typed mirror of graph/algorithms.h's SccResult, with identical
/// field names so backend probe code compiles against either.
struct SccView {
  PodArray<NodeId> component_of;
  size_t num_components = 0;
  PodArray<uint32_t> component_size;
  PodArray<char> cyclic;

  SccView() = default;
  explicit SccView(SccResult&& scc)
      : component_of(std::move(scc.component_of)),
        num_components(scc.num_components),
        component_size(std::move(scc.component_size)),
        cyclic(std::move(scc.cyclic)) {}
};

/// View-typed mirror of reachability/chain_cover.h's ChainCover.
struct ChainCoverView {
  PodArray<uint32_t> cid_of;
  PodArray<uint32_t> sid_of;
  NestedPodArray<NodeId> chains;

  size_t NumChains() const { return chains.size(); }

  ChainCoverView() = default;
  explicit ChainCoverView(ChainCover&& cover)
      : cid_of(std::move(cover.cid_of)), sid_of(std::move(cover.sid_of)),
        chains(std::move(cover.chains)) {}
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_INDEX_VIEW_H_
