#ifndef GTPQ_REACHABILITY_CACHED_ORACLE_H_
#define GTPQ_REACHABILITY_CACHED_ORACLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "reachability/reachability_index.h"

namespace gtpq {

/// Tuning knobs for CachedOracle. One cache of `capacity` entries is
/// kept per probe family (point probes, set probes); each is split into
/// `num_shards` independently locked LRU shards so concurrent workers
/// rarely contend on the same mutex.
struct CachedOracleOptions {
  size_t capacity = 1 << 16;
  size_t num_shards = 8;  // rounded up to a power of two
};

/// A concurrent bool-valued LRU map keyed by uint64, sharded by key
/// hash. Every operation locks exactly one shard; eviction is LRU per
/// shard. Used by CachedOracle but freely reusable.
class ShardedLruCache {
 public:
  ShardedLruCache(size_t capacity, size_t num_shards);
  ~ShardedLruCache();
  ShardedLruCache(const ShardedLruCache&) = delete;
  ShardedLruCache& operator=(const ShardedLruCache&) = delete;

  /// Returns the cached value and bumps its recency; nullopt on miss.
  std::optional<bool> Lookup(uint64_t key);
  /// Inserts or refreshes key -> value, evicting the shard's LRU entry
  /// when the shard is full.
  void Insert(uint64_t key, bool value);
  void Clear();
  /// Current entries across all shards (takes every shard lock).
  size_t Size() const;
  size_t num_shards() const { return num_shards_; }
  size_t capacity() const { return capacity_; }

 private:
  struct Shard;
  size_t ShardOf(uint64_t key) const;

  std::unique_ptr<Shard[]> shards_;
  size_t num_shards_ = 0;
  size_t capacity_ = 0;
};

/// Caching decorator over any ReachabilityOracle: memoizes point
/// probes (from, to) and set probes (node, summary) in sharded LRU
/// caches shared by all serving threads. The inner oracle is immutable
/// and shared; the caches are the only mutable state and are fully
/// synchronized, so a single CachedOracle can back a whole QueryServer
/// pool. Repeated GTPQ batches hitting the same label sets make the
/// point-probe working set highly reusable — hits skip the inner index
/// walk entirely and cost one shard lock.
///
/// Accounting: stats() counts a cache hit or miss per probe
/// (IndexStats::cache_hits / cache_misses); misses additionally
/// accumulate the inner oracle's element lookups, so #index reflects
/// only the work the cache failed to absorb.
///
/// Batched set operations are answered element-wise through the cache
/// (a hit skips the inner probe); summaries wrap the inner oracle's
/// own summaries, so misses still use the backend's native set
/// machinery (e.g. merged contours).
class CachedOracle : public ReachabilityOracle {
 public:
  explicit CachedOracle(std::shared_ptr<const ReachabilityOracle> inner,
                        CachedOracleOptions options = {});

  std::string_view name() const override { return name_; }
  bool Reaches(NodeId from, NodeId to) const override;

  std::unique_ptr<SetSummary> SummarizeTargets(
      std::span<const NodeId> members) const override;
  std::unique_ptr<SetSummary> SummarizeSources(
      std::span<const NodeId> members) const override;
  bool ReachesSet(NodeId from, const SetSummary& targets) const override;
  bool SetReaches(const SetSummary& sources, NodeId to) const override;
  void ReachesSetsBatch(
      std::span<const NodeId> sources,
      std::span<const SetSummary* const> target_sets,
      std::vector<std::vector<char>>* out) const override;
  void SetReachesBatch(const SetSummary& sources,
                       std::span<const NodeId> targets,
                       std::vector<char>* out) const override;
  std::unique_ptr<SetSummary> PrepareSuccessorTargets(
      std::span<const NodeId> targets) const override;
  void SuccessorsAmong(NodeId from, const SetSummary& targets,
                       std::vector<uint32_t>* out) const override;

  const ReachabilityOracle& inner() const { return *inner_; }
  /// Drops every cached probe; inner index is untouched.
  void Clear();
  /// Current cached entries (point + set caches).
  size_t CachedProbes() const;

 private:
  class Summary;

  std::shared_ptr<const ReachabilityOracle> inner_;
  std::string name_;
  mutable ShardedLruCache point_cache_;
  mutable ShardedLruCache set_cache_;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_CACHED_ORACLE_H_
