#ifndef GTPQ_REACHABILITY_CHAIN_COVER_INDEX_H_
#define GTPQ_REACHABILITY_CHAIN_COVER_INDEX_H_

#include <vector>

#include "common/status.h"
#include "graph/algorithms.h"
#include "reachability/chain_cover.h"
#include "reachability/index_view.h"
#include "reachability/reachability_index.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// Chain-cover reachability labeling (Jagadish, TODS'90): the SCC-
/// condensed DAG is decomposed into chains, and every node stores, per
/// chain, the smallest sequence number it reaches on that chain. A
/// probe is then a single table cell: `from` reaches `to` iff
/// first_[from][cid(to)] <= sid(to). Space is O(V * #chains), so this
/// backend suits narrow graphs (few chains); it shares the greedy
/// cover with the 3-hop index but trades list walks for direct cell
/// lookups.
class ChainCoverIndex : public ReachabilityOracle {
 public:
  static ChainCoverIndex Build(const Digraph& g);

  std::string_view name() const override { return "chain_cover"; }

  bool Reaches(NodeId from, NodeId to) const override;

  size_t NumChains() const { return cover_.NumChains(); }
  /// Total non-infinite table cells (index size metric).
  size_t TotalEntries() const { return total_entries_; }

  /// Persistence hooks (storage/index_io.h).
  void SaveBody(storage::Writer* w) const;
  static Result<ChainCoverIndex> LoadBody(storage::Reader* r);

 private:
  ChainCoverIndex() = default;

  static constexpr uint32_t kUnreachable = static_cast<uint32_t>(-1);

  SccView scc_;
  ChainCoverView cover_;  // over the condensation DAG
  /// first_[c][k]: smallest sid on chain k reachable from condensation
  /// node c by a non-empty path (kUnreachable when none).
  NestedPodArray<uint32_t> first_;
  size_t total_entries_ = 0;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_CHAIN_COVER_INDEX_H_
