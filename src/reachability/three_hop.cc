#include "reachability/three_hop.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "storage/index_io.h"

namespace gtpq {

namespace {

// Merges candidate entries into per-chain minima (keep_min) or maxima,
// excluding entries on `own_chain`. Candidates arrive unsorted.
std::vector<ChainPos> CompressEntries(std::vector<ChainPos>* candidates,
                                      uint32_t own_chain, bool keep_min) {
  auto& c = *candidates;
  std::sort(c.begin(), c.end(), [](const ChainPos& a, const ChainPos& b) {
    return a.cid != b.cid ? a.cid < b.cid : a.sid < b.sid;
  });
  std::vector<ChainPos> out;
  for (size_t i = 0; i < c.size();) {
    size_t j = i;
    while (j < c.size() && c[j].cid == c[i].cid) ++j;
    if (c[i].cid != own_chain) {
      out.push_back(keep_min ? c[i] : c[j - 1]);
    }
    i = j;
  }
  return out;
}

// Returns entries of `mine` not already implied by `inherited`:
// for successor lists an entry is implied when the inherited list has an
// entry on the same chain with sid <= mine's (keep_min=true); for
// predecessor lists when it has sid >= mine's.
std::vector<ChainPos> DiffEntries(const std::vector<ChainPos>& mine,
                                  const std::vector<ChainPos>& inherited,
                                  bool keep_min) {
  std::vector<ChainPos> out;
  size_t j = 0;
  for (const ChainPos& e : mine) {
    while (j < inherited.size() && inherited[j].cid < e.cid) ++j;
    bool implied = false;
    if (j < inherited.size() && inherited[j].cid == e.cid) {
      implied = keep_min ? inherited[j].sid <= e.sid
                         : inherited[j].sid >= e.sid;
    }
    if (!implied) out.push_back(e);
  }
  return out;
}

}  // namespace

ThreeHopIndex ThreeHopIndex::Build(const Digraph& g) {
  // Build into plain vectors; the view members wrap (and take ownership
  // of) the finished arrays at the end.
  SccResult scc = ComputeScc(g);
  Digraph cond = BuildCondensation(g, scc);
  const size_t m = cond.NumNodes();
  ChainCover cover = BuildGreedyChainCover(cond);
  std::vector<ChainPos> pos(m);
  for (CondId c = 0; c < m; ++c) {
    pos[c] = ChainPos{cover.cid_of[c], cover.sid_of[c]};
  }
  std::vector<std::vector<ChainPos>> lout(m), lin(m);

  auto order = TopologicalSort(cond);
  GTPQ_CHECK(order.size() == m);

  // ---- Successor entries: reverse-topological sweep. X[v] holds the
  // per-chain minimal positions reachable from v via >= 1 edge (own
  // chain excluded). Lout(v) keeps only entries that improve on the
  // chain successor's X; freed once all in-neighbors are done.
  {
    std::vector<std::vector<ChainPos>> X(m);
    std::vector<uint32_t> remaining_in(m);
    for (CondId v = 0; v < m; ++v) {
      remaining_in[v] = static_cast<uint32_t>(cond.InDegree(v));
    }
    std::vector<ChainPos> scratch;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      CondId v = *it;
      scratch.clear();
      for (NodeId w : cond.OutNeighbors(v)) {
        scratch.push_back(pos[w]);
        scratch.insert(scratch.end(), X[w].begin(), X[w].end());
      }
      X[v] = CompressEntries(&scratch, pos[v].cid, /*keep_min=*/true);

      const uint32_t cid = pos[v].cid;
      const uint32_t sid = pos[v].sid;
      if (sid + 1 < cover.chains[cid].size()) {
        CondId succ = cover.chains[cid][sid + 1];
        lout[v] = DiffEntries(X[v], X[succ], /*keep_min=*/true);
      } else {
        lout[v] = X[v];
      }
      for (NodeId w : cond.OutNeighbors(v)) {
        if (--remaining_in[w] == 0) {
          std::vector<ChainPos>().swap(X[w]);
        }
      }
    }
  }

  // ---- Predecessor entries: topological sweep with per-chain maxima.
  {
    std::vector<std::vector<ChainPos>> Y(m);
    std::vector<uint32_t> remaining_out(m);
    for (CondId v = 0; v < m; ++v) {
      remaining_out[v] = static_cast<uint32_t>(cond.OutDegree(v));
    }
    std::vector<ChainPos> scratch;
    for (CondId v : order) {
      scratch.clear();
      for (NodeId u : cond.InNeighbors(v)) {
        scratch.push_back(pos[u]);
        scratch.insert(scratch.end(), Y[u].begin(), Y[u].end());
      }
      Y[v] = CompressEntries(&scratch, pos[v].cid, /*keep_min=*/false);

      const uint32_t cid = pos[v].cid;
      const uint32_t sid = pos[v].sid;
      if (sid > 0) {
        CondId pred = cover.chains[cid][sid - 1];
        lin[v] = DiffEntries(Y[v], Y[pred], /*keep_min=*/false);
      } else {
        lin[v] = Y[v];
      }
      for (NodeId u : cond.InNeighbors(v)) {
        if (--remaining_out[u] == 0) {
          std::vector<ChainPos>().swap(Y[u]);
        }
      }
    }
  }

  // ---- Tracing pointers.
  std::vector<CondId> next_with_lout(m, kNoCond), prev_with_lin(m, kNoCond);
  for (const auto& chain : cover.chains) {
    CondId last_with_lout = kNoCond;
    for (size_t i = chain.size(); i-- > 0;) {
      CondId c = chain[i];
      next_with_lout[c] = last_with_lout;
      if (!lout[c].empty()) last_with_lout = c;
    }
    CondId last_with_lin = kNoCond;
    for (CondId c : chain) {
      prev_with_lin[c] = last_with_lin;
      if (!lin[c].empty()) last_with_lin = c;
    }
  }

  ThreeHopIndex idx;
  idx.scc_ = SccView(std::move(scc));
  idx.cover_ = ChainCoverView(std::move(cover));
  idx.pos_ = std::move(pos);
  idx.lout_ = NestedPodArray<ChainPos>(std::move(lout));
  idx.lin_ = NestedPodArray<ChainPos>(std::move(lin));
  idx.next_with_lout_ = std::move(next_with_lout);
  idx.prev_with_lin_ = std::move(prev_with_lin);
  for (CondId c = 0; c < m; ++c) {
    idx.total_lout_ += idx.lout_[c].size();
    idx.total_lin_ += idx.lin_[c].size();
  }
  return idx;
}

bool ThreeHopIndex::Reaches(NodeId from, NodeId to) const {
  ++stats().queries;
  CondId cu = CondOf(from);
  CondId cv = CondOf(to);
  if (cu == cv) return CondCyclic(cu);
  ChainPos pu = pos_[cu];
  ChainPos pv = pos_[cv];
  if (pu.cid == pv.cid) return pu.sid < pv.sid;

  // Complete successor list of cu as per-chain minima (plus self).
  // Small maps; queries touch O(|walked lists|) entries.
  std::unordered_map<uint32_t, uint32_t> xmin;
  xmin.emplace(pu.cid, pu.sid);
  ForEachSuccessorEntry(cu, [&xmin](const ChainPos& e) {
    auto [it, inserted] = xmin.emplace(e.cid, e.sid);
    if (!inserted && e.sid < it->second) it->second = e.sid;
    return false;
  });

  // Direct hit on the target's chain.
  auto direct = xmin.find(pv.cid);
  if (direct != xmin.end() && direct->second <= pv.sid) return true;

  // Pair the target's complete predecessor list against the map.
  bool reached = ForEachPredecessorEntry(cv, [&xmin](const ChainPos& e) {
    auto it = xmin.find(e.cid);
    return it != xmin.end() && it->second <= e.sid;
  });
  return reached;
}

void ThreeHopIndex::SaveBody(storage::Writer* w) const {
  storage::SaveSccView(scc_, w);
  storage::SaveChainCoverView(cover_, w);
  storage::WriteFields(w, pos_, lout_, lin_, next_with_lout_,
                       prev_with_lin_, total_lout_, total_lin_);
}

Result<ThreeHopIndex> ThreeHopIndex::LoadBody(storage::Reader* r) {
  ThreeHopIndex idx;
  GTPQ_RETURN_NOT_OK(storage::LoadSccView(r, &idx.scc_));
  GTPQ_RETURN_NOT_OK(storage::LoadChainCoverView(r, &idx.cover_));
  GTPQ_RETURN_NOT_OK(storage::ReadFields(
      r, &idx.pos_, &idx.lout_, &idx.lin_, &idx.next_with_lout_,
      &idx.prev_with_lin_, &idx.total_lout_, &idx.total_lin_));
  const size_t m = idx.pos_.size();
  if (idx.lout_.size() != m || idx.lin_.size() != m ||
      idx.next_with_lout_.size() != m || idx.prev_with_lin_.size() != m) {
    return Status::ParseError("inconsistent three_hop section sizes");
  }
  return idx;
}

}  // namespace gtpq
