#ifndef GTPQ_REACHABILITY_FACTORY_H_
#define GTPQ_REACHABILITY_FACTORY_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "reachability/reachability_index.h"

namespace gtpq {

/// The registered reachability backends. Every backend answers the full
/// ReachabilityOracle API (point + set queries) over arbitrary finalized
/// digraphs; they differ in build cost, space, and per-probe #index.
enum class ReachabilityBackend {
  /// 3-hop chain labeling with merged-contour set operations — the
  /// paper's GTEA configuration and the engine default.
  kContour,
  /// Plain 3-hop chain labeling; set operations fall back to pairwise
  /// point probes (isolates the contour machinery's savings).
  kThreeHop,
  /// OPT-tree-cover interval labeling (Agrawal et al., SIGMOD'89).
  kInterval,
  /// Surrogate & surplus predecessor index of TwigStackD (VLDB'05).
  kSspi,
  /// Chain-cover table labeling (Jagadish, TODS'90).
  kChainCover,
  /// Materialized SCC-condensed closure — the golden oracle.
  kTransitiveClosure,
};

/// All registered backends, in the order above.
std::vector<ReachabilityBackend> AllReachabilityBackends();

/// Canonical lowercase name ("contour", "three_hop", ...).
std::string_view ReachabilityBackendName(ReachabilityBackend kind);

/// Parses a canonical backend name; nullopt for unknown names.
std::optional<ReachabilityBackend> ParseReachabilityBackend(
    std::string_view name);

/// Builds a backend over a finalized digraph (cycles allowed).
std::unique_ptr<ReachabilityOracle> MakeReachabilityIndex(
    ReachabilityBackend kind, const Digraph& g);

/// Spec-string factory — the superset of the enum factory that also
/// understands decorators and persisted indexes:
///   <backend>         a registered base backend name ("contour", ...)
///   cached:<spec>     sharded-LRU probe cache over <spec> (CachedOracle)
///   sharded:<spec>    vertex-partitioned oracle whose per-shard
///                     sub-indexes are built from <spec> (ShardedOracle)
///   delta:<spec>      incremental-maintenance overlay over <spec>
///                     (dynamic/delta_overlay.h): starts from an empty
///                     delta; WithUpdates() snapshots absorb update
///                     batches without rebuilding the inner index.
///                     Uniquely among specs, the built oracle ALIASES
///                     `g` (the search walks its adjacency), so `g`
///                     must outlive it — other backends are
///                     self-contained once built
///   file:<path>       a pre-built index persisted by
///                     storage::SaveReachabilityIndex; rejected (with a
///                     logged warning) unless its stored fingerprint
///                     matches `g`. The loaded oracle's name() is the
///                     spec it was saved under, not "file:...".
///   cluster:<map>[@<ep1,ep2,...>]
///                     scatter-gather router over live `gteactl serve`
///                     shards (cluster/shard_router.h). <map> is a
///                     .gtpqmap written by `gteactl partition`; the
///                     optional @-list overrides the endpoints baked
///                     into it. Rejected unless the map's fingerprint
///                     matches `g` and every shard answers its HELLO.
///                     Needs live servers, so it is not enrolled in
///                     AllReachabilitySpecs().
/// Decorators nest: "cached:sharded:interval" caches a partitioned
/// oracle, "cached:file:idx.gtpqidx" caches a loaded index. file: and
/// cluster: are rejected beneath sharded: and delta: (see
/// IsValidReachabilitySpec).
/// The built oracle's name() equals the spec (file: aside). Returns
/// nullptr for malformed specs and unreadable or mismatched index
/// files.
std::unique_ptr<ReachabilityOracle> MakeReachabilityIndex(
    std::string_view spec, const Digraph& g);

/// True iff MakeReachabilityIndex(spec, g) would succeed.
bool IsValidReachabilitySpec(std::string_view spec);

/// Every spec enrolled in the backend conformance suite: the base
/// backends, each decorator over each base backend, and nested
/// composition witnesses. Any oracle constructible through the factory
/// appears here, so new backends and decorators cannot silently skip
/// conformance.
std::vector<std::string> AllReachabilitySpecs();

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_FACTORY_H_
