#include "reachability/sharded_oracle.h"

#include <algorithm>

#include "common/logging.h"
#include "reachability/factory.h"
#include "storage/index_io.h"

namespace gtpq {

ShardedOracle::ShardedOracle(const Digraph& g, ShardedOracleOptions options)
    : inner_spec_(std::move(options.inner_spec)),
      name_("sharded:" + inner_spec_) {
  GTPQ_CHECK(g.finalized());
  const size_t n = g.NumNodes();
  num_shards_ = std::max<size_t>(
      1, std::min(options.num_shards, std::max<size_t>(n, 1)));

  if (!options.custom_starts.empty()) {
    GTPQ_CHECK(options.custom_starts.size() == num_shards_ + 1)
        << "custom_starts must carry num_shards + 1 cut points";
    GTPQ_CHECK(options.custom_starts.front() == 0 &&
               options.custom_starts.back() == n)
        << "custom_starts must span [0, n)";
    for (size_t s = 0; s < num_shards_; ++s) {
      GTPQ_CHECK(options.custom_starts[s] <= options.custom_starts[s + 1])
          << "custom_starts must be monotone";
    }
    shard_start_ = options.custom_starts;
  } else {
    shard_start_.resize(num_shards_ + 1);
    for (size_t s = 0; s <= num_shards_; ++s) {
      shard_start_[s] = s * n / num_shards_;
    }
  }

  // Boundary vertices: endpoints of shard-crossing edges, in id order.
  boundary_id_.assign(n, kNotBoundary);
  std::vector<char> is_boundary(n, 0);
  for (NodeId v = 0; v < n; ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (ShardOf(v) != ShardOf(w)) {
        cross_edges_.emplace_back(v, w);
        is_boundary[v] = 1;
        is_boundary[w] = 1;
      }
    }
  }
  for (NodeId v = 0; v < n; ++v) {
    if (is_boundary[v]) {
      boundary_id_[v] = static_cast<uint32_t>(boundary_.size());
      boundary_.push_back(v);
    }
  }

  sub_.resize(num_shards_);
  shard_boundaries_.resize(num_shards_);
  shard_overlay_.resize(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) BuildShard(g, s);
  BuildOverlay();
}

size_t ShardedOracle::ShardOf(NodeId v) const {
  // shard_start_ is sorted with shard_start_[0] == 0; find the range
  // containing v. num_shards_ is small, but binary search anyway.
  size_t s = static_cast<size_t>(
      std::upper_bound(shard_start_.begin(), shard_start_.end(),
                       static_cast<size_t>(v)) -
      shard_start_.begin());
  return s - 1;
}

void ShardedOracle::BuildShard(const Digraph& g, size_t shard) {
  const size_t start = shard_start_[shard];
  const size_t end = shard_start_[shard + 1];

  Digraph local(end - start);
  for (NodeId v = start; v < end; ++v) {
    for (NodeId w : g.OutNeighbors(v)) {
      if (w >= start && w < end) {
        local.AddEdge(LocalId(v, shard), LocalId(w, shard));
      }
    }
  }
  local.Finalize();
  sub_[shard] = MakeReachabilityIndex(inner_spec_, local);
  GTPQ_CHECK(sub_[shard] != nullptr);

  auto& bs = shard_boundaries_[shard];
  bs.clear();
  for (NodeId v = start; v < end; ++v) {
    if (boundary_id_[v] != kNotBoundary) bs.push_back(boundary_id_[v]);
  }

  // Overlay contribution: intra-shard reachability between this shard's
  // boundary vertices. The diagonal (b -> b on an intra-shard cycle)
  // matters: it turns into an overlay self-loop so the closure keeps
  // the cyclic-self-reachability semantics.
  auto& overlay = shard_overlay_[shard];
  overlay.clear();
  for (uint32_t b1 : bs) {
    const NodeId l1 = LocalId(boundary_[b1], shard);
    for (uint32_t b2 : bs) {
      if (sub_[shard]->Reaches(l1, LocalId(boundary_[b2], shard))) {
        overlay.emplace_back(b1, b2);
      }
    }
  }
}

void ShardedOracle::BuildOverlay() {
  Digraph overlay(boundary_.size());
  for (const auto& [x, y] : cross_edges_) {
    overlay.AddEdge(boundary_id_[x], boundary_id_[y]);
  }
  for (const auto& shard_edges : shard_overlay_) {
    for (const auto& [b1, b2] : shard_edges) overlay.AddEdge(b1, b2);
  }
  overlay.Finalize();
  overlay_closure_ =
      std::make_unique<TransitiveClosure>(TransitiveClosure::Build(overlay));
}

void ShardedOracle::RebuildShard(const Digraph& g, size_t shard) {
  GTPQ_CHECK(shard < num_shards_);
  GTPQ_CHECK(g.NumNodes() == boundary_id_.size());
  BuildShard(g, shard);
  BuildOverlay();
}

bool ShardedOracle::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;

  // Delta-samples a sub-oracle probe so #index aggregates the work of
  // whichever labelings the routed query actually touched.
  auto probe = [&st](const ReachabilityOracle& oracle, NodeId a,
                     NodeId b) {
    const uint64_t before = oracle.stats().elements_looked_up;
    const bool r = oracle.Reaches(a, b);
    st.elements_looked_up += oracle.stats().elements_looked_up - before;
    return r;
  };

  const size_t su = ShardOf(from);
  const size_t sv = ShardOf(to);
  const NodeId lu = LocalId(from, su);
  const NodeId lv = LocalId(to, sv);
  if (su == sv && probe(*sub_[su], lu, lv)) return true;
  if (boundary_.empty()) return false;

  // Boundary exits of `from`: boundaries of its shard it reaches
  // intra-shard, plus itself (zero-length exit) when it is one.
  ProbeScratch& scratch = scratch_.Local();
  std::vector<uint32_t>& exits = scratch.exits;
  exits.clear();
  for (uint32_t b : shard_boundaries_[su]) {
    if (boundary_[b] == from || probe(*sub_[su], lu, LocalId(boundary_[b], su))) {
      exits.push_back(b);
    }
  }
  if (exits.empty()) return false;

  std::vector<uint32_t>& entries = scratch.entries;
  entries.clear();
  for (uint32_t b : shard_boundaries_[sv]) {
    if (boundary_[b] == to || probe(*sub_[sv], LocalId(boundary_[b], sv), lv)) {
      entries.push_back(b);
    }
  }
  if (entries.empty()) return false;

  for (uint32_t b1 : exits) {
    for (uint32_t b2 : entries) {
      if (probe(*overlay_closure_, b1, b2)) return true;
    }
  }
  return false;
}

namespace {

// std::pair is not trivially copyable under libstdc++, so pair vectors
// are flattened to interleaved u32 runs for the pod-vector codec.
std::vector<uint32_t> FlattenPairs(
    const std::vector<std::pair<uint32_t, uint32_t>>& pairs) {
  std::vector<uint32_t> flat;
  flat.reserve(pairs.size() * 2);
  for (const auto& [a, b] : pairs) {
    flat.push_back(a);
    flat.push_back(b);
  }
  return flat;
}

Status UnflattenPairs(std::vector<uint32_t> flat,
                      std::vector<std::pair<uint32_t, uint32_t>>* out) {
  if (flat.size() % 2 != 0) {
    return Status::ParseError("odd-length pair run in sharded section");
  }
  out->clear();
  out->reserve(flat.size() / 2);
  for (size_t i = 0; i < flat.size(); i += 2) {
    out->emplace_back(flat[i], flat[i + 1]);
  }
  return Status::OK();
}

}  // namespace

void ShardedOracle::SaveBody(storage::Writer* w) const {
  w->WriteU64(num_shards_);
  w->WriteString(inner_spec_);
  std::vector<uint64_t> starts(shard_start_.begin(), shard_start_.end());
  w->WritePodVec(starts);
  w->WritePodVec(boundary_);
  w->WritePodVec(boundary_id_);
  w->WriteNestedVec(shard_boundaries_);
  w->WritePodVec(FlattenPairs(cross_edges_));
  w->WriteU64(shard_overlay_.size());
  for (const auto& overlay : shard_overlay_) {
    w->WritePodVec(FlattenPairs(overlay));
  }
  overlay_closure_->SaveBody(w);
  for (const auto& sub : sub_) {
    // Sub-indexes were built through the factory, so this dispatch
    // cannot hit an unknown spec.
    GTPQ_CHECK(storage::SaveOracleBody(*sub, w).ok());
  }
}

Result<std::unique_ptr<ShardedOracle>> ShardedOracle::LoadBody(
    storage::Reader* r) {
  auto oracle = std::unique_ptr<ShardedOracle>(new ShardedOracle());
  uint64_t num_shards = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&num_shards));
  oracle->num_shards_ = static_cast<size_t>(num_shards);
  GTPQ_RETURN_NOT_OK(r->ReadString(&oracle->inner_spec_));
  oracle->name_ = "sharded:" + oracle->inner_spec_;
  std::vector<uint64_t> starts;
  GTPQ_RETURN_NOT_OK(r->ReadPodVec(&starts));
  oracle->shard_start_.assign(starts.begin(), starts.end());
  GTPQ_RETURN_NOT_OK(r->ReadPodVec(&oracle->boundary_));
  GTPQ_RETURN_NOT_OK(r->ReadPodVec(&oracle->boundary_id_));
  GTPQ_RETURN_NOT_OK(r->ReadNestedVec(&oracle->shard_boundaries_));
  std::vector<uint32_t> flat;
  GTPQ_RETURN_NOT_OK(r->ReadPodVec(&flat));
  GTPQ_RETURN_NOT_OK(UnflattenPairs(std::move(flat), &oracle->cross_edges_));
  uint64_t num_overlays = 0;
  GTPQ_RETURN_NOT_OK(r->ReadU64(&num_overlays));
  if (num_overlays != num_shards) {
    return Status::ParseError("sharded section overlay count mismatch");
  }
  oracle->shard_overlay_.resize(static_cast<size_t>(num_overlays));
  for (auto& overlay : oracle->shard_overlay_) {
    flat.clear();
    GTPQ_RETURN_NOT_OK(r->ReadPodVec(&flat));
    GTPQ_RETURN_NOT_OK(UnflattenPairs(std::move(flat), &overlay));
  }
  auto closure = TransitiveClosure::LoadBody(r);
  GTPQ_RETURN_NOT_OK(closure.status());
  oracle->overlay_closure_ =
      std::make_unique<TransitiveClosure>(closure.TakeValue());
  if (oracle->num_shards_ == 0 ||
      oracle->shard_start_.size() != oracle->num_shards_ + 1 ||
      oracle->shard_boundaries_.size() != oracle->num_shards_) {
    return Status::ParseError("inconsistent sharded section layout");
  }
  oracle->sub_.resize(oracle->num_shards_);
  for (auto& sub : oracle->sub_) {
    auto loaded = storage::LoadOracleBody(oracle->inner_spec_, r);
    GTPQ_RETURN_NOT_OK(loaded.status());
    sub = loaded.TakeValue();
  }
  return oracle;
}

}  // namespace gtpq
