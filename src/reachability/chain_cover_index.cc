#include "reachability/chain_cover_index.h"

#include <algorithm>

#include "common/logging.h"
#include "storage/index_io.h"

namespace gtpq {

ChainCoverIndex ChainCoverIndex::Build(const Digraph& g) {
  SccResult scc = ComputeScc(g);
  Digraph cond = BuildCondensation(g, scc);
  ChainCover cover = BuildGreedyChainCover(cond);

  const size_t n = cond.NumNodes();
  const size_t k = cover.NumChains();
  std::vector<std::vector<uint32_t>> first(
      n, std::vector<uint32_t>(k, kUnreachable));

  // Reverse topological sweep: a node reaches whatever its successors
  // reach, plus the successors themselves (non-empty paths only, so a
  // node never contributes its own position).
  auto order = TopologicalSort(cond);
  GTPQ_CHECK(order.size() == n);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const NodeId c = *it;
    auto& row = first[c];
    for (NodeId d : cond.OutNeighbors(c)) {
      const uint32_t dcid = cover.cid_of[d];
      const uint32_t dsid = cover.sid_of[d];
      row[dcid] = std::min(row[dcid], dsid);
      const auto& drow = first[d];
      for (size_t i = 0; i < k; ++i) {
        row[i] = std::min(row[i], drow[i]);
      }
    }
  }
  ChainCoverIndex idx;
  idx.scc_ = SccView(std::move(scc));
  idx.cover_ = ChainCoverView(std::move(cover));
  idx.first_ = NestedPodArray<uint32_t>(std::move(first));
  for (const auto& row : idx.first_) {
    for (uint32_t cell : row) {
      if (cell != kUnreachable) ++idx.total_entries_;
    }
  }
  return idx;
}

bool ChainCoverIndex::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  const NodeId cu = scc_.component_of[from];
  const NodeId cv = scc_.component_of[to];
  if (cu == cv) return scc_.cyclic[cu];
  ++st.elements_looked_up;  // one table cell
  return first_[cu][cover_.cid_of[cv]] <= cover_.sid_of[cv];
}

void ChainCoverIndex::SaveBody(storage::Writer* w) const {
  storage::SaveSccView(scc_, w);
  storage::SaveChainCoverView(cover_, w);
  storage::WriteFields(w, first_, total_entries_);
}

Result<ChainCoverIndex> ChainCoverIndex::LoadBody(storage::Reader* r) {
  ChainCoverIndex idx;
  GTPQ_RETURN_NOT_OK(storage::LoadSccView(r, &idx.scc_));
  GTPQ_RETURN_NOT_OK(storage::LoadChainCoverView(r, &idx.cover_));
  GTPQ_RETURN_NOT_OK(storage::ReadFields(r, &idx.first_,
                                         &idx.total_entries_));
  if (idx.first_.size() != idx.cover_.cid_of.size()) {
    return Status::ParseError("inconsistent chain_cover section sizes");
  }
  return idx;
}

}  // namespace gtpq
