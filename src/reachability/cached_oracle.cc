#include "reachability/cached_oracle.h"

#include <atomic>
#include <limits>
#include <list>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "obs/metrics.h"

namespace gtpq {

namespace {

/// Process-wide fold of every CachedOracle's hit/miss counters into the
/// metrics registry (the per-instance IndexStats stay thread-confined).
struct CacheMetrics {
  obs::Counter* hits;
  obs::Counter* misses;

  static const CacheMetrics& Get() {
    static const CacheMetrics m = [] {
      obs::Registry& reg = obs::Registry::Global();
      return CacheMetrics{reg.GetCounter("gtpq_oracle_cache_hits_total"),
                          reg.GetCounter("gtpq_oracle_cache_misses_total")};
    }();
    return m;
  }
};

// splitmix64 finalizer: spreads packed (from, to) keys across shards.
inline uint64_t MixKey(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline uint64_t PointKey(NodeId from, NodeId to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

// Set-probe keys pack a 32-bit summary id with the probed node. Ids
// are handed out process-wide; a summary past the 32-bit range simply
// probes uncached (unreachable in practice).
inline bool SetKey(uint64_t summary_id, NodeId node, uint64_t* key) {
  if (summary_id > std::numeric_limits<uint32_t>::max()) return false;
  *key = (summary_id << 32) | node;
  return true;
}

uint64_t NextSummaryId() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

// ------------------------------------------------------ ShardedLruCache

struct ShardedLruCache::Shard {
  using Entry = std::pair<uint64_t, bool>;

  std::mutex mu;
  size_t capacity = 1;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<uint64_t, std::list<Entry>::iterator> map;
};

ShardedLruCache::ShardedLruCache(size_t capacity, size_t num_shards) {
  num_shards_ = 1;
  while (num_shards_ < num_shards) num_shards_ <<= 1;
  capacity_ = capacity < num_shards_ ? num_shards_ : capacity;
  shards_ = std::make_unique<Shard[]>(num_shards_);
  const size_t per_shard = capacity_ / num_shards_;
  for (size_t s = 0; s < num_shards_; ++s) shards_[s].capacity = per_shard;
}

ShardedLruCache::~ShardedLruCache() = default;

size_t ShardedLruCache::ShardOf(uint64_t key) const {
  return MixKey(key) & (num_shards_ - 1);
}

std::optional<bool> ShardedLruCache::Lookup(uint64_t key) {
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) return std::nullopt;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->second;
}

void ShardedLruCache::Insert(uint64_t key, bool value) {
  Shard& shard = shards_[ShardOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, value);
  shard.map.emplace(key, shard.lru.begin());
  if (shard.map.size() > shard.capacity) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
  }
}

void ShardedLruCache::Clear() {
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.clear();
    shard.lru.clear();
  }
}

size_t ShardedLruCache::Size() const {
  size_t total = 0;
  for (size_t s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

// --------------------------------------------------------- CachedOracle

/// Wraps the inner oracle's summary with a process-unique id that keys
/// the set-probe cache. Valid only with the CachedOracle that made it,
/// mirroring the base-class contract.
class CachedOracle::Summary : public ReachabilityOracle::SetSummary {
 public:
  explicit Summary(std::unique_ptr<SetSummary> inner)
      : inner_(std::move(inner)), id_(NextSummaryId()) {}

  const SetSummary& inner() const { return *inner_; }
  uint64_t id() const { return id_; }

 private:
  std::unique_ptr<SetSummary> inner_;
  uint64_t id_;
};

CachedOracle::CachedOracle(std::shared_ptr<const ReachabilityOracle> inner,
                           CachedOracleOptions options)
    : inner_(std::move(inner)),
      name_("cached:" + std::string(inner_->name())),
      point_cache_(options.capacity, options.num_shards),
      set_cache_(options.capacity, options.num_shards) {}

bool CachedOracle::Reaches(NodeId from, NodeId to) const {
  IndexStats& st = stats();
  ++st.queries;
  const uint64_t key = PointKey(from, to);
  if (auto hit = point_cache_.Lookup(key)) {
    ++st.cache_hits;
    CacheMetrics::Get().hits->Add();
    return *hit;
  }
  ++st.cache_misses;
  CacheMetrics::Get().misses->Add();
  const uint64_t before = inner_->stats().elements_looked_up;
  const bool reaches = inner_->Reaches(from, to);
  st.elements_looked_up += inner_->stats().elements_looked_up - before;
  point_cache_.Insert(key, reaches);
  return reaches;
}

std::unique_ptr<ReachabilityOracle::SetSummary> CachedOracle::SummarizeTargets(
    std::span<const NodeId> members) const {
  return std::make_unique<Summary>(inner_->SummarizeTargets(members));
}

std::unique_ptr<ReachabilityOracle::SetSummary> CachedOracle::SummarizeSources(
    std::span<const NodeId> members) const {
  return std::make_unique<Summary>(inner_->SummarizeSources(members));
}

bool CachedOracle::ReachesSet(NodeId from, const SetSummary& targets) const {
  const Summary& summary = static_cast<const Summary&>(targets);
  IndexStats& st = stats();
  ++st.queries;
  uint64_t key = 0;
  const bool cacheable = SetKey(summary.id(), from, &key);
  if (cacheable) {
    if (auto hit = set_cache_.Lookup(key)) {
      ++st.cache_hits;
      CacheMetrics::Get().hits->Add();
      return *hit;
    }
  }
  ++st.cache_misses;
  CacheMetrics::Get().misses->Add();
  const uint64_t before = inner_->stats().elements_looked_up;
  const bool reaches = inner_->ReachesSet(from, summary.inner());
  st.elements_looked_up += inner_->stats().elements_looked_up - before;
  if (cacheable) set_cache_.Insert(key, reaches);
  return reaches;
}

bool CachedOracle::SetReaches(const SetSummary& sources, NodeId to) const {
  const Summary& summary = static_cast<const Summary&>(sources);
  IndexStats& st = stats();
  ++st.queries;
  uint64_t key = 0;
  const bool cacheable = SetKey(summary.id(), to, &key);
  if (cacheable) {
    if (auto hit = set_cache_.Lookup(key)) {
      ++st.cache_hits;
      CacheMetrics::Get().hits->Add();
      return *hit;
    }
  }
  ++st.cache_misses;
  CacheMetrics::Get().misses->Add();
  const uint64_t before = inner_->stats().elements_looked_up;
  const bool reaches = inner_->SetReaches(summary.inner(), to);
  st.elements_looked_up += inner_->stats().elements_looked_up - before;
  if (cacheable) set_cache_.Insert(key, reaches);
  return reaches;
}

void CachedOracle::ReachesSetsBatch(
    std::span<const NodeId> sources,
    std::span<const SetSummary* const> target_sets,
    std::vector<std::vector<char>>* out) const {
  out->assign(target_sets.size(), std::vector<char>(sources.size(), 0));
  for (size_t k = 0; k < target_sets.size(); ++k) {
    auto& mask = (*out)[k];
    for (size_t i = 0; i < sources.size(); ++i) {
      mask[i] = ReachesSet(sources[i], *target_sets[k]) ? 1 : 0;
    }
  }
}

void CachedOracle::SetReachesBatch(const SetSummary& sources,
                                   std::span<const NodeId> targets,
                                   std::vector<char>* out) const {
  out->assign(targets.size(), 0);
  for (size_t i = 0; i < targets.size(); ++i) {
    (*out)[i] = SetReaches(sources, targets[i]) ? 1 : 0;
  }
}

std::unique_ptr<ReachabilityOracle::SetSummary>
CachedOracle::PrepareSuccessorTargets(std::span<const NodeId> targets) const {
  return std::make_unique<Summary>(inner_->PrepareSuccessorTargets(targets));
}

void CachedOracle::SuccessorsAmong(NodeId from, const SetSummary& targets,
                                   std::vector<uint32_t>* out) const {
  // Scans return index vectors, which the bool cache cannot hold;
  // delegate and account the inner walk.
  IndexStats& st = stats();
  const uint64_t before = inner_->stats().elements_looked_up;
  inner_->SuccessorsAmong(from, static_cast<const Summary&>(targets).inner(), out);
  st.elements_looked_up += inner_->stats().elements_looked_up - before;
}

void CachedOracle::Clear() {
  point_cache_.Clear();
  set_cache_.Clear();
}

size_t CachedOracle::CachedProbes() const {
  return point_cache_.Size() + set_cache_.Size();
}

}  // namespace gtpq
