#ifndef GTPQ_REACHABILITY_TRANSITIVE_CLOSURE_H_
#define GTPQ_REACHABILITY_TRANSITIVE_CLOSURE_H_

#include <vector>

#include "common/status.h"
#include "graph/algorithms.h"
#include "reachability/index_view.h"
#include "reachability/reachability_index.h"

namespace gtpq {

namespace storage {
class Writer;
class Reader;
}  // namespace storage

/// Full materialized transitive closure over SCC-condensed bitset rows.
/// Quadratic space — usable up to a few tens of thousands of nodes. It
/// is the golden oracle every other index is property-tested against,
/// and the substrate of the brute-force query evaluator.
class TransitiveClosure : public ReachabilityOracle {
 public:
  /// Builds from a finalized graph (cycles allowed).
  static TransitiveClosure Build(const Digraph& g);

  std::string_view name() const override { return "transitive_closure"; }

  bool Reaches(NodeId from, NodeId to) const override;

  size_t NumNodes() const { return scc_.component_of.size(); }

  /// Persistence hooks (storage/index_io.h).
  void SaveBody(storage::Writer* w) const;
  static Result<TransitiveClosure> LoadBody(storage::Reader* r);

 private:
  TransitiveClosure() = default;

  bool CondReaches(NodeId cu, NodeId cv) const {
    return (rows_[cu][cv >> 6] >> (cv & 63)) & 1;
  }

  SccView scc_;
  size_t words_per_row_ = 0;
  NestedPodArray<uint64_t> rows_;  // per condensation node
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_TRANSITIVE_CLOSURE_H_
