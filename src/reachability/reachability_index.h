#ifndef GTPQ_REACHABILITY_REACHABILITY_INDEX_H_
#define GTPQ_REACHABILITY_REACHABILITY_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "common/per_thread.h"
#include "common/status.h"
#include "graph/digraph.h"

namespace gtpq {

struct UpdateBatch;  // dynamic/graph_delta.h

/// Counters kept by all reachability indexes, feeding the #index
/// metric of the paper's I/O-cost experiment (Fig 10). Each thread
/// accumulates into its own private copy (see ReachabilityOracle::
/// stats()), so the counters stay per-query even when one oracle
/// serves a whole thread pool.
struct IndexStats {
  /// Index elements (list entries, intervals, surplus links) visited.
  uint64_t elements_looked_up = 0;
  /// Point reachability queries answered.
  uint64_t queries = 0;
  /// Probes answered from / missed by a caching decorator wrapping this
  /// oracle (CachedOracle); zero for plain backends.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  void Reset() { *this = IndexStats(); }
};

/// Abstract ancestor-descendant oracle. Semantics follow Section 2
/// exactly: Reaches(u, v) is true iff there is a path of length >= 1
/// from u to v; hence Reaches(v, v) holds only when v lies on a cycle.
///
/// Beyond the point query, the oracle exposes the set-reachability
/// operations GTEA's pipeline is built on (candidate pruning and
/// maximal-matching-graph construction): summarize a node set once,
/// then probe many nodes against it. Every operation has a pairwise
/// default in terms of Reaches(), so any index that answers point
/// queries qualifies as a GTEA backend; indexes with a native batched
/// representation (e.g. the merged contours of Section 4.2.1 over the
/// 3-hop index) override them.
///
/// Concurrency contract (intra-query parallelism relies on it): the
/// oracle and every SetSummary are immutable once constructed, so any
/// number of threads may issue probes concurrently — including probes
/// against the same shared summary — without external locking.
/// Implementations keep mutable probe scratch and the IndexStats
/// counters in thread-confined PerThread slots (decorators with shared
/// caches must do their own internal locking).
class ReachabilityOracle {
 public:
  /// Opaque per-oracle summary of a node set, produced by one of the
  /// Summarize*/Prepare* factories below. A summary must only be passed
  /// back to the oracle that created it, and only to the probe matching
  /// the factory it came from (targets -> ReachesSet/ReachesSetsBatch,
  /// sources -> SetReaches/SetReachesBatch, successor targets ->
  /// SuccessorsAmong).
  class SetSummary {
   public:
    virtual ~SetSummary() = default;
  };

  virtual ~ReachabilityOracle() = default;

  /// Short machine-readable backend name ("three_hop", "contour", ...).
  virtual std::string_view name() const = 0;

  /// True iff a non-empty path leads from `from` to `to`.
  virtual bool Reaches(NodeId from, NodeId to) const = 0;

  // --- Set-reachability API ---------------------------------------------

  /// Summarizes `members` for repeated "does v reach the set?" probes.
  virtual std::unique_ptr<SetSummary> SummarizeTargets(
      std::span<const NodeId> members) const;
  /// Summarizes `members` for repeated "does the set reach v?" probes.
  virtual std::unique_ptr<SetSummary> SummarizeSources(
      std::span<const NodeId> members) const;

  /// Does `from` reach (non-empty path) at least one member of the
  /// summarized target set?
  virtual bool ReachesSet(NodeId from, const SetSummary& targets) const;
  /// Does at least one member of the summarized source set reach `to`?
  virtual bool SetReaches(const SetSummary& sources, NodeId to) const;

  /// Batched downward probe: for every source i and target set k, does
  /// sources[i] reach a member of *target_sets[k]? Fills
  /// (*out)[k][i]. Evaluating all sets jointly lets chain-structured
  /// backends share one index walk across sets (Procedure 6).
  virtual void ReachesSetsBatch(
      std::span<const NodeId> sources,
      std::span<const SetSummary* const> target_sets,
      std::vector<std::vector<char>>* out) const;

  /// Batched upward probe: (*out)[i] = does some summarized source
  /// reach targets[i]? (Procedure 7's refinement step.)
  virtual void SetReachesBatch(const SetSummary& sources,
                               std::span<const NodeId> targets,
                               std::vector<char>* out) const;

  /// Prepares a *sorted* target list for repeated SuccessorsAmong
  /// scans (one scan per source when building the matching graph).
  virtual std::unique_ptr<SetSummary> PrepareSuccessorTargets(
      std::span<const NodeId> targets) const;
  /// Appends to `out`, in ascending order, the indices i (into the
  /// prepared target list) with Reaches(from, targets[i]).
  virtual void SuccessorsAmong(NodeId from, const SetSummary& targets,
                               std::vector<uint32_t>* out) const;

  // --- Native updates ---------------------------------------------------

  /// True when this oracle can fold an UpdateBatch into itself without
  /// being wrapped in a DeltaOverlayOracle. The epoch-snapshot update
  /// path (SharedEngineFactory::ApplyUpdates) prefers this route: the
  /// SAME oracle instance keeps serving across epochs, re-based onto
  /// each snapshot's materialized graph. Stateless index backends stay
  /// `false`; distributed front-ends (cluster ShardRouter) say `true`
  /// because their authoritative state lives in remote shard processes.
  virtual bool SupportsNativeUpdates() const { return false; }

  /// Applies `batch` in place. Only called when SupportsNativeUpdates()
  /// is true; `const` because oracles are shared as
  /// shared_ptr<const> — implementations synchronize internally and
  /// must keep concurrent Reaches() probes answering consistently
  /// (before-state or after-state, never a mix).
  virtual Status ApplyNativeUpdate(const UpdateBatch& batch) const {
    (void)batch;
    return Status::Unimplemented(std::string(name()) +
                                 " does not support native updates");
  }

  /// The calling thread's private counter slot for this oracle. Oracles
  /// are immutable once built and shared read-only across query-serving
  /// threads; confining the counters to the probing thread keeps every
  /// Evaluate's reset-probe-read cycle data-race-free without locking
  /// the hot path. Readers must aggregate on the thread that probed.
  IndexStats& stats() const { return stats_slot_.Local(); }

  /// Pins an external buffer (e.g. a read-only file mapping) for this
  /// oracle's lifetime. Zero-copy loaders call this on the root oracle
  /// of a loaded index so that flat-array views borrowed from the
  /// buffer outlive every probe; the root owns all nested sub-indexes,
  /// so one pin covers the whole decorator chain.
  void RetainBuffer(std::shared_ptr<const void> buffer) {
    retained_buffers_.push_back(std::move(buffer));
  }

 private:
  PerThread<IndexStats> stats_slot_;
  std::vector<std::shared_ptr<const void>> retained_buffers_;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_REACHABILITY_INDEX_H_
