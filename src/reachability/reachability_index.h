#ifndef GTPQ_REACHABILITY_REACHABILITY_INDEX_H_
#define GTPQ_REACHABILITY_REACHABILITY_INDEX_H_

#include <cstdint>

#include "graph/digraph.h"

namespace gtpq {

/// Counters shared by all reachability indexes, feeding the #index
/// metric of the paper's I/O-cost experiment (Fig 10).
struct IndexStats {
  /// Index elements (list entries, intervals, surplus links) visited.
  uint64_t elements_looked_up = 0;
  /// Point reachability queries answered.
  uint64_t queries = 0;

  void Reset() { *this = IndexStats(); }
};

/// Abstract ancestor-descendant oracle. Semantics follow Section 2
/// exactly: Reaches(u, v) is true iff there is a path of length >= 1
/// from u to v; hence Reaches(v, v) holds only when v lies on a cycle.
class ReachabilityOracle {
 public:
  virtual ~ReachabilityOracle() = default;

  /// True iff a non-empty path leads from `from` to `to`.
  virtual bool Reaches(NodeId from, NodeId to) const = 0;

  IndexStats& stats() const { return stats_; }

 protected:
  mutable IndexStats stats_;
};

}  // namespace gtpq

#endif  // GTPQ_REACHABILITY_REACHABILITY_INDEX_H_
