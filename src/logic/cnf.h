#ifndef GTPQ_LOGIC_CNF_H_
#define GTPQ_LOGIC_CNF_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"

namespace gtpq {
namespace logic {

/// A literal: positive (var, false) or negated (var, true).
struct Literal {
  int var;
  bool negated;
  bool operator==(const Literal& o) const {
    return var == o.var && negated == o.negated;
  }
  bool operator<(const Literal& o) const {
    return var != o.var ? var < o.var : negated < o.negated;
  }
};

/// A clause is a disjunction of literals; a cube a conjunction.
using Clause = std::vector<Literal>;

/// Conjunctive normal form: AND of clauses. `always_false` marks the
/// degenerate empty-clause case; an empty clause list means "true".
struct Cnf {
  std::vector<Clause> clauses;
  int max_var = -1;

  size_t NumClauses() const { return clauses.size(); }
  size_t NumLiterals() const;
};

/// Disjunctive normal form: OR of cubes. An empty cube list means
/// "false"; an empty cube means "true".
struct Dnf {
  std::vector<Clause> cubes;
};

/// Textbook distribution-based CNF conversion (worst-case exponential —
/// this is exactly the cost the paper attributes to OR-block construction
/// in AND/OR-twigs / B-twigs; exercised by the ablation bench).
Cnf ToCnfByDistribution(const FormulaRef& f);

/// Distribution-based DNF conversion. Used by the decompose-and-merge
/// baseline to expand a GTPQ into conjunctive TPQs. Cubes containing a
/// complementary pair are dropped.
Dnf ToDnfByDistribution(const FormulaRef& f);

/// Tseitin transformation: equisatisfiable CNF, linear size. Fresh
/// variables are allocated starting at `first_aux_var`, which must exceed
/// every variable in f. Returns the CNF plus the root literal which is
/// asserted as a unit clause.
Cnf TseitinTransform(const FormulaRef& f, int first_aux_var);

/// Rebuilds a Formula from a CNF/DNF (for round-trip testing).
FormulaRef CnfToFormula(const Cnf& cnf);
FormulaRef DnfToFormula(const Dnf& dnf);

}  // namespace logic
}  // namespace gtpq

#endif  // GTPQ_LOGIC_CNF_H_
