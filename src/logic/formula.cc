#include "logic/formula.h"

#include <algorithm>
#include <cctype>
#include <set>

#include "common/logging.h"

namespace gtpq {
namespace logic {

FormulaRef MakeNode(Kind kind, bool value, int var,
                    std::vector<FormulaRef> children) {
  return FormulaRef(new Formula(kind, value, var, std::move(children)));
}

FormulaRef Formula::True() {
  static const FormulaRef kTrue = MakeNode(Kind::kConst, true, -1, {});
  return kTrue;
}

FormulaRef Formula::False() {
  static const FormulaRef kFalse = MakeNode(Kind::kConst, false, -1, {});
  return kFalse;
}

FormulaRef Formula::Var(int id) {
  GTPQ_CHECK(id >= 0) << "variable ids must be non-negative, got " << id;
  return MakeNode(Kind::kVar, false, id, {});
}

FormulaRef Formula::Not(const FormulaRef& f) {
  GTPQ_CHECK(f != nullptr);
  if (f->is_const()) return Const(!f->value());
  if (f->kind() == Kind::kNot) return f->children()[0];
  return MakeNode(Kind::kNot, false, -1, {f});
}

namespace {

// Shared n-ary builder for AND (dominant=false) and OR (dominant=true).
FormulaRef MakeNary(Kind kind, std::vector<FormulaRef> children) {
  const bool dominant = (kind == Kind::kOr);
  std::vector<FormulaRef> flat;
  flat.reserve(children.size());
  for (auto& c : children) {
    GTPQ_CHECK(c != nullptr);
    if (c->is_const()) {
      if (c->value() == dominant) return Formula::Const(dominant);
      continue;  // neutral element
    }
    if (c->kind() == kind) {
      for (const auto& gc : c->children()) flat.push_back(gc);
    } else {
      flat.push_back(c);
    }
  }
  // Deduplicate structurally equal children (small lists; quadratic OK).
  std::vector<FormulaRef> dedup;
  for (const auto& c : flat) {
    bool seen = false;
    for (const auto& d : dedup) {
      if (StructurallyEqual(c, d)) {
        seen = true;
        break;
      }
    }
    if (!seen) dedup.push_back(c);
  }
  if (dedup.empty()) return Formula::Const(!dominant);
  if (dedup.size() == 1) return dedup[0];
  return MakeNode(kind, false, -1, std::move(dedup));
}

}  // namespace

FormulaRef Formula::And(std::vector<FormulaRef> children) {
  return MakeNary(Kind::kAnd, std::move(children));
}

FormulaRef Formula::Or(std::vector<FormulaRef> children) {
  return MakeNary(Kind::kOr, std::move(children));
}

FormulaRef Formula::And(const FormulaRef& a, const FormulaRef& b) {
  return And(std::vector<FormulaRef>{a, b});
}

FormulaRef Formula::Or(const FormulaRef& a, const FormulaRef& b) {
  return Or(std::vector<FormulaRef>{a, b});
}

FormulaRef Formula::Implies(const FormulaRef& a, const FormulaRef& b) {
  return Or(Not(a), b);
}

FormulaRef Formula::Xor(const FormulaRef& a, const FormulaRef& b) {
  return Or(And(a, Not(b)), And(Not(a), b));
}

bool StructurallyEqual(const FormulaRef& a, const FormulaRef& b) {
  if (a.get() == b.get()) return true;
  if (a->kind() != b->kind()) return false;
  switch (a->kind()) {
    case Kind::kConst:
      return a->value() == b->value();
    case Kind::kVar:
      return a->var() == b->var();
    case Kind::kNot:
      return StructurallyEqual(a->children()[0], b->children()[0]);
    case Kind::kAnd:
    case Kind::kOr: {
      if (a->children().size() != b->children().size()) return false;
      for (size_t i = 0; i < a->children().size(); ++i) {
        if (!StructurallyEqual(a->children()[i], b->children()[i])) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

bool Evaluate(const FormulaRef& f,
              const std::function<bool(int)>& assignment) {
  switch (f->kind()) {
    case Kind::kConst:
      return f->value();
    case Kind::kVar:
      return assignment(f->var());
    case Kind::kNot:
      return !Evaluate(f->children()[0], assignment);
    case Kind::kAnd:
      for (const auto& c : f->children()) {
        if (!Evaluate(c, assignment)) return false;
      }
      return true;
    case Kind::kOr:
      for (const auto& c : f->children()) {
        if (Evaluate(c, assignment)) return true;
      }
      return false;
  }
  return false;
}

bool Evaluate(const FormulaRef& f, const std::vector<char>& assignment) {
  return Evaluate(f, [&assignment](int v) {
    return static_cast<size_t>(v) < assignment.size() &&
           assignment[static_cast<size_t>(v)] != 0;
  });
}

namespace {
void CollectVarsInto(const FormulaRef& f, std::set<int>* out) {
  switch (f->kind()) {
    case Kind::kConst:
      return;
    case Kind::kVar:
      out->insert(f->var());
      return;
    default:
      for (const auto& c : f->children()) CollectVarsInto(c, out);
  }
}
}  // namespace

std::vector<int> CollectVars(const FormulaRef& f) {
  std::set<int> vars;
  CollectVarsInto(f, &vars);
  return std::vector<int>(vars.begin(), vars.end());
}

FormulaRef Substitute(const FormulaRef& f,
                      const std::unordered_map<int, FormulaRef>& map) {
  switch (f->kind()) {
    case Kind::kConst:
      return f;
    case Kind::kVar: {
      auto it = map.find(f->var());
      return it == map.end() ? f : it->second;
    }
    case Kind::kNot:
      return Formula::Not(Substitute(f->children()[0], map));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaRef> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) kids.push_back(Substitute(c, map));
      return f->kind() == Kind::kAnd ? Formula::And(std::move(kids))
                                     : Formula::Or(std::move(kids));
    }
  }
  return f;
}

FormulaRef SubstituteConst(const FormulaRef& f, int var, bool value) {
  std::unordered_map<int, FormulaRef> map;
  map.emplace(var, Formula::Const(value));
  return Substitute(f, map);
}

FormulaRef RenameVars(const FormulaRef& f,
                      const std::unordered_map<int, int>& renaming) {
  std::unordered_map<int, FormulaRef> map;
  map.reserve(renaming.size());
  for (const auto& [from, to] : renaming) {
    map.emplace(from, Formula::Var(to));
  }
  return Substitute(f, map);
}

namespace {
FormulaRef ToNnfImpl(const FormulaRef& f, bool negate) {
  switch (f->kind()) {
    case Kind::kConst:
      return Formula::Const(f->value() != negate);
    case Kind::kVar:
      return negate ? Formula::Not(f) : f;
    case Kind::kNot:
      return ToNnfImpl(f->children()[0], !negate);
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaRef> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) {
        kids.push_back(ToNnfImpl(c, negate));
      }
      const bool is_and = (f->kind() == Kind::kAnd) != negate;
      return is_and ? Formula::And(std::move(kids))
                    : Formula::Or(std::move(kids));
    }
  }
  return f;
}

// Literal view: (var, negated) for a var or negated-var node.
bool AsLiteral(const FormulaRef& f, int* var, bool* negated) {
  if (f->kind() == Kind::kVar) {
    *var = f->var();
    *negated = false;
    return true;
  }
  if (f->kind() == Kind::kNot && f->children()[0]->kind() == Kind::kVar) {
    *var = f->children()[0]->var();
    *negated = true;
    return true;
  }
  return false;
}
}  // namespace

FormulaRef ToNnf(const FormulaRef& f) { return ToNnfImpl(f, false); }

FormulaRef Simplify(const FormulaRef& f) {
  switch (f->kind()) {
    case Kind::kConst:
    case Kind::kVar:
      return f;
    case Kind::kNot:
      return Formula::Not(Simplify(f->children()[0]));
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<FormulaRef> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) kids.push_back(Simplify(c));
      FormulaRef rebuilt = f->kind() == Kind::kAnd
                               ? Formula::And(std::move(kids))
                               : Formula::Or(std::move(kids));
      if (rebuilt->kind() != Kind::kAnd && rebuilt->kind() != Kind::kOr) {
        return rebuilt;
      }
      // Complementary literal detection at one level:
      // (p & ... & !p) -> false,  (p | ... | !p) -> true.
      std::set<int> pos, neg;
      for (const auto& c : rebuilt->children()) {
        int v;
        bool n;
        if (AsLiteral(c, &v, &n)) {
          (n ? neg : pos).insert(v);
        }
      }
      for (int v : pos) {
        if (neg.count(v)) {
          return Formula::Const(rebuilt->kind() == Kind::kOr);
        }
      }
      // Absorption: a | (a & b) -> a ; a & (a | b) -> a.
      const Kind dual =
          rebuilt->kind() == Kind::kAnd ? Kind::kOr : Kind::kAnd;
      std::vector<FormulaRef> kept;
      for (const auto& c : rebuilt->children()) {
        bool absorbed = false;
        if (c->kind() == dual) {
          for (const auto& other : rebuilt->children()) {
            if (other.get() == c.get() || other->kind() == dual) continue;
            for (const auto& gc : c->children()) {
              if (StructurallyEqual(gc, other)) {
                absorbed = true;
                break;
              }
            }
            if (absorbed) break;
          }
        }
        if (!absorbed) kept.push_back(c);
      }
      return rebuilt->kind() == Kind::kAnd ? Formula::And(std::move(kept))
                                           : Formula::Or(std::move(kept));
    }
  }
  return f;
}

std::string ToString(const FormulaRef& f) {
  return ToString(f, [](int v) { return "p" + std::to_string(v); });
}

namespace {
void ToStringImpl(const FormulaRef& f,
                  const std::function<std::string(int)>& namer,
                  Kind parent, std::string* out) {
  switch (f->kind()) {
    case Kind::kConst:
      out->append(f->value() ? "1" : "0");
      return;
    case Kind::kVar:
      out->append(namer(f->var()));
      return;
    case Kind::kNot:
      out->push_back('!');
      ToStringImpl(f->children()[0], namer, Kind::kNot, out);
      return;
    case Kind::kAnd:
    case Kind::kOr: {
      const bool parens = parent == Kind::kNot ||
                          (parent == Kind::kAnd && f->kind() == Kind::kOr) ||
                          (parent == Kind::kOr && f->kind() == Kind::kAnd);
      if (parens) out->push_back('(');
      const char* sep = f->kind() == Kind::kAnd ? " & " : " | ";
      for (size_t i = 0; i < f->children().size(); ++i) {
        if (i > 0) out->append(sep);
        ToStringImpl(f->children()[i], namer, f->kind(), out);
      }
      if (parens) out->push_back(')');
      return;
    }
  }
}
}  // namespace

std::string ToString(const FormulaRef& f,
                     const std::function<std::string(int)>& namer) {
  std::string out;
  ToStringImpl(f, namer, Kind::kConst, &out);
  return out;
}

namespace {

// Recursive-descent parser over the grammar in the header.
class Parser {
 public:
  Parser(const std::string& text,
         const std::function<int(const std::string&)>& intern)
      : text_(text), intern_(intern) {}

  Result<FormulaRef> Parse() {
    auto f = ParseOr();
    if (!f.ok()) return f;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing input at position " +
                                std::to_string(pos_) + " in '" + text_ + "'");
    }
    return f;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<FormulaRef> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    std::vector<FormulaRef> terms{*lhs};
    while (Consume('|')) {
      // Accept both '|' and '||'.
      Consume('|');
      auto rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      terms.push_back(*rhs);
    }
    return terms.size() == 1 ? terms[0] : Formula::Or(std::move(terms));
  }

  Result<FormulaRef> ParseAnd() {
    auto lhs = ParseFactor();
    if (!lhs.ok()) return lhs;
    std::vector<FormulaRef> terms{*lhs};
    while (Consume('&')) {
      Consume('&');
      auto rhs = ParseFactor();
      if (!rhs.ok()) return rhs;
      terms.push_back(*rhs);
    }
    return terms.size() == 1 ? terms[0] : Formula::And(std::move(terms));
  }

  Result<FormulaRef> ParseFactor() {
    SkipSpace();
    if (Consume('!') || Consume('~')) {
      auto f = ParseFactor();
      if (!f.ok()) return f;
      return Formula::Not(*f);
    }
    if (Consume('(')) {
      auto f = ParseOr();
      if (!f.ok()) return f;
      if (!Consume(')')) {
        return Status::ParseError("expected ')' in '" + text_ + "'");
      }
      return f;
    }
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of formula '" + text_ + "'");
    }
    char c = text_[pos_];
    if (c == '0' || c == '1') {
      // Constants only when standing alone (not an identifier head).
      if (pos_ + 1 == text_.size() ||
          !(std::isalnum(static_cast<unsigned char>(text_[pos_ + 1])) ||
            text_[pos_ + 1] == '_')) {
        ++pos_;
        return Formula::Const(c == '1');
      }
    }
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return Status::ParseError(std::string("unexpected character '") + c +
                                "' in '" + text_ + "'");
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return Formula::Var(intern_(text_.substr(start, pos_ - start)));
  }

  const std::string& text_;
  const std::function<int(const std::string&)>& intern_;
  size_t pos_ = 0;
};

}  // namespace

Result<FormulaRef> ParseFormula(
    const std::string& text,
    const std::function<int(const std::string&)>& intern) {
  return Parser(text, intern).Parse();
}

}  // namespace logic
}  // namespace gtpq
