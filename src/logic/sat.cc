#include "logic/sat.h"

#include <algorithm>

#include "common/logging.h"

namespace gtpq {
namespace logic {

namespace {

// Thread-local so concurrent query-serving workers that run solver
// calls (query analysis, predicate checks) never race on the counters.
thread_local SatSolver::Stats g_last_stats;

// Dense-variable DPLL working state. Variables are remapped to a compact
// range before solving.
class Dpll {
 public:
  explicit Dpll(const Cnf& cnf) {
    // Compact the variable space.
    std::vector<int> vars;
    for (const auto& c : cnf.clauses) {
      for (const auto& l : c) vars.push_back(l.var);
    }
    std::sort(vars.begin(), vars.end());
    vars.erase(std::unique(vars.begin(), vars.end()), vars.end());
    for (size_t i = 0; i < vars.size(); ++i) {
      dense_of_[vars[i]] = static_cast<int>(i);
    }
    orig_of_ = vars;
    num_vars_ = static_cast<int>(vars.size());
    clauses_.reserve(cnf.clauses.size());
    for (const auto& c : cnf.clauses) {
      std::vector<int> lits;  // encoded: 2*v (pos) / 2*v+1 (neg)
      lits.reserve(c.size());
      for (const auto& l : c) {
        lits.push_back(dense_of_[l.var] * 2 + (l.negated ? 1 : 0));
      }
      clauses_.push_back(std::move(lits));
    }
    assign_.assign(static_cast<size_t>(num_vars_), -1);
  }

  bool Solve() {
    g_last_stats = SatSolver::Stats();
    return Search();
  }

  Model ExtractModel() const {
    Model m;
    for (int v = 0; v < num_vars_; ++v) {
      m[orig_of_[static_cast<size_t>(v)]] =
          assign_[static_cast<size_t>(v)] == 1;
    }
    return m;
  }

 private:
  // -1 unassigned, 0 false, 1 true.
  int LitValue(int lit) const {
    int v = assign_[static_cast<size_t>(lit >> 1)];
    if (v < 0) return -1;
    return (lit & 1) ? 1 - v : v;
  }

  bool Search() {
    // Unit propagation to fixpoint, with trail for backtracking.
    std::vector<int> trail;
    for (;;) {
      bool changed = false;
      for (const auto& clause : clauses_) {
        int unassigned_lit = -1;
        int num_unassigned = 0;
        bool satisfied = false;
        for (int lit : clause) {
          int val = LitValue(lit);
          if (val == 1) {
            satisfied = true;
            break;
          }
          if (val == -1) {
            ++num_unassigned;
            unassigned_lit = lit;
          }
        }
        if (satisfied) continue;
        if (num_unassigned == 0) {
          Undo(trail);
          return false;  // conflict
        }
        if (num_unassigned == 1) {
          AssignLit(unassigned_lit, &trail);
          ++g_last_stats.propagations;
          changed = true;
        }
      }
      if (!changed) break;
    }
    // Pick a branching variable.
    int branch = -1;
    for (int v = 0; v < num_vars_; ++v) {
      if (assign_[static_cast<size_t>(v)] < 0) {
        branch = v;
        break;
      }
    }
    if (branch < 0) return true;  // complete assignment, all satisfied
    ++g_last_stats.decisions;
    for (int value : {1, 0}) {
      assign_[static_cast<size_t>(branch)] = value;
      if (Search()) return true;
      assign_[static_cast<size_t>(branch)] = -1;
    }
    Undo(trail);
    return false;
  }

  void AssignLit(int lit, std::vector<int>* trail) {
    assign_[static_cast<size_t>(lit >> 1)] = (lit & 1) ? 0 : 1;
    trail->push_back(lit >> 1);
  }

  void Undo(const std::vector<int>& trail) {
    for (int v : trail) assign_[static_cast<size_t>(v)] = -1;
  }

  std::unordered_map<int, int> dense_of_;
  std::vector<int> orig_of_;
  std::vector<std::vector<int>> clauses_;
  std::vector<int> assign_;
  int num_vars_ = 0;
};

}  // namespace

bool SatSolver::IsSatisfiable(const Cnf& cnf) {
  for (const auto& c : cnf.clauses) {
    if (c.empty()) return false;
  }
  Dpll solver(cnf);
  return solver.Solve();
}

std::optional<Model> SatSolver::Solve(const Cnf& cnf) {
  for (const auto& c : cnf.clauses) {
    if (c.empty()) return std::nullopt;
  }
  Dpll solver(cnf);
  if (!solver.Solve()) return std::nullopt;
  return solver.ExtractModel();
}

SatSolver::Stats SatSolver::last_stats() { return g_last_stats; }

namespace {
int FirstAuxVar(const FormulaRef& f) {
  auto vars = CollectVars(f);
  return vars.empty() ? 0 : vars.back() + 1;
}
}  // namespace

bool IsSatisfiable(const FormulaRef& f) {
  if (f->is_const()) return f->value();
  return SatSolver::IsSatisfiable(TseitinTransform(f, FirstAuxVar(f)));
}

std::optional<Model> SolveFormula(const FormulaRef& f) {
  if (f->is_true()) return Model{};
  if (f->is_false()) return std::nullopt;
  auto model = SatSolver::Solve(TseitinTransform(f, FirstAuxVar(f)));
  if (!model) return std::nullopt;
  // Project out Tseitin auxiliaries.
  Model projected;
  for (int v : CollectVars(f)) {
    auto it = model->find(v);
    projected[v] = it != model->end() && it->second;
  }
  return projected;
}

bool IsTautology(const FormulaRef& f) {
  return !IsSatisfiable(Formula::Not(f));
}

bool Implies(const FormulaRef& f, const FormulaRef& g) {
  return !IsSatisfiable(Formula::And(f, Formula::Not(g)));
}

bool Equivalent(const FormulaRef& f, const FormulaRef& g) {
  return Implies(f, g) && Implies(g, f);
}

size_t EnumerateModels(const FormulaRef& f, const std::vector<int>& vars,
                       const std::function<void(const Model&)>& on_model,
                       size_t cap) {
  GTPQ_CHECK(vars.size() <= 30) << "model enumeration limited to 30 vars";
  size_t count = 0;
  const size_t total = size_t{1} << vars.size();
  Model m;
  for (size_t mask = 0; mask < total && count < cap; ++mask) {
    m.clear();
    for (size_t i = 0; i < vars.size(); ++i) {
      m[vars[i]] = (mask >> i) & 1;
    }
    bool value = Evaluate(f, [&m](int v) {
      auto it = m.find(v);
      return it != m.end() && it->second;
    });
    if (value) {
      on_model(m);
      ++count;
    }
  }
  return count;
}

}  // namespace logic
}  // namespace gtpq
