#ifndef GTPQ_LOGIC_SAT_H_
#define GTPQ_LOGIC_SAT_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "logic/cnf.h"
#include "logic/formula.h"

namespace gtpq {
namespace logic {

/// A (partial) model: var id -> truth value.
using Model = std::unordered_map<int, bool>;

/// DPLL solver with unit propagation and pure-literal elimination.
/// Query-sized formulas (tens of variables) are the target workload, per
/// the paper's observation that "the query size is not much large in
/// practice" (Section 3.3).
class SatSolver {
 public:
  /// Decides satisfiability of a CNF.
  static bool IsSatisfiable(const Cnf& cnf);

  /// Like IsSatisfiable but also produces a model on success.
  static std::optional<Model> Solve(const Cnf& cnf);

  /// Counts the number of DPLL branch decisions of the last call on this
  /// instance API; exposed for the micro-benchmarks.
  struct Stats {
    uint64_t decisions = 0;
    uint64_t propagations = 0;
  };
  static Stats last_stats();
};

/// Satisfiability of an arbitrary formula (Tseitin + DPLL).
bool IsSatisfiable(const FormulaRef& f);

/// Satisfiability returning a model over the *original* variables of f.
std::optional<Model> SolveFormula(const FormulaRef& f);

/// f is valid (true under every assignment).
bool IsTautology(const FormulaRef& f);

/// f -> g is valid.
bool Implies(const FormulaRef& f, const FormulaRef& g);

/// f and g agree on all assignments.
bool Equivalent(const FormulaRef& f, const FormulaRef& g);

/// Enumerates all satisfying total assignments of f over exactly the
/// variable set `vars` (callers pass the relevant universe, which may be
/// a superset of f's own variables). Invokes `on_model` for each; returns
/// the number visited, stopping early once `cap` models were produced.
/// Exponential in |vars| by nature; used by the homomorphism procedure
/// (Theorem 3) where the paper itself enumerates the truth table.
size_t EnumerateModels(const FormulaRef& f, const std::vector<int>& vars,
                       const std::function<void(const Model&)>& on_model,
                       size_t cap = SIZE_MAX);

}  // namespace logic
}  // namespace gtpq

#endif  // GTPQ_LOGIC_SAT_H_
