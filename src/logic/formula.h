#ifndef GTPQ_LOGIC_FORMULA_H_
#define GTPQ_LOGIC_FORMULA_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace gtpq {
namespace logic {

/// Node kinds of the propositional formula AST.
enum class Kind { kConst, kVar, kNot, kAnd, kOr };

class Formula;
/// Formulas are immutable and shared; cheap to copy and substructure-share.
using FormulaRef = std::shared_ptr<const Formula>;

/// Immutable propositional formula over integer-identified variables.
///
/// Construction goes through the static factories, which perform light
/// normalization: nested AND/OR of the same kind are flattened, neutral
/// constants dropped, dominating constants short-circuit, and double
/// negation is eliminated. The factories never distribute (no blow-up).
class Formula {
 public:
  /// The constant true / false formulas (shared singletons).
  static FormulaRef True();
  static FormulaRef False();
  static FormulaRef Const(bool value) { return value ? True() : False(); }

  /// Propositional variable with the given non-negative id.
  static FormulaRef Var(int id);

  /// Logical negation (eliminates double negation and constants).
  static FormulaRef Not(const FormulaRef& f);

  /// N-ary conjunction / disjunction. An empty AND is true; an empty OR
  /// is false.
  static FormulaRef And(std::vector<FormulaRef> children);
  static FormulaRef Or(std::vector<FormulaRef> children);
  static FormulaRef And(const FormulaRef& a, const FormulaRef& b);
  static FormulaRef Or(const FormulaRef& a, const FormulaRef& b);
  /// a -> b, encoded as !a | b.
  static FormulaRef Implies(const FormulaRef& a, const FormulaRef& b);
  /// a XOR b, encoded as (a & !b) | (!a & b).
  static FormulaRef Xor(const FormulaRef& a, const FormulaRef& b);

  Kind kind() const { return kind_; }
  /// Precondition: kind() == kConst.
  bool value() const { return value_; }
  /// Precondition: kind() == kVar.
  int var() const { return var_; }
  /// Children of kNot (exactly one), kAnd, kOr; empty otherwise.
  const std::vector<FormulaRef>& children() const { return children_; }

  bool is_const() const { return kind_ == Kind::kConst; }
  bool is_true() const { return kind_ == Kind::kConst && value_; }
  bool is_false() const { return kind_ == Kind::kConst && !value_; }

 private:
  friend FormulaRef MakeNode(Kind kind, bool value, int var,
                             std::vector<FormulaRef> children);
  Formula(Kind kind, bool value, int var, std::vector<FormulaRef> children)
      : kind_(kind), value_(value), var_(var),
        children_(std::move(children)) {}

  Kind kind_;
  bool value_;
  int var_;
  std::vector<FormulaRef> children_;
};

/// Structural equality (same shape after normalization; not semantic
/// equivalence — use sat::Equivalent for that).
bool StructurallyEqual(const FormulaRef& a, const FormulaRef& b);

/// Evaluates under a total assignment (var id -> truth value).
bool Evaluate(const FormulaRef& f,
              const std::function<bool(int)>& assignment);

/// Evaluates under a dense assignment vector; vars beyond the vector are
/// treated as false.
bool Evaluate(const FormulaRef& f, const std::vector<char>& assignment);

/// All distinct variable ids in f, sorted ascending.
std::vector<int> CollectVars(const FormulaRef& f);

/// Substitutes each mapped variable by its replacement formula (applied
/// simultaneously), then re-normalizes bottom-up.
FormulaRef Substitute(const FormulaRef& f,
                      const std::unordered_map<int, FormulaRef>& map);

/// f[var/value]: assigns a constant to one variable.
FormulaRef SubstituteConst(const FormulaRef& f, int var, bool value);

/// Renames variables; unmapped variables are kept.
FormulaRef RenameVars(const FormulaRef& f,
                      const std::unordered_map<int, int>& renaming);

/// Negation normal form: negation pushed onto variables.
FormulaRef ToNnf(const FormulaRef& f);

/// Simplification pass: constant folding, flattening, duplicate-child
/// removal, complementary-literal detection (p & !p -> false) and
/// absorption within one level. Idempotent.
FormulaRef Simplify(const FormulaRef& f);

/// Renders with a variable namer; default namer prints p<id>.
std::string ToString(const FormulaRef& f);
std::string ToString(const FormulaRef& f,
                     const std::function<std::string(int)>& namer);

/// Parses formulas in the grammar:
///   f := term ('|' term)*      term := factor ('&' factor)*
///   factor := '!' factor | '(' f ')' | '0' | '1' | identifier
/// Identifiers are interned through `intern` (name -> variable id).
Result<FormulaRef> ParseFormula(
    const std::string& text,
    const std::function<int(const std::string&)>& intern);

}  // namespace logic
}  // namespace gtpq

#endif  // GTPQ_LOGIC_FORMULA_H_
