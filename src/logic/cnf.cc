#include "logic/cnf.h"

#include <algorithm>

#include "common/logging.h"

namespace gtpq {
namespace logic {

size_t Cnf::NumLiterals() const {
  size_t n = 0;
  for (const auto& c : clauses) n += c.size();
  return n;
}

namespace {

// Sorts, dedupes, and detects complementary pairs. Returns false if the
// literal set is a tautology (clause) / contradiction (cube).
bool NormalizeLiterals(Clause* lits) {
  std::sort(lits->begin(), lits->end());
  lits->erase(std::unique(lits->begin(), lits->end()), lits->end());
  for (size_t i = 0; i + 1 < lits->size(); ++i) {
    if ((*lits)[i].var == (*lits)[i + 1].var) return false;
  }
  return true;
}

// Distributes an NNF formula into clause sets. `make_cnf` selects CNF
// (clauses) vs DNF (cubes); the two conversions are exact duals.
std::vector<Clause> Distribute(const FormulaRef& f, bool make_cnf) {
  switch (f->kind()) {
    case Kind::kConst: {
      // CNF of true = {} ; CNF of false = {{}}; DNF dual.
      const bool neutral = make_cnf ? f->value() : !f->value();
      if (neutral) return {};
      return {Clause{}};
    }
    case Kind::kVar:
      return {Clause{{f->var(), false}}};
    case Kind::kNot: {
      const auto& inner = f->children()[0];
      GTPQ_CHECK(inner->kind() == Kind::kVar)
          << "Distribute requires NNF input";
      return {Clause{{inner->var(), true}}};
    }
    case Kind::kAnd:
    case Kind::kOr: {
      // For CNF, AND concatenates clause lists and OR takes the
      // cross-product; for DNF the roles swap.
      const bool concatenate = (f->kind() == Kind::kAnd) == make_cnf;
      std::vector<Clause> acc;
      if (concatenate) {
        for (const auto& c : f->children()) {
          auto sub = Distribute(c, make_cnf);
          acc.insert(acc.end(), sub.begin(), sub.end());
        }
        return acc;
      }
      acc = {Clause{}};
      for (const auto& c : f->children()) {
        auto sub = Distribute(c, make_cnf);
        std::vector<Clause> next;
        next.reserve(acc.size() * sub.size());
        for (const auto& a : acc) {
          for (const auto& s : sub) {
            Clause merged = a;
            merged.insert(merged.end(), s.begin(), s.end());
            next.push_back(std::move(merged));
          }
        }
        acc = std::move(next);
      }
      return acc;
    }
  }
  return {};
}

int MaxVar(const std::vector<Clause>& clauses) {
  int mv = -1;
  for (const auto& c : clauses) {
    for (const auto& l : c) mv = std::max(mv, l.var);
  }
  return mv;
}

}  // namespace

Cnf ToCnfByDistribution(const FormulaRef& f) {
  Cnf out;
  auto raw = Distribute(ToNnf(f), /*make_cnf=*/true);
  for (auto& clause : raw) {
    if (NormalizeLiterals(&clause)) {
      out.clauses.push_back(std::move(clause));
    }
    // Tautological clauses are dropped.
  }
  out.max_var = MaxVar(out.clauses);
  return out;
}

Dnf ToDnfByDistribution(const FormulaRef& f) {
  Dnf out;
  auto raw = Distribute(ToNnf(f), /*make_cnf=*/false);
  for (auto& cube : raw) {
    if (NormalizeLiterals(&cube)) {
      out.cubes.push_back(std::move(cube));
    }
    // Contradictory cubes are dropped.
  }
  return out;
}

namespace {

// Returns the literal representing subformula f, emitting defining
// clauses into cnf. next_var supplies fresh auxiliary variables.
Literal TseitinEncode(const FormulaRef& f, Cnf* cnf, int* next_var) {
  switch (f->kind()) {
    case Kind::kConst: {
      // Encode constants via a fresh pinned variable.
      int v = (*next_var)++;
      cnf->clauses.push_back({Literal{v, !f->value()}});
      return Literal{v, false};
    }
    case Kind::kVar:
      return Literal{f->var(), false};
    case Kind::kNot: {
      Literal inner = TseitinEncode(f->children()[0], cnf, next_var);
      return Literal{inner.var, !inner.negated};
    }
    case Kind::kAnd:
    case Kind::kOr: {
      std::vector<Literal> kids;
      kids.reserve(f->children().size());
      for (const auto& c : f->children()) {
        kids.push_back(TseitinEncode(c, cnf, next_var));
      }
      int v = (*next_var)++;
      const bool is_and = f->kind() == Kind::kAnd;
      // AND: (v -> ki) for all i, (k1 & .. & kn -> v).
      // OR:  (ki -> v) for all i, (v -> k1 | .. | kn).
      Clause big;
      big.reserve(kids.size() + 1);
      for (const auto& k : kids) {
        if (is_and) {
          cnf->clauses.push_back({Literal{v, true}, k});
          big.push_back(Literal{k.var, !k.negated});
        } else {
          cnf->clauses.push_back(
              {Literal{k.var, !k.negated}, Literal{v, false}});
          big.push_back(k);
        }
      }
      big.push_back(Literal{v, is_and ? false : true});
      cnf->clauses.push_back(std::move(big));
      return Literal{v, false};
    }
  }
  GTPQ_CHECK(false) << "unreachable";
  return Literal{0, false};
}

}  // namespace

Cnf TseitinTransform(const FormulaRef& f, int first_aux_var) {
  Cnf cnf;
  int next_var = first_aux_var;
  Literal root = TseitinEncode(f, &cnf, &next_var);
  cnf.clauses.push_back({root});
  cnf.max_var = next_var - 1;
  for (const auto& c : cnf.clauses) {
    for (const auto& l : c) cnf.max_var = std::max(cnf.max_var, l.var);
  }
  return cnf;
}

FormulaRef CnfToFormula(const Cnf& cnf) {
  std::vector<FormulaRef> clauses;
  clauses.reserve(cnf.clauses.size());
  for (const auto& c : cnf.clauses) {
    std::vector<FormulaRef> lits;
    lits.reserve(c.size());
    for (const auto& l : c) {
      FormulaRef v = Formula::Var(l.var);
      lits.push_back(l.negated ? Formula::Not(v) : v);
    }
    clauses.push_back(Formula::Or(std::move(lits)));
  }
  return Formula::And(std::move(clauses));
}

FormulaRef DnfToFormula(const Dnf& dnf) {
  std::vector<FormulaRef> cubes;
  cubes.reserve(dnf.cubes.size());
  for (const auto& c : dnf.cubes) {
    std::vector<FormulaRef> lits;
    lits.reserve(c.size());
    for (const auto& l : c) {
      FormulaRef v = Formula::Var(l.var);
      lits.push_back(l.negated ? Formula::Not(v) : v);
    }
    cubes.push_back(Formula::And(std::move(lits)));
  }
  return Formula::Or(std::move(cubes));
}

}  // namespace logic
}  // namespace gtpq
