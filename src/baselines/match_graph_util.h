#ifndef GTPQ_BASELINES_MATCH_GRAPH_UTIL_H_
#define GTPQ_BASELINES_MATCH_GRAPH_UTIL_H_

#include <vector>

#include "core/eval_types.h"
#include "query/gtpq.h"

namespace gtpq {

/// Conjunctive match graph shared by TwigStackD's pool stage and
/// HGJoin*'s graph-shaped intermediates: per query node the candidate
/// list, and per non-root query node the per-parent-candidate adjacency
/// into the child's candidates.
struct ConjMatchGraph {
  /// cand[u]: candidate data nodes of query node u.
  std::vector<std::vector<NodeId>> cand;
  /// child_lists[c][pi]: indices into cand[c] matched by candidate #pi
  /// of c's query parent (empty vector-of-vectors for the root).
  std::vector<std::vector<std::vector<uint32_t>>> child_lists;

  size_t TotalNodes() const;
  size_t TotalEdges() const;
};

/// Iteratively removes candidates with no parent support or an empty
/// required-child adjacency ("recursively deleting unqualified nodes").
/// Returns false when some query node loses all candidates.
bool ReduceConjMatchGraph(const Gtpq& q, ConjMatchGraph* mg);

/// Enumerates all full matches (every query node bound) and projects
/// them onto q.outputs(). The graph should be reduced first.
QueryResult EnumerateConjMatchGraph(const Gtpq& q,
                                    const ConjMatchGraph& mg,
                                    EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_MATCH_GRAPH_UTIL_H_
