#include "baselines/match_graph_util.h"

#include <algorithm>
#include <functional>

namespace gtpq {

size_t ConjMatchGraph::TotalNodes() const {
  size_t n = 0;
  for (const auto& c : cand) n += c.size();
  return n;
}

size_t ConjMatchGraph::TotalEdges() const {
  size_t n = 0;
  for (const auto& per_node : child_lists) {
    for (const auto& lst : per_node) n += lst.size();
  }
  return n;
}

bool ReduceConjMatchGraph(const Gtpq& q, ConjMatchGraph* mg) {
  const size_t n = q.NumNodes();
  std::vector<std::vector<char>> alive(n);
  for (QNodeId u = 0; u < n; ++u) alive[u].assign(mg->cand[u].size(), 1);

  bool changed = true;
  while (changed) {
    changed = false;
    // Kill parents lacking a live match for some child, top-down.
    for (QNodeId u = 0; u < n; ++u) {
      for (uint32_t pi = 0; pi < mg->cand[u].size(); ++pi) {
        if (!alive[u][pi]) continue;
        for (QNodeId c : q.node(u).children) {
          bool has_live = false;
          for (uint32_t wi : mg->child_lists[c][pi]) {
            if (alive[c][wi]) {
              has_live = true;
              break;
            }
          }
          if (!has_live) {
            alive[u][pi] = 0;
            changed = true;
            break;
          }
        }
      }
    }
    // Kill children without a live parent referencing them.
    for (QNodeId c = 1; c < n; ++c) {
      const QNodeId p = q.node(c).parent;
      std::vector<char> referenced(mg->cand[c].size(), 0);
      for (uint32_t pi = 0; pi < mg->cand[p].size(); ++pi) {
        if (!alive[p][pi]) continue;
        for (uint32_t wi : mg->child_lists[c][pi]) referenced[wi] = 1;
      }
      for (uint32_t wi = 0; wi < mg->cand[c].size(); ++wi) {
        if (alive[c][wi] && !referenced[wi]) {
          alive[c][wi] = 0;
          changed = true;
        }
      }
    }
  }

  // Compact.
  std::vector<std::vector<uint32_t>> remap(n);
  for (QNodeId u = 0; u < n; ++u) {
    remap[u].assign(mg->cand[u].size(), UINT32_MAX);
    uint32_t next = 0;
    std::vector<NodeId> kept;
    for (uint32_t i = 0; i < mg->cand[u].size(); ++i) {
      if (alive[u][i]) {
        remap[u][i] = next++;
        kept.push_back(mg->cand[u][i]);
      }
    }
    mg->cand[u] = std::move(kept);
  }
  for (QNodeId c = 1; c < n; ++c) {
    const QNodeId p = q.node(c).parent;
    std::vector<std::vector<uint32_t>> fixed;
    for (uint32_t pi = 0; pi < remap[p].size(); ++pi) {
      if (remap[p][pi] == UINT32_MAX) continue;
      std::vector<uint32_t> lst;
      for (uint32_t wi : mg->child_lists[c][pi]) {
        if (remap[c][wi] != UINT32_MAX) lst.push_back(remap[c][wi]);
      }
      fixed.push_back(std::move(lst));
    }
    mg->child_lists[c] = std::move(fixed);
  }
  for (QNodeId u = 0; u < n; ++u) {
    if (mg->cand[u].empty()) return false;
  }
  return true;
}

QueryResult EnumerateConjMatchGraph(const Gtpq& q,
                                    const ConjMatchGraph& mg,
                                    EngineStats* stats) {
  QueryResult result;
  result.output_nodes = q.outputs();
  std::sort(result.output_nodes.begin(), result.output_nodes.end());
  std::vector<size_t> slot_of(q.NumNodes(), SIZE_MAX);
  for (size_t i = 0; i < result.output_nodes.size(); ++i) {
    slot_of[result.output_nodes[i]] = i;
  }
  auto order = q.TopDownOrder();
  std::vector<uint32_t> chosen(q.NumNodes(), 0);
  ResultTuple current(result.output_nodes.size(), kInvalidNode);

  std::function<void(size_t)> recurse = [&](size_t depth) {
    if (depth == order.size()) {
      result.tuples.push_back(current);
      return;
    }
    const QNodeId u = order[depth];
    if (u == q.root()) {
      for (uint32_t i = 0; i < mg.cand[u].size(); ++i) {
        chosen[u] = i;
        if (slot_of[u] != SIZE_MAX) current[slot_of[u]] = mg.cand[u][i];
        recurse(depth + 1);
      }
      return;
    }
    const QNodeId p = q.node(u).parent;
    for (uint32_t wi : mg.child_lists[u][chosen[p]]) {
      ++stats->join_ops;
      chosen[u] = wi;
      if (slot_of[u] != SIZE_MAX) current[slot_of[u]] = mg.cand[u][wi];
      recurse(depth + 1);
    }
  };
  recurse(0);
  result.Normalize();
  return result;
}

}  // namespace gtpq
