#ifndef GTPQ_BASELINES_TWIG_ON_GRAPH_H_
#define GTPQ_BASELINES_TWIG_ON_GRAPH_H_

#include <functional>
#include <vector>

#include "core/eval_types.h"
#include "query/gtpq.h"

namespace gtpq {

/// Evaluates one conjunctive tree twig (all nodes output). Plugged with
/// EvaluateTwigStack / EvaluateTwig2Stack closures.
using TreeTwigEvaluator = std::function<QueryResult(const Gtpq&)>;

/// Applies a tree-only twig join to a tree+cross-edge graph the way the
/// paper does for XMark (Section 5.1): the query is decomposed at the
/// given cross edges (`cross_children` lists the child endpoints, which
/// root the non-initial fragments), every fragment is evaluated against
/// the spanning tree with `eval`, and fragment results are joined on
/// the data graph's actual cross edges (which must be PC query edges).
/// Fragment results keep all fragment nodes, so the joins reproduce the
/// decompose-and-merge intermediate-result cost the paper measures.
QueryResult EvaluateTwigOnGraph(const DataGraph& g, const Gtpq& q,
                                const std::vector<QNodeId>& cross_children,
                                const TreeTwigEvaluator& eval,
                                EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_TWIG_ON_GRAPH_H_
