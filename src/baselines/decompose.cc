#include "baselines/decompose.h"

#include <algorithm>
#include <set>

#include "logic/cnf.h"

namespace gtpq {

namespace {

// One conjunctive variant: the positive pattern (included node set) and
// the negative patterns (each an extra included set to force and
// subtract).
struct Variant {
  std::vector<char> inc;
  std::vector<std::vector<char>> neg;
  /// Negated branches whose subtrees contain negation themselves: the
  /// forced-branch query is evaluated by recursive decomposition.
  std::vector<QNodeId> complex_neg;
};

bool SubtreeHasNegation(const Gtpq& q, QNodeId u) {
  for (QNodeId d : q.Subtree(u)) {
    std::function<bool(const logic::FormulaRef&)> has_not =
        [&](const logic::FormulaRef& f) {
          if (f->kind() == logic::Kind::kNot) return true;
          for (const auto& c : f->children()) {
            if (has_not(c)) return true;
          }
          return false;
        };
    if (has_not(q.node(d).structural_pred)) return true;
  }
  return false;
}

std::vector<Variant> Cross(const std::vector<Variant>& a,
                           const std::vector<Variant>& b) {
  std::vector<Variant> out;
  out.reserve(a.size() * b.size());
  for (const auto& x : a) {
    for (const auto& y : b) {
      Variant v = x;
      for (size_t i = 0; i < v.inc.size(); ++i) v.inc[i] |= y.inc[i];
      v.neg.insert(v.neg.end(), y.neg.begin(), y.neg.end());
      v.complex_neg.insert(v.complex_neg.end(), y.complex_neg.begin(),
                           y.complex_neg.end());
      out.push_back(std::move(v));
    }
  }
  return out;
}

// Expands subtree(u) (u included) into conjunctive variants.
Result<std::vector<Variant>> ExpandNode(const Gtpq& q, QNodeId u) {
  auto dnf = logic::ToDnfByDistribution(q.node(u).structural_pred);
  std::vector<Variant> result;
  for (const auto& cube : dnf.cubes) {
    Variant seed;
    seed.inc.assign(q.NumNodes(), 0);
    seed.inc[u] = 1;
    std::vector<Variant> partial{seed};
    // Backbone children are unconditional.
    for (QNodeId c : q.node(u).children) {
      if (q.node(c).role != NodeRole::kBackbone) continue;
      auto sub = ExpandNode(q, c);
      if (!sub.ok()) return sub.status();
      partial = Cross(partial, *sub);
    }
    bool cube_ok = true;
    for (const auto& lit : cube) {
      const QNodeId c = static_cast<QNodeId>(lit.var);
      if (!lit.negated) {
        auto sub = ExpandNode(q, c);
        if (!sub.ok()) return sub.status();
        if (sub->empty()) {
          cube_ok = false;  // positive branch unsatisfiable
          break;
        }
        partial = Cross(partial, *sub);
      } else {
        if (SubtreeHasNegation(q, c)) {
          // Negation under negation: force the branch and subtract its
          // answers, computed by a recursive decomposition.
          for (auto& p : partial) p.complex_neg.push_back(c);
          continue;
        }
        auto sub = ExpandNode(q, c);
        if (!sub.ok()) return sub.status();
        for (auto& p : partial) {
          for (const auto& sv : *sub) p.neg.push_back(sv.inc);
        }
      }
    }
    if (!cube_ok) continue;
    result.insert(result.end(), partial.begin(), partial.end());
  }
  return result;
}

// Builds the conjunctive query over the included node set. Every node
// is an output: set operations between variants must key on the full
// bindings (negation anchored below a projected-away node would
// otherwise subtract too much).
Gtpq BuildConjunctive(const Gtpq& q, const std::vector<char>& inc) {
  QueryBuilder b(q.attr_names());
  std::vector<QNodeId> remap(q.NumNodes(), kInvalidQNode);
  for (QNodeId u : q.TopDownOrder()) {
    if (!inc[u]) continue;
    const QueryNode& n = q.node(u);
    if (u == q.root()) {
      remap[u] = b.AddRoot(n.name, n.attr_pred);
    } else {
      remap[u] = b.AddBackbone(remap[n.parent], n.incoming, n.name,
                               n.attr_pred);
    }
    b.MarkOutput(remap[u]);
  }
  auto built = b.Build();
  GTPQ_CHECK(built.ok()) << built.status().ToString();
  return built.TakeValue();
}

// Ascending original ids of a node set.
std::vector<QNodeId> NodesOf(const std::vector<char>& inc) {
  std::vector<QNodeId> out;
  for (QNodeId u = 0; u < inc.size(); ++u) {
    if (inc[u]) out.push_back(u);
  }
  return out;
}

// Projects `tuple` (over `from` columns) onto the `to` columns
// (to must be a subset of from, both ascending).
ResultTuple Project(const ResultTuple& tuple,
                    const std::vector<QNodeId>& from,
                    const std::vector<QNodeId>& to) {
  ResultTuple out;
  out.reserve(to.size());
  size_t j = 0;
  for (QNodeId u : to) {
    while (from[j] != u) ++j;
    out.push_back(tuple[j]);
  }
  return out;
}

// Builds the GTPQ "positive pattern + forced branch c" where c's
// subtree keeps its original roles and structural predicates (it may
// contain further logic, handled by the recursive decomposition).
Gtpq BuildForcedBranch(const Gtpq& q, const std::vector<char>& inc,
                       QNodeId branch) {
  std::vector<char> keep = inc;
  for (QNodeId d : q.Subtree(branch)) keep[d] = 1;
  QueryBuilder b(q.attr_names());
  std::vector<QNodeId> remap(q.NumNodes(), kInvalidQNode);
  std::vector<char> in_branch(q.NumNodes(), 0);
  for (QNodeId d : q.Subtree(branch)) in_branch[d] = 1;
  for (QNodeId u : q.TopDownOrder()) {
    if (!keep[u]) continue;
    const QueryNode& n = q.node(u);
    if (u == q.root()) {
      remap[u] = b.AddRoot(n.name, n.attr_pred);
    } else if (in_branch[u] && u != branch) {
      // Inside the forced branch: keep the original role and fs.
      remap[u] = n.role == NodeRole::kBackbone
                     ? b.AddBackbone(remap[n.parent], n.incoming, n.name,
                                     n.attr_pred)
                     : b.AddPredicate(remap[n.parent], n.incoming,
                                      n.name, n.attr_pred);
    } else if (u == branch) {
      remap[u] = b.AddPredicate(remap[n.parent], n.incoming, n.name,
                                n.attr_pred);
    } else {
      remap[u] = b.AddBackbone(remap[n.parent], n.incoming, n.name,
                               n.attr_pred);
    }
    // Outputs = the caller's positive-pattern nodes: the recursive
    // answer is keyed on exactly those bindings.
    if (!in_branch[u]) b.MarkOutput(remap[u]);
  }
  for (QNodeId u : q.Subtree(branch)) {
    std::unordered_map<int, int> ren;
    for (int v : logic::CollectVars(q.node(u).structural_pred)) {
      ren[v] = static_cast<int>(remap[static_cast<QNodeId>(v)]);
    }
    b.SetStructural(remap[u],
                    RenameVars(q.node(u).structural_pred, ren));
  }
  // Force the branch itself.
  b.SetStructural(remap[q.node(branch).parent],
                  logic::Formula::Var(static_cast<int>(remap[branch])));
  auto built = b.Build();
  GTPQ_CHECK(built.ok()) << built.status().ToString();
  return built.TakeValue();
}

}  // namespace

Result<QueryResult> EvaluateByDecomposition(const Gtpq& q,
                                            const ConjunctiveEvaluator& eval,
                                            EngineStats* stats) {
  auto variants = ExpandNode(q, q.root());
  if (!variants.ok()) return variants.status();

  QueryResult result;
  result.output_nodes = q.outputs();
  std::sort(result.output_nodes.begin(), result.output_nodes.end());
  std::set<ResultTuple> answer;

  for (const auto& variant : *variants) {
    const auto inc_nodes = NodesOf(variant.inc);
    // Positive tuples over the full variant binding.
    QueryResult pos = eval(BuildConjunctive(q, variant.inc));
    std::set<ResultTuple> keep(pos.tuples.begin(), pos.tuples.end());
    stats->intermediate_size += pos.tuples.size() * inc_nodes.size();
    for (const auto& neg : variant.neg) {
      if (keep.empty()) break;
      std::vector<char> merged = variant.inc;
      for (size_t i = 0; i < merged.size(); ++i) merged[i] |= neg[i];
      const auto merged_nodes = NodesOf(merged);
      QueryResult bad = eval(BuildConjunctive(q, merged));
      stats->intermediate_size += bad.tuples.size() * merged_nodes.size();
      for (const auto& t : bad.tuples) {
        ++stats->join_ops;
        keep.erase(Project(t, merged_nodes, inc_nodes));
      }
    }
    for (QNodeId branch : variant.complex_neg) {
      if (keep.empty()) break;
      Gtpq forced = BuildForcedBranch(q, variant.inc, branch);
      // The forced query's outputs are exactly inc_nodes, so the
      // recursive answer is keyed on the variant binding directly.
      auto bad = EvaluateByDecomposition(forced, eval, stats);
      if (!bad.ok()) return bad.status();
      stats->intermediate_size += bad->tuples.size() * inc_nodes.size();
      for (const auto& t : bad->tuples) {
        ++stats->join_ops;
        keep.erase(t);
      }
    }
    for (const auto& t : keep) {
      answer.insert(Project(t, inc_nodes, result.output_nodes));
    }
  }

  result.tuples.assign(answer.begin(), answer.end());
  result.Normalize();
  return result;
}

Result<size_t> CountDecomposedQueries(const Gtpq& q) {
  auto variants = ExpandNode(q, q.root());
  if (!variants.ok()) return variants.status();
  size_t count = 0;
  for (const auto& v : *variants) {
    count += 1 + v.neg.size() + v.complex_neg.size();
  }
  return count;
}

}  // namespace gtpq
