#ifndef GTPQ_BASELINES_NAIVE_H_
#define GTPQ_BASELINES_NAIVE_H_

#include "core/eval_types.h"
#include "graph/data_graph.h"
#include "query/gtpq.h"
#include "reachability/transitive_closure.h"

namespace gtpq {

/// Brute-force GTPQ evaluation straight from the Section 2 semantics:
/// memoized downward-match sets over the materialized transitive
/// closure, then exhaustive backbone-match enumeration. Exponential in
/// the worst case and quadratic in space — this is the independent
/// correctness oracle every engine is property-tested against, kept as
/// simple as possible on purpose.
QueryResult EvaluateBruteForce(const DataGraph& g,
                               const TransitiveClosure& tc, const Gtpq& q);

/// Convenience overload that builds the closure internally.
QueryResult EvaluateBruteForce(const DataGraph& g, const Gtpq& q);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_NAIVE_H_
