#include "baselines/naive.h"

#include <algorithm>

namespace gtpq {

namespace {

bool EdgeHolds(const DataGraph& g, const TransitiveClosure& tc,
               EdgeType type, NodeId v, NodeId w) {
  return type == EdgeType::kChild ? g.HasEdge(v, w) : tc.Reaches(v, w);
}

}  // namespace

QueryResult EvaluateBruteForce(const DataGraph& g,
                               const TransitiveClosure& tc,
                               const Gtpq& q) {
  // Downward-match sets D(u) = { v : v |= u }, bottom-up.
  std::vector<std::vector<NodeId>> down(q.NumNodes());
  for (QNodeId u : q.BottomUpOrder()) {
    const QueryNode& qu = q.node(u);
    const logic::FormulaRef fext = q.ExtendedPredicate(u);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (!qu.attr_pred.Matches(g, v)) continue;
      bool ok = logic::Evaluate(fext, [&](int var) {
        const QNodeId c = static_cast<QNodeId>(var);
        for (NodeId w : down[c]) {
          if (EdgeHolds(g, tc, q.node(c).incoming, v, w)) return true;
        }
        return false;
      });
      if (ok) down[u].push_back(v);
    }
  }

  QueryResult result;
  result.output_nodes = q.outputs();
  std::sort(result.output_nodes.begin(), result.output_nodes.end());
  std::vector<size_t> slot_of(q.NumNodes(), SIZE_MAX);
  for (size_t i = 0; i < result.output_nodes.size(); ++i) {
    slot_of[result.output_nodes[i]] = i;
  }

  // Exhaustive backbone enumeration: assign images to backbone nodes
  // top-down, projecting output slots.
  ResultTuple current(result.output_nodes.size(), kInvalidNode);
  std::vector<QNodeId> backbone_order;
  for (QNodeId u : q.TopDownOrder()) {
    if (q.IsBackbone(u)) backbone_order.push_back(u);
  }
  std::vector<NodeId> image(q.NumNodes(), kInvalidNode);

  auto recurse = [&](auto&& self, size_t depth) -> void {
    if (depth == backbone_order.size()) {
      result.tuples.push_back(current);
      return;
    }
    const QNodeId u = backbone_order[depth];
    const QNodeId parent = q.node(u).parent;
    for (NodeId v : down[u]) {
      if (parent != kInvalidQNode &&
          !EdgeHolds(g, tc, q.node(u).incoming, image[parent], v)) {
        continue;
      }
      image[u] = v;
      if (slot_of[u] != SIZE_MAX) current[slot_of[u]] = v;
      self(self, depth + 1);
    }
    image[u] = kInvalidNode;
  };
  recurse(recurse, 0);
  result.Normalize();
  return result;
}

QueryResult EvaluateBruteForce(const DataGraph& g, const Gtpq& q) {
  TransitiveClosure tc = TransitiveClosure::Build(g.graph());
  return EvaluateBruteForce(g, tc, q);
}

}  // namespace gtpq
