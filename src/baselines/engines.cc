#include "baselines/engines.h"

#include <algorithm>
#include <utility>

#include "baselines/decompose.h"
#include "baselines/naive.h"
#include "baselines/twig2stack.h"
#include "baselines/twig_on_graph.h"
#include "baselines/twigstack.h"
#include "baselines/twigstackd.h"
#include "common/timer.h"
#include "core/gtea.h"

namespace gtpq {

namespace {

// Resolves cross-node names (IDREF targets) to query node ids; used to
// decide where a twig query is decomposed for graph data.
std::vector<QNodeId> ResolveCrossIds(
    const Gtpq& q, const std::vector<std::string>& names) {
  std::vector<QNodeId> out;
  for (QNodeId u = 0; u < q.NumNodes(); ++u) {
    for (const auto& name : names) {
      if (q.node(u).name == name) out.push_back(u);
    }
  }
  return out;
}

// The baseline algorithms always materialize the full answer; honor
// the one semantic option of the common interface by truncating it, so
// Evaluate(q, {.result_limit = k}) behaves uniformly across engines.
void ApplyResultLimit(const GteaOptions& options, QueryResult* result) {
  if (options.result_limit > 0 &&
      result->tuples.size() > options.result_limit) {
    result->tuples.resize(options.result_limit);
  }
}

}  // namespace

// --------------------------------------------------------------- naive

BruteForceEngine::BruteForceEngine(const DataGraph& g)
    : BruteForceEngine(g, std::make_shared<const TransitiveClosure>(
                              TransitiveClosure::Build(g.graph()))) {}

BruteForceEngine::BruteForceEngine(
    const DataGraph& g, std::shared_ptr<const TransitiveClosure> tc)
    : g_(g), tc_(std::move(tc)) {}

QueryResult BruteForceEngine::Evaluate(const Gtpq& q,
                                       const GteaOptions& options) {
  stats_.Reset();
  tc_->stats().Reset();
  Timer total;
  QueryResult result = EvaluateBruteForce(g_, *tc_, q);
  ApplyResultLimit(options, &result);
  stats_.index_lookups = tc_->stats().elements_looked_up;
  stats_.total_ms = total.ElapsedMillis();
  return result;
}

// ----------------------------------------------------- twig(2)stack

TwigStackEngine::TwigStackEngine(const DataGraph& g, bool use_twig2stack,
                                 std::vector<std::string> cross_names,
                                 std::shared_ptr<const RegionEncoding> enc)
    : g_(g),
      twig2stack_(use_twig2stack),
      cross_names_(std::move(cross_names)),
      enc_(std::move(enc)) {
  if (enc_ == nullptr) {
    enc_ = std::make_shared<const RegionEncoding>(BuildRegionEncoding(g));
  }
}

QueryResult TwigStackEngine::Evaluate(const Gtpq& q,
                                      const GteaOptions& options) {
  QueryResult result = EvaluateWithCross(q, ResolveCrossIds(q, cross_names_));
  ApplyResultLimit(options, &result);
  return result;
}

QueryResult TwigStackEngine::EvaluateWithCross(
    const Gtpq& q, const std::vector<QNodeId>& cross) {
  stats_.Reset();
  Timer total;
  QueryResult result = EvaluateTwigOnGraph(
      g_, q, cross,
      [this](const Gtpq& frag) {
        return twig2stack_
                   ? EvaluateTwig2Stack(g_, *enc_, frag, &stats_)
                   : EvaluateTwigStack(g_, *enc_, frag, &stats_);
      },
      &stats_);
  stats_.total_ms = total.ElapsedMillis();
  return result;
}

// ------------------------------------------------------- twigstackd

TwigStackDEngine::TwigStackDEngine(const DataGraph& g)
    : TwigStackDEngine(
          g, std::make_shared<const Sspi>(Sspi::Build(g.graph()))) {}

TwigStackDEngine::TwigStackDEngine(const DataGraph& g,
                                   std::shared_ptr<const Sspi> sspi)
    : g_(g), sspi_(std::move(sspi)) {}

QueryResult TwigStackDEngine::Evaluate(const Gtpq& q,
                                       const GteaOptions& options) {
  stats_.Reset();
  Timer total;
  // EvaluateTwigStackD resets the SSPI counters itself and accumulates
  // them into stats_.index_lookups.
  QueryResult result = EvaluateTwigStackD(g_, *sspi_, q, &stats_);
  ApplyResultLimit(options, &result);
  stats_.total_ms = total.ElapsedMillis();
  return result;
}

// ----------------------------------------------------------- hgjoin

HgJoinEngine::HgJoinEngine(const DataGraph& g, bool graph_intermediates)
    : HgJoinEngine(g, graph_intermediates,
                   std::make_shared<const IntervalIndex>(
                       IntervalIndex::Build(g.graph()))) {}

HgJoinEngine::HgJoinEngine(const DataGraph& g, bool graph_intermediates,
                           std::shared_ptr<const IntervalIndex> idx)
    : g_(g), idx_(std::move(idx)) {
  options_.graph_intermediates = graph_intermediates;
}

QueryResult HgJoinEngine::Evaluate(const Gtpq& q,
                                   const GteaOptions& options) {
  stats_.Reset();
  report_ = HgJoinReport{};
  Timer total;
  QueryResult result =
      EvaluateHgJoin(g_, *idx_, q, options_, &stats_, &report_);
  ApplyResultLimit(options, &result);
  stats_.total_ms = total.ElapsedMillis();
  return result;
}

// -------------------------------------------------------- decompose

DecomposeEngine::DecomposeEngine(std::shared_ptr<Evaluator> inner)
    : inner_(std::move(inner)),
      name_("decompose[" + std::string(inner_->name()) + "]") {}

QueryResult DecomposeEngine::Evaluate(const Gtpq& q,
                                      const GteaOptions& options) {
  stats_.Reset();
  last_status_ = Status::OK();
  Timer total;
  // Conjunctive pieces must be complete: unions and negation
  // differences over truncated piece answers would be wrong, so the
  // limit applies only to the merged result.
  GteaOptions inner_options = options;
  inner_options.result_limit = 0;
  auto result = EvaluateByDecomposition(
      q,
      [this, &inner_options](const Gtpq& conj) {
        QueryResult r = inner_->Evaluate(conj, inner_options);
        stats_.input_nodes += inner_->stats().input_nodes;
        stats_.index_lookups += inner_->stats().index_lookups;
        stats_.intermediate_size += inner_->stats().intermediate_size;
        stats_.join_ops += inner_->stats().join_ops;
        return r;
      },
      &stats_);
  stats_.total_ms = total.ElapsedMillis();
  if (!result.ok()) {
    last_status_ = result.status();
    QueryResult empty;
    empty.output_nodes = q.outputs();
    std::sort(empty.output_nodes.begin(), empty.output_nodes.end());
    return empty;
  }
  QueryResult merged = result.TakeValue();
  ApplyResultLimit(options, &merged);
  return merged;
}

// ---------------------------------------------------------- factory

std::unique_ptr<Evaluator> MakeEngine(std::string_view spec,
                                      const DataGraph& g,
                                      std::vector<std::string> cross_names) {
  if (spec == "gtea") return std::make_unique<GteaEngine>(g);
  if (spec.rfind("gtea:", 0) == 0) {
    auto idx = MakeReachabilityIndex(spec.substr(5), g.graph());
    if (idx == nullptr) return nullptr;
    return std::make_unique<GteaEngine>(
        g, std::shared_ptr<const ReachabilityOracle>(std::move(idx)));
  }
  if (spec == "naive") return std::make_unique<BruteForceEngine>(g);
  if (spec == "twigstack") {
    return std::make_unique<TwigStackEngine>(g, false,
                                             std::move(cross_names));
  }
  if (spec == "twig2stack") {
    return std::make_unique<TwigStackEngine>(g, true,
                                             std::move(cross_names));
  }
  if (spec == "twigstackd") return std::make_unique<TwigStackDEngine>(g);
  if (spec == "hgjoin+") return std::make_unique<HgJoinEngine>(g, false);
  if (spec == "hgjoin*") return std::make_unique<HgJoinEngine>(g, true);
  if (spec.rfind("decompose:", 0) == 0) {
    auto inner = MakeEngine(spec.substr(10), g, std::move(cross_names));
    if (inner == nullptr) return nullptr;
    return std::make_unique<DecomposeEngine>(std::move(inner));
  }
  return nullptr;
}

}  // namespace gtpq
