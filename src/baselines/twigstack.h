#ifndef GTPQ_BASELINES_TWIGSTACK_H_
#define GTPQ_BASELINES_TWIGSTACK_H_

#include "baselines/tree_encoding.h"
#include "core/eval_types.h"
#include "query/gtpq.h"

namespace gtpq {

/// TwigStack (Bruno, Koudas, Srivastava, SIGMOD'02): the classical
/// holistic twig join over *tree-structured* data. Streams of region-
/// encoded candidates are advanced by getNext; chains of stacks encode
/// partial AD paths; root-to-leaf path solutions are materialized and
/// merge-joined into twig matches — the intermediate-result profile the
/// paper measures in Fig 10.
///
/// Requirements: `q` conjunctive (all structural predicates pure
/// conjunctions); AD edges are interpreted against the spanning tree of
/// `g` (use the decomposition wrapper in twig_on_graph.h for graphs
/// with cross edges). Tuples cover all backbone+predicate nodes and are
/// projected to q.outputs().
QueryResult EvaluateTwigStack(const DataGraph& g,
                              const RegionEncoding& enc, const Gtpq& q,
                              EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_TWIGSTACK_H_
