#include "baselines/twig_on_graph.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace gtpq {

namespace {

// Builds the fragment subquery rooted at `frag_root`, stopping at cross
// children. Every fragment node becomes an output so the cross joins
// can see full bindings. to_orig maps fragment ids back.
Gtpq BuildFragment(const Gtpq& q, QNodeId frag_root,
                   const std::vector<char>& is_cross_child,
                   std::vector<QNodeId>* to_orig) {
  QueryBuilder b(q.attr_names());
  std::vector<std::pair<QNodeId, QNodeId>> stack;  // (orig, new parent)
  std::map<QNodeId, QNodeId> remap;
  const QueryNode& rn = q.node(frag_root);
  QNodeId new_root = b.AddRoot(rn.name, rn.attr_pred);
  b.MarkOutput(new_root);
  remap[frag_root] = new_root;
  to_orig->push_back(frag_root);
  for (QNodeId u : q.Subtree(frag_root)) {
    if (u == frag_root) continue;
    if (is_cross_child[u]) continue;
    // Skip nodes under a cross child.
    bool under_cross = false;
    for (QNodeId x = q.node(u).parent; x != kInvalidQNode && x != frag_root;
         x = q.node(x).parent) {
      if (is_cross_child[x]) {
        under_cross = true;
        break;
      }
    }
    if (under_cross) continue;
    const QueryNode& n = q.node(u);
    QNodeId np = remap.at(n.parent);
    // Conjunctive predicate nodes behave exactly like backbone nodes,
    // so fragments are all-backbone: every binding can then be output
    // and joined across fragments.
    QNodeId id = b.AddBackbone(np, n.incoming, n.name, n.attr_pred);
    b.MarkOutput(id);
    remap[u] = id;
    to_orig->push_back(u);
  }
  auto built = b.Build();
  GTPQ_CHECK(built.ok()) << built.status().ToString();
  return built.TakeValue();
}

}  // namespace

QueryResult EvaluateTwigOnGraph(const DataGraph& g, const Gtpq& q,
                                const std::vector<QNodeId>& cross_children,
                                const TreeTwigEvaluator& eval,
                                EngineStats* stats) {
  GTPQ_CHECK(q.IsConjunctive());
  std::vector<char> is_cross(q.NumNodes(), 0);
  for (QNodeId c : cross_children) {
    GTPQ_CHECK(q.node(c).incoming == EdgeType::kChild)
        << "cross edges must be PC (single reference edges)";
    is_cross[c] = 1;
  }

  // Fragments: the root fragment plus one per cross child, evaluated
  // root-fragment first so joins always see the parent side bound.
  std::vector<QNodeId> frag_roots{q.root()};
  for (QNodeId c = 0; c < q.NumNodes(); ++c) {
    if (is_cross[c]) frag_roots.push_back(c);
  }

  // Tuples over original query width.
  std::vector<NodeId> unused;
  std::vector<std::vector<NodeId>> acc;
  std::vector<char> bound(q.NumNodes(), 0);
  for (QNodeId frag_root : frag_roots) {
    std::vector<QNodeId> to_orig;
    Gtpq fragment = BuildFragment(q, frag_root, is_cross, &to_orig);
    QueryResult sub = eval(fragment);
    // Fragment outputs are sorted by fragment id; build column map.
    std::vector<QNodeId> cols(sub.output_nodes.size());
    for (size_t i = 0; i < sub.output_nodes.size(); ++i) {
      cols[i] = to_orig[sub.output_nodes[i]];
    }
    stats->intermediate_size += sub.tuples.size() * cols.size();

    if (frag_root == q.root()) {
      for (const auto& t : sub.tuples) {
        std::vector<NodeId> row(q.NumNodes(), kInvalidNode);
        for (size_t i = 0; i < cols.size(); ++i) row[cols[i]] = t[i];
        acc.push_back(std::move(row));
      }
    } else {
      // Join across the cross edge: parent binding must have a data
      // edge to the fragment root's binding.
      const QNodeId parent = q.node(frag_root).parent;
      GTPQ_CHECK(bound[parent]) << "fragment order broke connectivity";
      size_t root_col = SIZE_MAX;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (cols[i] == frag_root) root_col = i;
      }
      GTPQ_CHECK(root_col != SIZE_MAX);
      std::map<NodeId, std::vector<size_t>> by_root;
      for (size_t i = 0; i < sub.tuples.size(); ++i) {
        by_root[sub.tuples[i][root_col]].push_back(i);
      }
      std::vector<std::vector<NodeId>> next;
      for (const auto& row : acc) {
        for (NodeId w : g.OutNeighbors(row[parent])) {
          auto it = by_root.find(w);
          if (it == by_root.end()) continue;
          for (size_t i : it->second) {
            ++stats->join_ops;
            std::vector<NodeId> merged = row;
            for (size_t k = 0; k < cols.size(); ++k) {
              merged[cols[k]] = sub.tuples[i][k];
            }
            next.push_back(std::move(merged));
          }
        }
      }
      acc = std::move(next);
    }
    for (QNodeId u : to_orig) bound[u] = 1;
    if (acc.empty()) break;
  }

  QueryResult result;
  result.output_nodes = q.outputs();
  std::sort(result.output_nodes.begin(), result.output_nodes.end());
  for (const auto& row : acc) {
    ResultTuple t;
    t.reserve(result.output_nodes.size());
    for (QNodeId o : result.output_nodes) t.push_back(row[o]);
    result.tuples.push_back(std::move(t));
  }
  result.Normalize();
  return result;
}

}  // namespace gtpq
