#include "baselines/twigstack.h"

#include <algorithm>
#include <functional>
#include <map>

#include "common/logging.h"

namespace gtpq {

namespace {

constexpr uint32_t kInf = UINT32_MAX;

class TwigStackRun {
 public:
  TwigStackRun(const DataGraph& g, const RegionEncoding& enc,
               const Gtpq& q, EngineStats* stats)
      : g_(g), enc_(enc), q_(q), stats_(stats) {}

  QueryResult Run() {
    GTPQ_CHECK(q_.IsConjunctive())
        << "TwigStack handles conjunctive twigs only";
    const size_t n = q_.NumNodes();
    stream_.resize(n);
    cursor_.assign(n, 0);
    stacks_.resize(n);
    for (QNodeId u = 0; u < n; ++u) {
      auto label = q_.node(u).attr_pred.RequiredLabel(g_.label_attr());
      if (label.has_value() && q_.node(u).attr_pred.atoms().size() == 1) {
        auto hits = g_.NodesWithLabel(*label);
        stream_[u].assign(hits.begin(), hits.end());
      } else {
        for (NodeId v = 0; v < g_.NumNodes(); ++v) {
          if (q_.node(u).attr_pred.Matches(g_, v)) stream_[u].push_back(v);
        }
      }
      stats_->input_nodes += stream_[u].size();
      std::sort(stream_[u].begin(), stream_[u].end(),
                [this](NodeId a, NodeId b) {
                  return enc_.start[a] < enc_.start[b];
                });
      if (q_.IsLeaf(u)) {
        leaves_.push_back(u);
        leaf_index_[u] = path_solutions_.size();
        path_solutions_.emplace_back();
      }
    }
    // Root-to-node chains (query ancestors, root first).
    chains_.resize(n);
    for (QNodeId u = 0; u < n; ++u) {
      for (QNodeId x = u; x != kInvalidQNode; x = q_.node(x).parent) {
        chains_[u].push_back(x);
      }
      std::reverse(chains_[u].begin(), chains_[u].end());
    }

    // --- Main holistic loop ---
    for (;;) {
      QNodeId act = GetNext(q_.root());
      if (NextStart(act) == kInf) break;
      const NodeId v = stream_[act][cursor_[act]];
      const QNodeId parent = q_.node(act).parent;
      if (act != q_.root()) CleanStack(parent, enc_.start[v]);
      if (act == q_.root() || !stacks_[parent].empty()) {
        CleanStack(act, enc_.start[v]);
        if (q_.IsLeaf(act)) {
          EmitPaths(act, v);
        } else {
          int parent_top =
              act == q_.root()
                  ? -1
                  : static_cast<int>(stacks_[parent].size()) - 1;
          stacks_[act].push_back(Entry{v, parent_top});
        }
      }
      ++cursor_[act];
    }

    return MergePaths();
  }

 private:
  struct Entry {
    NodeId v;
    int parent_top;  // top of the parent stack at push time
  };

  uint32_t NextStart(QNodeId u) const {
    return cursor_[u] < stream_[u].size()
               ? enc_.start[stream_[u][cursor_[u]]]
               : kInf;
  }
  uint32_t NextEnd(QNodeId u) const {
    return cursor_[u] < stream_[u].size()
               ? enc_.end[stream_[u][cursor_[u]]]
               : kInf;
  }

  QNodeId GetNext(QNodeId u) {
    if (q_.IsLeaf(u)) return u;
    QNodeId qmin = kInvalidQNode, qmax = kInvalidQNode;
    for (QNodeId c : q_.node(u).children) {
      QNodeId nc = GetNext(c);
      // Do not surface exhausted subtrees: the break condition of the
      // main loop must only fire when every leaf stream has drained.
      if (nc != c && NextStart(nc) != kInf) return nc;
      if (qmin == kInvalidQNode || NextStart(c) < NextStart(qmin)) qmin = c;
      if (qmax == kInvalidQNode || NextStart(c) > NextStart(qmax)) qmax = c;
    }
    // Skip u-elements that cannot contain the laggard child.
    while (NextEnd(u) < NextStart(qmax)) ++cursor_[u];
    return NextStart(u) < NextStart(qmin) ? u : qmin;
  }

  void CleanStack(QNodeId u, uint32_t act_start) {
    auto& s = stacks_[u];
    while (!s.empty() && enc_.end[s.back().v] < act_start) s.pop_back();
  }

  // Emits all root-to-leaf path solutions ending at element v of leaf u.
  void EmitPaths(QNodeId leaf, NodeId v) {
    const auto& chain = chains_[leaf];  // root ... leaf
    std::vector<NodeId> tuple(q_.NumNodes(), kInvalidNode);
    tuple[leaf] = v;
    auto& out = path_solutions_[leaf_index_[leaf]];
    // Walk upward choosing stack entries; index bound chains via
    // parent_top pointers.
    std::function<void(size_t, int)> ascend = [&](size_t pos,
                                                  int max_idx) {
      if (pos == 0) {  // all ancestors chosen (chain[0] is the root)
        out.push_back(tuple);
        stats_->intermediate_size += chain.size();
        return;
      }
      const QNodeId anc = chain[pos - 1];
      const QNodeId below = chain[pos];
      const auto& s = stacks_[anc];
      for (int idx = 0; idx <= max_idx; ++idx) {
        const Entry& e = s[static_cast<size_t>(idx)];
        if (q_.node(below).incoming == EdgeType::kChild &&
            !enc_.IsTreeParent(e.v, tuple[below])) {
          continue;
        }
        tuple[anc] = e.v;
        ascend(pos - 1, e.parent_top);
      }
      tuple[anc] = kInvalidNode;
    };
    if (chain.size() == 1) {
      out.push_back(tuple);
      stats_->intermediate_size += 1;
      return;
    }
    const QNodeId parent = chain[chain.size() - 2];
    ascend(chain.size() - 1,
           static_cast<int>(stacks_[parent].size()) - 1);
  }

  QueryResult MergePaths() {
    // Fold the per-leaf path relations with hash joins on shared
    // query-node columns.
    std::vector<NodeId> acc_cols;  // query nodes bound so far
    std::vector<std::vector<NodeId>> acc;
    for (size_t li = 0; li < leaves_.size(); ++li) {
      const auto& chain = chains_[leaves_[li]];
      auto& rel = path_solutions_[li];
      if (li == 0) {
        acc = std::move(rel);
        acc_cols.assign(chain.begin(), chain.end());
        continue;
      }
      std::vector<QNodeId> shared;
      for (QNodeId u : chain) {
        if (std::find(acc_cols.begin(), acc_cols.end(), u) !=
            acc_cols.end()) {
          shared.push_back(u);
        }
      }
      std::map<std::vector<NodeId>, std::vector<size_t>> index;
      for (size_t i = 0; i < rel.size(); ++i) {
        std::vector<NodeId> key;
        for (QNodeId u : shared) key.push_back(rel[i][u]);
        index[key].push_back(i);
      }
      std::vector<std::vector<NodeId>> joined;
      for (const auto& t : acc) {
        std::vector<NodeId> key;
        for (QNodeId u : shared) key.push_back(t[u]);
        auto it = index.find(key);
        if (it == index.end()) continue;
        for (size_t i : it->second) {
          ++stats_->join_ops;
          std::vector<NodeId> merged = t;
          for (QNodeId u : chain) merged[u] = rel[i][u];
          joined.push_back(std::move(merged));
        }
      }
      acc = std::move(joined);
      for (QNodeId u : chain) {
        if (std::find(acc_cols.begin(), acc_cols.end(), u) ==
            acc_cols.end()) {
          acc_cols.push_back(u);
        }
      }
      if (acc.empty()) break;
    }

    QueryResult result;
    result.output_nodes = q_.outputs();
    std::sort(result.output_nodes.begin(), result.output_nodes.end());
    for (const auto& t : acc) {
      ResultTuple row;
      row.reserve(result.output_nodes.size());
      for (QNodeId o : result.output_nodes) row.push_back(t[o]);
      result.tuples.push_back(std::move(row));
    }
    result.Normalize();
    return result;
  }

  const DataGraph& g_;
  const RegionEncoding& enc_;
  const Gtpq& q_;
  EngineStats* stats_;
  std::vector<std::vector<NodeId>> stream_;
  std::vector<size_t> cursor_;
  std::vector<std::vector<Entry>> stacks_;
  std::vector<QNodeId> leaves_;
  std::map<QNodeId, size_t> leaf_index_;
  std::vector<std::vector<std::vector<NodeId>>> path_solutions_;
  std::vector<std::vector<QNodeId>> chains_;
};

}  // namespace

QueryResult EvaluateTwigStack(const DataGraph& g,
                              const RegionEncoding& enc, const Gtpq& q,
                              EngineStats* stats) {
  TwigStackRun run(g, enc, q, stats);
  return run.Run();
}

}  // namespace gtpq
