#ifndef GTPQ_BASELINES_TWIG2STACK_H_
#define GTPQ_BASELINES_TWIG2STACK_H_

#include "baselines/tree_encoding.h"
#include "core/eval_types.h"
#include "query/gtpq.h"

namespace gtpq {

/// Twig2Stack-style bottom-up twig evaluation (Chen et al., VLDB'06)
/// over tree-structured data: a single reverse-document-order pass
/// computes, per query node, the set of data nodes whose subtree
/// satisfies the twig (the analogue of the hierarchical-stack match
/// structures), then answers are enumerated directly from that match
/// hierarchy — no root-to-leaf path solutions are ever materialized,
/// which is the property distinguishing it from TwigStack. See
/// DESIGN.md for the simplifications relative to [7].
///
/// Requirements match EvaluateTwigStack (conjunctive query, spanning
/// tree semantics).
QueryResult EvaluateTwig2Stack(const DataGraph& g,
                               const RegionEncoding& enc, const Gtpq& q,
                               EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_TWIG2STACK_H_
