#ifndef GTPQ_BASELINES_HGJOIN_H_
#define GTPQ_BASELINES_HGJOIN_H_

#include "core/eval_types.h"
#include "query/gtpq.h"
#include "reachability/interval_index.h"

namespace gtpq {

/// Tuning for HGJoin (Wang, Li, Luo, Gao, PVLDB'08), the hash-based
/// structural-join evaluator over interval (OPT-tree-cover) labels.
struct HgJoinOptions {
  /// HGJoin*: represent intermediate results as a match graph instead
  /// of tuple relations (the revised variant the paper evaluates).
  bool graph_intermediates = false;
  /// HGJoin+: plans (connected query-edge join orders) enumerated; the
  /// best plan's time is reported, mirroring the paper's replacement of
  /// the exponential plan generator by exhaustive evaluation.
  size_t max_plans = 64;
};

/// Per-evaluation report for the benchmark harness.
struct HgJoinReport {
  double best_plan_ms = 0;
  size_t plans_tried = 0;
};

/// Evaluates a conjunctive query. With graph_intermediates the match
/// graph is semijoin-reduced and traversed once; otherwise every plan
/// folds binary hash joins over per-edge match-pair relations and the
/// fastest plan is reported in `report`.
QueryResult EvaluateHgJoin(const DataGraph& g, const IntervalIndex& idx,
                           const Gtpq& q, const HgJoinOptions& options,
                           EngineStats* stats, HgJoinReport* report);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_HGJOIN_H_
