#ifndef GTPQ_BASELINES_TREE_ENCODING_H_
#define GTPQ_BASELINES_TREE_ENCODING_H_

#include <vector>

#include "graph/data_graph.h"

namespace gtpq {

/// Region (interval) encoding of a data graph's spanning tree:
/// start/end numbers from a DFS plus depth — the classic labeling
/// consumed by holistic twig joins (TwigStack [3], Twig2Stack [7]).
/// Nodes outside the spanning tree root at their own components.
struct RegionEncoding {
  std::vector<uint32_t> start, end, level;
  std::vector<NodeId> doc_order;  // nodes by ascending start

  /// anc is a proper tree ancestor of desc.
  bool IsTreeAncestor(NodeId anc, NodeId desc) const {
    return start[anc] < start[desc] && end[desc] <= end[anc];
  }
  /// anc is the tree parent of desc.
  bool IsTreeParent(NodeId anc, NodeId desc) const {
    return IsTreeAncestor(anc, desc) && level[desc] == level[anc] + 1;
  }
};

/// Builds the encoding from the graph's spanning-tree annotation; when
/// absent, tree edges default to the first in-neighbor of each node in
/// a topological pass (the graph must then be a DAG).
RegionEncoding BuildRegionEncoding(const DataGraph& g);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_TREE_ENCODING_H_
