#ifndef GTPQ_BASELINES_TWIGSTACKD_H_
#define GTPQ_BASELINES_TWIGSTACKD_H_

#include "core/eval_types.h"
#include "query/gtpq.h"
#include "reachability/sspi.h"

namespace gtpq {

/// TwigStackD (Chen, Gupta, Kurul, VLDB'05): conjunctive twig matching
/// over DAGs. Faithful to the measured cost profile:
///  * the pre-filtering phase performs two full graph traversals
///    (bottom-up, then top-down) selecting exactly the nodes that can
///    participate in final matches — this is what makes it competitive
///    on tree-like XMark data and what dominates #input in Fig 10;
///  * surviving candidates are connected with pairwise SSPI
///    reachability probes (the pool/edge-checking stage), which
///    degenerates on dense, deep graphs — the Fig 9 arXiv behaviour;
///  * full matches are enumerated from the pooled edges.
///
/// Requirements: conjunctive query, acyclic data graph, at most 64
/// query nodes.
QueryResult EvaluateTwigStackD(const DataGraph& g, const Sspi& sspi,
                               const Gtpq& q, EngineStats* stats);

/// Exposes just the pre-filtering stage (both traversals) so the
/// Fig 9(d) experiment can compare it against GTEA's pruning.
std::vector<std::vector<NodeId>> TwigStackDPreFilter(const DataGraph& g,
                                                     const Gtpq& q,
                                                     EngineStats* stats);

}  // namespace gtpq

#endif  // GTPQ_BASELINES_TWIGSTACKD_H_
