#ifndef GTPQ_BASELINES_ENGINES_H_
#define GTPQ_BASELINES_ENGINES_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/hgjoin.h"
#include "baselines/tree_encoding.h"
#include "common/status.h"
#include "core/evaluator.h"
#include "graph/data_graph.h"
#include "reachability/interval_index.h"
#include "reachability/sspi.h"
#include "reachability/transitive_closure.h"

namespace gtpq {

/// Brute-force evaluation over the materialized transitive closure —
/// the independent correctness oracle (src/baselines/naive.h) behind
/// the common Evaluator seam.
class BruteForceEngine : public Evaluator {
 public:
  explicit BruteForceEngine(const DataGraph& g);
  BruteForceEngine(const DataGraph& g,
                   std::shared_ptr<const TransitiveClosure> tc);

  std::string_view name() const override { return "naive"; }
  QueryResult Evaluate(const Gtpq& q,
                       const GteaOptions& options = {}) override;
  const EngineStats& stats() const override { return stats_; }
  const TransitiveClosure& closure() const { return *tc_; }

 private:
  const DataGraph& g_;
  std::shared_ptr<const TransitiveClosure> tc_;
  EngineStats stats_;
};

/// TwigStack / Twig2Stack over the spanning tree, lifted to graphs by
/// decomposing at IDREF-style cross edges (twig_on_graph.h). Which
/// query nodes root non-initial fragments is resolved per query from
/// `cross_names` (empty = evaluate against the tree directly).
class TwigStackEngine : public Evaluator {
 public:
  /// `use_twig2stack` selects the bottom-up Twig2Stack variant.
  TwigStackEngine(const DataGraph& g, bool use_twig2stack = false,
                  std::vector<std::string> cross_names = {},
                  std::shared_ptr<const RegionEncoding> enc = nullptr);

  std::string_view name() const override {
    return twig2stack_ ? "twig2stack" : "twigstack";
  }
  QueryResult Evaluate(const Gtpq& q,
                       const GteaOptions& options = {}) override;
  /// Evaluates with explicit decomposition points (query node ids of
  /// the child endpoints of cross edges), bypassing name resolution.
  QueryResult EvaluateWithCross(const Gtpq& q,
                                const std::vector<QNodeId>& cross);
  const EngineStats& stats() const override { return stats_; }

 private:
  const DataGraph& g_;
  bool twig2stack_;
  std::vector<std::string> cross_names_;
  std::shared_ptr<const RegionEncoding> enc_;
  EngineStats stats_;
};

/// TwigStackD over the SSPI oracle (DAG data, conjunctive queries).
class TwigStackDEngine : public Evaluator {
 public:
  explicit TwigStackDEngine(const DataGraph& g);
  TwigStackDEngine(const DataGraph& g, std::shared_ptr<const Sspi> sspi);

  std::string_view name() const override { return "twigstackd"; }
  QueryResult Evaluate(const Gtpq& q,
                       const GteaOptions& options = {}) override;
  const EngineStats& stats() const override { return stats_; }
  const Sspi& sspi() const { return *sspi_; }

 private:
  const DataGraph& g_;
  std::shared_ptr<const Sspi> sspi_;
  EngineStats stats_;
};

/// HGJoin+ (tuple plans) or HGJoin* (match-graph intermediates) over
/// the interval index.
class HgJoinEngine : public Evaluator {
 public:
  HgJoinEngine(const DataGraph& g, bool graph_intermediates = false);
  HgJoinEngine(const DataGraph& g, bool graph_intermediates,
               std::shared_ptr<const IntervalIndex> idx);

  std::string_view name() const override {
    return options_.graph_intermediates ? "hgjoin*" : "hgjoin+";
  }
  QueryResult Evaluate(const Gtpq& q,
                       const GteaOptions& options = {}) override;
  const EngineStats& stats() const override { return stats_; }
  const HgJoinReport& report() const { return report_; }

 private:
  const DataGraph& g_;
  std::shared_ptr<const IntervalIndex> idx_;
  HgJoinOptions options_;
  EngineStats stats_;
  HgJoinReport report_;
};

/// Decompose-and-merge: expands a general GTPQ to conjunctive TPQs and
/// drives an inner conjunctive engine (Exp-2's baseline strategy).
/// Queries outside the supported fragment yield an empty result and a
/// non-OK last_status().
class DecomposeEngine : public Evaluator {
 public:
  DecomposeEngine(std::shared_ptr<Evaluator> inner);

  std::string_view name() const override { return name_; }
  QueryResult Evaluate(const Gtpq& q,
                       const GteaOptions& options = {}) override;
  const EngineStats& stats() const override { return stats_; }
  const Status& last_status() const { return last_status_; }

 private:
  std::shared_ptr<Evaluator> inner_;
  std::string name_;
  EngineStats stats_;
  Status last_status_ = Status::OK();
};

/// Engine registry. Specs:
///   gtea            GTEA on the default (contour) backend
///   gtea:<spec>     GTEA on any reachability spec: a registered
///                   backend name or a cached:/sharded: decorator chain
///                   (e.g. gtea:cached:contour, gtea:sharded:interval)
///   naive           brute force over the transitive closure
///   twigstack, twig2stack, twigstackd, hgjoin+, hgjoin*
///   decompose:twigstack, decompose:twigstackd
/// `cross_names` seeds the twig engines' query-decomposition points.
/// Returns nullptr for unknown specs.
std::unique_ptr<Evaluator> MakeEngine(
    std::string_view spec, const DataGraph& g,
    std::vector<std::string> cross_names = {});

}  // namespace gtpq

#endif  // GTPQ_BASELINES_ENGINES_H_
