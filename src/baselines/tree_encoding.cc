#include "baselines/tree_encoding.h"

#include "common/logging.h"
#include "graph/algorithms.h"

namespace gtpq {

RegionEncoding BuildRegionEncoding(const DataGraph& g) {
  const size_t n = g.NumNodes();
  RegionEncoding enc;
  enc.start.assign(n, 0);
  enc.end.assign(n, 0);
  enc.level.assign(n, 0);

  std::vector<NodeId> parent(n, kInvalidNode);
  if (g.HasSpanningTree()) {
    for (NodeId v = 0; v < n; ++v) parent[v] = g.TreeParentOf(v);
  } else {
    auto order = TopologicalSort(g.graph());
    GTPQ_CHECK(!order.empty() || n == 0)
        << "region encoding without a spanning tree requires a DAG";
    for (NodeId v : order) {
      for (NodeId w : g.OutNeighbors(v)) {
        if (parent[w] == kInvalidNode) parent[w] = v;
      }
    }
  }
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (parent[v] != kInvalidNode) children[parent[v]].push_back(v);
  }

  uint32_t counter = 0;
  enc.doc_order.reserve(n);
  std::vector<std::pair<NodeId, size_t>> stack;
  for (NodeId root = 0; root < n; ++root) {
    if (parent[root] != kInvalidNode) continue;
    stack.emplace_back(root, 0);
    enc.level[root] = 0;
    while (!stack.empty()) {
      auto& [v, cursor] = stack.back();
      if (cursor == 0) {
        enc.start[v] = counter++;
        enc.doc_order.push_back(v);
      }
      if (cursor < children[v].size()) {
        NodeId c = children[v][cursor++];
        enc.level[c] = enc.level[v] + 1;
        stack.emplace_back(c, 0);
        continue;
      }
      enc.end[v] = counter++;
      stack.pop_back();
    }
  }
  return enc;
}

}  // namespace gtpq
